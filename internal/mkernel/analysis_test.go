package mkernel

import (
	"strings"
	"testing"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
	"autogemm/internal/hw"
)

// TestDifferentialAnalysis is the generator/analyzer differential: every
// kernel the generator emits — all generatable tiles on every modeled
// chip, rotation and accumulate variants, regular and ragged k_c — must
// pass both structural validation and the dataflow analyzer with zero
// findings. A finding here is a generator bug, an analyzer false
// positive, or both; either way it fails.
func TestDifferentialAnalysis(t *testing.T) {
	done := map[int]bool{} // chips sharing a lane width generate identically
	total := 0
	for _, chip := range hw.All() {
		if done[chip.Lanes] {
			continue
		}
		done[chip.Lanes] = true
		lanes := chip.Lanes
		for _, tile := range FeasibleTiles(lanes) {
			if !tile.Generatable(lanes) {
				continue
			}
			for _, kc := range []int{lanes, 2*lanes + 1} {
				for _, rotate := range []bool{false, true} {
					for _, loadC := range []bool{false, true} {
						cfg := Config{Tile: tile, KC: kc, Lanes: lanes,
							Rotate: rotate, SigmaAI: chip.SigmaAI, LoadC: loadC,
							SkipAnalysis: true}
						p, err := Generate(cfg)
						if err != nil {
							t.Fatalf("%s: %v", cfg.Name(), err)
						}
						if err := p.Validate(); err != nil {
							t.Fatalf("%s: %v", cfg.Name(), err)
						}
						opts, err := cfg.AnalysisOptions()
						if err != nil {
							t.Fatalf("%s: %v", cfg.Name(), err)
						}
						rep, err := analysis.Analyze(p, opts)
						if err != nil {
							t.Fatalf("%s: %v", cfg.Name(), err)
						}
						if !rep.OK() {
							t.Errorf("%s:\n%s", cfg.Name(), rep.String())
						}
						if !rep.BoundsChecked {
							t.Errorf("%s: bounds pass did not run", cfg.Name())
						}
						total++
					}
				}
			}
		}
	}
	if total < 400 {
		t.Errorf("differential covered only %d kernels", total)
	}
}

// TestDifferentialAnalysisBandsAndSVE extends the differential to band,
// predicated-SVE and packing kernels.
func TestDifferentialAnalysisBandsAndSVE(t *testing.T) {
	lanes := 4
	bands := []BandConfig{
		{Segments: []Segment{{Tile: Tile{MR: 4, NR: 2 * lanes}, Count: 3}},
			KC: 2*lanes + 1, Lanes: lanes, Rotate: true, Fuse: true, LoadC: true},
		{Segments: []Segment{
			{Tile: Tile{MR: 4, NR: 2 * lanes}, Count: 1},
			{Tile: Tile{MR: 4, NR: lanes}, Count: 2}},
			KC: 13, Lanes: lanes, Rotate: true, Fuse: true, LoadC: true},
		{Segments: []Segment{{Tile: Tile{MR: 2, NR: lanes}, Count: 2}},
			KC: lanes, Lanes: lanes},
	}
	for _, bc := range bands {
		bc.SkipAnalysis = true
		p, err := GenerateBand(bc)
		if err != nil {
			t.Fatalf("%s: %v", bc.Name(), err)
		}
		opts, err := bc.AnalysisOptions()
		if err != nil {
			t.Fatalf("%s: %v", bc.Name(), err)
		}
		rep, err := analysis.Analyze(p, opts)
		if err != nil {
			t.Fatalf("%s: %v", bc.Name(), err)
		}
		if !rep.OK() {
			t.Errorf("%s:\n%s", bc.Name(), rep.String())
		}
	}

	for _, nr := range []int{7, 16, 33} {
		for _, loadC := range []bool{false, true} {
			cfg := PredConfig{Tile: Tile{MR: 3, NR: nr}, KC: 21, Lanes: 16,
				LoadC: loadC, SkipAnalysis: true}
			if !cfg.Feasible() {
				continue
			}
			p, err := GeneratePredicated(cfg)
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name(), err)
			}
			rep, err := analysis.Analyze(p, cfg.AnalysisOptions())
			if err != nil {
				t.Fatalf("%s: %v", cfg.Name(), err)
			}
			if !rep.OK() {
				t.Errorf("%s:\n%s", cfg.Name(), rep.String())
			}
			if !rep.BoundsChecked {
				t.Errorf("%s: bounds pass did not run", cfg.Name())
			}
		}
	}

	pack := PackConfig{Rows: 5, Cols: 12, Lanes: 4, SkipAnalysis: true}
	p, err := GeneratePack(pack)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := analysis.Analyze(p, pack.AnalysisOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("%s:\n%s", pack.Name(), rep.String())
	}
}

// TestAnalysisGateRejects exercises the gate itself: a corrupted kernel
// run through analyzeGate (exactly what Generate does when SkipAnalysis
// is false) must come back as a hard error, and the pristine program
// must not.
func TestAnalysisGateRejects(t *testing.T) {
	cfg := Config{Tile: Tile{MR: 4, NR: 8}, KC: 9, Lanes: 4,
		Rotate: true, SigmaAI: 4.0, LoadC: true, SkipAnalysis: true}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := cfg.AnalysisOptions()
	if err != nil {
		t.Fatal(err)
	}
	if err := analyzeGate(p, opts); err != nil {
		t.Fatalf("clean kernel rejected by gate: %v", err)
	}
	// The lint injection: the first C store becomes a load of the same
	// accumulator, throwing the partial sum away.
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == asm.OpStrQPost {
			*in = asm.Instr{Op: asm.OpLdrQ, Dst: in.Dst, Src1: in.Src1}
			break
		}
	}
	err = analyzeGate(p, opts)
	if err == nil {
		t.Fatal("clobbered kernel passed the gate")
	}
	if !strings.Contains(err.Error(), "accumulator-clobber") {
		t.Fatalf("gate error misses the clobber diagnostic: %v", err)
	}
}
