package mkernel

import (
	"fmt"
	"strings"

	"autogemm/internal/asm"
)

// Info summarizes a generated kernel for inspection: the static
// instruction mix, register pressure, rotation scheme and the
// arithmetic-intensity figures that drove tile selection (Table II).
type Info struct {
	Name        string
	Tile        Tile
	KC, Lanes   int
	AIMax       float64 // Eqn 2
	AI          float64 // Eqn 3 at this k_c
	VectorRegs  int     // architectural vector registers used
	RotateA     int     // rows double-buffered for the A-side rotation
	RotateB     bool    // B-side double buffering active
	Instrs      asm.Stats
	FLOPs       float64
	FLOPsPerIns float64 // useful FLOPs per dynamic-instruction estimate (static approximation)
}

// Describe builds the Info for a kernel configuration without keeping
// the program around.
func Describe(cfg Config) (Info, error) {
	g, err := newGen(cfg)
	if err != nil {
		return Info{}, err
	}
	prog, err := Generate(cfg)
	if err != nil {
		return Info{}, err
	}
	stats := prog.CollectStats()
	flops := 2 * float64(cfg.Tile.MR) * float64(cfg.Tile.NR) * float64(cfg.KC)
	info := Info{
		Name: cfg.Name(), Tile: cfg.Tile, KC: cfg.KC, Lanes: cfg.Lanes,
		AIMax:      cfg.Tile.AIMax(cfg.Lanes),
		AI:         cfg.Tile.AI(cfg.KC, cfg.Lanes),
		VectorRegs: prog.VectorRegsUsed(),
		RotateA:    g.rotA,
		RotateB:    g.rotB,
		Instrs:     stats,
		FLOPs:      flops,
	}
	if stats.Total > 0 {
		info.FLOPsPerIns = flops / float64(stats.Total)
	}
	return info, nil
}

// String renders the info as a short report.
func (i Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s\n", i.Name)
	fmt.Fprintf(&b, "  tile %v, k_c=%d, σ_lane=%d\n", i.Tile, i.KC, i.Lanes)
	fmt.Fprintf(&b, "  AI: %.2f at this k_c (max %.2f, Eqns 2-3)\n", i.AI, i.AIMax)
	fmt.Fprintf(&b, "  vector registers: %d/32", i.VectorRegs)
	switch {
	case i.RotateB && i.RotateA > 0:
		fmt.Fprintf(&b, " (B double-buffered, %d A rows rotated)\n", i.RotateA)
	case i.RotateB:
		b.WriteString(" (B double-buffered)\n")
	case i.RotateA > 0:
		fmt.Fprintf(&b, " (%d A rows rotated)\n", i.RotateA)
	default:
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  static mix: %d FMA, %d loads, %d stores, %d ALU, %d prefetch\n",
		i.Instrs.FMA, i.Instrs.Loads, i.Instrs.Stores, i.Instrs.ALU, i.Instrs.Prfm)
	fmt.Fprintf(&b, "  %.0f FLOPs (%.1f per static instruction)\n", i.FLOPs, i.FLOPsPerIns)
	return b.String()
}
