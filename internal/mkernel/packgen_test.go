package mkernel

import (
	"testing"

	"autogemm/internal/refgemm"
	"autogemm/internal/sim"
)

// TestGeneratePackCopies: the packing kernel reproduces a strided panel
// contiguously, for several shapes and lane widths.
func TestGeneratePackCopies(t *testing.T) {
	cases := []PackConfig{
		{Rows: 1, Cols: 4, Lanes: 4},
		{Rows: 7, Cols: 16, Lanes: 4},
		{Rows: 13, Cols: 36, Lanes: 4},
		{Rows: 5, Cols: 32, Lanes: 16},
	}
	for _, cfg := range cases {
		prog, err := GeneratePack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srcLD := cfg.Cols + 12 // strided source
		arena := sim.NewArena(1 << 14)
		srcAddr := arena.Alloc(cfg.Rows*srcLD + cfg.Lanes)
		dstAddr := arena.Alloc(cfg.Rows*cfg.Cols + cfg.Lanes)
		src := arena.Slice(srcAddr, cfg.Rows*srcLD)
		refgemm.Fill(src, cfg.Rows, srcLD, srcLD, 77)

		m := sim.NewMachine(arena, cfg.Lanes)
		m.SetArg(0, srcAddr)
		m.SetArg(1, dstAddr)
		m.SetArg(3, int64(srcLD))
		m.SetArg(4, int64(cfg.Cols))
		if err := m.Run(prog, 1_000_000); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		dst := arena.Slice(dstAddr, cfg.Rows*cfg.Cols)
		for r := 0; r < cfg.Rows; r++ {
			for c := 0; c < cfg.Cols; c++ {
				if dst[r*cfg.Cols+c] != src[r*srcLD+c] {
					t.Fatalf("%s: dst[%d][%d] = %g, want %g",
						cfg.Name(), r, c, dst[r*cfg.Cols+c], src[r*srcLD+c])
				}
			}
		}
	}
}

// TestGeneratePackValidation rejects malformed configs.
func TestGeneratePackValidation(t *testing.T) {
	for _, cfg := range []PackConfig{
		{Rows: 0, Cols: 4, Lanes: 4},
		{Rows: 4, Cols: 0, Lanes: 4},
		{Rows: 4, Cols: 6, Lanes: 4}, // cols not lane multiple
	} {
		if _, err := GeneratePack(cfg); err == nil {
			t.Errorf("%+v accepted", cfg)
		}
	}
}

// TestGeneratePackEncodes: packing kernels lower to machine code too.
func TestGeneratePackEncodes(t *testing.T) {
	prog, err := GeneratePack(PackConfig{Rows: 8, Cols: 32, Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Encode(); err != nil {
		t.Errorf("pack kernel not encodable: %v", err)
	}
}
