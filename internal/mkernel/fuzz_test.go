package mkernel

import (
	"testing"

	"autogemm/internal/asm/analysis"
	"autogemm/internal/refgemm"
	"autogemm/internal/sim"
)

// FuzzGenerate feeds arbitrary tile/depth/option combinations to the
// generator: any configuration it accepts must validate, encode (NEON)
// and compute the reference result.
func FuzzGenerate(f *testing.F) {
	f.Add(uint8(5), uint8(16), uint8(32), true, true)
	f.Add(uint8(2), uint8(16), uint8(7), false, true)
	f.Add(uint8(1), uint8(4), uint8(1), true, false)
	f.Add(uint8(8), uint8(8), uint8(64), false, false)
	f.Fuzz(func(t *testing.T, mrRaw, nrRaw, kcRaw uint8, rotate, loadC bool) {
		mr := int(mrRaw)%12 + 1
		nr := (int(nrRaw)%8 + 1) * 4
		kc := int(kcRaw)%80 + 1
		cfg := Config{Tile: Tile{MR: mr, NR: nr}, KC: kc, Lanes: 4,
			Rotate: rotate, LoadC: loadC, SigmaAI: 6.0}
		prog, err := Generate(cfg)
		if err != nil {
			return // infeasible configurations may be rejected
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("%s: generated program invalid: %v", cfg.Name(), err)
		}
		if n := prog.VectorRegsUsed(); n > 32 {
			t.Fatalf("%s: %d vector registers", cfg.Name(), n)
		}
		// The dataflow analyzer must agree: zero findings on anything the
		// generator accepts (Generate gates on this too, but assert it
		// explicitly so a gate regression cannot hide it).
		opts, err := cfg.AnalysisOptions()
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		rep, err := analysis.Analyze(prog, opts)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if !rep.OK() {
			t.Fatalf("%s: analyzer findings:\n%s", cfg.Name(), rep.String())
		}
		// Functional check against the reference.
		arena := sim.NewArena(1 << 14)
		aAddr := arena.Alloc(mr*kc + 8)
		bAddr := arena.Alloc((kc+2)*nr + 8)
		cAddr := arena.Alloc(mr*nr + 8)
		a := arena.Slice(aAddr, mr*kc)
		b := arena.Slice(bAddr, kc*nr)
		c := arena.Slice(cAddr, mr*nr)
		refgemm.Fill(a, mr, kc, kc, uint64(mrRaw)+1)
		refgemm.Fill(b, kc, nr, nr, uint64(nrRaw)+2)
		refgemm.Fill(c, mr, nr, nr, uint64(kcRaw)+3)
		want := make([]float32, mr*nr)
		if loadC {
			copy(want, c)
		}
		refgemm.GEMM(mr, nr, kc, a, kc, b, nr, want, nr)
		m := sim.NewMachine(arena, 4)
		m.SetArg(0, aAddr)
		m.SetArg(1, bAddr)
		m.SetArg(2, cAddr)
		m.SetArg(3, int64(kc))
		m.SetArg(4, int64(nr))
		m.SetArg(5, int64(nr))
		if err := m.Run(prog, 50_000_000); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if e := refgemm.MaxRelErr(c, want, mr, nr, nr, nr); e > refgemm.Tolerance {
			t.Fatalf("%s: rel err %.3g", cfg.Name(), e)
		}
	})
}

// FuzzPredicated does the same for the SVE predicated generator with
// zero-slack buffers.
func FuzzPredicated(f *testing.F) {
	f.Add(uint8(4), uint8(17), uint8(16))
	f.Add(uint8(1), uint8(1), uint8(1))
	// Regression: m_r = 9 once collided the C row pointers with the
	// predicate scratch registers (found by fuzzing).
	f.Add(uint8(8), uint8(8), uint8(26))
	f.Fuzz(func(t *testing.T, mrRaw, nrRaw, kcRaw uint8) {
		cfg := PredConfig{
			Tile:  Tile{MR: int(mrRaw)%11 + 1, NR: int(nrRaw)%50 + 1},
			KC:    int(kcRaw)%40 + 1,
			Lanes: 16, LoadC: true,
		}
		if !cfg.Feasible() {
			return
		}
		prog, err := GeneratePredicated(cfg)
		if err != nil {
			t.Fatalf("feasible config rejected: %v", err)
		}
		rep, err := analysis.Analyze(prog, cfg.AnalysisOptions())
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if !rep.OK() {
			t.Fatalf("%s: analyzer findings:\n%s", cfg.Name(), rep.String())
		}
		mr, nr, kc := cfg.Tile.MR, cfg.Tile.NR, cfg.KC
		arena := sim.NewArena(4)
		aAddr := arena.Alloc(mr * kc)
		bAddr := arena.Alloc(kc * nr)
		cAddr := arena.Alloc(mr * nr)
		a := arena.Slice(aAddr, mr*kc)
		b := arena.Slice(bAddr, kc*nr)
		c := arena.Slice(cAddr, mr*nr)
		refgemm.Fill(a, mr, kc, kc, 5)
		refgemm.Fill(b, kc, nr, nr, 6)
		want := make([]float32, mr*nr)
		refgemm.GEMM(mr, nr, kc, a, kc, b, nr, want, nr)
		m := sim.NewMachine(arena, 16)
		m.SetArg(0, aAddr)
		m.SetArg(1, bAddr)
		m.SetArg(2, cAddr)
		m.SetArg(3, int64(kc))
		m.SetArg(4, int64(nr))
		m.SetArg(5, int64(nr))
		if err := m.Run(prog, 50_000_000); err != nil {
			t.Fatalf("%s: %v", cfg.Name(), err)
		}
		if e := refgemm.MaxRelErr(c, want, mr, nr, nr, nr); e > refgemm.Tolerance {
			t.Fatalf("%s: rel err %.3g", cfg.Name(), e)
		}
	})
}

// TestDescribe covers the kernel introspection report.
func TestDescribe(t *testing.T) {
	info, err := Describe(Config{Tile: Tile{MR: 5, NR: 16}, KC: 32, Lanes: 4,
		Rotate: true, LoadC: true, SigmaAI: 6.0})
	if err != nil {
		t.Fatal(err)
	}
	if info.AIMax < 7.6 || info.AIMax > 7.63 {
		t.Errorf("AIMax = %.2f, want 7.62", info.AIMax)
	}
	if info.VectorRegs > 32 || info.VectorRegs < 29 {
		t.Errorf("VectorRegs = %d", info.VectorRegs)
	}
	if info.RotateA != 3 {
		t.Errorf("RotateA = %d, want 3 (the paper's 3 redundant registers for 5x16)", info.RotateA)
	}
	if info.Instrs.FMA == 0 || info.FLOPsPerIns <= 0 {
		t.Error("instruction mix empty")
	}
	if info.String() == "" {
		t.Error("empty report")
	}
	if _, err := Describe(Config{Tile: Tile{MR: 99, NR: 4}, KC: 4, Lanes: 4}); err == nil {
		t.Error("bad config described")
	}
}
