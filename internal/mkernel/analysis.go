package mkernel

import (
	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
)

// This file is the bridge between the generators and the dataflow
// analyzer in internal/asm/analysis. Each generator runs the analyzer as
// a gate right after structural validation — a kernel with findings is a
// generator bug, not a warning — unless the caller sets SkipAnalysis
// (cmd/autogemm-lint does, so it can inspect the findings itself).

// AnalysisOptions returns the analyzer contract for this kernel variant:
// the rotation scheme newGen will choose for it and the panel bounds of
// the standard over-read contract (one vector past an A row, two rows
// past the B panel, exact C).
func (c Config) AnalysisOptions() (analysis.Options, error) {
	g, err := newGen(c)
	if err != nil {
		return analysis.Options{}, err
	}
	opts := analysis.Options{
		Bounds: &analysis.Bounds{
			MR: c.Tile.MR, NR: c.Tile.NR, KC: c.KC, Lanes: c.Lanes,
			AOverVectors: 1, BOverRows: 2,
		},
	}
	if c.Rotate {
		opts.Rotation = &analysis.RotationHint{ARows: g.rotA, BDouble: g.rotB}
	}
	return opts, nil
}

// AnalysisOptions returns the analyzer contract for a band kernel. The
// bounds cover the full band width; the rotation hint is only available
// when every tile shares one shape (mixed-shape bands switch register
// layouts between tiles, so there is no single scheme to verify).
func (c BandConfig) AnalysisOptions() (analysis.Options, error) {
	mr, err := c.MR()
	if err != nil {
		return analysis.Options{}, err
	}
	opts := analysis.Options{
		Bounds: &analysis.Bounds{
			MR: mr, NR: c.Width(), KC: c.KC, Lanes: c.Lanes,
			AOverVectors: 1, BOverRows: 2,
		},
	}
	uniform := true
	for _, s := range c.Segments {
		if s.Tile != c.Segments[0].Tile {
			uniform = false
		}
	}
	if c.Rotate && uniform {
		g, err := newGen(Config{
			Tile: c.Segments[0].Tile, KC: c.KC, Lanes: c.Lanes,
			Rotate: true, SigmaAI: c.SigmaAI, LoadC: c.LoadC,
		})
		if err != nil {
			return analysis.Options{}, err
		}
		opts.Rotation = &analysis.RotationHint{ARows: g.rotA, BDouble: g.rotB}
	}
	return opts, nil
}

// AnalysisOptions returns the analyzer contract for a predicated SVE
// kernel: exact bounds, zero over-read slack on every panel.
func (c PredConfig) AnalysisOptions() analysis.Options {
	return analysis.Options{
		Bounds: &analysis.Bounds{
			MR: c.Tile.MR, NR: c.Tile.NR, KC: c.KC, Lanes: c.Lanes,
		},
	}
}

// AnalysisOptions returns the analyzer contract for a packing kernel.
// Pack kernels use the copy ABI (x0=src, x1=dst), which the GEMM panel
// model does not describe, so only the generic dataflow checks apply.
func (c PackConfig) AnalysisOptions() analysis.Options {
	return analysis.Options{}
}

// analyzeGate runs the analyzer and converts findings into a hard error.
func analyzeGate(p *asm.Program, opts analysis.Options) error {
	rep, err := analysis.Analyze(p, opts)
	if err != nil {
		return err
	}
	return rep.Err()
}
