package mkernel

import (
	"testing"

	"autogemm/internal/refgemm"
	"autogemm/internal/sim"
)

// runBand executes a band kernel over a C band of height m_r and width
// equal to the summed segment widths, comparing against the reference.
func runBand(t *testing.T, cfg BandConfig) {
	t.Helper()
	prog, err := GenerateBand(cfg)
	if err != nil {
		t.Fatalf("GenerateBand(%s): %v", cfg.Name(), err)
	}
	mr, _ := cfg.MR()
	width := cfg.Width()
	kc, lanes := cfg.KC, cfg.Lanes

	arena := sim.NewArena(1 << 16)
	aAddr := arena.Alloc(mr*kc + 2*lanes)
	bAddr := arena.Alloc((kc+2)*width + lanes)
	cAddr := arena.Alloc(mr*width + lanes)

	a := arena.Slice(aAddr, mr*kc)
	b := arena.Slice(bAddr, kc*width)
	c := arena.Slice(cAddr, mr*width)
	refgemm.Fill(a, mr, kc, kc, 10)
	refgemm.Fill(b, kc, width, width, 11)
	refgemm.Fill(c, mr, width, width, 12)

	want := make([]float32, mr*width)
	if cfg.LoadC {
		copy(want, c)
	}
	refgemm.GEMM(mr, width, kc, a, kc, b, width, want, width)

	m := sim.NewMachine(arena, lanes)
	m.SetArg(0, aAddr)
	m.SetArg(1, bAddr)
	m.SetArg(2, cAddr)
	m.SetArg(3, int64(kc))
	m.SetArg(4, int64(width))
	m.SetArg(5, int64(width))
	if err := m.Run(prog, 50_000_000); err != nil {
		t.Fatalf("Run(%s): %v", prog.Name, err)
	}
	if e := refgemm.MaxRelErr(c, want, mr, width, width, width); e > refgemm.Tolerance {
		t.Errorf("%s: max rel err %.3g", cfg.Name(), e)
	}
}

// TestBandSingleSegment covers the common fused band: repeated identical
// tiles along n, with and without fusion and rotation.
func TestBandSingleSegment(t *testing.T) {
	for _, tile := range []Tile{{5, 16}, {4, 20}, {8, 8}, {2, 16}} {
		for _, kc := range []int{4, 7, 16, 33} {
			for _, fuse := range []bool{false, true} {
				for _, rotate := range []bool{false, true} {
					cfg := BandConfig{
						Segments: []Segment{{Tile: tile, Count: 3}},
						KC:       kc, Lanes: 4, Fuse: fuse, Rotate: rotate,
						LoadC: true, SigmaAI: 6.0,
					}
					t.Run(cfg.Name(), func(t *testing.T) { runBand(t, cfg) })
				}
			}
		}
	}
}

// TestBandMixedSegments exercises the fusion boundary between tiles of
// different shape (and different boundedness — the paper's c_to_m and
// m_to_c modes), where accumulator loads must not interleave.
func TestBandMixedSegments(t *testing.T) {
	cases := [][]Segment{
		{{Tile{5, 16}, 2}, {Tile{5, 4}, 1}},
		{{Tile{4, 20}, 1}, {Tile{4, 16}, 1}, {Tile{4, 4}, 2}},
		{{Tile{2, 16}, 2}, {Tile{2, 4}, 1}},
		{{Tile{5, 16}, 1}, {Tile{5, 8}, 1}},
	}
	for _, segs := range cases {
		for _, fuse := range []bool{false, true} {
			for _, kc := range []int{6, 16, 21} {
				cfg := BandConfig{Segments: segs, KC: kc, Lanes: 4,
					Fuse: fuse, Rotate: true, LoadC: true, SigmaAI: 6.0}
				t.Run(cfg.Name(), func(t *testing.T) { runBand(t, cfg) })
			}
		}
	}
}

// TestBandBetaZero checks the zero-initializing variant used for the
// first k_c chunk of a split-K plan.
func TestBandBetaZero(t *testing.T) {
	cfg := BandConfig{
		Segments: []Segment{{Tile{5, 16}, 2}, {Tile{5, 8}, 1}},
		KC:       19, Lanes: 4, Fuse: true, Rotate: true, LoadC: false, SigmaAI: 6.0,
	}
	runBand(t, cfg)
}

// TestBandValidation rejects malformed bands.
func TestBandValidation(t *testing.T) {
	bad := []BandConfig{
		{Segments: nil, KC: 8, Lanes: 4},
		{Segments: []Segment{{Tile{5, 16}, 1}, {Tile{4, 16}, 1}}, KC: 8, Lanes: 4}, // mixed mr
		{Segments: []Segment{{Tile{5, 16}, 0}}, KC: 8, Lanes: 4},                   // zero count
		{Segments: []Segment{{Tile{5, 16}, 1}}, KC: 0, Lanes: 4},                   // kc <= 0
	}
	for _, cfg := range bad {
		if _, err := GenerateBand(cfg); err == nil {
			t.Errorf("GenerateBand(%s) succeeded, want error", cfg.Name())
		}
	}
}

// TestBandSVE runs a band on the 16-lane configuration.
func TestBandSVE(t *testing.T) {
	cfg := BandConfig{
		Segments: []Segment{{Tile{4, 32}, 2}, {Tile{4, 16}, 1}},
		KC:       40, Lanes: 16, Fuse: true, Rotate: true, LoadC: true, SigmaAI: 8.0,
	}
	runBand(t, cfg)
}
