package mkernel

import (
	"sort"
	"sync"

	"autogemm/internal/asm"
	"autogemm/internal/sim/compile"
)

// Key identifies one kernel variant in the cache — the same string a
// serialized execution plan records in its KernelKeys list, so a
// registry-loaded plan and a freshly produced one address identical
// cache entries. Config.Key and BandConfig.Key are the only producers.
type Key string

// Key returns the unified cache key for a micro-kernel configuration.
func (c Config) Key() Key { return Key(c.Name()) }

// Key returns the unified cache key for a band-kernel configuration.
func (c BandConfig) Key() Key { return Key(c.Name()) }

// Cache memoizes generated kernels by their unified Key. Kernel
// generation is cheap but plans request the same corner-case shapes
// many times; the paper's library likewise JIT-caches its kernels.
//
// One entry holds both forms of a kernel: the asm program and its
// compiled closure-threaded form (internal/sim/compile), each built
// lazily and at most once. Compile failures are memoized too: a kernel
// the analyzer cannot prove bound-safe fails deterministically, so
// repeated executions never re-run the analyzer just to fall back to
// the interpreter again.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*cacheEntry
}

type cacheEntry struct {
	prog *asm.Program
	err  error

	compiled   bool // compile attempted
	cprog      *compile.Program
	compileErr error
}

// NewCache returns an empty kernel cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[Key]*cacheEntry)}
}

// entry returns (creating if needed) the slot for a key with the asm
// form resolved through generate.
func (c *Cache) entry(key Key, generate func() (*asm.Program, error)) *cacheEntry {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		return e
	}
	p, err := generate()
	c.mu.Lock()
	if prev, ok := c.entries[key]; ok {
		c.mu.Unlock()
		return prev
	}
	e = &cacheEntry{prog: p, err: err}
	c.entries[key] = e
	c.mu.Unlock()
	return e
}

// Kernel returns the (possibly cached) kernel for cfg.
func (c *Cache) Kernel(cfg Config) (*asm.Program, error) {
	e := c.entry(cfg.Key(), func() (*asm.Program, error) { return Generate(cfg) })
	return e.prog, e.err
}

// Band returns the (possibly cached) band kernel for cfg.
func (c *Cache) Band(cfg BandConfig) (*asm.Program, error) {
	e := c.entry(cfg.Key(), func() (*asm.Program, error) { return GenerateBand(cfg) })
	return e.prog, e.err
}

// compiled resolves the compiled form of an entry, building it at most
// once under the cache lock (compilation is deterministic and fast; a
// coarse lock keeps the negative-caching atomic with the asm form).
func (c *Cache) compiledForm(key Key, generate func() (*asm.Program, error),
	opts func() (compile.Options, error)) (*compile.Program, error) {

	e := c.entry(key, generate)
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.compiled {
		return e.cprog, e.compileErr
	}
	e.compiled = true
	if e.err != nil {
		e.compileErr = e.err
		return nil, e.compileErr
	}
	o, err := opts()
	if err != nil {
		e.compileErr = err
		return nil, err
	}
	e.cprog, e.compileErr = compile.Compile(e.prog, o)
	return e.cprog, e.compileErr
}

// CompiledKernel returns the closure-threaded form of the kernel for
// cfg, or the memoized compile failure (callers then use the checked
// interpreter on the asm form from Kernel).
func (c *Cache) CompiledKernel(cfg Config) (*compile.Program, error) {
	return c.compiledForm(cfg.Key(),
		func() (*asm.Program, error) { return Generate(cfg) },
		func() (compile.Options, error) {
			aopts, err := cfg.AnalysisOptions()
			if err != nil {
				return compile.Options{}, err
			}
			return compile.Options{Lanes: cfg.Lanes, Bounds: *aopts.Bounds, Rotation: aopts.Rotation}, nil
		})
}

// CompiledBand returns the closure-threaded form of the band kernel for
// cfg, with the same negative-caching behavior as CompiledKernel.
func (c *Cache) CompiledBand(cfg BandConfig) (*compile.Program, error) {
	return c.compiledForm(cfg.Key(),
		func() (*asm.Program, error) { return GenerateBand(cfg) },
		func() (compile.Options, error) {
			aopts, err := cfg.AnalysisOptions()
			if err != nil {
				return compile.Options{}, err
			}
			return compile.Options{Lanes: cfg.Lanes, Bounds: *aopts.Bounds, Rotation: aopts.Rotation}, nil
		})
}

// Size reports how many kernel variants are cached.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns the cached kernel keys, sorted — the executor-side
// counterpart of a plan's KernelKeys list.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	keys := make([]Key, 0, len(c.entries))
	for k := range c.entries {
		keys = append(keys, k)
	}
	c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
