package mkernel

import (
	"sync"

	"autogemm/internal/asm"
	"autogemm/internal/sim/compile"
)

// Cache memoizes generated kernels by configuration name. Kernel
// generation is cheap but plans regenerate the same corner-case shapes
// many times; the paper's library likewise JIT-caches its kernels.
//
// Compiled forms (internal/sim/compile) are cached alongside, including
// negative results: a kernel the analyzer cannot prove bound-safe fails
// compilation deterministically, so the error is memoized and repeated
// Plan executions never re-run the analyzer just to fall back to the
// interpreter again.
type Cache struct {
	mu       sync.Mutex
	progs    map[string]*asm.Program
	compiled map[string]compiledEntry
}

type compiledEntry struct {
	prog *compile.Program
	err  error
}

// NewCache returns an empty kernel cache.
func NewCache() *Cache {
	return &Cache{
		progs:    make(map[string]*asm.Program),
		compiled: make(map[string]compiledEntry),
	}
}

// Kernel returns the (possibly cached) kernel for cfg.
func (c *Cache) Kernel(cfg Config) (*asm.Program, error) {
	key := cfg.Name()
	c.mu.Lock()
	if p, ok := c.progs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	p, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, nil
}

// Band returns the (possibly cached) band kernel for cfg.
func (c *Cache) Band(cfg BandConfig) (*asm.Program, error) {
	key := cfg.Name()
	c.mu.Lock()
	if p, ok := c.progs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	p, err := GenerateBand(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, nil
}

// CompiledKernel returns the closure-threaded form of the kernel for
// cfg, or the memoized compile failure (callers then use the checked
// interpreter on the asm form from Kernel).
func (c *Cache) CompiledKernel(cfg Config) (*compile.Program, error) {
	key := "c|" + cfg.Name()
	c.mu.Lock()
	if e, ok := c.compiled[key]; ok {
		c.mu.Unlock()
		return e.prog, e.err
	}
	c.mu.Unlock()
	cp, err := c.compileKernel(cfg)
	c.mu.Lock()
	c.compiled[key] = compiledEntry{prog: cp, err: err}
	c.mu.Unlock()
	return cp, err
}

func (c *Cache) compileKernel(cfg Config) (*compile.Program, error) {
	p, err := c.Kernel(cfg)
	if err != nil {
		return nil, err
	}
	aopts, err := cfg.AnalysisOptions()
	if err != nil {
		return nil, err
	}
	return compile.Compile(p, compile.Options{
		Lanes:    cfg.Lanes,
		Bounds:   *aopts.Bounds,
		Rotation: aopts.Rotation,
	})
}

// CompiledBand returns the closure-threaded form of the band kernel for
// cfg, with the same negative-caching behavior as CompiledKernel.
func (c *Cache) CompiledBand(cfg BandConfig) (*compile.Program, error) {
	key := "c|" + cfg.Name()
	c.mu.Lock()
	if e, ok := c.compiled[key]; ok {
		c.mu.Unlock()
		return e.prog, e.err
	}
	c.mu.Unlock()
	cp, err := c.compileBand(cfg)
	c.mu.Lock()
	c.compiled[key] = compiledEntry{prog: cp, err: err}
	c.mu.Unlock()
	return cp, err
}

func (c *Cache) compileBand(cfg BandConfig) (*compile.Program, error) {
	p, err := c.Band(cfg)
	if err != nil {
		return nil, err
	}
	aopts, err := cfg.AnalysisOptions()
	if err != nil {
		return nil, err
	}
	return compile.Compile(p, compile.Options{
		Lanes:    cfg.Lanes,
		Bounds:   *aopts.Bounds,
		Rotation: aopts.Rotation,
	})
}

// Size reports how many kernels are cached (asm forms only).
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.progs)
}
