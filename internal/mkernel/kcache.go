package mkernel

import (
	"sync"

	"autogemm/internal/asm"
)

// Cache memoizes generated kernels by configuration name. Kernel
// generation is cheap but plans regenerate the same corner-case shapes
// many times; the paper's library likewise JIT-caches its kernels.
type Cache struct {
	mu    sync.Mutex
	progs map[string]*asm.Program
}

// NewCache returns an empty kernel cache.
func NewCache() *Cache { return &Cache{progs: make(map[string]*asm.Program)} }

// Kernel returns the (possibly cached) kernel for cfg.
func (c *Cache) Kernel(cfg Config) (*asm.Program, error) {
	key := cfg.Name()
	c.mu.Lock()
	if p, ok := c.progs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	p, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, nil
}

// Band returns the (possibly cached) band kernel for cfg.
func (c *Cache) Band(cfg BandConfig) (*asm.Program, error) {
	key := cfg.Name()
	c.mu.Lock()
	if p, ok := c.progs[key]; ok {
		c.mu.Unlock()
		return p, nil
	}
	c.mu.Unlock()
	p, err := GenerateBand(cfg)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, nil
}

// Size reports how many kernels are cached.
func (c *Cache) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.progs)
}
