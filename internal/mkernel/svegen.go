package mkernel

import (
	"fmt"

	"autogemm/internal/asm"
)

// PredConfig selects a predicated SVE micro-kernel. Unlike the NEON-style
// generator, n_r may be ANY positive width: the tail vector column is
// governed by a WHILELT predicate, so no column padding and no buffer
// over-read are needed — the SVE-native edge handling the paper lists as
// future work for A64FX (§V-C). The k tail is predicated too, so the
// kernel performs no out-of-bounds access at all.
type PredConfig struct {
	Tile  Tile // NR need not be a multiple of Lanes
	KC    int
	Lanes int
	LoadC bool

	// SkipAnalysis disables the dataflow analysis gate; see
	// Config.SkipAnalysis.
	SkipAnalysis bool
}

// Name returns a stable identifier.
func (c PredConfig) Name() string {
	s := fmt.Sprintf("mksve_%dx%dx%d_l%d", c.Tile.MR, c.Tile.NR, c.KC, c.Lanes)
	if !c.LoadC {
		s += "_bz"
	}
	return s
}

// Feasible reports whether the predicated kernel fits the register
// files: ⌈n_r/σ⌉ vector columns plus A and B registers within 32.
func (c PredConfig) Feasible() bool {
	if c.Tile.MR < 1 || c.Tile.MR > MaxMR || c.Tile.NR < 1 || c.KC < 1 || c.Lanes < 1 {
		return false
	}
	nhat := (c.Tile.NR + c.Lanes - 1) / c.Lanes
	return c.Tile.MR*nhat+c.Tile.MR+nhat <= 32
}

// Predicate-construction temporaries. They are x6 and x7 — the same
// registers the row pointers later occupy — which is safe because every
// predicate is built up front, before the row-pointer setup, and
// predicates never change afterwards (the k-tail predicate only applies
// to the final block, so one WHILELT covers it).
const (
	regPredIdx   = regRowBase
	regPredLimit = regRowBase + 1
)

// GeneratePredicated emits a fully-unrolled predicated kernel computing
// C(m_r, n_r) (+)= A(m_r, k_c)·B(k_c, n_r) with exact bounds: predicated
// loads/stores at the n tail and k tail. The argument convention matches
// Generate.
func GeneratePredicated(cfg PredConfig) (*asm.Program, error) {
	if !cfg.Feasible() {
		return nil, fmt.Errorf("mkernel: predicated config %s not feasible", cfg.Name())
	}
	mr := cfg.Tile.MR
	lanes := cfg.Lanes
	nhat := (cfg.Tile.NR + lanes - 1) / lanes
	kc := cfg.KC

	regC := func(row, col int) asm.Reg { return asm.V(row*nhat + col) }
	regA := func(row int) asm.Reg { return asm.V(mr*nhat + row) }
	regB := func(col int) asm.Reg { return asm.V(mr*nhat + mr + col) }
	pFull := asm.P(0) // all lanes
	pTail := asm.P(1) // n-tail lanes
	pK := asm.P(2)    // k-tail lanes for A loads
	colPred := func(col int) asm.Reg {
		if col == nhat-1 {
			return pTail
		}
		return pFull
	}

	p := asm.NewProgram(cfg.Name())
	// Predicates first, while x6/x7 are still free: full, the n-tail
	// (whilelt((n̂-1)·σ, n_r)) and the k-tail for the final block.
	blocks := (kc + lanes - 1) / lanes
	p.PTrue(pFull)
	p.MovI(asm.X(regPredIdx), int64((nhat-1)*lanes))
	p.MovI(asm.X(regPredLimit), int64(cfg.Tile.NR))
	p.Whilelt(pTail, asm.X(regPredIdx), asm.X(regPredLimit)).Comment("n-tail lanes")
	p.MovI(asm.X(regPredIdx), int64((blocks-1)*lanes))
	p.MovI(asm.X(regPredLimit), int64(kc))
	p.Whilelt(pK, asm.X(regPredIdx), asm.X(regPredLimit)).Comment("k-tail lanes")

	// Strides to bytes; row pointers (reusing x6/x7 onwards).
	p.Lsl(asm.X(regArgLda), asm.X(regArgLda), 2)
	p.Lsl(asm.X(regArgLdb), asm.X(regArgLdb), 2)
	p.Lsl(asm.X(regArgLdc), asm.X(regArgLdc), 2)
	p.Mov(asm.X(regRowBase), asm.X(regArgA))
	p.Mov(asm.X(regRowBase+mr), asm.X(regArgC))
	for row := 1; row < mr; row++ {
		p.Add(asm.X(regRowBase+row), asm.X(regRowBase+row-1), asm.X(regArgLda))
		p.Add(asm.X(regRowBase+mr+row), asm.X(regRowBase+mr+row-1), asm.X(regArgLdc))
	}

	// Accumulators.
	for row := 0; row < mr; row++ {
		for col := 0; col < nhat; col++ {
			if cfg.LoadC {
				p.Ld1W(regC(row, col), colPred(col), asm.X(regRowBase+mr+row), int64(col*lanes*4))
			} else {
				p.VZero(regC(row, col))
			}
		}
	}

	// Fully unrolled k blocks with an exact k-tail predicate. B rows are
	// loaded one step ahead, as in the NEON generator's pipeline; because
	// the unroll is total, the final step simply omits its load — exact
	// bounds without losing the load/FMA overlap.
	for col := 0; col < nhat; col++ {
		p.Ld1W(regB(col), colPred(col), asm.X(regArgB), int64(col*lanes*4)).
			Comment("load B row 0")
	}
	p.Add(asm.X(regArgB), asm.X(regArgB), asm.X(regArgLdb))
	g := 0
	for blk := 0; blk < blocks; blk++ {
		kbase := blk * lanes
		steps := min(lanes, kc-kbase)
		aPred := pFull
		if blk == blocks-1 {
			aPred = pK
		}
		for row := 0; row < mr; row++ {
			p.Ld1W(regA(row), aPred, asm.X(regRowBase+row), int64(kbase*4))
		}
		for i := 0; i < steps; i++ {
			for col := 0; col < nhat; col++ {
				for row := 0; row < mr; row++ {
					p.Fmla(regC(row, col), regB(col), regA(row), i)
				}
				if g+1 < kc {
					p.Ld1W(regB(col), colPred(col), asm.X(regArgB), int64(col*lanes*4))
				}
			}
			if g+1 < kc {
				p.Add(asm.X(regArgB), asm.X(regArgB), asm.X(regArgLdb))
			}
			g++
		}
	}

	// Stores, exact to the n edge.
	for row := 0; row < mr; row++ {
		for col := 0; col < nhat; col++ {
			p.St1W(regC(row, col), colPred(col), asm.X(regRowBase+mr+row), int64(col*lanes*4))
		}
	}
	p.Ret()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !cfg.SkipAnalysis {
		if err := analyzeGate(p, cfg.AnalysisOptions()); err != nil {
			return nil, err
		}
	}
	return p, nil
}
