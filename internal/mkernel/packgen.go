package mkernel

import (
	"fmt"

	"autogemm/internal/asm"
)

// PackConfig describes a generated packing kernel: the vectorized copy
// that moves a Rows × Cols panel from a strided source (leading
// dimension in x3) into a contiguous destination (leading dimension in
// x4). The paper describes autoGEMM as generating "in-library packing
// kernels" alongside the compute kernels; this generator produces them
// in the same IR so the simulator can time packing with the same
// machinery (the pack-kernels experiment compares the measurement with
// the analytic cost model used by Estimate).
//
// Convention: x0 = src, x1 = dst, x3 = src leading dimension, x4 = dst
// leading dimension (elements). Cols is rounded up to σ_lane by the
// caller; the generated kernel copies whole vectors.
type PackConfig struct {
	Rows, Cols int
	Lanes      int

	// SkipAnalysis disables the dataflow analysis gate; see
	// Config.SkipAnalysis.
	SkipAnalysis bool
}

// Name returns a stable identifier.
func (c PackConfig) Name() string {
	return fmt.Sprintf("pack_%dx%d_l%d", c.Rows, c.Cols, c.Lanes)
}

// GeneratePack emits the packing kernel. The row loop is a real loop
// (SUBS/BNE); the column copies are unrolled with a rotating pair of
// vector registers so loads and stores overlap.
func GeneratePack(cfg PackConfig) (*asm.Program, error) {
	if cfg.Rows < 1 || cfg.Cols < 1 || cfg.Lanes < 1 {
		return nil, fmt.Errorf("mkernel: bad pack config %+v", cfg)
	}
	if cfg.Cols%cfg.Lanes != 0 {
		return nil, fmt.Errorf("mkernel: pack cols %d not a multiple of σ_lane %d", cfg.Cols, cfg.Lanes)
	}
	p := asm.NewProgram(cfg.Name())
	vb := int64(cfg.Lanes * 4)
	nv := cfg.Cols / cfg.Lanes

	p.Lsl(asm.X(3), asm.X(3), 2).Comment("src stride to bytes")
	p.Lsl(asm.X(4), asm.X(4), 2).Comment("dst stride to bytes")
	p.Mov(asm.X(6), asm.X(0))
	p.Mov(asm.X(7), asm.X(1))
	p.MovI(asm.X(29), int64(cfg.Rows))
	p.Label("rows")
	// Copy one row, unrolled over vector chunks with two rotating regs.
	for v := 0; v < nv; v++ {
		p.LdrQ(asm.V(v%2), asm.X(6), int64(v)*vb)
		p.StrQ(asm.V(v%2), asm.X(7), int64(v)*vb)
	}
	p.Add(asm.X(6), asm.X(6), asm.X(3))
	p.Add(asm.X(7), asm.X(7), asm.X(4))
	p.Subs(asm.X(29), asm.X(29), 1)
	p.Bne("rows")
	p.Ret()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !cfg.SkipAnalysis {
		if err := analyzeGate(p, cfg.AnalysisOptions()); err != nil {
			return nil, err
		}
	}
	return p, nil
}
