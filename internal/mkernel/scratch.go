package mkernel

// Scratch is the per-worker scratch envelope a plan's blocks execute
// in when operands are staged: the packed A block, the packed B panel,
// the padded C staging buffer and its leading dimension. The sizes
// carry the documented kernel slack — MaxMR rows for padded row bands,
// MaxNROverhang columns for padded tiles, and the rotation preload
// over-reads (one vector past an A row, two rows past the B panel).
type Scratch struct {
	PackA int // elements: A block, row-major, lda = k_c
	PackB int // elements: B panel, row-major, ldb = LD
	CBuf  int // elements: padded C block staging buffer, ldc = LD
	LD    int // leading dimension of PackB and CBuf
}

// ScratchEnvelope sizes the staging buffers for a cache-block shape.
// It is the single source of truth shared by the executor (which
// allocates exactly these lengths per worker) and the plan auditor
// (which proves every kernel call of a loaded plan fits inside them,
// so the analyzer-licensed bounds elision stays sound for staged
// execution). Keep in sync with nothing: both sides call this.
func ScratchEnvelope(mc, nc, kc, lanes int) Scratch {
	ncQ := (nc + lanes - 1) / lanes * lanes
	ld := ncQ + MaxNROverhang(lanes)
	return Scratch{
		PackA: (mc+MaxMR)*kc + 2*lanes,
		PackB: (kc+2)*ld + 2*lanes,
		CBuf:  (mc+MaxMR)*ld + 2*lanes,
		LD:    ld,
	}
}
