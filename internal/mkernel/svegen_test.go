package mkernel

import (
	"testing"
	"testing/quick"

	"autogemm/internal/refgemm"
	"autogemm/internal/sim"
)

// runPredicated executes a predicated kernel with ZERO slack: the exact
// matrix footprints, proving there is no over-read or over-write.
func runPredicated(t *testing.T, cfg PredConfig) {
	t.Helper()
	prog, err := GeneratePredicated(cfg)
	if err != nil {
		t.Fatalf("GeneratePredicated(%s): %v", cfg.Name(), err)
	}
	mr, nr, kc, lanes := cfg.Tile.MR, cfg.Tile.NR, cfg.KC, cfg.Lanes

	arena := sim.NewArena(4)
	aAddr := arena.Alloc(mr * kc) // exact, no slack
	bAddr := arena.Alloc(kc * nr)
	cAddr := arena.Alloc(mr * nr) // the final allocation: any overrun faults

	a := arena.Slice(aAddr, mr*kc)
	b := arena.Slice(bAddr, kc*nr)
	c := arena.Slice(cAddr, mr*nr)
	refgemm.Fill(a, mr, kc, kc, 61)
	refgemm.Fill(b, kc, nr, nr, 62)
	refgemm.Fill(c, mr, nr, nr, 63)

	want := make([]float32, mr*nr)
	if cfg.LoadC {
		copy(want, c)
	}
	refgemm.GEMM(mr, nr, kc, a, kc, b, nr, want, nr)

	m := sim.NewMachine(arena, lanes)
	m.SetArg(0, aAddr)
	m.SetArg(1, bAddr)
	m.SetArg(2, cAddr)
	m.SetArg(3, int64(kc))
	m.SetArg(4, int64(nr))
	m.SetArg(5, int64(nr))
	if err := m.Run(prog, 10_000_000); err != nil {
		t.Fatalf("Run(%s): %v", prog.Name, err)
	}
	if e := refgemm.MaxRelErr(c, want, mr, nr, nr, nr); e > refgemm.Tolerance {
		t.Errorf("%s: max rel err %.3g", cfg.Name(), e)
	}
}

// TestPredicatedArbitraryWidths: n_r values that are NOT multiples of
// the 16-lane SVE width compute exactly, with no padding anywhere.
func TestPredicatedArbitraryWidths(t *testing.T) {
	for _, nr := range []int{1, 3, 7, 15, 16, 17, 20, 31, 33, 47} {
		for _, kc := range []int{1, 5, 16, 19, 40} {
			cfg := PredConfig{Tile: Tile{MR: 4, NR: nr}, KC: kc, Lanes: 16, LoadC: true}
			if !cfg.Feasible() {
				continue
			}
			t.Run(cfg.Name(), func(t *testing.T) { runPredicated(t, cfg) })
		}
	}
}

// TestPredicatedNEONWidths: the predicated generator also works at NEON
// width (4 lanes), covering sub-vector tails like n_r = 3.
func TestPredicatedNEONWidths(t *testing.T) {
	for _, tile := range []Tile{{2, 3}, {5, 6}, {3, 13}, {8, 5}} {
		cfg := PredConfig{Tile: tile, KC: 11, Lanes: 4, LoadC: true}
		if !cfg.Feasible() {
			t.Fatalf("%v unexpectedly infeasible", tile)
		}
		runPredicated(t, cfg)
	}
}

// TestPredicatedBetaZero covers the overwrite variant.
func TestPredicatedBetaZero(t *testing.T) {
	runPredicated(t, PredConfig{Tile: Tile{MR: 3, NR: 21}, KC: 18, Lanes: 16, LoadC: false})
}

// TestPredicatedFeasibility checks the register budget math and limits.
func TestPredicatedFeasibility(t *testing.T) {
	bad := []PredConfig{
		{Tile: Tile{MR: 0, NR: 4}, KC: 4, Lanes: 16},
		{Tile: Tile{MR: 4, NR: 0}, KC: 4, Lanes: 16},
		{Tile: Tile{MR: 4, NR: 4}, KC: 0, Lanes: 16},
		{Tile: Tile{MR: 12, NR: 4}, KC: 4, Lanes: 16},     // beyond MaxMR
		{Tile: Tile{MR: 8, NR: 16 * 4}, KC: 4, Lanes: 16}, // 8·4+8+4 = 44 registers > 32
	}
	for _, cfg := range bad {
		if cfg.Feasible() {
			t.Errorf("%s should be infeasible", cfg.Name())
		}
		if _, err := GeneratePredicated(cfg); err == nil {
			t.Errorf("%s generated despite infeasibility", cfg.Name())
		}
	}
}

// TestPredicatedProperty: random shapes stay exact with zero slack.
func TestPredicatedProperty(t *testing.T) {
	f := func(mrRaw, nrRaw, kcRaw uint8) bool {
		cfg := PredConfig{
			Tile:  Tile{MR: int(mrRaw)%4 + 1, NR: int(nrRaw)%40 + 1},
			KC:    int(kcRaw)%30 + 1,
			Lanes: 16, LoadC: true,
		}
		if !cfg.Feasible() {
			return true
		}
		prog, err := GeneratePredicated(cfg)
		if err != nil {
			return false
		}
		mr, nr, kc := cfg.Tile.MR, cfg.Tile.NR, cfg.KC
		arena := sim.NewArena(4)
		aAddr := arena.Alloc(mr * kc)
		bAddr := arena.Alloc(kc * nr)
		cAddr := arena.Alloc(mr * nr)
		a := arena.Slice(aAddr, mr*kc)
		b := arena.Slice(bAddr, kc*nr)
		c := arena.Slice(cAddr, mr*nr)
		refgemm.Fill(a, mr, kc, kc, uint64(mrRaw))
		refgemm.Fill(b, kc, nr, nr, uint64(nrRaw))
		want := make([]float32, mr*nr)
		refgemm.GEMM(mr, nr, kc, a, kc, b, nr, want, nr)
		m := sim.NewMachine(arena, 16)
		m.SetArg(0, aAddr)
		m.SetArg(1, bAddr)
		m.SetArg(2, cAddr)
		m.SetArg(3, int64(kc))
		m.SetArg(4, int64(nr))
		m.SetArg(5, int64(nr))
		if err := m.Run(prog, 10_000_000); err != nil {
			return false
		}
		return refgemm.MaxRelErr(c, want, mr, nr, nr, nr) <= refgemm.Tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPredicatedPrintsSVE: the rendered assembly uses SVE mnemonics.
func TestPredicatedPrintsSVE(t *testing.T) {
	prog, err := GeneratePredicated(PredConfig{Tile: Tile{MR: 2, NR: 20}, KC: 8, Lanes: 16, LoadC: true})
	if err != nil {
		t.Fatal(err)
	}
	out := prog.String()
	for _, want := range []string{"whilelt", "ptrue", "ld1w", "st1w", "/z"} {
		if !contains(out, want) {
			t.Errorf("assembly missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
