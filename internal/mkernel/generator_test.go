package mkernel

import (
	"fmt"
	"testing"

	"autogemm/internal/refgemm"
	"autogemm/internal/sim"
)

// runKernel allocates matrices in an arena, executes the kernel
// functionally, and returns the resulting C alongside the reference.
func runKernel(t *testing.T, cfg Config) (got, want []float32) {
	t.Helper()
	prog, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate(%+v): %v", cfg, err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	mr, nr, kc, lanes := cfg.Tile.MR, cfg.Tile.NR, cfg.KC, cfg.Lanes

	arena := sim.NewArena(4096)
	// Slack for the documented over-read: one vector per A row, two B rows.
	aAddr := arena.Alloc(mr*kc + lanes)
	bAddr := arena.Alloc((kc+2)*nr + lanes)
	cAddr := arena.Alloc(mr*nr + lanes)

	a := arena.Slice(aAddr, mr*kc)
	b := arena.Slice(bAddr, kc*nr)
	c := arena.Slice(cAddr, mr*nr)
	refgemm.Fill(a, mr, kc, kc, 1)
	refgemm.Fill(b, kc, nr, nr, 2)
	refgemm.Fill(c, mr, nr, nr, 3)

	want = make([]float32, mr*nr)
	if cfg.LoadC {
		copy(want, c)
	}
	refgemm.GEMM(mr, nr, kc, a, kc, b, nr, want, nr)

	m := sim.NewMachine(arena, lanes)
	m.SetArg(0, aAddr)
	m.SetArg(1, bAddr)
	m.SetArg(2, cAddr)
	m.SetArg(3, int64(kc)) // lda
	m.SetArg(4, int64(nr)) // ldb
	m.SetArg(5, int64(nr)) // ldc
	if err := m.Run(prog, 10_000_000); err != nil {
		t.Fatalf("Run(%s): %v", prog.Name, err)
	}
	return c, want
}

func checkKernel(t *testing.T, cfg Config) {
	t.Helper()
	got, want := runKernel(t, cfg)
	if e := refgemm.MaxRelErr(got, want, cfg.Tile.MR, cfg.Tile.NR, cfg.Tile.NR, cfg.Tile.NR); e > refgemm.Tolerance {
		t.Errorf("%s: max rel err %.3g > %.0e", cfg.Name(), e, refgemm.Tolerance)
	}
}

// TestGenerateMatchesReference sweeps every preferred tile and a spread
// of k_c values (divisible, remainder, tiny) through all optimization
// variants on NEON, checking numerical equality with the reference GEMM.
func TestGenerateMatchesReference(t *testing.T) {
	kcs := []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 64, 77}
	for _, tile := range PreferredTiles(4) {
		for _, kc := range kcs {
			for _, rotate := range []bool{false, true} {
				for _, loadC := range []bool{true, false} {
					cfg := Config{Tile: tile, KC: kc, Lanes: 4,
						Rotate: rotate, LoadC: loadC, SigmaAI: 6.0}
					t.Run(cfg.Name(), func(t *testing.T) { checkKernel(t, cfg) })
				}
			}
		}
	}
}

// TestGenerateCornerTiles checks the low-AI corner-case shapes that DMT
// uses at edges, including m_r = 1 strips and memory-bound tiles where
// rotation switches to B double-buffering.
func TestGenerateCornerTiles(t *testing.T) {
	tiles := []Tile{{1, 4}, {1, 16}, {2, 4}, {2, 16}, {3, 8}, {2, 28}, {3, 28}, {8, 4}, {11, 4}}
	for _, tile := range tiles {
		for _, kc := range []int{1, 4, 6, 16, 23} {
			for _, rotate := range []bool{false, true} {
				cfg := Config{Tile: tile, KC: kc, Lanes: 4,
					Rotate: rotate, LoadC: true, SigmaAI: 6.0}
				t.Run(cfg.Name(), func(t *testing.T) { checkKernel(t, cfg) })
			}
		}
	}
}

// TestGenerateSVE runs the SVE (16-lane) configuration used by A64FX.
func TestGenerateSVE(t *testing.T) {
	for _, tile := range PreferredTiles(16) {
		for _, kc := range []int{5, 16, 32, 33, 48} {
			for _, rotate := range []bool{false, true} {
				cfg := Config{Tile: tile, KC: kc, Lanes: 16,
					Rotate: rotate, LoadC: true, SigmaAI: 8.0}
				t.Run(cfg.Name(), func(t *testing.T) { checkKernel(t, cfg) })
			}
		}
	}
}

// TestGenerateRejectsBadConfigs verifies input validation.
func TestGenerateRejectsBadConfigs(t *testing.T) {
	cases := []Config{
		{Tile: Tile{5, 16}, KC: 0, Lanes: 4}, // kc <= 0
		{Tile: Tile{5, 16}, KC: 8, Lanes: 0}, // no lanes
		{Tile: Tile{5, 15}, KC: 8, Lanes: 4}, // nr not multiple of lanes
		{Tile: Tile{0, 16}, KC: 8, Lanes: 4}, // mr < 1
		{Tile: Tile{12, 4}, KC: 8, Lanes: 4}, // beyond row-pointer ABI
		{Tile: Tile{8, 16}, KC: 8, Lanes: 4}, // register budget exceeded
	}
	for _, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", cfg)
		}
	}
}

// TestRotationInstructionMix: rotation must not change the total number
// of loads, stores, or FMAs — only their placement and registers.
func TestRotationInstructionMix(t *testing.T) {
	for _, tile := range []Tile{{5, 16}, {2, 16}, {4, 20}} {
		base, err := Generate(Config{Tile: tile, KC: 32, Lanes: 4, LoadC: true, SigmaAI: 6.0})
		if err != nil {
			t.Fatal(err)
		}
		rot, err := Generate(Config{Tile: tile, KC: 32, Lanes: 4, Rotate: true, LoadC: true, SigmaAI: 6.0})
		if err != nil {
			t.Fatal(err)
		}
		// Static FMA counts are equal; loads/stores equal up to loop
		// structure (rotation unrolls 2 blocks per iteration).
		bs, rs := base.CollectStats(), rot.CollectStats()
		if bs.Stores != rs.Stores {
			t.Errorf("%v: stores changed %d -> %d", tile, bs.Stores, rs.Stores)
		}
		if bs.FMA != rs.FMA {
			// The static body doubles under A-rotation unrolling; compare
			// dynamic counts instead via functional run length.
			t.Logf("%v: static FMA differ (unrolling): %d vs %d", tile, bs.FMA, rs.FMA)
		}
	}
}

// TestVectorRegisterBudget: no generated kernel may exceed the 32-vector
// register file, the constraint Table II is built on.
func TestVectorRegisterBudget(t *testing.T) {
	for _, lanes := range []int{4, 16} {
		for _, tile := range FeasibleTiles(lanes) {
			if !tile.Generatable(lanes) {
				continue
			}
			for _, rotate := range []bool{false, true} {
				p, err := Generate(Config{Tile: tile, KC: 3 * lanes, Lanes: lanes,
					Rotate: rotate, LoadC: true, SigmaAI: 6.0})
				if err != nil {
					t.Fatalf("%v lanes=%d: %v", tile, lanes, err)
				}
				if n := p.VectorRegsUsed(); n > 32 {
					t.Errorf("%v lanes=%d rotate=%v: uses %d vector registers", tile, lanes, rotate, n)
				}
			}
		}
	}
}

func ExampleGenerate() {
	p, _ := Generate(Config{Tile: Tile{2, 8}, KC: 4, Lanes: 4, LoadC: true})
	fmt.Println(p.Name)
	// Output: mk_2x8x4_l4
}
