package mkernel

// This file defines the canonical kernel configurations an execution
// plan addresses. A plan records kernel cache keys (Config.Key /
// BandConfig.Key strings); the planner enumerates them, the executor
// requests them, and the plan auditor re-derives them from the plan's
// tilings to prove a loaded plan only names kernels this library can
// actually generate. All three construct configurations through these
// two functions, so plan keys and cache keys cannot drift apart.

// PlanKernelConfig builds the single-tile kernel configuration a plan
// executes for one tile at a given k-chunk depth.
func PlanKernelConfig(t Tile, kb, lanes int, rotate bool, sigmaAI float64) Config {
	return Config{
		Tile: t, KC: kb, Lanes: lanes,
		Rotate: rotate, LoadC: true, SigmaAI: sigmaAI,
	}
}

// PlanBandConfig builds the fused band-kernel configuration a plan
// executes for a band at a given k-chunk depth.
func PlanBandConfig(segs []Segment, kb, lanes int, rotate bool, sigmaAI float64) BandConfig {
	return BandConfig{
		Segments: segs, KC: kb, Lanes: lanes,
		Rotate: rotate, Fuse: true, LoadC: true, SigmaAI: sigmaAI,
	}
}
