package mkernel

import (
	"fmt"
	"strconv"

	"autogemm/internal/asm"
)

// Segment is a run of identical tiles along the n dimension of a band.
type Segment struct {
	Tile  Tile
	Count int
}

// BandConfig describes a fused band kernel: a row band of height m_r that
// walks a sequence of tiles left to right across n, all sharing the same
// A rows and k_c depth. With Fuse set, each tile's epilogue stores are
// interleaved with the next tile's prologue loads so the pipeline can
// overlap them and the per-kernel launch gap disappears (§III-C2). The
// four fusion modes of Fig 4 (c_to_c, m_to_m, c_to_m, m_to_c) arise from
// the boundedness of adjacent segments.
type BandConfig struct {
	Segments []Segment
	KC       int
	Lanes    int
	Rotate   bool
	Fuse     bool
	LoadC    bool
	SigmaAI  float64
	Prefetch bool

	// SkipAnalysis disables the dataflow analysis gate; see
	// Config.SkipAnalysis.
	SkipAnalysis bool
}

// Name returns a stable identifier for the band variant. It is built
// with a single append buffer rather than fmt: the planner derives one
// Key per band per candidate block, and fmt-based formatting dominated
// the planner's per-block cost.
func (c BandConfig) Name() string {
	b := make([]byte, 0, 64)
	b = append(b, "band_k"...)
	b = strconv.AppendInt(b, int64(c.KC), 10)
	b = append(b, "_l"...)
	b = strconv.AppendInt(b, int64(c.Lanes), 10)
	for _, seg := range c.Segments {
		b = append(b, '_')
		b = strconv.AppendInt(b, int64(seg.Tile.MR), 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, int64(seg.Tile.NR), 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, int64(seg.Count), 10)
	}
	if c.Rotate {
		b = append(b, "_rot"...)
	}
	if c.Fuse {
		b = append(b, "_fuse"...)
	}
	if !c.LoadC {
		b = append(b, "_bz"...)
	}
	return string(b)
}

// MR returns the band height, validating that all segments agree.
func (c BandConfig) MR() (int, error) {
	if len(c.Segments) == 0 {
		return 0, fmt.Errorf("mkernel: band has no segments")
	}
	mr := c.Segments[0].Tile.MR
	for _, s := range c.Segments {
		if s.Tile.MR != mr {
			return 0, fmt.Errorf("mkernel: band mixes m_r %d and %d", mr, s.Tile.MR)
		}
		if s.Count <= 0 {
			return 0, fmt.Errorf("mkernel: segment with non-positive count")
		}
	}
	return mr, nil
}

// Width returns the total n extent of the band.
func (c BandConfig) Width() int {
	w := 0
	for _, s := range c.Segments {
		w += s.Tile.NR * s.Count
	}
	return w
}

// Tiles expands the segments into a flat tile sequence.
func (c BandConfig) Tiles() []Tile {
	var tiles []Tile
	for _, s := range c.Segments {
		for i := 0; i < s.Count; i++ {
			tiles = append(tiles, s.Tile)
		}
	}
	return tiles
}

// cLoadInstrsAt is like cLoadInstrs but reads the accumulators from
// extraCols vector-widths beyond the current C row pointers — used in
// fused bands where the pointers still sit at the previous tile's
// columns while its stores drain.
func (g *gen) cLoadInstrsAt(extraCols int) []asm.Instr {
	var out []asm.Instr
	vb := int64(g.cfg.Lanes * 4)
	for row := 0; row < g.mr; row++ {
		for col := 0; col < g.nhat; col++ {
			if g.cfg.LoadC {
				out = append(out, asm.Instr{
					Op: asm.OpLdrQ, Dst: g.regC(row, col),
					Src1: asm.X(regRowBase + g.mr + row), Imm: int64(extraCols+col) * vb,
				})
			} else {
				out = append(out, asm.Instr{Op: asm.OpVZero, Dst: g.regC(row, col)})
			}
		}
	}
	return out
}

// storeInstrsOffset returns offset-addressed stores (the band form: the
// C row pointers are advanced separately so that interleaved next-tile
// loads see stable addresses).
func (g *gen) storeInstrsOffset() []asm.Instr {
	var out []asm.Instr
	vb := int64(g.cfg.Lanes * 4)
	for row := 0; row < g.mr; row++ {
		for col := 0; col < g.nhat; col++ {
			out = append(out, asm.Instr{
				Op: asm.OpStrQ, Dst: g.regC(row, col),
				Src1: asm.X(regRowBase + g.mr + row), Imm: int64(col) * vb,
			})
		}
	}
	return out
}

// cAdvanceInstrs moves every C row pointer past the current tile.
func (g *gen) cAdvanceInstrs() []asm.Instr {
	var out []asm.Instr
	for row := 0; row < g.mr; row++ {
		out = append(out, asm.Instr{
			Op: asm.OpAddI, Dst: asm.X(regRowBase + g.mr + row),
			Src1: asm.X(regRowBase + g.mr + row), Imm: int64(g.cfg.Tile.NR) * 4,
			Comment: "advance C row to next tile",
		})
	}
	return out
}

// GenerateBand emits one program computing the whole band. The argument
// convention matches Generate; the B pointer argument is the base of the
// full B panel (k_c × bandwidth) and each tile addresses its column slice.
func GenerateBand(cfg BandConfig) (*asm.Program, error) {
	mr, err := cfg.MR()
	if err != nil {
		return nil, err
	}
	if cfg.KC <= 0 {
		return nil, fmt.Errorf("mkernel: kc must be positive")
	}
	p := asm.NewProgram(cfg.Name())

	// Shared setup: byte strides and the saved B base.
	if cfg.Prefetch {
		p.Prfm(asm.X(regArgA), 0)
		p.Prfm(asm.X(regArgB), 0)
		p.Prfm(asm.X(regArgC), 0)
	}
	p.Lsl(asm.X(regArgLda), asm.X(regArgLda), 2)
	p.Lsl(asm.X(regArgLdb), asm.X(regArgLdb), 2)
	p.Lsl(asm.X(regArgLdc), asm.X(regArgLdc), 2)
	p.Mov(asm.X(regBBase), asm.X(regArgB)).Comment("save B panel base")

	khat := cfg.KC / cfg.Lanes
	aRewind := int64((khat + 1) * cfg.Lanes * 4) // bytes each A row pointer advances per tile

	tiles := cfg.Tiles()
	var pendingStores, pendingAdvance []asm.Instr
	var prevTile Tile
	colOff := int64(0)
	labelSeq := 0

	emit := func(ins []asm.Instr) {
		p.Instrs = append(p.Instrs, ins...)
	}

	for ti, tile := range tiles {
		g, err := newGen(Config{
			Tile: tile, KC: cfg.KC, Lanes: cfg.Lanes,
			Rotate: cfg.Rotate, SigmaAI: cfg.SigmaAI, LoadC: cfg.LoadC,
		})
		if err != nil {
			return nil, fmt.Errorf("mkernel: band tile %d: %w", ti, err)
		}
		g.p = p
		g.labelSeq = labelSeq

		// Scalar prologue: row pointers (first tile) or A rewind, plus the
		// B column-slice reset.
		var pro []asm.Instr
		if ti == 0 {
			pro = append(pro, asm.Instr{Op: asm.OpMov, Dst: asm.X(regRowBase), Src1: asm.X(regArgA)})
			pro = append(pro, asm.Instr{Op: asm.OpMov, Dst: asm.X(regRowBase + mr), Src1: asm.X(regArgC)})
			for row := 1; row < mr; row++ {
				pro = append(pro, asm.Instr{Op: asm.OpAdd, Dst: asm.X(regRowBase + row),
					Src1: asm.X(regRowBase + row - 1), Src2: asm.X(regArgLda)})
				pro = append(pro, asm.Instr{Op: asm.OpAdd, Dst: asm.X(regRowBase + mr + row),
					Src1: asm.X(regRowBase + mr + row - 1), Src2: asm.X(regArgLdc)})
			}
		} else {
			for row := 0; row < mr; row++ {
				pro = append(pro, asm.Instr{Op: asm.OpSubI, Dst: asm.X(regRowBase + row),
					Src1: asm.X(regRowBase + row), Imm: aRewind,
					Comment: "rewind A row for next tile"})
			}
		}
		pro = append(pro, asm.Instr{Op: asm.OpAddI, Dst: asm.X(regArgB),
			Src1: asm.X(regBBase), Imm: colOff, Comment: "B column slice"})

		abLoads := g.abLoadInstrs()

		if len(pendingStores) > 0 {
			// Fused boundary: previous stores drain while this tile's
			// prologue loads stream in. Accumulator loads may interleave
			// position-for-position only when both tiles share a register
			// layout; otherwise they wait until every store has retired.
			emit(pro)
			cLoads := g.cLoadInstrsAt(prevTile.NR / cfg.Lanes)
			if prevTile == tile {
				// Same register layout: store j and load j hit the same
				// accumulator, so pairing them is clobber-free, and the
				// A/B loads trail after the final store.
				interleave(p, pendingStores, append(cLoads, abLoads...))
			} else {
				// Different layouts: the incoming tile's registers overlap
				// unstored accumulators arbitrarily, so drain the stores
				// first (the pipeline still overlaps them with the loads —
				// stores retire through the store port asynchronously).
				emit(pendingStores)
				emit(cLoads)
				emit(abLoads)
			}
			emit(pendingAdvance)
			pendingStores, pendingAdvance = nil, nil
		} else {
			emit(pro)
			emit(g.cLoadInstrsAt(0))
			emit(abLoads)
		}

		g.emitMainloop(fmt.Sprintf("band%d", ti))
		labelSeq = g.labelSeq
		g.emitEpilogueFMA()

		stores := g.storeInstrsOffset()
		last := ti == len(tiles)-1
		switch {
		case last:
			emit(stores)
		case cfg.Fuse:
			pendingStores = stores
			pendingAdvance = g.cAdvanceInstrs()
		default:
			emit(stores)
			emit(g.cAdvanceInstrs())
		}
		prevTile = tile
		colOff += int64(tile.NR) * 4
	}
	p.Ret()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !cfg.SkipAnalysis {
		opts, err := cfg.AnalysisOptions()
		if err != nil {
			return nil, err
		}
		if err := analyzeGate(p, opts); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// interleave appends stores and loads alternately, store first so a load
// that reuses a just-stored register stays correct, then the leftovers of
// the longer list.
func interleave(p *asm.Program, stores, loads []asm.Instr) {
	si, li := 0, 0
	for si < len(stores) || li < len(loads) {
		if si < len(stores) {
			p.Instrs = append(p.Instrs, stores[si])
			si++
		}
		if li < len(loads) {
			p.Instrs = append(p.Instrs, loads[li])
			li++
		}
	}
}
