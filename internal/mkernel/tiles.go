// Package mkernel generates autoGEMM micro-kernels: AArch64-IR programs
// computing C(m_r,n_r) += A(m_r,k_c)·B(k_c,n_r) (§III of the paper,
// Listing 1), together with the two pipeline optimizations of §III-C
// (rotating register allocation and epilogue–prologue fusion) and the
// arithmetic-intensity selection math of Table II.
package mkernel

import (
	"fmt"
	"sort"
)

// Tile is a register tile shape (m_r × n_r).
type Tile struct {
	MR int
	NR int
}

// String implements fmt.Stringer.
func (t Tile) String() string { return fmt.Sprintf("%dx%d", t.MR, t.NR) }

// AIMax returns the asymptotic arithmetic intensity of the tile for
// k_c → ∞ (Eqn 2): 2·m_r·n_r / (m_r + n_r) FLOPs per loaded element,
// the figure tabulated in Table II (e.g. 7.62 for 5×16, 8.00 for 8×8).
func (t Tile) AIMax(lanes int) float64 {
	m, n := float64(t.MR), float64(t.NR)
	return 2 * m * n / (m + n)
}

// AI returns the finite-k_c arithmetic intensity of Eqn 3:
//
//	AI = 2·m_r·n̂_r·k_c / (2·m_r·n̂_r + m_r·k̂_c + k_c·n̂_r)
//
// which accounts for the prologue C loads and epilogue C stores that
// dominate when k_c is small (Fig 2).
func (t Tile) AI(kc, lanes int) float64 {
	nv := float64(t.NR) / float64(lanes)
	kv := float64(kc) / float64(lanes)
	m := float64(t.MR)
	k := float64(kc)
	den := 2*m*nv + m*kv + k*nv
	if den == 0 {
		return 0
	}
	return 2 * m * nv * k / den
}

// RegistersNeeded returns the vector registers a straightforward kernel
// for the tile consumes: m_r·n̂_r accumulators, m_r A registers and n̂_r
// B registers.
func (t Tile) RegistersNeeded(lanes int) int {
	nv := t.NR / lanes
	return t.MR*nv + t.MR + nv
}

// Feasible reports whether the tile fits the 32-vector-register file with
// n_r a positive multiple of σ_lane and m_r ≥ 1.
func (t Tile) Feasible(lanes int) bool {
	if t.MR < 1 || t.NR < lanes || t.NR%lanes != 0 {
		return false
	}
	return t.RegistersNeeded(lanes) <= 32
}

// FeasibleTiles enumerates every register tile that fits in 32 vector
// registers for the given σ_lane, in descending-AI order. For NEON
// (lanes=4) this is exactly the 58-tile space the paper derives from the
// 32-register limit (§III-A1).
func FeasibleTiles(lanes int) []Tile {
	var tiles []Tile
	for mr := 1; mr <= 30; mr++ {
		for nr := lanes; ; nr += lanes {
			t := Tile{MR: mr, NR: nr}
			if !t.Feasible(lanes) {
				break
			}
			tiles = append(tiles, t)
		}
	}
	sort.Slice(tiles, func(i, j int) bool {
		ai, aj := tiles[i].AIMax(lanes), tiles[j].AIMax(lanes)
		if ai != aj {
			return ai > aj
		}
		if tiles[i].MR != tiles[j].MR {
			return tiles[i].MR < tiles[j].MR
		}
		return tiles[i].NR < tiles[j].NR
	})
	return tiles
}

// PreferredTiles returns the paper's first-choice micro-kernel shapes:
// the four high-AI tiles highlighted in Table II (8×8, 6×12, 5×16 and
// 4×20 for NEON). For other σ_lane the analogous construction is used —
// for each m_r in 4..8, the widest feasible n_r — keeping the four
// highest-AI shapes. The remaining feasible tiles fill corner cases.
func PreferredTiles(lanes int) []Tile {
	if lanes == 4 {
		// The exact blue set of Table II. (7×12 is register-feasible by
		// the budget formula but the paper excludes it, reserving spare
		// registers for pipeline rotation.)
		return []Tile{{8, 8}, {6, 12}, {5, 16}, {4, 20}}
	}
	var out []Tile
	for mr := 4; mr <= 8; mr++ {
		best := Tile{}
		for nr := lanes; ; nr += lanes {
			t := Tile{MR: mr, NR: nr}
			if !t.Feasible(lanes) {
				break
			}
			best = t
		}
		if best.MR != 0 {
			out = append(out, best)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AIMax(lanes) > out[j].AIMax(lanes) })
	if len(out) > 4 {
		out = out[:4]
	}
	return out
}

// ComputeBound reports whether a tile can reach peak on hardware with
// threshold σ_AI (§III-B2): tiles whose asymptotic AI falls below σ_AI
// are memory-bound and need the B-side rotating register allocation.
func (t Tile) ComputeBound(lanes int, sigmaAI float64) bool {
	return t.AIMax(lanes) >= sigmaAI
}
