package mkernel

import (
	"fmt"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
)

// Config selects a micro-kernel variant.
//
// The generated kernel computes C(m_r, n_r) (+)= A(m_r, k_c) · B(k_c, n_r)
// with the AAPCS64-style argument convention
//
//	x0 = &A, x1 = &B, x2 = &C, x3 = lda, x4 = ldb, x5 = ldc
//
// where leading dimensions are in elements (the kernel converts them to
// bytes itself, as in the paper's Listing 1). Matrices are row-major.
//
// Over-read contract: like the paper's kernels (and most hand-written
// BLAS micro-kernels), the generated code may read up to one vector past
// the end of each A row and up to two rows past the end of the B panel.
// Callers must allocate panels with that much slack; package core does.
type Config struct {
	Tile  Tile
	KC    int
	Lanes int // σ_lane

	// Rotate enables rotating register allocation (§III-C1). The flavour
	// is chosen from the tile's boundedness: compute-bound tiles rotate
	// the A registers, memory-bound tiles double-buffer the B registers.
	Rotate bool
	// SigmaAI is the hardware threshold used for that classification.
	SigmaAI float64
	// LoadC selects accumulate-into-C (load C in the prologue) versus
	// overwrite (zero the accumulators; used for the first k_c chunk).
	LoadC bool
	// Prefetch emits the prologue PRFM hints of Listing 1.
	Prefetch bool

	// SkipAnalysis disables the post-generation dataflow analysis gate
	// (internal/asm/analysis). The zero value analyzes every kernel;
	// tools that want the findings themselves (cmd/autogemm-lint) or
	// tests that deliberately build broken variants set it. Not part of
	// Name(): the emitted instructions are identical either way.
	SkipAnalysis bool
}

// Name returns a stable identifier for the kernel variant.
func (c Config) Name() string {
	s := fmt.Sprintf("mk_%dx%dx%d_l%d", c.Tile.MR, c.Tile.NR, c.KC, c.Lanes)
	if c.Rotate {
		s += "_rot"
	}
	if !c.LoadC {
		s += "_bz"
	}
	return s
}

// Argument register assignments shared by all generated kernels.
const (
	regArgA    = 0
	regArgB    = 1
	regArgC    = 2
	regArgLda  = 3
	regArgLdb  = 4
	regArgLdc  = 5
	regRowBase = 6  // x6..x6+mr-1: A row pointers; x6+mr..x6+2mr-1: C row pointers
	regBBase   = 28 // band kernels: saved B panel base
	regCounter = 29 // main loop counter
)

// MaxMR is the largest m_r the scalar-register convention supports
// (A and C row pointers occupy x6..x6+2·m_r−1, capped below x28).
const MaxMR = 11

// MaxNROverhang bounds how far a padded tile may write past a block's
// lane-quantized n extent: the padded strategies use tiles no wider than
// 8·σ_lane, so buffers sized with this slack absorb every overhang.
func MaxNROverhang(lanes int) int { return 8 * lanes }

// Generatable reports whether a kernel can actually be emitted for the
// tile: register-feasible and within the row-pointer ABI limit. Table II
// enumerates all 58 register-feasible tiles; a handful of extreme-m_r
// corner shapes (m_r > 11, all with lower AI than available
// alternatives) are excluded from generation.
func (t Tile) Generatable(lanes int) bool {
	return t.Feasible(lanes) && t.MR <= MaxMR
}

// gen is the emission state for one kernel.
type gen struct {
	cfg  Config
	p    *asm.Program
	mr   int
	nhat int // n̂_r
	khat int // ⌊k_c / σ_lane⌋
	rem  int // k_c mod σ_lane

	rotA int  // rows with a second A register set (compute-bound rotation)
	rotB bool // B double-buffering (memory-bound rotation)

	labelSeq int
}

func (g *gen) regC(row, col int) asm.Reg { return asm.V(row*g.nhat + col) }
func (g *gen) regA(row int) asm.Reg      { return asm.V(g.mr*g.nhat + row) }
func (g *gen) regB(col int) asm.Reg      { return asm.V(g.mr*g.nhat + g.mr + col) }
func (g *gen) regB2(col int) asm.Reg     { return asm.V(g.mr*g.nhat + g.mr + g.nhat + col) }

// regA2 places the rotated A set after the (possibly doubled) B sets.
func (g *gen) regA2(row int) asm.Reg {
	off := g.mr*g.nhat + g.mr + g.nhat
	if g.rotB {
		off += g.nhat
	}
	return asm.V(off + row)
}

// aReg returns the A register for a row under rotation parity. Parity 0
// is the primary set; in parity 1 the first rotA rows live in the spare
// set (they were preloaded during the previous block).
func (g *gen) aReg(row, parity int) asm.Reg {
	if parity == 1 && row < g.rotA {
		return g.regA2(row)
	}
	return g.regA(row)
}

// bReg returns the B register for a column at global k-step parity.
func (g *gen) bReg(col, parity int) asm.Reg {
	if g.rotB && parity == 1 {
		return g.regB2(col)
	}
	return g.regB(col)
}

func newGen(cfg Config) (*gen, error) {
	t := cfg.Tile
	if cfg.Lanes <= 0 {
		return nil, fmt.Errorf("mkernel: lanes must be positive")
	}
	if cfg.KC <= 0 {
		return nil, fmt.Errorf("mkernel: kc must be positive, got %d", cfg.KC)
	}
	if !t.Generatable(cfg.Lanes) {
		return nil, fmt.Errorf("mkernel: tile %s is not generatable for %d lanes", t, cfg.Lanes)
	}
	g := &gen{
		cfg:  cfg,
		mr:   t.MR,
		nhat: t.NR / cfg.Lanes,
		khat: cfg.KC / cfg.Lanes,
		rem:  cfg.KC % cfg.Lanes,
	}
	if cfg.Rotate {
		spare := 32 - t.RegistersNeeded(cfg.Lanes)
		// B-side double buffering (Eqn 10) removes the FMA→LOAD→FMA
		// bubble that dominates memory-bound tiles — and, on chips whose
		// load latency exceeds one k-step of FMA work, hurts nominally
		// compute-bound tiles too. Apply it whenever the registers fit,
		// then spend what remains on the A-side rotation (Eqn 9). A-side
		// preloads are spread across the σ_lane k-steps of a block, so at
		// most σ_lane rows can rotate.
		if spare >= g.nhat {
			g.rotB = true
			spare -= g.nhat
		}
		g.rotA = min(min(spare, g.mr), cfg.Lanes)
	}
	return g, nil
}

// Generate emits a single-tile micro-kernel.
func Generate(cfg Config) (*asm.Program, error) {
	g, err := newGen(cfg)
	if err != nil {
		return nil, err
	}
	g.p = asm.NewProgram(cfg.Name())
	g.emitSetup(true)
	g.emitPrologue()
	g.emitMainloop("kloop")
	g.emitEpilogueFMA()
	for _, in := range g.storeInstrs() {
		g.p.Instrs = append(g.p.Instrs, in)
	}
	g.p.Ret()
	if err := g.p.Validate(); err != nil {
		return nil, err
	}
	if !cfg.SkipAnalysis {
		opts := analysis.Options{
			Bounds: &analysis.Bounds{
				MR: cfg.Tile.MR, NR: cfg.Tile.NR, KC: cfg.KC, Lanes: cfg.Lanes,
				AOverVectors: 1, BOverRows: 2,
			},
		}
		if cfg.Rotate {
			opts.Rotation = &analysis.RotationHint{ARows: g.rotA, BDouble: g.rotB}
		}
		if err := analyzeGate(g.p, opts); err != nil {
			return nil, err
		}
	}
	return g.p, nil
}

// emitSetup converts strides to bytes and materializes the A and C row
// pointers (Listing 1 lines 5–16). When convertStrides is false the
// strides are assumed already converted (band kernels do it once).
func (g *gen) emitSetup(convertStrides bool) {
	p := g.p
	if g.cfg.Prefetch {
		p.Prfm(asm.X(regArgA), 0).Comment("prefetch A")
		p.Prfm(asm.X(regArgB), 0).Comment("prefetch B")
		p.Prfm(asm.X(regArgC), 0).Comment("prefetch C")
	}
	if convertStrides {
		p.Lsl(asm.X(regArgLda), asm.X(regArgLda), 2).Comment("lda *= 4 bytes")
		p.Lsl(asm.X(regArgLdb), asm.X(regArgLdb), 2).Comment("ldb *= 4 bytes")
		p.Lsl(asm.X(regArgLdc), asm.X(regArgLdc), 2).Comment("ldc *= 4 bytes")
	}
	p.Mov(asm.X(regRowBase), asm.X(regArgA)).Comment("A row 0")
	p.Mov(asm.X(regRowBase+g.mr), asm.X(regArgC)).Comment("C row 0")
	for row := 1; row < g.mr; row++ {
		p.Add(asm.X(regRowBase+row), asm.X(regRowBase+row-1), asm.X(regArgLda))
		p.Add(asm.X(regRowBase+g.mr+row), asm.X(regRowBase+g.mr+row-1), asm.X(regArgLdc))
	}
}

// cLoadInstrs returns the prologue accumulator initialization: loads of
// C(m_r, n_r) when accumulating, or register zeroing otherwise, in the
// same (row, col) order that storeInstrs uses.
func (g *gen) cLoadInstrs() []asm.Instr {
	var out []asm.Instr
	vb := int64(g.cfg.Lanes * 4)
	for row := 0; row < g.mr; row++ {
		for col := 0; col < g.nhat; col++ {
			if g.cfg.LoadC {
				out = append(out, asm.Instr{
					Op: asm.OpLdrQ, Dst: g.regC(row, col),
					Src1: asm.X(regRowBase + g.mr + row), Imm: int64(col) * vb,
				})
			} else {
				out = append(out, asm.Instr{Op: asm.OpVZero, Dst: g.regC(row, col)})
			}
		}
	}
	return out
}

// abLoadInstrs returns the prologue loads of the first A block and first
// B row(s) (Listing 1 lines 17–24), including the B pointer advance.
func (g *gen) abLoadInstrs() []asm.Instr {
	var out []asm.Instr
	vb := int64(g.cfg.Lanes * 4)
	for row := 0; row < g.mr; row++ {
		out = append(out, asm.Instr{
			Op: asm.OpLdrQPost, Dst: g.regA(row), Src1: asm.X(regRowBase + row), Imm: vb,
			Comment: "load A block 0",
		})
	}
	rows := 1
	if g.rotB {
		rows = 2 // double-buffered B: preload rows 0 and 1
	}
	for r := 0; r < rows; r++ {
		for col := 0; col < g.nhat; col++ {
			out = append(out, asm.Instr{
				Op: asm.OpLdrQ, Dst: g.bReg(col, r%2), Src1: asm.X(regArgB), Imm: int64(col) * vb,
				Comment: fmt.Sprintf("load B row %d", r),
			})
		}
		out = append(out, asm.Instr{
			Op: asm.OpAdd, Dst: asm.X(regArgB), Src1: asm.X(regArgB), Src2: asm.X(regArgLdb),
		})
	}
	return out
}

func (g *gen) emitPrologue() {
	for _, in := range g.cLoadInstrs() {
		g.p.Instrs = append(g.p.Instrs, in)
	}
	for _, in := range g.abLoadInstrs() {
		g.p.Instrs = append(g.p.Instrs, in)
	}
}

// emitBlock emits one unrolled block of σ_lane k-steps. blockParity
// selects the A register set under compute-bound rotation.
func (g *gen) emitBlock(blockParity int) {
	p := g.p
	lanes := g.cfg.Lanes
	vb := int64(lanes * 4)
	for i := 0; i < lanes; i++ {
		kParity := i % 2 // B set parity under memory-bound rotation
		for col := 0; col < g.nhat; col++ {
			for row := 0; row < g.mr; row++ {
				p.Fmla(g.regC(row, col), g.bReg(col, kParity), g.aReg(row, blockParity), i)
			}
			// Load B for the upcoming k-step into the set this step just
			// finished reading (one step ahead normally, two with rotB).
			p.LdrQ(g.bReg(col, kParity), asm.X(regArgB), int64(col)*vb)
		}
		p.Add(asm.X(regArgB), asm.X(regArgB), asm.X(regArgLdb))
		// Compute-bound rotation: spread the next block's A loads for the
		// first rotA rows across the FMA stream (Fig 3-c).
		if i < g.rotA {
			p.LdrQPost(g.aReg(i, 1-blockParity), asm.X(regRowBase+i), vb).
				Comment("rotated A preload")
		}
	}
	// Remaining A rows reload in place at block end (Listing 1 line 36-38).
	for row := g.rotA; row < g.mr; row++ {
		p.LdrQPost(g.regA(row), asm.X(regRowBase+row), vb).Comment("load next A block")
	}
	if g.cfg.Prefetch {
		// L2 prefetch hints for the upcoming panel data (§V-C: the
		// kernels keep L2 prefetch instructions; L1 residency comes from
		// blocking, not prefetch). Constant byte distances ahead of the
		// walking pointers, as hand-written kernels do.
		p.Prfm(asm.X(regArgB), 256).Comment("L2 prefetch B ahead")
		p.Prfm(asm.X(regRowBase), 64).Comment("L2 prefetch A ahead")
	}
}

// emitMainloop emits the k̂_c unrolled loop. With compute-bound rotation
// the body holds two blocks (register sets swap each block), so the loop
// iterates ⌊k̂_c/2⌋ times with a peeled trailing block when k̂_c is odd.
func (g *gen) emitMainloop(label string) {
	p := g.p
	if g.khat == 0 {
		return
	}
	label = fmt.Sprintf("%s_%d", label, g.labelSeq)
	g.labelSeq++
	if g.rotA > 0 {
		pairs := g.khat / 2
		if pairs > 0 {
			p.MovI(asm.X(regCounter), int64(pairs)).Comment("loop counter (block pairs)")
			p.Label(label)
			g.emitBlock(0)
			g.emitBlock(1)
			p.Subs(asm.X(regCounter), asm.X(regCounter), 1)
			p.Bne(label)
		}
		if g.khat%2 == 1 {
			g.emitBlock(0)
		}
		return
	}
	p.MovI(asm.X(regCounter), int64(g.khat)).Comment("loop counter k̂c")
	p.Label(label)
	g.emitBlock(0)
	p.Subs(asm.X(regCounter), asm.X(regCounter), 1)
	p.Bne(label)
}

// epilogueAParity returns which A register set holds the remainder block
// after the main loop.
func (g *gen) epilogueAParity() int {
	if g.rotA > 0 {
		return g.khat % 2
	}
	return 0
}

// emitEpilogueFMA emits the k_c-remainder FMAs (Eqn 7's post-remainder
// computation). The remainder A block was loaded by the final main-loop
// block (or the prologue when k̂_c = 0); B rows stream as in the body.
func (g *gen) emitEpilogueFMA() {
	p := g.p
	vb := int64(g.cfg.Lanes * 4)
	aParity := g.epilogueAParity()
	for i := 0; i < g.rem; i++ {
		kParity := i % 2
		for col := 0; col < g.nhat; col++ {
			for row := 0; row < g.mr; row++ {
				p.Fmla(g.regC(row, col), g.bReg(col, kParity), g.aReg(row, aParity), i)
			}
		}
		if i < g.rem-1 {
			for col := 0; col < g.nhat; col++ {
				p.LdrQ(g.bReg(col, kParity), asm.X(regArgB), int64(col)*vb)
			}
			p.Add(asm.X(regArgB), asm.X(regArgB), asm.X(regArgLdb))
		}
	}
}

// storeInstrs returns the epilogue stores of C(m_r, n_r). Stores
// post-increment the C row pointers so that, in a band kernel, they end
// up pointing at the next tile's columns.
func (g *gen) storeInstrs() []asm.Instr {
	var out []asm.Instr
	vb := int64(g.cfg.Lanes * 4)
	for row := 0; row < g.mr; row++ {
		for col := 0; col < g.nhat; col++ {
			out = append(out, asm.Instr{
				Op: asm.OpStrQPost, Dst: g.regC(row, col),
				Src1: asm.X(regRowBase + g.mr + row), Imm: vb,
			})
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
