package mkernel

import "testing"

// TestGeneratedKernelsEncode: every NEON kernel the generator emits is
// fully encodable to AArch64 machine code (the SVE configuration uses
// 16-lane FMLA indices that have no .4s encoding and is excluded).
func TestGeneratedKernelsEncode(t *testing.T) {
	for _, tile := range FeasibleTiles(4) {
		if !tile.Generatable(4) {
			continue
		}
		for _, kc := range []int{4, 17, 64} {
			for _, rotate := range []bool{false, true} {
				p, err := Generate(Config{Tile: tile, KC: kc, Lanes: 4,
					Rotate: rotate, LoadC: true, SigmaAI: 6.0, Prefetch: true})
				if err != nil {
					t.Fatal(err)
				}
				words, err := p.Encode()
				if err != nil {
					t.Errorf("%s: %v", p.Name, err)
					continue
				}
				if len(words) != p.CollectStats().Total {
					t.Errorf("%s: %d words for %d instructions", p.Name, len(words), p.CollectStats().Total)
				}
			}
		}
	}
}

// TestBandKernelsEncode: fused band kernels encode too.
func TestBandKernelsEncode(t *testing.T) {
	cfg := BandConfig{
		Segments: []Segment{{Tile{5, 16}, 3}, {Tile{5, 4}, 1}},
		KC:       32, Lanes: 4, Rotate: true, Fuse: true, LoadC: true, SigmaAI: 6.0,
	}
	p, err := GenerateBand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Encode(); err != nil {
		t.Errorf("band kernel not encodable: %v", err)
	}
}
