package sched

import (
	"errors"
	"sort"
	"time"
)

// This file is the multi-class quality-of-service layer of the pool:
// per-class job queues, starvation-free weighted claiming, and
// admission control. Jobs carry a QoS — a class name, a claiming
// weight and an optional deadline — and the pool keeps one bounded
// FIFO queue per class instead of the single global list the original
// runtime used. Workers still claim tasks exactly as before; what
// changed is *which job* a free worker joins: claimableLocked arbitrates
// across classes with a deterministic credit (stride) scheme, so a
// high-weight latency class is served preferentially while a
// minimum-weight class still makes progress under sustained load.
//
// The scheme is stride scheduling on integer credit: every class holds
// a pass value; each join decision picks the active class with the
// lowest pass (ties break toward the lowest head-job ID, so replays of
// the same state are bit-stable) and advances that class's pass by
// strideScale/weight. A class idle long enough to fall behind is
// clamped up to the pool's virtual pass when it re-activates, so idling
// never banks credit. With a single active class every decision is the
// FIFO scan the pre-QoS scheduler performed — the default path is
// behavior-identical.
//
// Admission control is per class: a class configured with a bounded
// depth sheds work with ErrAdmission instead of blocking once that many
// of its jobs are in flight (the pool-wide depth still applies and
// still blocks). A job whose QoS deadline has already expired is
// refused the same way; one whose deadline expires while parked in its
// class queue fails before claiming through the scheduler's existing
// context fast-path — its future fires with context.DeadlineExceeded
// and no task runs.

// Built-in class names. A zero QoS routes to DefaultClass; the
// background class is what best-effort work (the tiered planner's
// DMT upgrades) runs under, pre-configured at minimum weight so it can
// never delay foreground classes that have work queued.
const (
	// DefaultClass is the class a zero QoS submits to.
	DefaultClass = "default"
	// BackgroundClass is the pre-registered minimum-weight class for
	// best-effort work.
	BackgroundClass = "background"
)

// ErrAdmission matches (via errors.Is) every submission the pool
// refuses at admission: a class at its bounded depth, or a QoS deadline
// already expired at submit time. Shedding is immediate — admission
// never blocks the submitter the way pool-level backpressure does.
var ErrAdmission = errors.New("sched: admission refused")

// QoS describes how a job is scheduled relative to other jobs:
// the class queue it parks in, the claiming weight of that class, and
// an optional completion deadline.
type QoS struct {
	// Class names the job's queue. "" means DefaultClass. Classes are
	// created on first use; ConfigureClass sets weight and depth
	// explicitly.
	Class string

	// Weight, when positive, sets the class's claiming weight (relative
	// share of worker join decisions). Zero leaves the class weight
	// unchanged: DefaultClass defaults to 16, every other class to 1.
	Weight int

	// Deadline, when non-zero, bounds the job's completion. An already
	// expired deadline is refused at admission (ErrAdmission); one that
	// expires while the job is queued or running makes remaining claims
	// skip work, so the future fires promptly with
	// context.DeadlineExceeded.
	Deadline time.Time
}

// className resolves the queue name of a QoS.
func (q QoS) className() string {
	if q.Class == "" {
		return DefaultClass
	}
	return q.Class
}

// ClassConfig configures one class queue. Both fields follow the same
// keep-on-zero contract, so a partial reconfiguration never silently
// resets the dimension it did not name.
type ClassConfig struct {
	// Weight is the class's relative share of worker join decisions;
	// <= 0 keeps the current (or default) weight.
	Weight int
	// Depth bounds the class's jobs in flight (accepted, not yet
	// completed): at the bound further submissions are refused with
	// ErrAdmission instead of blocking. Positive sets the bound, 0
	// keeps the current one (a new class starts unbounded), and a
	// negative value explicitly clears it — only the pool-wide depth
	// applies then.
	Depth int
}

// ConfigureClass creates (or reconfigures) a class queue. It may be
// called at any time, including while jobs of the class are in flight;
// weight changes take effect on the next join decision, depth changes
// on the next submission. A zero field keeps the class's current
// setting — a weight-only retune of a bounded class preserves its
// admission bound — and a negative Depth explicitly removes the bound.
func (p *Pool) ConfigureClass(name string, cfg ClassConfig) {
	if name == "" {
		name = DefaultClass
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cq := p.classLocked(name)
	if cfg.Weight > 0 {
		cq.weight = cfg.Weight
	}
	if cfg.Depth > 0 {
		cq.depth = cfg.Depth
	} else if cfg.Depth < 0 {
		cq.depth = 0
	}
}

// ClassStats is a snapshot of one class queue's counters.
type ClassStats struct {
	Class     string
	Weight    int
	Depth     int   // 0 = unbounded
	InFlight  int   // accepted, not yet completed
	Submitted int64 // jobs accepted into the class
	Completed int64 // jobs whose every task finished
	Rejected  int64 // submissions refused at admission (depth or expired deadline)

	// Queue-wait accounting, in *claim decisions*, not wall time: the
	// scheduler is wall-clock-free by the walltime vet contract, so a
	// job's wait is measured as how many worker join decisions the pool
	// made between the job's acceptance and its own first join. Zero
	// means a worker picked the job up immediately. Cycle-accurate wait
	// distributions come from the virtual-time replay
	// (vtime.SimulateBatch / autogemm-bench -sim-qos).
	QueueWaitJobs   int64 // jobs that have been joined at least once
	QueueWaitClaims int64 // cumulative claim decisions those jobs waited
}

// strideScale is the credit numerator of the weighted-claiming scheme:
// a class's pass advances by strideScale/weight per join decision, so
// relative claim rates match relative weights while integer math stays
// exact and overflow-free (maximum advance 1<<16 per decision).
const strideScale = 1 << 16

// classQueue is one QoS class: a FIFO of accepted jobs with unclaimed
// tasks plus the class's scheduling state and counters. All fields are
// guarded by pool.mu.
type classQueue struct {
	name   string
	weight int
	depth  int    // max in-flight jobs; 0 = unbounded
	pass   uint64 // stride-scheduling credit consumed

	jobs     []*job // claim frontier, FIFO by acceptance
	inflight int

	submitted, completed, rejected int64
	waitJobs, waitClaims           int64
}

// stride returns the pass advance of one join decision for the class.
func (cq *classQueue) stride() uint64 {
	w := cq.weight
	if w < 1 {
		w = 1
	}
	if w > strideScale {
		w = strideScale
	}
	return uint64(strideScale / w)
}

// joinableLocked returns the first job of the class a new participant
// may join — unclaimed tasks remain and the participant cap is not
// reached — preserving the FIFO discipline within the class.
func (cq *classQueue) joinableLocked() *job {
	for _, j := range cq.jobs {
		if j.joinableLocked() {
			return j
		}
	}
	return nil
}

// classLocked returns the named class queue, creating it on first use.
// DefaultClass is born with weight 16 so foreground work outweighs
// unconfigured (weight-1) classes such as BackgroundClass. New classes
// are inserted at their sorted position (sort.Search + shift) instead
// of re-sorting the whole list under pool.mu — class creation sits on
// the submit path, and the list is already ordered.
func (p *Pool) classLocked(name string) *classQueue {
	if cq, ok := p.classes[name]; ok {
		return cq
	}
	w := 1
	if name == DefaultClass {
		w = 16
	}
	cq := &classQueue{name: name, weight: w}
	p.classes[name] = cq
	i := sort.Search(len(p.classList), func(i int) bool { return p.classList[i].name >= name })
	p.classList = append(p.classList, nil)
	copy(p.classList[i+1:], p.classList[i:])
	p.classList[i] = cq
	return cq
}

// statsLocked snapshots one class queue's counters.
func (cq *classQueue) statsLocked() ClassStats {
	return ClassStats{
		Class:           cq.name,
		Weight:          cq.weight,
		Depth:           cq.depth,
		InFlight:        cq.inflight,
		Submitted:       cq.submitted,
		Completed:       cq.completed,
		Rejected:        cq.rejected,
		QueueWaitJobs:   cq.waitJobs,
		QueueWaitClaims: cq.waitClaims,
	}
}

// Class returns a snapshot of one class queue's counters without
// materializing the full Stats slice — the single-class lookup a
// serving control plane polls per tenant ("" means DefaultClass). The
// second return is false when the class has never been configured or
// submitted to.
func (p *Pool) Class(name string) (ClassStats, bool) {
	if name == "" {
		name = DefaultClass
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	cq, ok := p.classes[name]
	if !ok {
		return ClassStats{}, false
	}
	return cq.statsLocked(), true
}

// classStatsLocked snapshots every class queue, sorted by name.
func (p *Pool) classStatsLocked() []ClassStats {
	out := make([]ClassStats, 0, len(p.classList))
	for _, cq := range p.classList {
		out = append(out, cq.statsLocked())
	}
	return out
}
