package sched

import "sync/atomic"

// Fault injection: a process-wide, test-only hook consulted immediately
// before every task executes, used to exercise the runtime's failure
// paths — task errors, contained panics, cancellation — deterministically
// (the sched failure tests and cmd/autogemm-bench's AUTOGEMM_FAULT drill
// drive it, including under -race). It is not part of the serving API;
// production code never installs a hook and pays one atomic load per
// task.

// faultFunc is consulted with the task index before the task's run
// function. A non-nil return fails the task as if run returned it; a
// hook that panics exercises the panic-containment path; a hook that
// cancels a context exercises the cancellation path mid-job.
type faultFunc func(task int) error

var faultHook atomic.Value // of faultFunc

// SetFaultHook installs h as the process-wide fault injector (nil
// removes it). Test-only: the hook applies to every pool in the
// process, including the shared one.
func SetFaultHook(h func(task int) error) { faultHook.Store(faultFunc(h)) }

// loadFaultHook returns the installed injector, or nil.
func loadFaultHook() faultFunc {
	if v := faultHook.Load(); v != nil {
		return v.(faultFunc)
	}
	return nil
}
