package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestQoSDefaultClassFIFO pins the default-path equivalence: with only
// the default class active, a single worker claims jobs strictly in
// submission order — exactly the pre-QoS FIFO.
func TestQoSDefaultClassFIFO(t *testing.T) {
	p := New(1, 0)
	defer p.Close()

	var mu sync.Mutex
	var order []int
	gate := make(chan struct{})
	// Park the worker so every job queues before any is claimed.
	blocker, err := p.Submit(1, 1, func(w *Worker, task int) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	for i := 0; i < 8; i++ {
		i := i
		f, err := p.Submit(1, 1, func(w *Worker, task int) error {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("default class not FIFO: claim order %v", order)
		}
	}
}

// TestQoSClassDepthAdmission proves per-class admission control: a
// class at its depth bound sheds immediately with ErrAdmission while
// other classes keep accepting.
func TestQoSClassDepthAdmission(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	p.ConfigureClass("bounded", ClassConfig{Weight: 1, Depth: 2})

	gate := make(chan struct{})
	defer close(gate)
	park := func(class string) (*Future, error) {
		return p.SubmitQoS(context.Background(), 1, 1, QoS{Class: class}, func(w *Worker, task int) error {
			<-gate
			return nil
		})
	}
	// Fill the class to its depth (first job may be claimed and parked;
	// it still counts as in flight).
	if _, err := park("bounded"); err != nil {
		t.Fatal(err)
	}
	if _, err := park("bounded"); err != nil {
		t.Fatal(err)
	}
	if _, err := park("bounded"); !errors.Is(err, ErrAdmission) {
		t.Fatalf("third bounded submission: got %v, want ErrAdmission", err)
	}
	// Other classes are unaffected by the bounded class's shed.
	if _, err := park("other"); err != nil {
		t.Fatalf("other class refused: %v", err)
	}
	s := p.Stats()
	var bounded *ClassStats
	for i := range s.Classes {
		if s.Classes[i].Class == "bounded" {
			bounded = &s.Classes[i]
		}
	}
	if bounded == nil || bounded.Rejected != 1 || bounded.Submitted != 2 {
		t.Fatalf("bounded class stats = %+v, want Submitted 2 Rejected 1", bounded)
	}
}

// TestQoSExpiredDeadline proves both deadline paths: already expired at
// submit → ErrAdmission without a job; expiring while queued → the
// future fails with context.DeadlineExceeded before any task runs.
// vet:allow walltime (QoS deadlines are real wall-clock deadlines; the
// test constructs expired ones)
func TestQoSExpiredDeadline(t *testing.T) {
	p := New(1, 0)
	defer p.Close()

	_, err := p.SubmitQoS(context.Background(), 1, 1,
		QoS{Deadline: time.Now().Add(-time.Second)},
		func(w *Worker, task int) error { return nil })
	if !errors.Is(err, ErrAdmission) {
		t.Fatalf("expired deadline: got %v, want ErrAdmission", err)
	}

	// Park the worker, queue a job with a short deadline behind it. The
	// deadline expires while the job is still parked in its class
	// queue; once a worker reaches it, the claim drains through the
	// context fast-path without running the task.
	gate := make(chan struct{})
	blocker, err := p.Submit(1, 1, func(w *Worker, task int) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Bool
	f, err := p.SubmitQoS(context.Background(), 1, 1,
		QoS{Deadline: time.Now().Add(20 * time.Millisecond)},
		func(w *Worker, task int) error {
			ran.Store(true)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond) // let the deadline expire while parked
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline job: got %v, want DeadlineExceeded", err)
	}
	if ran.Load() {
		t.Fatal("task ran despite expired deadline")
	}
}

// TestQoSWeightedShare proves weighted claiming shares join decisions
// by weight and never starves the minimum-weight class: with a 4:1
// weight split and one worker draining a backlog, the low class's jobs
// interleave with the high class's instead of waiting for it to drain.
func TestQoSWeightedShare(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	p.ConfigureClass("high", ClassConfig{Weight: 4})
	p.ConfigureClass("low", ClassConfig{Weight: 1})

	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	blocker, err := p.Submit(1, 1, func(w *Worker, task int) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	enqueue := func(class string, n int) {
		for i := 0; i < n; i++ {
			f, err := p.SubmitQoS(context.Background(), 1, 1, QoS{Class: class}, func(w *Worker, task int) error {
				mu.Lock()
				order = append(order, class)
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
	}
	enqueue("high", 12)
	enqueue("low", 3)
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// All 3 low jobs must be claimed before the high backlog is done:
	// the last "low" must not sit at the very end of the order.
	lastLow := -1
	for i, c := range order {
		if c == "low" {
			lastLow = i
		}
	}
	if lastLow < 0 || lastLow == len(order)-1 {
		t.Fatalf("low class starved until the end: order %v", order)
	}
	// The first low claim must happen within the first weight-ratio
	// window (4:1 → by the 6th decision), not after the high drain.
	firstLow := -1
	for i, c := range order {
		if c == "low" {
			firstLow = i
			break
		}
	}
	if firstLow > 6 {
		t.Fatalf("low class first served at position %d of %v", firstLow, order)
	}
}

// TestQoSWeightedDeterministic pins the deterministic tie-break: two
// runs over an identical queue state claim in the identical order.
func TestQoSWeightedDeterministic(t *testing.T) {
	run := func() []string {
		p := New(1, 0)
		defer p.Close()
		p.ConfigureClass("a", ClassConfig{Weight: 3})
		p.ConfigureClass("b", ClassConfig{Weight: 2})
		p.ConfigureClass("c", ClassConfig{Weight: 1})

		var mu sync.Mutex
		var order []string
		gate := make(chan struct{})
		blocker, _ := p.Submit(1, 1, func(w *Worker, task int) error {
			<-gate
			return nil
		})
		var futs []*Future
		for i := 0; i < 5; i++ {
			for _, class := range []string{"a", "b", "c"} {
				class := class
				f, err := p.SubmitQoS(context.Background(), 1, 1, QoS{Class: class}, func(w *Worker, task int) error {
					mu.Lock()
					order = append(order, class)
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				futs = append(futs, f)
			}
		}
		close(gate)
		blocker.Wait()
		for _, f := range futs {
			if err := f.Wait(); err != nil {
				t.Fatal(err)
			}
		}
		return order
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatalf("run %d: %d claims vs %d", i, len(got), len(first))
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("run %d claim order %v != %v", i, got, first)
				}
			}
		}
	}
}

// TestQoSQueueWaitCounters checks the claim-decision queue-wait
// accounting: a job claimed immediately waits 0; jobs queued behind a
// parked worker accumulate positive waits.
func TestQoSQueueWaitCounters(t *testing.T) {
	p := New(1, 0)
	defer p.Close()

	gate := make(chan struct{})
	blocker, err := p.Submit(1, 1, func(w *Worker, task int) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	for i := 0; i < 4; i++ {
		f, err := p.Submit(1, 1, func(w *Worker, task int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	close(gate)
	blocker.Wait()
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if len(s.Classes) != 1 || s.Classes[0].Class != DefaultClass {
		t.Fatalf("classes = %+v, want only %q", s.Classes, DefaultClass)
	}
	cs := s.Classes[0]
	if cs.QueueWaitJobs != 5 {
		t.Fatalf("QueueWaitJobs = %d, want 5", cs.QueueWaitJobs)
	}
	// Jobs 2..5 each waited at least the claims that served their
	// predecessors; the exact sum is deterministic with one worker:
	// job i (0-based among the queued) waits i+1 decisions... the
	// blocker is claim 1, so queued job k is claim k+2 having been
	// accepted after claim... just require positive cumulative wait.
	if cs.QueueWaitClaims <= 0 {
		t.Fatalf("QueueWaitClaims = %d, want > 0", cs.QueueWaitClaims)
	}
}

// TestQoSJobObserver checks the Recorder's JobObserver wiring: every
// accepted job's class/weight/tasks/cap identity is on file.
func TestQoSJobObserver(t *testing.T) {
	p := New(2, 0)
	defer p.Close()
	rec := NewRecorder()
	p.SetTimekeeper(rec)
	p.ConfigureClass("x", ClassConfig{Weight: 7})

	f, err := p.SubmitQoS(context.Background(), 3, 2, QoS{Class: "x"}, func(w *Worker, task int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	meta, ok := rec.Meta(f.JobID())
	if !ok {
		t.Fatalf("job %d has no recorded meta", f.JobID())
	}
	want := JobMeta{Class: "x", Weight: 7, Tasks: 3, MaxWorkers: 2}
	if meta != want {
		t.Fatalf("meta = %+v, want %+v", meta, want)
	}
}

// TestQoSBackgroundYields checks the built-in background class: with a
// default-class backlog present, background jobs do not run ahead of
// the entire foreground queue (weight 1 vs 16).
func TestQoSBackgroundYields(t *testing.T) {
	p := New(1, 0)
	defer p.Close()

	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	blocker, err := p.Submit(1, 1, func(w *Worker, task int) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var futs []*Future
	add := func(class string, n int) {
		for i := 0; i < n; i++ {
			f, err := p.SubmitQoS(context.Background(), 1, 1, QoS{Class: class}, func(w *Worker, task int) error {
				mu.Lock()
				order = append(order, class)
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
	}
	add(BackgroundClass, 4)
	add(DefaultClass, 8)
	close(gate)
	blocker.Wait()
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	// Background was submitted first (lower IDs) but must not hold the
	// first 4 slots: the 16x default weight pulls foreground ahead.
	fgBeforeLastBg := 0
	lastBg := -1
	for i, c := range order {
		if c == BackgroundClass {
			lastBg = i
		}
	}
	for i := 0; i < lastBg; i++ {
		if order[i] == DefaultClass {
			fgBeforeLastBg++
		}
	}
	if fgBeforeLastBg == 0 {
		t.Fatalf("background ran ahead of all foreground work: order %v", order)
	}
}

// TestQoSTrySubmitQoS checks the non-blocking QoS intake path used by
// the background planner.
func TestQoSTrySubmitQoS(t *testing.T) {
	p := New(1, 1) // depth 1: the second in-flight job trips ErrBusy
	defer p.Close()

	gate := make(chan struct{})
	f1, err := p.TrySubmitQoS(1, 1, QoS{Class: BackgroundClass}, func(w *Worker, task int) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrySubmitQoS(1, 1, QoS{Class: BackgroundClass}, func(w *Worker, task int) error { return nil }); !errors.Is(err, ErrBusy) {
		t.Fatalf("at depth: got %v, want ErrBusy", err)
	}
	close(gate)
	if err := f1.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigureClassWeightOnlyKeepsDepth is the regression test for the
// depth-clobber bug a serving control plane tripped: retuning a bounded
// class's weight with a zero Depth used to silently reset the class to
// unbounded, dropping its admission control mid-load. The contract now
// mirrors Weight: 0 keeps the current bound, negative explicitly clears
// it.
func TestConfigureClassWeightOnlyKeepsDepth(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	p.ConfigureClass("tenant", ClassConfig{Weight: 16, Depth: 2})

	gate := make(chan struct{})
	defer close(gate)
	park := func() (*Future, error) {
		return p.SubmitQoS(context.Background(), 1, 1, QoS{Class: "tenant"}, func(w *Worker, task int) error {
			<-gate
			return nil
		})
	}
	// Fill the class to its depth.
	for i := 0; i < 2; i++ {
		if _, err := park(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := park(); !errors.Is(err, ErrAdmission) {
		t.Fatalf("at depth before retune: got %v, want ErrAdmission", err)
	}

	// Weight-only retune: Depth 0 must keep the existing bound.
	p.ConfigureClass("tenant", ClassConfig{Weight: 4})
	if cs, ok := p.Class("tenant"); !ok || cs.Depth != 2 || cs.Weight != 4 {
		t.Fatalf("after weight-only retune: got %+v, want Weight 4 Depth 2", cs)
	}
	if _, err := park(); !errors.Is(err, ErrAdmission) {
		t.Fatalf("at depth after weight-only retune: got %v, want ErrAdmission (depth bound clobbered)", err)
	}

	// Negative Depth explicitly clears the bound.
	p.ConfigureClass("tenant", ClassConfig{Depth: -1})
	if cs, ok := p.Class("tenant"); !ok || cs.Depth != 0 || cs.Weight != 4 {
		t.Fatalf("after explicit clear: got %+v, want Weight 4 Depth 0", cs)
	}
	if _, err := park(); err != nil {
		t.Fatalf("after clearing the bound: %v", err)
	}
}

// TestPoolClassSnapshot checks the single-class lookup: a configured
// class is found (with "" resolving to DefaultClass after first use)
// and an unknown class reports absence instead of a zero snapshot.
func TestPoolClassSnapshot(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	if _, ok := p.Class("ghost"); ok {
		t.Fatal("unknown class reported present")
	}
	p.ConfigureClass("tenant", ClassConfig{Weight: 8, Depth: 3})
	cs, ok := p.Class("tenant")
	if !ok || cs.Class != "tenant" || cs.Weight != 8 || cs.Depth != 3 {
		t.Fatalf("Class(tenant) = %+v, %v", cs, ok)
	}
	f, err := p.Submit(1, 1, func(w *Worker, task int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	if cs, ok := p.Class(""); !ok || cs.Class != DefaultClass || cs.Submitted != 1 {
		t.Fatalf("Class(\"\") = %+v, %v, want DefaultClass with 1 submitted", cs, ok)
	}
}

// TestClassListOrderedInsertion checks that classes created in
// arbitrary order land in their sorted position — the invariant the
// deterministic arbitration scan and sorted Stats.Classes rely on now
// that creation inserts instead of re-sorting.
func TestClassListOrderedInsertion(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	for _, name := range []string{"zeta", "alpha", "mid", "beta", "omega"} {
		p.ConfigureClass(name, ClassConfig{Weight: 1})
	}
	classes := p.Stats().Classes
	for i := 1; i < len(classes); i++ {
		if classes[i-1].Class >= classes[i].Class {
			t.Fatalf("class list not sorted: %q before %q", classes[i-1].Class, classes[i].Class)
		}
	}
}

// BenchmarkClassCreation guards the ordered-insertion path: creating a
// class among many existing ones must stay O(list) for the shift, not
// O(list log list) for a full re-sort under pool.mu.
func BenchmarkClassCreation(b *testing.B) {
	p := New(1, 0)
	defer p.Close()
	for i := 0; i < 256; i++ {
		p.ConfigureClass(fmt.Sprintf("warm-%04d", i), ClassConfig{Weight: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ConfigureClass(fmt.Sprintf("bench-%08d", i), ClassConfig{Weight: 1})
	}
}
