package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestOnDoneOrderingContract pins Future.OnDone's documented semantics:
// the callback runs exactly once, observes the same error Wait returns,
// fires even when registered after completion, and is asynchronous with
// respect to Wait — the test asserts the guarantees without assuming
// any ordering between a waiter waking and the callback running.
func TestOnDoneOrderingContract(t *testing.T) {
	p := New(2, 0)
	defer p.Close()

	// 1. Callback observes the same (nil) error Wait returns, exactly once.
	f, err := p.Submit(4, 0, func(w *Worker, task int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	got := make(chan error, 1)
	f.OnDone(func(err error) {
		calls.Add(1)
		got <- err
	})
	if err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("callback error %v, Wait returned nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone callback never fired after Wait returned")
	}

	// 2. Registration after completion still fires, with the job's error.
	boom := errors.New("boom")
	ff, err := p.Submit(2, 0, func(w *Worker, task int) error { return boom })
	if err != nil {
		t.Fatal(err)
	}
	wantErr := ff.Wait() // completed before registration
	late := make(chan error, 1)
	ff.OnDone(func(err error) { late <- err })
	select {
	case err := <-late:
		if !errors.Is(err, boom) || !errors.Is(wantErr, boom) {
			t.Fatalf("late callback error %v, Wait error %v, want boom", err, wantErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone registered after completion never fired")
	}

	// 3. Exactly once, even with Wait racing from several goroutines.
	var wg sync.WaitGroup
	f3, err := p.Submit(8, 0, func(w *Worker, task int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	var calls3 atomic.Int32
	fired := make(chan struct{})
	f3.OnDone(func(error) {
		calls3.Add(1)
		close(fired)
	})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f3.Wait()
		}()
	}
	wg.Wait()
	<-fired
	if n := calls3.Load(); n != 1 {
		t.Fatalf("OnDone ran %d times, want exactly 1", n)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("first OnDone ran %d times, want exactly 1", n)
	}
}

// TestCloseWithTimeoutClaimStorm races CloseWithTimeout against a storm
// of short jobs across three QoS classes: every accepted job's future
// must fire (drain-then-stop), submissions after close fail with
// ErrClosed, and the bounded drain returns promptly either way.
func TestCloseWithTimeoutClaimStorm(t *testing.T) {
	p := New(2, 8)
	p.ConfigureClass("hi", ClassConfig{Weight: 8})
	p.ConfigureClass("lo", ClassConfig{Weight: 1, Depth: 6})

	classes := []string{"hi", "lo", DefaultClass}
	var accepted []*Future
	var mu sync.Mutex
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f, err := p.SubmitQoS(context.Background(), 3, 0, QoS{Class: classes[(g+i)%len(classes)]},
					func(w *Worker, task int) error { return nil })
				if err != nil {
					// ErrClosed once the close lands, ErrAdmission for
					// the bounded class, ErrBusy never (blocking path).
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrAdmission) {
						t.Errorf("storm submit: unexpected error %v", err)
					}
					if errors.Is(err, ErrClosed) {
						return
					}
					continue
				}
				mu.Lock()
				accepted = append(accepted, f)
				mu.Unlock()
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := p.CloseWithTimeout(10 * time.Second); err != nil {
		t.Fatalf("CloseWithTimeout: %v", err)
	}
	close(stop)
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, f := range accepted {
		select {
		case <-f.Done():
			if err := f.Wait(); err != nil {
				t.Fatalf("accepted job %d failed: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("accepted job %d abandoned by close", i)
		}
	}
}

// TestCancelQueuedUnclaimedJob cancels a job whose context fires while
// it is parked, unclaimed, in its class queue behind a blocked worker:
// the job must complete with ctx.Err() and run no task, and the class's
// completion counters must still balance.
func TestCancelQueuedUnclaimedJob(t *testing.T) {
	p := New(1, 0)
	defer p.Close()

	gate := make(chan struct{})
	blocker, err := p.Submit(1, 1, func(w *Worker, task int) error {
		<-gate
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	f, err := p.SubmitQoS(ctx, 4, 0, QoS{Class: "parked"}, func(w *Worker, task int) error {
		ran.Store(true)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel() // fires while the job is queued and unclaimed
	close(gate)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := f.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued job: got %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("task of cancelled queued job ran")
	}
	s := p.Stats()
	for _, cs := range s.Classes {
		if cs.Class == "parked" {
			if cs.Submitted != 1 || cs.Completed != 1 || cs.InFlight != 0 {
				t.Fatalf("parked class counters = %+v, want submitted=completed=1 inflight=0", cs)
			}
		}
	}
	if s.JobsCancelled != 1 {
		t.Fatalf("JobsCancelled = %d, want 1", s.JobsCancelled)
	}
}

// TestStatsRelaxedSnapshot hammers Stats concurrently with charging
// tasks and checks the documented invariant directly at quiescence:
// busy cycles and task counts agree exactly once the pool is idle, and
// IdleCycles derives the per-worker idle spread from the snapshot.
func TestStatsRelaxedSnapshot(t *testing.T) {
	p := New(2, 0)
	defer p.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := p.Stats()
				// Mid-run snapshots must never report more busy than
				// charged in total: each per-worker value is a prefix
				// of the committed charges.
				for _, pw := range s.PerWorker {
					if pw.BusyCycles < 0 || pw.TasksRun < 0 {
						t.Errorf("negative counters: %+v", pw)
						return
					}
				}
			}
		}
	}()

	const jobs, tasksPer = 8, 16
	var futs []*Future
	for j := 0; j < jobs; j++ {
		f, err := p.Submit(tasksPer, 0, func(w *Worker, task int) error {
			w.Charge(TaskCost{Cycles: 10, Bytes: 1})
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	s := p.Stats()
	var tasks int64
	var busy float64
	for _, pw := range s.PerWorker {
		tasks += pw.TasksRun
		busy += pw.BusyCycles
	}
	if tasks != jobs*tasksPer {
		t.Fatalf("quiescent TasksRun sum = %d, want %d", tasks, jobs*tasksPer)
	}
	if want := float64(jobs * tasksPer * 10); busy != want {
		t.Fatalf("quiescent BusyCycles sum = %f, want %f", busy, want)
	}

	idle := s.IdleCycles(0)
	if len(idle) != s.Workers {
		t.Fatalf("IdleCycles length %d, want %d", len(idle), s.Workers)
	}
	var maxBusy float64
	for _, pw := range s.PerWorker {
		if pw.BusyCycles > maxBusy {
			maxBusy = pw.BusyCycles
		}
	}
	for i, pw := range s.PerWorker {
		if want := maxBusy - pw.BusyCycles; idle[i] != want {
			t.Fatalf("worker %d idle = %f, want %f", i, idle[i], want)
		}
	}
	// Explicit horizon below the busiest worker clamps at zero.
	for i, v := range s.IdleCycles(1) {
		if v < 0 {
			t.Fatalf("worker %d negative idle %f with small horizon", i, v)
		}
	}
	if fmt.Sprint(s.IdleCycles(maxBusy)) != fmt.Sprint(idle) {
		t.Fatal("IdleCycles(maxBusy) differs from IdleCycles(0)")
	}
}
