package sched

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the runtime's hardened failure semantics: panic
// containment, per-job cancellation, bounded drain, and fault
// injection. CI runs them under -race with GOMAXPROCS 1 and 2.

// TestPanicContained: a panicking task fails its job with an
// ErrPanicked-matching *PanicError carrying the value and stack, the
// other tasks still run, and the future fires instead of hanging.
func TestPanicContained(t *testing.T) {
	p := New(2, 4)
	defer p.Close()
	var ran int64
	fut, err := p.Submit(8, 1, func(w *Worker, i int) error {
		if i == 2 {
			panic("kaboom")
		}
		atomic.AddInt64(&ran, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := fut.Wait()
	if !errors.Is(werr, ErrPanicked) {
		t.Fatalf("Wait = %v, want ErrPanicked", werr)
	}
	var pe *PanicError
	if !errors.As(werr, &pe) {
		t.Fatalf("Wait error %T does not unwrap to *PanicError", werr)
	}
	if pe.Task != 2 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = task %d value %v stack %d bytes", pe.Task, pe.Value, len(pe.Stack))
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("PanicError message %q does not carry the panic value", pe.Error())
	}
	// With maxWorkers = 1 the claims are sequential: tasks 0 and 1 ran,
	// tasks after the panic were skipped via the failed fast-path.
	if got := atomic.LoadInt64(&ran); got != 2 {
		t.Errorf("%d healthy tasks ran, want 2 (skip after failure)", got)
	}
	if st := p.Stats(); st.TasksPanicked != 1 {
		t.Errorf("TasksPanicked = %d, want 1", st.TasksPanicked)
	}
}

// TestPanicKeepsPoolServing: after a panic on every worker, the pool
// still has full worker strength — a job needing all workers completes
// and its in-flight slot accounting stays balanced.
func TestPanicKeepsPoolServing(t *testing.T) {
	p := New(2, 2)
	defer p.Close()
	// One panicking job per worker slot, so if panics killed workers the
	// pool would be dead afterwards.
	for r := 0; r < 4; r++ {
		fut, err := p.Submit(2, 0, func(w *Worker, i int) error { panic(i) })
		if err != nil {
			t.Fatal(err)
		}
		if err := fut.Wait(); !errors.Is(err, ErrPanicked) {
			t.Fatalf("round %d: Wait = %v, want ErrPanicked", r, err)
		}
	}
	// A barrier job that requires both workers to participate proves
	// both survived: each worker parks on the channel until the other
	// arrives.
	arrived := make(chan int, 2)
	release := make(chan struct{})
	fut, err := p.Submit(2, 2, func(w *Worker, i int) error {
		arrived <- w.ID()
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	for len(ids) < 2 {
		select {
		case id := <-arrived:
			ids[id] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d worker(s) alive after contained panics", len(ids))
		}
	}
	close(release)
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	// One contained panic per job: the sibling task is skipped once the
	// first panic flips the failed fast-path (claim order permitting,
	// both may panic before the flip, so allow 4..8).
	if st.JobsCompleted != 5 || st.TasksPanicked < 4 || st.TasksPanicked > 8 {
		t.Errorf("stats = %+v, want 5 completed / 4..8 panicked", st)
	}
}

// TestPanicFreesInflightSlot: on a depth-1 pool, a panicked job's slot
// is released — a subsequent Submit neither blocks forever nor errors.
func TestPanicFreesInflightSlot(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	fut, err := p.Submit(3, 0, func(w *Worker, i int) error { panic("slot") })
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); !errors.Is(err, ErrPanicked) {
		t.Fatalf("Wait = %v, want ErrPanicked", err)
	}
	done := make(chan error, 1)
	go func() {
		f, err := p.Submit(1, 0, func(*Worker, int) error { return nil })
		if err != nil {
			done <- err
			return
		}
		done <- f.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Submit after panicked job: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Submit blocked: panicked job leaked its in-flight slot")
	}
}

// TestSubmitContextPreCancelled: an already-done context aborts the
// submission before any work runs.
func TestSubmitContextPreCancelled(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	if _, err := p.SubmitContext(ctx, 4, 0, func(*Worker, int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitContext = %v, want context.Canceled", err)
	}
	if atomic.LoadInt64(&ran) != 0 {
		t.Error("tasks ran despite pre-cancelled context")
	}
}

// TestCancelMidJobSkipsFrontier: cancelling a job's context after its
// first task makes the remaining claims skip work promptly; the future
// returns ctx.Err() and the cancelled-jobs counter registers.
func TestCancelMidJobSkipsFrontier(t *testing.T) {
	p := New(1, 4)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const n = 100
	var ran int64
	fut, err := p.SubmitContext(ctx, n, 1, func(w *Worker, i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 0 {
			cancel()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt64(&ran); got != 1 {
		t.Errorf("%d tasks ran after cancellation, want 1 (the canceller)", got)
	}
	if st := p.Stats(); st.JobsCancelled != 1 {
		t.Errorf("JobsCancelled = %d, want 1", st.JobsCancelled)
	}
}

// TestWaitContextEarlyReturn: WaitContext returns ctx.Err() while the
// job is still running, and a later Wait still delivers the job's real
// result.
func TestWaitContextEarlyReturn(t *testing.T) {
	p := New(1, 2)
	defer p.Close()
	release := make(chan struct{})
	fut, err := p.Submit(1, 0, func(*Worker, int) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fut.WaitContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitContext = %v, want context.Canceled", err)
	}
	close(release)
	if err := fut.Wait(); err != nil {
		t.Fatalf("Wait after early WaitContext return: %v", err)
	}
	if err := fut.WaitContext(ctx); err != nil {
		t.Fatalf("WaitContext on completed job = %v, want job result despite done ctx", err)
	}
}

// TestSubmitContextBackpressureCancel: a submitter blocked at the
// in-flight depth is unblocked by its context firing, returning
// ctx.Err() instead of staying parked.
func TestSubmitContextBackpressureCancel(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	release := make(chan struct{})
	blocker, err := p.Submit(1, 0, func(*Worker, int) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		_, err := p.SubmitContext(ctx, 1, 0, func(*Worker, int) error { return nil })
		errc <- err
	}()
	// The submitter is (about to be) parked on backpressure; cancelling
	// must wake it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked SubmitContext = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled SubmitContext still blocked on backpressure")
	}
	close(release)
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseDuringBlockedSubmit: Close wakes a Submit parked on
// backpressure, which fails with ErrClosed; the accepted job still
// drains.
func TestCloseDuringBlockedSubmit(t *testing.T) {
	p := New(1, 1)
	release := make(chan struct{})
	blocker, err := p.Submit(1, 0, func(*Worker, int) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := p.Submit(1, 0, func(*Worker, int) error { return nil })
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("blocked Submit during Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Submit not woken by Close")
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain the accepted job")
	}
	if err := blocker.Wait(); err != nil {
		t.Fatalf("accepted job after Close: %v", err)
	}
}

// TestCloseWithTimeoutReportsHungJob: a stuck task makes the bounded
// drain report ErrDrainTimeout with the in-flight count instead of
// hanging; after the task unsticks, a plain Close completes.
func TestCloseWithTimeoutReportsHungJob(t *testing.T) {
	p := New(1, 2)
	release := make(chan struct{})
	fut, err := p.Submit(1, 0, func(*Worker, int) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = p.CloseWithTimeout(30 * time.Millisecond)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("CloseWithTimeout = %v, want ErrDrainTimeout", err)
	}
	if !strings.Contains(err.Error(), "1 job(s)") {
		t.Errorf("drain-timeout error %q does not report the stuck job count", err)
	}
	if _, err := p.Submit(1, 0, func(*Worker, int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after CloseWithTimeout = %v, want ErrClosed", err)
	}
	close(release)
	if err := p.Close(); err != nil {
		t.Fatalf("Close after unsticking: %v", err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseWithTimeout(time.Second); err != nil {
		t.Fatalf("CloseWithTimeout on drained pool: %v", err)
	}
}

// TestCloseWithTimeoutDrainsHealthyPool: with no stuck work the bounded
// drain behaves exactly like Close.
func TestCloseWithTimeoutDrainsHealthyPool(t *testing.T) {
	p := New(2, 8)
	var ran int64
	futs := make([]*Future, 6)
	for i := range futs {
		f, err := p.Submit(3, 0, func(*Worker, int) error {
			atomic.AddInt64(&ran, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	if err := p.CloseWithTimeout(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt64(&ran); got != 18 {
		t.Fatalf("ran %d tasks, want 18", got)
	}
}

// TestFaultHookInjectsError: the test-only injector fails the chosen
// task as if its run function had returned the error, and removing the
// hook restores normal service.
func TestFaultHookInjectsError(t *testing.T) {
	p := New(2, 4)
	defer p.Close()
	boom := errors.New("injected")
	SetFaultHook(func(task int) error {
		if task == 1 {
			return boom
		}
		return nil
	})
	defer SetFaultHook(nil)
	fut, err := p.Submit(4, 1, func(*Worker, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want injected error", err)
	}
	SetFaultHook(nil)
	ok, err := p.Submit(4, 0, func(*Worker, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Wait(); err != nil {
		t.Fatalf("job after removing fault hook: %v", err)
	}
}

// TestFaultHookPanicContained: a hook that panics exercises the same
// containment path as a panicking task body.
func TestFaultHookPanicContained(t *testing.T) {
	p := New(1, 2)
	defer p.Close()
	var fired int32
	SetFaultHook(func(task int) error {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			panic("hook")
		}
		return nil
	})
	defer SetFaultHook(nil)
	fut, err := p.Submit(2, 0, func(*Worker, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); !errors.Is(err, ErrPanicked) {
		t.Fatalf("Wait = %v, want ErrPanicked", err)
	}
}
