package sched

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestRecorderObservesEveryTask: with a Recorder installed, every task
// of a job is observed exactly once under its job ID, with the cost the
// task charged — regardless of which worker ran it.
func TestRecorderObservesEveryTask(t *testing.T) {
	p := New(4, 0)
	defer p.Close()
	rec := NewRecorder()
	p.SetTimekeeper(rec)

	const n = 37
	fut, err := p.Submit(n, 0, func(w *Worker, task int) error {
		w.Charge(TaskCost{Cycles: float64(task + 1), Bytes: float64(2 * (task + 1))})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	costs := rec.Costs(fut.JobID())
	if len(costs) != n {
		t.Fatalf("recorded %d costs, want %d", len(costs), n)
	}
	for i, c := range costs {
		want := TaskCost{Cycles: float64(i + 1), Bytes: float64(2 * (i + 1))}
		if c != want {
			t.Errorf("task %d cost %+v, want %+v", i, c, want)
		}
	}
	total := rec.Total()
	if total.Cycles != float64(n*(n+1)/2) {
		t.Errorf("total cycles %v, want %v", total.Cycles, n*(n+1)/2)
	}
	if jobs := rec.Jobs(); len(jobs) != 1 || jobs[0] != fut.JobID() {
		t.Errorf("jobs %v, want [%d]", jobs, fut.JobID())
	}
}

// TestChargeResetsBetweenTasks: a task that charges nothing is observed
// with a zero cost even when the previous task on the same worker
// charged — the pending cost never leaks across tasks.
func TestChargeResetsBetweenTasks(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	rec := NewRecorder()
	p.SetTimekeeper(rec)

	fut, err := p.Submit(4, 1, func(w *Worker, task int) error {
		if task%2 == 0 {
			w.Charge(TaskCost{Cycles: 100})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	costs := rec.Costs(fut.JobID())
	for i, c := range costs {
		want := TaskCost{}
		if i%2 == 0 {
			want = TaskCost{Cycles: 100}
		}
		if c != want {
			t.Errorf("task %d cost %+v, want %+v", i, c, want)
		}
	}
}

// TestPerWorkerStats: Stats reports per-worker tasks and busy cycles;
// the sums match the job totals exactly (float addition per worker is
// serial, so the per-worker figures are exact).
func TestPerWorkerStats(t *testing.T) {
	p := New(3, 0)
	defer p.Close()

	const n, perTask = 30, 7.0
	fut, err := p.Submit(n, 0, func(w *Worker, task int) error {
		w.Charge(TaskCost{Cycles: perTask})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if len(s.PerWorker) != 3 {
		t.Fatalf("PerWorker len %d, want 3", len(s.PerWorker))
	}
	var tasks int64
	var busy float64
	for _, ws := range s.PerWorker {
		tasks += ws.TasksRun
		busy += ws.BusyCycles
		if ws.TasksRun < 0 || ws.BusyCycles != perTask*float64(ws.TasksRun) {
			t.Errorf("worker stats inconsistent: %+v", ws)
		}
	}
	if tasks != n {
		t.Errorf("tasks across workers %d, want %d", tasks, n)
	}
	if busy != perTask*n {
		t.Errorf("busy across workers %v, want %v", busy, perTask*n)
	}
}

// TestSkippedClaimsNotObserved: after a task fails, the job's remaining
// claims are skipped and must not reach the Timekeeper — they ran no
// work. TasksRun likewise counts only executed tasks.
func TestSkippedClaimsNotObserved(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	rec := NewRecorder()
	p.SetTimekeeper(rec)

	boom := errors.New("boom")
	var ran int64
	fut, err := p.Submit(10, 1, func(w *Worker, task int) error {
		atomic.AddInt64(&ran, 1)
		w.Charge(TaskCost{Cycles: 1})
		if task == 2 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); !errors.Is(err, boom) {
		t.Fatalf("err %v, want %v", err, boom)
	}
	costs := rec.Costs(fut.JobID())
	if len(costs) != int(ran) {
		t.Errorf("observed %d tasks, %d ran", len(costs), ran)
	}
	var tasks int64
	for _, ws := range p.Stats().PerWorker {
		tasks += ws.TasksRun
	}
	if tasks != ran {
		t.Errorf("TasksRun %d, want %d", tasks, ran)
	}
}

// TestNoTimekeeperStillCounts: without a hook the per-worker counters
// still track tasks (and zero busy when nothing charges).
func TestNoTimekeeperStillCounts(t *testing.T) {
	p := New(2, 0)
	defer p.Close()
	fut, err := p.Submit(8, 0, func(w *Worker, task int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	var tasks int64
	for _, ws := range p.Stats().PerWorker {
		tasks += ws.TasksRun
		if ws.BusyCycles != 0 {
			t.Errorf("uncharged busy cycles %v", ws.BusyCycles)
		}
	}
	if tasks != 8 {
		t.Errorf("TasksRun %d, want 8", tasks)
	}
}

// TestJobIDsDistinct: every accepted job gets a distinct ID, so a
// Recorder shared across jobs never conflates their cost vectors.
func TestJobIDsDistinct(t *testing.T) {
	p := New(2, 0)
	defer p.Close()
	seen := map[int64]bool{}
	for i := 0; i < 5; i++ {
		fut, err := p.Submit(1, 0, func(w *Worker, task int) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
		id := fut.JobID()
		if seen[id] {
			t.Errorf("job ID %d reused", id)
		}
		seen[id] = true
	}
}
