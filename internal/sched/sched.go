// Package sched is the persistent execution runtime GEMMs run on: a
// fixed set of worker goroutines owned by an engine (or the shared
// process-wide pool), bounded per-class job queues, and futures for
// asynchronous completion.
//
// A job is one GEMM decomposed into independent tasks — the C-tile
// groups of the plan's block grid. Tasks are claimed from a shared
// atomic cursor, the same work-claiming discipline the old one-shot
// RunParallel goroutines used, so an expensive edge group never
// serializes the rest behind a static partition. Workers are not bound
// to jobs: a worker that exhausts one job's claim frontier moves to the
// next claimable job, and several workers gang up on a single large job
// (up to the job's participant cap), so a batch of small shapes never
// strands workers behind one slow GEMM.
//
// Scheduling policy: jobs park in per-class queues (see qos.go). A free
// worker joins the job chosen by deterministic weighted claiming across
// the active classes — stride-scheduled credit, FIFO within a class,
// ties broken by the lowest job ID — so a latency-sensitive class is
// served preferentially while every class, whatever its weight, keeps
// making progress. With a single active class this degenerates to the
// plain FIFO the pre-QoS scheduler ran.
//
// Backpressure and admission: the pool bounds the number of jobs in
// flight (submitted but not yet completed). Submit blocks while the
// pool is at depth and fails with ErrClosed once Close is called. A
// class configured with its own depth sheds instead: submissions beyond
// it fail immediately with ErrAdmission. Close drains every job already
// accepted — their futures complete — and then stops the workers; it
// never abandons accepted work.
//
// Failure semantics: a panic inside a task is contained — it is
// converted into a *PanicError on the job (matching ErrPanicked), the
// worker survives, the job's remaining claims are skipped, and the
// future still fires. SubmitContext binds a job to a context:
// cancellation makes later claims skip work (the error-fast-path) and
// wakes submitters blocked on backpressure; a QoS deadline rides the
// same path. CloseWithTimeout bounds the drain and reports
// still-running work instead of hanging.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Submit after Close, and by futures whose
// submission raced with Close.
var ErrClosed = errors.New("sched: pool closed")

// ErrPanicked matches (via errors.Is) the error a job's future returns
// when one of its tasks panicked. The concrete error is a *PanicError
// carrying the recovered value and stack.
var ErrPanicked = errors.New("sched: task panicked")

// ErrDrainTimeout matches the error CloseWithTimeout returns when the
// drain deadline expires with jobs still running.
var ErrDrainTimeout = errors.New("sched: drain timed out")

// ErrBusy is returned by TrySubmit when the pool is at its in-flight
// depth. Best-effort callers (the tiered planner's background upgrade)
// treat it as "not now" and retry later instead of blocking a serving
// path on planner backpressure.
var ErrBusy = errors.New("sched: pool busy")

// PanicError is the job error produced when a task panics: the panic is
// recovered inside the worker (which survives and keeps serving other
// jobs), the job fails, and its future returns this error. It unwraps
// to ErrPanicked.
type PanicError struct {
	Task  int    // index of the panicking task
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine at recovery
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: task %d panicked: %v", e.Task, e.Value)
}

// Unwrap makes errors.Is(err, ErrPanicked) match.
func (e *PanicError) Unwrap() error { return ErrPanicked }

// Pool is a persistent worker pool executing jobs of independent tasks.
// It is safe for concurrent use. Workers start lazily on the first
// Submit and live until Close.
type Pool struct {
	workers int
	depth   int

	mu        sync.Mutex
	cond      *sync.Cond
	classes   map[string]*classQueue // per-QoS-class claim frontiers (qos.go)
	classList []*classQueue          // classes sorted by name: deterministic arbitration scans
	vpass     uint64                 // stride clock: pass of the last chosen class
	claimSeq  int64                  // join decisions made; queue-wait unit
	inflight  int                    // accepted, not yet completed (bounded by depth)
	started   bool
	closed    bool
	wg        sync.WaitGroup

	submitted int64
	completed int64
	stolen    int64
	highWater int
	jobSeq    int64 // job IDs, assigned at acceptance (under mu)

	panicked  int64 // atomic: tasks whose panic was contained
	cancelled int64 // jobs failed by context cancellation

	tk        atomic.Pointer[tkBox] // virtual-clock hook (timekeeper.go)
	perWorker []workerCounters      // per-worker task/busy accounting
}

// Stats is a snapshot of a pool's scheduling counters.
type Stats struct {
	Workers        int
	JobsSubmitted  int64
	JobsCompleted  int64
	TasksStolen    int64         // tasks run by a worker other than the job's first claimant
	QueueHighWater int           // most jobs ever in flight at once (bounded by the depth)
	TasksPanicked  int64         // tasks whose panic was recovered and converted to a job error
	JobsCancelled  int64         // jobs that failed because their context was cancelled
	Classes        []ClassStats  // per-QoS-class counters, sorted by class name (qos.go)
	PerWorker      []WorkerStats // per-worker tasks run + charged virtual cycles (timekeeper.go)
}

// New returns a pool with the given worker count and queue depth.
// workers <= 0 uses GOMAXPROCS; depth <= 0 uses a default generous
// enough that synchronous callers rarely block (max(64, 4·workers)).
func New(workers, depth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 4 * workers
		if depth < 64 {
			depth = 64
		}
	}
	p := &Pool{workers: workers, depth: depth, classes: make(map[string]*classQueue)}
	p.cond = sync.NewCond(&p.mu)
	p.perWorker = make([]workerCounters, workers)
	return p
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide fallback pool, used by plans attached
// without an engine-owned runtime (direct core.NewPlan callers, tests).
// It is sized at GOMAXPROCS and never closed.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(0, 0) })
	return sharedPool
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Worker identifies one pool worker inside a task callback. IDs are
// dense in [0, Workers()), stable for the life of the pool, and each ID
// is only ever active on one goroutine at a time — callers key
// per-worker scratch (e.g. the executor's packing buffers) by ID with
// no locking.
type Worker struct {
	id      int
	pool    *Pool
	pending TaskCost // cost charged by the task currently running (timekeeper.go)
}

// ID returns the worker's dense index in [0, Workers()).
func (w *Worker) ID() int { return w.id }

// job is one submitted unit: n independent tasks claimed from an atomic
// cursor by up to max participating workers.
type job struct {
	pool *Pool
	ctx  context.Context // cancellation: later claims skip once Done
	id   int64           // pool-unique, assigned at acceptance
	n    int
	max  int
	run  func(w *Worker, task int) error

	next   int64 // atomic claim cursor
	done   int64 // atomic completed-task count
	failed int32 // atomic: a task returned an error; later claims skip
	stolen int64 // atomic: tasks run by non-primary participants

	parts  int  // participants joined (under pool.mu)
	listed bool // still on its class queue (under pool.mu)

	cq        *classQueue        // owning class queue (under pool.mu)
	cancel    context.CancelFunc // releases a QoS-deadline context at completion
	acceptSeq int64              // pool claimSeq at acceptance (queue-wait base)
	joined    bool               // first join recorded (under pool.mu)

	mu  sync.Mutex
	err error

	fin chan struct{}
}

// joinableLocked reports whether a new participant may join the job:
// unclaimed tasks remain and the participant cap is not reached.
func (j *job) joinableLocked() bool {
	return j.parts < j.max && atomic.LoadInt64(&j.next) < int64(j.n)
}

// Future is a handle on a submitted job. Wait blocks until every task
// has completed (or been skipped after a failure) and returns the first
// task error.
type Future struct{ j *job }

// Wait blocks for job completion and returns the first task error.
func (f *Future) Wait() error {
	<-f.j.fin
	f.j.mu.Lock()
	defer f.j.mu.Unlock()
	return f.j.err
}

// Done returns a channel closed when the job completes (every task ran
// or was skipped). After Done, Wait returns without blocking.
func (f *Future) Done() <-chan struct{} { return f.j.fin }

// WaitContext is Wait bounded by a context: it returns the job's first
// task error once the job completes, or ctx.Err() if the context fires
// first. An early context return does not abandon the job — it keeps
// running (or draining, if it was itself cancelled) and Wait remains
// usable.
func (f *Future) WaitContext(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-f.j.fin: // completed: prefer the job's result over a racing cancel
		return f.Wait()
	default:
	}
	select {
	case <-f.j.fin:
		return f.Wait()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TasksStolen reports, after Wait, how many of the job's tasks ran on a
// worker other than its first claimant.
func (f *Future) TasksStolen() int64 {
	<-f.j.fin
	return atomic.LoadInt64(&f.j.stolen)
}

// Tasks reports the job's task count — the group geometry the caller
// decomposed the work into. Together with Participants it lets callers
// (and the plan auditor's tests) cross-check that a submission's
// decomposition matches the C-tile groups a plan promises: one task per
// group, so exclusivity of groups implies race-freedom of the job.
func (f *Future) Tasks() int { return f.j.n }

// JobID returns the pool-unique ID assigned to the job at acceptance —
// the key a Timekeeper's observations use (see Recorder.Costs).
func (f *Future) JobID() int64 { return f.j.id }

// Participants reports, after the job completes, how many pool workers
// actually joined it. Always in [1, min(maxWorkers, pool size)] for a
// non-empty job; the task-claim cursor guarantees each task ran exactly
// once regardless of the participant count.
func (f *Future) Participants() int {
	<-f.j.fin
	f.j.pool.mu.Lock()
	defer f.j.pool.mu.Unlock()
	return f.j.parts
}

// OnDone invokes fn with the job's first task error once the job
// completes, without the caller having to park a goroutine on Wait —
// the continuation hook asynchronous submitters (the background plan
// upgrade) chain completion work on. fn runs exactly once, on a
// dedicated goroutine owned by the pool runtime, never inside a worker
// — so it may submit follow-up jobs, lock caller state, or run for a
// while without stalling task execution. A task error or contained
// panic reaches fn as the error; fn observing nil means every task
// ran. Note that OnDone fires even on a job whose remaining tasks were
// skipped after a failure — exactly the case a continuation must see
// to run its error path.
//
// Ordering contract: fn is asynchronous with respect to Wait. The
// callback is released by the same completion event that unblocks Wait
// (and closes Done()), but there is NO ordering between the two — a
// caller returning from Wait may observe the callback not yet run, and
// fn may likewise run before any waiter wakes. What is guaranteed: fn
// runs exactly once, it observes the same error Wait returns, and a
// registration after completion still fires. Callers needing
// wait-then-callback ordering must sequence it themselves;
// TestOnDoneOrderingContract pins these semantics.
func (f *Future) OnDone(fn func(error)) {
	go func() {
		<-f.j.fin
		fn(f.Wait())
	}()
}

// Submit enqueues a job of `tasks` independent tasks, each executed as
// run(worker, i), with at most maxWorkers pool workers participating
// (<= 0 means all). Tasks are claimed in ascending index order; with
// maxWorkers = 1 exactly one worker executes 0..tasks-1 sequentially.
// Submit blocks while the pool is at its in-flight depth and returns
// ErrClosed after Close. The job runs under the default QoS class.
func (p *Pool) Submit(tasks, maxWorkers int, run func(w *Worker, task int) error) (*Future, error) {
	return p.submit(context.Background(), tasks, maxWorkers, QoS{}, true, run)
}

// SubmitContext is Submit bound to a context. A context that fires
// while the submitter is blocked on backpressure aborts the submission
// with ctx.Err(); one that fires after acceptance cancels the job —
// unclaimed tasks are skipped (claims drain without running work, the
// same fast-path a task error takes), the job completes promptly, and
// its future returns ctx.Err(). A task already running is not
// interrupted. A nil context means Background.
func (p *Pool) SubmitContext(ctx context.Context, tasks, maxWorkers int, run func(w *Worker, task int) error) (*Future, error) {
	return p.submit(ctx, tasks, maxWorkers, QoS{}, true, run)
}

// SubmitQoS is SubmitContext with an explicit QoS: the job parks in
// qos.Class's queue, is claimed at that class's weight, and — when
// qos.Deadline is set — fails before claiming once the deadline
// expires. Admission control applies: a class at its configured depth,
// or a deadline already expired at submission, refuses the job with an
// error matching ErrAdmission instead of blocking.
func (p *Pool) SubmitQoS(ctx context.Context, tasks, maxWorkers int, qos QoS, run func(w *Worker, task int) error) (*Future, error) {
	return p.submit(ctx, tasks, maxWorkers, qos, true, run)
}

// TrySubmit is Submit without the backpressure wait: when the pool is
// at its in-flight depth it fails immediately with ErrBusy instead of
// blocking. Everything else matches Submit. It exists for best-effort
// background work — a caller serving a latency-sensitive request must
// never park behind the queue just to schedule an optimization.
func (p *Pool) TrySubmit(tasks, maxWorkers int, run func(w *Worker, task int) error) (*Future, error) {
	return p.submit(context.Background(), tasks, maxWorkers, QoS{}, false, run)
}

// TrySubmitQoS is TrySubmit with an explicit QoS — the non-blocking
// submission the background planner uses to enqueue its DMT upgrades
// under BackgroundClass.
func (p *Pool) TrySubmitQoS(tasks, maxWorkers int, qos QoS, run func(w *Worker, task int) error) (*Future, error) {
	return p.submit(context.Background(), tasks, maxWorkers, qos, false, run)
}

// submit is the single intake path behind every Submit variant:
// validate, resolve the QoS class, apply admission control, wait out
// (or refuse, for try-submits) pool-level backpressure, and accept the
// job into its class queue.
func (p *Pool) submit(ctx context.Context, tasks, maxWorkers int, qos QoS, wait bool, run func(w *Worker, task int) error) (*Future, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if tasks < 0 {
		return nil, fmt.Errorf("sched: negative task count %d", tasks)
	}
	var cancel context.CancelFunc
	if !qos.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(ctx, qos.Deadline)
	}
	fail := func(err error) (*Future, error) {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		if cancel != nil && errors.Is(err, context.DeadlineExceeded) {
			p.countRejected(qos)
			return fail(fmt.Errorf("%w: class %q deadline already expired: %v", ErrAdmission, qos.className(), err))
		}
		return fail(err)
	}
	if maxWorkers <= 0 || maxWorkers > p.workers {
		maxWorkers = p.workers
	}
	j := &job{pool: p, ctx: ctx, n: tasks, max: maxWorkers, run: run, cancel: cancel, fin: make(chan struct{})}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fail(ErrClosed)
	}
	p.startLocked()
	if p.inflight >= p.depth {
		if !wait {
			p.mu.Unlock()
			return fail(ErrBusy)
		}
		// Blocked on backpressure: a cond.Wait cannot select on the
		// context, so a watcher broadcasts when it fires and the loop
		// re-checks ctx.Err. The watcher exits either way.
		var stop chan struct{}
		if done := ctx.Done(); done != nil {
			stop = make(chan struct{})
			go func() {
				select {
				case <-done:
					p.mu.Lock()
					p.cond.Broadcast()
					p.mu.Unlock()
				case <-stop:
				}
			}()
		}
		for p.inflight >= p.depth && !p.closed && ctx.Err() == nil {
			p.cond.Wait()
		}
		if stop != nil {
			close(stop)
		}
	}
	if p.closed {
		p.mu.Unlock()
		return fail(ErrClosed)
	}
	cq := p.classLocked(qos.className())
	if qos.Weight > 0 {
		cq.weight = qos.Weight
	}
	if err := ctx.Err(); err != nil {
		if cancel != nil && errors.Is(err, context.DeadlineExceeded) {
			cq.rejected++
			p.mu.Unlock()
			return fail(fmt.Errorf("%w: class %q deadline expired before acceptance: %v", ErrAdmission, cq.name, err))
		}
		p.mu.Unlock()
		return fail(err)
	}
	if cq.depth > 0 && cq.inflight >= cq.depth {
		// Per-class admission sheds immediately — a bounded class never
		// converts its own overload into blocking for the submitter.
		cq.rejected++
		p.mu.Unlock()
		return fail(fmt.Errorf("%w: class %q at depth %d", ErrAdmission, cq.name, cq.depth))
	}
	p.submitted++
	cq.submitted++
	p.jobSeq++
	j.id = p.jobSeq
	j.cq = cq
	j.acceptSeq = p.claimSeq
	p.inflight++
	cq.inflight++
	if p.inflight > p.highWater {
		p.highWater = p.inflight
	}
	if tasks == 0 {
		p.inflight--
		cq.inflight--
		p.completed++
		cq.completed++
		p.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		close(j.fin)
		return &Future{j}, nil
	}
	j.listed = true
	cq.jobs = append(cq.jobs, j)
	// A class activating after idling is clamped up to the stride clock
	// so banked idle time can never monopolize the workers; for already
	// active classes this is a no-op (their pass is >= vpass).
	if cq.pass < p.vpass {
		cq.pass = p.vpass
	}
	meta := JobMeta{Class: cq.name, Weight: cq.weight, Tasks: tasks, MaxWorkers: maxWorkers}
	p.cond.Broadcast()
	p.mu.Unlock()
	if jo, ok := p.timekeeper().(JobObserver); ok {
		jo.ObserveJob(j.id, meta)
	}
	return &Future{j}, nil
}

// countRejected tallies an admission refusal that happened before the
// class queue was resolved under the lock.
func (p *Pool) countRejected(qos QoS) {
	p.mu.Lock()
	p.classLocked(qos.className()).rejected++
	p.mu.Unlock()
}

// Close rejects further submissions, drains every job already accepted,
// stops the workers and returns once they exit. It is idempotent;
// Submit calls blocked on backpressure fail with ErrClosed.
func (p *Pool) Close() error {
	p.beginClose()
	p.wg.Wait()
	return nil
}

// CloseWithTimeout is Close with a bounded drain: it rejects further
// submissions, lets accepted jobs drain for at most d, and — instead of
// hanging on a stuck task — returns an ErrDrainTimeout-matching error
// reporting how many jobs are still in flight. The workers keep
// draining in the background; a later Close (or CloseWithTimeout) waits
// again. It is safe to call repeatedly and after Close.
func (p *Pool) CloseWithTimeout(d time.Duration) error {
	p.beginClose()
	done := make(chan struct{})
	go func() { p.wg.Wait(); close(done) }()
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-done:
		return nil
	case <-timer.C:
		p.mu.Lock()
		n := p.inflight
		p.mu.Unlock()
		return fmt.Errorf("%w after %v: %d job(s) still in flight", ErrDrainTimeout, d, n)
	}
}

// beginClose marks the pool closed and wakes every parked worker and
// blocked submitter. Idempotent.
func (p *Pool) beginClose() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Stats returns a snapshot of the pool's counters.
//
// Relaxed-read semantics of PerWorker: each worker's TasksRun and
// BusyCycles live in separate single-writer atomic slots, folded in
// busy-then-tasks order when a task completes (observeTask). A snapshot
// taken while a task is mid-Charge therefore never tears a float and
// never reports a task whose charge is missing — but it may observe a
// charge whose task count is not yet incremented, and the pending cost
// of the task currently running is invisible until that task completes.
// The counters are exact whenever the pool is quiescent.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Stats{
		Workers:        p.workers,
		JobsSubmitted:  p.submitted,
		JobsCompleted:  p.completed,
		TasksStolen:    p.stolen,
		QueueHighWater: p.highWater,
		TasksPanicked:  atomic.LoadInt64(&p.panicked),
		JobsCancelled:  p.cancelled,
		Classes:        p.classStatsLocked(),
		PerWorker:      make([]WorkerStats, len(p.perWorker)),
	}
	for i := range p.perWorker {
		pw := &p.perWorker[i]
		s.PerWorker[i] = WorkerStats{
			TasksRun:   atomic.LoadInt64(&pw.tasks),
			BusyCycles: math.Float64frombits(atomic.LoadUint64(&pw.busy)),
		}
	}
	return s
}

// startLocked spawns the workers on first use.
func (p *Pool) startLocked() {
	if p.started {
		return
	}
	p.started = true
	p.wg.Add(p.workers)
	for id := 0; id < p.workers; id++ {
		go p.worker(id)
	}
}

// worker is the scheduling loop of one pool goroutine: claim tasks from
// the job weighted claiming selects, fall through to the next when a
// frontier is exhausted, park when nothing is claimable, exit when the
// pool is closed and drained.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	w := &Worker{id: id, pool: p}
	p.mu.Lock()
	for {
		j := p.claimableLocked()
		if j == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		j.parts++
		primary := j.parts == 1
		p.mu.Unlock()
		j.work(w, primary)
		p.mu.Lock()
	}
}

// claimableLocked is the join-decision arbiter: across every class with
// a joinable job it picks the class with the lowest stride pass — ties
// broken by the lowest head-job ID, so identical queue states always
// produce identical decisions — charges that class one stride of
// credit, and returns the class's first joinable job (FIFO within the
// class). A lone active class is chosen unconditionally, which is
// exactly the pre-QoS FIFO scan; weights only matter when classes
// compete. Starvation-freedom: a class passed over keeps its pass while
// the chosen class's pass advances, so any positive weight's pass
// eventually becomes the minimum and the class is served.
func (p *Pool) claimableLocked() *job {
	var best *classQueue
	var bestJob *job
	for _, cq := range p.classList {
		j := cq.joinableLocked()
		if j == nil {
			continue
		}
		if best == nil || cq.pass < best.pass || (cq.pass == best.pass && j.id < bestJob.id) {
			best, bestJob = cq, j
		}
	}
	if bestJob == nil {
		return nil
	}
	p.vpass = best.pass
	best.pass += best.stride()
	p.claimSeq++
	if !bestJob.joined {
		bestJob.joined = true
		best.waitJobs++
		best.waitClaims += p.claimSeq - 1 - bestJob.acceptSeq
	}
	return bestJob
}

// work claims and runs tasks until the job's frontier is exhausted.
// After a task fails — an error return, a contained panic, or the job's
// context firing — later claims are skipped (but still counted), so the
// job always completes and its future always fires.
func (j *job) work(w *Worker, primary bool) {
	for {
		i := atomic.AddInt64(&j.next, 1) - 1
		if i >= int64(j.n) {
			j.unlist()
			return
		}
		if atomic.LoadInt32(&j.failed) == 0 {
			if err := j.ctx.Err(); err != nil {
				j.fail(err, true)
			} else {
				w.pending = TaskCost{}
				err := j.runTask(w, int(i))
				j.pool.observeTask(w, j.id, int(i))
				if err != nil {
					j.fail(err, false)
				}
			}
		}
		if !primary {
			atomic.AddInt64(&j.stolen, 1)
		}
		if atomic.AddInt64(&j.done, 1) == int64(j.n) {
			j.finish()
		}
	}
}

// runTask executes one task, converting a panic into a *PanicError so a
// panicking task fails its job — future fires, in-flight slot freed —
// without killing the pool worker.
func (j *job) runTask(w *Worker, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			atomic.AddInt64(&j.pool.panicked, 1)
			err = &PanicError{Task: i, Value: r, Stack: debug.Stack()}
		}
	}()
	if h := loadFaultHook(); h != nil {
		if err := h(i); err != nil {
			return err
		}
	}
	return j.run(w, i)
}

// fail records the job's first error and flips the skip fast-path so
// remaining claims drain without running work.
func (j *job) fail(err error, cancelled bool) {
	j.mu.Lock()
	first := j.err == nil
	if first {
		j.err = err
	}
	j.mu.Unlock()
	atomic.StoreInt32(&j.failed, 1)
	if first && cancelled {
		p := j.pool
		p.mu.Lock()
		p.cancelled++
		p.mu.Unlock()
	}
}

// unlist removes an exhausted claim frontier from its class queue
// (idempotent — several workers can observe exhaustion concurrently).
func (j *job) unlist() {
	p := j.pool
	p.mu.Lock()
	if j.listed {
		j.listed = false
		q := j.cq.jobs
		for i, other := range q {
			if other == j {
				j.cq.jobs = append(q[:i], q[i+1:]...)
				break
			}
		}
	}
	p.mu.Unlock()
}

// finish completes the job: fold its counters into the pool and its
// class, free an in-flight slot (waking blocked Submit calls), release
// a QoS-deadline context, and fire the future.
func (j *job) finish() {
	p := j.pool
	p.mu.Lock()
	p.inflight--
	j.cq.inflight--
	p.completed++
	j.cq.completed++
	p.stolen += atomic.LoadInt64(&j.stolen)
	p.cond.Broadcast()
	p.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	close(j.fin)
}
