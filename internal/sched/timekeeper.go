package sched

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// addFloatBits adds v to the float64 stored as bits at addr. The slot
// has a single writer (the owning worker), so load-add-store needs no
// CAS; the atomic store keeps concurrent Stats readers tear-free.
func addFloatBits(addr *uint64, v float64) {
	bits := atomic.LoadUint64(addr)
	atomic.StoreUint64(addr, math.Float64bits(math.Float64frombits(bits)+v))
}

// This file is the virtual-time seam of the runtime. Execution on this
// host is wall-clock-flat (one CPU), so multi-worker performance is
// made measurable the same way the repo makes Arm hardware measurable:
// by simulation. A task that knows its own modelled cost charges it to
// the worker that ran it (Worker.Charge); an installed Timekeeper
// observes every (worker, job, task, cost) tuple as the real scheduler
// produces it. Claiming order, stealing and participant caps are
// untouched — the hook is pure accounting, and when no Timekeeper is
// installed the only cost is one atomic load per task.
//
// The cost tuples a Timekeeper collects are keyed by task index, not by
// the (racy) physical worker assignment, so a recording made under any
// GOMAXPROCS is deterministic: internal/vtime replays the claim
// discipline over the recorded costs to produce bit-reproducible
// simulated schedules.

// TaskCost is the simulated cost of one task: compute cycles on the
// modelled chip plus the DRAM traffic the task moves (the contention
// model debits it against shared NUMA/CMG-group bandwidth).
type TaskCost struct {
	Cycles float64 // modelled compute cycles (kernel + pack + launch)
	Bytes  float64 // DRAM bytes moved
}

// Add returns the sum of two costs.
func (c TaskCost) Add(d TaskCost) TaskCost {
	return TaskCost{Cycles: c.Cycles + d.Cycles, Bytes: c.Bytes + d.Bytes}
}

// Timekeeper observes the simulated cost of every completed task. It is
// invoked from worker goroutines after the task's callback returns —
// implementations must be safe for concurrent use. Skipped claims
// (after a failure or cancellation) are not observed: they ran no work.
type Timekeeper interface {
	ObserveTask(worker int, job int64, task int, cost TaskCost)
}

// JobMeta is the scheduling identity of an accepted job: what a
// replay needs to reconstruct the pool's multi-job arbitration.
type JobMeta struct {
	Class      string // QoS class the job parked in
	Weight     int    // class weight at acceptance
	Tasks      int    // task count
	MaxWorkers int    // participant cap (resolved, >= 1)
}

// JobObserver is an optional extension of Timekeeper: a hook that also
// implements it is told each job's scheduling identity at acceptance,
// before any of the job's tasks are observed. Invoked outside the pool
// lock; implementations must be safe for concurrent use.
type JobObserver interface {
	ObserveJob(job int64, meta JobMeta)
}

// SetTimekeeper installs (or, with nil, removes) the pool's virtual
// clock hook. It may be called at any time, including while jobs run;
// tasks completing after the call observe the new hook.
func (p *Pool) SetTimekeeper(tk Timekeeper) {
	p.tk.Store(&tkBox{tk})
}

// tkBox wraps the Timekeeper so atomic.Pointer has a concrete type and
// a nil hook is storable.
type tkBox struct{ tk Timekeeper }

// timekeeper returns the installed hook, or nil.
func (p *Pool) timekeeper() Timekeeper {
	if b := p.tk.Load(); b != nil {
		return b.tk
	}
	return nil
}

// Charge adds cost to the task the worker is currently running. The
// executor calls it from inside the task callback; the pool forwards
// the task's accumulated cost to the Timekeeper (and the per-worker
// busy counters) when the task completes. Charges outside a task are
// dropped.
func (w *Worker) Charge(c TaskCost) {
	w.pending = w.pending.Add(c)
}

// workerCounters is the per-worker accounting slot. Only worker `id`
// ever writes slot `id` (the Worker single-goroutine contract), so the
// writes are plain read-modify-write on atomics — no CAS loop — and
// Stats readers load them concurrently.
type workerCounters struct {
	tasks int64  // tasks actually run (skipped claims excluded)
	busy  uint64 // math.Float64bits of charged virtual cycles
}

// WorkerStats is one worker's task accounting: how many tasks it ran
// and how many simulated cycles were charged to it. BusyCycles is zero
// unless tasks charge costs (Worker.Charge); TasksRun counts always.
// The spread across workers is the load-imbalance figure the scaling
// report shows directly.
type WorkerStats struct {
	TasksRun   int64
	BusyCycles float64
}

// Recorder is a Timekeeper that records every observed task cost,
// keyed by job and task index. Because task indices are dense and each
// task runs exactly once, the recorded cost slice of a job is
// independent of which physical worker ran which task — the property
// that makes virtual-time replays deterministic across GOMAXPROCS.
type Recorder struct {
	mu   sync.Mutex
	jobs map[int64][]TaskCost
	meta map[int64]JobMeta
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{jobs: make(map[int64][]TaskCost), meta: make(map[int64]JobMeta)}
}

// ObserveJob implements JobObserver: the recorder files each accepted
// job's scheduling identity so a multi-job replay (vtime.SimulateBatch)
// can rebuild the class/weight arbitration the pool ran under.
func (r *Recorder) ObserveJob(job int64, meta JobMeta) {
	r.mu.Lock()
	r.meta[job] = meta
	r.mu.Unlock()
}

// Meta returns the scheduling identity recorded for one job.
func (r *Recorder) Meta(job int64) (JobMeta, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.meta[job]
	return m, ok
}

// ObserveTask implements Timekeeper.
func (r *Recorder) ObserveTask(worker int, job int64, task int, cost TaskCost) {
	r.mu.Lock()
	costs := r.jobs[job]
	for len(costs) <= task {
		costs = append(costs, TaskCost{})
	}
	costs[task] = cost
	r.jobs[job] = costs
	r.mu.Unlock()
}

// Costs returns a copy of the recorded per-task costs of one job
// (indexed by task), or nil if the job was never observed.
func (r *Recorder) Costs(job int64) []TaskCost {
	r.mu.Lock()
	defer r.mu.Unlock()
	costs, ok := r.jobs[job]
	if !ok {
		return nil
	}
	out := make([]TaskCost, len(costs))
	copy(out, costs)
	return out
}

// Jobs returns the observed job IDs in ascending order.
func (r *Recorder) Jobs() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int64, 0, len(r.jobs))
	for id := range r.jobs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Total sums every recorded cost across all jobs.
func (r *Recorder) Total() TaskCost {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t TaskCost
	for _, costs := range r.jobs {
		for _, c := range costs {
			t = t.Add(c)
		}
	}
	return t
}

// observeTask folds a completed task's charge into the per-worker
// counters and forwards it to the Timekeeper, if one is installed.
//
// The busy charge is folded BEFORE the task counter is incremented on
// purpose: the two slots are separate atomics with no common lock, so a
// concurrent Stats snapshot sees them in some interleaving — this order
// guarantees a snapshot never reports a task whose charge is missing
// (TasksRun counted, BusyCycles not yet folded would understate average
// cost). The benign converse — a folded charge whose task is not yet
// counted — overstates nothing a quiescent read won't correct. See
// Pool.Stats for the full relaxed-read contract.
func (p *Pool) observeTask(w *Worker, job int64, task int) {
	pw := &p.perWorker[w.id]
	if w.pending != (TaskCost{}) {
		addFloatBits(&pw.busy, w.pending.Cycles)
	}
	atomic.AddInt64(&pw.tasks, 1)
	if tk := p.timekeeper(); tk != nil {
		tk.ObserveTask(w.id, job, task, w.pending)
	}
}

// IdleCycles derives each worker's idle time against a horizon: for
// every worker it returns horizon − BusyCycles (clamped at zero). A
// horizon <= 0 uses the busiest worker's BusyCycles — the makespan
// lower bound a balanced schedule would achieve — which is the figure
// the bench reports instead of re-deriving it ad hoc at call sites.
func (s Stats) IdleCycles(horizon float64) []float64 {
	if horizon <= 0 {
		for _, pw := range s.PerWorker {
			if pw.BusyCycles > horizon {
				horizon = pw.BusyCycles
			}
		}
	}
	out := make([]float64, len(s.PerWorker))
	for i, pw := range s.PerWorker {
		idle := horizon - pw.BusyCycles
		if idle < 0 {
			idle = 0
		}
		out[i] = idle
	}
	return out
}
