package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestTrySubmitBusy: at the in-flight depth TrySubmit refuses
// immediately with ErrBusy instead of blocking, and succeeds again
// once the queue drains.
func TestTrySubmitBusy(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	release := make(chan struct{})
	fut, err := p.Submit(1, 1, func(_ *Worker, _ int) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.TrySubmit(1, 1, func(_ *Worker, _ int) error { return nil }); !errors.Is(err, ErrBusy) {
		t.Fatalf("TrySubmit at depth: err = %v, want ErrBusy", err)
	}
	close(release)
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	fut2, err := p.TrySubmit(1, 1, func(_ *Worker, _ int) error { return nil })
	if err != nil {
		t.Fatalf("TrySubmit after drain: %v", err)
	}
	if err := fut2.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestTrySubmitClosed: a closed pool refuses with ErrClosed, not
// ErrBusy.
func TestTrySubmitClosed(t *testing.T) {
	p := New(1, 1)
	p.Close()
	if _, err := p.TrySubmit(1, 1, func(_ *Worker, _ int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestOnDone: the continuation fires exactly once with the job's
// error — nil on success, the task error on failure, a PanicError on
// a contained panic — and may itself submit follow-up work.
func TestOnDone(t *testing.T) {
	p := New(2, 0)
	defer p.Close()

	var fired atomic.Int64
	errCh := make(chan error, 1)
	fut, err := p.TrySubmit(4, 0, func(_ *Worker, _ int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	fut.OnDone(func(err error) {
		fired.Add(1)
		// Submitting from the continuation must not deadlock: it runs
		// on a dedicated goroutine, not inside a pool worker.
		f2, err2 := p.Submit(1, 1, func(_ *Worker, _ int) error { return err })
		if err2 != nil {
			errCh <- err2
			return
		}
		errCh <- f2.Wait()
	})
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone continuation never completed")
	}
	if got := fired.Load(); got != 1 {
		t.Fatalf("continuation fired %d times, want 1", got)
	}

	boom := fmt.Errorf("boom")
	fut, err = p.TrySubmit(2, 0, func(_ *Worker, i int) error {
		if i == 0 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	fut.OnDone(func(err error) { got <- err })
	select {
	case err := <-got:
		if !errors.Is(err, boom) {
			t.Fatalf("OnDone error = %v, want boom", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnDone never fired on failure")
	}
}
