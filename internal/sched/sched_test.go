package sched

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsAllTasks: every task of a job executes exactly once and
// the future completes without error.
func TestPoolRunsAllTasks(t *testing.T) {
	p := New(4, 8)
	defer p.Close()
	const n = 100
	var ran [n]int32
	fut, err := p.Submit(n, 0, func(w *Worker, i int) error {
		atomic.AddInt32(&ran[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if ran[i] != 1 {
			t.Fatalf("task %d ran %d times", i, ran[i])
		}
	}
	st := p.Stats()
	if st.JobsSubmitted != 1 || st.JobsCompleted != 1 {
		t.Errorf("stats = %+v, want 1 submitted / 1 completed", st)
	}
}

// TestSingleWorkerOrder: maxWorkers = 1 executes tasks strictly in
// ascending index order on one worker — the determinism contract the
// serial Run path relies on.
func TestSingleWorkerOrder(t *testing.T) {
	p := New(4, 8)
	defer p.Close()
	const n = 50
	var order []int
	var worker []int
	fut, err := p.Submit(n, 1, func(w *Worker, i int) error {
		order = append(order, i) // single participant: no race
		worker = append(worker, w.ID())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("ran %d tasks, want %d", len(order), n)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("task order[%d] = %d", i, got)
		}
	}
	for _, id := range worker {
		if id != worker[0] {
			t.Fatalf("tasks spread across workers %v with maxWorkers=1", worker)
		}
	}
	if s := fut.TasksStolen(); s != 0 {
		t.Errorf("TasksStolen = %d on a single-worker job", s)
	}
}

// TestCloseThenSubmit: submission after Close fails cleanly with
// ErrClosed, and Close is idempotent.
func TestCloseThenSubmit(t *testing.T) {
	p := New(2, 4)
	if _, err := p.Submit(1, 0, func(*Worker, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(1, 0, func(*Worker, int) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCloseDrainsAcceptedJobs: jobs accepted before Close run to
// completion and their futures fire.
func TestCloseDrainsAcceptedJobs(t *testing.T) {
	p := New(2, 16)
	var ran int64
	futs := make([]*Future, 8)
	for i := range futs {
		f, err := p.Submit(4, 0, func(*Worker, int) error {
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&ran, 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for i, f := range futs {
		if err := f.Wait(); err != nil {
			t.Fatalf("future %d after Close: %v", i, err)
		}
	}
	if got := atomic.LoadInt64(&ran); got != 8*4 {
		t.Fatalf("ran %d tasks, want %d", got, 8*4)
	}
}

// TestQueueSaturation: with a depth-1 queue and concurrent submitters,
// every future still completes and the in-flight high-water mark never
// exceeds the depth — Submit blocks instead of dropping or erroring.
func TestQueueSaturation(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	const jobs = 16
	var done int64
	var wg sync.WaitGroup
	for g := 0; g < jobs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := p.Submit(3, 0, func(*Worker, int) error { return nil })
			if err != nil {
				t.Error(err)
				return
			}
			if err := f.Wait(); err != nil {
				t.Error(err)
				return
			}
			atomic.AddInt64(&done, 1)
		}()
	}
	wg.Wait()
	if done != jobs {
		t.Fatalf("%d of %d futures completed", done, jobs)
	}
	st := p.Stats()
	if st.JobsCompleted != jobs {
		t.Errorf("JobsCompleted = %d, want %d", st.JobsCompleted, jobs)
	}
	if st.QueueHighWater > 1 {
		t.Errorf("QueueHighWater = %d exceeds depth 1", st.QueueHighWater)
	}
}

// TestTaskErrorPropagates: the first task error reaches the future, the
// job still completes, and the pool keeps serving later jobs.
func TestTaskErrorPropagates(t *testing.T) {
	p := New(2, 4)
	defer p.Close()
	boom := errors.New("boom")
	fut, err := p.Submit(20, 0, func(w *Worker, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	ok, err := p.Submit(1, 0, func(*Worker, int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Wait(); err != nil {
		t.Fatalf("job after failed job: %v", err)
	}
}

// TestZeroTaskJob completes immediately.
func TestZeroTaskJob(t *testing.T) {
	p := New(1, 1)
	defer p.Close()
	fut, err := p.Submit(0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestWorkerIDsDense: worker IDs observed by tasks stay inside
// [0, Workers()) — the contract per-worker scratch slots rely on.
func TestWorkerIDsDense(t *testing.T) {
	p := New(3, 8)
	defer p.Close()
	var bad int64
	fut, err := p.Submit(64, 0, func(w *Worker, i int) error {
		if w.ID() < 0 || w.ID() >= p.Workers() {
			atomic.AddInt64(&bad, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("%d tasks saw an out-of-range worker ID", bad)
	}
}

// TestConcurrentMixedJobs drives one pool from many goroutines with
// varying job sizes and participant caps (run under -race in CI).
func TestConcurrentMixedJobs(t *testing.T) {
	p := New(4, 4)
	defer p.Close()
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				n := 1 + (g+r)%7
				maxW := 1 + r%4
				var sum int64
				f, err := p.Submit(n, maxW, func(w *Worker, i int) error {
					atomic.AddInt64(&sum, int64(i)+1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if err := f.Wait(); err != nil {
					t.Error(err)
					return
				}
				if want := int64(n*(n+1)) / 2; sum != want {
					t.Errorf("job sum = %d, want %d", sum, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.JobsSubmitted != st.JobsCompleted || st.JobsSubmitted != 12*10 {
		t.Errorf("stats = %+v, want %d submitted == completed", st, 12*10)
	}
}
