package sim

import (
	"testing"

	"autogemm/internal/asm"
)

func TestArenaAllocAlignment(t *testing.T) {
	a := NewArena(1024)
	p1 := a.Alloc(3)
	p2 := a.Alloc(5)
	if p1%64 != 0 || p2%64 != 0 {
		t.Errorf("allocations not line-aligned: %d %d", p1, p2)
	}
	if p2 <= p1 {
		t.Error("overlapping allocations")
	}
}

func TestArenaGrows(t *testing.T) {
	a := NewArena(8)
	addr := a.Alloc(1000)
	a.SetFloat32(addr+999*4, 42)
	if a.Float32(addr+999*4) != 42 {
		t.Error("arena did not grow")
	}
}

func TestMachineScalarOps(t *testing.T) {
	p := asm.NewProgram("scalar")
	p.MovI(asm.X(0), 10)
	p.Lsl(asm.X(1), asm.X(0), 2)  // 40
	p.AddI(asm.X(2), asm.X(1), 2) // 42
	p.Mov(asm.X(3), asm.X(2))
	p.Add(asm.X(4), asm.X(3), asm.X(0)) // 52
	p.SubI(asm.X(5), asm.X(4), 52)      // 0
	p.Ret()
	m := NewMachine(NewArena(16), 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int64{10, 40, 42, 42, 52, 0} {
		if m.X[i] != want {
			t.Errorf("x%d = %d, want %d", i, m.X[i], want)
		}
	}
}

func TestMachineXZR(t *testing.T) {
	p := asm.NewProgram("xzr")
	p.MovI(asm.XZR, 99) // write discarded
	p.Mov(asm.X(0), asm.XZR)
	p.Ret()
	m := NewMachine(NewArena(16), 4)
	m.X[0] = 7
	if err := m.Run(p, 10); err != nil {
		t.Fatal(err)
	}
	if m.X[0] != 0 {
		t.Errorf("reading xzr gave %d", m.X[0])
	}
}

func TestMachineLoopAndFlag(t *testing.T) {
	// Sum 1..5 via a SUBS/BNE loop.
	p := asm.NewProgram("loop")
	p.MovI(asm.X(0), 5) // counter
	p.MovI(asm.X(1), 0) // accumulator
	p.Label("top")
	p.Add(asm.X(1), asm.X(1), asm.X(0))
	p.Subs(asm.X(0), asm.X(0), 1)
	p.Bne("top")
	p.Ret()
	m := NewMachine(NewArena(16), 4)
	if err := m.Run(p, 1000); err != nil {
		t.Fatal(err)
	}
	if m.X[1] != 15 {
		t.Errorf("sum = %d, want 15", m.X[1])
	}
}

func TestMachineVectorLoadStoreFMLA(t *testing.T) {
	a := NewArena(256)
	src := a.Alloc(8)
	dst := a.Alloc(4)
	for i := 0; i < 8; i++ {
		a.SetFloat32(src+int64(i)*4, float32(i+1))
	}
	p := asm.NewProgram("vec")
	p.MovI(asm.X(0), src)
	p.LdrQPost(asm.V(0), asm.X(0), 16) // 1,2,3,4
	p.LdrQ(asm.V(1), asm.X(0), 0)      // 5,6,7,8
	p.VZero(asm.V(2))
	p.Fmla(asm.V(2), asm.V(0), asm.V(1), 1) // += (1..4) * 6
	p.MovI(asm.X(1), dst)
	p.StrQPost(asm.V(2), asm.X(1), 16)
	p.Ret()
	m := NewMachine(a, 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float32{6, 12, 18, 24} {
		if got := a.Float32(dst + int64(i)*4); got != want {
			t.Errorf("dst[%d] = %g, want %g", i, got, want)
		}
	}
	if m.X[0] != src+16 {
		t.Errorf("post-index base = %d, want %d", m.X[0], src+16)
	}
	if m.X[1] != dst+16 {
		t.Errorf("post-index store base advanced to %d", m.X[1])
	}
}

func TestMachineInfiniteLoopGuard(t *testing.T) {
	p := asm.NewProgram("spin")
	p.Label("x")
	p.MovI(asm.X(0), 1)
	p.B("x")
	p.Ret()
	m := NewMachine(NewArena(16), 4)
	if err := m.Run(p, 100); err == nil {
		t.Error("expected step-budget error")
	}
}

func TestMachineOutOfBounds(t *testing.T) {
	p := asm.NewProgram("oob")
	p.MovI(asm.X(0), 1<<40)
	p.LdrQ(asm.V(0), asm.X(0), 0)
	p.Ret()
	m := NewMachine(NewArena(16), 4)
	if err := m.Run(p, 10); err == nil {
		t.Error("expected out-of-bounds error")
	}
	p2 := asm.NewProgram("misaligned")
	p2.MovI(asm.X(0), 2) // not 4-byte aligned
	p2.LdrQ(asm.V(0), asm.X(0), 0)
	p2.Ret()
	if err := m.Run(p2, 10); err == nil {
		t.Error("expected misalignment error")
	}
}

func TestMachineTraceRecording(t *testing.T) {
	a := NewArena(64)
	addr := a.Alloc(4)
	p := asm.NewProgram("trace")
	p.MovI(asm.X(0), addr)
	p.LdrQ(asm.V(0), asm.X(0), 0)
	p.StrQ(asm.V(0), asm.X(0), 0)
	p.Ret()
	m := NewMachine(a, 4)
	m.Record = true
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	if len(m.Trace) != 4 {
		t.Fatalf("trace length %d, want 4", len(m.Trace))
	}
	if !m.Trace[1].HasMem || m.Trace[1].Mem.Store {
		t.Error("load trace entry wrong")
	}
	if !m.Trace[2].HasMem || !m.Trace[2].Mem.Store {
		t.Error("store trace entry wrong")
	}
	if m.Trace[1].Mem.Addr != addr {
		t.Errorf("trace address %d, want %d", m.Trace[1].Mem.Addr, addr)
	}
}

func TestMachineFallOffEnd(t *testing.T) {
	p := asm.NewProgram("noret")
	p.MovI(asm.X(0), 1)
	m := NewMachine(NewArena(16), 4)
	if err := m.Run(p, 10); err == nil {
		t.Error("expected fell-off-end error")
	}
}

func TestMachineSVELanes(t *testing.T) {
	a := NewArena(256)
	src := a.Alloc(16)
	for i := 0; i < 16; i++ {
		a.SetFloat32(src+int64(i)*4, float32(i))
	}
	p := asm.NewProgram("sve")
	p.MovI(asm.X(0), src)
	p.LdrQ(asm.V(0), asm.X(0), 0)
	p.Ret()
	m := NewMachine(a, 16)
	if err := m.Run(p, 10); err != nil {
		t.Fatal(err)
	}
	if m.V[0][15] != 15 {
		t.Errorf("16-lane load lane 15 = %g", m.V[0][15])
	}
}
