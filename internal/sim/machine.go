// Package sim executes asm programs. It contains two machines:
//
//   - the functional Machine runs a program over a float32 arena and is
//     the ground truth for numerical correctness of generated kernels;
//   - the timing Model replays the dynamic instruction trace through a
//     scoreboard pipeline (dispatch width, per-class ports and latencies,
//     bounded out-of-order window, cache-dependent load latency) and
//     reports cycles — the substitute for running on real Arm silicon.
package sim

import (
	"fmt"

	"autogemm/internal/asm"
)

// Arena is a flat float32 memory. Pointer values held in scalar registers
// are byte offsets into the arena, so generated kernels can do AArch64
// pointer arithmetic (lsl by 2, add leading-dimension strides) unchanged.
//
// Growth contract: Alloc may reallocate the backing array, so any slice
// obtained through Slice (or Data) before an Alloc can go stale — it
// would alias the old, abandoned backing array. Callers that capture
// slices for the duration of an execution (the compiled backend in
// internal/sim/compile does; so do the packing loops in internal/core)
// must perform every Alloc first and then call Freeze, after which
// further Alloc calls panic instead of silently invalidating captures.
type Arena struct {
	data   []float32
	next   int64
	frozen bool
}

// NewArena allocates an arena holding n float32 words.
func NewArena(n int) *Arena { return &Arena{data: make([]float32, n)} }

// Alloc reserves n words and returns their base byte address, aligned to
// a 64-byte cache line the way a real allocator would align BLAS buffers.
// Alloc panics on a frozen arena: growth after Freeze would strand every
// captured slice on the old backing array.
func (a *Arena) Alloc(n int) int64 {
	if a.frozen {
		panic("sim: Alloc on a frozen arena (captured slices would go stale)")
	}
	const lineWords = 16
	if r := a.next % lineWords; r != 0 {
		a.next += lineWords - r
	}
	base := a.next
	a.next += int64(n)
	if int(a.next) > len(a.data) {
		grown := make([]float32, int(a.next)*2)
		copy(grown, a.data)
		a.data = grown
	}
	return base * 4
}

// Freeze seals the arena layout: subsequent Alloc calls panic. Call it
// after all allocations and before handing slices of the arena to code
// that holds them across an execution.
func (a *Arena) Freeze() { a.frozen = true }

// Data returns the whole backing array. The returned slice is only
// guaranteed to stay valid on a frozen arena; see the growth contract.
func (a *Arena) Data() []float32 { return a.data }

// Slice returns the n words starting at byte address addr.
func (a *Arena) Slice(addr int64, n int) []float32 {
	i := addr / 4
	return a.data[i : i+int64(n)]
}

// Float32 returns the word at byte address addr.
func (a *Arena) Float32(addr int64) float32 { return a.data[addr/4] }

// SetFloat32 stores v at byte address addr.
func (a *Arena) SetFloat32(addr int64, v float32) { a.data[addr/4] = v }

// Words returns the arena capacity in float32 words.
func (a *Arena) Words() int { return len(a.data) }

// MemRef describes one dynamic memory access for the timing model.
type MemRef struct {
	Addr  int64 // byte address
	Bytes int
	Store bool
}

// TraceEntry is one executed instruction in dynamic order.
type TraceEntry struct {
	Index  int // instruction index in the program
	Mem    MemRef
	HasMem bool
}

// Machine is the functional interpreter state.
type Machine struct {
	X     [asm.NumScalarRegs]int64
	V     [asm.NumVectorRegs][]float32
	P     [asm.NumPredRegs][]bool // SVE predicate lanes
	ZFlag bool                    // set by SUBS when the result is zero

	Lanes int
	Mem   *Arena

	// Record enables trace capture during Run for the timing model.
	Record bool
	Trace  []TraceEntry
}

// NewMachine builds a functional machine with σ_lane-wide vectors.
func NewMachine(mem *Arena, lanes int) *Machine {
	m := &Machine{Lanes: lanes, Mem: mem}
	for i := range m.V {
		m.V[i] = make([]float32, lanes)
	}
	for i := range m.P {
		m.P[i] = make([]bool, lanes)
	}
	return m
}

// SetArg places an argument value (a pointer or integer) in Xn, following
// the AAPCS64 convention the generated kernels assume (A, B, C, lda, ldb,
// ldc in X0..X5).
func (m *Machine) SetArg(n int, v int64) { m.X[n] = v }

// Run executes the program until RET, a step budget, or an error. The
// step budget guards against generator bugs producing infinite loops.
func (m *Machine) Run(p *asm.Program, maxSteps int) error {
	if m.Record {
		m.Trace = m.Trace[:0]
	}
	pc := 0
	steps := 0
	vecBytes := int64(m.Lanes * 4)
	for pc < len(p.Instrs) {
		if steps++; steps > maxSteps {
			return fmt.Errorf("sim: %s: exceeded %d steps (infinite loop?)", p.Name, maxSteps)
		}
		in := &p.Instrs[pc]
		var mem MemRef
		hasMem := false
		switch in.Op {
		case asm.OpNop, asm.OpLabel:
			// nothing
		case asm.OpMov:
			m.writeX(in.Dst, m.readX(in.Src1))
		case asm.OpMovI:
			m.writeX(in.Dst, in.Imm)
		case asm.OpLsl:
			m.writeX(in.Dst, m.readX(in.Src1)<<uint(in.Imm))
		case asm.OpAdd:
			m.writeX(in.Dst, m.readX(in.Src1)+m.readX(in.Src2))
		case asm.OpAddI:
			m.writeX(in.Dst, m.readX(in.Src1)+in.Imm)
		case asm.OpSubI:
			m.writeX(in.Dst, m.readX(in.Src1)-in.Imm)
		case asm.OpSubs:
			v := m.readX(in.Src1) - in.Imm
			m.writeX(in.Dst, v)
			m.ZFlag = v == 0
		case asm.OpB:
			t, ok := p.LabelIndex(in.Label)
			if !ok {
				return fmt.Errorf("sim: %s: undefined label %q", p.Name, in.Label)
			}
			pc = t
			continue
		case asm.OpBne:
			if !m.ZFlag {
				t, ok := p.LabelIndex(in.Label)
				if !ok {
					return fmt.Errorf("sim: %s: undefined label %q", p.Name, in.Label)
				}
				if m.Record {
					m.Trace = append(m.Trace, TraceEntry{Index: pc})
				}
				pc = t
				continue
			}
		case asm.OpRet:
			if m.Record {
				m.Trace = append(m.Trace, TraceEntry{Index: pc})
			}
			return nil
		case asm.OpLdrQ, asm.OpLdrQPost:
			addr := m.readX(in.Src1)
			if in.Op == asm.OpLdrQ {
				addr += in.Imm
			}
			if err := m.checkAddr(p, addr, vecBytes); err != nil {
				return err
			}
			copy(m.V[in.Dst.Index()], m.Mem.Slice(addr, m.Lanes))
			if in.Op == asm.OpLdrQPost {
				m.writeX(in.Src1, m.readX(in.Src1)+in.Imm)
			}
			mem, hasMem = MemRef{Addr: addr, Bytes: int(vecBytes)}, true
		case asm.OpStrQ, asm.OpStrQPost:
			addr := m.readX(in.Src1)
			if in.Op == asm.OpStrQ {
				addr += in.Imm
			}
			if err := m.checkAddr(p, addr, vecBytes); err != nil {
				return err
			}
			copy(m.Mem.Slice(addr, m.Lanes), m.V[in.Dst.Index()])
			if in.Op == asm.OpStrQPost {
				m.writeX(in.Src1, m.readX(in.Src1)+in.Imm)
			}
			mem, hasMem = MemRef{Addr: addr, Bytes: int(vecBytes), Store: true}, true
		case asm.OpFmla:
			d, a, b := m.V[in.Dst.Index()], m.V[in.Src1.Index()], m.V[in.Src2.Index()]
			s := b[in.Lane]
			for l := 0; l < m.Lanes; l++ {
				d[l] += a[l] * s
			}
		case asm.OpVZero:
			d := m.V[in.Dst.Index()]
			for l := range d {
				d[l] = 0
			}
		case asm.OpPrfm:
			addr := m.readX(in.Src1) + in.Imm
			mem, hasMem = MemRef{Addr: addr, Bytes: 0}, true
		case asm.OpWhilelt:
			idx := m.readX(in.Src1)
			limit := m.readX(in.Src2)
			pd := m.P[int(in.Dst)-asm.NumScalarRegs-asm.NumVectorRegs]
			for l := 0; l < m.Lanes; l++ {
				pd[l] = idx+int64(l) < limit
			}
		case asm.OpPTrue:
			pd := m.P[int(in.Dst)-asm.NumScalarRegs-asm.NumVectorRegs]
			for l := range pd {
				pd[l] = true
			}
		case asm.OpLd1W:
			addr := m.readX(in.Src1) + in.Imm
			pd := m.P[int(in.Src2)-asm.NumScalarRegs-asm.NumVectorRegs]
			d := m.V[in.Dst.Index()]
			active := 0
			for l := 0; l < m.Lanes; l++ {
				if !pd[l] {
					d[l] = 0 // SVE zeroing load
					continue
				}
				ea := addr + int64(l)*4
				if err := m.checkAddr(p, ea, 4); err != nil {
					return err
				}
				d[l] = m.Mem.Float32(ea)
				active++
			}
			mem, hasMem = MemRef{Addr: addr, Bytes: active * 4}, true
		case asm.OpSt1W:
			addr := m.readX(in.Src1) + in.Imm
			pd := m.P[int(in.Src2)-asm.NumScalarRegs-asm.NumVectorRegs]
			d := m.V[in.Dst.Index()]
			active := 0
			for l := 0; l < m.Lanes; l++ {
				if !pd[l] {
					continue
				}
				ea := addr + int64(l)*4
				if err := m.checkAddr(p, ea, 4); err != nil {
					return err
				}
				m.Mem.SetFloat32(ea, d[l])
				active++
			}
			mem, hasMem = MemRef{Addr: addr, Bytes: active * 4, Store: true}, true
		default:
			return fmt.Errorf("sim: %s: unimplemented op %s", p.Name, in.Op)
		}
		if m.Record && in.Op != asm.OpLabel {
			m.Trace = append(m.Trace, TraceEntry{Index: pc, Mem: mem, HasMem: hasMem})
		}
		pc++
	}
	return fmt.Errorf("sim: %s: fell off the end without ret", p.Name)
}

func (m *Machine) readX(r asm.Reg) int64 {
	if r == asm.XZR {
		return 0
	}
	return m.X[r.Index()]
}

func (m *Machine) writeX(r asm.Reg, v int64) {
	if r == asm.XZR {
		return
	}
	m.X[r.Index()] = v
}

func (m *Machine) checkAddr(p *asm.Program, addr, size int64) error {
	if addr < 0 || addr%4 != 0 || int(addr/4)+int(size/4) > m.Mem.Words() {
		return fmt.Errorf("sim: %s: out-of-bounds access at byte %d (+%d)", p.Name, addr, size)
	}
	return nil
}
