package sim

import (
	"testing"

	"autogemm/internal/asm"
	"autogemm/internal/hw"
)

// TestMachineSVEPredication exercises the predicated SVE semantics:
// WHILELT lane construction, zeroing loads, partial stores.
func TestMachineSVEPredication(t *testing.T) {
	a := NewArena(256)
	src := a.Alloc(16)
	dst := a.Alloc(16)
	for i := 0; i < 16; i++ {
		a.SetFloat32(src+int64(i)*4, float32(i+1))
		a.SetFloat32(dst+int64(i)*4, -1)
	}
	p := asm.NewProgram("pred")
	p.MovI(asm.X(1), 2) // index
	p.MovI(asm.X(2), 5) // limit: lanes 0..2 active (2,3,4 < 5)
	p.Whilelt(asm.P(0), asm.X(1), asm.X(2))
	p.PTrue(asm.P(1))
	p.MovI(asm.X(3), src)
	p.MovI(asm.X(4), dst)
	p.Ld1W(asm.V(0), asm.P(0), asm.X(3), 0) // lanes 0..2 loaded, rest zero
	p.St1W(asm.V(0), asm.P(0), asm.X(4), 0) // lanes 0..2 stored
	p.Ret()
	m := NewMachine(a, 4)
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	// whilelt(2, 5) over 4 lanes: 2,3,4 < 5 but lane 3 is 2+3=5 -> false.
	if !m.P[0][0] || !m.P[0][1] || !m.P[0][2] || m.P[0][3] {
		t.Errorf("whilelt lanes = %v, want [t t t f]", m.P[0])
	}
	if m.V[0][0] != 1 || m.V[0][2] != 3 || m.V[0][3] != 0 {
		t.Errorf("zeroing load lanes = %v", m.V[0])
	}
	// Stored lanes 0..2 only; lane 3 untouched (-1).
	for i, want := range []float32{1, 2, 3, -1} {
		if got := a.Float32(dst + int64(i)*4); got != want {
			t.Errorf("dst[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestMachineSVEBoundsChecked: predicated accesses respect the arena and
// alignment per active element.
func TestMachineSVEBoundsChecked(t *testing.T) {
	a := NewArena(8)
	p := asm.NewProgram("oob")
	p.PTrue(asm.P(0))
	p.MovI(asm.X(0), 1<<24)
	p.Ld1W(asm.V(0), asm.P(0), asm.X(0), 0)
	p.Ret()
	m := NewMachine(a, 4)
	if err := m.Run(p, 100); err == nil {
		t.Error("out-of-bounds predicated load accepted")
	}
	p2 := asm.NewProgram("oob2")
	p2.PTrue(asm.P(0))
	p2.MovI(asm.X(0), 1<<24)
	p2.St1W(asm.V(0), asm.P(0), asm.X(0), 0)
	p2.Ret()
	if err := m.Run(p2, 100); err == nil {
		t.Error("out-of-bounds predicated store accepted")
	}
}

// TestSetArgAndLatencyDefaults covers the argument helper and the
// no-cache latency fall-through paths of the timing model.
func TestSetArgAndLatencyDefaults(t *testing.T) {
	a := NewArena(64)
	addr := a.Alloc(8)
	m := NewMachine(a, 4)
	m.SetArg(0, addr)
	if m.X[0] != addr {
		t.Error("SetArg did not write the register")
	}
	p := asm.NewProgram("lat")
	p.LdrQ(asm.V(0), asm.X(0), 0)
	p.StrQ(asm.V(0), asm.X(0), 16)
	p.Prfm(asm.X(0), 0)
	p.Ret()
	model := NewModel(hw.Didactic())
	model.Caches = nil // exercise the fixed-latency branches
	res, err := model.RunAndTime(p, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no cycles")
	}
	if u := res.LoadUtilization(model.Chip); u <= 0 {
		t.Error("prefetch+load should register load-port use")
	}
}
