package compile_test

import (
	"math"
	"testing"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
	"autogemm/internal/sim"
	"autogemm/internal/sim/compile"
)

// FuzzCompileDiff feeds random short programs through Compile and, for
// every program the analyzer proves, cross-checks the compiled backend
// against the checked interpreter. The invariant under test is the
// bounds-elision contract itself: if Compile succeeds and Precheck
// accepts the operands, the unchecked compiled run must neither fault
// nor diverge from the interpreter — on state (C panel, scalar and
// vector registers) bit for bit.
func FuzzCompileDiff(f *testing.F) {
	// Seeds: a plain accumulate loop, scalar shuffling, and raw bytes
	// that decode into memory ops with varying offsets.
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{8, 200, 9, 14, 8, 23, 10, 42, 11, 7, 12, 99})
	f.Add([]byte{13, 1, 2, 3, 13, 13, 13, 5, 6, 0, 0, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := buildFuzzProgram(data)
		bounds := fuzzBounds()
		cp, err := compile.Compile(p, compile.Options{Lanes: bounds.Lanes, Bounds: bounds})
		if err != nil {
			return // unproven or invalid: the interpreter path owns it
		}

		lanes := bounds.Lanes
		lda := int64(bounds.KC + bounds.AOverVectors*lanes)
		ldb := int64(bounds.NR)
		ldc := int64(bounds.NR)
		lenA := int(int64(bounds.MR-1)*lda) + bounds.KC + bounds.AOverVectors*lanes
		lenB := int(int64(bounds.KC+bounds.BOverRows-1)*ldb) + bounds.NR
		lenC := int(int64(bounds.MR-1)*ldc) + bounds.NR
		a := make([]float32, lenA)
		b := make([]float32, lenB)
		c := make([]float32, lenC)
		for i := range a {
			a[i] = float32(i%17)*0.5 - 3
		}
		for i := range b {
			b[i] = float32(i%11)*0.25 - 1
		}
		for i := range c {
			c[i] = float32(i % 7)
		}

		got := append([]float32(nil), c...)
		e := compile.NewEnv(lanes)
		if err := cp.Run(e, a, b, got, 0, 0, 0, lda, ldb, ldc, 1<<20); err != nil {
			// Precheck rejection is fine; a runtime fault is the elision
			// proof failing and must never happen.
			t.Fatalf("compiled run failed on prechecked operands: %v", err)
		}

		ar := sim.NewArena(lenA + lenB + lenC + 64)
		aAddr := ar.Alloc(lenA)
		bAddr := ar.Alloc(lenB)
		cAddr := ar.Alloc(lenC)
		ar.Freeze()
		copy(ar.Slice(aAddr, lenA), a)
		copy(ar.Slice(bAddr, lenB), b)
		copy(ar.Slice(cAddr, lenC), c)
		m := sim.NewMachine(ar, lanes)
		m.SetArg(0, aAddr)
		m.SetArg(1, bAddr)
		m.SetArg(2, cAddr)
		m.SetArg(3, lda)
		m.SetArg(4, ldb)
		m.SetArg(5, ldc)
		if err := m.Run(p, 1<<24); err != nil {
			t.Fatalf("interpreter rejected a program the compiler proved: %v", err)
		}
		want := ar.Slice(cAddr, lenC)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("C[%d]: compiled %g != interpreted %g", i, got[i], want[i])
			}
		}
	})
}

// fuzzBounds is the fixed panel model fuzz programs are checked
// against: a tiny 2×4 tile over 3 k-steps.
func fuzzBounds() analysis.Bounds {
	return analysis.Bounds{MR: 2, NR: 4, KC: 3, Lanes: 4, AOverVectors: 1, BOverRows: 2}
}

// buildFuzzProgram decodes bytes into a short straight-line program
// over a conservative vocabulary: scalar arithmetic on x6..x12, vector
// ops on v0..v7, and A/B loads plus C load/store with small immediate
// offsets derived from the input. Every program ends with Ret, so all
// inputs terminate; whether the analyzer can prove one is up to the
// byte stream.
func buildFuzzProgram(data []byte) *asm.Program {
	p := asm.NewProgram("fuzz")
	x := func(b byte) asm.Reg { return asm.X(6 + int(b)%7) }
	v := func(b byte) asm.Reg { return asm.V(int(b) % 8) }
	next := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	// Base registers stay the ABI argument registers so addresses remain
	// affine in the analyzer's symbols.
	p.Lsl(asm.X(0), asm.X(0), 2)
	p.Lsl(asm.X(1), asm.X(1), 2)
	p.Lsl(asm.X(2), asm.X(2), 2)
	p.VZero(asm.V(0)).VZero(asm.V(1)).VZero(asm.V(2)).VZero(asm.V(3))
	p.VZero(asm.V(4)).VZero(asm.V(5)).VZero(asm.V(6)).VZero(asm.V(7))
	n := len(data)
	if n > 48 {
		n = 48
	}
	for i := 0; i < n; i += 2 {
		op, arg := next(i), next(i+1)
		switch op % 14 {
		case 0:
			p.MovI(x(arg), int64(arg%32)*4)
		case 1:
			p.AddI(x(arg), x(arg>>3), int64(arg%8)*4)
		case 2:
			p.SubI(x(arg), x(arg), int64(arg%4)*4)
		case 3:
			p.Mov(x(arg), x(arg>>3))
		case 4:
			p.Add(x(arg), x(arg>>3), x(arg>>5))
		case 5:
			p.LdrQ(v(arg), asm.X(0), int64(arg%2)*16) // A row 0
		case 6:
			p.LdrQ(v(arg), asm.X(1), int64(arg%4)*16) // B rows
		case 7:
			p.LdrQ(v(arg), asm.X(2), 0) // C row 0
		case 8:
			p.Fmla(v(arg), v(arg>>3), v(arg>>5), int(arg)%4)
		case 9:
			p.VZero(v(arg))
		case 10:
			p.StrQ(v(arg), asm.X(2), 0) // C row 0
		case 11:
			p.Prfm(asm.X(1), int64(arg%4)*16)
		case 12:
			p.Subs(x(arg), x(arg), int64(arg%4))
		case 13:
			// A second-row access through an affine base copy.
			p.Add(asm.X(13), asm.X(0), asm.X(3))
			p.Lsl(asm.X(13), asm.X(3), 2)
			p.Add(asm.X(13), asm.X(0), asm.X(13))
			p.LdrQ(v(arg), asm.X(13), 0)
		}
	}
	p.Ret()
	return p
}
