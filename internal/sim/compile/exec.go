package compile

import "unsafe"

// Micro-ops: the pre-decoded straight-line form basic-block closures
// execute. Operand fields are flat indices into the Env register files
// (vector and predicate indices are pre-multiplied by σ_lane), memory
// kinds carry their proven operand bank, and the 4-lane NEON cases are
// specialized so the hot path is straight stores with no inner loop.
//
// The executor addresses the register files and operand banks through
// raw pointers (unsafe.Add) rather than checked slice indexing. That is
// not an optimization taken on faith — it is the point of the package:
//   - register-file offsets are validated once at translate time
//     (validOperands) against the architectural register classes;
//   - bank offsets are covered by the analyzer's affine bounds proof
//     (Compile refuses anything unproven) combined with Run's Precheck
//     of the concrete panel extents, and the mod-4 alignment proof.
//
// The interpreter (sim.Machine) remains the checked reference; the
// differential suite and fuzz target hold the two bit-identical.
const (
	uMov = uint8(iota)
	uMovI
	uLsl
	uAdd
	uAddI
	uSubI
	uSubs
	uCmpI // SUBS with XZR destination: flags only
	uLdrQ4
	uLdrQPost4
	uLdrQN
	uLdrQPostN
	uStrQ4
	uStrQPost4
	uStrQN
	uStrQPostN
	uFmla4
	uFmlaN
	uVZero4
	uVZeroN
	uWhilelt
	uPTrue
	uLd1W
	uSt1W
	uFmlaRun4 // [a,b) of the block's fmla table, 4-lane specialization
	uFmlaRunN
)

type uop struct {
	kind  uint8
	bank  uint8
	d     int32 // destination byte offset (register files) or index
	a     int32 // first source offset/index
	b     int32 // second source offset/index
	lanes int32
	imm   int64
}

// fmla is one entry of a fused FMLA run: byte offsets into the vector
// file of the accumulator (d), full-vector multiplicand (a) and
// by-element scalar (b).
type fmla struct {
	d, a, b int32
}

// fuseFmla rewrites runs of ≥2 consecutive FMLA micro-ops into a single
// run micro-op over a side table. The generated kernels issue their
// MR·NR/σ FMLAs per k-step back to back, so this removes the dominant
// share of dispatch switches from the steady-state loop.
func fuseFmla(body []uop) ([]uop, []fmla) {
	var out []uop
	var fm []fmla
	for i := 0; i < len(body); i++ {
		u := body[i]
		if u.kind != uFmla4 && u.kind != uFmlaN {
			out = append(out, u)
			continue
		}
		j := i
		for j < len(body) && body[j].kind == u.kind {
			j++
		}
		if j-i < 2 {
			out = append(out, u)
			continue
		}
		start := int32(len(fm))
		for _, v := range body[i:j] {
			fm = append(fm, fmla{d: v.d * 4, a: v.a * 4, b: v.b * 4})
		}
		run := uop{a: start, b: int32(len(fm)), lanes: u.lanes}
		if u.kind == uFmla4 {
			run.kind = uFmlaRun4
		} else {
			run.kind = uFmlaRunN
		}
		out = append(out, run)
		i = j - 1
	}
	return out, fm
}

func f32(p unsafe.Pointer, off int64) *float32 {
	return (*float32)(unsafe.Add(p, off))
}

func vec4(p unsafe.Pointer, off int64) *[4]float32 {
	return (*[4]float32)(unsafe.Add(p, off))
}

// execUops interprets one basic block's micro-ops. No per-access bounds
// checks — see the package contract at the top of this file.
func execUops(e *Env, uops []uop, fm []fmla) {
	vp := e.vp
	for i := range uops {
		u := &uops[i]
		switch u.kind {
		case uFmlaRun4:
			// Consecutive entries usually share the full-vector
			// multiplicand (one B vector against MR accumulator rows),
			// so it is reloaded only when it changes.
			lastA := int32(-1)
			var av [4]float32
			for j := u.a; j < u.b; j++ {
				f := &fm[j]
				if f.a != lastA {
					av = *vec4(vp, int64(f.a))
					lastA = f.a
				}
				s := *f32(vp, int64(f.b))
				d := vec4(vp, int64(f.d))
				d[0] += av[0] * s
				d[1] += av[1] * s
				d[2] += av[2] * s
				d[3] += av[3] * s
			}
		case uLdrQ4:
			ad := e.x[u.a] + u.imm
			*vec4(vp, int64(u.d)*4) = *vec4(e.bank[u.bank], ad)
		case uLdrQPost4:
			ad := e.x[u.a]
			e.x[u.a] = ad + u.imm
			*vec4(vp, int64(u.d)*4) = *vec4(e.bank[u.bank], ad)
		case uStrQ4:
			ad := e.x[u.a] + u.imm
			*vec4(e.bank[u.bank], ad) = *vec4(vp, int64(u.d)*4)
		case uStrQPost4:
			ad := e.x[u.a]
			e.x[u.a] = ad + u.imm
			*vec4(e.bank[u.bank], ad) = *vec4(vp, int64(u.d)*4)
		case uFmla4:
			s := *f32(vp, int64(u.b)*4)
			d := vec4(vp, int64(u.d)*4)
			a := vec4(vp, int64(u.a)*4)
			d[0] += a[0] * s
			d[1] += a[1] * s
			d[2] += a[2] * s
			d[3] += a[3] * s
		case uVZero4:
			*vec4(vp, int64(u.d)*4) = [4]float32{}
		case uMov:
			e.x[u.d] = e.x[u.a]
		case uMovI:
			e.x[u.d] = u.imm
		case uLsl:
			e.x[u.d] = e.x[u.a] << uint64(u.imm)
		case uAdd:
			e.x[u.d] = e.x[u.a] + e.x[u.b]
		case uAddI:
			e.x[u.d] = e.x[u.a] + u.imm
		case uSubI:
			e.x[u.d] = e.x[u.a] - u.imm
		case uSubs:
			v := e.x[u.a] - u.imm
			e.x[u.d] = v
			e.z = v == 0
		case uCmpI:
			e.z = e.x[u.a]-u.imm == 0
		case uFmlaRunN:
			ln := int64(u.lanes)
			for j := u.a; j < u.b; j++ {
				f := &fm[j]
				s := *f32(vp, int64(f.b))
				for l := int64(0); l < ln; l++ {
					*f32(vp, int64(f.d)+l*4) += *f32(vp, int64(f.a)+l*4) * s
				}
			}
		case uFmlaN:
			s := *f32(vp, int64(u.b)*4)
			d, a, ln := int64(u.d)*4, int64(u.a)*4, int64(u.lanes)
			for l := int64(0); l < ln; l++ {
				*f32(vp, d+l*4) += *f32(vp, a+l*4) * s
			}
		case uLdrQN:
			ad := e.x[u.a] + u.imm
			ln := int(u.lanes)
			copy(e.v[u.d:int(u.d)+ln], unsafe.Slice(f32(e.bank[u.bank], ad), ln))
		case uLdrQPostN:
			ad := e.x[u.a]
			e.x[u.a] = ad + u.imm
			ln := int(u.lanes)
			copy(e.v[u.d:int(u.d)+ln], unsafe.Slice(f32(e.bank[u.bank], ad), ln))
		case uStrQN:
			ad := e.x[u.a] + u.imm
			ln := int(u.lanes)
			copy(unsafe.Slice(f32(e.bank[u.bank], ad), ln), e.v[u.d:int(u.d)+ln])
		case uStrQPostN:
			ad := e.x[u.a]
			e.x[u.a] = ad + u.imm
			ln := int(u.lanes)
			copy(unsafe.Slice(f32(e.bank[u.bank], ad), ln), e.v[u.d:int(u.d)+ln])
		case uVZeroN:
			d, ln := int(u.d), int(u.lanes)
			for l := 0; l < ln; l++ {
				e.v[d+l] = 0
			}
		case uWhilelt:
			idx, limit := e.x[u.a], e.x[u.b]
			d, ln := int(u.d), int(u.lanes)
			for l := 0; l < ln; l++ {
				e.p[d+l] = idx+int64(l) < limit
			}
		case uPTrue:
			d, ln := int(u.d), int(u.lanes)
			for l := 0; l < ln; l++ {
				e.p[d+l] = true
			}
		case uLd1W:
			ad := e.x[u.a] + u.imm
			d, p0, ln := int(u.d), int(u.b), int(u.lanes)
			for l := 0; l < ln; l++ {
				if e.p[p0+l] {
					e.v[d+l] = *f32(e.bank[u.bank], ad+int64(l)*4)
				} else {
					e.v[d+l] = 0 // SVE zeroing load
				}
			}
		case uSt1W:
			ad := e.x[u.a] + u.imm
			d, p0, ln := int(u.d), int(u.b), int(u.lanes)
			for l := 0; l < ln; l++ {
				if e.p[p0+l] {
					*f32(e.bank[u.bank], ad+int64(l)*4) = e.v[d+l]
				}
			}
		}
	}
}
