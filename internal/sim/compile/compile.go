package compile

import (
	"fmt"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
)

// Options configures Compile. Bounds is mandatory — without a panel
// description there is no elision proof and therefore nothing to compile.
type Options struct {
	// Lanes is σ_lane; must match Bounds.Lanes.
	Lanes int
	// Bounds describes the operand panels under the standard argument
	// convention, exactly as passed to the analyzer.
	Bounds analysis.Bounds
	// Rotation and VectorBudget are forwarded to the analyzer unchanged.
	Rotation     *analysis.RotationHint
	VectorBudget int
}

// Compile lowers a program to closure-threaded form: one closure per
// fused basic block, each executing a pre-decoded micro-op array with
// flat register-file indices and no per-access bounds checks. Fusing at
// block granularity rather than per instruction matters: a per-instr
// closure pays a mispredicted indirect call per instruction, which eats
// most of the win over the interpreter's switch.
//
// Compile runs the full analyzer and refuses (ErrUnproven) unless the
// report is clean AND the bounds pass was complete: every executable
// access affine-resolved, panel-classified, in-bounds for every
// iteration. A separate mod-4 residue pass proves 4-byte alignment of
// every address, which the symbolic pass does not track. Anything short
// of the full proof is not an error to paper over — the caller keeps
// using the interpreter.
func Compile(p *asm.Program, opts Options) (*Program, error) {
	if opts.Lanes < 1 || opts.Lanes > MaxLanes {
		return nil, fmt.Errorf("compile: %s: lanes %d out of range 1..%d", p.Name, opts.Lanes, MaxLanes)
	}
	if opts.Bounds.Lanes != opts.Lanes {
		return nil, fmt.Errorf("compile: %s: Options.Lanes %d != Bounds.Lanes %d", p.Name, opts.Lanes, opts.Bounds.Lanes)
	}
	bounds := opts.Bounds
	rep, err := analysis.Analyze(p, analysis.Options{
		Bounds:       &bounds,
		Rotation:     opts.Rotation,
		VectorBudget: opts.VectorBudget,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnproven, p.Name, err)
	}
	if err := rep.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnproven, err)
	}
	if !rep.BoundsComplete {
		return nil, fmt.Errorf("%w: %s: bounds pass incomplete (some access not affine-resolved)", ErrUnproven, p.Name)
	}
	if err := checkAlignment(p); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnproven, p.Name, err)
	}
	return translate(p, opts.Lanes, bounds, rep.AccessBanks)
}

// translate decodes the program into micro-ops, partitions them at
// branch boundaries into basic blocks, and emits one closure per block
// with pre-resolved successor indices.
func translate(p *asm.Program, lanes int, bounds analysis.Bounds, banks []int8) (*Program, error) {
	n := len(p.Instrs)

	// Kept instructions: everything that executes. Labels, nops and
	// prefetch hints are compacted away.
	type decoded struct {
		orig int
		in   *asm.Instr
	}
	var kept []decoded
	keptAt := make([]int, n+1) // orig index -> kept index of first kept instr at orig ≥ i
	for i := range p.Instrs {
		switch p.Instrs[i].Op {
		case asm.OpLabel, asm.OpNop, asm.OpPrfm:
		default:
			kept = append(kept, decoded{orig: i, in: &p.Instrs[i]})
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("compile: %s: empty program", p.Name)
	}
	keptAt[n] = len(kept)
	k := len(kept) - 1
	for i := n - 1; i >= 0; i-- {
		keptAt[i] = keptAt[i+1]
		if k >= 0 && kept[k].orig == i {
			keptAt[i] = k
			k--
		}
	}

	// Block leaders: entry, branch targets, and branch successors.
	leader := make([]bool, len(kept))
	leader[0] = true
	for ki, d := range kept {
		switch d.in.Op {
		case asm.OpB, asm.OpBne:
			t, ok := p.LabelIndex(d.in.Label)
			if !ok {
				return nil, fmt.Errorf("compile: %s: undefined label %q", p.Name, d.in.Label)
			}
			if keptAt[t] >= len(kept) {
				return nil, fmt.Errorf("compile: %s: label %q has no executable successor", p.Name, d.in.Label)
			}
			leader[keptAt[t]] = true
			if ki+1 < len(kept) {
				leader[ki+1] = true
			}
		case asm.OpRet:
			if ki+1 < len(kept) {
				leader[ki+1] = true
			}
		}
	}
	blockOf := make([]int, len(kept))
	nblocks := 0
	for ki := range kept {
		if leader[ki] {
			nblocks++
		}
		blockOf[ki] = nblocks - 1
	}

	cp := &Program{Name: p.Name, Lanes: lanes, Bounds: bounds, ops: make([]op, 0, nblocks)}
	var uops []uop
	flush := func(term *decoded, fallBlock int) error {
		body, fm := fuseFmla(append([]uop(nil), uops...))
		uops = uops[:0]
		if term == nil { // fallthrough into the next block
			return appendBlock(cp, body, fm, termFall, fallBlock, 0)
		}
		switch term.in.Op {
		case asm.OpRet:
			return appendBlock(cp, body, fm, termRet, 0, 0)
		case asm.OpB, asm.OpBne:
			t, _ := p.LabelIndex(term.in.Label)
			taken := blockOf[keptAt[t]]
			kind := uint8(termB)
			if term.in.Op == asm.OpBne {
				kind = termBne
			}
			return appendBlock(cp, body, fm, kind, fallBlock, taken)
		}
		return fmt.Errorf("compile: %s: bad terminator %s", p.Name, term.in.Op)
	}

	for ki := 0; ki < len(kept); ki++ {
		d := kept[ki]
		switch d.in.Op {
		case asm.OpB, asm.OpBne, asm.OpRet:
			if err := flush(&d, blockOf[ki]+1); err != nil {
				return nil, err
			}
			continue
		}
		u, emitted, err := buildUop(p, d.in, lanes, banks[d.orig], d.orig)
		if err != nil {
			return nil, err
		}
		if emitted {
			uops = append(uops, u)
		}
		if ki+1 < len(kept) && leader[ki+1] {
			if err := flush(nil, blockOf[ki+1]); err != nil {
				return nil, err
			}
		}
	}
	if len(uops) > 0 {
		return nil, fmt.Errorf("compile: %s: fell off the end without ret", p.Name)
	}
	return cp, nil
}

// Block terminator kinds.
const (
	termFall = uint8(iota)
	termB
	termBne
	termRet
)

// appendBlock emits the closure for one basic block. The closure runs
// the block's micro-ops through the shared executor, then resolves the
// successor; loop fuel is charged on taken branches only.
func appendBlock(cp *Program, body []uop, fm []fmla, term uint8, next, taken int) error {
	switch term {
	case termFall:
		nx := next
		cp.ops = append(cp.ops, func(e *Env) int {
			execUops(e, body, fm)
			return nx
		})
	case termRet:
		cp.ops = append(cp.ops, func(e *Env) int {
			execUops(e, body, fm)
			return haltRet
		})
	case termB:
		tgt := taken
		cp.ops = append(cp.ops, func(e *Env) int {
			execUops(e, body, fm)
			e.fuel--
			if e.fuel < 0 {
				return haltFuel
			}
			return tgt
		})
	case termBne:
		nx, tgt := next, taken
		cp.ops = append(cp.ops, func(e *Env) int {
			execUops(e, body, fm)
			if e.z {
				return nx
			}
			e.fuel--
			if e.fuel < 0 {
				return haltFuel
			}
			return tgt
		})
	default:
		return fmt.Errorf("compile: %s: unknown terminator %d", cp.Name, term)
	}
	return nil
}

// predIdx returns the predicate register number of r.
func predIdx(r asm.Reg) int { return int(r) - asm.NumScalarRegs - asm.NumVectorRegs }

// validOperands rejects operand classes the decoder cannot represent.
// The executor addresses the register files through raw pointers, so
// every register number must be proven in range here, at translate time
// — a NoReg or misclassified operand must never reach a flat offset.
func validOperands(p *asm.Program, in *asm.Instr, lanes, idx int) error {
	bad := func(what string, r asm.Reg) error {
		return fmt.Errorf("compile: %s: instr %d (%s): %s operand %s", p.Name, idx, in.Op, what, r)
	}
	scalar := func(r asm.Reg) error {
		if !r.IsScalar() {
			return bad("non-scalar", r)
		}
		return nil
	}
	vector := func(r asm.Reg) error {
		if !r.IsVector() {
			return bad("non-vector", r)
		}
		return nil
	}
	pred := func(r asm.Reg) error {
		if !r.IsPred() {
			return bad("non-predicate", r)
		}
		return nil
	}
	base := func(r asm.Reg) error {
		if !r.IsScalar() || r == asm.XZR {
			return bad("unaddressable base", r)
		}
		return nil
	}
	switch in.Op {
	case asm.OpMovI:
		return scalar(in.Dst)
	case asm.OpMov, asm.OpLsl, asm.OpAddI, asm.OpSubI, asm.OpSubs:
		if err := scalar(in.Dst); err != nil {
			return err
		}
		return scalar(in.Src1)
	case asm.OpAdd:
		if err := scalar(in.Dst); err != nil {
			return err
		}
		if err := scalar(in.Src1); err != nil {
			return err
		}
		return scalar(in.Src2)
	case asm.OpLdrQ, asm.OpLdrQPost, asm.OpStrQ, asm.OpStrQPost:
		if err := vector(in.Dst); err != nil {
			return err
		}
		return base(in.Src1)
	case asm.OpFmla:
		if err := vector(in.Dst); err != nil {
			return err
		}
		if err := vector(in.Src1); err != nil {
			return err
		}
		if err := vector(in.Src2); err != nil {
			return err
		}
		if int(in.Lane) >= lanes {
			return fmt.Errorf("compile: %s: instr %d: FMLA lane %d ≥ σ_lane %d", p.Name, idx, in.Lane, lanes)
		}
		return nil
	case asm.OpVZero:
		return vector(in.Dst)
	case asm.OpWhilelt:
		if err := pred(in.Dst); err != nil {
			return err
		}
		if err := scalar(in.Src1); err != nil {
			return err
		}
		return scalar(in.Src2)
	case asm.OpPTrue:
		return pred(in.Dst)
	case asm.OpLd1W, asm.OpSt1W:
		if err := vector(in.Dst); err != nil {
			return err
		}
		if err := base(in.Src1); err != nil {
			return err
		}
		return pred(in.Src2)
	}
	return nil
}

// buildUop decodes one non-terminator instruction. emitted is false for
// instructions with no architectural effect (writes to XZR).
func buildUop(p *asm.Program, in *asm.Instr, lanes int, bank int8, idx int) (uop, bool, error) {
	u := uop{imm: in.Imm, lanes: int32(lanes)}
	if err := validOperands(p, in, lanes, idx); err != nil {
		return u, false, err
	}
	discard := in.Dst == asm.XZR
	switch in.Op {
	case asm.OpMov:
		if discard {
			return u, false, nil
		}
		u.kind, u.d, u.a = uMov, int32(in.Dst.Index()), int32(in.Src1.Index())
	case asm.OpMovI:
		if discard {
			return u, false, nil
		}
		u.kind, u.d = uMovI, int32(in.Dst.Index())
	case asm.OpLsl:
		if discard {
			return u, false, nil
		}
		u.kind, u.d, u.a = uLsl, int32(in.Dst.Index()), int32(in.Src1.Index())
	case asm.OpAdd:
		if discard {
			return u, false, nil
		}
		u.kind, u.d, u.a, u.b = uAdd, int32(in.Dst.Index()), int32(in.Src1.Index()), int32(in.Src2.Index())
	case asm.OpAddI:
		if discard {
			return u, false, nil
		}
		u.kind, u.d, u.a = uAddI, int32(in.Dst.Index()), int32(in.Src1.Index())
	case asm.OpSubI:
		if discard {
			return u, false, nil
		}
		u.kind, u.d, u.a = uSubI, int32(in.Dst.Index()), int32(in.Src1.Index())
	case asm.OpSubs:
		if discard { // CMP form: flags only
			u.kind, u.a = uCmpI, int32(in.Src1.Index())
		} else {
			u.kind, u.d, u.a = uSubs, int32(in.Dst.Index()), int32(in.Src1.Index())
		}
	case asm.OpLdrQ, asm.OpLdrQPost:
		bk, err := bankOf(p, in, bank, idx)
		if err != nil {
			return u, false, err
		}
		u.bank = uint8(bk)
		u.d = int32(in.Dst.Index() * lanes)
		u.a = int32(in.Src1.Index())
		if in.Src1 == asm.XZR {
			return u, false, fmt.Errorf("compile: %s: instr %d: XZR base", p.Name, idx)
		}
		post := in.Op == asm.OpLdrQPost
		switch {
		case lanes == 4 && post:
			u.kind = uLdrQPost4
		case lanes == 4:
			u.kind = uLdrQ4
		case post:
			u.kind = uLdrQPostN
		default:
			u.kind = uLdrQN
		}
	case asm.OpStrQ, asm.OpStrQPost:
		bk, err := bankOf(p, in, bank, idx)
		if err != nil {
			return u, false, err
		}
		u.bank = uint8(bk)
		u.d = int32(in.Dst.Index() * lanes)
		u.a = int32(in.Src1.Index())
		if in.Src1 == asm.XZR {
			return u, false, fmt.Errorf("compile: %s: instr %d: XZR base", p.Name, idx)
		}
		post := in.Op == asm.OpStrQPost
		switch {
		case lanes == 4 && post:
			u.kind = uStrQPost4
		case lanes == 4:
			u.kind = uStrQ4
		case post:
			u.kind = uStrQPostN
		default:
			u.kind = uStrQN
		}
	case asm.OpFmla:
		u.d = int32(in.Dst.Index() * lanes)
		u.a = int32(in.Src1.Index() * lanes)
		u.b = int32(in.Src2.Index()*lanes + int(in.Lane))
		if lanes == 4 {
			u.kind = uFmla4
		} else {
			u.kind = uFmlaN
		}
	case asm.OpVZero:
		u.d = int32(in.Dst.Index() * lanes)
		if lanes == 4 {
			u.kind = uVZero4
		} else {
			u.kind = uVZeroN
		}
	case asm.OpWhilelt:
		u.kind = uWhilelt
		u.d = int32(predIdx(in.Dst) * lanes)
		u.a = int32(in.Src1.Index())
		u.b = int32(in.Src2.Index())
	case asm.OpPTrue:
		u.kind = uPTrue
		u.d = int32(predIdx(in.Dst) * lanes)
	case asm.OpLd1W, asm.OpSt1W:
		bk, err := bankOf(p, in, bank, idx)
		if err != nil {
			return u, false, err
		}
		u.bank = uint8(bk)
		u.d = int32(in.Dst.Index() * lanes)
		u.a = int32(in.Src1.Index())
		u.b = int32(predIdx(in.Src2) * lanes)
		if in.Op == asm.OpLd1W {
			u.kind = uLd1W
		} else {
			u.kind = uSt1W
		}
	default:
		return u, false, fmt.Errorf("compile: %s: instr %d: unsupported op %s", p.Name, idx, in.Op)
	}
	return u, true, nil
}

// bankOf validates that the analyzer classified this memory instruction
// to an operand panel. A BankNone memory op means the instruction was
// never reached by the symbolic walk — with BoundsComplete that can only
// be dead code, which the generators don't emit; refuse rather than
// guess.
func bankOf(p *asm.Program, in *asm.Instr, bank int8, idx int) (int, error) {
	if bank < 0 || bank > 2 {
		return 0, fmt.Errorf("compile: %s: instr %d (%s): memory access not panel-classified", p.Name, idx, in.Op)
	}
	return int(bank), nil
}
