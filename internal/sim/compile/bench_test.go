package compile_test

import (
	"testing"

	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
	"autogemm/internal/sim/compile"
)

// benchSetup builds one representative kernel and its operands.
func benchSetup(b *testing.B) (*mkernel.Cache, mkernel.Config, []float32, []float32, []float32, int64, int64, int64) {
	cfg := mkernel.Config{Tile: mkernel.Tile{MR: 4, NR: 8}, KC: 64, Lanes: 4,
		Rotate: true, SigmaAI: 4.0, LoadC: true}
	bo := cfg.Tile
	lda := int64(cfg.KC + cfg.Lanes)
	ldb := int64(bo.NR)
	ldc := int64(bo.NR)
	lenA := int(int64(bo.MR-1)*lda) + cfg.KC + cfg.Lanes
	lenB := int(int64(cfg.KC+2-1)*ldb) + bo.NR
	lenC := int(int64(bo.MR-1)*ldc) + bo.NR
	a := make([]float32, lenA)
	bp := make([]float32, lenB)
	c := make([]float32, lenC)
	for i := range a {
		a[i] = float32(i%13) * 0.5
	}
	for i := range bp {
		bp[i] = float32(i%7) * 0.25
	}
	return mkernel.NewCache(), cfg, a, bp, c, lda, ldb, ldc
}

func BenchmarkKernelInterpreted(b *testing.B) {
	cache, cfg, a, bp, c, lda, ldb, ldc := benchSetup(b)
	p, err := cache.Kernel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ar := sim.NewArena(len(a) + len(bp) + len(c) + 64)
	aAddr := ar.Alloc(len(a))
	bAddr := ar.Alloc(len(bp))
	cAddr := ar.Alloc(len(c))
	ar.Freeze()
	copy(ar.Slice(aAddr, len(a)), a)
	copy(ar.Slice(bAddr, len(bp)), bp)
	m := sim.NewMachine(ar, cfg.Lanes)
	flops := 2 * int64(cfg.Tile.MR) * int64(cfg.Tile.NR) * int64(cfg.KC)
	b.SetBytes(flops)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetArg(0, aAddr)
		m.SetArg(1, bAddr)
		m.SetArg(2, cAddr)
		m.SetArg(3, lda)
		m.SetArg(4, ldb)
		m.SetArg(5, ldc)
		if err := m.Run(p, 1<<31-1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelCompiled(b *testing.B) {
	cache, cfg, a, bp, c, lda, ldb, ldc := benchSetup(b)
	cp, err := cache.CompiledKernel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	e := compile.NewEnv(cfg.Lanes)
	flops := 2 * int64(cfg.Tile.MR) * int64(cfg.Tile.NR) * int64(cfg.KC)
	b.SetBytes(flops)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cp.Run(e, a, bp, c, 0, 0, 0, lda, ldb, ldc, 1<<30); err != nil {
			b.Fatal(err)
		}
	}
}
