package compile_test

import (
	"math"
	"math/rand"
	"testing"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
	"autogemm/internal/sim/compile"
)

// The differential suite runs kernels through both backends — the
// checked interpreter (sim.Machine) and the closure-threaded compiled
// form — on identical random operands and demands bit-identical C
// panels. It mirrors the cmd/autogemm-lint sweep (sampled per chip/tile)
// so every kernel class the generator emits is covered: plain tiles
// across KC shapes and flags, uniform and mixed bands, fused bands, and
// predicated SVE kernels.

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

// diffRun executes p on both backends and compares the C panel bitwise.
func diffRun(t *testing.T, p *asm.Program, aopts analysis.Options, rng *rand.Rand) {
	t.Helper()
	b := aopts.Bounds
	lanes := b.Lanes
	cp, err := compile.Compile(p, compile.Options{Lanes: lanes, Bounds: *b, Rotation: aopts.Rotation})
	if err != nil {
		t.Fatalf("compile %s: %v", p.Name, err)
	}

	lda := int64(b.KC + b.AOverVectors*lanes + 3)
	ldb := int64(b.NR + 5)
	ldc := int64(b.NR + 2)
	lenA := int(int64(b.MR-1)*lda) + b.KC + b.AOverVectors*lanes
	lenB := int(int64(b.KC+b.BOverRows-1)*ldb) + b.NR
	lenC := int(int64(b.MR-1)*ldc) + b.NR
	a := randSlice(rng, lenA)
	bp := randSlice(rng, lenB)
	c := randSlice(rng, lenC)

	// Interpreter over an arena holding copies of the panels.
	ar := sim.NewArena(lenA + lenB + lenC + 64)
	aAddr := ar.Alloc(lenA)
	bAddr := ar.Alloc(lenB)
	cAddr := ar.Alloc(lenC)
	ar.Freeze()
	copy(ar.Slice(aAddr, lenA), a)
	copy(ar.Slice(bAddr, lenB), bp)
	copy(ar.Slice(cAddr, lenC), c)
	m := sim.NewMachine(ar, lanes)
	m.SetArg(0, aAddr)
	m.SetArg(1, bAddr)
	m.SetArg(2, cAddr)
	m.SetArg(3, lda)
	m.SetArg(4, ldb)
	m.SetArg(5, ldc)
	if err := m.Run(p, 1<<31-1); err != nil {
		t.Fatalf("interpret %s: %v", p.Name, err)
	}
	want := ar.Slice(cAddr, lenC)

	// Compiled, in place over the raw slices.
	got := append([]float32(nil), c...)
	e := compile.NewEnv(lanes)
	if err := cp.Run(e, a, bp, got, 0, 0, 0, lda, ldb, ldc, 1<<30); err != nil {
		t.Fatalf("compiled run %s: %v", p.Name, err)
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: C[%d] differs: compiled %x (%g), interpreted %x (%g)",
				p.Name, i, math.Float32bits(got[i]), got[i], math.Float32bits(want[i]), want[i])
		}
	}
	// A and B are inputs; the compiled backend must not have touched them
	// (the analyzer rejects stores into A/B, but verify the seam anyway).
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(ar.Slice(aAddr, lenA)[i]) {
			t.Fatalf("%s: compiled run mutated A[%d]", p.Name, i)
		}
	}
	for i := range bp {
		if math.Float32bits(bp[i]) != math.Float32bits(ar.Slice(bAddr, lenB)[i]) {
			t.Fatalf("%s: compiled run mutated B[%d]", p.Name, i)
		}
	}
}

// TestDifferentialSweep covers the lint sweep's kernel classes per chip.
func TestDifferentialSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, chip := range hw.All() {
		lanes := chip.Lanes
		kcs := []int{lanes, 2*lanes + 1}
		tiles := mkernel.FeasibleTiles(lanes)
		step := 1
		if testing.Short() {
			step = 5
		}
		for ti := 0; ti < len(tiles); ti += step {
			tile := tiles[ti]
			if !tile.Generatable(lanes) {
				continue
			}
			for _, kc := range kcs {
				for _, rotate := range []bool{false, true} {
					for _, loadC := range []bool{false, true} {
						cfg := mkernel.Config{
							Tile: tile, KC: kc, Lanes: lanes,
							Rotate: rotate, SigmaAI: chip.SigmaAI, LoadC: loadC,
						}
						p, err := mkernel.Generate(cfg)
						if err != nil {
							t.Fatalf("generate %s: %v", cfg.Name(), err)
						}
						aopts, err := cfg.AnalysisOptions()
						if err != nil {
							t.Fatalf("options %s: %v", cfg.Name(), err)
						}
						diffRun(t, p, aopts, rng)
					}
				}
			}
		}

		bands := []mkernel.BandConfig{
			{Segments: []mkernel.Segment{{Tile: mkernel.Tile{MR: 4, NR: 2 * lanes}, Count: 2}},
				KC: 2*lanes + 1, Lanes: lanes, Rotate: true},
			{Segments: []mkernel.Segment{
				{Tile: mkernel.Tile{MR: 4, NR: 2 * lanes}, Count: 1},
				{Tile: mkernel.Tile{MR: 4, NR: lanes}, Count: 1}},
				KC: 2*lanes + 1, Lanes: lanes, Rotate: true},
		}
		for _, bc := range bands {
			for _, fuse := range []bool{false, true} {
				for _, loadC := range []bool{false, true} {
					cfg := bc
					cfg.Fuse, cfg.LoadC, cfg.SigmaAI = fuse, loadC, chip.SigmaAI
					p, err := mkernel.GenerateBand(cfg)
					if err != nil {
						t.Fatalf("generate %s: %v", cfg.Name(), err)
					}
					aopts, err := cfg.AnalysisOptions()
					if err != nil {
						t.Fatalf("options %s: %v", cfg.Name(), err)
					}
					diffRun(t, p, aopts, rng)
				}
			}
		}

		if chip.SVE {
			for _, nr := range []int{lanes - 1, lanes + 3, 3 * lanes} {
				for _, kc := range []int{lanes, lanes + 5} {
					cfg := mkernel.PredConfig{
						Tile: mkernel.Tile{MR: 4, NR: nr}, KC: kc, Lanes: lanes,
						LoadC: true,
					}
					if !cfg.Feasible() {
						continue
					}
					p, err := mkernel.GeneratePredicated(cfg)
					if err != nil {
						t.Fatalf("generate %s: %v", cfg.Name(), err)
					}
					diffRun(t, p, cfg.AnalysisOptions(), rng)
				}
			}
		}
	}
}

// TestCacheCompiled checks the kcache integration: positive memoization
// returns the same compiled program, and the asm and compiled forms stay
// keyed apart.
func TestCacheCompiled(t *testing.T) {
	cache := mkernel.NewCache()
	cfg := mkernel.Config{Tile: mkernel.Tile{MR: 4, NR: 8}, KC: 9, Lanes: 4,
		Rotate: true, SigmaAI: 4.0, LoadC: true}
	cp1, err := cache.CompiledKernel(cfg)
	if err != nil {
		t.Fatalf("CompiledKernel: %v", err)
	}
	cp2, err := cache.CompiledKernel(cfg)
	if err != nil {
		t.Fatalf("CompiledKernel (cached): %v", err)
	}
	if cp1 != cp2 {
		t.Fatalf("compiled program not memoized")
	}
	bc := mkernel.BandConfig{
		Segments: []mkernel.Segment{{Tile: mkernel.Tile{MR: 4, NR: 8}, Count: 2}},
		KC:       9, Lanes: 4, Fuse: true, LoadC: true, SigmaAI: 4.0,
	}
	cb1, err := cache.CompiledBand(bc)
	if err != nil {
		t.Fatalf("CompiledBand: %v", err)
	}
	if cb2, _ := cache.CompiledBand(bc); cb2 != cb1 {
		t.Fatalf("compiled band not memoized")
	}
}
