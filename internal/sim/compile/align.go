package compile

import (
	"fmt"

	"autogemm/internal/asm"
)

// The alignment pass proves every memory address is a multiple of 4,
// which the symbolic bounds pass does not track (it bounds the affine
// coefficients, not their residues). The compiled closures index the
// float32 banks with addr>>2, so a misaligned address would silently
// floor where the interpreter's checkAddr errors out — alignment must be
// a static theorem, not an assumption.
//
// The proof is a forward dataflow over the mod-4 residue of each scalar
// register: residue ∈ {0,1,2,3} or unknown. Arguments x0..x2 are element
// offsets scaled by 4 at Run entry, hence residue 0; the element strides
// x3..x5 are unknown (kernels LSL them by 2 before use, which the
// transfer function turns into residue 0). Merges happen at labels; the
// backward conditional branches the bounds pass already requires make a
// simple iterate-to-fixpoint walk sufficient.

const unkRes = int8(-1)

type resState [asm.NumScalarRegs]int8

func mergeRes(a, b resState) (resState, bool) {
	changed := false
	for i := range a {
		if a[i] != b[i] {
			if a[i] != unkRes {
				a[i] = unkRes
				changed = true
			}
		}
	}
	return a, changed
}

// stepRes applies one instruction's transfer function.
func stepRes(st *resState, in *asm.Instr) {
	rd := func(r asm.Reg) int8 {
		if r == asm.XZR {
			return 0
		}
		if !r.IsScalar() {
			return unkRes
		}
		return st[r.Index()]
	}
	wr := func(r asm.Reg, v int8) {
		if r == asm.XZR || !r.IsScalar() {
			return
		}
		st[r.Index()] = v
	}
	addImm := func(r int8, imm int64) int8 {
		if r == unkRes {
			return unkRes
		}
		return int8(((int64(r)+imm)%4 + 4) % 4)
	}
	switch in.Op {
	case asm.OpMov:
		wr(in.Dst, rd(in.Src1))
	case asm.OpMovI:
		wr(in.Dst, addImm(0, in.Imm))
	case asm.OpLsl:
		r := rd(in.Src1)
		switch {
		case in.Imm >= 2:
			wr(in.Dst, 0)
		case in.Imm == 1 && r != unkRes:
			wr(in.Dst, (r*2)%4)
		case in.Imm == 0:
			wr(in.Dst, r)
		default:
			wr(in.Dst, unkRes)
		}
	case asm.OpAdd:
		a, b := rd(in.Src1), rd(in.Src2)
		if a == unkRes || b == unkRes {
			wr(in.Dst, unkRes)
		} else {
			wr(in.Dst, (a+b)%4)
		}
	case asm.OpAddI:
		wr(in.Dst, addImm(rd(in.Src1), in.Imm))
	case asm.OpSubI, asm.OpSubs:
		wr(in.Dst, addImm(rd(in.Src1), -in.Imm))
	case asm.OpLdrQPost, asm.OpStrQPost:
		wr(in.Src1, addImm(rd(in.Src1), in.Imm))
	case asm.OpLdrQ, asm.OpStrQ, asm.OpLd1W, asm.OpSt1W,
		asm.OpWhilelt, asm.OpPTrue, asm.OpFmla, asm.OpVZero,
		asm.OpPrfm, asm.OpNop, asm.OpLabel, asm.OpB, asm.OpBne, asm.OpRet:
		// No scalar register writes.
	default:
		for _, r := range in.Writes() {
			wr(r, unkRes)
		}
	}
}

// checkAlignment runs the fixpoint and then verifies every access.
func checkAlignment(p *asm.Program) error {
	var entry resState
	for i := range entry {
		entry[i] = unkRes
	}
	entry[0], entry[1], entry[2] = 0, 0, 0 // A, B, C byte offsets: 4·element offset

	labelIn := make(map[int]resState) // label instr index -> merged in-state
	walk := func(verify bool) (bool, error) {
		st := entry
		changed := false
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if in.Op == asm.OpLabel {
				if have, ok := labelIn[i]; ok {
					merged, ch := mergeRes(have, st)
					labelIn[i] = merged
					changed = changed || ch
					st = merged
				} else {
					labelIn[i] = st
					changed = true
				}
			}
			if verify {
				if err := verifyAccess(&st, in, i); err != nil {
					return false, err
				}
			}
			if in.Op == asm.OpBne || in.Op == asm.OpB {
				if t, ok := p.LabelIndex(in.Label); ok {
					if have, ok2 := labelIn[t]; ok2 {
						merged, ch := mergeRes(have, st)
						labelIn[t] = merged
						changed = changed || ch
					} else {
						labelIn[t] = st
						changed = true
					}
				}
			}
			stepRes(&st, in)
		}
		return changed, nil
	}

	for pass := 0; ; pass++ {
		if pass > 8 {
			return fmt.Errorf("alignment fixpoint did not converge")
		}
		changed, _ := walk(false)
		if !changed {
			break
		}
	}
	_, err := walk(true)
	return err
}

// verifyAccess demands a proven residue-0 effective address.
func verifyAccess(st *resState, in *asm.Instr, idx int) error {
	var base asm.Reg
	var off int64
	switch in.Op {
	case asm.OpLdrQ, asm.OpStrQ, asm.OpLd1W, asm.OpSt1W:
		base, off = in.Src1, in.Imm
	case asm.OpLdrQPost, asm.OpStrQPost:
		base, off = in.Src1, 0
	default:
		return nil
	}
	r := st[base.Index()]
	if base == asm.XZR {
		r = 0
	}
	if r == unkRes {
		return fmt.Errorf("instr %d (%s): base %s alignment unknown", idx, in.Op, base)
	}
	if res := ((int64(r)+off)%4 + 4) % 4; res != 0 {
		return fmt.Errorf("instr %d (%s): address residue %d mod 4", idx, in.Op, res)
	}
	return nil
}
