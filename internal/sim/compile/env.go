// Package compile lowers validated asm programs into directly executable
// Go closure-threaded code, replacing sim.Machine.Run's per-instruction
// switch on the GEMM hot path.
//
// The contract with the analyzer (internal/asm/analysis) is what makes
// the lowering more than a dispatch trick: Compile only succeeds when the
// symbolic bounds pass proved every load and store of the program stays
// inside the affine panel model (Report.BoundsComplete), classified each
// access to exactly one operand panel (Report.AccessBanks), and a local
// mod-4 residue pass proved every address 4-byte aligned. Under that
// proof the compiled form validates the panel extents once per invocation
// (Precheck) and executes with no per-access checkAddr at all. Programs
// the analyzer cannot prove stay on the checked interpreter — Compile
// fails with ErrUnproven, it never guesses.
package compile

import (
	"errors"
	"fmt"
	"unsafe"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
)

// MaxLanes bounds σ_lane; 16 covers the 512-bit SVE configuration.
const MaxLanes = 16

// ErrUnproven is wrapped by Compile when the analyzer could not prove the
// program safe for check elision. Callers fall back to the interpreter.
var ErrUnproven = errors.New("compile: bounds not proven")

// ErrBounds is wrapped by Precheck/Run when the concrete panel extents do
// not fit the operand slices. Callers fall back to the interpreter (which
// will either succeed on a laxer layout or report the real fault).
var ErrBounds = errors.New("compile: operands fail panel precheck")

// Dispatch halt codes returned by ops instead of a next pc.
const (
	haltRet  = -1
	haltFuel = -2
)

// op executes one instruction against the environment and returns the
// next compact pc, or a negative halt code.
type op func(e *Env) int

// Env is the mutable execution state: the register files and the three
// operand banks. It is reusable across Run calls — compiled programs are
// self-initializing (the analyzer's use-before-def pass guarantees every
// register is written before it is read), so no reset is needed — and a
// worker typically keeps one Env per goroutine.
//
// The register files are fixed arrays (stride = the program's σ_lane)
// rather than per-register slices so closures index flat storage with
// captured constant offsets.
type Env struct {
	x     [asm.NumScalarRegs]int64
	v     [asm.NumVectorRegs * MaxLanes]float32
	p     [asm.NumPredRegs * MaxLanes]bool
	z     bool
	fuel  int
	lanes int
	banks [3][]float32 // A, B, C operand panels for the current Run

	// Raw base pointers used by the micro-op executor. vp points at v
	// (register indices are validated at translate time); bank holds the
	// operand panel bases for the current Run, covered by the analyzer's
	// bounds proof plus Precheck. banks keeps the slices live for the GC
	// while the executor addresses through bank.
	vp   unsafe.Pointer
	pp   unsafe.Pointer
	bank [3]unsafe.Pointer
}

// NewEnv builds an environment for σ_lane-wide programs.
func NewEnv(lanes int) *Env {
	if lanes < 1 || lanes > MaxLanes {
		panic(fmt.Sprintf("compile: lanes %d out of range 1..%d", lanes, MaxLanes))
	}
	e := &Env{lanes: lanes}
	e.vp = unsafe.Pointer(&e.v[0])
	e.pp = unsafe.Pointer(&e.p[0])
	return e
}

// Lanes returns the vector width the environment was built for.
func (e *Env) Lanes() int { return e.lanes }

// Program is a compiled kernel: one closure per executable instruction
// with pre-resolved branch targets (labels, nops and prefetches are
// compacted away).
type Program struct {
	Name   string
	Lanes  int
	Bounds analysis.Bounds
	ops    []op
}

// Len returns the number of executable (compacted) instructions.
func (cp *Program) Len() int { return len(cp.ops) }

// Precheck validates the once-per-invocation panel extents that replace
// the interpreter's per-access checkAddr. The analyzer proved every
// access has the form  off + row·ld + col  (in elements here) with
// 0 ≤ row and 0 ≤ col bounded by the panel shape plus declared slack, so
// the extreme corner of each panel suffices:
//
//	A:  off_A + (MR-1)·lda + KC + AOverVectors·σ  ≤ len(A)
//	B:  off_B + (KC+BOverRows-1)·ldb + NR         ≤ len(B)
//	C:  off_C + (MR-1)·ldc + NR                   ≤ len(C)
//
// with all offsets and leading dimensions non-negative. Offsets and
// strides are in float32 elements.
func (cp *Program) Precheck(lenA, lenB, lenC int, aOff, bOff, cOff, lda, ldb, ldc int64) error {
	if aOff < 0 || bOff < 0 || cOff < 0 || lda < 0 || ldb < 0 || ldc < 0 {
		return fmt.Errorf("%w: %s: negative offset or leading dimension", ErrBounds, cp.Name)
	}
	b := &cp.Bounds
	if aOff+b.AExtent(lda) > int64(lenA) {
		return fmt.Errorf("%w: %s: A panel [%d + %d rows × lda %d] exceeds %d elements",
			ErrBounds, cp.Name, aOff, b.MR, lda, lenA)
	}
	if bOff+b.BExtent(ldb) > int64(lenB) {
		return fmt.Errorf("%w: %s: B panel [%d + %d rows × ldb %d] exceeds %d elements",
			ErrBounds, cp.Name, bOff, b.KC+b.BOverRows, ldb, lenB)
	}
	if cOff+b.CExtent(ldc) > int64(lenC) {
		return fmt.Errorf("%w: %s: C panel [%d + %d rows × ldc %d] exceeds %d elements",
			ErrBounds, cp.Name, cOff, b.MR, ldc, lenC)
	}
	return nil
}

// Run executes the compiled program over the three operand slices.
// Offsets and leading dimensions are in float32 elements; the kernel's
// own LSL-2 arithmetic sees byte addresses exactly as the interpreter
// does. maxLoopIters bounds taken loop branches — a backstop against
// translator bugs, charged only on taken branches, not per instruction.
//
// The operand slices must not be reallocated for the duration of the
// call; when they alias a sim.Arena, the arena must be frozen first
// (see sim.Arena's growth contract).
func (cp *Program) Run(e *Env, a, b, c []float32, aOff, bOff, cOff, lda, ldb, ldc int64, maxLoopIters int) (err error) {
	if e.lanes != cp.Lanes {
		return fmt.Errorf("compile: %s: env is %d-lane, program is %d-lane", cp.Name, e.lanes, cp.Lanes)
	}
	if err := cp.Precheck(len(a), len(b), len(c), aOff, bOff, cOff, lda, ldb, ldc); err != nil {
		return err
	}
	e.banks[0], e.banks[1], e.banks[2] = a, b, c
	e.bank[0] = unsafe.Pointer(unsafe.SliceData(a))
	e.bank[1] = unsafe.Pointer(unsafe.SliceData(b))
	e.bank[2] = unsafe.Pointer(unsafe.SliceData(c))
	e.x[0], e.x[1], e.x[2] = aOff*4, bOff*4, cOff*4
	e.x[3], e.x[4], e.x[5] = lda, ldb, ldc
	e.fuel = maxLoopIters
	defer func() {
		e.banks = [3][]float32{}
		e.bank = [3]unsafe.Pointer{}
		if r := recover(); r != nil {
			err = fmt.Errorf("compile: %s: runtime fault (elision proof violated?): %v", cp.Name, r)
		}
	}()
	pc := 0
	ops := cp.ops
	for pc >= 0 {
		pc = ops[pc](e)
	}
	if pc == haltFuel {
		return fmt.Errorf("compile: %s: exceeded %d loop iterations", cp.Name, maxLoopIters)
	}
	return nil
}
