package sim

import "testing"

// TestArenaFreeze enforces the growth contract documented on Arena:
// compiled kernels (and the packing loops in internal/core) capture
// slices of the backing array, so every Alloc must happen before the
// arena is frozen, and none after.
func TestArenaFreeze(t *testing.T) {
	a := NewArena(16)
	base := a.Alloc(8)
	a.Freeze()

	s := a.Slice(base, 8)
	s[0] = 42
	if got := a.Float32(base); got != 42 {
		t.Fatalf("slice does not alias arena after freeze: got %v", got)
	}
	if &a.Data()[base/4] != &s[0] {
		t.Fatalf("Data and Slice disagree on backing array")
	}

	defer func() {
		if recover() == nil {
			t.Fatalf("Alloc on frozen arena did not panic")
		}
	}()
	a.Alloc(1)
}

// TestArenaGrowthInvalidatesSlices documents WHY Freeze exists: growth
// reallocates, so a pre-growth slice no longer aliases the arena.
func TestArenaGrowthInvalidatesSlices(t *testing.T) {
	a := NewArena(4)
	base := a.Alloc(4)
	s := a.Slice(base, 4)
	a.Alloc(1024) // forces reallocation
	a.SetFloat32(base, 7)
	if s[0] == 7 {
		t.Fatalf("expected stale slice after growth; arena did not reallocate")
	}
}
