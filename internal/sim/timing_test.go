package sim

import (
	"testing"

	"autogemm/internal/asm"
	"autogemm/internal/hw"
)

// timeProgram runs p functionally and times it on the chip.
func timeProgram(t *testing.T, chip *hw.Chip, build func(a *Arena, p *asm.Program)) TimingResult {
	t.Helper()
	a := NewArena(4096)
	p := asm.NewProgram("t")
	build(a, p)
	p.Ret()
	m := NewMachine(a, chip.Lanes)
	model := NewModel(chip)
	model.AssumeLoadLat = chip.LatLoad
	res, err := model.RunAndTime(p, m, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFMAChainLatency: a dependent FMA chain must cost latency per link,
// an independent set only throughput.
func TestFMAChainLatency(t *testing.T) {
	chip := hw.Didactic() // L_fma = 8, one FMA port
	const n = 10
	dep := timeProgram(t, chip, func(a *Arena, p *asm.Program) {
		p.VZero(asm.V(0)).VZero(asm.V(1))
		for i := 0; i < n; i++ {
			p.Fmla(asm.V(0), asm.V(0), asm.V(1), 0) // serial chain
		}
	})
	indep := timeProgram(t, chip, func(a *Arena, p *asm.Program) {
		for i := 0; i < 12; i++ {
			p.VZero(asm.V(i))
		}
		for i := 0; i < n; i++ {
			p.Fmla(asm.V(i), asm.V(10), asm.V(11), 0) // independent
		}
	})
	if dep.Cycles < int64(n*chip.LatFMA) {
		t.Errorf("dependent chain %d cycles, want >= %d", dep.Cycles, n*chip.LatFMA)
	}
	if indep.Cycles >= dep.Cycles {
		t.Errorf("independent FMAs (%d) not faster than chain (%d)", indep.Cycles, dep.Cycles)
	}
}

// TestPortThroughput: 2 FMA ports must roughly halve the time of
// independent FMA streams versus 1 port.
func TestPortThroughput(t *testing.T) {
	one := hw.Didactic()
	two := hw.Didactic()
	two.FMAPorts = 2
	two.IssueWidth = 8
	const n = 64
	run := func(chip *hw.Chip) int64 {
		return timeProgram(t, chip, func(a *Arena, p *asm.Program) {
			for i := 0; i < 16; i++ {
				p.VZero(asm.V(i))
			}
			for i := 0; i < n; i++ {
				p.Fmla(asm.V(i%16), asm.V(16+i%8), asm.V(24+i%8), 0)
			}
		}).Cycles
	}
	t1, t2 := run(one), run(two)
	if t2 >= t1 {
		t.Errorf("2 ports (%d cycles) not faster than 1 (%d)", t2, t1)
	}
	ratio := float64(t1) / float64(t2)
	if ratio < 1.5 {
		t.Errorf("2-port speedup %.2f, want >= 1.5", ratio)
	}
}

// TestWARHazardModeling: on a no-rename chip, a load overwriting a
// register a pending FMA consumes stalls; with renaming it does not.
func TestWARHazardModeling(t *testing.T) {
	build := func(a *Arena, p *asm.Program) {
		addr := a.Alloc(64)
		p.MovI(asm.X(0), addr)
		p.VZero(asm.V(0)).VZero(asm.V(1)).VZero(asm.V(2))
		for i := 0; i < 8; i++ {
			p.Fmla(asm.V(0), asm.V(1), asm.V(2), 0)
			p.LdrQ(asm.V(1), asm.X(0), 0) // WAR against the FMA above
		}
	}
	noRename := hw.Didactic()
	rename := hw.Didactic()
	rename.RenameWAR = true
	a := timeProgram(t, noRename, build).Cycles
	b := timeProgram(t, rename, build).Cycles
	if b > a {
		t.Errorf("renamed run slower (%d) than unrenamed (%d)", b, a)
	}
}

// TestWindowLimitsOverlap: a tiny OoO window serializes independent work
// that a large window overlaps.
func TestWindowLimitsOverlap(t *testing.T) {
	small := hw.Didactic()
	small.Window = 2
	large := hw.Didactic()
	large.Window = 512
	build := func(a *Arena, p *asm.Program) {
		for i := 0; i < 16; i++ {
			p.VZero(asm.V(i))
		}
		for i := 0; i < 40; i++ {
			p.Fmla(asm.V(i%8), asm.V(8+i%4), asm.V(12+i%4), 0)
		}
	}
	ts := timeProgram(t, small, build).Cycles
	tl := timeProgram(t, large, build).Cycles
	if tl >= ts {
		t.Errorf("large window (%d) not faster than window=2 (%d)", tl, ts)
	}
}

// TestLoadLatencyFromCaches: with the cache hierarchy active, the first
// touch of a line costs more than a rehit.
func TestLoadLatencyFromCaches(t *testing.T) {
	chip := hw.KP920()
	arena := NewArena(4096)
	addr := arena.Alloc(64)
	p := asm.NewProgram("c")
	p.MovI(asm.X(0), addr)
	p.LdrQ(asm.V(0), asm.X(0), 0)
	p.Ret()
	m := NewMachine(arena, chip.Lanes)
	model := NewModel(chip)

	m.Record = true
	if err := m.Run(p, 100); err != nil {
		t.Fatal(err)
	}
	cold, err := model.Simulate(p, m.Trace)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := model.Simulate(p, m.Trace) // same model: caches now warm
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cycles <= warm.Cycles {
		t.Errorf("cold (%d) not slower than warm (%d)", cold.Cycles, warm.Cycles)
	}
	if cold.DRAMLines == 0 {
		t.Error("cold run recorded no DRAM traffic")
	}
	if warm.DRAMLines != 0 {
		t.Error("warm run recorded DRAM traffic")
	}
}

// TestEventsTimeline: events must be causally ordered per instruction.
func TestEventsTimeline(t *testing.T) {
	chip := hw.Didactic()
	a := NewArena(256)
	addr := a.Alloc(16)
	p := asm.NewProgram("ev")
	p.MovI(asm.X(0), addr)
	p.LdrQ(asm.V(0), asm.X(0), 0)
	p.VZero(asm.V(1)).VZero(asm.V(2))
	p.Fmla(asm.V(1), asm.V(0), asm.V(2), 0)
	p.StrQ(asm.V(1), asm.X(0), 0)
	p.Ret()
	m := NewMachine(a, 4)
	model := NewModel(chip)
	model.KeepEvents = true
	model.AssumeLoadLat = 8
	res, err := model.RunAndTime(p, m, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events")
	}
	for _, e := range res.Events {
		if e.Issue < e.Dispatch || e.Complete <= e.Issue {
			t.Errorf("event out of order: %+v", e)
		}
	}
	// The FMA depends on the load: it must issue after load completion.
	var loadDone, fmaIssue int64
	for _, e := range res.Events {
		switch e.Class {
		case asm.ClassLoad:
			loadDone = e.Complete
		case asm.ClassFMA:
			if p.Instrs[e.Index].Op == asm.OpFmla {
				fmaIssue = e.Issue
			}
		}
	}
	if fmaIssue < loadDone {
		t.Errorf("FMA issued at %d before its operand load completed at %d", fmaIssue, loadDone)
	}
}

// TestDeterminism: identical runs give identical cycle counts.
func TestDeterminism(t *testing.T) {
	chip := hw.Graviton2()
	r1 := timeProgram(t, chip, buildMix)
	r2 := timeProgram(t, chip, buildMix)
	if r1.Cycles != r2.Cycles || r1.DynInstrs != r2.DynInstrs {
		t.Errorf("nondeterministic: %+v vs %+v", r1, r2)
	}
}

func buildMix(a *Arena, p *asm.Program) {
	addr := a.Alloc(256)
	p.MovI(asm.X(0), addr)
	p.MovI(asm.X(29), 10)
	p.VZero(asm.V(0)).VZero(asm.V(1)).VZero(asm.V(2))
	p.Label("l")
	p.LdrQPost(asm.V(1), asm.X(0), 16)
	p.Fmla(asm.V(0), asm.V(1), asm.V(2), 0)
	p.Subs(asm.X(29), asm.X(29), 1)
	p.Bne("l")
}

// TestPeakThroughputBound: cycles can never undercut the FMA port bound —
// the invariant the efficiency numbers rest on.
func TestPeakThroughputBound(t *testing.T) {
	for _, chip := range append(hw.All(), hw.Didactic()) {
		const n = 200
		res := timeProgram(t, chip, func(a *Arena, p *asm.Program) {
			for i := 0; i < 24; i++ {
				p.VZero(asm.V(i))
			}
			for i := 0; i < n; i++ {
				p.Fmla(asm.V(i%24), asm.V(24+i%4), asm.V(28+i%4), 0)
			}
		})
		bound := int64(n / chip.FMAPorts)
		if res.Cycles < bound {
			t.Errorf("%s: %d cycles beats FMA port bound %d", chip.Name, res.Cycles, bound)
		}
	}
}

// TestPortUtilization: a pure FMA stream saturates the FMA ports; adding
// loads raises load utilization without touching FMA counts.
func TestPortUtilization(t *testing.T) {
	chip := hw.Graviton2()
	res := timeProgram(t, chip, func(a *Arena, p *asm.Program) {
		for i := 0; i < 24; i++ {
			p.VZero(asm.V(i))
		}
		for i := 0; i < 400; i++ {
			p.Fmla(asm.V(i%24), asm.V(24+i%4), asm.V(28+i%4), 0)
		}
	})
	if u := res.FMAUtilization(chip); u < 0.85 || u > 1.0 {
		t.Errorf("FMA utilization %.2f for a saturating stream", u)
	}
	if res.IssuedByClass[asm.ClassFMA] != 424 {
		t.Errorf("FMA issue count %d", res.IssuedByClass[asm.ClassFMA])
	}
	if u := res.LoadUtilization(chip); u != 0 {
		t.Errorf("load utilization %.2f with no loads", u)
	}
}
