package sim

import (
	"fmt"
	"strings"

	"autogemm/internal/asm"
)

// RenderTimeline draws the pipeline events as an ASCII Gantt chart in
// the style of the paper's Fig 3: one row per dynamic instruction,
// dispatch-to-issue shown as dots, issue-to-complete as the class
// letter (L = load, S = store, F = FMA, A = ALU, P = prefetch).
// maxRows and maxCycles bound the output for long kernels.
func RenderTimeline(p *asm.Program, events []Event, maxRows, maxCycles int) string {
	if maxRows <= 0 {
		maxRows = 64
	}
	if maxCycles <= 0 {
		maxCycles = 120
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline timeline for %s (first %d instructions, %d cycles)\n",
		p.Name, maxRows, maxCycles)
	fmt.Fprintf(&b, "%-28s|%s\n", "instruction", cycleRuler(maxCycles))
	rows := 0
	for _, e := range events {
		if rows >= maxRows {
			fmt.Fprintf(&b, "... %d more instructions ...\n", len(events)-rows)
			break
		}
		if int(e.Dispatch) >= maxCycles {
			continue
		}
		line := make([]byte, maxCycles)
		for i := range line {
			line[i] = ' '
		}
		glyph := classGlyph(e.Class)
		for cyc := e.Dispatch; cyc < e.Issue && int(cyc) < maxCycles; cyc++ {
			line[cyc] = '.'
		}
		for cyc := e.Issue; cyc < e.Complete && int(cyc) < maxCycles; cyc++ {
			line[cyc] = glyph
		}
		mn := instrLabel(p, e.Index)
		fmt.Fprintf(&b, "%-28s|%s\n", mn, string(line))
		rows++
	}
	return b.String()
}

func cycleRuler(n int) string {
	line := make([]byte, n)
	for i := range line {
		switch {
		case i%10 == 0:
			line[i] = '0' + byte((i/10)%10)
		default:
			line[i] = '-'
		}
	}
	return string(line)
}

func classGlyph(c asm.Class) byte {
	switch c {
	case asm.ClassLoad:
		return 'L'
	case asm.ClassStore:
		return 'S'
	case asm.ClassFMA:
		return 'F'
	case asm.ClassPrfm:
		return 'P'
	default:
		return 'A'
	}
}

func instrLabel(p *asm.Program, idx int) string {
	if idx < 0 || idx >= len(p.Instrs) {
		return "?"
	}
	in := &p.Instrs[idx]
	s := in.Op.String()
	switch asm.ClassOf(in.Op) {
	case asm.ClassLoad, asm.ClassFMA:
		s += " " + in.Dst.String()
	case asm.ClassStore:
		s += " " + in.Dst.String()
	}
	if len(s) > 26 {
		s = s[:26]
	}
	return s
}
