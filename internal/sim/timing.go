package sim

import (
	"fmt"

	"autogemm/internal/asm"
	"autogemm/internal/cache"
	"autogemm/internal/hw"
)

// Event is the pipeline timeline for one dynamic instruction, used to
// render the Fig 3 cycle diagrams.
type Event struct {
	Index    int // instruction index in the program
	Dispatch int64
	Issue    int64
	Complete int64
	Class    asm.Class
}

// TimingResult reports the outcome of a timing simulation.
type TimingResult struct {
	Cycles    int64
	Events    []Event // populated only when Model.KeepEvents is set
	DynInstrs int
	DRAMLines uint64 // lines fetched from memory during the run

	// IssuedByClass counts dynamic instructions per execution class;
	// divided by Cycles and port counts this gives port utilization —
	// near-1.0 FMA utilization is what "98% of peak" means physically.
	IssuedByClass map[asm.Class]int
}

// FMAUtilization returns the fraction of FMA-port issue slots used.
func (r TimingResult) FMAUtilization(chip *hw.Chip) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.IssuedByClass[asm.ClassFMA]) / (float64(r.Cycles) * float64(chip.FMAPorts))
}

// LoadUtilization returns the fraction of load-port issue slots used.
func (r TimingResult) LoadUtilization(chip *hw.Chip) float64 {
	if r.Cycles == 0 {
		return 0
	}
	n := r.IssuedByClass[asm.ClassLoad] + r.IssuedByClass[asm.ClassPrfm]
	return float64(n) / (float64(r.Cycles) * float64(chip.LoadPorts))
}

// Model is the scoreboard pipeline simulator. It dispatches the dynamic
// trace in program order at the chip's dispatch width, issues each
// instruction when its operands, a port of its class, and the
// out-of-order window permit, and completes it after its class latency
// (loads: the latency returned by the cache hierarchy for the accessed
// line). Register renaming is modelled by dropping write-after-read and
// write-after-write ordering on chips with RenameWAR set; on the others
// a load that overwrites a register stalls until the last consumer has
// issued — exactly the FMA→LOAD→FMA hazard that rotating register
// allocation (§III-C1) removes.
type Model struct {
	Chip       *hw.Chip
	Caches     *cache.Hierarchy
	KeepEvents bool

	// AssumeLoadLat, when > 0, bypasses the cache hierarchy and charges a
	// fixed latency on every load. The perf-model validation tests use it
	// to reproduce the paper's constant-latency walk-through of Fig 3.
	AssumeLoadLat int
}

// NewModel builds a timing model with a fresh cache hierarchy.
func NewModel(chip *hw.Chip) *Model {
	return &Model{Chip: chip, Caches: cache.NewHierarchy(chip)}
}

type portSet struct {
	free []int64 // next-free cycle per port
}

func newPortSet(n int) *portSet {
	if n < 1 {
		n = 1
	}
	return &portSet{free: make([]int64, n)}
}

// take reserves the earliest-available port at or after t and returns the
// actual issue cycle.
func (ps *portSet) take(t int64) int64 {
	best := 0
	for i := 1; i < len(ps.free); i++ {
		if ps.free[i] < ps.free[best] {
			best = i
		}
	}
	if ps.free[best] > t {
		t = ps.free[best]
	}
	ps.free[best] = t + 1 // fully pipelined: one instruction per port per cycle
	return t
}

// Simulate runs the dynamic trace of program p through the pipeline and
// returns the total cycle count.
func (m *Model) Simulate(p *asm.Program, trace []TraceEntry) (TimingResult, error) {
	chip := m.Chip
	ports := map[asm.Class]*portSet{
		asm.ClassALU:   newPortSet(chip.ALUPorts),
		asm.ClassLoad:  newPortSet(chip.LoadPorts),
		asm.ClassStore: newPortSet(chip.StorePorts),
		asm.ClassFMA:   newPortSet(chip.FMAPorts),
		asm.ClassPrfm:  newPortSet(chip.LoadPorts),
	}
	// Prefetches share the load ports with demand loads.
	ports[asm.ClassPrfm] = ports[asm.ClassLoad]

	const numRegs = asm.NumScalarRegs + asm.NumVectorRegs + asm.NumPredRegs
	var regReady [numRegs]int64 // cycle the value becomes available
	var lastReadIssue [numRegs]int64
	var lastWriteIssue [numRegs]int64
	var flagReady int64

	window := chip.Window
	if window < 1 {
		window = 1
	}
	completeRing := make([]int64, window) // completion cycle of instr i-window
	dispatchWidth := chip.IssueWidth
	if dispatchWidth < 1 {
		dispatchWidth = 1
	}
	dispatchRing := make([]int64, dispatchWidth)

	var result TimingResult
	result.IssuedByClass = make(map[asm.Class]int)
	var dramBefore uint64
	if m.Caches != nil {
		dramBefore = m.Caches.DRAMReads
	}
	var lastComplete int64

	for n, te := range trace {
		if te.Index >= len(p.Instrs) {
			return result, fmt.Errorf("sim: trace index %d out of range", te.Index)
		}
		in := &p.Instrs[te.Index]
		class := asm.ClassOf(in.Op)
		if class == asm.ClassNone {
			continue
		}

		// Dispatch: in order, at most dispatchWidth per cycle, stalling
		// while the reorder window is full.
		dispatch := dispatchRing[n%dispatchWidth] + 1
		if prev := dispatchRing[(n+dispatchWidth-1)%dispatchWidth]; dispatch < prev {
			dispatch = prev // keep dispatch nondecreasing (in-order front end)
		}
		if windowLimit := completeRing[n%window]; dispatch < windowLimit {
			dispatch = windowLimit
		}

		// Operand readiness (RAW).
		ready := dispatch
		for _, r := range in.Reads() {
			if r == asm.XZR || r == asm.NoReg {
				continue
			}
			if t := regReady[r]; t > ready {
				ready = t
			}
		}
		if in.Op == asm.OpBne {
			if flagReady > ready {
				ready = flagReady
			}
		}
		// WAR/WAW on architectural registers when renaming is absent.
		if !chip.RenameWAR {
			for _, w := range in.Writes() {
				if w == asm.XZR || w == asm.NoReg {
					continue
				}
				if t := lastReadIssue[w] + 1; t > ready {
					ready = t
				}
				if t := lastWriteIssue[w] + 1; t > ready {
					ready = t
				}
			}
		}

		issue := ports[class].take(ready)

		lat := int64(m.latency(in, te))
		complete := issue + lat
		if complete > lastComplete {
			lastComplete = complete
		}

		// Bookkeeping.
		for _, r := range in.Reads() {
			if r != asm.XZR && r != asm.NoReg && issue > lastReadIssue[r] {
				lastReadIssue[r] = issue
			}
		}
		for _, w := range in.Writes() {
			if w == asm.XZR || w == asm.NoReg {
				continue
			}
			regReady[w] = complete
			lastWriteIssue[w] = issue
		}
		if in.Op == asm.OpSubs {
			flagReady = complete
		}
		dispatchRing[n%dispatchWidth] = dispatch
		completeRing[n%window] = complete
		result.DynInstrs++
		result.IssuedByClass[class]++

		if m.KeepEvents {
			result.Events = append(result.Events, Event{
				Index: te.Index, Dispatch: dispatch, Issue: issue, Complete: complete, Class: class,
			})
		}
	}
	result.Cycles = lastComplete
	if m.Caches != nil {
		result.DRAMLines = m.Caches.DRAMReads - dramBefore
	}
	return result, nil
}

// latency returns the completion latency of a dynamic instruction.
func (m *Model) latency(in *asm.Instr, te TraceEntry) int {
	chip := m.Chip
	switch asm.ClassOf(in.Op) {
	case asm.ClassALU:
		return chip.LatALU
	case asm.ClassFMA:
		return chip.LatFMA
	case asm.ClassStore:
		if m.Caches != nil && te.HasMem {
			return m.Caches.Store(uint64(te.Mem.Addr))
		}
		return chip.LatStore
	case asm.ClassLoad:
		if m.AssumeLoadLat > 0 {
			return m.AssumeLoadLat
		}
		if m.Caches != nil && te.HasMem {
			return m.Caches.Load(uint64(te.Mem.Addr))
		}
		return chip.LatLoad
	case asm.ClassPrfm:
		if m.Caches != nil && te.HasMem {
			m.Caches.Prefetch(uint64(te.Mem.Addr))
		}
		return 1
	default:
		return 0
	}
}

// RunAndTime executes p functionally on mach (which must have Record set)
// and then times the captured trace.
func (m *Model) RunAndTime(p *asm.Program, mach *Machine, maxSteps int) (TimingResult, error) {
	mach.Record = true
	if err := mach.Run(p, maxSteps); err != nil {
		return TimingResult{}, err
	}
	return m.Simulate(p, mach.Trace)
}
