package sim

import (
	"strings"
	"testing"

	"autogemm/internal/asm"
	"autogemm/internal/hw"
)

func TestRenderTimeline(t *testing.T) {
	chip := hw.Didactic()
	a := NewArena(256)
	addr := a.Alloc(32)
	p := asm.NewProgram("tl")
	p.MovI(asm.X(0), addr)
	p.LdrQ(asm.V(0), asm.X(0), 0)
	p.VZero(asm.V(1)).VZero(asm.V(2))
	p.Fmla(asm.V(1), asm.V(0), asm.V(2), 0)
	p.StrQ(asm.V(1), asm.X(0), 16)
	p.Ret()
	m := NewMachine(a, 4)
	model := NewModel(chip)
	model.KeepEvents = true
	model.AssumeLoadLat = 8
	res, err := model.RunAndTime(p, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderTimeline(p, res.Events, 16, 60)
	lines := strings.Split(out, "\n")
	if len(lines) < 6 {
		t.Fatalf("timeline too short:\n%s", out)
	}
	// The load row must contain L glyphs spanning its 8-cycle latency,
	// the FMA row F glyphs starting strictly after the Ls end.
	var loadLine, fmaLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "ldr") {
			loadLine = l
		}
		if strings.HasPrefix(l, "fmla") {
			fmaLine = l
		}
	}
	if strings.Count(loadLine, "L") != 8 {
		t.Errorf("load occupancy %d cycles, want 8:\n%s", strings.Count(loadLine, "L"), loadLine)
	}
	if !strings.Contains(fmaLine, "F") {
		t.Errorf("no FMA glyphs:\n%s", fmaLine)
	}
	if li, fi := strings.LastIndex(loadLine, "L"), strings.Index(fmaLine, "F"); fi <= li {
		t.Errorf("FMA at col %d not after its operand load finishing at col %d", fi, li)
	}
	// Bounded output for long traces.
	short := RenderTimeline(p, res.Events, 2, 20)
	if !strings.Contains(short, "more instructions") {
		t.Error("row cap not reported")
	}
}
