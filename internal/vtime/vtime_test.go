package vtime

import (
	"math"
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/sched"
)

func uniform(n int, cycles, bytes float64) []sched.TaskCost {
	costs := make([]sched.TaskCost, n)
	for i := range costs {
		costs[i] = sched.TaskCost{Cycles: cycles, Bytes: bytes}
	}
	return costs
}

// TestSingleWorkerIsSerialSum: one worker reproduces the in-order sum
// of the compute costs exactly — the analytic single-core contract
// (no penalties, no bandwidth floor).
func TestSingleWorkerIsSerialSum(t *testing.T) {
	costs := []sched.TaskCost{
		{Cycles: 100, Bytes: 1e12}, {Cycles: 31.5, Bytes: 0}, {Cycles: 7, Bytes: 5},
	}
	res := Simulate(hw.KP920(), 1, costs)
	if want := 100 + 31.5 + 7.0; res.Cycles != want {
		t.Errorf("Cycles=%v, want exact serial sum %v", res.Cycles, want)
	}
	if res.FloorBound {
		t.Error("single worker must not apply the bandwidth floor")
	}
	if res.Tasks[0] != 3 {
		t.Errorf("Tasks[0]=%d, want 3", res.Tasks[0])
	}
}

// TestDeterministicReplay: repeated simulations of the same inputs are
// bit-identical, including per-worker accounting.
func TestDeterministicReplay(t *testing.T) {
	costs := make([]sched.TaskCost, 97)
	for i := range costs {
		costs[i] = sched.TaskCost{
			Cycles: 1000 + float64(i*i%37)*13.7,
			Bytes:  float64(i%5) * 4096,
		}
	}
	for _, chip := range hw.All() {
		a := Simulate(chip, chip.Cores, costs)
		b := Simulate(chip, chip.Cores, costs)
		if a.Cycles != b.Cycles {
			t.Errorf("%s: cycles differ across runs: %v vs %v", chip.Name, a.Cycles, b.Cycles)
		}
		for i := range a.Busy {
			if a.Busy[i] != b.Busy[i] || a.Tasks[i] != b.Tasks[i] {
				t.Errorf("%s: worker %d accounting differs across runs", chip.Name, i)
			}
		}
	}
}

// TestUniformTasksBalance: uniform compute-bound tasks on a
// single-group chip split evenly — the makespan is the per-worker
// share times the sync penalty, and every worker runs the same number
// of tasks.
func TestUniformTasksBalance(t *testing.T) {
	chip := hw.KP920() // 8 cores, 1 group
	const n, w = 64, 8
	costs := uniform(n, 1000, 0)
	res := Simulate(chip, w, costs)
	top := hw.NewTopology(chip)
	want := float64(n/w) * 1000 * top.SyncPenalty(w)
	if math.Abs(res.Cycles-want) > 1e-6 {
		t.Errorf("Cycles=%v, want %v", res.Cycles, want)
	}
	for i, k := range res.Tasks {
		if k != n/w {
			t.Errorf("worker %d ran %d tasks, want %d", i, k, n/w)
		}
	}
}

// TestClaimOrderImbalance: one giant task first, then small ones — the
// replay's ascending-index claim discipline puts the giant task on
// worker 0 and the makespan tracks it, not the even split.
func TestClaimOrderImbalance(t *testing.T) {
	chip := hw.Graviton2()
	costs := append([]sched.TaskCost{{Cycles: 1e6}}, uniform(10, 10, 0)...)
	res := Simulate(chip, 4, costs)
	top := hw.NewTopology(chip)
	want := 1e6 * top.SyncPenalty(4)
	if math.Abs(res.Cycles-want) > 1e-6 {
		t.Errorf("Cycles=%v, want giant-task bound %v", res.Cycles, want)
	}
	if res.Tasks[0] != 1 {
		t.Errorf("worker 0 ran %d tasks, want only the giant one", res.Tasks[0])
	}
}

// TestBandwidthFloorBinds: tasks moving enormous traffic relative to
// their compute become bandwidth-bound: the result is the socket floor
// and FloorBound reports it.
func TestBandwidthFloorBinds(t *testing.T) {
	chip := hw.KP920()
	top := hw.NewTopology(chip)
	costs := uniform(16, 1, 1e9) // ~no compute, a GB of traffic each
	res := Simulate(chip, 8, costs)
	floor := 16e9 / top.SocketBandwidth()
	if !res.FloorBound {
		t.Fatalf("floor did not bind: cycles %v, floor %v", res.Cycles, floor)
	}
	if math.Abs(res.Cycles-floor) > floor*1e-9 {
		t.Errorf("Cycles=%v, want floor %v", res.Cycles, floor)
	}
	// Compute-bound work must not report the floor.
	if r := Simulate(chip, 8, uniform(16, 1e9, 8)); r.FloorBound {
		t.Error("compute-bound schedule reported FloorBound")
	}
}

// TestGroupContentionSlowsDraining: with per-group bandwidth shared by
// concurrent tasks, packing the same workers into one group drains
// slower in wall time than the floor suggests for few workers — and
// adding workers in the same group cannot beat the group's bandwidth.
func TestGroupContentionSlowsDraining(t *testing.T) {
	chip := hw.A64FX()
	top := hw.NewTopology(chip)
	// Memory-heavy tasks confined to one CMG (12 workers): the group's
	// bandwidth, a quarter of the socket, is the binding resource.
	costs := uniform(12, 1, 1e8)
	res := Simulate(chip, 12, costs)
	groupTime := 12e8 / top.GroupBandwidth()
	if math.Abs(res.Cycles-groupTime) > groupTime*1e-9 {
		t.Errorf("Cycles=%v, want group-bandwidth bound %v", res.Cycles, groupTime)
	}
	if res.FloorBound {
		t.Error("socket floor reported, but the group bound is higher")
	}
}

// TestMoreWorkersThanTasks: extra workers idle; they run zero tasks and
// accumulate zero busy cycles.
func TestMoreWorkersThanTasks(t *testing.T) {
	chip := hw.Graviton2()
	res := Simulate(chip, 16, uniform(3, 500, 0))
	var ran int
	for i := range res.Tasks {
		ran += res.Tasks[i]
		if res.Tasks[i] == 0 && res.Busy[i] != 0 {
			t.Errorf("idle worker %d has busy cycles %v", i, res.Busy[i])
		}
	}
	if ran != 3 {
		t.Errorf("tasks run %d, want 3", ran)
	}
}

// TestWorkerClamp: asking for more workers than the chip has cores
// clamps; zero or negative clamps to one.
func TestWorkerClamp(t *testing.T) {
	chip := hw.M2() // 4 cores
	if res := Simulate(chip, 100, uniform(8, 10, 0)); res.Workers != 4 {
		t.Errorf("Workers=%d, want clamp to 4", res.Workers)
	}
	if res := Simulate(chip, 0, uniform(8, 10, 0)); res.Workers != 1 {
		t.Errorf("Workers=%d, want clamp to 1", res.Workers)
	}
}

// TestCMGCollapseFromReplay: the A64FX efficiency curve collapses when
// the worker set spans CMGs — the paper's §V-E figure, out of the
// replay engine alone.
func TestCMGCollapseFromReplay(t *testing.T) {
	chip := hw.A64FX()
	costs := uniform(192, 10_000, 0)
	base := Simulate(chip, 1, costs).Cycles
	eff := func(w int) float64 { return Simulate(chip, w, costs).Efficiency(base) }
	e12, e24, e48 := eff(12), eff(24), eff(48)
	if e12 < 0.9 {
		t.Errorf("within-CMG efficiency %.3f, want near-linear", e12)
	}
	if e24 >= e12 || e48 >= e24 {
		t.Errorf("no collapse across CMGs: eff 12/24/48 = %.3f/%.3f/%.3f", e12, e24, e48)
	}
	if e48 > e12*0.7 {
		t.Errorf("48-core efficiency %.3f too close to within-CMG %.3f", e48, e12)
	}
	if sp := Simulate(chip, 48, costs).Spanned; sp != 4 {
		t.Errorf("Spanned=%d, want 4", sp)
	}
}

// TestEmptyCosts: no tasks, no cycles — and no panic.
func TestEmptyCosts(t *testing.T) {
	res := Simulate(hw.KP920(), 4, nil)
	if res.Cycles != 0 {
		t.Errorf("Cycles=%v, want 0", res.Cycles)
	}
}
