package vtime

import (
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/sched"
)

func mixedBatch(n int) []Job {
	batch := make([]Job, n)
	for i := range batch {
		class, weight := "batch", 1
		if i%3 == 2 {
			class, weight = "latency", 16
		}
		batch[i] = Job{
			ID:     int64(i + 1),
			Class:  class,
			Weight: weight,
			Costs:  uniform(5+i%7, 1000+float64(i*i%29)*17.3, float64(i%4)*4096),
		}
	}
	return batch
}

// TestBatchDeterministicReplay: repeated SimulateBatch runs over every
// chip are bit-identical under both policies — makespan, per-job
// outcomes, and per-worker accounting.
func TestBatchDeterministicReplay(t *testing.T) {
	batch := mixedBatch(13)
	for _, chip := range hw.All() {
		for _, pol := range []Policy{PolicyFIFO, PolicyWeighted} {
			a := SimulateBatch(chip, chip.Cores, batch, pol)
			b := SimulateBatch(chip, chip.Cores, batch, pol)
			if a.Makespan != b.Makespan || a.FloorBound != b.FloorBound {
				t.Errorf("%s/%s: makespan differs across runs: %v vs %v",
					chip.Name, pol, a.Makespan, b.Makespan)
			}
			for i := range a.Jobs {
				if a.Jobs[i] != b.Jobs[i] {
					t.Errorf("%s/%s: job %d result differs across runs: %+v vs %+v",
						chip.Name, pol, a.Jobs[i].ID, a.Jobs[i], b.Jobs[i])
				}
			}
			for i := range a.Busy {
				if a.Busy[i] != b.Busy[i] || a.Tasks[i] != b.Tasks[i] {
					t.Errorf("%s/%s: worker %d accounting differs across runs",
						chip.Name, pol, i)
				}
			}
		}
	}
}

// TestBatchWeightedStarvationFree: under sustained heavy high-weight
// load submitted ahead of it, a minimum-weight class's first claim is
// still bounded — weighted claiming interleaves it instead of parking
// it behind the entire high-weight backlog the way FIFO does. This is
// the deterministic starvation-freedom proof for the claiming policy.
func TestBatchWeightedStarvationFree(t *testing.T) {
	const heavy = 24
	var batch []Job
	for i := 0; i < heavy; i++ {
		batch = append(batch, Job{
			ID: int64(i + 1), Class: "hog", Weight: 64,
			Costs: uniform(6, 10_000, 0),
		})
	}
	starved := Job{ID: heavy + 1, Class: "meek", Weight: 1,
		Costs: uniform(2, 1000, 0)}
	batch = append(batch, starved)

	chip := hw.KP920()
	fifo := SimulateBatch(chip, 4, batch, PolicyFIFO)
	weighted := SimulateBatch(chip, 4, batch, PolicyWeighted)

	var fifoWait, weightedWait float64
	for i := range fifo.Jobs {
		if fifo.Jobs[i].ID == starved.ID {
			fifoWait = fifo.Jobs[i].QueueWait
			weightedWait = weighted.Jobs[i].QueueWait
		}
	}
	if fifoWait <= 0 {
		t.Fatalf("FIFO queue wait for the trailing job = %v, want > 0 (test premise)", fifoWait)
	}
	if weightedWait >= fifoWait {
		t.Fatalf("weighted wait %v not better than FIFO wait %v for min-weight class",
			weightedWait, fifoWait)
	}
	// Starvation-freedom bound: with stride scheduling a weight-1 class
	// waits at most ~(sum of weights / own weight) claim decisions, so
	// its first claim lands well inside the first few heavy jobs' span
	// rather than after the whole backlog.
	if weightedWait > fifoWait/4 {
		t.Errorf("weighted wait %v exceeds a quarter of the FIFO wait %v — weaker than the stride bound",
			weightedWait, fifoWait)
	}
}

// TestBatchSingleWorkerSerialSum: at W = 1 both policies produce a
// makespan equal to the serial sum of all task costs with no bandwidth
// floor. FIFO visits jobs in batch order so its sum is bit-exact;
// weighted interleaves classes, so its sum differs only by float
// addition reordering (compared within one ulp-scale epsilon).
func TestBatchSingleWorkerSerialSum(t *testing.T) {
	batch := mixedBatch(9)
	var want float64
	for _, j := range batch {
		for _, c := range j.Costs {
			want += c.Cycles
		}
	}
	for _, pol := range []Policy{PolicyFIFO, PolicyWeighted} {
		res := SimulateBatch(hw.KP920(), 1, batch, pol)
		if pol == PolicyFIFO && res.Makespan != want {
			t.Errorf("%s: W=1 makespan %v, want exact serial sum %v", pol, res.Makespan, want)
		}
		if d := res.Makespan - want; d > 1e-9*want || d < -1e-9*want {
			t.Errorf("%s: W=1 makespan %v not within reordering tolerance of %v", pol, res.Makespan, want)
		}
		if res.FloorBound {
			t.Errorf("%s: single worker must not apply the bandwidth floor", pol)
		}
		for _, jr := range res.Jobs {
			if jr.Finish <= jr.FirstClaim {
				t.Errorf("%s: job %d finish %v <= first claim %v", pol, jr.ID, jr.Finish, jr.FirstClaim)
			}
		}
	}
}

// TestBatchSingleClassPoliciesCoincide: with every job in one class
// weighted claiming degenerates to FIFO (one class queue, ID order), so
// the two policies must be bit-identical — the default-path identity
// the pool refactor relies on.
func TestBatchSingleClassPoliciesCoincide(t *testing.T) {
	batch := make([]Job, 11)
	for i := range batch {
		batch[i] = Job{
			ID:    int64(i + 1),
			Costs: uniform(4+i%5, 2000+float64(i)*311.5, float64(i%3)*8192),
		}
	}
	for _, w := range []int{1, 3, 8} {
		fifo := SimulateBatch(hw.KP920(), w, batch, PolicyFIFO)
		weighted := SimulateBatch(hw.KP920(), w, batch, PolicyWeighted)
		if fifo.Makespan != weighted.Makespan {
			t.Errorf("W=%d: single-class makespans differ: FIFO %v, weighted %v",
				w, fifo.Makespan, weighted.Makespan)
		}
		for i := range fifo.Jobs {
			if fifo.Jobs[i] != weighted.Jobs[i] {
				t.Errorf("W=%d: job %d differs single-class: %+v vs %+v",
					w, fifo.Jobs[i].ID, fifo.Jobs[i], weighted.Jobs[i])
			}
		}
	}
}

// TestBatchSingleJobMatchesSimulate: a one-job batch reproduces the
// single-job Simulate makespan exactly on every chip — SimulateBatch
// generalizes the fluid model without perturbing it.
func TestBatchSingleJobMatchesSimulate(t *testing.T) {
	costs := make([]sched.TaskCost, 41)
	for i := range costs {
		costs[i] = sched.TaskCost{
			Cycles: 5000 + float64(i*i%23)*97.25,
			Bytes:  float64(i%6) * 16384,
		}
	}
	for _, chip := range hw.All() {
		for _, w := range []int{1, 2, chip.Cores} {
			single := Simulate(chip, w, costs)
			batch := SimulateBatch(chip, w, []Job{{ID: 1, Costs: costs}}, PolicyWeighted)
			if batch.Makespan != single.Cycles {
				t.Errorf("%s W=%d: batch makespan %v != Simulate cycles %v",
					chip.Name, w, batch.Makespan, single.Cycles)
			}
			if batch.FloorBound != single.FloorBound {
				t.Errorf("%s W=%d: FloorBound disagrees: batch %v, single %v",
					chip.Name, w, batch.FloorBound, single.FloorBound)
			}
		}
	}
}

// TestBatchParticipantCap: a job's Max bounds how many workers join it;
// capped jobs take at least as long as uncapped ones.
func TestBatchParticipantCap(t *testing.T) {
	costs := uniform(16, 10_000, 0)
	capped := SimulateBatch(hw.KP920(), 8, []Job{{ID: 1, Max: 2, Costs: costs}}, PolicyFIFO)
	free := SimulateBatch(hw.KP920(), 8, []Job{{ID: 1, Costs: costs}}, PolicyFIFO)
	if capped.Makespan <= free.Makespan {
		t.Errorf("capped makespan %v should exceed uncapped %v", capped.Makespan, free.Makespan)
	}
	var joined int
	for _, n := range capped.Tasks {
		if n > 0 {
			joined++
		}
	}
	if joined > 2 {
		t.Errorf("%d workers joined a Max=2 job", joined)
	}
}

// TestBatchQuantile: nearest-rank quantile helper edge cases.
func TestBatchQuantile(t *testing.T) {
	if v := Quantile(nil, 0.99); v != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", v)
	}
	vals := []float64{5, 1, 4, 2, 3}
	if v := Quantile(vals, 0); v != 1 {
		t.Errorf("q0 = %v, want 1", v)
	}
	if v := Quantile(vals, 0.5); v != 3 {
		t.Errorf("q0.5 = %v, want 3", v)
	}
	if v := Quantile(vals, 1); v != 5 {
		t.Errorf("q1 = %v, want 5", v)
	}
	// Input must not be reordered by the helper.
	if vals[0] != 5 || vals[4] != 3 {
		t.Errorf("Quantile mutated its input: %v", vals)
	}
}
