package vtime

import (
	"sort"

	"autogemm/internal/hw"
	"autogemm/internal/sched"
)

// This file generalizes the single-job replay (Simulate) to *batch*
// schedules: many jobs, inter-job parallelism, and a scheduling policy
// deciding which job a freed virtual worker joins. The task-level
// discipline is unchanged — ascending-index claims within a job, a
// worker stays on its job until the claim frontier is exhausted, fluid
// compute/bandwidth progression under the shared hw.Topology contention
// model. What the batch replay adds is the pool's *join* arbitration:
// PolicyFIFO joins the lowest-ID joinable job (the pre-QoS scheduler),
// PolicyWeighted runs the same stride-scheduled class credit as
// sched.claimableLocked, so per-class queue-wait and makespan of the
// two policies can be compared in bit-reproducible simulated cycles.
//
// Determinism mirrors Simulate: inputs are pure functions of the plans
// (per-task costs, class/weight/cap metadata recorded at acceptance),
// jobs are processed in ID order, classes in sorted-name order,
// simultaneously-freed workers arbitrate in worker-ID order, and ties
// between classes break toward the lowest head-job ID — identical
// states always produce identical schedules.

// Policy selects the join arbitration of a batch replay.
type Policy int

const (
	// PolicyFIFO joins the lowest-ID joinable job regardless of class —
	// the single-queue discipline the scheduler ran before QoS.
	PolicyFIFO Policy = iota
	// PolicyWeighted replays sched's stride-scheduled weighted claiming:
	// each join decision picks the active class with the lowest pass
	// (ties toward the lowest head-job ID) and advances that class's
	// pass by strideScale/weight; FIFO within a class.
	PolicyWeighted
)

// String names the policy for reports.
func (p Policy) String() string {
	if p == PolicyWeighted {
		return "weighted"
	}
	return "fifo"
}

// batchStrideScale mirrors sched's stride credit numerator: a class's
// pass advances by batchStrideScale/weight per join decision.
const batchStrideScale = 1 << 16

// Job is one batch member: the per-task costs recorded (or precomputed)
// for the job plus the scheduling identity the pool accepted it under
// (sched.JobMeta, via Recorder.Meta).
type Job struct {
	ID     int64            // pool job ID; also the FIFO/tie-break order
	Class  string           // QoS class ("" means the default class)
	Weight int              // class weight; > 0 overrides (latest, by ID, wins)
	Max    int              // participant cap; <= 0 means all workers
	Costs  []sched.TaskCost // per-task cycles/bytes, indexed by task
}

// JobResult is one job's simulated outcome within a batch.
type JobResult struct {
	ID    int64
	Class string
	Tasks int

	// FirstClaim is the virtual time a worker first joined the job.
	// Every job arrives at t = 0, so FirstClaim is also QueueWait — the
	// cycle-accurate queue latency the policy imposed on the job.
	FirstClaim float64
	Finish     float64 // virtual time the job's last task completed
	QueueWait  float64 // == FirstClaim (arrival is t = 0)
}

// BatchResult is one simulated batch execution.
type BatchResult struct {
	Workers  int // virtual workers (after clamping to chip cores)
	Policy   Policy
	Makespan float64 // cycles until the last task completed (incl. bandwidth floor)
	Spanned  int     // NUMA/CMG groups the worker set occupies

	// FloorBound reports the batch ran at the socket DRAM bandwidth
	// limit (total traffic / socket bandwidth), as in Simulate.
	FloorBound bool

	Jobs  []JobResult // per-job outcomes, ascending ID
	Busy  []float64   // per-worker busy cycles
	Tasks []int       // per-worker tasks completed
}

// batchClass is one QoS class's replay state.
type batchClass struct {
	name   string
	weight int
	pass   uint64
	jobs   []int // indices into the ID-sorted job slice, ascending ID
}

func (c *batchClass) stride() uint64 {
	w := c.weight
	if w < 1 {
		w = 1
	}
	if w > batchStrideScale {
		w = batchStrideScale
	}
	return uint64(batchStrideScale / w)
}

// SimulateBatch replays a multi-job schedule on `workers` virtual
// workers of the chip under the chosen join policy. All jobs arrive at
// t = 0 (the saturated-queue regime where policy matters most); class
// weights default to the scheduler's (16 for the default class, 1
// otherwise) unless a job carries an explicit Weight.
//
// workers is clamped to [1, chip.Cores]. With one worker each joined
// job runs to completion as the exact in-order sum of its compute
// costs — no penalties, no floor — matching Simulate's serial baseline,
// so FIFO and weighted makespans coincide at W = 1 and only per-job
// finish order differs.
//
// The existing single-job Simulate is intentionally left untouched:
// its results (the -sim-scaling curves) stay bit-stable.
func SimulateBatch(chip *hw.Chip, workers int, batch []Job, policy Policy) BatchResult {
	top := hw.NewTopology(chip)
	w := top.ClampCores(workers)
	res := BatchResult{
		Workers: w,
		Policy:  policy,
		Spanned: top.GroupsSpanned(w),
		Busy:    make([]float64, w),
		Tasks:   make([]int, w),
	}
	if len(batch) == 0 {
		return res
	}

	jobs := make([]Job, len(batch))
	copy(jobs, batch)
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })

	// Per-job replay state.
	n := len(jobs)
	next := make([]int, n)    // claim cursor
	done := make([]int, n)    // completed tasks
	parts := make([]int, n)   // participants joined
	maxw := make([]int, n)    // resolved participant cap
	joined := make([]bool, n) // first join recorded
	res.Jobs = make([]JobResult, n)
	var totalBytes float64
	for ji, j := range jobs {
		res.Jobs[ji] = JobResult{ID: j.ID, Class: className(j.Class), Tasks: len(j.Costs)}
		maxw[ji] = j.Max
		if maxw[ji] <= 0 || maxw[ji] > w {
			maxw[ji] = w
		}
		for _, c := range j.Costs {
			totalBytes += c.Bytes
		}
	}

	// Class table: created in ascending job-ID order (acceptance order),
	// scanned in sorted-name order — both mirror the pool.
	classes := make(map[string]*batchClass)
	var classList []*batchClass
	for ji, j := range jobs {
		name := className(j.Class)
		c, ok := classes[name]
		if !ok {
			weight := 1
			if name == sched.DefaultClass {
				weight = 16
			}
			c = &batchClass{name: name, weight: weight}
			classes[name] = c
			classList = append(classList, c)
		}
		if j.Weight > 0 {
			c.weight = j.Weight
		}
		c.jobs = append(c.jobs, ji)
	}
	sort.Slice(classList, func(i, j int) bool { return classList[i].name < classList[j].name })

	joinable := func(ji int) bool {
		return parts[ji] < maxw[ji] && next[ji] < len(jobs[ji].Costs)
	}
	headJoinable := func(c *batchClass) int {
		for _, ji := range c.jobs {
			if joinable(ji) {
				return ji
			}
		}
		return -1
	}
	// pick is one join decision under the policy; -1 means nothing is
	// joinable. PolicyWeighted charges the chosen class one stride.
	pick := func() int {
		if policy == PolicyFIFO {
			for ji := range jobs {
				if joinable(ji) {
					return ji
				}
			}
			return -1
		}
		var best *batchClass
		bestJob := -1
		for _, c := range classList {
			ji := headJoinable(c)
			if ji < 0 {
				continue
			}
			if best == nil || c.pass < best.pass || (c.pass == best.pass && jobs[ji].ID < jobs[bestJob].ID) {
				best, bestJob = c, ji
			}
		}
		if bestJob >= 0 {
			best.pass += best.stride()
		}
		return bestJob
	}
	join := func(ji int, now float64) {
		parts[ji]++
		if !joined[ji] {
			joined[ji] = true
			res.Jobs[ji].FirstClaim = now
			res.Jobs[ji].QueueWait = now
		}
	}

	if w == 1 {
		// Exact serial baseline: each join runs the whole job in claim
		// order as a plain compute-cycle sum.
		var now float64
		for {
			ji := pick()
			if ji < 0 {
				break
			}
			join(ji, now)
			for _, c := range jobs[ji].Costs {
				now += c.Cycles
			}
			next[ji] = len(jobs[ji].Costs)
			done[ji] = len(jobs[ji].Costs)
			res.Tasks[0] += len(jobs[ji].Costs)
			res.Jobs[ji].Finish = now
		}
		res.Busy[0] = now
		res.Makespan = now
		return res
	}

	penalty := top.SpanPenalty(w) * top.SyncPenalty(w)
	groupBW := top.GroupBandwidth()

	cur := make([]int, w)    // job index being run; -1 = idle
	rc := make([]float64, w) // remaining compute cycles of the current task
	rb := make([]float64, w) // remaining DRAM bytes of the current task
	group := make([]int, w)
	for i := 0; i < w; i++ {
		cur[i] = -1
		group[i] = top.GroupOf(i)
	}
	claim := func(i, ji int) {
		c := jobs[ji].Costs[next[ji]]
		next[ji]++
		cur[i] = ji
		rc[i] = c.Cycles * penalty
		rb[i] = c.Bytes
	}
	// arbitrate assigns free workers in ID order — the replay's stand-in
	// for the pool-lock serialization of concurrent joins.
	arbitrate := func(now float64) {
		for i := 0; i < w; i++ {
			if cur[i] != -1 {
				continue
			}
			ji := pick()
			if ji < 0 {
				return
			}
			join(ji, now)
			claim(i, ji)
		}
	}

	var now float64
	arbitrate(now)

	nDrain := make([]int, top.Groups())
	for {
		active := false
		for g := range nDrain {
			nDrain[g] = 0
		}
		for i := 0; i < w; i++ {
			if cur[i] >= 0 {
				active = true
				if rb[i] > 0 {
					nDrain[group[i]]++
				}
			}
		}
		if !active {
			break
		}

		dt := -1.0
		for i := 0; i < w; i++ {
			if cur[i] < 0 {
				continue
			}
			t := rc[i]
			if rb[i] > 0 {
				share := groupBW / float64(nDrain[group[i]])
				if tm := rb[i] / share; tm > t {
					t = tm
				}
			}
			if dt < 0 || t < dt {
				dt = t
			}
		}

		for i := 0; i < w; i++ {
			if cur[i] < 0 {
				continue
			}
			res.Busy[i] += dt
			if rc[i] -= dt; rc[i] <= finishEps {
				rc[i] = 0
			}
			if rb[i] > 0 {
				share := groupBW / float64(nDrain[group[i]])
				if rb[i] -= share * dt; rb[i] <= finishEps {
					rb[i] = 0
				}
			}
		}
		now += dt

		// Completions first (same-job continuation is the lock-free
		// cursor claim), then joins for freed workers.
		for i := 0; i < w; i++ {
			if cur[i] < 0 || rc[i] != 0 || rb[i] != 0 {
				continue
			}
			ji := cur[i]
			res.Tasks[i]++
			done[ji]++
			if done[ji] == len(jobs[ji].Costs) {
				res.Jobs[ji].Finish = now
			}
			if next[ji] < len(jobs[ji].Costs) {
				claim(i, ji)
			} else {
				cur[i] = -1
			}
		}
		arbitrate(now)
	}

	res.Makespan = now
	floor := totalBytes / top.SocketBandwidth()
	if floor > res.Makespan {
		res.Makespan = floor
	}
	if totalBytes > 0 && res.Makespan <= floor*(1+1e-9) {
		res.FloorBound = true
	}
	return res
}

// className resolves "" to the scheduler's default class.
func className(c string) string {
	if c == "" {
		return sched.DefaultClass
	}
	return c
}

// Quantile returns the q-quantile (0 <= q <= 1, nearest-rank) of vals;
// 0 for an empty slice. It sorts a copy — callers pass raw queue-wait
// collections straight from a BatchResult.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(q*float64(len(s)-1) + 0.5)
	return s[idx]
}
