// Package vtime is the virtual-time execution engine: it replays the
// scheduler's work-claiming discipline over recorded per-task simulated
// costs on N virtual workers, under the shared NUMA/CMG contention
// model (hw.Topology). The host has one CPU, so wall-clock multi-worker
// numbers are physically flat; vtime turns the real runtime's schedule
// — per-task costs observed by a sched.Timekeeper during an actual
// execution — into the paper's strong-scaling story (per-chip
// efficiency curves, the A64FX CMG collapse of §V-E).
//
// The replay is deterministic by construction. Its inputs are a chip
// and a cost vector indexed by task — both pure functions of the plan,
// independent of which physical worker happened to claim which task or
// what GOMAXPROCS the recording ran at — and the simulation itself
// iterates only slices in fixed order (no map iteration touches a
// float), so repeated runs produce bit-identical cycle counts.
//
// The claim discipline mirrors internal/sched: tasks are claimed in
// ascending index order; a worker claims the next task the moment it
// finishes its current one; ties between simultaneously-free workers
// break toward the lowest worker ID (in the real pool ties are resolved
// by the race on the atomic cursor — the replay pins them so results
// are reproducible).
package vtime

import (
	"autogemm/internal/hw"
	"autogemm/internal/sched"
)

// finishEps absorbs float residue when a task's remaining work is
// decremented by its own projected finish time: remainders at or below
// it count as done. It is ~10 orders of magnitude below a single kernel
// invocation, so it never changes which task finishes first.
const finishEps = 1e-6

// Result is one simulated execution: the schedule's makespan in cycles
// on the modelled chip, with per-worker accounting.
type Result struct {
	Workers int     // virtual workers simulated (after clamping to chip cores)
	Cycles  float64 // simulated makespan, including the bandwidth floor
	Spanned int     // NUMA/CMG groups the worker set occupies

	// FloorBound reports that the schedule ran at the socket DRAM
	// bandwidth limit: Cycles equals (within rounding) the
	// total-traffic/socket-bandwidth floor, so memory, not the compute
	// critical path, determined the result.
	FloorBound bool

	Busy  []float64 // per-worker busy cycles (task wall time in virtual time)
	Tasks []int     // per-worker tasks completed
}

// Efficiency returns the parallel efficiency of this result against a
// single-worker baseline: base / (Cycles · Workers).
func (r Result) Efficiency(base float64) float64 {
	if r.Cycles <= 0 || r.Workers <= 0 {
		return 0
	}
	return base / (r.Cycles * float64(r.Workers))
}

// Simulate replays `costs` (per-task compute cycles and DRAM bytes, as
// recorded by a sched.Timekeeper or precomputed by
// core.Plan.TaskCosts) on `workers` virtual workers of the chip.
//
// Contention model, shared with the analytic estimator:
//   - every task's compute cycles are scaled by the topology's
//     SpanPenalty and SyncPenalty for the worker count — the NUMA/CMG
//     cross traffic and barrier overhead of Eqn 13;
//   - each task's DRAM bytes drain at the per-group bandwidth share,
//     split evenly among the tasks concurrently draining in that group
//     (workers fill groups contiguously, worker i on core i); a task
//     completes when both its compute and its traffic are done;
//   - the socket-level bandwidth floor total-bytes/socket-bandwidth
//     bounds the result from below, as in the analytic model.
//
// workers is clamped to [1, chip.Cores]. With one worker the result is
// exactly the in-order sum of the compute costs (matching the analytic
// single-core estimate, which applies no penalties and no floor).
func Simulate(chip *hw.Chip, workers int, costs []sched.TaskCost) Result {
	top := hw.NewTopology(chip)
	w := top.ClampCores(workers)
	res := Result{
		Workers: w,
		Spanned: top.GroupsSpanned(w),
		Busy:    make([]float64, w),
		Tasks:   make([]int, w),
	}
	n := len(costs)
	if n == 0 {
		return res
	}

	if w == 1 {
		var sum float64
		for _, c := range costs {
			sum += c.Cycles
		}
		res.Cycles = sum
		res.Busy[0] = sum
		res.Tasks[0] = n
		return res
	}

	penalty := top.SpanPenalty(w) * top.SyncPenalty(w)
	groupBW := top.GroupBandwidth()

	// Per-worker running-task state; cur[i] < 0 means idle (drained).
	cur := make([]int, w)    // task index being run
	rc := make([]float64, w) // remaining compute cycles
	rb := make([]float64, w) // remaining DRAM bytes
	group := make([]int, w)
	for i := 0; i < w; i++ {
		cur[i] = -1
		group[i] = top.GroupOf(i)
	}

	next := 0
	claim := func(i int) {
		if next >= n {
			cur[i] = -1
			return
		}
		cur[i] = next
		rc[i] = costs[next].Cycles * penalty
		rb[i] = costs[next].Bytes
		next++
	}
	for i := 0; i < w && next < n; i++ {
		claim(i)
	}

	var now, totalBytes float64
	for _, c := range costs {
		totalBytes += c.Bytes
	}

	// Fluid event loop: compute advances at one cycle per cycle; a
	// group's draining tasks share its bandwidth evenly. Each step
	// advances to the earliest task completion, then frees that worker
	// to claim the next task — the sched cursor discipline in virtual
	// time.
	nDrain := make([]int, top.Groups())
	for {
		active := false
		for g := range nDrain {
			nDrain[g] = 0
		}
		for i := 0; i < w; i++ {
			if cur[i] >= 0 {
				active = true
				if rb[i] > 0 {
					nDrain[group[i]]++
				}
			}
		}
		if !active {
			break
		}

		// Earliest completion across active workers (ID order fixes
		// float evaluation order).
		dt := -1.0
		for i := 0; i < w; i++ {
			if cur[i] < 0 {
				continue
			}
			t := rc[i]
			if rb[i] > 0 {
				share := groupBW / float64(nDrain[group[i]])
				if tm := rb[i] / share; tm > t {
					t = tm
				}
			}
			if dt < 0 || t < dt {
				dt = t
			}
		}

		for i := 0; i < w; i++ {
			if cur[i] < 0 {
				continue
			}
			res.Busy[i] += dt
			if rc[i] -= dt; rc[i] <= finishEps {
				rc[i] = 0
			}
			if rb[i] > 0 {
				share := groupBW / float64(nDrain[group[i]])
				if rb[i] -= share * dt; rb[i] <= finishEps {
					rb[i] = 0
				}
			}
		}
		now += dt
		for i := 0; i < w; i++ {
			if cur[i] >= 0 && rc[i] == 0 && rb[i] == 0 {
				res.Tasks[i]++
				claim(i)
			}
		}
	}

	res.Cycles = now
	floor := totalBytes / top.SocketBandwidth()
	if floor > res.Cycles {
		res.Cycles = floor
	}
	if totalBytes > 0 && res.Cycles <= floor*(1+1e-9) {
		res.FloorBound = true
	}
	return res
}
