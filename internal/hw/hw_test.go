package hw

import (
	"math"
	"testing"
)

func TestTableIVParameters(t *testing.T) {
	// Spot-check the values fixed by Table IV of the paper.
	cases := []struct {
		chip  *Chip
		cores int
		freq  float64
		lanes int
		l1    int
	}{
		{KP920(), 8, 2.6, 4, 64 << 10},
		{Graviton2(), 16, 2.5, 4, 64 << 10},
		{Altra(), 70, 3.0, 4, 64 << 10},
		{M2(), 4, 3.49, 4, 128 << 10},
		{A64FX(), 48, 2.2, 16, 64 << 10},
	}
	for _, c := range cases {
		if c.chip.Cores != c.cores || c.chip.FreqGHz != c.freq ||
			c.chip.Lanes != c.lanes || c.chip.L1D.SizeBytes != c.l1 {
			t.Errorf("%s: parameters diverge from Table IV: %+v", c.chip.Name, c.chip)
		}
	}
}

func TestPeakGFLOPS(t *testing.T) {
	// KP920: 2 FMA pipes × 4 lanes × 2 flops × 2.6 GHz = 41.6 GF/s/core.
	if got := KP920().PeakGFLOPS(); math.Abs(got-41.6) > 1e-9 {
		t.Errorf("KP920 peak %g, want 41.6", got)
	}
	// A64FX: 2 × 16 × 2 × 2.2 = 140.8 GF/s/core (SVE-512 single precision).
	if got := A64FX().PeakGFLOPS(); math.Abs(got-140.8) > 1e-9 {
		t.Errorf("A64FX peak %g, want 140.8", got)
	}
	if got := A64FX().PeakGFLOPSAllCores(); math.Abs(got-140.8*48) > 1e-6 {
		t.Errorf("A64FX socket peak %g", got)
	}
}

func TestSigmaAIOrdering(t *testing.T) {
	// The paper's narrative: Graviton2 and M2 have low σ_AI (easy to reach
	// peak), KP920 high, A64FX the highest (Fig 2's four hardware lines).
	if !(M2().SigmaAI <= Graviton2().SigmaAI &&
		Graviton2().SigmaAI < KP920().SigmaAI &&
		KP920().SigmaAI < A64FX().SigmaAI) {
		t.Error("σ_AI ordering diverges from the paper's Fig 2 narrative")
	}
}

func TestRotationRelevantWindows(t *testing.T) {
	// Rotating register allocation helps KP920 (no renaming of WAR) but
	// not Graviton2/M2 (§V-B trend 1).
	if KP920().RenameWAR {
		t.Error("KP920 should expose WAR hazards")
	}
	if !Graviton2().RenameWAR || !M2().RenameWAR {
		t.Error("Graviton2/M2 should rename away WAR hazards")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"KP920", "Graviton2", "Altra", "M2", "A64FX", "Didactic"} {
		c, err := ByName(name)
		if err != nil || c.Name != name {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("Xeon"); err == nil {
		t.Error("ByName accepted an unknown chip")
	}
}

func TestAllOrder(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d chips", len(all))
	}
	want := []string{"KP920", "Graviton2", "Altra", "M2", "A64FX"}
	for i, c := range all {
		if c.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s (Table IV order)", i, c.Name, want[i])
		}
	}
}

func TestVecBytesAndString(t *testing.T) {
	if A64FX().VecBytes() != 64 || KP920().VecBytes() != 16 {
		t.Error("vector widths wrong")
	}
	if KP920().String() == "" {
		t.Error("empty String()")
	}
	if !A64FX().SVE || KP920().SVE {
		t.Error("SVE flags wrong")
	}
}

func TestNUMATopology(t *testing.T) {
	if A64FX().NUMAGroups != 4 {
		t.Error("A64FX should have 4 CMGs")
	}
	if Altra().NUMAGroups != 2 {
		t.Error("Altra should have 2 NUMA sockets")
	}
	if A64FX().NUMACrossPenalty <= Altra().NUMACrossPenalty {
		t.Error("A64FX ring-bus penalty should exceed Altra's")
	}
}

func TestCacheSpecExists(t *testing.T) {
	if M2().L3.Exists() {
		t.Error("M2 has no L3 (Table IV)")
	}
	if !KP920().L3.Exists() || !KP920().L3.Shared {
		t.Error("KP920 L3 is 32M shared (Table IV)")
	}
	if !A64FX().L2.Shared {
		t.Error("A64FX L2 is CMG-shared")
	}
}

func TestGraviton3(t *testing.T) {
	g3, err := ByName("Graviton3")
	if err != nil {
		t.Fatal(err)
	}
	if !g3.SVE || g3.Lanes != 8 {
		t.Error("Graviton3 should be 256-bit SVE (8 float32 lanes)")
	}
	// §III-A says σ_lane is 16 for "SVE-supporting architectures like
	// A64FX and Graviton3" at 512 bits; Graviton3's SVE is 256-bit, so 8.
	if g3.PeakGFLOPS() != 2.6*2*8*2 {
		t.Errorf("Graviton3 peak %g", g3.PeakGFLOPS())
	}
	// Not part of the Table IV evaluation set.
	for _, c := range All() {
		if c.Name == "Graviton3" {
			t.Error("Graviton3 must not appear in All()")
		}
	}
}
