package hw

// This file extends the chip descriptions into a shared contention
// model. The NUMA/CMG knobs on Chip (NUMAGroups, NUMACrossPenalty,
// SyncFrac) were originally consumed only by the closed-form analytic
// estimate; Topology gives them an operational reading — cores mapped
// to groups, per-group memory bandwidth, span and synchronization
// penalties — that the analytic model (core.Estimate) and the
// schedule-driven simulator (internal/vtime) both build on. Keeping one
// implementation here is what makes the cross-validation between the
// two meaningful: they may only disagree through scheduling, never
// through topology arithmetic.

// Topology is the contention view of a chip: cores grouped into
// NUMA/CMG domains that share a memory path. The zero value is not
// usable; construct with NewTopology.
type Topology struct {
	chip     *Chip
	groups   int // >= 1
	perGroup int // cores per group (last group may be short)
}

// NewTopology derives the group layout of a chip. Cores fill groups
// contiguously — cores [0, perGroup) are group 0, the next perGroup
// cores group 1, and so on — matching how the paper pins threads to
// CMGs on A64FX (§V-E).
func NewTopology(chip *Chip) *Topology {
	groups := chip.NUMAGroups
	if groups < 1 {
		groups = 1
	}
	perGroup := (chip.Cores + groups - 1) / groups
	if perGroup < 1 {
		perGroup = 1
	}
	return &Topology{chip: chip, groups: groups, perGroup: perGroup}
}

// Chip returns the underlying chip description.
func (t *Topology) Chip() *Chip { return t.chip }

// Groups returns the number of NUMA/CMG groups (>= 1).
func (t *Topology) Groups() int { return t.groups }

// CoresPerGroup returns the contiguous-fill group width.
func (t *Topology) CoresPerGroup() int { return t.perGroup }

// GroupOf maps a core index to its group.
func (t *Topology) GroupOf(core int) int {
	if core < 0 {
		return 0
	}
	g := core / t.perGroup
	if g >= t.groups {
		g = t.groups - 1
	}
	return g
}

// GroupsSpanned returns how many groups a contiguous allocation of the
// given core count occupies.
func (t *Topology) GroupsSpanned(cores int) int {
	if cores <= 0 {
		return 1
	}
	used := (cores + t.perGroup - 1) / t.perGroup
	if used > t.groups {
		used = t.groups
	}
	return used
}

// SpanPenalty returns the per-core slowdown factor (>= 1) for running
// the given core count: spanning every group costs the chip's full
// NUMACrossPenalty (the A64FX ring-bus effect), intermediate spans
// interpolate linearly, and staying inside one group costs nothing.
// This is exactly the factor the analytic Eqn-13 model applies.
func (t *Topology) SpanPenalty(cores int) float64 {
	if t.groups <= 1 {
		return 1
	}
	used := t.GroupsSpanned(cores)
	if used <= 1 {
		return 1
	}
	frac := float64(used-1) / float64(t.groups-1)
	return 1 + (t.chip.NUMACrossPenalty-1)*frac
}

// SyncPenalty returns the serial-fraction slowdown (>= 1) of running on
// the given core count: barriers and work distribution add SyncFrac of
// the runtime per additional core.
func (t *Topology) SyncPenalty(cores int) float64 {
	if cores <= 1 {
		return 1
	}
	return 1 + t.chip.SyncFrac*float64(cores-1)
}

// SocketBandwidth returns the whole-socket sustained DRAM bandwidth in
// bytes per core-cycle (GB/s at GHz: the units cancel to bytes/cycle).
func (t *Topology) SocketBandwidth() float64 {
	return t.chip.DRAMGBs / t.chip.FreqGHz
}

// GroupBandwidth returns the per-group share of the socket bandwidth in
// bytes per cycle — the budget concurrent tasks inside one group debit.
func (t *Topology) GroupBandwidth() float64 {
	return t.SocketBandwidth() / float64(t.groups)
}

// ClampCores bounds a requested worker count to [1, Cores]: the model
// has no more parallelism than the chip has cores.
func (t *Topology) ClampCores(cores int) int {
	if cores < 1 {
		return 1
	}
	if cores > t.chip.Cores {
		return t.chip.Cores
	}
	return cores
}
