package hw

import (
	"math"
	"testing"
)

// TestTopologyA64FX pins the CMG layout the paper's §V-E scaling story
// rests on: 48 cores in 4 groups of 12, contiguous fill, full ring-bus
// penalty only when all four groups are in play.
func TestTopologyA64FX(t *testing.T) {
	top := NewTopology(A64FX())
	if top.Groups() != 4 || top.CoresPerGroup() != 12 {
		t.Fatalf("groups=%d perGroup=%d, want 4/12", top.Groups(), top.CoresPerGroup())
	}
	if g := top.GroupOf(11); g != 0 {
		t.Errorf("GroupOf(11)=%d, want 0", g)
	}
	if g := top.GroupOf(12); g != 1 {
		t.Errorf("GroupOf(12)=%d, want 1", g)
	}
	if g := top.GroupOf(47); g != 3 {
		t.Errorf("GroupOf(47)=%d, want 3", g)
	}
	spans := map[int]int{1: 1, 12: 1, 13: 2, 24: 2, 25: 3, 36: 3, 37: 4, 48: 4}
	for cores, want := range spans {
		if got := top.GroupsSpanned(cores); got != want {
			t.Errorf("GroupsSpanned(%d)=%d, want %d", cores, got, want)
		}
	}
	chip := top.Chip()
	if p := top.SpanPenalty(12); p != 1 {
		t.Errorf("SpanPenalty(12)=%v, want 1 (inside one CMG)", p)
	}
	if p := top.SpanPenalty(48); p != chip.NUMACrossPenalty {
		t.Errorf("SpanPenalty(48)=%v, want full penalty %v", p, chip.NUMACrossPenalty)
	}
	// Halfway span interpolates: 24 cores use 2 of 4 groups.
	want := 1 + (chip.NUMACrossPenalty-1)*(1.0/3.0)
	if p := top.SpanPenalty(24); math.Abs(p-want) > 1e-12 {
		t.Errorf("SpanPenalty(24)=%v, want %v", p, want)
	}
}

// TestTopologySingleGroup: chips with one group never pay a span
// penalty, at any core count.
func TestTopologySingleGroup(t *testing.T) {
	for _, chip := range []*Chip{KP920(), Graviton2(), M2(), Didactic()} {
		top := NewTopology(chip)
		if top.Groups() != 1 {
			t.Fatalf("%s: groups=%d", chip.Name, top.Groups())
		}
		for _, cores := range []int{1, 2, chip.Cores, chip.Cores + 10} {
			if p := top.SpanPenalty(cores); p != 1 {
				t.Errorf("%s: SpanPenalty(%d)=%v, want 1", chip.Name, cores, p)
			}
		}
		if g := top.GroupOf(chip.Cores - 1); g != 0 {
			t.Errorf("%s: GroupOf(last)=%d, want 0", chip.Name, g)
		}
	}
}

// TestTopologyBandwidthShares: the per-group budget is an even split of
// the socket bandwidth, in bytes per cycle.
func TestTopologyBandwidthShares(t *testing.T) {
	chip := A64FX()
	top := NewTopology(chip)
	socket := chip.DRAMGBs / chip.FreqGHz
	if got := top.SocketBandwidth(); math.Abs(got-socket) > 1e-12 {
		t.Errorf("SocketBandwidth=%v, want %v", got, socket)
	}
	if got := top.GroupBandwidth(); math.Abs(got-socket/4) > 1e-12 {
		t.Errorf("GroupBandwidth=%v, want %v", got, socket/4)
	}
}

// TestTopologySyncAndClamp covers the serial-fraction penalty and the
// core-count clamp.
func TestTopologySyncAndClamp(t *testing.T) {
	chip := Altra()
	top := NewTopology(chip)
	if p := top.SyncPenalty(1); p != 1 {
		t.Errorf("SyncPenalty(1)=%v, want 1", p)
	}
	want := 1 + chip.SyncFrac*float64(chip.Cores-1)
	if p := top.SyncPenalty(chip.Cores); math.Abs(p-want) > 1e-12 {
		t.Errorf("SyncPenalty(all)=%v, want %v", p, want)
	}
	if c := top.ClampCores(0); c != 1 {
		t.Errorf("ClampCores(0)=%d, want 1", c)
	}
	if c := top.ClampCores(10_000); c != chip.Cores {
		t.Errorf("ClampCores(10000)=%d, want %d", c, chip.Cores)
	}
}
