// Package hw describes the five Arm processors evaluated in the paper
// (Table IV) plus a didactic configuration matching the worked example of
// Fig 3 (all latencies 8, IPC 1). A Chip bundles the algorithm-visible
// parameters of Table III (σ_lane, σ_AI, instruction latencies and IPC)
// with the micro-architectural parameters the timing simulator needs
// (issue ports, out-of-order window, hazard behaviour) and the memory
// system shape (caches, DRAM bandwidth, NUMA/CMG topology).
//
// Table IV fixes cores, frequency, caches and SIMD width; the pipeline
// parameters are documented reconstructions from public
// micro-architecture references, chosen so that the σ_AI ordering matches
// the paper's narrative (KP920 high, Graviton2/M2 low, A64FX highest).
package hw

import "fmt"

// CacheSpec describes one cache level.
type CacheSpec struct {
	SizeBytes int  // total capacity; 0 means the level does not exist
	Ways      int  // associativity
	LineBytes int  // line size
	LatCycles int  // load-to-use latency on hit
	Shared    bool // shared across all cores (vs. per-core)
}

// Exists reports whether the level is present.
func (c CacheSpec) Exists() bool { return c.SizeBytes > 0 }

// Chip is a full machine description.
type Chip struct {
	Name    string
	Cores   int     // cores available to the benchmark (Table IV)
	FreqGHz float64 // nominal frequency

	// SIMD shape. Lanes is σ_lane: float32 elements per vector register
	// (4 for 128-bit NEON, 16 for 512-bit SVE).
	Lanes int
	SVE   bool

	// Issue resources. Ports are fully pipelined: each sustains one
	// instruction per cycle (IPC_class = 1/ports in Table III terms).
	FMAPorts   int
	LoadPorts  int
	StorePorts int
	ALUPorts   int
	IssueWidth int // total instructions issued per cycle

	// Latencies in cycles (L_fma, L_load, L_store of Table III). Load
	// latency is the L1-hit value; deeper levels come from the cache specs.
	LatFMA   int
	LatLoad  int
	LatStore int
	LatALU   int

	// Window is the scheduler's effective out-of-order depth in
	// instructions: an instruction cannot issue until the one Window
	// places earlier has completed. Small windows expose the
	// FMA→LOAD→FMA register-rotation hazard the paper optimizes away.
	Window int
	// RenameWAR reports whether the core's register renaming removes
	// write-after-read hazards on architectural registers. When false
	// (KP920, didactic model) a load overwriting a register must wait for
	// its last consumer, producing the bubbles in Fig 3(b).
	RenameWAR bool

	// σ_AI: the arithmetic-intensity threshold beyond which a
	// micro-kernel can reach peak on this chip (Fig 2).
	SigmaAI float64

	L1D CacheSpec
	L2  CacheSpec
	L3  CacheSpec

	// DRAM behaviour.
	DRAMLatCycles int
	DRAMGBs       float64 // sustained bandwidth, whole socket
	L3GBs         float64 // shared-cache bandwidth for the roofline (0 if no L3)

	// NUMA/CMG topology for the multi-core model. Groups is the number of
	// core-memory groups sharing a memory path (A64FX: 4 CMGs; Altra: 2
	// NUMA sockets). NUMACrossPenalty is the per-core slowdown factor
	// when a computation spans every group — the ring-bus/ccNUMA effect
	// that caps A64FX strong scaling in §V-E; intermediate spans
	// interpolate linearly. SyncFrac is the serial fraction added per
	// extra core (barriers, work distribution).
	NUMAGroups       int
	NUMACrossPenalty float64 // >= 1; per-core slowdown at full-machine span
	SyncFrac         float64 // serial overhead fraction per additional core

	// Launch overhead in cycles for calling a micro-kernel (T_launch in
	// Eqn 4): branch+call bookkeeping in the surrounding loop nest.
	LaunchCycles int
}

// PeakGFLOPS returns the single-core peak in GFLOP/s: each FMA port
// retires Lanes fused multiply-adds (2 FLOPs each) per cycle.
func (c *Chip) PeakGFLOPS() float64 {
	return c.FreqGHz * float64(c.FMAPorts) * float64(c.Lanes) * 2
}

// PeakGFLOPSAllCores returns the socket peak.
func (c *Chip) PeakGFLOPSAllCores() float64 { return c.PeakGFLOPS() * float64(c.Cores) }

// VecBytes returns the vector register width in bytes.
func (c *Chip) VecBytes() int { return c.Lanes * 4 }

// String implements fmt.Stringer.
func (c *Chip) String() string {
	return fmt.Sprintf("%s (%d cores @ %.2f GHz, %d-lane SIMD, %.1f GF/s/core)",
		c.Name, c.Cores, c.FreqGHz, c.Lanes, c.PeakGFLOPS())
}

// KP920 models the Huawei Kunpeng 920 SoC partition used in the paper:
// 8 cores, 2.6 GHz, NEON, 64 KiB L1d, 512 KiB L2, 32 MiB shared L3.
// TaiShan v110 cores have a comparatively small scheduler window and do
// not hide the rotation hazard, matching the paper's observation that
// rotating register allocation gains ~3% on KP920 only.
func KP920() *Chip {
	return &Chip{
		Name: "KP920", Cores: 8, FreqGHz: 2.6,
		Lanes:    4,
		FMAPorts: 2, LoadPorts: 2, StorePorts: 1, ALUPorts: 3, IssueWidth: 4,
		LatFMA: 5, LatLoad: 4, LatStore: 2, LatALU: 1,
		Window: 56, RenameWAR: false,
		SigmaAI:       6.0,
		L1D:           CacheSpec{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, LatCycles: 4},
		L2:            CacheSpec{SizeBytes: 512 << 10, Ways: 8, LineBytes: 64, LatCycles: 17},
		L3:            CacheSpec{SizeBytes: 32 << 20, Ways: 16, LineBytes: 64, LatCycles: 42, Shared: true},
		DRAMLatCycles: 190, DRAMGBs: 110, L3GBs: 260,
		NUMAGroups: 1, NUMACrossPenalty: 1, SyncFrac: 0.0028,
		LaunchCycles: 12,
	}
}

// Graviton2 models the AWS Graviton2 (Neoverse N1): 16 cores, 2.5 GHz,
// NEON, 64 KiB L1d, 1 MiB L2, 32 MiB shared L3. The N1's large OoO window
// and full renaming hide the rotation hazard (σ_AI is low).
func Graviton2() *Chip {
	return &Chip{
		Name: "Graviton2", Cores: 16, FreqGHz: 2.5,
		Lanes:    4,
		FMAPorts: 2, LoadPorts: 2, StorePorts: 1, ALUPorts: 3, IssueWidth: 4,
		LatFMA: 4, LatLoad: 4, LatStore: 1, LatALU: 1,
		Window: 128, RenameWAR: true,
		SigmaAI:       4.0,
		L1D:           CacheSpec{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, LatCycles: 4},
		L2:            CacheSpec{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, LatCycles: 13},
		L3:            CacheSpec{SizeBytes: 32 << 20, Ways: 16, LineBytes: 64, LatCycles: 38, Shared: true},
		DRAMLatCycles: 170, DRAMGBs: 190, L3GBs: 480,
		NUMAGroups: 1, NUMACrossPenalty: 1, SyncFrac: 0.0012,
		LaunchCycles: 10,
	}
}

// Altra models the Ampere Altra (Neoverse N1): 70 cores at 3.0 GHz in the
// paper's configuration, two NUMA sockets.
func Altra() *Chip {
	return &Chip{
		Name: "Altra", Cores: 70, FreqGHz: 3.0,
		Lanes:    4,
		FMAPorts: 2, LoadPorts: 2, StorePorts: 1, ALUPorts: 3, IssueWidth: 4,
		LatFMA: 4, LatLoad: 4, LatStore: 1, LatALU: 1,
		Window: 128, RenameWAR: true,
		SigmaAI:       4.5,
		L1D:           CacheSpec{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, LatCycles: 4},
		L2:            CacheSpec{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, LatCycles: 13},
		L3:            CacheSpec{SizeBytes: 32 << 20, Ways: 16, LineBytes: 64, LatCycles: 44, Shared: true},
		DRAMLatCycles: 200, DRAMGBs: 300, L3GBs: 700,
		NUMAGroups: 2, NUMACrossPenalty: 1.18, SyncFrac: 0.0002,
		LaunchCycles: 10,
	}
}

// M2 models the Apple M2 performance cluster: 4 P-cores at 3.49 GHz, four
// 128-bit FP pipes, very deep OoO window, 16 MiB shared L2, no L3.
func M2() *Chip {
	return &Chip{
		Name: "M2", Cores: 4, FreqGHz: 3.49,
		Lanes:    4,
		FMAPorts: 4, LoadPorts: 3, StorePorts: 2, ALUPorts: 6, IssueWidth: 8,
		LatFMA: 3, LatLoad: 3, LatStore: 1, LatALU: 1,
		Window: 288, RenameWAR: true,
		SigmaAI:       3.5,
		L1D:           CacheSpec{SizeBytes: 128 << 10, Ways: 8, LineBytes: 64, LatCycles: 3},
		L2:            CacheSpec{SizeBytes: 16 << 20, Ways: 16, LineBytes: 128, LatCycles: 15, Shared: true},
		DRAMLatCycles: 110, DRAMGBs: 100, L3GBs: 0,
		NUMAGroups: 1, NUMACrossPenalty: 1, SyncFrac: 0.022,
		LaunchCycles: 8,
	}
}

// A64FX models the Fujitsu A64FX: 48 compute cores at 2.2 GHz, 512-bit
// SVE (16 float32 lanes), per-CMG 8 MiB L2, no L3, HBM2. Long FP latency
// and an effectively narrow FP scheduler give it the highest σ_AI; four
// CMGs on a ring bus limit strong scaling (§V-E).
func A64FX() *Chip {
	return &Chip{
		Name: "A64FX", Cores: 48, FreqGHz: 2.2,
		Lanes: 16, SVE: true,
		FMAPorts: 2, LoadPorts: 2, StorePorts: 1, ALUPorts: 2, IssueWidth: 4,
		LatFMA: 9, LatLoad: 8, LatStore: 2, LatALU: 1,
		Window: 128, RenameWAR: false,
		SigmaAI:       8.0,
		L1D:           CacheSpec{SizeBytes: 64 << 10, Ways: 4, LineBytes: 256, LatCycles: 8},
		L2:            CacheSpec{SizeBytes: 8 << 20, Ways: 16, LineBytes: 256, LatCycles: 37, Shared: true},
		DRAMLatCycles: 260, DRAMGBs: 1024, L3GBs: 0,
		NUMAGroups: 4, NUMACrossPenalty: 3.25, SyncFrac: 0.0008,
		LaunchCycles: 16,
	}
}

// Graviton3 models the AWS Graviton3 (Neoverse V1): 64 cores at 2.6 GHz
// with 256-bit SVE (8 float32 lanes). The paper names it alongside A64FX
// as an SVE target of the generator (§III-A); it is not part of the
// Table IV evaluation set, so All() excludes it, but ByName resolves it
// for experimentation.
func Graviton3() *Chip {
	return &Chip{
		Name: "Graviton3", Cores: 64, FreqGHz: 2.6,
		Lanes: 8, SVE: true,
		FMAPorts: 2, LoadPorts: 2, StorePorts: 1, ALUPorts: 4, IssueWidth: 8,
		LatFMA: 4, LatLoad: 4, LatStore: 1, LatALU: 1,
		Window: 256, RenameWAR: true,
		SigmaAI:       4.0,
		L1D:           CacheSpec{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, LatCycles: 4},
		L2:            CacheSpec{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, LatCycles: 13},
		L3:            CacheSpec{SizeBytes: 32 << 20, Ways: 16, LineBytes: 64, LatCycles: 40, Shared: true},
		DRAMLatCycles: 160, DRAMGBs: 300, L3GBs: 600,
		NUMAGroups: 1, NUMACrossPenalty: 1, SyncFrac: 0.0006,
		LaunchCycles: 10,
	}
}

// Didactic returns the teaching configuration of the paper's Fig 3:
// load, store and FMA all take 8 cycles with IPC 1 (one port each), no
// renaming, and a window just large enough to express the described
// overlap. The perfmodel tests reproduce the paper's cycle counts
// (20·k_c + 13·⌊k̂_c⌋ + 65 for the 5×16 tile) on this configuration.
func Didactic() *Chip {
	return &Chip{
		Name: "Didactic", Cores: 1, FreqGHz: 1.0,
		Lanes:    4,
		FMAPorts: 1, LoadPorts: 1, StorePorts: 1, ALUPorts: 1, IssueWidth: 4,
		LatFMA: 8, LatLoad: 8, LatStore: 8, LatALU: 1,
		Window: 48, RenameWAR: false,
		SigmaAI:       6.15,
		L1D:           CacheSpec{SizeBytes: 64 << 10, Ways: 4, LineBytes: 64, LatCycles: 8},
		L2:            CacheSpec{SizeBytes: 512 << 10, Ways: 8, LineBytes: 64, LatCycles: 24},
		DRAMLatCycles: 100, DRAMGBs: 50, L3GBs: 0,
		NUMAGroups: 1, NUMACrossPenalty: 1, SyncFrac: 0.002,
		LaunchCycles: 10,
	}
}

// All returns the five evaluated chips in the paper's Table IV order.
func All() []*Chip {
	return []*Chip{KP920(), Graviton2(), Altra(), M2(), A64FX()}
}

// ByName looks up a chip by its (case-sensitive) name.
func ByName(name string) (*Chip, error) {
	for _, c := range append(All(), Graviton3(), Didactic()) {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("hw: unknown chip %q", name)
}
