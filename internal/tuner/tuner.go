// Package tuner searches the algorithm parameter space of Table III —
// cache block shape (m_c, n_c, k_c), loop order σ_order and packing mode
// σ_packing — for a given problem and chip, standing in for the paper's
// patched-TVM auto-tuning flow (§IV-C). Candidates are first scored with
// the analytic Eqn-13 performance model; only the ones within a pruning
// ratio of the best model score are evaluated on the cycle simulator.
// The paper reports that this pruning "drops the tuning time
// dramatically"; the Result records both counters so the effect is
// measurable (examples/tuning).
package tuner

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autogemm/internal/cache"
	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/perfmodel"
	"autogemm/internal/plan"
	"autogemm/internal/tiling"
)

// Config controls a tuning run.
type Config struct {
	Chip    *hw.Chip
	M, N, K int

	// MaxEvals caps the simulator evaluations (0 = 24).
	MaxEvals int
	// PruneRatio keeps candidates whose model cost is within this factor
	// of the best model cost (0 = 1.20). Setting UseModel false disables
	// pruning entirely, evaluating up to MaxEvals candidates blindly —
	// the unpatched-TVM comparison mode.
	PruneRatio float64
	UseModel   bool

	// Anneal additionally refines the model-best candidate with a short
	// deterministic simulated-annealing walk over neighbouring
	// configurations (the AutoTVM-style search of §II-B).
	Anneal bool
	Seed   int64
}

// Candidate is one point of the search space.
type Candidate struct {
	MC, NC, KC int
	Order      core.LoopOrder
	Pack       core.PackMode
}

// Options converts the candidate into core options with the library's
// optimizations enabled.
func (c Candidate) Options() core.Options {
	return core.Options{
		MC: c.MC, NC: c.NC, KC: c.KC, Order: c.Order, Pack: c.Pack,
		Rotate: true, Fuse: true,
	}
}

// Record is one evaluated candidate.
type Record struct {
	Candidate Candidate
	ModelCost float64
	Cycles    float64
	GFLOPS    float64
}

// Result summarizes a tuning run.
type Result struct {
	Best      Candidate
	Estimate  core.Estimate
	Records   []Record // evaluated candidates, best first
	Generated int      // candidates enumerated
	Pruned    int      // rejected by the model before simulation
	Evaluated int      // simulator evaluations
}

// Tune searches the space and returns the best configuration found.
func Tune(cfg Config) (Result, error) {
	if cfg.Chip == nil || cfg.M <= 0 || cfg.N <= 0 || cfg.K <= 0 {
		return Result{}, fmt.Errorf("tuner: invalid problem")
	}
	if cfg.MaxEvals <= 0 {
		cfg.MaxEvals = 24
	}
	if cfg.PruneRatio <= 0 {
		cfg.PruneRatio = 1.20
	}

	cands := enumerate(cfg)
	res := Result{Generated: len(cands)}

	// The model cost is independent of the loop order, and block shapes
	// repeat across candidates; memoize per (m_c, n_c, k_c, pack).
	type costKey struct {
		mc, nc, kc int
		pack       core.PackMode
	}
	costMemo := make(map[costKey]float64)
	scoredCands := make([]scored, 0, len(cands))
	for _, c := range cands {
		key := costKey{c.MC, c.NC, c.KC, c.Pack}
		cost, ok := costMemo[key]
		if !ok {
			cost = modelCost(cfg.Chip, cfg.M, cfg.N, cfg.K, c)
			costMemo[key] = cost
		}
		scoredCands = append(scoredCands, scored{c, cost})
	}
	sort.SliceStable(scoredCands, func(i, j int) bool { return scoredCands[i].cost < scoredCands[j].cost })

	keep := scoredCands
	if cfg.UseModel && len(scoredCands) > 0 {
		limit := scoredCands[0].cost * cfg.PruneRatio
		n := sort.Search(len(scoredCands), func(i int) bool { return scoredCands[i].cost > limit })
		keep = scoredCands[:n]
		res.Pruned = len(scoredCands) - n
	}
	if len(keep) > cfg.MaxEvals {
		res.Pruned += len(keep) - cfg.MaxEvals
		keep = keep[:cfg.MaxEvals]
	}

	if cfg.Anneal && cfg.UseModel && len(keep) > 0 {
		keep = annealAround(cfg, keep, cfg.MaxEvals)
	}

	bestCycles := math.Inf(1)
	var bestEst core.Estimate
	for _, sc := range keep {
		plan, err := core.NewPlan(cfg.Chip, cfg.M, cfg.N, cfg.K, sc.c.Options())
		if err != nil {
			continue
		}
		est, err := plan.Estimate()
		if err != nil {
			continue
		}
		res.Evaluated++
		res.Records = append(res.Records, Record{
			Candidate: sc.c, ModelCost: sc.cost, Cycles: est.Cycles, GFLOPS: est.GFLOPS,
		})
		if est.Cycles < bestCycles {
			bestCycles = est.Cycles
			bestEst = est
			res.Best = sc.c
		}
	}
	if res.Evaluated == 0 {
		return res, fmt.Errorf("tuner: no evaluable candidates for %dx%dx%d", cfg.M, cfg.N, cfg.K)
	}
	sort.SliceStable(res.Records, func(i, j int) bool { return res.Records[i].Cycles < res.Records[j].Cycles })
	res.Estimate = bestEst
	return res, nil
}

// TunePlan runs Tune and materializes the winner as a serializable
// execution plan (Source = "tuner"), ready for an engine's plan cache
// or an on-disk registry: the tuner is a plan producer, the engine a
// plan consumer, and this function is the seam between them.
func TunePlan(cfg Config) (*plan.Plan, Result, error) {
	res, err := Tune(cfg)
	if err != nil {
		return nil, res, err
	}
	rec, err := core.Produce(cfg.Chip, cfg.M, cfg.N, cfg.K, res.Best.Options())
	if err != nil {
		return nil, res, err
	}
	return rec.WithSource(plan.SourceTuner), res, nil
}

// enumerate builds the candidate grid: block extents from the divisor
// sets of M, N, K (the paper searches m_c | M etc.), every loop order,
// and the three packing modes, deduplicated.
func enumerate(cfg Config) []Candidate {
	lanes := cfg.Chip.Lanes
	mcs := blockSizes(cfg.M, 1, 256)
	ncs := blockSizes(cfg.N, lanes, 512)
	kcs := blockSizes(cfg.K, 1, 256)
	var out []Candidate
	for _, mc := range mcs {
		for _, nc := range ncs {
			for _, kc := range kcs {
				for _, order := range core.AllLoopOrders() {
					for _, pack := range []core.PackMode{core.PackNone, core.PackOnline, core.PackOffline} {
						out = append(out, Candidate{MC: mc, NC: nc, KC: kc, Order: order, Pack: pack})
					}
				}
			}
		}
	}
	return out
}

// blockSizes returns candidate block extents for a dimension: divisors
// (the paper's constraint n % n_c == 0), capped, quantized to min, plus
// the full extent.
func blockSizes(n, quantum, cap int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if v < quantum {
			v = quantum
		}
		v = v / quantum * quantum
		if v <= 0 || v > cap && v != n || seen[v] {
			return
		}
		seen[v] = true
		out = append(out, v)
	}
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			add(d)
			add(n / d)
		}
	}
	add(n)
	sort.Ints(out)
	// Keep the grid tractable: at most 8 sizes, spread across the range.
	if len(out) > 8 {
		step := float64(len(out)-1) / 7
		sel := make([]int, 0, 8)
		for i := 0; i < 8; i++ {
			sel = append(sel, out[int(math.Round(float64(i)*step))])
		}
		out = sel
	}
	return out
}

// modelCost scores a candidate with the analytic model: the Eqn-13 DMT
// cost of each distinct block at its residency load latency, plus the
// packing bytes — no simulation.
func modelCost(chip *hw.Chip, m, n, k int, c Candidate) float64 {
	params := perfmodel.FromChip(chip)
	hier := cache.NewHierarchy(chip)
	opt := perfmodel.Opt{Rotate: true, Fuse: true}

	mBlocks := blocksOf(m, c.MC)
	nBlocks := blocksOf(n, c.NC)
	kBlocks := blocksOf(k, c.KC)

	total := 0.0
	for _, mb := range mBlocks {
		for _, nb := range nBlocks {
			for _, kb := range kBlocks {
				ws := kb.size*quantUp(nb.size, chip.Lanes)*4 + 12*kb.size*4
				if c.Pack == core.PackNone && n > quantUp(nb.size, chip.Lanes) {
					ws *= 2
				}
				lat := hier.LatencyOfLevel(hier.ResidencyLevel(ws))
				p := params.WithLoadLatency(float64(lat))
				d := tiling.DMT{Params: p, Opt: opt}
				tl, err := d.Tile(mb.size, nb.size, kb.size)
				if err != nil {
					return math.Inf(1)
				}
				cost := tl.Cost(p, kb.size, opt) * float64(mb.count*nb.count*kb.count)
				if c.Pack == core.PackOnline {
					bytes := float64(mb.size*kb.size+kb.size*nb.size) * 4
					cost += 2 * bytes / (chip.DRAMGBs / chip.FreqGHz) * float64(mb.count*nb.count*kb.count)
				}
				total += cost
			}
		}
	}
	return total
}

type blockDim struct{ size, count int }

// blocksOf decomposes a dimension into block sizes with multiplicity.
func blocksOf(n, bs int) []blockDim {
	if bs <= 0 || bs >= n {
		return []blockDim{{n, 1}}
	}
	full := n / bs
	rem := n % bs
	out := []blockDim{{bs, full}}
	if rem > 0 {
		out = append(out, blockDim{rem, 1})
	}
	return out
}

// scored pairs a candidate with its model cost.
type scored struct {
	c    Candidate
	cost float64
}

// annealAround runs a short deterministic simulated-annealing walk in
// model-cost space starting from the best pruned candidate, merging any
// improvements it finds into the evaluation set.
func annealAround(cfg Config, keep []scored, budget int) []scored {
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	cur := keep[0]
	temp := cur.cost * 0.25
	seen := map[Candidate]bool{}
	for _, k := range keep {
		seen[k.c] = true
	}
	for step := 0; step < 64; step++ {
		next := mutate(cfg, cur.c, rng)
		cost := modelCost(cfg.Chip, cfg.M, cfg.N, cfg.K, next)
		if cost < cur.cost || rng.Float64() < math.Exp((cur.cost-cost)/math.Max(temp, 1)) {
			cur = scored{next, cost}
			if !seen[next] && len(keep) < budget {
				keep = append(keep, cur)
				seen[next] = true
			}
		}
		temp *= 0.92
	}
	return keep
}

// mutate perturbs one parameter of a candidate.
func mutate(cfg Config, c Candidate, rng *rand.Rand) Candidate {
	lanes := cfg.Chip.Lanes
	switch rng.Intn(5) {
	case 0:
		c.MC = clampDim(c.MC+(rng.Intn(3)-1)*8, 1, cfg.M)
	case 1:
		c.NC = clampDim(c.NC+(rng.Intn(3)-1)*2*lanes, lanes, quantUp(cfg.N, lanes))
	case 2:
		c.KC = clampDim(c.KC+(rng.Intn(3)-1)*8, 1, cfg.K)
	case 3:
		c.Order = core.AllLoopOrders()[rng.Intn(6)]
	default:
		c.Pack = core.PackMode(rng.Intn(3))
	}
	return c
}

func clampDim(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func quantUp(n, lanes int) int { return (n + lanes - 1) / lanes * lanes }
