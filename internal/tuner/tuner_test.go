package tuner

import (
	"testing"

	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// TestTuneImprovesOnDefault: the tuned configuration is at least as fast
// as the automatic defaults on an awkward shape.
func TestTuneImprovesOnDefault(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 60, 200, 36
	res, err := Tune(Config{Chip: chip, M: m, N: n, K: k, UseModel: true, MaxEvals: 16})
	if err != nil {
		t.Fatal(err)
	}
	def, err := core.NewPlan(chip, m, n, k, core.AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	defEst, err := def.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Cycles > defEst.Cycles*1.02 {
		t.Errorf("tuned %.0f cycles worse than default %.0f", res.Estimate.Cycles, defEst.Cycles)
	}
}

// TestPruningReducesEvaluations: with the Eqn-13 model on, far fewer
// candidates reach the simulator, and the result is not meaningfully
// worse — the paper's §IV-C claim.
func TestPruningReducesEvaluations(t *testing.T) {
	chip := hw.Graviton2()
	const m, n, k = 64, 64, 64
	pruned, err := Tune(Config{Chip: chip, M: m, N: n, K: k, UseModel: true, MaxEvals: 12})
	if err != nil {
		t.Fatal(err)
	}
	blind, err := Tune(Config{Chip: chip, M: m, N: n, K: k, UseModel: false, MaxEvals: 60})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Pruned == 0 {
		t.Error("model pruning rejected nothing")
	}
	if pruned.Evaluated >= blind.Evaluated {
		t.Errorf("pruned run evaluated %d >= blind run %d", pruned.Evaluated, blind.Evaluated)
	}
	if pruned.Estimate.Cycles > blind.Estimate.Cycles*1.10 {
		t.Errorf("pruned best %.0f more than 10%% worse than blind best %.0f",
			pruned.Estimate.Cycles, blind.Estimate.Cycles)
	}
}

// TestTunedPlanIsCorrect: the tuned parameters still compute the right
// answer.
func TestTunedPlanIsCorrect(t *testing.T) {
	chip := hw.M2()
	const m, n, k = 26, 36, 20
	res, err := Tune(Config{Chip: chip, M: m, N: n, K: k, UseModel: true, MaxEvals: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(chip, m, n, k, res.Best.Options())
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 1)
	refgemm.Fill(b, k, n, n, 2)
	refgemm.Fill(c, m, n, n, 3)
	want := make([]float32, m*n)
	copy(want, c)
	refgemm.GEMM(m, n, k, a, k, b, n, want, n)
	if err := plan.Run(c, a, b); err != nil {
		t.Fatal(err)
	}
	if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
		t.Errorf("tuned plan wrong: %.3g", e)
	}
}

// TestAnnealDeterministic: annealing with the same seed yields the same
// result.
func TestAnnealDeterministic(t *testing.T) {
	cfg := Config{Chip: hw.KP920(), M: 40, N: 56, K: 24,
		UseModel: true, Anneal: true, Seed: 7, MaxEvals: 10}
	r1, err := Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best != r2.Best || r1.Estimate.Cycles != r2.Estimate.Cycles {
		t.Errorf("annealing nondeterministic: %+v vs %+v", r1.Best, r2.Best)
	}
}

// TestTuneValidation rejects degenerate problems.
func TestTuneValidation(t *testing.T) {
	if _, err := Tune(Config{Chip: hw.KP920(), M: 0, N: 4, K: 4}); err == nil {
		t.Error("accepted M=0")
	}
	if _, err := Tune(Config{M: 4, N: 4, K: 4}); err == nil {
		t.Error("accepted nil chip")
	}
}

// TestBlockSizes checks the divisor-based grid generation.
func TestBlockSizes(t *testing.T) {
	sizes := blockSizes(64, 4, 256)
	if len(sizes) == 0 || len(sizes) > 8 {
		t.Fatalf("blockSizes(64) = %v", sizes)
	}
	for _, s := range sizes {
		if s%4 != 0 {
			t.Errorf("size %d not lane-quantized", s)
		}
	}
	last := sizes[len(sizes)-1]
	if last != 64 {
		t.Errorf("full extent missing: %v", sizes)
	}
}

// TestRecordsSorted: records come back best-first.
func TestRecordsSorted(t *testing.T) {
	res, err := Tune(Config{Chip: hw.KP920(), M: 32, N: 32, K: 32, UseModel: true, MaxEvals: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Cycles < res.Records[i-1].Cycles {
			t.Error("records not sorted by cycles")
		}
	}
	if res.Generated < res.Evaluated {
		t.Error("generated < evaluated")
	}
}

// TestTunerFindsGlobalOptimum: on a problem small enough to evaluate the
// ENTIRE candidate space on the simulator, the model-pruned search
// returns a configuration within a whisker of the true optimum.
func TestTunerFindsGlobalOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep")
	}
	chip := hw.KP920()
	const m, n, k = 16, 16, 16
	full, err := Tune(Config{Chip: chip, M: m, N: n, K: k, UseModel: false, MaxEvals: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if full.Evaluated < full.Generated/2 {
		t.Fatalf("exhaustive run evaluated %d of %d", full.Evaluated, full.Generated)
	}
	pruned, err := Tune(Config{Chip: chip, M: m, N: n, K: k, UseModel: true, MaxEvals: 16})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Estimate.Cycles > full.Estimate.Cycles*1.05 {
		t.Errorf("pruned best %.0f cycles vs global optimum %.0f (>5%% off)",
			pruned.Estimate.Cycles, full.Estimate.Cycles)
	}
}
