package dnn

import (
	"testing"

	"autogemm/internal/baselines"
	"autogemm/internal/hw"
	"autogemm/internal/workload"
)

// TestFig12Speedups: replacing OpenBLAS with autoGEMM inside the
// framework speeds up every model; KP920 shows the largest gains (the
// paper reports 1.30x there and 1.08–1.15x on Graviton2).
func TestFig12Speedups(t *testing.T) {
	auto := baselines.AutoGEMM()
	kp := New(hw.KP920(), 1)
	g2 := New(hw.Graviton2(), 1)
	for _, model := range workload.Models() {
		skp, err := kp.Speedup(model, auto)
		if err != nil {
			t.Fatalf("%s on KP920: %v", model.Name, err)
		}
		sg2, err := g2.Speedup(model, auto)
		if err != nil {
			t.Fatalf("%s on Graviton2: %v", model.Name, err)
		}
		if skp < 1.05 || skp > 2.2 {
			t.Errorf("%s KP920 end-to-end speedup %.2fx out of the Fig 12 band", model.Name, skp)
		}
		if sg2 < 1.0 || sg2 > 1.8 {
			t.Errorf("%s Graviton2 end-to-end speedup %.2fx out of band", model.Name, sg2)
		}
	}
}

// TestOtherTimeIdentical: T_other is the same whichever GEMM backend is
// plugged in (Fig 12's framing).
func TestOtherTimeIdentical(t *testing.T) {
	e := New(hw.KP920(), 1)
	model := workload.Models()[0]
	a, err := e.Run(model, baselines.OpenBLAS())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(model, baselines.AutoGEMM())
	if err != nil {
		t.Fatal(err)
	}
	if a.OtherSeconds != b.OtherSeconds {
		t.Errorf("T_other differs across backends: %g vs %g", a.OtherSeconds, b.OtherSeconds)
	}
	if b.GEMMSeconds >= a.GEMMSeconds {
		t.Errorf("autoGEMM T_GEMM (%g) not below OpenBLAS (%g)", b.GEMMSeconds, a.GEMMSeconds)
	}
	if a.Total() <= a.GEMMSeconds {
		t.Error("total should include T_other")
	}
}

// TestGEMMSecondsPositive: every model produces a positive GEMM time and
// unsupported providers error out.
func TestGEMMSecondsPositive(t *testing.T) {
	e := New(hw.M2(), 1)
	for _, model := range workload.Models() {
		s, err := e.GEMMSeconds(model, baselines.AutoGEMM())
		if err != nil {
			t.Fatalf("%s: %v", model.Name, err)
		}
		if s <= 0 {
			t.Errorf("%s: non-positive GEMM time", model.Name)
		}
	}
	if _, err := e.GEMMSeconds(workload.Models()[0], baselines.LibShalom()); err == nil {
		t.Error("LibShalom on M2 should be unsupported")
	}
}

// TestDefaultCores: New clamps non-positive core counts to one.
func TestDefaultCores(t *testing.T) {
	if New(hw.KP920(), 0).Cores != 1 || New(hw.KP920(), -3).Cores != 1 {
		t.Error("core clamping broken")
	}
	if New(hw.KP920(), 4).Cores != 4 {
		t.Error("explicit cores ignored")
	}
}
