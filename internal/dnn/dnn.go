// Package dnn is the minimal inference-framework substitute for
// Tencent's TNN used in the paper's Fig 12 end-to-end evaluation: conv
// and FC operators are lowered to GEMM and dispatched to a pluggable
// provider, while non-GEMM operators (pooling, activation, eltwise) have
// a fixed cost that is identical across providers — exactly the
// T_GEMM / T_other decomposition Fig 12 reports.
package dnn

import (
	"fmt"

	"autogemm/internal/baselines"
	"autogemm/internal/hw"
	"autogemm/internal/workload"
)

// Profile is the end-to-end timing decomposition of one model inference.
type Profile struct {
	Model        string
	Provider     string
	GEMMSeconds  float64
	OtherSeconds float64
}

// Total returns the end-to-end inference time.
func (p Profile) Total() float64 { return p.GEMMSeconds + p.OtherSeconds }

// Engine executes DNN models on a simulated chip through a GEMM provider.
type Engine struct {
	Chip  *hw.Chip
	Cores int

	refCache map[string]float64 // OpenBLAS reference time per model
}

// New builds an engine; cores <= 0 uses a single core (TNN's mobile
// default) and otherwise the given count.
func New(chip *hw.Chip, cores int) *Engine {
	if cores <= 0 {
		cores = 1
	}
	return &Engine{Chip: chip, Cores: cores, refCache: make(map[string]float64)}
}

// GEMMSeconds sums the provider's projected time over the model's
// conv/FC layers.
func (e *Engine) GEMMSeconds(model workload.DNNModel, p baselines.Provider) (float64, error) {
	total := 0.0
	for _, lg := range model.GEMMs {
		s := lg.Shape
		if !p.Supports(e.Chip, s.M, s.N, s.K) {
			return 0, fmt.Errorf("dnn: %s cannot run layer %s on %s", p.Name, s, e.Chip.Name)
		}
		plan, err := p.Plan(e.Chip, s.M, s.N, s.K)
		if err != nil {
			return 0, err
		}
		plan.Opts.Cores = e.Cores
		est, err := plan.Estimate()
		if err != nil {
			return 0, err
		}
		total += est.Seconds * float64(lg.Count)
	}
	return total, nil
}

// Run profiles one model with the given provider. The non-GEMM operator
// time is anchored to the OpenBLAS backend (Fig 12 normalizes to it and
// notes T_other is identical across backends): it is the model's
// OtherFrac share of the OpenBLAS-backend end-to-end time.
func (e *Engine) Run(model workload.DNNModel, p baselines.Provider) (Profile, error) {
	ref, ok := e.refCache[model.Name]
	if !ok {
		var err error
		ref, err = e.GEMMSeconds(model, baselines.OpenBLAS())
		if err != nil {
			return Profile{}, err
		}
		e.refCache[model.Name] = ref
	}
	other := ref * model.OtherFrac / (1 - model.OtherFrac)
	gemm, err := e.GEMMSeconds(model, p)
	if err != nil {
		return Profile{}, err
	}
	return Profile{Model: model.Name, Provider: p.Name, GEMMSeconds: gemm, OtherSeconds: other}, nil
}

// Speedup returns the end-to-end speedup of provider p over OpenBLAS on
// the model — the quantity Fig 12's bars encode.
func (e *Engine) Speedup(model workload.DNNModel, p baselines.Provider) (float64, error) {
	base, err := e.Run(model, baselines.OpenBLAS())
	if err != nil {
		return 0, err
	}
	with, err := e.Run(model, p)
	if err != nil {
		return 0, err
	}
	return base.Total() / with.Total(), nil
}
