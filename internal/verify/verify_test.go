package verify

import (
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// TestSweepAllChipsClean: the §V process passes on every evaluated chip.
func TestSweepAllChipsClean(t *testing.T) {
	for _, chip := range hw.All() {
		rep, err := Run(Config{Chip: chip, Cases: 12, MaxDim: 40, Seed: 7, Variants: true})
		if err != nil {
			t.Fatalf("%s: %v", chip.Name, err)
		}
		if len(rep.Failures) != 0 {
			for _, f := range rep.Failures {
				t.Errorf("%s", f.String())
			}
		}
		if rep.Checks == 0 {
			t.Errorf("%s: no checks performed", chip.Name)
		}
		if rep.MaxRelErr > refgemm.Tolerance {
			t.Errorf("%s: max rel err %.3g", chip.Name, rep.MaxRelErr)
		}
	}
}

// TestDeterministicCases: the same seed regenerates the same sweep.
func TestDeterministicCases(t *testing.T) {
	chip := hw.KP920()
	r1, err := Run(Config{Chip: chip, Cases: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(Config{Chip: chip, Cases: 5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Checks != r2.Checks || r1.MaxRelErr != r2.MaxRelErr {
		t.Errorf("sweep not deterministic: %+v vs %+v", r1, r2)
	}
}

// TestConfigValidation rejects a nil chip and defaults the counts.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("nil chip accepted")
	}
	rep, err := Run(Config{Chip: hw.M2(), Cases: 0, MaxDim: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cases != 25 {
		t.Errorf("default cases = %d, want 25", rep.Cases)
	}
}

// TestFailureString renders both error kinds.
func TestFailureString(t *testing.T) {
	f := Failure{Case: Case{M: 1, N: 2, K: 3}, Provider: "X", Chip: "Y", RelErr: 0.5}
	if f.String() == "" {
		t.Error("empty failure string")
	}
}
