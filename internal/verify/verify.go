// Package verify implements the paper's §V correctness process as a
// harness: "the correctness of our implementation has been verified
// against all other libraries we compare with by ensuring the relative
// error is less than 1e-6." Every provider (autoGEMM and the simulated
// baselines) runs each randomized problem functionally; results are
// cross-checked pairwise and against the reference GEMM. The harness is
// used by cmd/autogemm-verify and the differential tests.
package verify

import (
	"fmt"
	"math/rand"

	"autogemm/internal/baselines"
	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// Case is one randomized problem instance.
type Case struct {
	M, N, K int
	Seed    uint64
}

// Failure records a provider disagreeing with the reference.
type Failure struct {
	Case     Case
	Provider string
	Chip     string
	RelErr   float64
	Err      error
}

// String implements fmt.Stringer.
func (f Failure) String() string {
	if f.Err != nil {
		return fmt.Sprintf("%s on %s at %dx%dx%d: %v",
			f.Provider, f.Chip, f.Case.M, f.Case.N, f.Case.K, f.Err)
	}
	return fmt.Sprintf("%s on %s at %dx%dx%d: rel err %.3g",
		f.Provider, f.Chip, f.Case.M, f.Case.N, f.Case.K, f.RelErr)
}

// Report summarizes a verification sweep.
type Report struct {
	Cases     int
	Checks    int // provider executions compared
	Failures  []Failure
	MaxRelErr float64
}

// Config controls a sweep.
type Config struct {
	Chip     *hw.Chip
	Cases    int   // number of randomized problems (0 = 25)
	MaxDim   int   // dimensions drawn from [1, MaxDim] (0 = 48)
	Seed     int64 // deterministic case generation
	Variants bool  // also sweep autoGEMM option variants per case
}

// Run executes the sweep.
func Run(cfg Config) (Report, error) {
	if cfg.Chip == nil {
		return Report{}, fmt.Errorf("verify: nil chip")
	}
	if cfg.Cases <= 0 {
		cfg.Cases = 25
	}
	if cfg.MaxDim <= 0 {
		cfg.MaxDim = 48
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var rep Report
	for i := 0; i < cfg.Cases; i++ {
		c := Case{
			M:    rng.Intn(cfg.MaxDim) + 1,
			N:    rng.Intn(cfg.MaxDim) + 1,
			K:    rng.Intn(cfg.MaxDim) + 1,
			Seed: uint64(rng.Int63()),
		}
		rep.Cases++
		if err := runCase(cfg, c, &rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// runCase checks every supported provider (and optional autoGEMM option
// variants) on one problem.
func runCase(cfg Config, c Case, rep *Report) error {
	a := make([]float32, c.M*c.K)
	b := make([]float32, c.K*c.N)
	c0 := make([]float32, c.M*c.N)
	refgemm.Fill(a, c.M, c.K, c.K, c.Seed)
	refgemm.Fill(b, c.K, c.N, c.N, c.Seed+1)
	refgemm.Fill(c0, c.M, c.N, c.N, c.Seed+2)
	want := make([]float32, c.M*c.N)
	copy(want, c0)
	refgemm.GEMM(c.M, c.N, c.K, a, c.K, b, c.N, want, c.N)

	check := func(name string, plan *core.Plan) {
		got := make([]float32, c.M*c.N)
		copy(got, c0)
		rep.Checks++
		if err := plan.Run(got, a, b); err != nil {
			rep.Failures = append(rep.Failures, Failure{Case: c, Provider: name, Chip: cfg.Chip.Name, Err: err})
			return
		}
		e := refgemm.MaxRelErr(got, want, c.M, c.N, c.N, c.N)
		if e > rep.MaxRelErr {
			rep.MaxRelErr = e
		}
		if e > refgemm.Tolerance {
			rep.Failures = append(rep.Failures, Failure{Case: c, Provider: name, Chip: cfg.Chip.Name, RelErr: e})
		}
	}

	for _, p := range append(baselines.All(), baselines.SSL2()) {
		if !p.Supports(cfg.Chip, c.M, c.N, c.K) {
			continue
		}
		plan, err := p.Plan(cfg.Chip, c.M, c.N, c.K)
		if err != nil {
			return fmt.Errorf("verify: %s plan: %w", p.Name, err)
		}
		check(p.Name, plan)
	}
	if cfg.Variants {
		variants := []core.Options{
			{Pack: core.PackNone, Rotate: true, Fuse: true},
			{Pack: core.PackOnline, Order: core.OrderKNM},
			{Pack: core.PackOffline, Rotate: true},
			{MC: 8, NC: 8, KC: 8, Pack: core.PackOnline, Fuse: true},
		}
		for vi, opts := range variants {
			plan, err := core.NewPlan(cfg.Chip, c.M, c.N, c.K, opts)
			if err != nil {
				return fmt.Errorf("verify: variant %d: %w", vi, err)
			}
			check(fmt.Sprintf("autoGEMM-v%d", vi), plan)
		}
	}
	return nil
}
