package roofline

import (
	"math"
	"strings"
	"testing"

	"autogemm/internal/hw"
)

func TestCeilings(t *testing.T) {
	m := New(hw.KP920(), 0)
	if m.PeakGFLOPS() != hw.KP920().PeakGFLOPSAllCores() {
		t.Error("all-core peak wrong")
	}
	one := New(hw.KP920(), 1)
	if one.PeakGFLOPS() != hw.KP920().PeakGFLOPS() {
		t.Error("single-core peak wrong")
	}
	if one.DRAMGBs() >= m.DRAMGBs() {
		t.Error("single core should see less bandwidth than the socket")
	}
}

func TestAttainableShape(t *testing.T) {
	m := New(hw.Graviton2(), 0)
	r := m.Ridge()
	if m.Attainable(r/2) >= m.PeakGFLOPS() {
		t.Error("below the ridge the bound must be bandwidth-limited")
	}
	if m.Attainable(r*4) != m.PeakGFLOPS() {
		t.Error("above the ridge the bound is the compute peak")
	}
	// Monotone non-decreasing in AI.
	prev := 0.0
	for ai := 0.25; ai < 512; ai *= 2 {
		a := m.Attainable(ai)
		if a < prev {
			t.Errorf("attainable not monotone at AI=%g", ai)
		}
		prev = a
	}
}

func TestAIOfGEMM(t *testing.T) {
	// 64^3: 2·64³ / 4·(64² + 64² + 2·64²) = 524288/65536 = 8.
	if got := AIOfGEMM(64, 64, 64); math.Abs(got-8) > 1e-12 {
		t.Errorf("AI(64^3) = %g, want 8", got)
	}
	// AI grows with size for cubes (Fig 10: small GEMMs sit left).
	if AIOfGEMM(8, 8, 8) >= AIOfGEMM(64, 64, 64) {
		t.Error("AI should grow with cube size")
	}
}

// TestFig10SmallCubesPlacement: the 8³ kernel lands in the memory-bound
// region on a single core only for very low AI; at 64³ it is compute
// bound on every chip (the Fig 10 narrative).
func TestFig10Placement(t *testing.T) {
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2(), hw.M2()} {
		m := New(chip, 1)
		p64 := m.Place("64^3", AIOfGEMM(64, 64, 64), chip.PeakGFLOPS()*0.9)
		if p64.BoundedBy != "compute" {
			t.Errorf("%s: 64^3 should be compute-bound on one core, got %s", chip.Name, p64.BoundedBy)
		}
		if p64.Fraction <= 0 || p64.Fraction > 1.01 {
			t.Errorf("%s: fraction %.2f out of range", chip.Name, p64.Fraction)
		}
	}
	// Multi-core rooflines push the ridge right: an irregular layer that
	// is compute-bound on one core can exceed the DRAM ceiling on all
	// cores (paper: "autoGEMM can easily exceed the upper bounds of DRAM").
	chip := hw.KP920()
	ai := AIOfGEMM(256, 3136, 64)
	if one, all := New(chip, 1), New(chip, 0); one.Attainable(ai) >= all.Attainable(ai) &&
		one.Ridge() >= all.Ridge() {
		t.Error("multi-core roofline should raise the ceiling and move the ridge")
	}
}

func TestPointString(t *testing.T) {
	m := New(hw.M2(), 1)
	p := m.Place("L4", 30, 50)
	if !strings.Contains(p.String(), "L4") {
		t.Error("label missing from rendering")
	}
}
