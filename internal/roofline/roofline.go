// Package roofline implements the roofline model of Fig 10: per-chip
// compute and bandwidth ceilings, placement of measured kernels by
// arithmetic intensity, and the bound classification (DRAM-bound,
// cache-bound, compute-bound).
package roofline

import (
	"fmt"
	"math"

	"autogemm/internal/hw"
)

// Point is one kernel placed on a roofline.
type Point struct {
	Label     string
	AI        float64 // FLOPs per DRAM byte
	GFLOPS    float64 // measured
	Attain    float64 // attainable at this AI
	Fraction  float64 // measured / attainable
	BoundedBy string  // "DRAM", "L3", or "compute"
}

// Model is a chip's roofline for a given core count.
type Model struct {
	Chip  *hw.Chip
	Cores int
}

// New builds a roofline for the chip at the given core count (0 = all).
func New(chip *hw.Chip, cores int) *Model {
	if cores <= 0 || cores > chip.Cores {
		cores = chip.Cores
	}
	return &Model{Chip: chip, Cores: cores}
}

// PeakGFLOPS is the compute ceiling.
func (m *Model) PeakGFLOPS() float64 {
	return m.Chip.PeakGFLOPS() * float64(m.Cores)
}

// DRAMGBs is the bandwidth ceiling; single-core runs see a per-core
// slice of the socket bandwidth (a core cannot saturate the socket).
func (m *Model) DRAMGBs() float64 {
	if m.Cores >= m.Chip.Cores {
		return m.Chip.DRAMGBs
	}
	perCore := m.Chip.DRAMGBs / float64(m.Chip.Cores) * 2.5 // single-core streams ~2.5x its share
	return math.Min(m.Chip.DRAMGBs, perCore*float64(m.Cores))
}

// Attainable returns the roofline bound at arithmetic intensity ai.
func (m *Model) Attainable(ai float64) float64 {
	return math.Min(m.PeakGFLOPS(), ai*m.DRAMGBs())
}

// Ridge returns the arithmetic intensity where the two ceilings meet.
func (m *Model) Ridge() float64 { return m.PeakGFLOPS() / m.DRAMGBs() }

// AIOfGEMM returns the DRAM arithmetic intensity of a GEMM assuming each
// matrix streams once: 2MNK / 4(MK + KN + 2MN) bytes.
func AIOfGEMM(mm, n, k int) float64 {
	flops := 2 * float64(mm) * float64(n) * float64(k)
	bytes := 4 * (float64(mm)*float64(k) + float64(k)*float64(n) + 2*float64(mm)*float64(n))
	return flops / bytes
}

// Place positions a measured kernel on the roofline.
func (m *Model) Place(label string, ai, gflops float64) Point {
	attain := m.Attainable(ai)
	bound := "compute"
	if ai < m.Ridge() {
		bound = "DRAM"
		if m.Chip.L3GBs > 0 && ai*m.Chip.L3GBs >= m.PeakGFLOPS() {
			bound = "L3"
		}
	}
	frac := 0.0
	if attain > 0 {
		frac = gflops / attain
	}
	return Point{Label: label, AI: ai, GFLOPS: gflops, Attain: attain, Fraction: frac, BoundedBy: bound}
}

// String renders a point as a table row.
func (p Point) String() string {
	return fmt.Sprintf("%-16s AI=%7.2f  %8.1f GF/s of %8.1f attainable (%.0f%%, %s-bound)",
		p.Label, p.AI, p.GFLOPS, p.Attain, p.Fraction*100, p.BoundedBy)
}
