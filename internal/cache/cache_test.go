package cache

import (
	"testing"
	"testing/quick"

	"autogemm/internal/hw"
)

func TestHitAfterMiss(t *testing.T) {
	h := NewHierarchy(hw.KP920())
	cold := h.Load(0x1000)
	warm := h.Load(0x1000)
	if cold <= warm {
		t.Errorf("cold %d <= warm %d", cold, warm)
	}
	if warm != hw.KP920().L1D.LatCycles {
		t.Errorf("warm latency %d, want L1 %d", warm, hw.KP920().L1D.LatCycles)
	}
}

func TestSameLineSharesFill(t *testing.T) {
	h := NewHierarchy(hw.KP920())
	h.Load(0x2000)
	if lat := h.Load(0x2000 + 60); lat != hw.KP920().L1D.LatCycles {
		t.Errorf("same-line access latency %d, want L1 hit", lat)
	}
}

func TestCapacityEviction(t *testing.T) {
	chip := hw.KP920() // 64 KiB L1
	h := NewHierarchy(chip)
	// Stream 4 MiB: far beyond L1 and L2 (512 KiB), so a second pass over
	// the start must miss L1.
	const span = 4 << 20
	for a := uint64(0); a < span; a += 64 {
		h.Load(a)
	}
	if lat := h.Load(0); lat <= chip.L1D.LatCycles {
		t.Errorf("post-eviction latency %d, want above L1 %d", lat, chip.L1D.LatCycles)
	}
}

func TestL2Residency(t *testing.T) {
	chip := hw.KP920()
	h := NewHierarchy(chip)
	// A 256 KiB working set fits L2 but not L1: after a warm pass, hits
	// should come at L2 latency.
	const span = 256 << 10
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < span; a += 64 {
			h.Load(a)
		}
	}
	if lat := h.Load(0); lat != chip.L2.LatCycles {
		t.Errorf("L2-resident latency %d, want %d", lat, chip.L2.LatCycles)
	}
}

func TestWarmInstallsLines(t *testing.T) {
	chip := hw.Graviton2()
	h := NewHierarchy(chip)
	h.Warm(0x8000, 4096)
	if lat := h.Load(0x8000 + 1024); lat != chip.L1D.LatCycles {
		t.Errorf("warmed load latency %d, want L1 hit", lat)
	}
	if h.DRAMReads == 0 {
		t.Error("warming should count as DRAM traffic")
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	chip := hw.KP920()
	h := NewHierarchy(chip)
	h.Prefetch(0x4000)
	if lat := h.Load(0x4000); lat != chip.L1D.LatCycles {
		t.Errorf("prefetched load latency %d, want L1 hit", lat)
	}
}

func TestDRAMTrafficCounting(t *testing.T) {
	h := NewHierarchy(hw.Graviton2())
	for a := uint64(0); a < 64*100; a += 64 {
		h.Load(a)
	}
	if h.DRAMReads != 100 {
		t.Errorf("DRAMReads = %d, want 100", h.DRAMReads)
	}
	h.Reset()
	if h.DRAMReads != 0 {
		t.Error("Reset did not clear traffic")
	}
	if lat := h.Load(0); lat != hw.Graviton2().DRAMLatCycles {
		t.Errorf("post-reset load latency %d, want DRAM", lat)
	}
	// M2 fills 128-byte lines from its L2, so 64-byte strides cost one
	// memory line per pair.
	hm := NewHierarchy(hw.M2())
	for a := uint64(0); a < 64*100; a += 64 {
		hm.Load(a)
	}
	if hm.DRAMReads != 50 {
		t.Errorf("M2 DRAMReads = %d, want 50 (128B lines)", hm.DRAMReads)
	}
}

func TestResidencyLevel(t *testing.T) {
	chip := hw.KP920()
	h := NewHierarchy(chip)
	cases := []struct {
		ws   int
		want int
	}{
		{32 << 10, 0},  // fits L1 (64K)
		{256 << 10, 1}, // fits L2 (512K)
		{8 << 20, 2},   // fits L3 (32M)
		{64 << 20, 3},  // DRAM
	}
	for _, c := range cases {
		if got := h.ResidencyLevel(c.ws); got != c.want {
			t.Errorf("ResidencyLevel(%d) = %d, want %d", c.ws, got, c.want)
		}
	}
	if h.LatencyOfLevel(0) != chip.L1D.LatCycles || h.LatencyOfLevel(3) != chip.DRAMLatCycles {
		t.Error("LatencyOfLevel mapping wrong")
	}
}

func TestNoL3Chip(t *testing.T) {
	h := NewHierarchy(hw.M2()) // M2 has no L3
	if got := h.ResidencyLevel(64 << 20); got != 2 {
		t.Errorf("M2 ResidencyLevel(64M) = %d, want 2 (DRAM)", got)
	}
	h.Load(0)
	if h.DRAMReads != 1 {
		t.Error("M2 miss path broken")
	}
}

// TestMonotoneLatencyProperty: for any address sequence, a repeated load
// of the last address is never slower than its first occurrence.
func TestMonotoneLatencyProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		h := NewHierarchy(hw.Graviton2())
		if len(addrs) == 0 {
			return true
		}
		var last uint64
		for _, a := range addrs {
			last = uint64(a) * 64
			h.Load(last)
		}
		return h.Load(last) <= hw.Graviton2().L1D.LatCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	h := NewHierarchy(hw.KP920())
	h.Load(0)
	h.Load(0)
	s := h.LevelStats()
	if len(s) != 3 {
		t.Fatalf("want 3 levels, got %d", len(s))
	}
	if s[0].Hits != 1 || s[0].Misses != 1 {
		t.Errorf("L1 stats %+v", s[0])
	}
	if h.Stats() == "" {
		t.Error("empty stats string")
	}
}
