// Package cache implements a set-associative, LRU, inclusive cache
// hierarchy simulator. The timing machine in package sim queries it per
// memory access to obtain load latencies; the block-level GEMM composer
// uses its traffic counters to account for data movement between levels
// (the quantity the paper's cache-blocking parameters m_c, n_c, k_c are
// chosen to control).
package cache

import (
	"fmt"

	"autogemm/internal/hw"
)

// line is one cache line's tag plus an LRU stamp.
type line struct {
	tag   uint64
	stamp uint64
	valid bool
}

// level is one set-associative cache level. The LRU state (sets) is
// allocated lazily on the first access: the analytic planners query
// only the level geometry (ResidencyLevel / LatencyOfLevel), and eager
// allocation of a many-megabyte L3's line array dominated the planner's
// cold latency — exactly the cliff tiered planning exists to remove.
// Only the cycle-accurate simulator actually touches lines.
type level struct {
	spec     hw.CacheSpec
	sets     [][]line
	numSets  int
	setShift uint
	setMask  uint64
	clock    uint64

	Hits   uint64
	Misses uint64
}

func newLevel(spec hw.CacheSpec) *level {
	lines := spec.SizeBytes / spec.LineBytes
	numSets := lines / spec.Ways
	if numSets < 1 {
		numSets = 1
	}
	// Round down to a power of two so the index is a bit field.
	for numSets&(numSets-1) != 0 {
		numSets--
	}
	shift := uint(0)
	for 1<<shift < spec.LineBytes {
		shift++
	}
	return &level{spec: spec, numSets: numSets, setShift: shift, setMask: uint64(numSets - 1)}
}

// access looks the address up, returning true on hit, and installs the
// line on miss (allocate-on-miss for both reads and writes).
func (l *level) access(addr uint64) bool {
	l.clock++
	tag := addr >> l.setShift
	if l.sets == nil {
		l.sets = make([][]line, l.numSets)
	}
	set := l.sets[tag&l.setMask]
	if set == nil {
		set = make([]line, l.spec.Ways)
		l.sets[tag&l.setMask] = set
	}
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].stamp = l.clock
			l.Hits++
			return true
		}
	}
	l.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = line{tag: tag, stamp: l.clock, valid: true}
	return false
}

// Hierarchy is a full L1/L2/L3/DRAM stack for one core, built from a chip
// description. Shared levels are still modelled per-core here; multi-core
// contention is applied analytically by the core scheduler.
type Hierarchy struct {
	chip   *hw.Chip
	levels []*level

	// DRAMReads counts lines fetched from memory; multiplied by the line
	// size this is the DRAM traffic used for roofline and bandwidth
	// contention modelling.
	DRAMReads uint64
}

// NewHierarchy builds the stack for a chip.
func NewHierarchy(chip *hw.Chip) *Hierarchy {
	h := &Hierarchy{chip: chip}
	for _, spec := range []hw.CacheSpec{chip.L1D, chip.L2, chip.L3} {
		if spec.Exists() {
			h.levels = append(h.levels, newLevel(spec))
		}
	}
	return h
}

// Load performs a read of the line containing addr and returns the
// load-to-use latency in cycles.
func (h *Hierarchy) Load(addr uint64) int {
	for _, l := range h.levels {
		if l.access(addr) {
			return l.spec.LatCycles
		}
	}
	h.DRAMReads++
	return h.chip.DRAMLatCycles
}

// Store performs a write-allocate access; stores complete through a store
// buffer, so the returned cost is the chip's store latency regardless of
// the hit level, but the line is installed for future loads.
func (h *Hierarchy) Store(addr uint64) int {
	for _, l := range h.levels {
		if l.access(addr) {
			return h.chip.LatStore
		}
	}
	h.DRAMReads++
	return h.chip.LatStore
}

// Prefetch warms the hierarchy without charging latency.
func (h *Hierarchy) Prefetch(addr uint64) {
	for _, l := range h.levels {
		if l.access(addr) {
			return
		}
	}
	h.DRAMReads++
}

// Warm installs the byte range [addr, addr+size) into every level that
// can hold it, emulating data already resident from a previous phase.
func (h *Hierarchy) Warm(addr, size uint64) {
	if size == 0 {
		return
	}
	lineB := uint64(h.chip.L1D.LineBytes)
	if lineB == 0 {
		lineB = 64
	}
	for a := addr &^ (lineB - 1); a < addr+size; a += lineB {
		hit := false
		for _, l := range h.levels {
			if l.access(a) {
				hit = true
			}
		}
		if !hit {
			h.DRAMReads++
		}
	}
}

// Reset clears all cache state and counters.
func (h *Hierarchy) Reset() {
	for i, l := range h.levels {
		nl := newLevel(l.spec)
		h.levels[i] = nl
	}
	h.DRAMReads = 0
}

// Stats returns a human-readable per-level hit/miss summary.
func (h *Hierarchy) Stats() string {
	s := ""
	names := []string{"L1D", "L2", "L3"}
	for i, l := range h.levels {
		s += fmt.Sprintf("%s: %d hits / %d misses; ", names[i], l.Hits, l.Misses)
	}
	s += fmt.Sprintf("DRAM lines: %d", h.DRAMReads)
	return s
}

// LevelStats exposes hit/miss counters per level for tests.
func (h *Hierarchy) LevelStats() [](struct{ Hits, Misses uint64 }) {
	out := make([]struct{ Hits, Misses uint64 }, len(h.levels))
	for i, l := range h.levels {
		out[i] = struct{ Hits, Misses uint64 }{l.Hits, l.Misses}
	}
	return out
}

// ResidencyLevel reports the deepest level whose capacity covers
// workingSet bytes (0 = L1, 1 = L2, 2 = L3, len(levels) = DRAM). The
// analytic block model uses this to pick the sustained load latency for a
// blocking configuration, mirroring the paper's observation that B
// spilling out of KP920's 64 KiB L1 collapses efficiency (§V-B).
func (h *Hierarchy) ResidencyLevel(workingSet int) int {
	for i, l := range h.levels {
		if workingSet <= l.spec.SizeBytes {
			return i
		}
	}
	return len(h.levels)
}

// LatencyOfLevel returns the load latency of residency level i, with
// DRAM latency for i == len(levels).
func (h *Hierarchy) LatencyOfLevel(i int) int {
	if i < len(h.levels) {
		return h.levels[i].spec.LatCycles
	}
	return h.chip.DRAMLatCycles
}
