package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"autogemm"
	"autogemm/internal/refgemm"
	"autogemm/internal/workload"
)

// The serving e2e suite: every test stands up a real engine behind the
// real handler on a real listener and drives it through the typed
// client, so what is proven is the full trip — JSON, tenant
// resolution, QoS plumbing, error mapping, NDJSON streaming — not
// handler internals.

func newTestStack(t *testing.T, workers int, cfgMut func(*Config)) (*autogemm.Engine, *httptest.Server) {
	t.Helper()
	eng, err := autogemm.New("KP920", autogemm.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	cfg := Config{
		Engine: eng,
		Tenants: map[string]TenantConfig{
			"interactive": {Class: "latency", Weight: 16},
			"analytics":   {Class: "batch", Weight: 1, Depth: 1},
		},
	}
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return eng, hs
}

func testOperands(t *testing.T, s workload.Shape, seed uint64) (a, b []float32) {
	t.Helper()
	a = make([]float32, s.M*s.K)
	b = make([]float32, s.K*s.N)
	refgemm.Fill(a, s.M, s.K, s.K, seed)
	refgemm.Fill(b, s.K, s.N, s.N, seed+1)
	return a, b
}

func bitsEqual(x, y []float32) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// TestServeMultiplyRoundTrip: a served multiply returns exactly the
// bits a direct engine Multiply produces.
func TestServeMultiplyRoundTrip(t *testing.T) {
	eng, hs := newTestStack(t, 2, nil)
	s := workload.Shape{Name: "t", M: 48, N: 56, K: 40}
	a, b := testOperands(t, s, 7)
	want := make([]float32, s.M*s.N)
	if err := eng.Multiply(want, a, b, s.M, s.N, s.K); err != nil {
		t.Fatal(err)
	}
	cl := &Client{Base: hs.URL, Tenant: "interactive"}
	got, err := cl.Multiply(context.Background(), s.M, s.N, s.K, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEqual(want, got) {
		t.Fatal("served result differs from direct Multiply bits")
	}
}

// TestServeShedRoundTrip: a depth-bounded tenant at its bound answers
// 429 with Retry-After, and the client reconstructs an error matching
// autogemm.ErrAdmission — the sentinel identity surviving the HTTP
// boundary.
func TestServeShedRoundTrip(t *testing.T) {
	eng, hs := newTestStack(t, 1, nil)

	// Park the only worker on a big default-class job, then occupy the
	// depth-1 batch class with a queued job submitted directly.
	big := workload.ResNet50()[0]
	ba, bb := testOperands(t, big, 11)
	blocker, err := eng.Submit(autogemm.GEMM{M: big.M, N: big.N, K: big.K, A: ba, B: bb,
		C: make([]float32, big.M*big.N)})
	if err != nil {
		t.Fatal(err)
	}
	s := workload.Shape{M: 32, N: 32, K: 32}
	sa, sb := testOperands(t, s, 13)
	occupant, err := eng.SubmitOpts(autogemm.GEMM{M: s.M, N: s.N, K: s.K, A: sa, B: sb,
		C: make([]float32, s.M*s.N)}, autogemm.SubmitOpts{QoS: autogemm.QoS{Class: "batch"}})
	if err != nil {
		t.Fatal(err)
	}

	// The served submission must shed: typed-client identity first.
	cl := &Client{Base: hs.URL, Tenant: "analytics"}
	_, err = cl.Multiply(context.Background(), s.M, s.N, s.K, sa, sb, 0)
	if !errors.Is(err, autogemm.ErrAdmission) {
		t.Fatalf("served shed: got %v, want ErrAdmission identity", err)
	}

	// Raw response second: 429 + Retry-After on the wire.
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/multiply",
		strings.NewReader(`{"m":4,"n":4,"k":4,"a":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"b":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0]}`))
	req.Header.Set(TenantHeader, "analytics")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw shed status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}

	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := occupant.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServeDeadlineMissRoundTrip: a request whose deadline expires
// while queued behind the only worker answers 504, and the client
// reconstructs context.DeadlineExceeded.
func TestServeDeadlineMissRoundTrip(t *testing.T) {
	eng, hs := newTestStack(t, 1, nil)
	big := workload.ResNet50()[0]
	ba, bb := testOperands(t, big, 17)
	blocker, err := eng.Submit(autogemm.GEMM{M: big.M, N: big.N, K: big.K, A: ba, B: bb,
		C: make([]float32, big.M*big.N)})
	if err != nil {
		t.Fatal(err)
	}
	s := workload.Shape{M: 32, N: 32, K: 32}
	sa, sb := testOperands(t, s, 19)
	cl := &Client{Base: hs.URL, Tenant: "interactive"}
	_, err = cl.Multiply(context.Background(), s.M, s.N, s.K, sa, sb, 50)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("served deadline miss: got %v, want DeadlineExceeded identity", err)
	}
	if got := autogemm.HTTPStatus(err); got != http.StatusGatewayTimeout {
		t.Fatalf("reconstructed error maps to %d, want 504", got)
	}
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestServeBatchStream: NDJSON batch returns one line per element —
// bad geometry refused inline with a 400 status, good elements
// bit-identical to a direct Multiply.
func TestServeBatchStream(t *testing.T) {
	eng, hs := newTestStack(t, 2, nil)
	s := workload.Shape{M: 40, N: 44, K: 36}
	a, b := testOperands(t, s, 23)
	want := make([]float32, s.M*s.N)
	if err := eng.Multiply(want, a, b, s.M, s.N, s.K); err != nil {
		t.Fatal(err)
	}

	elems := []GEMMRequest{
		{M: s.M, N: s.N, K: s.K, A: a, B: b},
		{M: 0, N: 4, K: 4, A: a, B: b}, // bad geometry: refused inline
		{M: s.M, N: s.N, K: s.K, A: a, B: b},
	}
	cl := &Client{Base: hs.URL, Tenant: "interactive"}
	lines, err := cl.Batch(context.Background(), elems)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		if err := lines[i].Err(); err != nil {
			t.Fatalf("element %d: %v", i, err)
		}
		if !bitsEqual(want, lines[i].C) {
			t.Fatalf("element %d differs from direct Multiply bits", i)
		}
	}
	if lines[1].Error == "" || lines[1].Status != http.StatusBadRequest {
		t.Fatalf("bad-geometry element line = %+v, want inline 400", lines[1])
	}
}

// TestServeClassesRetune: the runtime control plane applies a
// weight-only retune without dropping the depth bound — the
// ConfigureClass keep-on-zero contract over HTTP — and a negative
// depth clears it.
func TestServeClassesRetune(t *testing.T) {
	_, hs := newTestStack(t, 2, nil)
	cl := &Client{Base: hs.URL}

	cs, err := cl.ConfigureClass(context.Background(), "batch", 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Weight != 9 || cs.Depth != 1 {
		t.Fatalf("weight-only retune: got weight=%d depth=%d, want weight=9 depth=1 (depth preserved)", cs.Weight, cs.Depth)
	}
	cs, err = cl.ConfigureClass(context.Background(), "batch", 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Weight != 9 || cs.Depth != 0 {
		t.Fatalf("negative-depth clear: got weight=%d depth=%d, want weight=9 depth=0", cs.Weight, cs.Depth)
	}

	all, err := cl.Classes(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range all {
		if c.Class == "batch" {
			found = true
		}
	}
	if !found {
		t.Fatal("GET /v1/classes missing the batch class")
	}
}

// TestServeMetrics: /metrics exposes the class counters (including a
// real shed), the per-worker accounting and the server's own response
// tally in Prometheus text format.
func TestServeMetrics(t *testing.T) {
	eng, hs := newTestStack(t, 1, nil)

	// Produce one shed exactly as TestServeShedRoundTrip does.
	big := workload.ResNet50()[0]
	ba, bb := testOperands(t, big, 29)
	blocker, err := eng.Submit(autogemm.GEMM{M: big.M, N: big.N, K: big.K, A: ba, B: bb,
		C: make([]float32, big.M*big.N)})
	if err != nil {
		t.Fatal(err)
	}
	s := workload.Shape{M: 32, N: 32, K: 32}
	sa, sb := testOperands(t, s, 31)
	occupant, err := eng.SubmitOpts(autogemm.GEMM{M: s.M, N: s.N, K: s.K, A: sa, B: sb,
		C: make([]float32, s.M*s.N)}, autogemm.SubmitOpts{QoS: autogemm.QoS{Class: "batch"}})
	if err != nil {
		t.Fatal(err)
	}
	cl := &Client{Base: hs.URL, Tenant: "analytics"}
	if _, err := cl.Multiply(context.Background(), s.M, s.N, s.K, sa, sb, 0); !errors.Is(err, autogemm.ErrAdmission) {
		t.Fatalf("setup shed: got %v", err)
	}
	if err := blocker.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := occupant.Wait(); err != nil {
		t.Fatal(err)
	}

	text, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`autogemm_class_rejected_total{class="batch"} 1`,
		`autogemm_class_depth{class="batch"} 1`,
		`autogemm_class_submitted_total{class="latency"}`,
		`autogemm_worker_tasks_total{worker="0"}`,
		`autogemm_http_responses_total{code="429"} 1`,
		"# TYPE autogemm_sched_jobs_submitted_total counter",
		"autogemm_plan_cache_built_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /debug/vars serves the same snapshot as JSON.
	resp, err := http.Get(hs.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", resp.StatusCode)
	}
}

// TestServeTenantResolution: RequireTenant turns missing/unknown
// tenants into 401, and a bearer token resolves to its tenant.
func TestServeTenantResolution(t *testing.T) {
	_, hs := newTestStack(t, 1, func(cfg *Config) {
		cfg.RequireTenant = true
		cfg.Tokens = map[string]string{"s3cret": "interactive"}
	})
	s := workload.Shape{M: 16, N: 16, K: 16}
	sa, sb := testOperands(t, s, 37)

	// No tenant at all: refused.
	cl := &Client{Base: hs.URL}
	_, err := cl.Multiply(context.Background(), s.M, s.N, s.K, sa, sb, 0)
	if err == nil || !strings.Contains(err.Error(), "401") && !strings.Contains(err.Error(), "tenant") {
		t.Fatalf("tenantless request: got %v, want 401 refusal", err)
	}

	// Unknown tenant: refused.
	cl = &Client{Base: hs.URL, Tenant: "nobody"}
	if _, err := cl.Multiply(context.Background(), s.M, s.N, s.K, sa, sb, 0); err == nil {
		t.Fatal("unknown tenant accepted")
	}

	// Bearer token: resolved to "interactive" and served.
	body := strings.NewReader(`{"m":16,"n":16,"k":16,"a":[` + zeros(16*16) + `],"b":[` + zeros(16*16) + `]}`)
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/multiply", body)
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("token-authenticated request status = %d, want 200", resp.StatusCode)
	}
}

func zeros(n int) string {
	return strings.TrimSuffix(strings.Repeat("0,", n), ",")
}
