package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// This file is the observability surface of the front door: /metrics
// renders the engine's PlanCacheStats — cache traffic, scheduler
// totals, per-class QoS counters, per-worker busy/idle — in Prometheus
// text exposition format, and /debug/vars dumps the same snapshot as
// JSON for humans and tests.

// handleMetrics is GET /metrics: Prometheus text format, version 0.0.4.
// Class-scoped series carry a class="..." label, worker-scoped series a
// worker="N" label; everything cumulative is a counter, everything
// point-in-time a gauge.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.eng.PlanCacheStats()
	s.count(http.StatusOK)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	counter := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}

	counter("autogemm_plan_cache_hits_total", "Plan cache hits.", st.Hits)
	counter("autogemm_plan_cache_misses_total", "Plan cache misses.", st.Misses)
	counter("autogemm_plan_cache_built_total", "Plans constructed (including registry warm-starts).", st.Built)
	gauge("autogemm_plan_cache_hit_rate", "Plan cache hit rate.", st.HitRate)

	gauge("autogemm_sched_workers", "Worker goroutines in the engine's pool.", st.SchedWorkers)
	counter("autogemm_sched_jobs_submitted_total", "Jobs accepted by the scheduler.", st.SchedJobsSubmitted)
	counter("autogemm_sched_jobs_completed_total", "Jobs whose every task finished.", st.SchedJobsCompleted)
	counter("autogemm_sched_jobs_cancelled_total", "Jobs failed by context cancellation.", st.SchedJobsCancelled)
	counter("autogemm_sched_tasks_stolen_total", "Tasks run by a worker other than the job's first claimant.", st.SchedTasksStolen)
	counter("autogemm_sched_tasks_panicked_total", "Tasks whose panic was contained into a job error.", st.SchedTasksPanicked)
	gauge("autogemm_sched_queue_high_water", "Most jobs ever in flight at once.", st.SchedQueueHighWater)

	counter("autogemm_tiered_heuristic_served_total", "Serves answered by a tier-0 heuristic plan.", st.HeuristicServed)
	counter("autogemm_tiered_upgrades_completed_total", "Background plan upgrades hot-swapped into the cache.", st.UpgradesCompleted)
	counter("autogemm_tiered_upgrades_failed_total", "Background plan upgrades that failed.", st.UpgradesFailed)

	// Per-class QoS counters. One TYPE header per family, then one
	// labelled sample per class.
	classFamily := func(name, kind, help string, val func(i int) interface{}) {
		if len(st.SchedClasses) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for i, cs := range st.SchedClasses {
			fmt.Fprintf(w, "%s{class=%q} %v\n", name, cs.Class, val(i))
		}
	}
	classFamily("autogemm_class_weight", "gauge", "Class claiming weight.",
		func(i int) interface{} { return st.SchedClasses[i].Weight })
	classFamily("autogemm_class_depth", "gauge", "Class admission depth bound (0 = unbounded).",
		func(i int) interface{} { return st.SchedClasses[i].Depth })
	classFamily("autogemm_class_inflight", "gauge", "Class jobs accepted and not yet completed.",
		func(i int) interface{} { return st.SchedClasses[i].InFlight })
	classFamily("autogemm_class_submitted_total", "counter", "Jobs accepted into the class.",
		func(i int) interface{} { return st.SchedClasses[i].Submitted })
	classFamily("autogemm_class_completed_total", "counter", "Class jobs whose every task finished.",
		func(i int) interface{} { return st.SchedClasses[i].Completed })
	classFamily("autogemm_class_rejected_total", "counter", "Class submissions refused at admission.",
		func(i int) interface{} { return st.SchedClasses[i].Rejected })
	classFamily("autogemm_class_queue_wait_claims_total", "counter", "Claim decisions class jobs waited before first claim.",
		func(i int) interface{} { return st.SchedClasses[i].QueueWaitClaims })

	// Per-worker busy/idle accounting.
	workerFamily := func(name, kind, help string, val func(i int) interface{}) {
		if len(st.SchedPerWorker) == 0 {
			return
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
		for i := range st.SchedPerWorker {
			fmt.Fprintf(w, "%s{worker=\"%d\"} %v\n", name, i, val(i))
		}
	}
	workerFamily("autogemm_worker_tasks_total", "counter", "Tasks executed by the worker.",
		func(i int) interface{} { return st.SchedPerWorker[i].TasksRun })
	workerFamily("autogemm_worker_busy_cycles", "gauge", "Charged virtual cycles (0 without cost accounting).",
		func(i int) interface{} { return st.SchedPerWorker[i].BusyCycles })
	workerFamily("autogemm_worker_idle_cycles", "gauge", "Busiest worker's busy cycles minus this worker's.",
		func(i int) interface{} { return st.SchedPerWorker[i].IdleCycles })

	// HTTP responses by status code, from the server's own tally.
	s.mu.Lock()
	codes := make([]int, 0, len(s.responses))
	for code := range s.responses {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	fmt.Fprintf(w, "# HELP autogemm_http_responses_total HTTP responses by status code.\n# TYPE autogemm_http_responses_total counter\n")
	for _, code := range codes {
		fmt.Fprintf(w, "autogemm_http_responses_total{code=\"%d\"} %d\n", code, s.responses[code])
	}
	s.mu.Unlock()

	gauge("autogemm_uptime_seconds", "Seconds since the server was constructed.", time.Since(s.start).Seconds())
}

// handleVars is GET /debug/vars: the full stats snapshot plus the
// tenant topology, as one JSON document.
func (s *Server) handleVars(w http.ResponseWriter, r *http.Request) {
	s.count(http.StatusOK)
	s.mu.Lock()
	responses := make(map[string]int64, len(s.responses))
	for code, n := range s.responses {
		responses[fmt.Sprintf("%d", code)] = n
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(map[string]interface{}{
		"planCache":     s.eng.PlanCacheStats(),
		"tenants":       s.cfg.Tenants,
		"httpResponses": responses,
		"uptimeSec":     time.Since(s.start).Seconds(),
	})
}
