package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"autogemm"
)

// Client is a minimal typed client for the serving API — what the
// bench load harness and the e2e tests drive requests through. Its
// error mapping (ErrorForStatus) is the inverse of autogemm.HTTPStatus,
// so sentinel identities round-trip the HTTP boundary: a 429 body
// comes back as an error matching autogemm.ErrAdmission, a 504 as
// context.DeadlineExceeded.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8097".
	Base string
	// Tenant, when non-empty, is sent as the TenantHeader on every
	// request.
	Tenant string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// ErrorForStatus reconstructs the engine-side error identity from an
// HTTP status — the inverse of autogemm.HTTPStatus. The msg (typically
// the server's error body) is preserved in the message; the returned
// error matches the corresponding sentinel via errors.Is.
func ErrorForStatus(status int, msg string) error {
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusTooManyRequests:
		return fmt.Errorf("serve: %s: %w", msg, autogemm.ErrAdmission)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("serve: %s: %w", msg, context.DeadlineExceeded)
	case StatusClientClosedRequest:
		return fmt.Errorf("serve: %s: %w", msg, context.Canceled)
	case http.StatusUnprocessableEntity:
		return fmt.Errorf("serve: %s: %w", msg, autogemm.ErrBadPlan)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("serve: %s: %w", msg, autogemm.ErrClosed)
	default:
		return fmt.Errorf("serve: http %d: %s", status, msg)
	}
}

// StatusClientClosedRequest mirrors autogemm.StatusClientClosedRequest
// for callers that only import the client.
const StatusClientClosedRequest = autogemm.StatusClientClosedRequest

func (c *Client) post(ctx context.Context, path string, body interface{}) (*http.Response, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	return c.httpClient().Do(req)
}

// errorFromResponse decodes a non-2xx body into its sentinel-matching
// error form.
func errorFromResponse(resp *http.Response) error {
	var er ErrorResponse
	msg := resp.Status
	if err := json.NewDecoder(resp.Body).Decode(&er); err == nil && er.Error != "" {
		msg = er.Error
	}
	return ErrorForStatus(resp.StatusCode, msg)
}

// Multiply runs one C += A·B through POST /v1/multiply and returns the
// result matrix. deadlineMs <= 0 means the tenant's default deadline.
func (c *Client) Multiply(ctx context.Context, m, n, k int, a, b []float32, deadlineMs int) ([]float32, error) {
	resp, err := c.post(ctx, "/v1/multiply", GEMMRequest{M: m, N: n, K: k, A: a, B: b, DeadlineMs: deadlineMs})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	var mr MultiplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, fmt.Errorf("serve: bad response body: %w", err)
	}
	return mr.C, nil
}

// Batch runs elements through POST /v1/batch and returns one BatchLine
// per element, re-indexed into submission order (the server streams
// them in completion order).
func (c *Client) Batch(ctx context.Context, elements []GEMMRequest) ([]BatchLine, error) {
	resp, err := c.post(ctx, "/v1/batch", BatchRequest{Elements: elements})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	lines := make([]BatchLine, len(elements))
	seen := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<26)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var line BatchLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("serve: bad batch line: %w", err)
		}
		if line.Index < 0 || line.Index >= len(elements) {
			return nil, fmt.Errorf("serve: batch line index %d out of range", line.Index)
		}
		lines[line.Index] = line
		seen++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("serve: reading batch stream: %w", err)
	}
	if seen != len(elements) {
		return nil, fmt.Errorf("serve: batch stream returned %d of %d lines", seen, len(elements))
	}
	return lines, nil
}

// Err converts a BatchLine into its element error (nil on success),
// preserving sentinel identity through ErrorForStatus.
func (l BatchLine) Err() error {
	if l.Error == "" {
		return nil
	}
	return ErrorForStatus(l.Status, l.Error)
}

// ConfigureClass retunes one scheduling class through POST /v1/classes
// and returns the class's post-retune counters. The weight/depth
// semantics are Engine.ConfigureClass's: weight <= 0 keeps, depth 0
// keeps, depth < 0 clears.
func (c *Client) ConfigureClass(ctx context.Context, class string, weight, depth int) (autogemm.SchedClassStats, error) {
	resp, err := c.post(ctx, "/v1/classes", ClassUpdate{Class: class, Weight: weight, Depth: depth})
	if err != nil {
		return autogemm.SchedClassStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return autogemm.SchedClassStats{}, errorFromResponse(resp)
	}
	var cs autogemm.SchedClassStats
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return autogemm.SchedClassStats{}, fmt.Errorf("serve: bad response body: %w", err)
	}
	return cs, nil
}

// Classes snapshots every scheduling class's counters through
// GET /v1/classes.
func (c *Client) Classes(ctx context.Context) ([]autogemm.SchedClassStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/classes", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errorFromResponse(resp)
	}
	var out []autogemm.SchedClassStats
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: bad response body: %w", err)
	}
	return out, nil
}

// Metrics fetches the raw /metrics text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", errorFromResponse(resp)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
