// Package serve is the multi-tenant HTTP/JSON front door over the
// engine's QoS runtime — the serving surface cmd/autogemm-serve mounts
// and the load harness in cmd/autogemm-bench drives. It maps tenants
// (a header or bearer token) onto scheduling classes, threads per-class
// weight, admission depth and per-request deadlines down to
// Engine.SubmitOptsContext, and translates the engine's sentinel
// errors into HTTP statuses with autogemm.HTTPStatus: a shed tenant
// gets 429 + Retry-After, an expired deadline 504, a rejected plan
// 422, a draining engine 503.
//
// Endpoints:
//
//	POST /v1/multiply   one C += A·B, JSON in/out
//	POST /v1/batch      many GEMMs in, NDJSON lines streamed out as
//	                    each element's future completes
//	GET  /v1/classes    per-class scheduler counters (JSON)
//	POST /v1/classes    runtime retune: ConfigureClass(weight, depth)
//	GET  /metrics       Prometheus text exposition (metrics.go)
//	GET  /debug/vars    full stats snapshot as JSON (metrics.go)
//	GET  /healthz       liveness
//
// Concurrency discipline: the package spawns no goroutines of its own
// (the goroutine vet pass holds here as everywhere outside the
// scheduler). Request concurrency belongs to net/http; the batch
// endpoint fans futures into a channel through Future.OnDone, whose
// callback goroutine is owned by the scheduler runtime.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"autogemm"
)

// TenantHeader names the request header carrying the tenant identity.
const TenantHeader = "X-Autogemm-Tenant"

// TenantConfig maps one tenant onto its scheduling treatment. The
// class is configured on the engine at Server construction; per-request
// QoS carries only the class name and deadline, so a runtime retune
// through POST /v1/classes is never clobbered by request traffic.
type TenantConfig struct {
	// Class is the scheduling class the tenant's jobs park in.
	Class string `json:"class"`
	// Weight is the class's claiming weight (<= 0 keeps the default).
	Weight int `json:"weight"`
	// Depth bounds the class's jobs in flight; beyond it submissions
	// shed with 429. 0 means unbounded at construction.
	Depth int `json:"depth"`
	// DeadlineMs, when positive, is the default per-request completion
	// deadline; a request's own deadlineMs overrides it.
	DeadlineMs int `json:"deadlineMs"`
}

// Config assembles a Server.
type Config struct {
	// Engine executes the GEMMs. Required; the Server does not own it —
	// the caller closes it after shutting the HTTP listener down.
	Engine *autogemm.Engine

	// Tenants maps the TenantHeader value to a tenant's scheduling
	// treatment. A request without a (known) tenant runs under the
	// engine's default class unless RequireTenant is set.
	Tenants map[string]TenantConfig

	// Tokens optionally maps Authorization bearer tokens to tenant
	// names, for callers that authenticate instead of self-labelling.
	Tokens map[string]string

	// RequireTenant refuses requests that resolve to no known tenant
	// with 401 instead of running them under the default class.
	RequireTenant bool

	// MaxDim bounds each problem extent (default 8192); MaxBatch bounds
	// elements per batch request (default 256). Both are request
	// validation — oversized requests get 400 before any planning.
	MaxDim   int
	MaxBatch int
}

// Server is the HTTP front door. Construct with New, mount Handler.
type Server struct {
	cfg   Config
	eng   *autogemm.Engine
	start time.Time

	mu        sync.Mutex
	responses map[int]int64 // HTTP responses by status code
}

// New validates the config, configures each tenant's class on the
// engine (weight + admission depth), and returns the server.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	if cfg.MaxDim <= 0 {
		cfg.MaxDim = 8192
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	for name, tc := range cfg.Tenants {
		if tc.Class == "" {
			return nil, fmt.Errorf("serve: tenant %q has no class", name)
		}
		cfg.Engine.ConfigureClass(tc.Class, tc.Weight, tc.Depth)
	}
	for token, tenant := range cfg.Tokens {
		if _, ok := cfg.Tenants[tenant]; !ok {
			return nil, fmt.Errorf("serve: token %q maps to unknown tenant %q", token, tenant)
		}
	}
	return &Server{cfg: cfg, eng: cfg.Engine, start: time.Now(), responses: map[int]int64{}}, nil
}

// Handler returns the server's route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/multiply", s.handleMultiply)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/classes", s.handleClasses)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/vars", s.handleVars)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.count(http.StatusOK)
		w.Write([]byte("ok\n"))
	})
	return mux
}

// GEMMRequest is one C += A·B problem on the wire: row-major float32
// matrices A (m×k) and B (k×n), an optional starting C (m×n, zeros
// when omitted), and an optional per-request completion deadline.
type GEMMRequest struct {
	M          int       `json:"m"`
	N          int       `json:"n"`
	K          int       `json:"k"`
	A          []float32 `json:"a"`
	B          []float32 `json:"b"`
	C          []float32 `json:"c,omitempty"`
	DeadlineMs int       `json:"deadlineMs,omitempty"`
}

// MultiplyResponse is the /v1/multiply success body.
type MultiplyResponse struct {
	C []float32 `json:"c"`
}

// BatchRequest is the /v1/batch body.
type BatchRequest struct {
	Elements []GEMMRequest `json:"elements"`
}

// BatchLine is one NDJSON line of a /v1/batch response: the element's
// index and either its result or its error + the status the element
// would have received as a standalone request. Lines stream in
// completion order, not index order.
type BatchLine struct {
	Index  int       `json:"index"`
	C      []float32 `json:"c,omitempty"`
	Error  string    `json:"error,omitempty"`
	Status int       `json:"status,omitempty"`
}

// ErrorResponse is the JSON error body of every non-2xx answer.
type ErrorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// ClassUpdate is the POST /v1/classes body — the runtime retune. The
// semantics are exactly Engine.ConfigureClass: weight <= 0 keeps the
// current weight, depth 0 keeps the current admission bound (a
// weight-only retune preserves it), depth < 0 clears the bound.
type ClassUpdate struct {
	Class  string `json:"class"`
	Weight int    `json:"weight"`
	Depth  int    `json:"depth"`
}

// count tallies one HTTP response for the /metrics surface.
func (s *Server) count(status int) {
	s.mu.Lock()
	s.responses[status]++
	s.mu.Unlock()
}

// writeError answers with the canonical status for err
// (autogemm.HTTPStatus) and a JSON error body; sheds carry Retry-After
// so well-behaved clients back off.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := autogemm.HTTPStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.writeErrorStatus(w, status, err.Error())
}

func (s *Server) writeErrorStatus(w http.ResponseWriter, status int, msg string) {
	s.count(status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg, Status: status})
}

// tenantOf resolves the request's tenant: the TenantHeader value, or
// the tenant a bearer token maps to. An empty resolution runs under
// the engine default class unless RequireTenant; a non-empty name that
// is not configured is refused.
func (s *Server) tenantOf(r *http.Request) (TenantConfig, error) {
	name := r.Header.Get(TenantHeader)
	if name == "" && len(s.cfg.Tokens) > 0 {
		if auth := r.Header.Get("Authorization"); len(auth) > 7 && auth[:7] == "Bearer " {
			name = s.cfg.Tokens[auth[7:]]
		}
	}
	if name == "" {
		if s.cfg.RequireTenant {
			return TenantConfig{}, fmt.Errorf("serve: no tenant (set %s or a bearer token)", TenantHeader)
		}
		return TenantConfig{}, nil // engine default class
	}
	tc, ok := s.cfg.Tenants[name]
	if !ok {
		return TenantConfig{}, fmt.Errorf("serve: unknown tenant %q", name)
	}
	return tc, nil
}

// validate bounds one element's geometry and operand lengths.
func (s *Server) validate(g *GEMMRequest) error {
	if g.M <= 0 || g.N <= 0 || g.K <= 0 {
		return fmt.Errorf("serve: non-positive extents %dx%dx%d", g.M, g.N, g.K)
	}
	if g.M > s.cfg.MaxDim || g.N > s.cfg.MaxDim || g.K > s.cfg.MaxDim {
		return fmt.Errorf("serve: extents %dx%dx%d exceed the limit %d", g.M, g.N, g.K, s.cfg.MaxDim)
	}
	if len(g.A) < g.M*g.K || len(g.B) < g.K*g.N {
		return fmt.Errorf("serve: operand lengths (%d,%d) too small for %dx%dx%d",
			len(g.A), len(g.B), g.M, g.N, g.K)
	}
	if g.C != nil && len(g.C) < g.M*g.N {
		return fmt.Errorf("serve: c length %d too small for %dx%d", len(g.C), g.M, g.N)
	}
	return nil
}

// qosFor builds the per-request QoS: the tenant's class, never a
// per-request weight (weights belong to the class and its retunes),
// and the effective deadline (request override, else tenant default).
func qosFor(tc TenantConfig, deadlineMs int) autogemm.QoS {
	q := autogemm.QoS{Class: tc.Class}
	ms := deadlineMs
	if ms <= 0 {
		ms = tc.DeadlineMs
	}
	if ms > 0 {
		q.Deadline = time.Now().Add(time.Duration(ms) * time.Millisecond)
	}
	return q
}

// submit validates and enqueues one element, returning its future and
// output buffer.
func (s *Server) submit(r *http.Request, tc TenantConfig, g *GEMMRequest) (*autogemm.Future, []float32, error) {
	if err := s.validate(g); err != nil {
		return nil, nil, err
	}
	c := g.C
	if c == nil {
		c = make([]float32, g.M*g.N)
	}
	fut, err := s.eng.SubmitOptsContext(r.Context(), autogemm.GEMM{
		C: c, A: g.A, B: g.B, M: g.M, N: g.N, K: g.K,
	}, autogemm.SubmitOpts{QoS: qosFor(tc, g.DeadlineMs)})
	if err != nil {
		return nil, nil, err
	}
	return fut, c, nil
}

// handleMultiply is POST /v1/multiply: one GEMM, synchronous JSON
// answer. The request context rides the whole way down — a client
// disconnect cancels the job's remaining tasks.
func (s *Server) handleMultiply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErrorStatus(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	tc, err := s.tenantOf(r)
	if err != nil {
		s.writeErrorStatus(w, http.StatusUnauthorized, err.Error())
		return
	}
	var g GEMMRequest
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		s.writeErrorStatus(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	fut, c, err := s.submit(r, tc, &g)
	if err != nil {
		if status := autogemm.HTTPStatus(err); status == http.StatusInternalServerError {
			// Validation and geometry problems are the caller's fault.
			s.writeErrorStatus(w, http.StatusBadRequest, err.Error())
		} else {
			s.writeError(w, err)
		}
		return
	}
	if err := fut.Wait(); err != nil {
		s.writeError(w, err)
		return
	}
	s.count(http.StatusOK)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(MultiplyResponse{C: c})
}

// handleBatch is POST /v1/batch: submit every element under the
// tenant's class, then stream one NDJSON line per element as its
// future completes. Elements refused at submission (admission shed,
// bad geometry) get their line immediately; elements not yet submitted
// when the request context fires are short-circuited, mirroring
// MultiplyBatchOptsContext. Accepted jobs are always drained before
// the handler returns, so element buffers are quiescent afterwards.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErrorStatus(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	tc, err := s.tenantOf(r)
	if err != nil {
		s.writeErrorStatus(w, http.StatusUnauthorized, err.Error())
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErrorStatus(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Elements) == 0 {
		s.writeErrorStatus(w, http.StatusBadRequest, "empty batch")
		return
	}
	if len(req.Elements) > s.cfg.MaxBatch {
		s.writeErrorStatus(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the limit %d", len(req.Elements), s.cfg.MaxBatch))
		return
	}

	s.count(http.StatusOK)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	writeLine := func(line BatchLine) {
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Submission pass: accepted elements fan their completion into one
	// channel via OnDone (scheduler-owned goroutines — this package
	// spawns none); refused elements answer immediately.
	type pendingElem struct {
		fut *autogemm.Future
		c   []float32
	}
	pending := make(map[int]pendingElem, len(req.Elements))
	done := make(chan int, len(req.Elements))
	for i := range req.Elements {
		if err := r.Context().Err(); err != nil {
			writeLine(BatchLine{Index: i, Error: err.Error(), Status: autogemm.HTTPStatus(err)})
			continue
		}
		fut, c, err := s.submit(r, tc, &req.Elements[i])
		if err != nil {
			status := autogemm.HTTPStatus(err)
			if status == http.StatusInternalServerError {
				status = http.StatusBadRequest
			}
			writeLine(BatchLine{Index: i, Error: err.Error(), Status: status})
			continue
		}
		pending[i] = pendingElem{fut: fut, c: c}
		idx := i
		fut.OnDone(func(error) { done <- idx })
	}

	// Streaming pass: one line per accepted element, in completion
	// order. Every accepted future is drained even after a client
	// disconnect — the write just goes nowhere.
	for n := len(pending); n > 0; n-- {
		idx := <-done
		pe := pending[idx]
		if err := pe.fut.Wait(); err != nil {
			writeLine(BatchLine{Index: idx, Error: err.Error(), Status: autogemm.HTTPStatus(err)})
			continue
		}
		writeLine(BatchLine{Index: idx, C: pe.c})
	}
}

// handleClasses is the runtime control plane: GET snapshots every
// class's scheduler counters, POST retunes one class through
// Engine.ConfigureClass — the operation whose keep-on-zero depth
// contract the regression suite pins.
func (s *Server) handleClasses(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.count(http.StatusOK)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.eng.PlanCacheStats().SchedClasses)
	case http.MethodPost:
		var upd ClassUpdate
		if err := json.NewDecoder(r.Body).Decode(&upd); err != nil {
			s.writeErrorStatus(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		if upd.Class == "" {
			s.writeErrorStatus(w, http.StatusBadRequest, "class is required")
			return
		}
		s.eng.ConfigureClass(upd.Class, upd.Weight, upd.Depth)
		cs, _ := s.eng.ClassStats(upd.Class)
		s.count(http.StatusOK)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(cs)
	default:
		s.writeErrorStatus(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}
