// Package ctxbad is a seeded-defect fixture for the ctxfirst analyzer:
// exported context variants with the context in the wrong position.
package ctxbad

import "context"

// RunContext takes the context second. // want ctxfirst
func RunContext(workers int, ctx context.Context) error {
	_ = workers
	<-ctx.Done()
	return ctx.Err()
}

// T is a receiver for the method case.
type T struct{}

// WaitContext buries the context last. // want ctxfirst
func (T) WaitContext(a, b int, ctx context.Context) error {
	_, _ = a, b
	return ctx.Err()
}

// Good takes the context first and must NOT be flagged.
func Good(ctx context.Context, workers int) error {
	_ = workers
	return ctx.Err()
}

// unexported variants are exempt from the convention.
func helper(n int, ctx context.Context) error {
	_ = n
	return ctx.Err()
}

var _ = helper
