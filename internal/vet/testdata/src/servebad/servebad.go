// Package servebad is a seeded-defect fixture shaped like serving
// front-door code — the HTTP layer cmd/autogemm-serve and
// internal/serve must keep clean. Request handlers must not spawn
// goroutines of their own (streaming fans in through scheduler-owned
// future callbacks), and exported context-taking client helpers follow
// the context-first convention. The fixture is swept posed as
// autogemm/cmd/autogemm-serve to prove the rules reach the serving
// binary — no exemption may apply there.
package servebad

import "context"

// result is a stand-in for one element's completion.
type result struct {
	index int
	err   error
}

// StreamBatch drains completions with an ad-hoc goroutine per element
// instead of a scheduler-owned callback. // want goroutine
func StreamBatch(n int, wait func(int) error) <-chan result {
	out := make(chan result, n)
	for i := 0; i < n; i++ {
		go func(idx int) {
			out <- result{index: idx, err: wait(idx)}
		}(i)
	}
	return out
}

// Shutdown spawns its own drain watcher instead of context.AfterFunc
// or a bounded close. // want goroutine
func Shutdown(stop <-chan struct{}, drain func()) {
	go func() {
		<-stop
		drain()
	}()
}

// MultiplyContext is a client helper burying the context. // want ctxfirst
func MultiplyContext(m, n, k int, ctx context.Context) error {
	_, _, _ = m, n, k
	return ctx.Err()
}

// Serve is the clean shape: synchronous per-request work, context
// first. Must NOT be flagged.
func Serve(ctx context.Context, handle func() error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return handle()
}
