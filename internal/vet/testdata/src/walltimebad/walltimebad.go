// Package walltimebad seeds walltime-rule violations: wall-clock reads
// on the virtual-time-critical task path. The fixture is swept under
// the import path of a critical package (the rule is inclusion-scoped)
// and must yield exactly two findings — the unapproved time.Now and
// time.Since — while the approved call site and the uses of time that
// do not read the clock stay clean.
package walltimebad

import "time"

// taskCycles feeds a simulated schedule from the host clock — the
// defect the rule exists to catch.
func taskCycles() float64 {
	start := time.Now() // want: walltime
	work()
	return float64(time.Since(start)) // want: walltime
}

// drainDeadline bounds a real wait on a real clock; it never feeds
// virtual time, so the site is approved.
//
// vet:allow walltime
func drainDeadline() time.Time {
	return time.Now().Add(5 * time.Second)
}

// backoff uses the time package without reading the clock — durations
// and timers are fine, only Now/Since are clock reads.
func backoff(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

func work() {}
