// Package planmutbad is a seeded-defect fixture for the planmut
// analyzer: every function mutates a published plan through a pointer.
package planmutbad

import "autogemm/internal/plan"

// TamperAssign overwrites a field of a shared plan.
func TamperAssign(p *plan.Plan) {
	p.Source = "evil" // want planmut
}

// TamperCompound grows the model estimate in place.
func TamperCompound(p *plan.Plan) {
	p.ModelCycles += 1 // want planmut
}

// TamperNested reaches a nested panel through the plan pointer.
func TamperNested(p *plan.Plan) {
	p.Blocks[0].Panels[0].Row++ // want planmut
}

// TamperAlias hands out a mutation capability.
func TamperAlias(p *plan.Plan) *[]string {
	return &p.KernelKeys // want planmut
}

// BuildLocal constructs a plan value locally; field writes on the
// not-yet-published copy are legitimate and must NOT be flagged.
func BuildLocal() plan.Block {
	var b plan.Block
	b.M = 8
	b.Panels = append(b.Panels, plan.Panel{M: 8, N: 8, MR: 8, NR: 8})
	return b
}
