// Package unsafebad is a seeded-defect fixture for the unsafeptr
// analyzer: it imports unsafe outside internal/sim/compile.
package unsafebad

import "unsafe" // want unsafeptr

// Peek reinterprets a float bit pattern the forbidden way.
func Peek(f *float32) uint32 {
	return *(*uint32)(unsafe.Pointer(f))
}
