// Package gobad is a seeded-defect fixture for the goroutine analyzer:
// it spawns goroutines outside the scheduler runtime.
package gobad

// Launch fires an untracked goroutine. // want goroutine
func Launch(done chan struct{}) {
	go func() { close(done) }()
}

// LaunchCall spawns via a plain call expression. // want goroutine
func LaunchCall(f func()) {
	go f()
}

// DrainQueue is the queue-shaped variant: a per-class job queue
// drained by an ad-hoc goroutine instead of a pool worker. // want goroutine
func DrainQueue(jobs chan func()) {
	go func() {
		for j := range jobs {
			j()
		}
	}()
}
