package vet_test

import (
	"path/filepath"
	"testing"

	"autogemm/internal/vet"
)

// runFixture sweeps one seeded-defect package under testdata/src and
// returns its findings. Fixtures get a synthetic import path so no
// analyzer's package exemption accidentally applies.
func runFixture(t *testing.T, name string) []vet.Finding {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	findings, err := vet.RunDir(dir, "fixture/"+name, vet.All())
	if err != nil {
		t.Fatalf("RunDir(%s): %v", name, err)
	}
	return findings
}

// TestSeededDefects proves each analyzer has teeth: every fixture
// carries deliberate violations of exactly one rule, and the analyzer
// must flag all of them (and nothing else — each fixture also contains
// legitimate code that must stay clean).
func TestSeededDefects(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
		want     int
	}{
		{"planmutbad", "planmut", 4},
		{"unsafebad", "unsafeptr", 1},
		{"ctxbad", "ctxfirst", 2},
		{"gobad", "goroutine", 2},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			findings := runFixture(t, tc.fixture)
			if len(findings) != tc.want {
				t.Errorf("got %d finding(s), want %d:", len(findings), tc.want)
				for _, f := range findings {
					t.Logf("  %s", f)
				}
			}
			for _, f := range findings {
				if f.Analyzer != tc.analyzer {
					t.Errorf("unexpected analyzer %s: %s", f.Analyzer, f)
				}
			}
		})
	}
}

// TestSkipExemptsConfinedPackage checks the package exemptions: the
// same defect inside the package a rule confines to is not reported.
func TestSkipExemptsConfinedPackage(t *testing.T) {
	dir := filepath.Join("testdata", "src", "gobad")
	findings, err := vet.RunDir(dir, "autogemm/internal/sched", vet.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "goroutine" {
			t.Errorf("goroutine rule fired inside its own exempt package: %s", f)
		}
	}
}

// TestTreeIsClean sweeps the real module with every analyzer and
// requires zero findings — the invariants the analyzers encode are
// supposed to hold on the shipped tree, not just in principle.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck is slow; skipped in -short mode")
	}
	root, err := vet.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := vet.Run(root, vet.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
