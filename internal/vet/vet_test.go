package vet_test

import (
	"path/filepath"
	"testing"

	"autogemm/internal/vet"
)

// runFixture sweeps one seeded-defect package under testdata/src and
// returns its findings. Fixtures get a synthetic import path so no
// analyzer's package exemption accidentally applies.
func runFixture(t *testing.T, name string) []vet.Finding {
	t.Helper()
	return runFixtureAs(t, name, "fixture/"+name)
}

// runFixtureAs sweeps a fixture under an explicit import path —
// inclusion-scoped rules (walltime) only fire when the fixture poses as
// a package inside their scope.
func runFixtureAs(t *testing.T, name, pkgPath string) []vet.Finding {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	findings, err := vet.RunDir(dir, pkgPath, vet.All())
	if err != nil {
		t.Fatalf("RunDir(%s): %v", name, err)
	}
	return findings
}

// TestSeededDefects proves each analyzer has teeth: every fixture
// carries deliberate violations of exactly one rule, and the analyzer
// must flag all of them (and nothing else — each fixture also contains
// legitimate code that must stay clean).
func TestSeededDefects(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer string
		want     int
		pkgPath  string // non-default import path (inclusion-scoped rules)
	}{
		{"planmutbad", "planmut", 4, ""},
		{"unsafebad", "unsafeptr", 1, ""},
		{"ctxbad", "ctxfirst", 2, ""},
		{"gobad", "goroutine", 3, ""},
		// walltime only fires inside virtual-time-critical packages, so
		// the fixture poses as internal/sched.
		{"walltimebad", "walltime", 2, "autogemm/internal/sched"},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			var findings []vet.Finding
			if tc.pkgPath != "" {
				findings = runFixtureAs(t, tc.fixture, tc.pkgPath)
			} else {
				findings = runFixture(t, tc.fixture)
			}
			if len(findings) != tc.want {
				t.Errorf("got %d finding(s), want %d:", len(findings), tc.want)
				for _, f := range findings {
					t.Logf("  %s", f)
				}
			}
			for _, f := range findings {
				if f.Analyzer != tc.analyzer {
					t.Errorf("unexpected analyzer %s: %s", f.Analyzer, f)
				}
			}
		})
	}
}

// TestServeCmdScopeCovered sweeps the serving-shaped fixture posed as
// the serving binary's import path: the goroutine and ctxfirst rules
// must reach cmd/autogemm-serve — request handlers spawning their own
// goroutines or burying the context are exactly the defects the
// serving layer must not grow, and no package exemption may shadow
// them there.
func TestServeCmdScopeCovered(t *testing.T) {
	findings := runFixtureAs(t, "servebad", "autogemm/cmd/autogemm-serve")
	got := map[string]int{}
	for _, f := range findings {
		got[f.Analyzer]++
	}
	if got["goroutine"] != 2 {
		t.Errorf("goroutine findings in cmd/autogemm-serve scope = %d, want 2", got["goroutine"])
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}
	if got["ctxfirst"] != 1 {
		t.Errorf("ctxfirst findings in cmd/autogemm-serve scope = %d, want 1", got["ctxfirst"])
	}
	if extra := len(findings) - got["goroutine"] - got["ctxfirst"]; extra != 0 {
		t.Errorf("%d finding(s) from unexpected analyzers", extra)
	}
}

// TestSkipExemptsConfinedPackage checks the package exemptions: the
// same defect inside the package a rule confines to is not reported.
func TestSkipExemptsConfinedPackage(t *testing.T) {
	dir := filepath.Join("testdata", "src", "gobad")
	findings, err := vet.RunDir(dir, "autogemm/internal/sched", vet.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "goroutine" {
			t.Errorf("goroutine rule fired inside its own exempt package: %s", f)
		}
	}
}

// TestWalltimeScopeExcludesRestOfTree checks the walltime rule's
// inclusion scope: the same wall-clock reads outside the critical
// packages (a benchmark driver, say) are not reported.
func TestWalltimeScopeExcludesRestOfTree(t *testing.T) {
	findings := runFixture(t, "walltimebad") // swept as fixture/walltimebad
	for _, f := range findings {
		if f.Analyzer == "walltime" {
			t.Errorf("walltime rule fired outside its critical-package scope: %s", f)
		}
	}
}

// TestTreeIsClean sweeps the real module with every analyzer and
// requires zero findings — the invariants the analyzers encode are
// supposed to hold on the shipped tree, not just in principle.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree typecheck is slow; skipped in -short mode")
	}
	root, err := vet.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := vet.Run(root, vet.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
