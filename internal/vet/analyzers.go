package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// All returns the module's analyzer set in reporting order.
func All() []*Analyzer {
	return []*Analyzer{PlanMut, UnsafePtr, CtxFirst, Goroutine, Walltime}
}

// pathIs reports whether pkgPath is the module package with the given
// suffix (matched on whole path segments, so "internal/plan" does not
// match "internal/plan/audit" or "myinternal/plan").
func pathIs(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// PlanMut enforces the plan immutability contract: once a *plan.Plan is
// published, nothing outside the plan package may assign to fields of
// its structs. The static auditor proves coverage and bounds for a plan
// at attach time; those proofs stay valid only if the audited value
// never changes afterwards. Constructing plan values locally (composite
// literals, field writes on a local non-pointer variable before
// publication) is fine — the analyzer flags writes that reach a plan
// struct through a pointer, which is how shared, already-published
// plans are touched.
var PlanMut = &Analyzer{
	Name: "planmut",
	Doc:  "no mutation of plan.Plan (or its nested structs) through a pointer outside internal/plan",
	Skip: func(pkgPath string) bool { return pathIs(pkgPath, "internal/plan") },
	Run:  runPlanMut,
}

func runPlanMut(p *Pass) {
	flag := func(expr ast.Expr) {
		lhs, ok := expr.(*ast.SelectorExpr)
		if !ok {
			return
		}
		sel, ok := p.Info.Selections[lhs]
		if !ok || sel.Kind() != types.FieldVal {
			return
		}
		if base, name := planPointerBase(p.Info, lhs); base != nil {
			p.Reportf(lhs.Sel.Pos(),
				"assignment to plan.%s.%s through a pointer; plans are immutable after construction — build with plan.Builder or copy with WithSource",
				name, lhs.Sel.Name)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, l := range st.Lhs {
					flag(l)
				}
			case *ast.IncDecStmt:
				flag(st.X)
			case *ast.UnaryExpr:
				// Taking the address of a field of a published plan hands
				// out a mutation capability; flag it the same way.
				if st.Op == token.AND {
					flag(st.X)
				}
			}
			return true
		})
	}
}

// planPointerBase walks the access chain of expr (selectors, index
// expressions, parens, derefs) and reports the first operand whose type
// is a pointer to a struct defined in internal/plan, returning that
// operand and the struct's name. It returns nil when the chain is
// rooted in a plain value (a local copy under construction).
func planPointerBase(info *types.Info, expr ast.Expr) (ast.Expr, string) {
	for {
		var inner ast.Expr
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			inner = e.X
		case *ast.IndexExpr:
			inner = e.X
		case *ast.ParenExpr:
			inner = e.X
		case *ast.StarExpr:
			inner = e.X
		default:
			return nil, ""
		}
		if tv, ok := info.Types[inner]; ok {
			if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok && isPlanStruct(named) {
					return inner, named.Obj().Name()
				}
			}
		}
		expr = inner
	}
}

func isPlanStruct(named *types.Named) bool {
	obj := named.Obj()
	if obj.Pkg() == nil || !pathIs(obj.Pkg().Path(), "internal/plan") {
		return false
	}
	_, ok := named.Underlying().(*types.Struct)
	return ok
}

// UnsafePtr confines unsafe to the compiled-executor package. The JIT
// boundary in internal/sim/compile is the one place the module
// legitimately reinterprets memory; an unsafe import anywhere else is a
// new, unreviewed hole in the memory-safety story the plan auditor's
// bounds proofs assume.
var UnsafePtr = &Analyzer{
	Name: "unsafeptr",
	Doc:  "unsafe is imported only by internal/sim/compile",
	Skip: func(pkgPath string) bool { return pathIs(pkgPath, "internal/sim/compile") },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, imp := range f.Imports {
				if imp.Path.Value == `"unsafe"` {
					p.Reportf(imp.Pos(),
						"unsafe imported outside internal/sim/compile; keep raw-memory code behind the JIT boundary")
				}
			}
		}
	},
}

// CtxFirst keeps the context-variant API convention: any exported
// function or method that takes a context.Context takes it as the first
// parameter, matching MultiplyContext / SubmitContext / WaitContext.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported functions taking a context.Context take it first",
	Run: func(p *Pass) {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !fn.Name.IsExported() || fn.Type.Params == nil {
					continue
				}
				pos := 0
				for _, field := range fn.Type.Params.List {
					n := len(field.Names)
					if n == 0 {
						n = 1
					}
					if isContextType(p.Info, field.Type) && pos != 0 {
						p.Reportf(field.Pos(),
							"%s takes a context.Context at parameter %d; context goes first in exported signatures",
							fn.Name.Name, pos+1)
					}
					pos += n
				}
			}
		}
	},
}

func isContextType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// Walltime keeps the virtual-time-critical task path free of wall-clock
// reads. Simulated schedules (the Timekeeper seam in internal/sched,
// the cycle models in internal/sim, the replay engine in internal/vtime)
// are bit-deterministic only because no cost or ordering decision ever
// consults the host clock — a stray time.Now in those packages would
// silently couple results to machine load. Unlike the confinement
// rules, this one is inclusion-scoped: it runs only inside the critical
// packages and skips the rest of the tree (drivers and benchmarks
// legitimately measure wall time). A deliberate wall-clock call site
// (e.g. CloseWithTimeout's drain deadline, which bounds real waiting
// and never feeds virtual time) is approved by a "vet:allow walltime"
// line in the enclosing function's doc comment.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "no time.Now/time.Since in virtual-time-critical packages (internal/sched, internal/sim, internal/vtime) outside approved call sites",
	Skip: func(pkgPath string) bool {
		for _, crit := range []string{
			"internal/sched", "internal/sim", "internal/sim/compile", "internal/vtime",
		} {
			if pathIs(pkgPath, crit) {
				return false
			}
		}
		return true
	},
	Run: runWalltime,
}

// walltimeAllow is the approval directive for Walltime.
const walltimeAllow = "vet:allow walltime"

func hasWalltimeAllow(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, walltimeAllow) {
			return true
		}
	}
	return false
}

func runWalltime(p *Pass) {
	flagCalls := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkg, ok := p.Info.Uses[id].(*types.PkgName)
			if !ok || pkg.Imported().Path() != "time" {
				return true
			}
			if name := sel.Sel.Name; name == "Now" || name == "Since" {
				p.Reportf(call.Pos(),
					"time.%s in virtual-time-critical package %s; simulated schedules must not read the wall clock — derive time from charged cycles, or approve the site with a %q doc comment",
					name, p.PkgPath, walltimeAllow)
			}
			return true
		})
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && hasWalltimeAllow(fn.Doc) {
				continue // approved call site
			}
			flagCalls(decl)
		}
	}
}

// Goroutine forbids bare go statements outside the scheduler runtime.
// All concurrency flows through internal/sched so panics are contained,
// cancellation propagates, and worker count is governed in one place; a
// stray goroutine elsewhere escapes all three.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc:  "no bare go statements outside internal/sched",
	Skip: func(pkgPath string) bool { return pathIs(pkgPath, "internal/sched") },
	Run: func(p *Pass) {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(),
						"bare go statement outside internal/sched; submit work through the scheduler runtime")
				}
				return true
			})
		}
	},
}
