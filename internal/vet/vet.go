// Package vet is a small, dependency-free static-analysis framework
// for this module's own invariants — the runtime rules that ordinary
// `go vet` cannot know about:
//
//   - plan.Plan values are immutable after construction outside the
//     plan package (the contract the plan auditor's proofs rest on);
//   - unsafe.Pointer stays confined to the compiled executor;
//   - exported context variants take the context first;
//   - goroutines are only spawned by the scheduler runtime.
//
// It deliberately mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf) but is built purely on the standard
// library: go/parser for syntax and go/types with the source importer
// for type information, so the module's zero-dependency rule holds for
// its own tooling too. cmd/autogemm-vet is the driver.
package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one rule violation at a position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Analyzer is one named rule over a typechecked package.
type Analyzer struct {
	Name string
	Doc  string

	// Skip exempts whole packages by import path (e.g. the package a
	// confinement rule confines to). Nil skips nothing. Test files are
	// exempt globally: the loader never parses them.
	Skip func(pkgPath string) bool

	Run func(*Pass)
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	PkgPath  string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// loader typechecks package directories with a shared file set and a
// shared (caching) source importer, so a tree sweep typechecks each
// dependency once.
type loader struct {
	fset *token.FileSet
	imp  types.Importer
}

func newLoader() *loader {
	fset := token.NewFileSet()
	return &loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// load parses and typechecks the non-test Go files of one directory as
// package path pkgPath.
func (l *loader) load(dir, pkgPath string) (*Pass, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("vet: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: typecheck %s: %w", pkgPath, err)
	}
	return &Pass{PkgPath: pkgPath, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// runAnalyzers applies every non-skipped analyzer to a loaded package.
func runAnalyzers(pass *Pass, analyzers []*Analyzer, out *[]Finding) {
	for _, a := range analyzers {
		if a.Skip != nil && a.Skip(pass.PkgPath) {
			continue
		}
		p := *pass
		p.Analyzer = a
		p.report = func(f Finding) { *out = append(*out, f) }
		a.Run(&p)
	}
}

// RunDir typechecks one package directory under the given import path
// and applies the analyzers — the entry point tests use to drive
// seeded-defect fixtures.
func RunDir(dir, pkgPath string, analyzers []*Analyzer) ([]Finding, error) {
	pass, err := newLoader().load(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	if pass == nil {
		return nil, nil
	}
	var out []Finding
	runAnalyzers(pass, analyzers, &out)
	sortFindings(out)
	return out, nil
}

// ModulePath reads the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("vet: no module line in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("vet: no go.mod above %s", dir)
		}
		abs = parent
	}
}

// Run sweeps every package of the module rooted at root (skipping
// testdata, vendor and hidden directories) through the analyzers and
// returns the findings sorted by position. Packages that fail to
// typecheck abort the sweep with an error: the rules are only
// meaningful on a tree that compiles.
func Run(root string, analyzers []*Analyzer) ([]Finding, error) {
	mod, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	l := newLoader()
	var out []Finding
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := mod
		if rel != "." {
			pkgPath = mod + "/" + filepath.ToSlash(rel)
		}
		pass, err := l.load(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		if pass == nil {
			continue
		}
		runAnalyzers(pass, analyzers, &out)
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Pos.Filename != fs[j].Pos.Filename {
			return fs[i].Pos.Filename < fs[j].Pos.Filename
		}
		if fs[i].Pos.Line != fs[j].Pos.Line {
			return fs[i].Pos.Line < fs[j].Pos.Line
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}
