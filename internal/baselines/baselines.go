// Package baselines models the comparison libraries of the paper's
// evaluation (§V, Table I): OpenBLAS, Eigen, LibShalom, FastConv,
// LIBXSMM, a generic TVM schedule, and Fujitsu SSL2. Each provider is a
// configuration of the same execution engine (package core) expressing
// that library's documented strategy — tiling style, packing policy,
// pipeline quality and dispatch overhead — so the comparisons measure
// strategy differences on identical simulated hardware, the quantity the
// paper's figures are about.
package baselines

import (
	"fmt"

	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/tiling"
)

// Provider is a GEMM implementation that can be planned on a chip.
type Provider struct {
	Name string
	// Supports reports whether the library can run the problem on the
	// chip (LibShalom needs N and K divisible by 8 and no SVE; SSL2 is
	// A64FX-only).
	Supports func(chip *hw.Chip, m, n, k int) bool
	// Configure returns the library's options for a problem.
	Configure func(chip *hw.Chip, m, n, k int) core.Options
}

// Plan builds the provider's execution plan for a problem.
func (p Provider) Plan(chip *hw.Chip, m, n, k int) (*core.Plan, error) {
	if p.Supports != nil && !p.Supports(chip, m, n, k) {
		return nil, fmt.Errorf("baselines: %s does not support %dx%dx%d on %s", p.Name, m, n, k, chip.Name)
	}
	return core.NewPlan(chip, m, n, k, p.Configure(chip, m, n, k))
}

// Estimate is a convenience: plan and project in one step.
func (p Provider) Estimate(chip *hw.Chip, m, n, k int) (core.Estimate, error) {
	plan, err := p.Plan(chip, m, n, k)
	if err != nil {
		return core.Estimate{}, err
	}
	return plan.Estimate()
}

func anyProblem(*hw.Chip, int, int, int) bool { return true }

// AutoGEMM is this library with its default configuration (rotation,
// fusion, DMT tiling, automatic packing and blocking).
func AutoGEMM() Provider {
	return Provider{
		Name:     "autoGEMM",
		Supports: anyProblem,
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			opts := core.AutoOptions(chip)
			if n >= 2048 {
				// §V-C: autoGEMM can enable offline packing of B for
				// near-peak performance on wide irregular shapes.
				opts.Pack = core.PackOffline
			}
			return opts
		},
	}
}

// OpenBLAS models the classic hand-tuned library: one fixed kernel shape
// with padded edges, unconditional packing, blocking tuned for large
// matrices, and a heavyweight dispatch path — the reasons the paper
// measures it at ~35% on 64³ yet competitive on large square GEMM.
func OpenBLAS() Provider {
	return Provider{
		Name:     "OpenBLAS",
		Supports: anyProblem,
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			return core.Options{
				Strategy: core.PaddedStrategy(chip),
				Pack:     core.PackOnline,
				Rotate:   true,  // hand-written kernels pipeline well...
				Fuse:     false, // ...but tiles launch independently
				// Blocking tuned for large square GEMM: the fixed panel
				// sizes keep B in L2 (hand-written prefetch covers that),
				// but never down in L1 the way the retuned kernels manage.
				MC:           128,
				KC:           min(k, 128),
				NC:           min(n, 512),
				CallOverhead: 48000,
			}
		},
	}
}

// Eigen models the expression-template library: compiler-scheduled
// kernels (no hand pipelining), a smaller register tile, packing always.
func Eigen() Provider {
	return Provider{
		Name:     "Eigen",
		Supports: anyProblem,
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			return core.Options{
				Strategy: tiling.LIBXSMMStyle{
					T: mkernel.Tile{MR: 4, NR: 2 * chip.Lanes}, Lanes: chip.Lanes},
				Pack:         core.PackOnline,
				Rotate:       false,
				Fuse:         false,
				CallOverhead: 6000,
			}
		},
	}
}

// LibShalom models the state-of-the-art hand-optimized irregular-GEMM
// library: rotation and fusion, offline packing of B for large inputs,
// but a single static main tile — and the documented restriction that it
// computes correctly only when N and K are divisible by 8, with no SVE
// port (§V-C: not evaluated on M2/A64FX).
func LibShalom() Provider {
	return Provider{
		Name: "LibShalom",
		Supports: func(chip *hw.Chip, m, n, k int) bool {
			return !chip.SVE && chip.Name != "M2" && n%8 == 0 && k%8 == 0
		},
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			pack := core.PackAuto
			if n >= 512 {
				pack = core.PackOffline
			}
			return core.Options{
				Strategy:     core.EdgeStrategy(chip),
				Pack:         pack,
				Rotate:       true,
				Fuse:         true,
				CallOverhead: 700,
			}
		},
	}
}

// LIBXSMM models the JIT small-GEMM specialist: a kernel generated for
// the exact shape (no dispatch overhead, no packing, fused execution)
// but with static edge tiles of possibly very low AI (Fig 5-b) and a
// straightforward JIT pipeline without rotation.
func LIBXSMM() Provider {
	return Provider{
		Name: "LIBXSMM",
		// LIBXSMM targets small and skinny GEMM; the paper reports N/A
		// for the large irregular case in Table I.
		Supports: func(chip *hw.Chip, m, n, k int) bool {
			return m*n*k <= 1<<24
		},
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			return core.Options{
				// The JIT emits a serviceable but conservative tile.
				Strategy: tiling.LIBXSMMStyle{
					T: mkernel.Tile{MR: 4, NR: 3 * chip.Lanes}, Lanes: chip.Lanes},
				Pack:         core.PackNone,
				Rotate:       false,
				Fuse:         true,
				CallOverhead: 300,
			}
		},
	}
}

// FastConv models the convolution-oriented code generator: generated
// kernels with decent shapes but no irregular-edge balancing and a
// moderate runtime.
func FastConv() Provider {
	return Provider{
		Name:     "FastConv",
		Supports: anyProblem,
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			return core.Options{
				Strategy: tiling.LIBXSMMStyle{
					T: mkernel.Tile{MR: 6, NR: 2 * chip.Lanes}, Lanes: chip.Lanes},
				Pack:         core.PackOnline,
				Rotate:       true,
				Fuse:         false,
				CallOverhead: 12000,
			}
		},
	}
}

// TVMGeneric models an auto-scheduled TVM kernel without autoGEMM's
// patches: good loop structure and fusion, power-of-two tiles only, no
// assembly-level pipeline control.
func TVMGeneric() Provider {
	return Provider{
		Name:     "TVM",
		Supports: anyProblem,
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			return core.Options{
				Strategy: tiling.LIBXSMMStyle{
					T: mkernel.Tile{MR: 4, NR: 4 * chip.Lanes}, Lanes: chip.Lanes},
				Pack:   core.PackAuto,
				Rotate: false,
				// TVM fuses loop nests but does not software-pipeline
				// across adjacent micro-kernel bodies the way §III-C2's
				// epilogue-prologue fusion does.
				Fuse: false,
				// Power-of-two schedule templates.
				NC:           minPow2Cap(n, 128),
				CallOverhead: 2500,
			}
		},
	}
}

// SSL2 models Fujitsu's vendor library on A64FX: excellent large-GEMM
// SVE kernels behind a heavyweight entry path.
func SSL2() Provider {
	return Provider{
		Name: "SSL2",
		Supports: func(chip *hw.Chip, m, n, k int) bool {
			return chip.Name == "A64FX"
		},
		Configure: func(chip *hw.Chip, m, n, k int) core.Options {
			return core.Options{
				Strategy:     core.EdgeStrategy(chip),
				Pack:         core.PackOnline,
				Rotate:       true,
				Fuse:         true,
				CallOverhead: 15000,
			}
		},
	}
}

// All returns every provider including autoGEMM, in Table I column order.
func All() []Provider {
	return []Provider{OpenBLAS(), Eigen(), LibShalom(), FastConv(), LIBXSMM(), TVMGeneric(), AutoGEMM()}
}

// ByName finds a provider.
func ByName(name string) (Provider, error) {
	for _, p := range append(All(), SSL2()) {
		if p.Name == name {
			return p, nil
		}
	}
	return Provider{}, fmt.Errorf("baselines: unknown provider %q", name)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// minPow2Cap rounds n down to a power of two, capped.
func minPow2Cap(n, cap int) int {
	p := 1
	for p*2 <= n && p*2 <= cap {
		p *= 2
	}
	return p
}
