package baselines

import (
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// TestProvidersComputeCorrectly: every provider's plan is numerically
// correct — the paper verifies all libraries agree to 1e-6 (§V).
func TestProvidersComputeCorrectly(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 24, 40, 16
	for _, p := range All() {
		if !p.Supports(chip, m, n, k) {
			continue
		}
		plan, err := p.Plan(chip, m, n, k)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, m*n)
		refgemm.Fill(a, m, k, k, 7)
		refgemm.Fill(b, k, n, n, 8)
		refgemm.Fill(c, m, n, n, 9)
		want := make([]float32, m*n)
		copy(want, c)
		refgemm.GEMM(m, n, k, a, k, b, n, want, n)
		if err := plan.Run(c, a, b); err != nil {
			t.Fatalf("%s: Run: %v", p.Name, err)
		}
		if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
			t.Errorf("%s: max rel err %.3g", p.Name, e)
		}
	}
}

// TestTableISmallOrdering reproduces the efficiency ordering of Table I's
// small-GEMM row (M=N=K=64): OpenBLAS < Eigen < FastConv < LIBXSMM < TVM
// < LibShalom < autoGEMM on KP920.
func TestTableISmallOrdering(t *testing.T) {
	chip := hw.KP920()
	order := []Provider{OpenBLAS(), Eigen(), FastConv(), LIBXSMM(), TVMGeneric(), LibShalom(), AutoGEMM()}
	prev := -1.0
	prevName := ""
	for _, p := range order {
		est, err := p.Estimate(chip, 64, 64, 64)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if est.Efficiency <= prev {
			t.Errorf("Table I order violated: %s (%.1f%%) <= %s (%.1f%%)",
				p.Name, est.Efficiency*100, prevName, prev*100)
		}
		prev, prevName = est.Efficiency, p.Name
	}
}

// TestTableISmallBands checks the absolute efficiency bands at 64³:
// baselines land near the paper's Table I values (generous ±12 points;
// autoGEMM and LibShalom run into the simulator's ~90% ceiling, see
// EXPERIMENTS.md).
func TestTableISmallBands(t *testing.T) {
	chip := hw.KP920()
	want := map[string]float64{
		"OpenBLAS": 0.35, "Eigen": 0.50, "FastConv": 0.58,
		"LIBXSMM": 0.68, "TVM": 0.78,
	}
	for _, p := range All() {
		target, ok := want[p.Name]
		if !ok {
			continue
		}
		est, err := p.Estimate(chip, 64, 64, 64)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if diff := est.Efficiency - target; diff > 0.12 || diff < -0.12 {
			t.Errorf("%s at 64^3: %.1f%%, Table I says %.0f%%", p.Name, est.Efficiency*100, target*100)
		}
	}
	auto, _ := AutoGEMM().Estimate(chip, 64, 64, 64)
	if auto.Efficiency < 0.85 {
		t.Errorf("autoGEMM at 64^3: %.1f%%, want near peak", auto.Efficiency*100)
	}
}

// TestTableIIrregularOrdering reproduces the irregular row
// (M=256, N=3136, K=64): OpenBLAS and Eigen at the bottom, LIBXSMM N/A,
// autoGEMM on top.
func TestTableIIrregularOrdering(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 256, 3136, 64
	eff := map[string]float64{}
	for _, p := range All() {
		if !p.Supports(chip, m, n, k) {
			continue
		}
		est, err := p.Estimate(chip, m, n, k)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		eff[p.Name] = est.Efficiency
	}
	if _, ok := eff["LIBXSMM"]; ok {
		t.Error("LIBXSMM should be N/A for the irregular shape (Table I)")
	}
	auto := eff["autoGEMM"]
	for name, e := range eff {
		if name != "autoGEMM" && e >= auto {
			t.Errorf("%s (%.1f%%) >= autoGEMM (%.1f%%) on the irregular shape", name, e*100, auto*100)
		}
	}
	if eff["OpenBLAS"] >= eff["LibShalom"] || eff["Eigen"] >= eff["LibShalom"] {
		t.Error("OpenBLAS/Eigen should trail LibShalom on irregular shapes")
	}
	// The paper reports 1.3–2.0x for autoGEMM over OpenBLAS and Eigen.
	if r := auto / eff["OpenBLAS"]; r < 1.3 {
		t.Errorf("autoGEMM/OpenBLAS speedup %.2fx, paper reports >= 1.3x", r)
	}
	if r := auto / eff["Eigen"]; r < 1.3 {
		t.Errorf("autoGEMM/Eigen speedup %.2fx, paper reports >= 1.3x", r)
	}
}

// TestSupportPredicates verifies the documented library restrictions.
func TestSupportPredicates(t *testing.T) {
	ls := LibShalom()
	if ls.Supports(hw.KP920(), 64, 63, 64) {
		t.Error("LibShalom should require N %% 8 == 0")
	}
	if ls.Supports(hw.KP920(), 64, 64, 63) {
		t.Error("LibShalom should require K %% 8 == 0")
	}
	if ls.Supports(hw.M2(), 64, 64, 64) || ls.Supports(hw.A64FX(), 64, 64, 64) {
		t.Error("LibShalom supports neither M2 nor A64FX (§V-C)")
	}
	if !ls.Supports(hw.Graviton2(), 64, 64, 64) {
		t.Error("LibShalom should support Graviton2")
	}
	s2 := SSL2()
	if s2.Supports(hw.KP920(), 64, 64, 64) || !s2.Supports(hw.A64FX(), 64, 64, 64) {
		t.Error("SSL2 is A64FX-only")
	}
	if _, err := LibShalom().Plan(hw.M2(), 64, 64, 64); err == nil {
		t.Error("Plan should fail for unsupported problems")
	}
}

// TestByName round-trips every provider.
func TestByName(t *testing.T) {
	for _, name := range []string{"OpenBLAS", "Eigen", "LibShalom", "FastConv", "LIBXSMM", "TVM", "autoGEMM", "SSL2"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("MKL"); err == nil {
		t.Error("ByName accepted an unknown library")
	}
}

// TestAutoGEMMWinsAcrossChips: on every chip, autoGEMM's small-GEMM
// efficiency beats every supported baseline (Fig 8's summary).
func TestAutoGEMMWinsAcrossChips(t *testing.T) {
	for _, chip := range hw.All() {
		auto, err := AutoGEMM().Estimate(chip, 48, 48, 48)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range All() {
			if p.Name == "autoGEMM" || !p.Supports(chip, 48, 48, 48) {
				continue
			}
			est, err := p.Estimate(chip, 48, 48, 48)
			if err != nil {
				t.Fatalf("%s/%s: %v", chip.Name, p.Name, err)
			}
			if est.Efficiency >= auto.Efficiency {
				t.Errorf("%s: %s (%.1f%%) >= autoGEMM (%.1f%%) at 48^3",
					chip.Name, p.Name, est.Efficiency*100, auto.Efficiency*100)
			}
		}
	}
}
