package plan

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Registry is an on-disk plan store: one JSON file per plan, named by
// fingerprint, in a flat directory. autogemm-tune pre-bakes registries
// offline; an Engine pointed at the directory (PlanDir option or
// AUTOGEMM_PLAN_DIR) warm-starts Multiply from them instead of planning
// from scratch — the persisted-schedule pattern of the TVM generator
// line of work and IAAT's input-aware tuning database.
//
// Writes are atomic (temp file + rename), so a registry can be rebuilt
// while serving processes read it. Concurrent Store calls for the same
// fingerprint are safe: writers race on an atomic rename, and every
// stored plan answers the same request — a later Store may replace a
// tier-0 heuristic plan with the fully tuned one, but never with a
// plan for a different fingerprint.
//
// Alongside the plan files the registry keeps a shape index
// (index.json, see index.go) so nearest-neighbor lookups need not
// decode every plan; mu serializes this process's read-modify-write
// of that sidecar.
type Registry struct {
	dir string
	mu  sync.Mutex
}

// NewRegistry returns a registry over dir. The directory is created
// lazily on first Store; Load from a missing directory simply misses.
func NewRegistry(dir string) *Registry { return &Registry{dir: dir} }

// Dir returns the registry directory.
func (r *Registry) Dir() string { return r.dir }

// path returns the file backing a fingerprint, rejecting anything that
// could escape the registry directory.
func (r *Registry) path(fp string) (string, error) {
	if fp == "" || strings.ContainsAny(fp, "/\\.") {
		return "", fmt.Errorf("plan: invalid fingerprint %q", fp)
	}
	return filepath.Join(r.dir, fp+".json"), nil
}

// Load reads the plan for a fingerprint. The decoded plan is validated
// and must actually carry the requested fingerprint — a file renamed or
// corrupted on disk is an error, not a silent wrong plan.
func (r *Registry) Load(fp string) (*Plan, error) {
	path, err := r.path(fp)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("plan: registry %s: %w", path, err)
	}
	if p.Fingerprint != fp {
		return nil, fmt.Errorf("plan: registry %s holds fingerprint %s", path, p.Fingerprint)
	}
	return p, nil
}

// Store writes a plan into the registry atomically and folds it into
// the shape index. Index maintenance is best-effort: the plan file is
// the source of truth, and a torn index rebuilds on next read.
func (r *Registry) Store(p *Plan) error {
	if err := r.storeFile(p); err != nil {
		return err
	}
	r.mu.Lock()
	_ = r.updateIndex(p)
	r.mu.Unlock()
	return nil
}

// storeFile writes just the plan file, atomically.
func (r *Registry) storeFile(p *Plan) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	path, err := r.path(p.Fingerprint)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(r.dir, "."+p.Fingerprint+".*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// List returns the fingerprints present in the registry, sorted. The
// index sidecar is not a plan and is excluded.
func (r *Registry) List() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var fps []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.HasPrefix(name, ".") ||
			name == indexName {
			continue
		}
		fps = append(fps, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(fps)
	return fps, nil
}
