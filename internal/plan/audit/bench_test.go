package audit_test

import (
	"testing"

	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/plan/audit"
)

// BenchmarkAudit measures the default (arithmetic-only) audit that
// gates every untrusted Attach. Compare against BenchmarkAttach: the
// gate must stay a small fraction of the attach it protects, so
// warm-starting from a registry is not meaningfully slower than
// trusted attach.
func BenchmarkAudit(b *testing.B) {
	chip, err := hw.ByName("KP920")
	if err != nil {
		b.Fatal(err)
	}
	rec, err := core.Produce(chip, 129, 200, 55, core.AutoOptions(chip))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := audit.Audit(chip, rec, audit.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttach is the baseline the audit gate rides on top of.
func BenchmarkAttach(b *testing.B) {
	chip, err := hw.ByName("KP920")
	if err != nil {
		b.Fatal(err)
	}
	rec, err := core.Produce(chip, 129, 200, 55, core.AutoOptions(chip))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Attach(chip, rec, core.Options{TrustedPlan: true}); err != nil {
			b.Fatal(err)
		}
	}
}
