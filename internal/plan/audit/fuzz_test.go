package audit_test

import (
	"bytes"
	"testing"

	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/plan"
	"autogemm/internal/plan/audit"
)

// FuzzPlanDecode drives mutated plan JSON through the untrusted-load
// pipeline: Decode, then the static audit, then (when both accept)
// Attach. The invariant is the trust boundary itself — arbitrary bytes
// either get rejected with an error or produce a plan that round-trips
// and attaches cleanly; no input may panic, and no input may pass the
// audit while carrying out-of-bounds tiles, since Attach re-validates
// every tiling and would fail here.
func FuzzPlanDecode(f *testing.F) {
	chip, err := hw.ByName("Graviton3")
	if err != nil {
		f.Fatalf("ByName: %v", err)
	}
	rec, err := core.Produce(chip, 64, 64, 64, core.AutoOptions(chip))
	if err != nil {
		f.Fatalf("Produce: %v", err)
	}
	data, err := rec.Encode()
	if err != nil {
		f.Fatalf("Encode: %v", err)
	}
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"format":1}`))
	f.Add(bytes.Replace(data, []byte(`"row":0`), []byte(`"row":1000`), 1))
	f.Add(bytes.Replace(data, []byte(`"format":1`), []byte(`"format":2`), 1))
	f.Add(bytes.Replace(data, []byte(`"mr":`), []byte(`"mr":-`), 1))
	f.Add(bytes.Replace(data, []byte(`"kernelKeys":[`), []byte(`"kernelKeys":["mk_bogus",`), 1))

	f.Fuzz(func(t *testing.T, in []byte) {
		p, err := plan.Decode(in)
		if err != nil {
			return // rejected at decode: the boundary held
		}
		if _, err := audit.Audit(chip, p, audit.Options{}); err != nil {
			return // rejected by the audit: the boundary held
		}
		// The audit accepted: the plan must be fully coherent. A failure
		// below means a mutation slipped through the static checks.
		if err := p.Validate(); err != nil {
			t.Fatalf("audit passed but Validate failed: %v", err)
		}
		if _, err := core.Attach(chip, p, core.Options{}); err != nil {
			t.Fatalf("audit passed but Attach failed: %v", err)
		}
		out, err := p.Encode()
		if err != nil {
			t.Fatalf("audit passed but Encode failed: %v", err)
		}
		q, err := plan.Decode(out)
		if err != nil {
			t.Fatalf("re-decode of audited plan failed: %v", err)
		}
		if q.Fingerprint != p.Fingerprint {
			t.Fatalf("round-trip changed fingerprint: %s -> %s", p.Fingerprint, q.Fingerprint)
		}
	})
}
