// Package audit statically verifies execution plans before an executor
// attaches to them. A plan produced in this process is trusted — the
// planner derived it from a live tiler and validated it on the way out.
// A plan that crossed a process boundary (registry file, wire, hand
// edit) is not: it is attacker-or-corruption-shaped JSON that names
// kernel keys, tile placements and blocking parameters the executor
// will act on. The auditor re-proves, without executing anything, the
// three properties execution relies on:
//
//   - Coverage and exclusivity: the block grid and each block's panel
//     tiling form an exact partition of the M×N output — every C cell
//     written exactly once — so the scheduler's C-tile groups are
//     race-free and results are bit-identical at any worker count.
//
//   - Bounds composition: the per-kernel symbolic over-read bounds
//     (analysis.Bounds, the same facts the compiled executor's
//     Precheck evaluates) composed with every tile placement stay
//     inside the staged scratch envelope the executor allocates, so
//     the analyzer-licensed elision of per-access checks remains
//     sound for a loaded plan.
//
//   - Structural consistency: format version, fingerprint
//     re-derivation, resolved blocking, and exact agreement between
//     the plan's kernel-key list and the keys its tilings actually
//     reach — a key the cache cannot generate, or a tiling reaching a
//     key the plan does not declare, is rejected here rather than
//     surfacing as a runtime fallback or cache miss.
//
// The default audit is pure arithmetic over the plan — no kernel is
// generated — so it is cheap enough to gate every untrusted Attach.
// Deep mode (used by the offline `autogemm-lint -audit` sweep)
// additionally generates and dataflow-analyzes every kernel the plan
// names.
package audit

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"autogemm/internal/asm/analysis"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/plan"
	"autogemm/internal/tiling"
)

// Check names, reported in Error.Check and Report.Passed.
const (
	CheckFormat      = "format"      // format version matches this build
	CheckFingerprint = "fingerprint" // fingerprint re-derives from the request
	CheckStructure   = "structure"   // resolved parameters are sane
	CheckCoverage    = "coverage"    // blocks+tiles partition M×N exactly
	CheckBounds      = "bounds"      // placements fit the scratch envelope
	CheckKernels     = "kernels"     // declared keys == reachable keys
	CheckGenerate    = "generate"    // deep: every kernel generates and analyzes
)

// ErrAuditFailed is the sentinel every audit failure wraps; callers
// branch on it with errors.Is without caring which check fired.
var ErrAuditFailed = errors.New("audit: plan failed static verification")

// Error is one audit failure: the check that fired and what it saw.
// It unwraps to ErrAuditFailed.
type Error struct {
	Check  string
	Detail string
}

func (e *Error) Error() string { return fmt.Sprintf("audit[%s]: %s", e.Check, e.Detail) }
func (e *Error) Unwrap() error { return ErrAuditFailed }

func failf(check, format string, args ...any) error {
	return &Error{Check: check, Detail: fmt.Sprintf(format, args...)}
}

// Options configures an audit.
type Options struct {
	// Deep additionally generates every kernel the plan names and runs
	// the dataflow analyzer on it — the full offline proof. Orders of
	// magnitude slower than the default arithmetic-only audit; meant
	// for the `autogemm-lint -audit` registry sweep, not the Attach
	// gate.
	Deep bool

	// Cache supplies the kernel cache deep mode generates into; nil
	// allocates a private one (generated programs are then discarded).
	Cache *mkernel.Cache
}

// Report summarizes what a successful audit proved.
type Report struct {
	Passed  []string // checks that ran, in order
	Blocks  int      // distinct block shapes verified
	Tiles   int      // micro-tile placements verified (per block shape)
	Groups  int      // C-tile groups of the grid (the parallel partition)
	Kernels int      // distinct kernel keys verified
}

// auditor carries one audit through its checks, memoizing the derived
// structures several checks share — the shape-indexed block map and
// each block's band decomposition — so the whole audit walks each
// tiling once. This keeps the Attach gate cheap enough to run on every
// untrusted load.
type auditor struct {
	chip *hw.Chip
	p    *plan.Plan
	o    Options
	rep  *Report

	blocks map[[2]int]plan.Block
	bands  map[[2]int][]tiling.Band
}

// blockMap returns the shape-indexed block map, building it on first
// use.
func (a *auditor) blockMap() (map[[2]int]plan.Block, error) {
	if a.blocks == nil {
		m, err := blockMap(a.p)
		if err != nil {
			return nil, err
		}
		a.blocks = m
	}
	return a.blocks, nil
}

// bandsOf returns one block's band decomposition, computing it once
// per block shape.
func (a *auditor) bandsOf(key [2]int, blk plan.Block) []tiling.Band {
	if b, ok := a.bands[key]; ok {
		return b
	}
	b := tiling.FromPlanBlock(blk).Bands(a.chip.Lanes)
	a.bands[key] = b
	return b
}

// Audit statically verifies a plan against the chip it claims to be
// for. It returns a report of what was proven, or an *Error (wrapping
// ErrAuditFailed) describing the first violated property. A nil error
// means the plan may be attached and executed without re-deriving any
// of these proofs.
func Audit(chip *hw.Chip, p *plan.Plan, o Options) (*Report, error) {
	a := &auditor{chip: chip, p: p, o: o, rep: &Report{}, bands: map[[2]int][]tiling.Band{}}
	for _, c := range []struct {
		name string
		run  func() error
	}{
		{CheckFormat, a.checkFormat},
		{CheckFingerprint, a.checkFingerprint},
		{CheckStructure, a.checkStructure},
		{CheckCoverage, a.checkCoverage},
		{CheckBounds, a.checkBounds},
		{CheckKernels, a.checkKernels},
	} {
		if err := c.run(); err != nil {
			return nil, err
		}
		a.rep.Passed = append(a.rep.Passed, c.name)
	}
	if o.Deep {
		if err := a.checkGenerate(); err != nil {
			return nil, err
		}
		a.rep.Passed = append(a.rep.Passed, CheckGenerate)
	}
	return a.rep, nil
}

// checkFormat rejects format-version skew before any field is
// interpreted: a plan serialized by a different format is not merely
// stale, its fields may mean something else entirely.
func (a *auditor) checkFormat() error {
	if a.p == nil {
		return failf(CheckFormat, "nil plan")
	}
	if a.p.Format != plan.FormatVersion {
		return failf(CheckFormat, "plan format %d, this build reads format %d",
			a.p.Format, plan.FormatVersion)
	}
	return nil
}

// checkFingerprint re-derives the fingerprint from the embedded
// request. A mismatch means the request and the fingerprint disagree
// about what was planned — a tampered or mis-keyed registry entry.
func (a *auditor) checkFingerprint() error {
	if fp := a.p.Request.Fingerprint(); fp != a.p.Fingerprint {
		return failf(CheckFingerprint, "stored fingerprint %s, request derives %s",
			a.p.Fingerprint, fp)
	}
	return nil
}

// knownOrders lists the block loop orders the executor implements;
// kept as strings so audit does not depend on the executor package.
var knownOrders = map[string]bool{
	"MNK": true, "MKN": true, "NMK": true, "NKM": true, "KMN": true, "KNM": true,
}

func (a *auditor) checkStructure() error {
	chip, p := a.chip, a.p
	if chip == nil {
		return failf(CheckStructure, "nil chip")
	}
	if p.Request.Chip != chip.Name {
		return failf(CheckStructure, "plan for chip %q audited against %q",
			p.Request.Chip, chip.Name)
	}
	m, n, k := p.Request.M, p.Request.N, p.Request.K
	if m <= 0 || n <= 0 || k <= 0 {
		return failf(CheckStructure, "invalid problem %dx%dx%d", m, n, k)
	}
	for _, d := range [3][2]int{{m, k}, {k, n}, {m, n}} {
		if d[0] > 0 && d[1] > math.MaxInt/d[0] {
			return failf(CheckStructure, "problem extents %dx%dx%d overflow int", m, n, k)
		}
	}
	if p.MC <= 0 || p.NC <= 0 || p.KC <= 0 {
		return failf(CheckStructure, "unresolved blocking %dx%dx%d", p.MC, p.NC, p.KC)
	}
	if !knownOrders[strings.ToUpper(p.Order)] {
		return failf(CheckStructure, "unknown loop order %q", p.Order)
	}
	switch p.Pack {
	case "none", "online", "offline":
	case "auto":
		return failf(CheckStructure, "packing mode left unresolved (%q)", p.Pack)
	default:
		return failf(CheckStructure, "unknown packing mode %q", p.Pack)
	}
	switch p.Source {
	case plan.SourceAuto, plan.SourceTuner, plan.SourceHeuristic:
	default:
		return failf(CheckStructure, "unknown plan source %q", p.Source)
	}
	if len(p.Blocks) == 0 {
		return failf(CheckStructure, "no block tilings")
	}
	if len(p.KernelKeys) == 0 {
		return failf(CheckStructure, "no kernel keys")
	}
	return nil
}

// shapes returns the distinct block extents of one dimension, mirroring
// the planner's grid decomposition: the full block size and the
// remainder, if any.
func shapes(total, bs int) []int {
	if bs >= total {
		return []int{total}
	}
	out := []int{bs}
	if rem := total % bs; rem > 0 {
		out = append(out, rem)
	}
	return out
}

// blockMap indexes the plan's blocks by shape, rejecting duplicates
// and blocks no grid placement reaches (a foreign block is at best
// dead weight and at worst a sign the plan was spliced together).
func blockMap(p *plan.Plan) (map[[2]int]plan.Block, error) {
	mShapes := shapes(p.Request.M, p.MC)
	nShapes := shapes(p.Request.N, p.NC)
	want := map[[2]int]bool{}
	for _, mb := range mShapes {
		for _, nb := range nShapes {
			want[[2]int{mb, nb}] = true
		}
	}
	blocks := map[[2]int]plan.Block{}
	for _, blk := range p.Blocks {
		key := [2]int{blk.M, blk.N}
		if !want[key] {
			return nil, failf(CheckCoverage, "block %dx%d matches no grid placement of %dx%d / %dx%d",
				blk.M, blk.N, p.Request.M, p.Request.N, p.MC, p.NC)
		}
		if _, dup := blocks[key]; dup {
			return nil, failf(CheckCoverage, "block %dx%d tiled twice", blk.M, blk.N)
		}
		blocks[key] = blk
	}
	for key := range want {
		if _, ok := blocks[key]; !ok {
			return nil, failf(CheckCoverage, "no tiling for block %dx%d", key[0], key[1])
		}
	}
	return blocks, nil
}

// checkCoverage proves the partition property: walking the grid by
// offsets, every cache block resolves to a tiling whose rects cover
// the block exactly once (tiling.Validate). Together the two levels
// give exact coverage of M×N, which is what makes the scheduler's
// C-tile groups (one per (MOff, NOff) block column) mutually
// exclusive and the result independent of worker count.
func (a *auditor) checkCoverage() error {
	chip, p := a.chip, a.p
	blocks, err := a.blockMap()
	if err != nil {
		return err
	}
	a.rep.Blocks = len(blocks)
	for key, blk := range blocks {
		tl := tiling.FromPlanBlock(blk)
		if err := tl.Validate(chip.Lanes); err != nil {
			return failf(CheckCoverage, "block %dx%d: %v", key[0], key[1], err)
		}
		a.rep.Tiles += tl.TileCount(chip.Lanes)
	}
	// The grid itself: offsets stride the problem exactly, so with
	// every shape tiled the blocks partition M×N. Count the groups the
	// scheduler will claim.
	mOffs := (p.Request.M + p.MC - 1) / p.MC
	nOffs := (p.Request.N + p.NC - 1) / p.NC
	a.rep.Groups = mOffs * nOffs
	return nil
}

// kChunks mirrors the planner's k decomposition: the depths kernels
// are generated for.
func kChunks(p *plan.Plan) []int { return shapes(p.Request.K, p.KC) }

// call is one kernel invocation the plan implies: a band (fused) or a
// single tile at a placement inside a block.
type call struct {
	row, col int
	band     *mkernel.BandConfig
	kernel   *mkernel.Config
}

// callsOf enumerates the kernel calls of one block at one k depth,
// exactly as the executor lowers bands (fused when the plan's request
// asked for fusion and the band has more than one tile).
func callsOf(chip *hw.Chip, p *plan.Plan, bands []tiling.Band, kb int) []call {
	var calls []call
	for _, bd := range bands {
		if p.Request.Fuse && bd.Tiles() > 1 {
			cfg := mkernel.PlanBandConfig(bd.Segs, kb, chip.Lanes, p.Request.Rotate, chip.SigmaAI)
			calls = append(calls, call{row: bd.Row, col: bd.Col, band: &cfg})
			continue
		}
		col := bd.Col
		for _, seg := range bd.Segs {
			for i := 0; i < seg.Count; i++ {
				cfg := mkernel.PlanKernelConfig(seg.Tile, kb, chip.Lanes, p.Request.Rotate, chip.SigmaAI)
				calls = append(calls, call{row: bd.Row, col: col, kernel: &cfg})
				col += seg.Tile.NR
			}
		}
	}
	return calls
}

// checkBounds composes the per-kernel symbolic bounds facts with every
// tile placement and proves the result fits the scratch envelope the
// executor allocates for this blocking. The bounds come from the same
// AnalysisOptions contract the generator's analyzer gate verifies and
// the compiled Precheck evaluates (AExtent/BExtent/CExtent), so this
// is the static half of the elision license: if this check passes, the
// staged-execution prechecks cannot fail for any block of the plan,
// and no placement can reach past the allocated scratch.
func (a *auditor) checkBounds() error {
	chip, p := a.chip, a.p
	blocks, err := a.blockMap()
	if err != nil {
		return err
	}
	sc := mkernel.ScratchEnvelope(p.MC, p.NC, p.KC, chip.Lanes)
	// Deriving the bounds facts runs a cheap generation pass; one config
	// recurs across many tile placements, so memoize by kernel name (the
	// name encodes the full config) to keep the audit linear in distinct
	// kernels rather than in call sites.
	memo := map[string]*analysis.Bounds{}
	boundsFor := func(name string, derive func() (analysis.Options, error)) (*analysis.Bounds, error) {
		if b, ok := memo[name]; ok {
			return b, nil
		}
		ao, err := derive()
		if err != nil {
			return nil, err
		}
		memo[name] = ao.Bounds
		return ao.Bounds, nil
	}
	for key, blk := range blocks {
		bands := a.bandsOf(key, blk)
		for _, kb := range kChunks(p) {
			lda := int64(kb)
			for _, cl := range callsOf(chip, p, bands, kb) {
				var name string
				var derive func() (analysis.Options, error)
				if cl.band != nil {
					name, derive = cl.band.Name(), cl.band.AnalysisOptions
				} else {
					name, derive = cl.kernel.Name(), cl.kernel.AnalysisOptions
				}
				bounds, err := boundsFor(name, derive)
				if err != nil {
					return failf(CheckBounds, "block %dx%d: %s at (%d,%d): %v",
						key[0], key[1], name, cl.row, cl.col, err)
				}
				aExt := bounds.AExtent(lda)
				bExt := bounds.BExtent(int64(sc.LD))
				cExt := bounds.CExtent(int64(sc.LD))
				aOff := int64(cl.row) * lda
				bOff := int64(cl.col)
				cOff := int64(cl.row)*int64(sc.LD) + int64(cl.col)
				if aOff+aExt > int64(sc.PackA) {
					return failf(CheckBounds,
						"block %dx%d k=%d: %s at (%d,%d) reads A to %d, scratch holds %d",
						key[0], key[1], kb, name, cl.row, cl.col, aOff+aExt, sc.PackA)
				}
				if bOff+bExt > int64(sc.PackB) {
					return failf(CheckBounds,
						"block %dx%d k=%d: %s at (%d,%d) reads B to %d, scratch holds %d",
						key[0], key[1], kb, name, cl.row, cl.col, bOff+bExt, sc.PackB)
				}
				if cOff+cExt > int64(sc.CBuf) {
					return failf(CheckBounds,
						"block %dx%d k=%d: %s at (%d,%d) touches C to %d, scratch holds %d",
						key[0], key[1], kb, name, cl.row, cl.col, cOff+cExt, sc.CBuf)
				}
			}
		}
	}
	return nil
}

// derivedKeys re-enumerates, from the plan's own tilings, every kernel
// cache key execution will request — the same derivation the planner
// ran when it produced the plan.
func (a *auditor) derivedKeys() (map[string]bool, error) {
	chip, p := a.chip, a.p
	blocks, err := a.blockMap()
	if err != nil {
		return nil, err
	}
	keys := map[string]bool{}
	for key, blk := range blocks {
		bands := a.bandsOf(key, blk)
		for _, kb := range kChunks(p) {
			for _, bd := range bands {
				for _, seg := range bd.Segs {
					if !seg.Tile.Generatable(chip.Lanes) {
						return nil, failf(CheckKernels,
							"block %dx%d: tile %s is not generatable for %d lanes",
							key[0], key[1], seg.Tile, chip.Lanes)
					}
				}
				if p.Request.Fuse && bd.Tiles() > 1 {
					keys[string(mkernel.PlanBandConfig(bd.Segs, kb, chip.Lanes, p.Request.Rotate, chip.SigmaAI).Key())] = true
					continue
				}
				for _, seg := range bd.Segs {
					keys[string(mkernel.PlanKernelConfig(seg.Tile, kb, chip.Lanes, p.Request.Rotate, chip.SigmaAI).Key())] = true
				}
			}
		}
	}
	return keys, nil
}

// checkKernels proves the plan's declared kernel-key list is exactly
// the set its tilings reach: a declared key nothing reaches is dead
// weight a tamper left behind; a reachable key the plan omits would
// surface as a cold cache miss (or a generation failure) mid-run.
func (a *auditor) checkKernels() error {
	keys, err := a.derivedKeys()
	if err != nil {
		return err
	}
	declared := map[string]bool{}
	for _, k := range a.p.KernelKeys {
		if declared[k] {
			return failf(CheckKernels, "kernel key %q declared twice", k)
		}
		declared[k] = true
	}
	var missing, extra []string
	for k := range keys {
		if !declared[k] {
			missing = append(missing, k)
		}
	}
	for k := range declared {
		if !keys[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		return failf(CheckKernels, "tilings reach undeclared kernel keys %v", missing)
	}
	if len(extra) > 0 {
		return failf(CheckKernels, "declared kernel keys %v reached by no tiling", extra)
	}
	a.rep.Kernels = len(keys)
	return nil
}

// checkGenerate (deep mode) generates every kernel the plan names and
// runs the dataflow analyzer on it — proving not just that the keys
// resolve but that the kernels behind them pass the full bounds and
// rotation analysis on this build.
func (a *auditor) checkGenerate() error {
	chip, p := a.chip, a.p
	cache := a.o.Cache
	if cache == nil {
		cache = mkernel.NewCache()
	}
	blocks, err := a.blockMap()
	if err != nil {
		return err
	}
	for key, blk := range blocks {
		bands := a.bandsOf(key, blk)
		for _, kb := range kChunks(p) {
			for _, bd := range bands {
				if p.Request.Fuse && bd.Tiles() > 1 {
					cfg := mkernel.PlanBandConfig(bd.Segs, kb, chip.Lanes, p.Request.Rotate, chip.SigmaAI)
					if _, err := cache.Band(cfg); err != nil {
						return failf(CheckGenerate, "block %dx%d: band %s: %v",
							key[0], key[1], cfg.Name(), err)
					}
					continue
				}
				for _, seg := range bd.Segs {
					cfg := mkernel.PlanKernelConfig(seg.Tile, kb, chip.Lanes, p.Request.Rotate, chip.SigmaAI)
					if _, err := cache.Kernel(cfg); err != nil {
						return failf(CheckGenerate, "block %dx%d: kernel %s: %v",
							key[0], key[1], cfg.Name(), err)
					}
				}
			}
		}
	}
	return nil
}
