package audit_test

import (
	"errors"
	"testing"

	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/plan"
	"autogemm/internal/plan/audit"
)

func chipFor(t *testing.T) *hw.Chip {
	t.Helper()
	chip, err := hw.ByName("Graviton3")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	return chip
}

func produce(t *testing.T, chip *hw.Chip, m, n, k int) *plan.Plan {
	t.Helper()
	rec, err := core.Produce(chip, m, n, k, core.AutoOptions(chip))
	if err != nil {
		t.Fatalf("Produce(%dx%dx%d): %v", m, n, k, err)
	}
	return rec
}

// copyPlan deep-copies a plan so tamper tests can mutate freely.
func copyPlan(p *plan.Plan) *plan.Plan {
	q := *p
	q.Blocks = append([]plan.Block(nil), p.Blocks...)
	for i := range q.Blocks {
		q.Blocks[i].Panels = append([]plan.Panel(nil), p.Blocks[i].Panels...)
	}
	q.KernelKeys = append([]string(nil), p.KernelKeys...)
	return &q
}

// wantCheck asserts the audit fails at one specific check and that the
// error matches the sentinel.
func wantCheck(t *testing.T, chip *hw.Chip, p *plan.Plan, check string) {
	t.Helper()
	_, err := audit.Audit(chip, p, audit.Options{})
	if err == nil {
		t.Fatalf("audit passed, want %s failure", check)
	}
	if !errors.Is(err, audit.ErrAuditFailed) {
		t.Fatalf("error %v does not match ErrAuditFailed", err)
	}
	var ae *audit.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *audit.Error", err)
	}
	if ae.Check != check {
		t.Fatalf("audit failed check %s (%s), want %s", ae.Check, ae.Detail, check)
	}
}

// TestAuditCleanPlans: honestly produced plans audit clean, with a
// report accounting for every block, tile and kernel key.
func TestAuditCleanPlans(t *testing.T) {
	chip := chipFor(t)
	for _, s := range [][3]int{{64, 64, 64}, {129, 200, 55}, {37, 41, 43}, {500, 500, 500}} {
		rec := produce(t, chip, s[0], s[1], s[2])
		rep, err := audit.Audit(chip, rec, audit.Options{})
		if err != nil {
			t.Fatalf("audit of clean %v plan: %v", s, err)
		}
		if rep.Blocks != len(rec.Blocks) {
			t.Errorf("report blocks %d, plan has %d", rep.Blocks, len(rec.Blocks))
		}
		if rep.Kernels != len(rec.KernelKeys) {
			t.Errorf("report kernels %d, plan declares %d", rep.Kernels, len(rec.KernelKeys))
		}
		if rep.Tiles == 0 || rep.Groups == 0 {
			t.Errorf("report counted %d tiles, %d groups; want both > 0", rep.Tiles, rep.Groups)
		}
		if len(rep.Passed) != 6 {
			t.Errorf("passed checks %v, want all 6", rep.Passed)
		}
	}
}

// TestAuditDeep: deep mode generates and analyzes every kernel of a
// clean plan without findings.
func TestAuditDeep(t *testing.T) {
	chip := chipFor(t)
	rec := produce(t, chip, 48, 48, 32)
	rep, err := audit.Audit(chip, rec, audit.Options{Deep: true})
	if err != nil {
		t.Fatalf("deep audit: %v", err)
	}
	if got := rep.Passed[len(rep.Passed)-1]; got != audit.CheckGenerate {
		t.Fatalf("deep audit passed %v, want trailing %s", rep.Passed, audit.CheckGenerate)
	}
}

// TestAuditTunedSource: the tuner's relabeled plans audit clean too.
func TestAuditTunedSource(t *testing.T) {
	chip := chipFor(t)
	rec := produce(t, chip, 64, 64, 64).WithSource(plan.SourceTuner)
	if _, err := audit.Audit(chip, rec, audit.Options{}); err != nil {
		t.Fatalf("audit of tuner-sourced plan: %v", err)
	}
}

func TestAuditFormatSkew(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 64, 64, 64))
	p.Format = plan.FormatVersion + 1
	wantCheck(t, chip, p, audit.CheckFormat)
}

func TestAuditFingerprintFlip(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 64, 64, 64))
	p.Fingerprint = "deadbeef" + p.Fingerprint[8:]
	wantCheck(t, chip, p, audit.CheckFingerprint)
}

func TestAuditRequestTamper(t *testing.T) {
	// Editing the request without re-deriving the fingerprint is caught
	// by re-derivation.
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 64, 64, 64))
	p.Request.K = 128
	wantCheck(t, chip, p, audit.CheckFingerprint)
}

func TestAuditStructure(t *testing.T) {
	chip := chipFor(t)
	base := produce(t, chip, 64, 64, 64)

	p := copyPlan(base)
	p.KC = 0
	wantCheck(t, chip, p, audit.CheckStructure)

	p = copyPlan(base)
	p.Order = "MKM"
	wantCheck(t, chip, p, audit.CheckStructure)

	p = copyPlan(base)
	p.Pack = "auto"
	wantCheck(t, chip, p, audit.CheckStructure)

	p = copyPlan(base)
	p.Source = "wire"
	wantCheck(t, chip, p, audit.CheckStructure)

	p = copyPlan(base)
	p.KernelKeys = nil
	wantCheck(t, chip, p, audit.CheckStructure)
}

// TestAuditTileOutOfBounds: moving a panel out of its block leaves
// cells uncovered (and possibly tiles outside) — the partition proof
// fails either way.
func TestAuditTileOutOfBounds(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 129, 200, 55))
	p.Blocks[0].Panels[0].Row += 3
	wantCheck(t, chip, p, audit.CheckCoverage)
}

// TestAuditTileOverlap: growing a panel makes it cover cells another
// panel already covers.
func TestAuditTileOverlap(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 129, 200, 55))
	blk := &p.Blocks[0]
	if len(blk.Panels) < 2 {
		// Grow the single panel past the block instead; same property.
		blk.Panels[0].M += blk.Panels[0].MR
	} else {
		blk.Panels[0].M += blk.Panels[1].MR
	}
	wantCheck(t, chip, p, audit.CheckCoverage)
}

// TestAuditTileGap: shrinking a panel leaves a gap in the cover.
func TestAuditTileGap(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 129, 200, 55))
	blk := &p.Blocks[0]
	blk.Panels[len(blk.Panels)-1].M -= 1
	wantCheck(t, chip, p, audit.CheckCoverage)
}

// TestAuditMissingBlock: a grid shape with no tiling.
func TestAuditMissingBlock(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 129, 200, 55))
	if len(p.Blocks) < 2 {
		t.Skip("plan has a single block shape")
	}
	p.Blocks = p.Blocks[:len(p.Blocks)-1]
	wantCheck(t, chip, p, audit.CheckCoverage)
}

// TestAuditForeignBlock: a block no grid placement reaches.
func TestAuditForeignBlock(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 64, 64, 64))
	extra := p.Blocks[0]
	extra.M++
	p.Blocks = append(p.Blocks, extra)
	wantCheck(t, chip, p, audit.CheckCoverage)
}

// TestAuditBoundsEnvelope: a hand-built plan whose single padded tile
// is wide enough that its composed B-panel read extent (the same
// AExtent/BExtent/CExtent facts Precheck evaluates) escapes the staged
// scratch envelope. Coverage still holds — the tile's useful extent
// covers the block exactly — so only the bounds composition catches it.
func TestAuditBoundsEnvelope(t *testing.T) {
	chip := chipFor(t) // lanes = 4
	req := plan.Request{
		Chip: chip.Name, M: 1, N: 4, K: 8,
		MC: 1, NC: 4, KC: 8,
		Order: "MNK", Pack: "none", Tiler: "dmt",
	}
	bld := plan.NewBuilder(req, 1, 4, 8, "MNK", "none")
	bld.AddBlock(plan.Block{
		M: 1, N: 4, Tiler: "dmt",
		Panels: []plan.Panel{{Row: 0, Col: 0, M: 1, N: 4, MR: 1, NR: 60, Padded: true}},
	})
	bld.AddKernelKey("mk_1x60x8_l4")
	p, err := bld.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	wantCheck(t, chip, p, audit.CheckBounds)
}

// TestAuditDanglingKernelKey: a declared key no tiling reaches.
func TestAuditDanglingKernelKey(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 64, 64, 64))
	p.KernelKeys = append(p.KernelKeys, "mk_4x8x999_l4_rot")
	wantCheck(t, chip, p, audit.CheckKernels)
}

// TestAuditMissingKernelKey: a reachable key the plan omits.
func TestAuditMissingKernelKey(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 64, 64, 64))
	p.KernelKeys = p.KernelKeys[:len(p.KernelKeys)-1]
	if len(p.KernelKeys) == 0 {
		t.Skip("plan has a single kernel key")
	}
	wantCheck(t, chip, p, audit.CheckKernels)
}

// TestAuditAttachGate: core.Attach rejects a tampered plan by default
// and admits it when the caller marks the plan trusted — the produce
// path's fast lane. The tamper here is one coverage gap; the plan
// still satisfies plan.Validate, so only the audit stands between it
// and execution.
func TestAuditAttachGate(t *testing.T) {
	chip := chipFor(t)
	p := copyPlan(produce(t, chip, 129, 200, 55))
	blk := &p.Blocks[0]
	blk.Panels[len(blk.Panels)-1].M -= 1
	if err := p.Validate(); err != nil {
		t.Fatalf("tampered plan should still pass shallow validation, got %v", err)
	}
	if _, err := core.Attach(chip, p, core.Options{}); !errors.Is(err, audit.ErrAuditFailed) {
		t.Fatalf("Attach of tampered plan: %v, want ErrAuditFailed", err)
	}

	// The clean original attaches with and without trust.
	clean := produce(t, chip, 129, 200, 55)
	if _, err := core.Attach(chip, clean, core.Options{}); err != nil {
		t.Fatalf("Attach of clean plan: %v", err)
	}
	if _, err := core.Attach(chip, clean, core.Options{TrustedPlan: true}); err != nil {
		t.Fatalf("trusted Attach: %v", err)
	}
}

// TestScratchEnvelopeMatchesExecutor guards the shared envelope: the
// audit's proof is only sound if the executor allocates at least what
// the auditor assumed. Both call mkernel.ScratchEnvelope; this test
// pins the formula's monotonicity and slack so a future edit that
// shrinks it below the documented overhangs fails loudly.
func TestScratchEnvelopeMatchesExecutor(t *testing.T) {
	chip := chipFor(t)
	rec := produce(t, chip, 64, 64, 64)
	p, err := core.Attach(chip, rec, core.Options{TrustedPlan: true})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// One multiply forces scratch allocation on some worker.
	c := make([]float32, 64*64)
	a := make([]float32, 64*64)
	b := make([]float32, 64*64)
	if err := p.Run(c, a, b); err != nil {
		t.Fatalf("Run: %v", err)
	}
}
