package plan

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func testPlan(chip string, m, n, k int) *Plan {
	req := Request{
		Chip: chip, M: m, N: n, K: k,
		Order: "MNK", Pack: "auto", Rotate: true, Fuse: true, Tiler: "dmt",
	}
	return &Plan{
		Format:      FormatVersion,
		Fingerprint: req.Fingerprint(),
		Request:     req,
		MC:          64, NC: 64, KC: 48,
		Order: "MNK", Pack: "none",
		Blocks: []Block{{
			M: m, N: n, LoadLatency: 4, Cost: 1000, Tiler: "dmt",
			Panels: []Panel{{M: m, N: n, MR: 8, NR: 8}},
		}},
		KernelKeys:  []string{"mk_8x8x48_l4_rot"},
		ModelCycles: 1000,
		Source:      SourceAuto,
	}
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	base := Request{Chip: "KP920", M: 64, N: 64, K: 48, Order: "MNK", Pack: "auto",
		Rotate: true, Fuse: true, Tiler: "dmt"}
	if base.Fingerprint() != base.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	variants := map[string]Request{}
	r := base
	r.Chip = "Graviton2"
	variants["chip"] = r
	r = base
	r.M = 65
	variants["m"] = r
	r = base
	r.KC = 32
	variants["kc"] = r
	r = base
	r.Order = "KNM"
	variants["order"] = r
	r = base
	r.Pack = "online"
	variants["pack"] = r
	r = base
	r.Rotate = false
	variants["rotate"] = r
	r = base
	r.Cands = []string{"8x8"}
	variants["cands"] = r
	for name, v := range variants {
		fp := v.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[fp] = name
	}
	// Candidate order must not matter.
	a, b := base, base
	a.Cands = []string{"8x8", "6x12"}
	b.Cands = []string{"6x12", "8x8"}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("candidate order changed the fingerprint")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := testPlan("KP920", 64, 64, 48)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != p.Fingerprint || got.MC != p.MC || len(got.Blocks) != 1 {
		t.Fatalf("round trip mutated the plan: %+v", got)
	}
	if got.Blocks[0].Panels[0].MR != 8 {
		t.Fatal("panel lost in round trip")
	}
}

func TestDecodeRejectsTampering(t *testing.T) {
	p := testPlan("KP920", 64, 64, 48)

	// Wrong format version.
	bad := *p
	bad.Format = FormatVersion + 1
	if _, err := bad.Encode(); err == nil {
		t.Error("Encode accepted a wrong format version")
	}

	// Request no longer matching the fingerprint (stale registry entry):
	// corrupt the stored K in the JSON payload.
	raw, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(raw), `"k": 48`, `"k": 47`, 1)
	if corrupted == string(raw) {
		t.Fatal("corruption did not apply")
	}
	if _, err := Decode([]byte(corrupted)); err == nil {
		t.Error("Decode accepted a plan whose request was tampered with")
	}
}

func TestCheckRequest(t *testing.T) {
	p := testPlan("KP920", 64, 64, 48)
	if err := p.CheckRequest(p.Request); err != nil {
		t.Fatalf("matching request rejected: %v", err)
	}
	other := p.Request
	other.Chip = "Graviton2"
	if err := p.CheckRequest(other); err == nil {
		t.Error("wrong-chip request accepted")
	}
	other = p.Request
	other.KC = 32
	if err := p.CheckRequest(other); err == nil {
		t.Error("different-options request accepted")
	}
}

func TestRegistryStoreLoadList(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "plans")
	reg := NewRegistry(dir)

	if _, err := reg.Load(testPlan("KP920", 64, 64, 48).Fingerprint); err == nil {
		t.Fatal("Load from empty registry succeeded")
	}
	var fps []string
	for _, shape := range [][3]int{{64, 64, 48}, {8, 1000, 32}} {
		p := testPlan("KP920", shape[0], shape[1], shape[2])
		if err := reg.Store(p); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, p.Fingerprint)
	}
	got, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(got))
	}
	for _, fp := range fps {
		p, err := reg.Load(fp)
		if err != nil {
			t.Fatal(err)
		}
		if p.Fingerprint != fp {
			t.Fatalf("loaded wrong plan %s for %s", p.Fingerprint, fp)
		}
	}
	// Idempotent re-store.
	if err := reg.Store(testPlan("KP920", 64, 64, 48)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Load("../escape"); err == nil {
		t.Error("path traversal fingerprint accepted")
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[int]()
	const (
		keys       = 8
		goroutines = 64
	)
	var builds atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("key-%d", (g+i)%keys)
				v, err := c.Get(key, func() (int, error) {
					builds.Add(1)
					return len(key), nil
				})
				if err != nil || v != len(key) {
					t.Errorf("Get(%s) = %d, %v", key, v, err)
					return
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()
	if got := builds.Load(); got != keys {
		t.Fatalf("build ran %d times for %d keys", got, keys)
	}
	st := c.Stats()
	if st.Built != keys {
		t.Fatalf("Stats.Built = %d, want %d", st.Built, keys)
	}
	if st.Hits+st.Misses != goroutines*50 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*50)
	}
	if c.Len() != keys {
		t.Fatalf("Len = %d, want %d", c.Len(), keys)
	}
	if _, ok := c.Lookup("key-0"); !ok {
		t.Fatal("Lookup missed a built key")
	}
	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("Lookup fabricated a value")
	}
}

// TestCacheForgetsErrors: a failed build propagates its error but is
// not retained — the key stays buildable, so one rejected plan (e.g.
// tampered LoadPlan bytes) cannot poison its fingerprint against a
// later good build of the same key.
func TestCacheForgetsErrors(t *testing.T) {
	c := NewCache[int]()
	calls := 0
	build := func() (int, error) { calls++; return 0, fmt.Errorf("boom") }
	if _, err := c.Get("key", build); err == nil {
		t.Fatal("error swallowed")
	}
	if c.Len() != 0 {
		t.Fatalf("failed build retained: Len = %d", c.Len())
	}
	v, err := c.Get("key", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("rebuild after failure: %d, %v", v, err)
	}
	if calls != 1 {
		t.Fatalf("failing build ran %d times, want 1", calls)
	}
	if v, err := c.Get("key", build); err != nil || v != 42 {
		t.Fatalf("good value not memoized: %d, %v", v, err)
	}
}
