package plan

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// The registry index is a sidecar file (index.json) mapping every
// stored fingerprint to the plan.Request it answers, so shape-aware
// lookups — above all the tiered planner's nearest-neighbor warm-start
// — never have to decode every plan in the directory. It is an
// accelerator, not a source of truth: a missing, stale or corrupt
// index is rebuilt from the plan files themselves, and registries
// written before the index existed migrate transparently the first
// time they are read.

// indexName is the sidecar file inside the registry directory.
const indexName = "index.json"

// IndexEntry describes one stored plan: its fingerprint and the
// request (chip, shape, options) that fingerprint was derived from.
type IndexEntry struct {
	Fingerprint string  `json:"fingerprint"`
	Request     Request `json:"request"`
	Source      string  `json:"source"`
}

// indexFile is the serialized sidecar. Format mirrors FormatVersion so
// an index written by an incompatible build is rebuilt, not trusted.
type indexFile struct {
	Format  int          `json:"format"`
	Entries []IndexEntry `json:"entries"`
}

// indexPath returns the sidecar location.
func (r *Registry) indexPath() string { return filepath.Join(r.dir, indexName) }

// readIndex parses the sidecar; any failure (absent file, bad JSON,
// format skew) reports ok=false so the caller rebuilds.
func (r *Registry) readIndex() (map[string]IndexEntry, bool) {
	data, err := os.ReadFile(r.indexPath())
	if err != nil {
		return nil, false
	}
	var f indexFile
	if err := json.Unmarshal(data, &f); err != nil || f.Format != FormatVersion {
		return nil, false
	}
	m := make(map[string]IndexEntry, len(f.Entries))
	for _, e := range f.Entries {
		m[e.Fingerprint] = e
	}
	return m, true
}

// writeIndex persists the entry map atomically (temp file + rename),
// sorted by fingerprint so the file is diff-stable.
func (r *Registry) writeIndex(m map[string]IndexEntry) error {
	f := indexFile{Format: FormatVersion}
	for _, e := range m {
		f.Entries = append(f.Entries, e)
	}
	sort.Slice(f.Entries, func(i, j int) bool {
		return f.Entries[i].Fingerprint < f.Entries[j].Fingerprint
	})
	data, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(r.dir, "."+indexName+".*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, r.indexPath())
}

// RebuildIndex scans every plan file in the registry, decodes it, and
// writes a fresh sidecar from scratch — the migration path for
// registries baked before the index existed and the repair path for a
// sidecar that lost entries to a concurrent writer. Undecodable files
// are skipped (Load rejects them anyway); an empty registry yields an
// empty index.
func (r *Registry) RebuildIndex() (map[string]IndexEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.rebuildIndexLocked()
}

func (r *Registry) rebuildIndexLocked() (map[string]IndexEntry, error) {
	fps, err := r.List()
	if err != nil {
		return nil, err
	}
	m := make(map[string]IndexEntry, len(fps))
	for _, fp := range fps {
		p, err := r.Load(fp)
		if err != nil {
			continue
		}
		m[fp] = IndexEntry{Fingerprint: fp, Request: p.Request, Source: p.Source}
	}
	if err := r.writeIndex(m); err != nil {
		return nil, err
	}
	return m, nil
}

// Index returns the registry's entry map, rebuilding the sidecar from
// the plan files when it is missing, unreadable, or from another
// format version.
func (r *Registry) Index() (map[string]IndexEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.readIndex(); ok {
		return m, nil
	}
	return r.rebuildIndexLocked()
}

// updateIndex folds one stored plan into the sidecar. Called under
// r.mu by Store; a concurrent writer in another process can still race
// the read-modify-write and drop an entry, which is tolerable — the
// index is advisory and RebuildIndex restores it.
func (r *Registry) updateIndex(p *Plan) error {
	m, ok := r.readIndex()
	if !ok {
		m = map[string]IndexEntry{}
	}
	m[p.Fingerprint] = IndexEntry{Fingerprint: p.Fingerprint, Request: p.Request, Source: p.Source}
	return r.writeIndex(m)
}

// shapeDistance is the log-space L1 distance between two problem
// shapes — scale-free, so 64→128 is as far as 1024→2048 and a
// tall-skinny neighbor is not dominated by its largest extent.
func shapeDistance(a, b Request) float64 {
	d := func(x, y int) float64 {
		return math.Abs(math.Log(float64(x)) - math.Log(float64(y)))
	}
	return d(a.M, b.M) + d(a.N, b.N) + d(a.K, b.K)
}

// Nearest returns the indexed entry most similar in shape to req among
// plans for the same chip and planning configuration (tiler, rotate,
// fuse), excluding req's own fingerprint — the donor a new shape's DMT
// search warm-starts from. ok is false when no comparable neighbor is
// stored.
func (r *Registry) Nearest(req Request) (IndexEntry, bool) {
	m, err := r.Index()
	if err != nil {
		return IndexEntry{}, false
	}
	self := req.Fingerprint()
	best, bestDist := IndexEntry{}, math.Inf(1)
	found := false
	for _, e := range m {
		if e.Fingerprint == self {
			continue
		}
		er := e.Request
		if er.Chip != req.Chip || er.Tiler != req.Tiler ||
			er.Rotate != req.Rotate || er.Fuse != req.Fuse {
			continue
		}
		if er.M <= 0 || er.N <= 0 || er.K <= 0 {
			continue
		}
		if d := shapeDistance(er, req); d < bestDist {
			best, bestDist, found = e, d, true
		}
	}
	return best, found
}

// NeighborTiles loads the nearest neighbor's plan and returns the
// distinct register-tile shapes (MR, NR) of its panels — the seed
// candidate set a warm-started DMT search explores first. ok is false
// when there is no neighbor or its plan no longer loads.
func (r *Registry) NeighborTiles(req Request) (tiles [][2]int, donor string, ok bool) {
	e, found := r.Nearest(req)
	if !found {
		return nil, "", false
	}
	p, err := r.Load(e.Fingerprint)
	if err != nil {
		return nil, "", false
	}
	seen := map[[2]int]bool{}
	for _, blk := range p.Blocks {
		for _, pn := range blk.Panels {
			t := [2]int{pn.MR, pn.NR}
			if t[0] > 0 && t[1] > 0 && !seen[t] {
				seen[t] = true
				tiles = append(tiles, t)
			}
		}
	}
	if len(tiles) == 0 {
		return nil, "", false
	}
	sort.Slice(tiles, func(i, j int) bool {
		if tiles[i][0] != tiles[j][0] {
			return tiles[i][0] < tiles[j][0]
		}
		return tiles[i][1] < tiles[j][1]
	})
	return tiles, e.Fingerprint, true
}
