package plan

import (
	"os"
	"path/filepath"
	"testing"
)

// TestIndexMaintainedByStore checks that Store keeps the sidecar in
// sync and that the index file never shows up in List.
func TestIndexMaintainedByStore(t *testing.T) {
	reg := NewRegistry(t.TempDir())
	shapes := [][3]int{{64, 64, 48}, {64, 3136, 576}, {512, 49, 1024}}
	for _, s := range shapes {
		if err := reg.Store(testPlan("KP920", s[0], s[1], s[2])); err != nil {
			t.Fatal(err)
		}
	}
	m, err := reg.Index()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(shapes) {
		t.Fatalf("index has %d entries, want %d", len(m), len(shapes))
	}
	for fp, e := range m {
		if e.Fingerprint != fp {
			t.Errorf("entry %s carries fingerprint %s", fp, e.Fingerprint)
		}
		if e.Request.Chip != "KP920" || e.Source != SourceAuto {
			t.Errorf("entry %s: request/source not recorded: %+v", fp, e)
		}
	}
	fps, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != len(shapes) {
		t.Fatalf("List returned %d fingerprints, want %d (index.json must be excluded)",
			len(fps), len(shapes))
	}
	for _, fp := range fps {
		if fp == "index" {
			t.Fatal("List leaked the index sidecar as a fingerprint")
		}
	}
}

// TestIndexRebuildsFromPlanFiles covers the migration path: a registry
// written before the index existed (or whose sidecar was corrupted)
// yields a full index on first read.
func TestIndexRebuildsFromPlanFiles(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry(dir)
	for _, s := range [][3]int{{64, 64, 48}, {26, 36, 20}} {
		if err := reg.Store(testPlan("KP920", s[0], s[1], s[2])); err != nil {
			t.Fatal(err)
		}
	}
	for _, corrupt := range []func() error{
		func() error { return os.Remove(filepath.Join(dir, indexName)) },
		func() error { return os.WriteFile(filepath.Join(dir, indexName), []byte("junk"), 0o644) },
		func() error {
			return os.WriteFile(filepath.Join(dir, indexName),
				[]byte(`{"format":999,"entries":[]}`), 0o644)
		},
	} {
		if err := corrupt(); err != nil {
			t.Fatal(err)
		}
		m, err := NewRegistry(dir).Index()
		if err != nil {
			t.Fatal(err)
		}
		if len(m) != 2 {
			t.Fatalf("rebuilt index has %d entries, want 2", len(m))
		}
	}
}

// TestNearestPicksClosestCompatibleShape checks neighbor selection:
// same chip and planning configuration only, log-space shape distance,
// own fingerprint excluded.
func TestNearestPicksClosestCompatibleShape(t *testing.T) {
	reg := NewRegistry(t.TempDir())
	near := testPlan("KP920", 64, 3136, 576)      // the expected donor
	far := testPlan("KP920", 2048, 49, 512)       // far in log space
	other := testPlan("Graviton2", 64, 3000, 576) // closest shape, wrong chip
	for _, p := range []*Plan{near, far, other} {
		if err := reg.Store(p); err != nil {
			t.Fatal(err)
		}
	}

	req := testPlan("KP920", 64, 3136, 256).Request
	e, ok := reg.Nearest(req)
	if !ok {
		t.Fatal("Nearest found no donor")
	}
	if e.Fingerprint != near.Fingerprint {
		t.Fatalf("Nearest picked %dx%dx%d on %s, want %dx%dx%d",
			e.Request.M, e.Request.N, e.Request.K, e.Request.Chip, 64, 3136, 576)
	}

	// The stored shape itself must not be its own donor.
	if e, ok := reg.Nearest(near.Request); ok && e.Fingerprint == near.Fingerprint {
		t.Fatal("Nearest returned the request's own fingerprint")
	}

	// No compatible neighbor at all: different chip.
	if _, ok := reg.Nearest(testPlan("A64FX", 64, 64, 64).Request); ok {
		t.Fatal("Nearest matched across chips")
	}
}

// TestNeighborTiles checks the warm-start seed extraction: the donor's
// distinct panel tiles, deduplicated and sorted.
func TestNeighborTiles(t *testing.T) {
	reg := NewRegistry(t.TempDir())
	donor := testPlan("KP920", 64, 3136, 576)
	donor.Blocks[0].Panels = []Panel{
		{M: 32, N: 3136, MR: 8, NR: 8},
		{M: 32, N: 3136, MR: 5, NR: 16},
		{M: 32, N: 3136, MR: 8, NR: 8}, // duplicate
	}
	if err := reg.Store(donor); err != nil {
		t.Fatal(err)
	}
	tiles, from, ok := reg.NeighborTiles(testPlan("KP920", 64, 3136, 256).Request)
	if !ok {
		t.Fatal("NeighborTiles found no donor")
	}
	if from != donor.Fingerprint {
		t.Fatalf("donor %s, want %s", from, donor.Fingerprint)
	}
	want := [][2]int{{5, 16}, {8, 8}}
	if len(tiles) != len(want) {
		t.Fatalf("tiles = %v, want %v", tiles, want)
	}
	for i := range want {
		if tiles[i] != want[i] {
			t.Fatalf("tiles = %v, want %v", tiles, want)
		}
	}
}

// TestCacheReplace checks the hot-swap: after Replace, Lookup and Get
// observe the new value without a rebuild, and waiters joined to the
// old entry still receive the value they were promised.
func TestCacheReplace(t *testing.T) {
	c := NewCache[string]()
	got, err := c.Get("fp", func() (string, error) { return "heuristic", nil })
	if err != nil || got != "heuristic" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	c.Replace("fp", "full")
	if v, ok := c.Lookup("fp"); !ok || v != "full" {
		t.Fatalf("Lookup after Replace = %q, %v", v, ok)
	}
	builds := 0
	got, err = c.Get("fp", func() (string, error) { builds++; return "rebuilt", nil })
	if err != nil || got != "full" || builds != 0 {
		t.Fatalf("Get after Replace = %q (builds=%d), want \"full\" with no rebuild", got, builds)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Replace on a missing key publishes it outright.
	c.Replace("other", "published")
	if v, ok := c.Lookup("other"); !ok || v != "published" {
		t.Fatalf("Lookup(published) = %q, %v", v, ok)
	}
}
