package plan

import (
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// nShards spreads the cache's lock across independent shards so a
// many-core server hammering mixed shapes does not serialize on one
// mutex. 16 is plenty: the critical section is a map lookup.
const nShards = 16

// Stats is a snapshot of cache traffic. Built counts executions of the
// build function — the singleflight guarantee is Built == number of
// distinct keys ever requested, regardless of concurrency.
type Stats struct {
	Hits   int64 // found ready (or joined an in-flight build)
	Misses int64 // initiated a build
	Built  int64 // build functions actually run
}

// HitRate returns Hits / (Hits + Misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a sharded, singleflight-deduplicated memoization table keyed
// by plan fingerprint. Concurrent Get calls for the same key run the
// build function exactly once; the losers block until it completes and
// share the result. Only successful values stay memoized: a failed
// build propagates its error to every waiter and is then forgotten, so
// one rejected plan (say, tampered bytes handed to LoadPlan) does not
// poison its fingerprint against a later good build.
type Cache[V any] struct {
	seed   maphash.Seed
	shards [nShards]cacheShard[V]
	hits   atomic.Int64
	misses atomic.Int64
	built  atomic.Int64
}

type cacheShard[V any] struct {
	mu sync.Mutex
	m  map[string]*cacheEntry[V]
}

type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewCache returns an empty cache.
func NewCache[V any]() *Cache[V] {
	c := &Cache[V]{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*cacheEntry[V])
	}
	return c
}

func (c *Cache[V]) shard(key string) *cacheShard[V] {
	return &c.shards[maphash.String(c.seed, key)%nShards]
}

// Get returns the cached value for key, building it with build on first
// request. Exactly one goroutine builds per key; the rest wait.
func (c *Cache[V]) Get(key string, build func() (V, error)) (V, error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		s.mu.Unlock()
		c.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	s.m[key] = e
	s.mu.Unlock()

	c.misses.Add(1)
	c.built.Add(1)
	e.val, e.err = build()
	close(e.done)
	if e.err != nil {
		s.mu.Lock()
		if s.m[key] == e {
			delete(s.m, key)
		}
		s.mu.Unlock()
	}
	return e.val, e.err
}

// Lookup returns the completed value for key without building. ok is
// false when the key is absent, still building, or failed to build.
func (c *Cache[V]) Lookup(key string) (V, bool) {
	var zero V
	s := c.shard(key)
	s.mu.Lock()
	e, ok := s.m[key]
	s.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-e.done:
	default:
		return zero, false
	}
	if e.err != nil {
		return zero, false
	}
	return e.val, true
}

// Replace publishes val as the completed value for key, replacing any
// existing entry — the hot-swap the tiered planner uses to upgrade a
// heuristic tier-0 plan to the fully tuned one. Waiters already joined
// to the old entry keep the value they were promised (the entry they
// hold is untouched); every Get and Lookup after Replace returns val.
// In-flight executions holding the old value are unaffected: values
// are immutable from the cache's point of view, so a swap can never
// corrupt a caller mid-use.
func (c *Cache[V]) Replace(key string, val V) {
	e := &cacheEntry[V]{done: make(chan struct{}), val: val}
	close(e.done)
	s := c.shard(key)
	s.mu.Lock()
	s.m[key] = e
	s.mu.Unlock()
}

// Len reports how many keys the cache holds (including in-flight
// builds; failed builds are evicted when they complete).
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{Hits: c.hits.Load(), Misses: c.misses.Load(), Built: c.built.Load()}
}
