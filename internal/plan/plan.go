// Package plan defines the first-class execution plan: an immutable,
// versioned, JSON-serializable record of every decision needed to run
// one GEMM on one chip — cache blocking, loop order, packing mode, the
// DMT panel splits of each distinct cache block, and the micro-kernel
// cache keys the executor will request — together with the model's
// projected cost and a fingerprint over the planning inputs.
//
// The package is the bottom of the planning stack: it imports nothing
// from the rest of the engine, so producers (internal/core's planner,
// internal/tuner) and consumers (internal/core's executor, the public
// Engine cache, the on-disk Registry) all meet here without cycles.
//
// A plan is produced once — by core.Produce for the model defaults or
// by tuner.TunePlan for a searched configuration — then cached in
// memory (Cache), optionally persisted (Registry), and replayed by
// attaching an executor. The paper's motivation applies directly:
// planning (tile selection by arithmetic intensity, Algorithm 1 panel
// splits, the Eqn-13-pruned search) is expensive and shape-specific,
// so a serving system should plan once and execute many times.
package plan

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// FormatVersion is the serialized plan format. Bump it whenever the
// meaning of any persisted field changes; fingerprints incorporate it,
// so stale registry entries from older formats never match a live
// request and are re-planned instead of misinterpreted.
const FormatVersion = 1

// Plan sources.
const (
	SourceAuto      = "auto"      // model-default planning (core.Produce)
	SourceTuner     = "tuner"     // winner of a tuner search
	SourceHeuristic = "heuristic" // instant tier-0 recipe (core.ProduceHeuristic)
)

// Request captures the planning inputs exactly as the caller supplied
// them — zero block extents mean "choose automatically", Pack may be
// "auto" — so that two identical requests always fingerprint alike
// regardless of what they resolve to.
type Request struct {
	Chip   string   `json:"chip"`
	M      int      `json:"m"`
	N      int      `json:"n"`
	K      int      `json:"k"`
	MC     int      `json:"mc"`
	NC     int      `json:"nc"`
	KC     int      `json:"kc"`
	Order  string   `json:"order"`
	Pack   string   `json:"pack"`
	Rotate bool     `json:"rotate"`
	Fuse   bool     `json:"fuse"`
	Cores  int      `json:"cores,omitempty"`
	Over   int      `json:"callOverhead,omitempty"`
	KCisK  bool     `json:"forceKCisK,omitempty"`
	Tiler  string   `json:"tiler"`
	Cands  []string `json:"candidates,omitempty"` // restricted DMT tile set, "MRxNR"
}

// Fingerprint hashes the request and the plan format version into a
// stable hex key. Everything that can change the produced plan is in
// the hash; nothing else is.
func (r Request) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "autogemm-plan-v%d|%s|%d|%d|%d|%d|%d|%d|%s|%s|%v|%v|%d|%d|%v|%s",
		FormatVersion, r.Chip, r.M, r.N, r.K, r.MC, r.NC, r.KC,
		r.Order, r.Pack, r.Rotate, r.Fuse, r.Cores, r.Over, r.KCisK, r.Tiler)
	if len(r.Cands) > 0 {
		cands := append([]string(nil), r.Cands...)
		sort.Strings(cands)
		b.WriteString("|" + strings.Join(cands, ","))
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// Panel is one uniformly-tiled rectangle of a block's DMT cover
// (Algorithm 1 emits up to four per block).
type Panel struct {
	Row    int  `json:"row"`
	Col    int  `json:"col"`
	M      int  `json:"m"`
	N      int  `json:"n"`
	MR     int  `json:"mr"`
	NR     int  `json:"nr"`
	Padded bool `json:"padded,omitempty"`
}

// Block is the resolved micro-tiling of one distinct cache-block shape.
type Block struct {
	M           int     `json:"m"`
	N           int     `json:"n"`
	LoadLatency int     `json:"loadLatency"` // residency latency the tiler assumed
	Cost        float64 `json:"cost"`        // Eqn-13 projected cycles per visit
	Tiler       string  `json:"tiler"`       // strategy that produced the panels
	Panels      []Panel `json:"panels"`
}

// Plan is a complete, immutable execution recipe. Producers build it,
// serialize it, and never mutate it after publication; executors treat
// it as read-only.
type Plan struct {
	Format      int      `json:"format"`
	Fingerprint string   `json:"fingerprint"`
	Request     Request  `json:"request"`
	MC          int      `json:"mcResolved"`
	NC          int      `json:"ncResolved"`
	KC          int      `json:"kcResolved"`
	Order       string   `json:"orderResolved"`
	Pack        string   `json:"packResolved"`
	Blocks      []Block  `json:"blocks"`
	KernelKeys  []string `json:"kernelKeys"` // micro/band kernel cache keys the plan executes
	ModelCycles float64  `json:"modelCycles"`
	Source      string   `json:"source"`
}

// Block returns the tiling for a block shape, or nil when the plan does
// not cover it — a structural mismatch the executor must reject.
func (p *Plan) Block(m, n int) *Block {
	for i := range p.Blocks {
		if p.Blocks[i].M == m && p.Blocks[i].N == n {
			return &p.Blocks[i]
		}
	}
	return nil
}

// Validate checks the plan's internal integrity: format version,
// fingerprint consistency with the stored request, and structural
// sanity of the resolved parameters. It does not (and cannot) verify
// the panels against a live tiler — the executor re-validates coverage
// when it attaches.
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("plan: nil plan")
	}
	if p.Format != FormatVersion {
		return fmt.Errorf("plan: format %d, want %d", p.Format, FormatVersion)
	}
	if fp := p.Request.Fingerprint(); fp != p.Fingerprint {
		return fmt.Errorf("plan: fingerprint %s does not match request (%s)", p.Fingerprint, fp)
	}
	if p.Request.M <= 0 || p.Request.N <= 0 || p.Request.K <= 0 {
		return fmt.Errorf("plan: invalid problem %dx%dx%d", p.Request.M, p.Request.N, p.Request.K)
	}
	if p.MC <= 0 || p.NC <= 0 || p.KC <= 0 {
		return fmt.Errorf("plan: unresolved blocking %dx%dx%d", p.MC, p.NC, p.KC)
	}
	if len(p.Blocks) == 0 {
		return fmt.Errorf("plan: no block tilings")
	}
	for _, b := range p.Blocks {
		if b.M <= 0 || b.N <= 0 || len(b.Panels) == 0 {
			return fmt.Errorf("plan: malformed block %dx%d", b.M, b.N)
		}
	}
	return nil
}

// CheckRequest verifies that the plan answers exactly the given request
// — same fingerprint, same chip — the gate a registry-loaded or
// deserialized plan must pass before an executor attaches to it. A
// stale entry (older format, different chip, different options) fails
// here and the caller falls back to fresh planning.
func (p *Plan) CheckRequest(r Request) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.Request.Chip != r.Chip {
		return fmt.Errorf("plan: planned for chip %s, requested %s", p.Request.Chip, r.Chip)
	}
	if fp := r.Fingerprint(); fp != p.Fingerprint {
		return fmt.Errorf("plan: fingerprint mismatch: plan %s, request %s", p.Fingerprint, fp)
	}
	return nil
}
