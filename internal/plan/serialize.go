package plan

import (
	"encoding/json"
	"fmt"
)

// Encode serializes the plan as indented JSON — the registry file
// format and the payload of Engine.PlanFor(...).Serialize.
func (p *Plan) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Decode parses a serialized plan and validates its integrity. Plans
// from a different format version, or whose fingerprint no longer
// matches their stored request, are rejected — the caller re-plans.
func Decode(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("plan: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
