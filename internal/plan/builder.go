package plan

import (
	"fmt"
	"sort"
)

// Builder accumulates a plan under construction. It exists so that the
// immutability contract of Plan can be stated — and machine-checked by
// cmd/autogemm-vet's planmut pass — as "no package outside plan ever
// assigns to a Plan field": producers append blocks and kernel keys
// through the builder and receive a finished, validated, fingerprinted
// Plan that is never written again.
type Builder struct {
	p Plan
}

// NewBuilder starts a plan for a request with its resolved blocking,
// loop order and packing mode. Format, fingerprint and source are
// filled in by the builder itself.
func NewBuilder(req Request, mc, nc, kc int, order, pack string) *Builder {
	return &Builder{p: Plan{
		Format:      FormatVersion,
		Fingerprint: req.Fingerprint(),
		Request:     req,
		MC:          mc, NC: nc, KC: kc,
		Order:  order,
		Pack:   pack,
		Source: SourceAuto,
	}}
}

// AddBlock appends the resolved tiling of one distinct block shape.
func (b *Builder) AddBlock(blk Block) { b.p.Blocks = append(b.p.Blocks, blk) }

// SetSource labels the plan under construction with its producer
// ("auto", "tuner" or "heuristic"). Source is not part of the
// fingerprint: a heuristic tier-0 plan answers the same request — and
// lives under the same cache key — as the full plan that later
// replaces it.
func (b *Builder) SetSource(source string) { b.p.Source = source }

// Block returns the tiling already added for a block shape, or nil —
// the producer's cost composition reads back what it appended.
func (b *Builder) Block(m, n int) *Block { return b.p.Block(m, n) }

// AddKernelKey records one micro/band kernel cache key the plan will
// execute. Duplicates are deduplicated at Finish.
func (b *Builder) AddKernelKey(key string) {
	b.p.KernelKeys = append(b.p.KernelKeys, key)
}

// AddModelCycles accumulates projected cost onto the plan.
func (b *Builder) AddModelCycles(c float64) { b.p.ModelCycles += c }

// Finish validates the accumulated plan and returns it. The kernel keys
// are sorted and deduplicated; the returned plan is immutable from the
// producer's point of view.
func (b *Builder) Finish() (*Plan, error) {
	if len(b.p.KernelKeys) > 0 {
		sort.Strings(b.p.KernelKeys)
		out := b.p.KernelKeys[:1]
		for _, k := range b.p.KernelKeys[1:] {
			if k != out[len(out)-1] {
				out = append(out, k)
			}
		}
		b.p.KernelKeys = out
	}
	p := b.p
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: builder produced invalid plan: %w", err)
	}
	return &p, nil
}

// WithSource returns a copy of the plan relabeled with a new source
// ("auto" or "tuner"). Source is not part of the fingerprint, so the
// copy answers the same requests; the original is left untouched,
// preserving the immutability contract for published plans.
func (p *Plan) WithSource(source string) *Plan {
	q := *p
	q.Source = source
	return &q
}
