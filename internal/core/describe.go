package core

import (
	"fmt"
	"strings"
)

// Describe renders the fully-resolved plan as a human-readable report:
// the blocking, packing and loop-order decisions, and the micro-tiling of
// each distinct block shape — what cmd/autogemm-tune -explain prints.
func (p *Plan) Describe() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %dx%dx%d on %s\n", p.M, p.N, p.K, p.Chip)
	fmt.Fprintf(&b, "  blocking   m_c=%d n_c=%d k_c=%d\n", p.Opts.MC, p.Opts.NC, p.Opts.KC)
	fmt.Fprintf(&b, "  loop order %s (outermost to innermost)\n", p.Opts.Order)
	fmt.Fprintf(&b, "  packing    %s\n", p.Opts.Pack)
	fmt.Fprintf(&b, "  pipeline   rotate=%v fuse=%v\n", p.Opts.Rotate, p.Opts.Fuse)
	fmt.Fprintf(&b, "  strategy   %s\n", p.Recipe.Request.Tiler)

	// Distinct block shapes in visit order.
	seen := map[[2]int]bool{}
	blocks := p.blocks()
	fmt.Fprintf(&b, "  block grid %d visits\n", len(blocks))
	for _, blk := range blocks {
		key := [2]int{blk.MB, blk.NB}
		if seen[key] {
			continue
		}
		seen[key] = true
		tl, err := p.blockTiling(blk.MB, blk.NB)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\nblock %dx%d (k chunk %d): %d micro-tiles, %d low-AI\n",
			blk.MB, blk.NB, blk.KB,
			tl.TileCount(p.Chip.Lanes), tl.LowAICount(p.Chip.Lanes, p.Chip.SigmaAI))
		if blk.MB <= 64 && blk.NB <= 96 {
			b.WriteString(tl.Render(p.Chip.Lanes))
		} else {
			for _, panel := range tl.Panels {
				fmt.Fprintf(&b, "  panel @(%d,%d) %dx%d tiled %v\n",
					panel.Row, panel.Col, panel.M, panel.N, panel.Tile)
			}
		}
	}
	return b.String(), nil
}
