package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/plan"
	"autogemm/internal/plan/audit"
	"autogemm/internal/sched"
	"autogemm/internal/tiling"
)

// TestProduceHeuristicAnswersSameRequest: the tier-0 plan carries the
// same fingerprint as the full plan (it answers the same request and
// lives under the same cache key), is tagged heuristic, and passes the
// same static audit gate an untrusted plan must clear.
func TestProduceHeuristicAnswersSameRequest(t *testing.T) {
	chip := hw.KP920()
	opts := AutoOptions(chip)
	for _, s := range [][3]int{{26, 36, 20}, {64, 3136, 576}, {512, 49, 1024}} {
		ph, err := ProduceHeuristic(chip, s[0], s[1], s[2], opts)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := Produce(chip, s[0], s[1], s[2], opts)
		if err != nil {
			t.Fatal(err)
		}
		if ph.Fingerprint != pf.Fingerprint {
			t.Fatalf("%v: heuristic fingerprint %s != full %s", s, ph.Fingerprint, pf.Fingerprint)
		}
		if ph.Source != plan.SourceHeuristic {
			t.Fatalf("%v: source %q, want %q", s, ph.Source, plan.SourceHeuristic)
		}
		if ph.MC != pf.MC || ph.NC != pf.NC || ph.KC != pf.KC {
			t.Fatalf("%v: heuristic blocking %dx%dx%d != full %dx%dx%d",
				s, ph.MC, ph.NC, ph.KC, pf.MC, pf.NC, pf.KC)
		}
		if _, err := audit.Audit(chip, ph, audit.Options{}); err != nil {
			t.Fatalf("%v: heuristic plan fails audit: %v", s, err)
		}
		// Untrusted attach (the path a registry-loaded plan takes).
		if _, err := Attach(chip, ph, Options{}); err != nil {
			t.Fatalf("%v: attach: %v", s, err)
		}
	}
}

// TestSubmitProduceMatchesProduce: the background producer must emit
// the plan Produce emits, bit for bit — same panels, same keys, same
// projected cost — since it hot-swaps into the same cache key.
func TestSubmitProduceMatchesProduce(t *testing.T) {
	chip := hw.KP920()
	opts := AutoOptions(chip)
	pool := sched.New(4, 0)
	defer pool.Close()
	for _, s := range [][3]int{{26, 36, 20}, {64, 300, 64}, {130, 70, 96}} {
		want, err := Produce(chip, s[0], s[1], s[2], opts)
		if err != nil {
			t.Fatal(err)
		}
		var (
			wg   sync.WaitGroup
			got  *plan.Plan
			gerr error
		)
		wg.Add(1)
		if err := SubmitProduce(pool, chip, s[0], s[1], s[2], opts, func(p *plan.Plan, err error) {
			got, gerr = p, err
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		if gerr != nil {
			t.Fatal(gerr)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: background plan differs from Produce\n got: %+v\nwant: %+v", s, got, want)
		}
	}
}

// TestSubmitProduceSeededKeepsFingerprint: a candidate seed passed via
// the runtime-only Strategy field narrows the search without touching
// the request fingerprint — the transfer-planning contract.
func TestSubmitProduceSeededKeepsFingerprint(t *testing.T) {
	chip := hw.KP920()
	opts := AutoOptions(chip)
	base := Fingerprint(chip, 64, 300, 64, opts)

	seeded := opts
	seeded.Strategy = &tiling.DMT{Candidates: mkernel.PreferredTiles(chip.Lanes)}
	pool := sched.New(2, 0)
	defer pool.Close()
	var (
		wg  sync.WaitGroup
		got *plan.Plan
	)
	wg.Add(1)
	if err := SubmitProduce(pool, chip, 64, 300, 64, seeded, func(p *plan.Plan, err error) {
		if err != nil {
			t.Error(err)
		}
		got = p
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got == nil || got.Fingerprint != base {
		t.Fatalf("seeded fingerprint differs from base request")
	}
}

// TestSubmitProduceBusy: a pool at depth refuses without blocking.
func TestSubmitProduceBusy(t *testing.T) {
	chip := hw.KP920()
	pool := sched.New(1, 1)
	defer pool.Close()
	release := make(chan struct{})
	fut, err := pool.Submit(1, 1, func(_ *sched.Worker, _ int) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = SubmitProduce(pool, chip, 26, 36, 20, AutoOptions(chip), func(*plan.Plan, error) {})
	if !errors.Is(err, sched.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	close(release)
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
}
