package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"autogemm/internal/sched"
)

// This file is the plan's bridge onto the scheduler runtime
// (internal/sched). Every execution — serial Run, RunParallel, and the
// asynchronous Submit the engine's batch/async API builds on — is one
// scheduler job: the plan's C-tile groups are the job's tasks, claimed
// from a shared atomic cursor by up to `workers` pool workers.
// Different (m, n) groups touch disjoint C regions, so they run
// concurrently; the k chunks of one group accumulate in ascending order
// inside a single task, which keeps per-job results bit-identical to a
// serial Run at every worker count.

// jobSeq distinguishes jobs so worker-held pack-reuse keys reset at job
// boundaries (see execState.job).
var jobSeq uint64

// partitionGroups groups a block iteration by (m, n) tile of C, keeping
// each group's k chunks in ascending order (accumulation is
// order-sensitive only in rounding, but keep it deterministic). Groups
// appear in first-visit order of the plan's loop order. Attach calls
// this once; execution never re-partitions.
func partitionGroups(blocks []blockIter) [][]blockIter {
	index := make(map[[2]int]int)
	var groups [][]blockIter
	for _, blk := range blocks {
		key := [2]int{blk.MOff, blk.NOff}
		gi, ok := index[key]
		if !ok {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], blk)
	}
	for _, g := range groups {
		g := g
		sort.SliceStable(g, func(i, j int) bool { return g[i].KOff < g[j].KOff })
	}
	return groups
}

// RunFuture is a pending GEMM job submitted through the plan's runtime.
// Wait blocks until the job completes and returns its first error; it
// is safe to call from multiple goroutines and idempotent.
type RunFuture struct {
	p    *Plan
	f    *sched.Future
	once sync.Once
	err  error
}

// Wait blocks for the job and returns its first task error.
func (f *RunFuture) Wait() error {
	f.once.Do(func() {
		f.err = f.f.Wait()
		atomic.AddInt64(&f.p.nJobsDone, 1)
		atomic.AddInt64(&f.p.nStolen, f.f.TasksStolen())
	})
	return f.err
}

// Done returns a channel closed when the job completes. After Done,
// Wait returns without blocking.
func (f *RunFuture) Done() <-chan struct{} { return f.f.Done() }

// OnDone invokes fn with the job's completion error exactly once, on a
// scheduler-owned goroutine (sched.Future.OnDone's contract). The
// error is routed through Wait so the plan's job counters fold exactly
// once however completion is observed.
func (f *RunFuture) OnDone(fn func(error)) {
	f.f.OnDone(func(error) { fn(f.Wait()) })
}

// JobID returns the scheduler's pool-unique ID for this job — the key
// an installed sched.Timekeeper files its per-task cost observations
// under (sched.Recorder.Costs).
func (f *RunFuture) JobID() int64 { return f.f.JobID() }

// Tasks returns the number of C-tile-group tasks in this job.
func (f *RunFuture) Tasks() int { return f.f.Tasks() }

// Participants returns how many pool workers ran at least one of the
// job's tasks. Only meaningful after the job completes.
func (f *RunFuture) Participants() int { return f.f.Participants() }

// TasksStolen returns how many of the job's tasks were claimed by
// workers other than the one that claimed the first task.
func (f *RunFuture) TasksStolen() int64 { return f.f.TasksStolen() }

// WaitContext is Wait bounded by a context: it returns the job's error
// once it completes, or ctx.Err() if the context fires first. An early
// return does not abandon the job; Wait remains usable and the
// operand slices stay in use until the job actually completes.
func (f *RunFuture) WaitContext(ctx context.Context) error {
	select {
	case <-f.f.Done():
		return f.Wait()
	default:
	}
	select {
	case <-f.f.Done():
		return f.Wait()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// checkGeometry rejects negative extents and operand areas that
// overflow int before any buffer-length arithmetic: with m = k = -1 the
// product m*k is 1, so the minimum-length checks alone would wave
// garbage geometry into execution.
func checkGeometry(m, n, k int) error {
	if m < 0 || n < 0 || k < 0 {
		return fmt.Errorf("core: negative problem extents %dx%dx%d", m, n, k)
	}
	for _, d := range [3][2]int{{m, k}, {k, n}, {m, n}} {
		if d[0] > 0 && d[1] > math.MaxInt/d[0] {
			return fmt.Errorf("core: problem extents %dx%dx%d overflow int", m, n, k)
		}
	}
	return nil
}

// submitJob validates the geometry and operand buffers and enqueues the
// plan's C-tile-group task list on the runtime as one job bound to ctx,
// claimed by at most `workers` pool workers (<= 0 means all of them),
// scheduled under qos. A zero-field QoS inherits the plan's default
// (Options.DefaultQoS, set by the owning engine): class first, then
// weight — a per-call deadline is never defaulted.
func (p *Plan) submitJob(ctx context.Context, c, a, b []float32, workers int, qos sched.QoS) (*RunFuture, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if qos.Class == "" {
		qos.Class = p.defaultQoS.Class
	}
	if qos.Weight == 0 {
		qos.Weight = p.defaultQoS.Weight
	}
	m, n, k := p.M, p.N, p.K
	if err := checkGeometry(m, n, k); err != nil {
		return nil, err
	}
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		return nil, fmt.Errorf("core: buffer sizes (%d,%d,%d) too small for %dx%dx%d",
			len(a), len(b), len(c), m, n, k)
	}
	if workers <= 0 || workers > p.runtime.Workers() {
		workers = p.runtime.Workers()
	}
	if workers > len(p.groups) {
		workers = len(p.groups)
	}
	if workers < 1 {
		workers = 1
	}
	seq := atomic.AddUint64(&jobSeq, 1)
	fut, err := p.runtime.SubmitQoS(ctx, len(p.groups), workers, qos, func(w *sched.Worker, gi int) error {
		st := p.stateFor(w, seq)
		for _, blk := range p.groups[gi] {
			if err := p.runBlock(st, blk, c, a, b); err != nil {
				return err
			}
		}
		if p.vtCosting.Load() {
			// Cost accounting on: charge this task's precomputed
			// simulated cost to the worker's virtual clock. Numeric
			// execution above is untouched — results stay bit-identical.
			w.Charge(p.taskCosts[gi])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&p.nJobs, 1)
	return &RunFuture{p: p, f: fut}, nil
}

// Submit enqueues the GEMM asynchronously — all pool workers may
// participate — and returns a future for its completion. The operand
// slices must stay untouched until Wait returns.
func (p *Plan) Submit(c, a, b []float32) (*RunFuture, error) {
	return p.submitJob(context.Background(), c, a, b, 0, sched.QoS{})
}

// SubmitContext is Submit bound to a context: cancellation mid-job
// skips the remaining C-tile groups (the job fails with ctx.Err()) and
// unblocks a submitter stalled on scheduler backpressure.
func (p *Plan) SubmitContext(ctx context.Context, c, a, b []float32) (*RunFuture, error) {
	return p.submitJob(ctx, c, a, b, 0, sched.QoS{})
}

// SubmitQoS is SubmitContext with an explicit scheduling QoS: the job
// parks in qos.Class's queue of the runtime and competes under that
// class's weight; a set qos.Deadline bounds completion (expired →
// sched.ErrAdmission before claiming). Zero fields inherit the plan's
// engine-level default QoS.
func (p *Plan) SubmitQoS(ctx context.Context, c, a, b []float32, qos sched.QoS) (*RunFuture, error) {
	return p.submitJob(ctx, c, a, b, 0, qos)
}

// RunContext is Run bound to a context: when ctx fires mid-job the
// remaining C-tile groups are skipped and the call returns ctx.Err().
// Unlike the asynchronous WaitContext, it returns only once the job has
// actually completed — cancellation makes that prompt (bounded by the
// task already running) — so the operand slices are always quiescent
// when it returns and may be reused immediately.
func (p *Plan) RunContext(ctx context.Context, c, a, b []float32) error {
	fut, err := p.submitJob(ctx, c, a, b, 1, sched.QoS{})
	if err != nil {
		return err
	}
	return fut.Wait()
}

// RunParallel is Run with the C-tile groups claimed by up to `workers`
// pool workers concurrently — the functional counterpart of the
// multi-core scheduling the Estimate path models. workers <= 0 uses the
// whole pool. Results are bit-identical to Run: each C tile's k chunks
// execute in ascending order within one task.
func (p *Plan) RunParallel(c, a, b []float32, workers int) error {
	fut, err := p.submitJob(context.Background(), c, a, b, workers, sched.QoS{})
	if err != nil {
		return err
	}
	return fut.Wait()
}

// RunParallelContext is RunParallel bound to a context. Like
// RunContext it returns only once the job has completed (promptly on
// cancellation), so the operand slices are quiescent on return.
func (p *Plan) RunParallelContext(ctx context.Context, c, a, b []float32, workers int) error {
	fut, err := p.submitJob(ctx, c, a, b, workers, sched.QoS{})
	if err != nil {
		return err
	}
	return fut.Wait()
}
