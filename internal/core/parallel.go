package core

import (
	"fmt"
	"runtime"
	"sync"

	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
)

// RunParallel is Run with the block grid executed by worker goroutines —
// the functional counterpart of the multi-core scheduling the Estimate
// path models. Different (m, n) blocks touch disjoint C regions, so they
// run concurrently; the k chunks of one block accumulate in order within
// a single worker. workers <= 0 uses GOMAXPROCS.
func (p *Plan) RunParallel(c, a, b []float32, workers int) error {
	m, n, k := p.M, p.N, p.K
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		return fmt.Errorf("core: buffer sizes (%d,%d,%d) too small for %dx%dx%d",
			len(a), len(b), len(c), m, n, k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Group the block iteration by (m, n) tile of C, keeping each
	// group's k chunks in ascending order.
	type group struct {
		blocks []blockIter
	}
	index := make(map[[2]int]int)
	var groups []group
	for _, blk := range p.blocks() {
		key := [2]int{blk.MOff, blk.NOff}
		gi, ok := index[key]
		if !ok {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, group{})
		}
		groups[gi].blocks = append(groups[gi].blocks, blk)
	}
	for _, g := range groups {
		for i := 1; i < len(g.blocks); i++ {
			if g.blocks[i].KOff < g.blocks[i-1].KOff {
				// The chosen loop order interleaves k; restore chunk order
				// within the group (accumulation is order-sensitive only
				// in rounding, but keep it deterministic).
				blocks := g.blocks
				for a := 1; a < len(blocks); a++ {
					for b := a; b > 0 && blocks[b].KOff < blocks[b-1].KOff; b-- {
						blocks[b], blocks[b-1] = blocks[b-1], blocks[b]
					}
				}
				break
			}
		}
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}

	lanes := p.Chip.Lanes
	arena := sim.NewArena(m*k + k*n + m*n + 1<<12)
	aAddr := arena.Alloc(m*k + 2*lanes)
	bAddr := arena.Alloc(k*n + 2*n + 2*lanes)
	cAddr := arena.Alloc(m*n + 2*lanes)
	copy(arena.Slice(aAddr, m*k), a[:m*k])
	copy(arena.Slice(bAddr, k*n), b[:k*n])
	copy(arena.Slice(cAddr, m*n), c[:m*n])

	// Per-worker scratch buffers, all reserved before any goroutine runs
	// (the arena may grow only during Alloc).
	mcMax, ncMax, kcMax := p.Opts.MC, quantUp(p.Opts.NC, lanes), p.Opts.KC
	cBufLD := ncMax + mkernel.MaxNROverhang(lanes)
	type scratch struct {
		packA, packB, cBuf int64
	}
	scratches := make([]scratch, workers)
	for i := range scratches {
		scratches[i] = scratch{
			packA: arena.Alloc(mcMax*kcMax + 2*lanes),
			packB: arena.Alloc((kcMax + 2) * (ncMax + mkernel.MaxNROverhang(lanes))),
			cBuf:  arena.Alloc((mcMax + mkernel.MaxMR) * cBufLD),
		}
	}

	work := make(chan group)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mach := sim.NewMachine(arena, lanes)
			sc := scratches[w]
			for g := range work {
				if errs[w] != nil {
					continue // keep draining so the sender never blocks
				}
				for _, blk := range g.blocks {
					if err := p.runBlock(mach, arena, blk, aAddr, bAddr, cAddr,
						sc.packA, sc.packB, sc.cBuf, cBufLD); err != nil {
						errs[w] = err
						break
					}
				}
			}
		}(w)
	}
	for _, g := range groups {
		work <- g
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	copy(c[:m*n], arena.Slice(cAddr, m*n))
	return nil
}
