package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// RunParallel is Run with the block grid executed by worker goroutines —
// the functional counterpart of the multi-core scheduling the Estimate
// path models. Different (m, n) blocks touch disjoint C regions, so they
// run concurrently; the k chunks of one block accumulate in order within
// a single worker. workers <= 0 uses GOMAXPROCS.
//
// Work distribution is a shared atomic counter over the C-tile groups:
// each worker claims the next unclaimed group when it finishes its
// current one, so an expensive edge group never serializes the rest
// behind a static partition. Worker scratch comes from the plan's
// sync.Pool and the compiled backend addresses the user slices in place
// where proven safe, so the per-call cost is bounded by the block
// staging copies, not a whole-matrix arena build.
func (p *Plan) RunParallel(c, a, b []float32, workers int) error {
	m, n, k := p.M, p.N, p.K
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		return fmt.Errorf("core: buffer sizes (%d,%d,%d) too small for %dx%dx%d",
			len(a), len(b), len(c), m, n, k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Group the block iteration by (m, n) tile of C, keeping each
	// group's k chunks in ascending order (accumulation is
	// order-sensitive only in rounding, but keep it deterministic).
	nGroups := ((m + p.Opts.MC - 1) / p.Opts.MC) * ((n + p.Opts.NC - 1) / p.Opts.NC)
	index := make(map[[2]int]int, nGroups)
	groups := make([][]blockIter, 0, nGroups)
	for _, blk := range p.blocks() {
		key := [2]int{blk.MOff, blk.NOff}
		gi, ok := index[key]
		if !ok {
			gi = len(groups)
			index[key] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], blk)
	}
	for _, g := range groups {
		g := g
		sort.SliceStable(g, func(i, j int) bool { return g[i].KOff < g[j].KOff })
	}

	if workers > len(groups) {
		workers = len(groups)
	}
	if workers < 1 {
		workers = 1
	}

	runGroup := func(st *execState, g []blockIter) error {
		for _, blk := range g {
			if err := p.runBlock(st, blk, c, a, b); err != nil {
				return err
			}
		}
		return nil
	}

	if workers == 1 {
		st := p.getState()
		defer p.putState(st)
		for _, g := range groups {
			if err := runGroup(st, g); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    int64
		failed  int32
		mu      sync.Mutex
		waitErr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := p.getState()
			defer p.putState(st)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(groups) || atomic.LoadInt32(&failed) != 0 {
					return
				}
				if err := runGroup(st, groups[i]); err != nil {
					atomic.StoreInt32(&failed, 1)
					mu.Lock()
					if waitErr == nil {
						waitErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return waitErr
}
