// Package core assembles the paper's contribution into a working GEMM,
// split along the plan boundary:
//
//   - the *planner* (planner.go, Produce) resolves cache blocking
//     (m_c, n_c, k_c), data packing (σ_packing), loop ordering
//     (σ_order) and the micro-tiling of each distinct block (package
//     tiling), and captures everything in an immutable, serializable
//     plan.Plan;
//   - the *executor* (this file, exec.go, estimate.go; Attach) replays
//     a plan — functionally (numerical results via the compiled
//     backend or the simulator's machine) and as a cycle estimate
//     (per-band timing simulation composed over the block grid) —
//     without re-deriving any planning decision.
//
// NewPlan composes the two for callers that want the classic one-shot
// flow; the Engine-level plan cache and registry warm-start path call
// Produce and Attach separately.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
	"autogemm/internal/plan"
	"autogemm/internal/sched"
	"autogemm/internal/tiling"
)

// PackMode is σ_packing: none, online (packing inside the timed region)
// or offline (B packed ahead of time, amortized — the LibShalom
// comparison mode of §V-C).
type PackMode int

// Packing modes. PackAuto resolves to PackNone when the whole B matrix
// fits L1 (the paper skips packing when N is small because the locality
// benefit cannot repay the packing time, §IV-C2) and to PackOnline
// otherwise.
const (
	PackNone PackMode = iota
	PackOnline
	PackOffline
	PackAuto
)

// String implements fmt.Stringer.
func (p PackMode) String() string {
	switch p {
	case PackNone:
		return "none"
	case PackOnline:
		return "online"
	case PackOffline:
		return "offline"
	case PackAuto:
		return "auto"
	default:
		return fmt.Sprintf("pack(%d)", int(p))
	}
}

// LoopOrder is σ_order for the three cache-block loops. The generator
// fixes the two register-loop orders (n inner within a row band), so of
// the paper's 5! = 120 permutations the 3! = 6 block orders remain
// distinguishable; the others collapse onto these (see DESIGN.md).
type LoopOrder uint8

// Block loop orders, named outermost to innermost.
const (
	OrderMNK LoopOrder = iota
	OrderMKN
	OrderNMK
	OrderNKM
	OrderKMN
	OrderKNM
)

// String implements fmt.Stringer.
func (o LoopOrder) String() string {
	names := [...]string{"MNK", "MKN", "NMK", "NKM", "KMN", "KNM"}
	if int(o) < len(names) {
		return names[o]
	}
	return "?"
}

// AllLoopOrders lists the block loop orders.
func AllLoopOrders() []LoopOrder {
	return []LoopOrder{OrderMNK, OrderMKN, OrderNMK, OrderNKM, OrderKMN, OrderKNM}
}

// Options selects the algorithm parameters of Table III plus the
// optimization toggles of §III-C.
type Options struct {
	MC, NC, KC int // cache block shape; 0 means "choose automatically"
	Order      LoopOrder
	Pack       PackMode
	Rotate     bool
	Fuse       bool

	// Strategy tiles each block; nil selects DMT with the chip's params.
	Strategy tiling.Strategy

	// DMTCandidates narrows the register-tile candidate set when the
	// strategy is DMT (used by the ablation experiments); nil means the
	// full generatable tile space.
	DMTCandidates []mkernel.Tile

	// CallOverhead adds fixed cycles per GEMM call (library dispatch);
	// used by the baseline library models.
	CallOverhead int

	// Cores used by cycle estimation; 0 or 1 is single-core.
	Cores int

	// ForceKCisK pins k_c = K, reproducing the paper's multi-core
	// limitation ("TVM does not support parallelism over the K
	// dimension", §V-C).
	ForceKCisK bool

	// ForceInterp disables the compiled closure-threaded backend:
	// every kernel runs on the checked interpreter (sim.Machine).
	// Setting AUTOGEMM_INTERP=1 in the environment has the same
	// effect. See docs/INTERNALS.md, "Compiled execution".
	ForceInterp bool

	// Runtime is the scheduler the attached plan executes on — a
	// runtime-only field (like ForceInterp and Strategy) that never
	// enters the plan fingerprint. nil selects the shared process-wide
	// pool; engines pass their own pool so WithWorkers/WithQueueDepth
	// and Close govern every execution they serve.
	Runtime *sched.Pool

	// DefaultQoS is the scheduling QoS an execution of the attached
	// plan submits under when the caller gives none: the engine's
	// default class/weight. Runtime-only; never enters the plan
	// fingerprint. Per-call QoS fields override it field-wise.
	DefaultQoS sched.QoS

	// TrustedPlan marks the recipe handed to Attach as produced inside
	// this process (by Produce or the tuner), skipping the static plan
	// audit. Plans that crossed a process boundary — registry files,
	// decoded JSON — must leave this false so Attach re-proves
	// coverage, bounds and kernel-key consistency before any kernel
	// can execute. Runtime-only; never enters the plan fingerprint.
	TrustedPlan bool
}

// AutoOptions returns the paper's default configuration for a chip:
// rotation and fusion on, DMT tiling, automatic blocking, packing chosen
// by problem size.
func AutoOptions(chip *hw.Chip) Options {
	return Options{Rotate: true, Fuse: true, Pack: PackAuto}
}

// Plan is an executor bound to one immutable recipe: a fully-resolved
// execution plan for one (M, N, K) problem on one chip. All planning
// state (blocking, loop order, packing, per-block tilings) lives in
// Recipe; the rest of the struct is runtime machinery — the kernel
// cache, per-worker scratch and execution counters.
type Plan struct {
	Chip    *hw.Chip
	M, N, K int
	Opts    Options // resolved: MC/NC/KC, Order and Pack are concrete

	// Recipe is the serializable plan this executor replays. Treat it
	// as read-only; RestrictDMTCandidates swaps in a freshly produced
	// one rather than mutating it.
	Recipe *plan.Plan

	params perfmodel.Params
	cache  *mkernel.Cache

	mu      sync.Mutex
	tilings map[[2]int]tiling.Tiling // block (m, n) -> tiling, from Recipe
	progs   map[[3]int]*blockProg    // block (m, n, k) -> resolved kernels

	interpOnly bool // ForceInterp or AUTOGEMM_INTERP=1

	// Execution runtime, fixed at Attach: the scheduler every Run /
	// RunParallel / Submit turns into a job on, the C-tile-group
	// partition of the block grid (precomputed once — the per-call
	// map+sort the old RunParallel paid is gone), and one scratch-state
	// slot per pool worker. Slot i is only ever touched by worker i, so
	// the states need no lock and no sync.Pool round trips.
	runtime    *sched.Pool
	defaultQoS sched.QoS
	groups     [][]blockIter
	states     []*execState

	// Memoized per-shape simulated costs (estimate.go, shapeCosts):
	// computed once, shared by the analytic estimator and the
	// virtual-time cost attribution. costKeys preserves first-visit
	// order so float composition is bit-deterministic.
	costOnce sync.Once
	costs    map[[3]int]blockCost
	costKeys [][3]int
	costErr  error

	// Virtual-time cost attribution (virtualtime.go): one precomputed
	// sched.TaskCost per C-tile group, charged to the running worker
	// when vtCosting is set. Written before the flag is raised, read
	// only after observing it.
	taskCosts []sched.TaskCost
	vtCosting atomic.Bool

	// Block-execution counters by path, updated atomically.
	nInPlace, nABInPlace, nPacked, nInterp int64

	// Scheduler counters: jobs this plan submitted / completed and the
	// tasks of its jobs run by a worker other than the first claimant.
	nJobs, nJobsDone, nStolen int64
}

// ExecStats counts block executions by path since the plan was created
// (across all Run/RunParallel calls). It exposes which tier the engine
// actually took — tests and benchmarks assert on it rather than
// guessing from timings.
type ExecStats struct {
	InPlaceBlocks   int64 // compiled; A, B and C addressed in the user slices
	ABInPlaceBlocks int64 // compiled; A/B in place, C staged through the block buffer
	PackedBlocks    int64 // compiled over packed scratch panels
	InterpBlocks    int64 // checked-interpreter fallback

	// Scheduler counters for this plan's jobs (one job per Run /
	// RunParallel / Submit): completions and stolen-task counts are
	// tallied when the job's future is waited on.
	JobsSubmitted int64
	JobsCompleted int64
	TasksStolen   int64 // tasks run by a worker other than the job's first claimant
}

// Stats returns a snapshot of the plan's execution counters.
func (p *Plan) Stats() ExecStats {
	return ExecStats{
		InPlaceBlocks:   atomic.LoadInt64(&p.nInPlace),
		ABInPlaceBlocks: atomic.LoadInt64(&p.nABInPlace),
		PackedBlocks:    atomic.LoadInt64(&p.nPacked),
		InterpBlocks:    atomic.LoadInt64(&p.nInterp),
		JobsSubmitted:   atomic.LoadInt64(&p.nJobs),
		JobsCompleted:   atomic.LoadInt64(&p.nJobsDone),
		TasksStolen:     atomic.LoadInt64(&p.nStolen),
	}
}

// NewPlan validates the problem, produces a fresh plan and attaches an
// executor to it — the classic one-shot flow. Callers that cache or
// persist plans use Produce and Attach separately.
func NewPlan(chip *hw.Chip, m, n, k int, opts Options) (*Plan, error) {
	rec, err := Produce(chip, m, n, k, opts)
	if err != nil {
		return nil, err
	}
	opts.TrustedPlan = true // just produced in-process, no audit needed
	return Attach(chip, rec, opts)
}

func (p *Plan) opt() perfmodel.Opt {
	return perfmodel.Opt{Rotate: p.Opts.Rotate, Fuse: p.Opts.Fuse}
}

// RestrictDMTCandidates narrows the DMT register-tile candidate set
// (used by the ablation experiments) by re-producing the recipe with
// the restriction applied; it has no effect when a non-DMT strategy
// was supplied. Resolved tilings and kernel programs are replaced.
func (p *Plan) RestrictDMTCandidates(tiles []mkernel.Tile) {
	if p.Opts.Strategy != nil {
		if _, ok := p.Opts.Strategy.(*tiling.DMT); !ok {
			return
		}
	}
	opts := p.Opts
	opts.DMTCandidates = tiles
	rec, err := Produce(p.Chip, p.M, p.N, p.K, opts)
	if err != nil {
		return
	}
	tilings := make(map[[2]int]tiling.Tiling, len(rec.Blocks))
	for _, blk := range rec.Blocks {
		tilings[[2]int{blk.M, blk.N}] = tiling.FromPlanBlock(blk)
	}
	p.mu.Lock()
	p.Opts.DMTCandidates = tiles
	p.Recipe = rec
	p.tilings = tilings
	p.progs = make(map[[3]int]*blockProg)
	p.mu.Unlock()
}

// blockTiling returns the tiling the recipe assigns to a block shape.
// The planner enumerated every distinct shape of the grid, so a miss is
// a structural bug (or a foreign recipe), not a cue to re-plan.
func (p *Plan) blockTiling(m, n int) (tiling.Tiling, error) {
	p.mu.Lock()
	tl, ok := p.tilings[[2]int{m, n}]
	p.mu.Unlock()
	if !ok {
		return tiling.Tiling{}, fmt.Errorf("core: plan has no tiling for block %dx%d", m, n)
	}
	return tl, nil
}

// blocks enumerates the cache-block grid in the plan's loop order.
type blockIter struct {
	MOff, NOff, KOff int
	MB, NB, KB       int
	First            bool // first k chunk for this (m, n) block: β = 0
}

func (p *Plan) blocks() []blockIter {
	var ms, ns, ks [][2]int
	for off := 0; off < p.M; off += p.Opts.MC {
		ms = append(ms, [2]int{off, min(p.Opts.MC, p.M-off)})
	}
	for off := 0; off < p.N; off += p.Opts.NC {
		ns = append(ns, [2]int{off, min(p.Opts.NC, p.N-off)})
	}
	for off := 0; off < p.K; off += p.Opts.KC {
		ks = append(ks, [2]int{off, min(p.Opts.KC, p.K-off)})
	}
	var out []blockIter
	add := func(mi, ni, ki [2]int) {
		out = append(out, blockIter{
			MOff: mi[0], MB: mi[1], NOff: ni[0], NB: ni[1], KOff: ki[0], KB: ki[1],
			First: ki[0] == 0,
		})
	}
	switch p.Opts.Order {
	case OrderMNK:
		for _, mi := range ms {
			for _, ni := range ns {
				for _, ki := range ks {
					add(mi, ni, ki)
				}
			}
		}
	case OrderMKN:
		for _, mi := range ms {
			for _, ki := range ks {
				for _, ni := range ns {
					add(mi, ni, ki)
				}
			}
		}
	case OrderNMK:
		for _, ni := range ns {
			for _, mi := range ms {
				for _, ki := range ks {
					add(mi, ni, ki)
				}
			}
		}
	case OrderNKM:
		for _, ni := range ns {
			for _, ki := range ks {
				for _, mi := range ms {
					add(mi, ni, ki)
				}
			}
		}
	case OrderKMN:
		for _, ki := range ks {
			for _, mi := range ms {
				for _, ni := range ns {
					add(mi, ni, ki)
				}
			}
		}
	default: // OrderKNM
		for _, ki := range ks {
			for _, ni := range ns {
				for _, mi := range ms {
					add(mi, ni, ki)
				}
			}
		}
	}
	return out
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func quantUp(n, lanes int) int { return (n + lanes - 1) / lanes * lanes }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
