// Package core assembles the paper's contribution into a working GEMM:
// cache blocking (m_c, n_c, k_c), data packing (σ_packing), loop ordering
// (σ_order), micro-tiling of each block (package tiling), and execution
// of the generated micro-kernels (package mkernel) — both functionally
// (numerical results via the simulator's machine) and as a cycle
// estimate (per-band timing simulation composed over the block grid,
// with residency-dependent load latencies, packing costs and a
// multi-core bandwidth/topology model).
package core

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"autogemm/internal/cache"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
	"autogemm/internal/tiling"
)

// PackMode is σ_packing: none, online (packing inside the timed region)
// or offline (B packed ahead of time, amortized — the LibShalom
// comparison mode of §V-C).
type PackMode int

// Packing modes. PackAuto resolves to PackNone when the whole B matrix
// fits L1 (the paper skips packing when N is small because the locality
// benefit cannot repay the packing time, §IV-C2) and to PackOnline
// otherwise.
const (
	PackNone PackMode = iota
	PackOnline
	PackOffline
	PackAuto
)

// String implements fmt.Stringer.
func (p PackMode) String() string {
	switch p {
	case PackNone:
		return "none"
	case PackOnline:
		return "online"
	case PackOffline:
		return "offline"
	case PackAuto:
		return "auto"
	default:
		return fmt.Sprintf("pack(%d)", int(p))
	}
}

// LoopOrder is σ_order for the three cache-block loops. The generator
// fixes the two register-loop orders (n inner within a row band), so of
// the paper's 5! = 120 permutations the 3! = 6 block orders remain
// distinguishable; the others collapse onto these (see DESIGN.md).
type LoopOrder uint8

// Block loop orders, named outermost to innermost.
const (
	OrderMNK LoopOrder = iota
	OrderMKN
	OrderNMK
	OrderNKM
	OrderKMN
	OrderKNM
)

// String implements fmt.Stringer.
func (o LoopOrder) String() string {
	names := [...]string{"MNK", "MKN", "NMK", "NKM", "KMN", "KNM"}
	if int(o) < len(names) {
		return names[o]
	}
	return "?"
}

// AllLoopOrders lists the block loop orders.
func AllLoopOrders() []LoopOrder {
	return []LoopOrder{OrderMNK, OrderMKN, OrderNMK, OrderNKM, OrderKMN, OrderKNM}
}

// Options selects the algorithm parameters of Table III plus the
// optimization toggles of §III-C.
type Options struct {
	MC, NC, KC int // cache block shape; 0 means "choose automatically"
	Order      LoopOrder
	Pack       PackMode
	Rotate     bool
	Fuse       bool

	// Strategy tiles each block; nil selects DMT with the chip's params.
	Strategy tiling.Strategy

	// CallOverhead adds fixed cycles per GEMM call (library dispatch);
	// used by the baseline library models.
	CallOverhead int

	// Cores used by cycle estimation; 0 or 1 is single-core.
	Cores int

	// ForceKCisK pins k_c = K, reproducing the paper's multi-core
	// limitation ("TVM does not support parallelism over the K
	// dimension", §V-C).
	ForceKCisK bool

	// ForceInterp disables the compiled closure-threaded backend:
	// every kernel runs on the checked interpreter (sim.Machine).
	// Setting AUTOGEMM_INTERP=1 in the environment has the same
	// effect. See docs/INTERNALS.md, "Compiled execution".
	ForceInterp bool
}

// AutoOptions returns the paper's default configuration for a chip:
// rotation and fusion on, DMT tiling, automatic blocking, packing chosen
// by problem size.
func AutoOptions(chip *hw.Chip) Options {
	return Options{Rotate: true, Fuse: true, Pack: PackAuto}
}

// Plan is a fully-resolved execution recipe for one (M, N, K) problem on
// one chip.
type Plan struct {
	Chip    *hw.Chip
	M, N, K int
	Opts    Options

	params  perfmodel.Params
	mu      sync.Mutex
	tilings map[[2]int]tiling.Tiling // block (m, n) -> tiling
	cache   *mkernel.Cache

	interpOnly bool      // ForceInterp or AUTOGEMM_INTERP=1
	pool       sync.Pool // *execState, one per concurrent worker

	// Block-execution counters by path, updated atomically.
	nInPlace, nABInPlace, nPacked, nInterp int64
}

// ExecStats counts block executions by path since the plan was created
// (across all Run/RunParallel calls). It exposes which tier the engine
// actually took — tests and benchmarks assert on it rather than
// guessing from timings.
type ExecStats struct {
	InPlaceBlocks   int64 // compiled; A, B and C addressed in the user slices
	ABInPlaceBlocks int64 // compiled; A/B in place, C staged through the block buffer
	PackedBlocks    int64 // compiled over packed scratch panels
	InterpBlocks    int64 // checked-interpreter fallback
}

// Stats returns a snapshot of the plan's execution counters.
func (p *Plan) Stats() ExecStats {
	return ExecStats{
		InPlaceBlocks:   atomic.LoadInt64(&p.nInPlace),
		ABInPlaceBlocks: atomic.LoadInt64(&p.nABInPlace),
		PackedBlocks:    atomic.LoadInt64(&p.nPacked),
		InterpBlocks:    atomic.LoadInt64(&p.nInterp),
	}
}

// NewPlan validates the problem and resolves automatic parameters.
func NewPlan(chip *hw.Chip, m, n, k int, opts Options) (*Plan, error) {
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, fmt.Errorf("core: invalid problem %dx%dx%d", m, n, k)
	}
	if chip == nil {
		return nil, fmt.Errorf("core: nil chip")
	}
	p := &Plan{Chip: chip, M: m, N: n, K: k, Opts: opts,
		params:  perfmodel.FromChip(chip),
		tilings: make(map[[2]int]tiling.Tiling),
		cache:   mkernel.NewCache(),
	}
	if p.Opts.Pack == PackAuto {
		// Skip packing when the whole B matrix fits L1 alongside the A
		// and C bands; otherwise pack online.
		if k*quantUp(n, chip.Lanes)*4 <= chip.L1D.SizeBytes*3/4 {
			p.Opts.Pack = PackNone
		} else {
			p.Opts.Pack = PackOnline
		}
	}
	p.resolveBlocking()
	if p.Opts.Strategy == nil {
		p.Opts.Strategy = &tiling.DMT{Params: p.params, Opt: p.opt()}
	}
	p.interpOnly = opts.ForceInterp || os.Getenv("AUTOGEMM_INTERP") == "1"
	p.pool.New = func() any { return p.newState() }
	return p, nil
}

func (p *Plan) opt() perfmodel.Opt {
	return perfmodel.Opt{Rotate: p.Opts.Rotate, Fuse: p.Opts.Fuse}
}

// resolveBlocking picks m_c, n_c, k_c when unset: k_c sized so a B panel
// (k_c × n_c) plus the A band fits L1 (Eqn 1's residency assumption),
// m_c so the A block fits L2, following Goto's layering.
func (p *Plan) resolveBlocking() {
	chip := p.Chip
	o := &p.Opts
	lanes := chip.Lanes
	if o.ForceKCisK {
		o.KC = p.K
	}
	if o.KC <= 0 {
		// Half of L1 for the B panel at the default n_c target.
		target := chip.L1D.SizeBytes / 2 / 4 / 64 // elements of k per 64-wide panel
		o.KC = clamp(target, lanes, 256)
		if o.KC > p.K {
			o.KC = p.K
		}
	}
	if o.NC <= 0 {
		nc := (chip.L1D.SizeBytes / 2 / 4) / max(o.KC, 1)
		nc = nc / lanes * lanes
		o.NC = clamp(nc, lanes, 512)
		if o.NC > p.N {
			o.NC = quantUp(p.N, lanes)
		}
	}
	if o.MC <= 0 {
		mc := (chip.L2.SizeBytes / 2 / 4) / max(o.KC, 1)
		o.MC = clamp(mc, 4, 256)
		if o.MC > p.M {
			o.MC = p.M
		}
	}
}

// RestrictDMTCandidates narrows the default DMT strategy's register-tile
// candidate set (used by the ablation experiments); it has no effect
// when a custom strategy was supplied. Cached tilings are discarded.
func (p *Plan) RestrictDMTCandidates(tiles []mkernel.Tile) {
	if d, ok := p.Opts.Strategy.(*tiling.DMT); ok {
		d.Candidates = tiles
		p.mu.Lock()
		p.tilings = make(map[[2]int]tiling.Tiling)
		p.mu.Unlock()
	}
}

// blockTiling returns (and caches) the tiling for a block shape. When
// the plan uses the default DMT strategy, the tiler's cost model is
// re-parameterized with the load latency of the level where this block's
// working set actually resides (a block spilling to L2 favours different
// tile shapes than an L1-resident one).
func (p *Plan) blockTiling(m, n int) (tiling.Tiling, error) {
	key := [2]int{m, n}
	p.mu.Lock()
	if tl, ok := p.tilings[key]; ok {
		p.mu.Unlock()
		return tl, nil
	}
	p.mu.Unlock()
	kc := min(p.Opts.KC, p.K)
	strat := p.Opts.Strategy
	if d, ok := strat.(*tiling.DMT); ok {
		lat := p.blockLoadLatency(cache.NewHierarchy(p.Chip), m, n, kc)
		strat = &tiling.DMT{
			Params:     d.Params.WithLoadLatency(float64(lat)),
			Opt:        d.Opt,
			Candidates: d.Candidates,
		}
	}
	tl, err := strat.Tile(m, n, kc)
	if err != nil {
		return tiling.Tiling{}, err
	}
	if err := tl.Validate(p.Chip.Lanes); err != nil {
		return tiling.Tiling{}, fmt.Errorf("core: strategy %s: %w", p.Opts.Strategy.Name(), err)
	}
	p.mu.Lock()
	p.tilings[key] = tl
	p.mu.Unlock()
	return tl, nil
}

// blocks enumerates the cache-block grid in the plan's loop order.
type blockIter struct {
	MOff, NOff, KOff int
	MB, NB, KB       int
	First            bool // first k chunk for this (m, n) block: β = 0
}

func (p *Plan) blocks() []blockIter {
	var ms, ns, ks [][2]int
	for off := 0; off < p.M; off += p.Opts.MC {
		ms = append(ms, [2]int{off, min(p.Opts.MC, p.M-off)})
	}
	for off := 0; off < p.N; off += p.Opts.NC {
		ns = append(ns, [2]int{off, min(p.Opts.NC, p.N-off)})
	}
	for off := 0; off < p.K; off += p.Opts.KC {
		ks = append(ks, [2]int{off, min(p.Opts.KC, p.K-off)})
	}
	var out []blockIter
	add := func(mi, ni, ki [2]int) {
		out = append(out, blockIter{
			MOff: mi[0], MB: mi[1], NOff: ni[0], NB: ni[1], KOff: ki[0], KB: ki[1],
			First: ki[0] == 0,
		})
	}
	switch p.Opts.Order {
	case OrderMNK:
		for _, mi := range ms {
			for _, ni := range ns {
				for _, ki := range ks {
					add(mi, ni, ki)
				}
			}
		}
	case OrderMKN:
		for _, mi := range ms {
			for _, ki := range ks {
				for _, ni := range ns {
					add(mi, ni, ki)
				}
			}
		}
	case OrderNMK:
		for _, ni := range ns {
			for _, mi := range ms {
				for _, ki := range ks {
					add(mi, ni, ki)
				}
			}
		}
	case OrderNKM:
		for _, ni := range ns {
			for _, ki := range ks {
				for _, mi := range ms {
					add(mi, ni, ki)
				}
			}
		}
	case OrderKMN:
		for _, ki := range ks {
			for _, mi := range ms {
				for _, ni := range ns {
					add(mi, ni, ki)
				}
			}
		}
	default: // OrderKNM
		for _, ki := range ks {
			for _, ni := range ns {
				for _, mi := range ms {
					add(mi, ni, ki)
				}
			}
		}
	}
	return out
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func quantUp(n, lanes int) int { return (n + lanes - 1) / lanes * lanes }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
