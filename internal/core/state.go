package core

import (
	"autogemm/internal/mkernel"
	"autogemm/internal/sched"
	"autogemm/internal/sim"
	"autogemm/internal/sim/compile"
)

// execState is the per-worker execution scratch: a compiled-kernel
// environment, packing and C-staging buffers, and (built lazily, only
// when a block falls back to the checked interpreter) a frozen arena
// with a machine over it. Each scheduler worker owns one state per plan
// — slot ID of the plan's states slice — built on the worker's first
// task for the plan and reused across every later job, instead of the
// old per-call sync.Pool borrowing.
type execState struct {
	env    *compile.Env
	packA  []float32 // A block, row-major, lda = k_c
	packB  []float32 // B panel, row-major, ldb = cBufLD
	cBuf   []float32 // padded C block staging buffer
	cBufLD int

	// Pack-reuse keys: the (offset, shape) of the block currently held
	// in packA/packB. A and B are read-only during a job, so when the
	// loop order revisits the same panel (e.g. the A block across the n
	// loop in MNK order) the copy is skipped. Reset when the worker
	// moves to a new job — the operand slices differ between jobs.
	aKey, bKey [4]int
	job        uint64 // sequence number of the job the keys belong to

	// Interpreter fallback. The arena layout is fixed at construction
	// and frozen before any kernel runs, honouring sim.Arena's growth
	// contract: regions are element-sized like the slices above and
	// refreshed by copy per block.
	arena            *sim.Arena
	mach             *sim.Machine
	aReg, bReg, cReg int64
}

// newState sizes the scratch for the plan's largest block using the
// shared mkernel.ScratchEnvelope — the same envelope the plan auditor
// proves every kernel call of a loaded plan fits inside.
func (p *Plan) newState() *execState {
	lanes := p.Chip.Lanes
	sc := mkernel.ScratchEnvelope(p.Opts.MC, p.Opts.NC, p.Opts.KC, lanes)
	return &execState{
		env:    compile.NewEnv(lanes),
		packA:  make([]float32, sc.PackA),
		packB:  make([]float32, sc.PackB),
		cBuf:   make([]float32, sc.CBuf),
		cBufLD: sc.LD,
		aKey:   noKey, bKey: noKey,
	}
}

// ensureInterp builds the interpreter arena on first fallback use.
func (st *execState) ensureInterp(lanes int) {
	if st.mach != nil {
		return
	}
	ar := sim.NewArena(len(st.packA) + len(st.packB) + len(st.cBuf) + 64)
	st.aReg = ar.Alloc(len(st.packA))
	st.bReg = ar.Alloc(len(st.packB))
	st.cReg = ar.Alloc(len(st.cBuf))
	ar.Freeze()
	st.arena = ar
	st.mach = sim.NewMachine(ar, lanes)
}

// noKey marks a pack buffer as holding no reusable panel.
var noKey = [4]int{-1, -1, -1, -1}

// stateFor returns the calling pool worker's scratch for this plan,
// building it on first use. Slot w.ID() is only ever active on one
// goroutine at a time (the sched.Worker contract), so the slice slot
// needs no lock; pack-reuse keys reset when the worker crosses into a
// new job, because the operand slices differ between jobs.
func (p *Plan) stateFor(w *sched.Worker, job uint64) *execState {
	st := p.states[w.ID()]
	if st == nil {
		st = p.newState()
		p.states[w.ID()] = st
	}
	if st.job != job {
		st.job = job
		st.aKey, st.bKey = noKey, noKey
	}
	return st
}
