package core

import (
	"math"
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// TestRunBackendsBitIdentical: the compiled backend must produce the
// same bits as the forced-interpreter path for whole plans, across
// packing modes and loop orders. Padding and scratch contents differ
// between the paths, but no padded lane may ever leak into the real C
// region, so the comparison is exact.
func TestRunBackendsBitIdentical(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 37, 53, 29
	for _, pack := range []PackMode{PackNone, PackOnline, PackOffline} {
		for _, order := range []LoopOrder{OrderMNK, OrderKNM} {
			for _, fuse := range []bool{false, true} {
				opts := Options{MC: 16, NC: 24, KC: 12, Order: order,
					Pack: pack, Rotate: true, Fuse: fuse}
				a := make([]float32, m*k)
				b := make([]float32, k*n)
				refgemm.Fill(a, m, k, k, 11)
				refgemm.Fill(b, k, n, n, 12)
				cInit := make([]float32, m*n)
				refgemm.Fill(cInit, m, n, n, 13)

				run := func(force bool) []float32 {
					t.Helper()
					o := opts
					o.ForceInterp = force
					plan, err := NewPlan(chip, m, n, k, o)
					if err != nil {
						t.Fatal(err)
					}
					c := append([]float32(nil), cInit...)
					if err := plan.Run(c, a, b); err != nil {
						t.Fatalf("pack=%v order=%v fuse=%v force=%v: %v",
							pack, order, fuse, force, err)
					}
					if force {
						st := plan.Stats()
						if st.InterpBlocks == 0 || st.InPlaceBlocks+st.ABInPlaceBlocks+st.PackedBlocks != 0 {
							t.Fatalf("ForceInterp ran compiled blocks: %+v", st)
						}
					}
					return c
				}
				want := run(true)
				got := run(false)
				for i := range got {
					if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
						t.Fatalf("pack=%v order=%v fuse=%v: C[%d] compiled %g != interpreted %g",
							pack, order, fuse, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestRunUsesCompiledPaths: a default plan must actually exercise the
// compiled backend, and a PackNone plan with slack-padded operands must
// hit the in-place fast path on interior blocks.
func TestRunUsesCompiledPaths(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 48, 64, 24
	opts := Options{MC: 16, NC: 16, KC: 24, Pack: PackNone, Rotate: true, Fuse: true}
	plan, err := NewPlan(chip, m, n, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Slack beyond the minimal extents lets edge blocks pass the
	// over-read prechecks and stay in place: A over-reads up to one
	// vector per row, B up to BOverRows full rows.
	a := make([]float32, m*k+4*chip.Lanes)
	b := make([]float32, k*n+2*n+4*chip.Lanes)
	c := make([]float32, m*n)
	refgemm.Fill(a[:m*k], m, k, k, 21)
	refgemm.Fill(b[:k*n], k, n, n, 22)

	want := make([]float32, m*n)
	refgemm.GEMM(m, n, k, a, k, b, n, want, n)
	if err := plan.Run(c, a, b); err != nil {
		t.Fatal(err)
	}
	if e := refgemm.MaxRelErr(c[:m*n], want, m, n, n, n); e > refgemm.Tolerance {
		t.Fatalf("max rel err %.3g", e)
	}
	st := plan.Stats()
	if st.InterpBlocks != 0 {
		t.Errorf("default plan fell back to the interpreter: %+v", st)
	}
	if st.InPlaceBlocks == 0 {
		t.Errorf("PackNone plan with slack never ran in place: %+v", st)
	}
}

// TestForceInterpEnv: AUTOGEMM_INTERP=1 forces the interpreter without
// touching Options.
func TestForceInterpEnv(t *testing.T) {
	t.Setenv("AUTOGEMM_INTERP", "1")
	chip := hw.KP920()
	plan, err := NewPlan(chip, 16, 16, 8, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	if !plan.interpOnly {
		t.Fatal("AUTOGEMM_INTERP=1 did not force the interpreter")
	}
	a := make([]float32, 16*8)
	b := make([]float32, 8*16)
	c := make([]float32, 16*16)
	refgemm.Fill(a, 16, 8, 8, 1)
	refgemm.Fill(b, 8, 16, 16, 2)
	if err := plan.Run(c, a, b); err != nil {
		t.Fatal(err)
	}
	if st := plan.Stats(); st.InterpBlocks == 0 {
		t.Errorf("env-forced plan ran no interpreter blocks: %+v", st)
	}
}
