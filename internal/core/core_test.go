package core

import (
	"testing"
	"testing/quick"

	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// checkGEMM runs a plan functionally and compares against the reference.
func checkGEMM(t *testing.T, chip *hw.Chip, m, n, k int, opts Options) {
	t.Helper()
	plan, err := NewPlan(chip, m, n, k, opts)
	if err != nil {
		t.Fatalf("NewPlan(%d,%d,%d): %v", m, n, k, err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 101)
	refgemm.Fill(b, k, n, n, 202)
	refgemm.Fill(c, m, n, n, 303)

	want := make([]float32, m*n)
	copy(want, c)
	refgemm.GEMM(m, n, k, a, k, b, n, want, n)

	if err := plan.Run(c, a, b); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
		t.Errorf("%s %dx%dx%d opts=%+v: max rel err %.3g", chip.Name, m, n, k, opts, e)
	}
}

// TestRunMatchesReferenceShapes sweeps irregular shapes with the default
// configuration on KP920.
func TestRunMatchesReferenceShapes(t *testing.T) {
	chip := hw.KP920()
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {8, 8, 8}, {13, 17, 19}, {26, 36, 18},
		{64, 64, 64}, {5, 128, 9}, {128, 5, 33}, {80, 32, 16}, {31, 52, 64},
		{100, 40, 130}, {26, 64, 64},
	}
	for _, s := range shapes {
		checkGEMM(t, chip, s.m, s.n, s.k, AutoOptions(chip))
	}
}

// TestRunOptionMatrix exercises packing modes, loop orders, fusion and
// rotation combinations on a non-divisible shape.
func TestRunOptionMatrix(t *testing.T) {
	chip := hw.Graviton2()
	for _, pack := range []PackMode{PackNone, PackOnline, PackOffline} {
		for _, order := range AllLoopOrders() {
			for _, fuse := range []bool{false, true} {
				opts := Options{Pack: pack, Order: order, Fuse: fuse, Rotate: true}
				checkGEMM(t, chip, 37, 29, 23, opts)
			}
		}
	}
}

// TestRunSmallBlocks forces tiny cache blocks so every loop order
// produces multiple blocks in every dimension, including k-splitting
// (accumulation across chunks).
func TestRunSmallBlocks(t *testing.T) {
	chip := hw.KP920()
	for _, order := range AllLoopOrders() {
		opts := Options{MC: 10, NC: 12, KC: 9, Order: order, Pack: PackOnline, Rotate: true, Fuse: true}
		checkGEMM(t, chip, 33, 41, 29, opts)
	}
}

// TestRunStaticStrategies verifies the baseline tilings (padded and
// edge) also compute correct results through the same engine.
func TestRunStaticStrategies(t *testing.T) {
	chip := hw.KP920()
	checkGEMM(t, chip, 26, 36, 20, Options{
		Pack: PackOnline, Rotate: true,
		Strategy: paddedStrategy(chip),
	})
	checkGEMM(t, chip, 26, 36, 20, Options{
		Pack: PackOnline, Rotate: true, Fuse: true,
		Strategy: edgeStrategy(chip),
	})
}

// TestRunSVE runs the A64FX configuration end to end.
func TestRunSVE(t *testing.T) {
	chip := hw.A64FX()
	checkGEMM(t, chip, 40, 70, 37, AutoOptions(chip))
}

// TestRunProperty: random shapes and options always match the reference.
func TestRunProperty(t *testing.T) {
	chip := hw.KP920()
	f := func(mr, nr, kr uint8, pack uint8, fuse, rotate bool) bool {
		m := int(mr)%50 + 1
		n := int(nr)%50 + 1
		k := int(kr)%50 + 1
		opts := Options{Pack: PackMode(pack % 3), Fuse: fuse, Rotate: rotate}
		plan, err := NewPlan(chip, m, n, k, opts)
		if err != nil {
			return false
		}
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, m*n)
		refgemm.Fill(a, m, k, k, uint64(m))
		refgemm.Fill(b, k, n, n, uint64(n))
		refgemm.Fill(c, m, n, n, uint64(k))
		want := make([]float32, m*n)
		copy(want, c)
		refgemm.GEMM(m, n, k, a, k, b, n, want, n)
		if err := plan.Run(c, a, b); err != nil {
			return false
		}
		return refgemm.MaxRelErr(c, want, m, n, n, n) <= refgemm.Tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestNewPlanValidation rejects bad problems.
func TestNewPlanValidation(t *testing.T) {
	chip := hw.KP920()
	for _, s := range [][3]int{{0, 4, 4}, {4, 0, 4}, {4, 4, 0}, {-1, 4, 4}} {
		if _, err := NewPlan(chip, s[0], s[1], s[2], Options{}); err == nil {
			t.Errorf("NewPlan(%v) succeeded", s)
		}
	}
	if _, err := NewPlan(nil, 4, 4, 4, Options{}); err == nil {
		t.Error("NewPlan(nil chip) succeeded")
	}
	plan, _ := NewPlan(chip, 8, 8, 8, Options{})
	small := make([]float32, 4)
	if err := plan.Run(small, small, small); err == nil {
		t.Error("Run accepted undersized buffers")
	}
}

// TestRunGraviton3 runs the 256-bit SVE (8-lane) configuration end to
// end — a vector width between NEON and A64FX's SVE-512.
func TestRunGraviton3(t *testing.T) {
	chip, err := hw.ByName("Graviton3")
	if err != nil {
		t.Fatal(err)
	}
	checkGEMM(t, chip, 37, 53, 29, AutoOptions(chip))
	est := estimateForChip(t, chip)
	if est.Efficiency < 0.85 {
		t.Errorf("Graviton3 64^3 efficiency %.1f%%", est.Efficiency*100)
	}
}

func estimateForChip(t *testing.T, chip *hw.Chip) Estimate {
	t.Helper()
	plan, err := NewPlan(chip, 64, 64, 64, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	est, err := plan.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestDescribePlan renders blocking, strategy and per-block tilings.
func TestDescribePlan(t *testing.T) {
	chip := hw.KP920()
	plan, err := NewPlan(chip, 26, 36, 20, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	desc, err := plan.Describe()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"blocking", "loop order", "packing", "dmt", "micro-tiles"} {
		if !containsStr(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
