package core

import (
	"testing"

	"autogemm/internal/hw"
)

// TestEstimateAgainstExact cross-validates the fast, memoized estimator
// against the gold-standard whole-execution simulation with live caches:
// for small L1-resident problems the two must agree within a band (the
// fast path assumes the residency-derived fixed load latency, the exact
// path observes compulsory misses).
func TestEstimateAgainstExact(t *testing.T) {
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2()} {
		for _, s := range []struct{ m, n, k int }{
			{16, 16, 16}, {32, 32, 32}, {26, 36, 20}, {48, 24, 40},
		} {
			plan, err := NewPlan(chip, s.m, s.n, s.k, AutoOptions(chip))
			if err != nil {
				t.Fatal(err)
			}
			fast, err := plan.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			exact, err := plan.EstimateExact()
			if err != nil {
				t.Fatal(err)
			}
			ratio := fast.Cycles / exact.Cycles
			if ratio < 0.55 || ratio > 1.5 {
				t.Errorf("%s %dx%dx%d: fast %.0f vs exact %.0f cycles (ratio %.2f)",
					chip.Name, s.m, s.n, s.k, fast.Cycles, exact.Cycles, ratio)
			}
		}
	}
}

// TestExactEfficiencyBounded: the exact estimator's efficiency also
// stays physical.
func TestExactEfficiencyBounded(t *testing.T) {
	chip := hw.M2()
	plan, err := NewPlan(chip, 40, 40, 40, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := plan.EstimateExact()
	if err != nil {
		t.Fatal(err)
	}
	if exact.Efficiency <= 0 || exact.Efficiency > 1 {
		t.Errorf("exact efficiency %.2f out of range", exact.Efficiency)
	}
	if exact.KernelCycles <= 0 {
		t.Error("exact kernel cycles empty")
	}
}
