package core

import (
	"fmt"

	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
	"autogemm/internal/tiling"
)

// band is one row strip of a panel: a sequence of tiles of equal height
// executed as a fused band kernel (or tile by tile when fusion is off).
type band struct {
	mr       int
	row      int // row offset inside the block
	firstCol int // column offset inside the block (lane-aligned)
	segs     []mkernel.Segment
}

// width returns the band's n extent.
func (b band) width() int {
	w := 0
	for _, s := range b.segs {
		w += s.Tile.NR * s.Count
	}
	return w
}

// panelBands decomposes a tiling into bands, one per row strip of each
// panel (different panels split rows differently, so banding is
// per-panel).
func panelBands(tl tiling.Tiling, lanes int) []band {
	var bands []band
	rects := tl.Rects(lanes)
	i := 0
	for i < len(rects) {
		j := i
		segs := []mkernel.Segment{}
		cur := rects[i]
		// Collect rects in this row with contiguous columns and equal MR.
		col := cur.Col
		for j < len(rects) && rects[j].Row == cur.Row && rects[j].Tile.MR == cur.Tile.MR && rects[j].Col == col {
			t := rects[j].Tile
			if n := len(segs); n > 0 && segs[n-1].Tile == t {
				segs[n-1].Count++
			} else {
				segs = append(segs, mkernel.Segment{Tile: t, Count: 1})
			}
			col += t.NR
			j++
		}
		bands = append(bands, band{mr: cur.Tile.MR, row: cur.Row, firstCol: cur.Col, segs: segs})
		i = j
	}
	return bands
}

// Run computes C += A·B functionally through the generated kernels,
// following the plan's blocking, packing, loop order and tiling. A, B
// and C are row-major with leading dimensions K, N and N. This is the
// verification path; Estimate projects its runtime on the target chip.
func (p *Plan) Run(c, a, b []float32) error {
	m, n, k := p.M, p.N, p.K
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		return fmt.Errorf("core: buffer sizes (%d,%d,%d) too small for %dx%dx%d",
			len(a), len(b), len(c), m, n, k)
	}
	lanes := p.Chip.Lanes

	// One arena holds the user matrices plus packing buffers. Generous
	// slack absorbs the documented kernel over-reads.
	arena := sim.NewArena(m*k + k*n + m*n + 4*(p.Opts.MC+8)*(p.Opts.KC+8) + 1<<12)
	aAddr := arena.Alloc(m*k + 2*lanes)
	bAddr := arena.Alloc(k*n + 2*n + 2*lanes)
	cAddr := arena.Alloc(m*n + 2*lanes)
	copy(arena.Slice(aAddr, m*k), a[:m*k])
	copy(arena.Slice(bAddr, k*n), b[:k*n])
	copy(arena.Slice(cAddr, m*n), c[:m*n])

	// Packing and C-block buffers, sized for the largest block.
	mcMax, ncMax, kcMax := p.Opts.MC, quantUp(p.Opts.NC, lanes), p.Opts.KC
	packA := arena.Alloc(mcMax*kcMax + 2*lanes)
	packB := arena.Alloc((kcMax+2)*(ncMax+mkernel.MaxNROverhang(lanes)) + 2*lanes)
	cBufLD := ncMax + mkernel.MaxNROverhang(lanes)
	cBuf := arena.Alloc((mcMax + mkernel.MaxMR) * cBufLD)

	mach := sim.NewMachine(arena, lanes)

	for _, blk := range p.blocks() {
		if err := p.runBlock(mach, arena, blk, aAddr, bAddr, cAddr, packA, packB, cBuf, cBufLD); err != nil {
			return err
		}
	}
	copy(c[:m*n], arena.Slice(cAddr, m*n))
	return nil
}

// runBlock executes one cache block: pack, tile, run bands, unpack C.
func (p *Plan) runBlock(mach *sim.Machine, arena *sim.Arena, blk blockIter,
	aAddr, bAddr, cAddr, packA, packB, cBuf int64, cBufLD int) error {

	lanes := p.Chip.Lanes
	n := p.N
	k := p.K
	nbQ := quantUp(blk.NB, lanes)

	tl, err := p.blockTiling(blk.MB, blk.NB)
	if err != nil {
		return err
	}

	// Resolve A and B bases and leading dimensions per packing mode.
	var aBase int64
	var lda int
	if p.Opts.Pack == PackNone {
		aBase = aAddr + int64((blk.MOff*k+blk.KOff)*4)
		lda = k
	} else {
		src := arena.Slice(aAddr, p.M*k)
		dst := arena.Slice(packA, blk.MB*blk.KB)
		for i := 0; i < blk.MB; i++ {
			copy(dst[i*blk.KB:(i+1)*blk.KB], src[(blk.MOff+i)*k+blk.KOff:])
		}
		aBase, lda = packA, blk.KB
	}
	var bBase int64
	var ldb int
	if p.Opts.Pack == PackNone {
		bBase = bAddr + int64((blk.KOff*n+blk.NOff)*4)
		ldb = n
	} else {
		src := arena.Slice(bAddr, k*n)
		ldbP := nbQ + mkernel.MaxNROverhang(lanes)
		dst := arena.Slice(packB, (blk.KB+2)*ldbP)
		for i := range dst {
			dst[i] = 0
		}
		for r := 0; r < blk.KB; r++ {
			copy(dst[r*ldbP:r*ldbP+blk.NB], src[(blk.KOff+r)*n+blk.NOff:(blk.KOff+r)*n+blk.NOff+blk.NB])
		}
		bBase, ldb = packB, ldbP
	}

	// Copy the C block into the padded buffer.
	{
		src := arena.Slice(cAddr, p.M*n)
		dst := arena.Slice(cBuf, (p.Opts.MC+mkernel.MaxMR)*cBufLD)
		for i := range dst {
			dst[i] = 0
		}
		for i := 0; i < blk.MB; i++ {
			copy(dst[i*cBufLD:i*cBufLD+blk.NB], src[(blk.MOff+i)*n+blk.NOff:(blk.MOff+i)*n+blk.NOff+blk.NB])
		}
	}

	for _, bd := range panelBands(tl, lanes) {
		aArg := aBase + int64(bd.row*lda*4)
		bArg := bBase + int64(bd.firstCol*4)
		cArg := cBuf + int64((bd.row*cBufLD+bd.firstCol)*4)
		if err := p.runBand(mach, bd, blk.KB, aArg, bArg, cArg, lda, ldb, cBufLD); err != nil {
			return err
		}
	}

	// Copy the useful region of the C buffer back.
	src := arena.Slice(cBuf, (p.Opts.MC+mkernel.MaxMR)*cBufLD)
	dst := arena.Slice(cAddr, p.M*n)
	for i := 0; i < blk.MB; i++ {
		copy(dst[(blk.MOff+i)*n+blk.NOff:(blk.MOff+i)*n+blk.NOff+blk.NB], src[i*cBufLD:i*cBufLD+blk.NB])
	}
	return nil
}

// runBand executes one band, fused or tile-by-tile.
func (p *Plan) runBand(mach *sim.Machine, bd band, kc int, aArg, bArg, cArg int64, lda, ldb, ldc int) error {
	if p.Opts.Fuse && totalTiles(bd.segs) > 1 {
		prog, err := p.cache.Band(mkernel.BandConfig{
			Segments: bd.segs, KC: kc, Lanes: p.Chip.Lanes,
			Rotate: p.Opts.Rotate, Fuse: true, LoadC: true, SigmaAI: p.Chip.SigmaAI,
		})
		if err != nil {
			return err
		}
		mach.SetArg(0, aArg)
		mach.SetArg(1, bArg)
		mach.SetArg(2, cArg)
		mach.SetArg(3, int64(lda))
		mach.SetArg(4, int64(ldb))
		mach.SetArg(5, int64(ldc))
		return mach.Run(prog, 1<<31)
	}
	colOff := int64(0)
	for _, seg := range bd.segs {
		for i := 0; i < seg.Count; i++ {
			prog, err := p.cache.Kernel(mkernel.Config{
				Tile: seg.Tile, KC: kc, Lanes: p.Chip.Lanes,
				Rotate: p.Opts.Rotate, LoadC: true, SigmaAI: p.Chip.SigmaAI,
			})
			if err != nil {
				return err
			}
			mach.SetArg(0, aArg)
			mach.SetArg(1, bArg+colOff)
			mach.SetArg(2, cArg+colOff)
			mach.SetArg(3, int64(lda))
			mach.SetArg(4, int64(ldb))
			mach.SetArg(5, int64(ldc))
			if err := mach.Run(prog, 1<<31); err != nil {
				return err
			}
			colOff += int64(seg.Tile.NR) * 4
		}
	}
	return nil
}

func totalTiles(segs []mkernel.Segment) int {
	n := 0
	for _, s := range segs {
		n += s.Count
	}
	return n
}
