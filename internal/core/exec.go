package core

import (
	"context"
	"sync"
	"sync/atomic"

	"autogemm/internal/mkernel"
	"autogemm/internal/sched"
	"autogemm/internal/sim/compile"
	"autogemm/internal/tiling"
)

// band is one row strip of a panel, decomposed by tiling.Bands — the
// same derivation the planner's key enumeration and the plan auditor
// use, so the three can never disagree about which kernels a tiling
// runs.
type band = tiling.Band

// panelBands decomposes a tiling into bands; see tiling.Bands.
func panelBands(tl tiling.Tiling, lanes int) []band {
	return tl.Bands(lanes)
}

// kernelFuel bounds taken loop branches per kernel invocation — a
// backstop against generator bugs, matching the interpreter's step cap.
const kernelFuel = 1 << 31

// Run computes C += A·B functionally through the generated kernels,
// following the plan's blocking, packing, loop order and tiling. A, B
// and C are row-major with leading dimensions K, N and N. This is the
// verification path; Estimate projects its runtime on the target chip.
//
// Run executes as a single-worker job on the plan's scheduler runtime:
// one pool worker walks the precomputed C-tile groups in order, each
// group's k chunks ascending — the serial reference every parallel,
// batch and async execution is held bit-identical to.
//
// Kernels proven bound-safe by the analyzer execute in compiled
// closure-threaded form, addressing the operand slices directly where
// the panel prechecks allow it; anything unproven (and everything, when
// ForceInterp or AUTOGEMM_INTERP=1 is set) runs on the checked
// interpreter over a per-worker arena. Slices longer than the minimum
// m·k / k·n / m·n extents give the in-place fast path more room: edge
// blocks whose kernels over-read past the matrix end otherwise fall
// back to the packed path.
func (p *Plan) Run(c, a, b []float32) error {
	fut, err := p.submitJob(context.Background(), c, a, b, 1, sched.QoS{})
	if err != nil {
		return err
	}
	return fut.Wait()
}

// bandCall is one compiled kernel invocation of a block: the program
// plus its row/column placement inside the block.
type bandCall struct {
	cp  *compile.Program
	row int
	col int
}

// blockProg is the fully-resolved program of one block shape (MB, NB,
// KB): its band decomposition and, when every kernel compiled, the
// compiled call sequence. It is built once per shape — repeated block
// visits (and repeated Run calls on a cached plan) skip straight to
// kernel execution with no per-visit banding or cache lookups.
type blockProg struct {
	once       sync.Once
	bands      []band
	calls      []bandCall
	compiledOK bool
	err        error
}

// blockProgram returns the resolved program for a block's shape,
// building it on first use. Concurrent workers hitting the same shape
// share one build via the entry's sync.Once.
func (p *Plan) blockProgram(blk blockIter) (*blockProg, error) {
	key := [3]int{blk.MB, blk.NB, blk.KB}
	p.mu.Lock()
	bp, ok := p.progs[key]
	if !ok {
		bp = &blockProg{}
		p.progs[key] = bp
	}
	p.mu.Unlock()
	bp.once.Do(func() {
		tl, err := p.blockTiling(blk.MB, blk.NB)
		if err != nil {
			bp.err = err
			return
		}
		bp.bands = panelBands(tl, p.Chip.Lanes)
		if !p.interpOnly {
			bp.calls, bp.compiledOK = p.resolveCalls(bp.bands, blk.KB)
		}
	})
	return bp, bp.err
}

// runBlock executes one cache block, choosing the cheapest proven path:
//
//  1. fully in place — compiled kernels address A, B and C directly in
//     the user slices (PackNone, no padded overhang, prechecks pass);
//  2. A/B in place, C staged through the padded block buffer;
//  3. packed — A and B copied into scratch panels, C staged;
//  4. checked interpreter over the per-worker arena, when any kernel of
//     the block failed to compile or the plan forces interpretation.
func (p *Plan) runBlock(st *execState, blk blockIter, c, a, b []float32) error {
	bp, err := p.blockProgram(blk)
	if err != nil {
		return err
	}
	if !p.interpOnly && bp.compiledOK {
		done, err := p.runBlockCompiled(st, blk, bp.bands, bp.calls, c, a, b)
		if done || err != nil {
			return err
		}
	}
	return p.runBlockInterp(st, blk, bp.bands, c, a, b)
}

// resolveCalls lowers the block's bands to compiled kernel invocations.
// ok is false when any kernel failed to compile — the analyzer could
// not prove its bounds — and the caller must use the interpreter. The
// kernel cache memoizes failures, so repeated blocks do not re-analyze.
func (p *Plan) resolveCalls(bands []band, kc int) (calls []bandCall, ok bool) {
	for _, bd := range bands {
		if p.Opts.Fuse && totalTiles(bd.Segs) > 1 {
			cp, err := p.cache.CompiledBand(bandConfigFor(p.Chip, p.Opts, bd.Segs, kc))
			if err != nil {
				return nil, false
			}
			calls = append(calls, bandCall{cp: cp, row: bd.Row, col: bd.Col})
			continue
		}
		col := bd.Col
		for _, seg := range bd.Segs {
			cp, err := p.cache.CompiledKernel(kernelConfigFor(p.Chip, p.Opts, seg.Tile, kc))
			if err != nil {
				return nil, false
			}
			for i := 0; i < seg.Count; i++ {
				calls = append(calls, bandCall{cp: cp, row: bd.Row, col: col})
				col += seg.Tile.NR
			}
		}
	}
	return calls, true
}

// blockFits reports whether every band stays geometrically inside the
// block extents — no padded row or column overhang — the precondition
// for storing C in place.
func blockFits(bands []band, blk blockIter) bool {
	for _, bd := range bands {
		if bd.Row+bd.MR > blk.MB || bd.Col+bd.Width() > blk.NB {
			return false
		}
	}
	return true
}

// runBlockCompiled executes the block through the compiled backend.
// done is false when the scratch prechecks fail (the caller then uses
// the interpreter); the decision is made before any operand is written,
// so a fallback never observes a half-executed block.
func (p *Plan) runBlockCompiled(st *execState, blk blockIter, bands []band, calls []bandCall, c, a, b []float32) (bool, error) {
	k, n := p.K, p.N
	env := st.env
	inPlaceAB := p.Opts.Pack == PackNone

	// In-place operand offsets (elements) for a call.
	aOff := func(cl bandCall) int64 { return int64((blk.MOff+cl.row)*k + blk.KOff) }
	bOff := func(cl bandCall) int64 { return int64(blk.KOff*n + blk.NOff + cl.col) }
	cOff := func(cl bandCall) int64 { return int64((blk.MOff+cl.row)*n + blk.NOff + cl.col) }

	// Tier 1: everything in place. Requires exact geometric fit (stores
	// into padding would clobber neighbouring C data) and every call's
	// panel precheck passing against the real slice extents.
	if inPlaceAB && blockFits(bands, blk) {
		ok := true
		for _, cl := range calls {
			if cl.cp.Precheck(len(a), len(b), len(c),
				aOff(cl), bOff(cl), cOff(cl), int64(k), int64(n), int64(n)) != nil {
				ok = false
				break
			}
		}
		if ok {
			for _, cl := range calls {
				if err := cl.cp.Run(env, a, b, c,
					aOff(cl), bOff(cl), cOff(cl), int64(k), int64(n), int64(n), kernelFuel); err != nil {
					return true, err
				}
			}
			atomic.AddInt64(&p.nInPlace, 1)
			return true, nil
		}
	}

	// Tiers 2 and 3 stage C through the padded block buffer.
	ldc := st.cBufLD
	cBufOff := func(cl bandCall) int64 { return int64(cl.row*ldc + cl.col) }

	// Tier 2: A and B still read in place.
	useAB := inPlaceAB
	if useAB {
		for _, cl := range calls {
			if cl.cp.Precheck(len(a), len(b), len(st.cBuf),
				aOff(cl), bOff(cl), cBufOff(cl), int64(k), int64(n), int64(ldc)) != nil {
				useAB = false
				break
			}
		}
	}

	lda, ldb := blk.KB, ldc
	if !useAB {
		// Tier 3: precheck against the scratch panels before packing.
		for _, cl := range calls {
			if cl.cp.Precheck(len(st.packA), len(st.packB), len(st.cBuf),
				int64(cl.row*lda), int64(cl.col), cBufOff(cl),
				int64(lda), int64(ldb), int64(ldc)) != nil {
				return false, nil
			}
		}
		if ak := [4]int{blk.MOff, blk.KOff, blk.MB, blk.KB}; st.aKey != ak {
			for i := 0; i < blk.MB; i++ {
				copy(st.packA[i*lda:i*lda+blk.KB], a[(blk.MOff+i)*k+blk.KOff:])
			}
			st.aKey = ak
		}
		if bk := [4]int{blk.NOff, blk.KOff, blk.NB, blk.KB}; st.bKey != bk {
			for r := 0; r < blk.KB; r++ {
				copy(st.packB[r*ldb:r*ldb+blk.NB], b[(blk.KOff+r)*n+blk.NOff:])
			}
			st.bKey = bk
		}
	}

	for i := 0; i < blk.MB; i++ {
		copy(st.cBuf[i*ldc:i*ldc+blk.NB], c[(blk.MOff+i)*n+blk.NOff:])
	}
	for _, cl := range calls {
		var err error
		if useAB {
			err = cl.cp.Run(env, a, b, st.cBuf,
				aOff(cl), bOff(cl), cBufOff(cl), int64(k), int64(n), int64(ldc), kernelFuel)
		} else {
			err = cl.cp.Run(env, st.packA, st.packB, st.cBuf,
				int64(cl.row*lda), int64(cl.col), cBufOff(cl),
				int64(lda), int64(ldb), int64(ldc), kernelFuel)
		}
		if err != nil {
			return true, err
		}
	}
	for i := 0; i < blk.MB; i++ {
		copy(c[(blk.MOff+i)*n+blk.NOff:(blk.MOff+i)*n+blk.NOff+blk.NB], st.cBuf[i*ldc:])
	}
	if useAB {
		atomic.AddInt64(&p.nABInPlace, 1)
	} else {
		atomic.AddInt64(&p.nPacked, 1)
	}
	return true, nil
}

// runBlockInterp executes the block on the checked interpreter: the
// operand regions are copied into the worker's frozen arena (a dense
// pack — functionally identical for every packing mode), the bands run
// through sim.Machine, and the C region is copied back.
func (p *Plan) runBlockInterp(st *execState, blk blockIter, bands []band, c, a, b []float32) error {
	lanes := p.Chip.Lanes
	st.ensureInterp(lanes)
	k, n := p.K, p.N
	lda, ldb, ldc := blk.KB, st.cBufLD, st.cBufLD

	aDst := st.arena.Slice(st.aReg, len(st.packA))
	for i := 0; i < blk.MB; i++ {
		copy(aDst[i*lda:i*lda+blk.KB], a[(blk.MOff+i)*k+blk.KOff:])
	}
	bDst := st.arena.Slice(st.bReg, len(st.packB))
	for r := 0; r < blk.KB; r++ {
		copy(bDst[r*ldb:r*ldb+blk.NB], b[(blk.KOff+r)*n+blk.NOff:])
	}
	cDst := st.arena.Slice(st.cReg, len(st.cBuf))
	for i := 0; i < blk.MB; i++ {
		copy(cDst[i*ldc:i*ldc+blk.NB], c[(blk.MOff+i)*n+blk.NOff:])
	}

	for _, bd := range bands {
		aArg := st.aReg + int64(bd.Row*lda*4)
		bArg := st.bReg + int64(bd.Col*4)
		cArg := st.cReg + int64((bd.Row*ldc+bd.Col)*4)
		if err := p.runBandInterp(st, bd, blk.KB, aArg, bArg, cArg, lda, ldb, ldc); err != nil {
			return err
		}
	}

	for i := 0; i < blk.MB; i++ {
		copy(c[(blk.MOff+i)*n+blk.NOff:(blk.MOff+i)*n+blk.NOff+blk.NB], cDst[i*ldc:])
	}
	atomic.AddInt64(&p.nInterp, 1)
	return nil
}

// runBandInterp executes one band on the machine, fused or tile-by-tile.
func (p *Plan) runBandInterp(st *execState, bd band, kc int, aArg, bArg, cArg int64, lda, ldb, ldc int) error {
	mach := st.mach
	if p.Opts.Fuse && totalTiles(bd.Segs) > 1 {
		prog, err := p.cache.Band(bandConfigFor(p.Chip, p.Opts, bd.Segs, kc))
		if err != nil {
			return err
		}
		mach.SetArg(0, aArg)
		mach.SetArg(1, bArg)
		mach.SetArg(2, cArg)
		mach.SetArg(3, int64(lda))
		mach.SetArg(4, int64(ldb))
		mach.SetArg(5, int64(ldc))
		return mach.Run(prog, kernelFuel)
	}
	colOff := int64(0)
	for _, seg := range bd.Segs {
		for i := 0; i < seg.Count; i++ {
			prog, err := p.cache.Kernel(kernelConfigFor(p.Chip, p.Opts, seg.Tile, kc))
			if err != nil {
				return err
			}
			mach.SetArg(0, aArg)
			mach.SetArg(1, bArg+colOff)
			mach.SetArg(2, cArg+colOff)
			mach.SetArg(3, int64(lda))
			mach.SetArg(4, int64(ldb))
			mach.SetArg(5, int64(ldc))
			if err := mach.Run(prog, kernelFuel); err != nil {
				return err
			}
			colOff += int64(seg.Tile.NR) * 4
		}
	}
	return nil
}

func totalTiles(segs []mkernel.Segment) int {
	n := 0
	for _, s := range segs {
		n += s.Count
	}
	return n
}
