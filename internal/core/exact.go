package core

import (
	"autogemm/internal/asm"
	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
)

// EstimateExact times the ENTIRE execution — every kernel invocation of
// every block, in plan order — through the pipeline simulator with the
// cache hierarchy live, instead of composing memoized per-band timings
// the way Estimate does. It is orders of magnitude slower and exists as
// the gold standard the fast estimator is validated against
// (TestEstimateAgainstExact) and for studying cache behaviour on small
// problems. Packing copies are charged with the same analytic cost as
// Estimate; kernel cycles and DRAM traffic come from the simulation.
func (p *Plan) EstimateExact() (Estimate, error) {
	chip := p.Chip
	lanes := chip.Lanes

	model := sim.NewModel(chip)

	arena := sim.NewArena(p.M*p.K + p.K*p.N + p.M*p.N + 1<<12)
	aAddr := arena.Alloc(p.M*p.K + 2*lanes)
	bAddr := arena.Alloc(p.K*p.N + 2*p.N + 2*lanes)
	cAddr := arena.Alloc(p.M*p.N + 2*lanes)

	mcMax, ncMax := p.Opts.MC, quantUp(p.Opts.NC, lanes)
	kcMax := p.Opts.KC
	packA := arena.Alloc(mcMax*kcMax + 2*lanes)
	packB := arena.Alloc((kcMax + 2) * (ncMax + mkernel.MaxNROverhang(lanes)))
	cBufLD := ncMax + mkernel.MaxNROverhang(lanes)
	cBuf := arena.Alloc((mcMax + mkernel.MaxMR) * cBufLD)

	mach := sim.NewMachine(arena, lanes)
	mach.Record = true

	// Warm-cache measurement, as GEMM benchmarking does (the paper times
	// steady-state repetitions): the operand regions and packing buffers
	// start resident in whatever levels hold them. Compulsory traffic is
	// accounted analytically via blockTrafficCost, exactly as in Estimate.
	model.Caches.Warm(uint64(aAddr), uint64(p.M*p.K*4))
	model.Caches.Warm(uint64(bAddr), uint64(p.K*p.N*4))
	model.Caches.Warm(uint64(cAddr), uint64(p.M*p.N*4))
	if p.Opts.Pack != PackNone {
		model.Caches.Warm(uint64(packA), uint64(mcMax*kcMax*4))
		model.Caches.Warm(uint64(packB), uint64((kcMax+2)*(ncMax+mkernel.MaxNROverhang(lanes))*4))
	}
	model.Caches.Warm(uint64(cBuf), uint64((mcMax+mkernel.MaxMR)*cBufLD*4))

	var est Estimate
	est.Cores = 1

	for _, blk := range p.blocks() {
		tl, err := p.blockTiling(blk.MB, blk.NB)
		if err != nil {
			return est, err
		}
		// Resolve bases the same way the functional runner does; the
		// data content is irrelevant for timing, the addresses are not.
		var aBase, bBase int64
		var lda, ldb int
		nbQ := quantUp(blk.NB, lanes)
		if p.Opts.Pack == PackNone {
			aBase, lda = aAddr+int64((blk.MOff*p.K+blk.KOff)*4), p.K
			bBase, ldb = bAddr+int64((blk.KOff*p.N+blk.NOff)*4), p.N
		} else {
			aBase, lda = packA, blk.KB
			bBase, ldb = packB, nbQ+mkernel.MaxNROverhang(lanes)
			// Warm nothing: the packed panels arrive cold, their fill
			// traffic is the packing cost.
		}
		pack, dram := p.blockTrafficCost(blk.MB, blk.NB, blk.KB)
		est.PackCycles += pack
		est.DRAMBytes += dram

		for _, bd := range panelBands(tl, lanes) {
			aArg := aBase + int64(bd.Row*lda*4)
			bArg := bBase + int64(bd.Col*4)
			cArg := cBuf + int64((bd.Row*cBufLD+bd.Col)*4)
			cycles, err := p.timeBandExact(model, mach, bd, blk.KB, aArg, bArg, cArg, lda, ldb, cBufLD)
			if err != nil {
				return est, err
			}
			est.KernelCycles += cycles
			est.LaunchOver += float64(chip.LaunchCycles)
			if cycles > est.MaxBandCost {
				est.MaxBandCost = cycles
			}
		}
		_ = cAddr
	}

	est.Cycles = est.KernelCycles + est.LaunchOver + est.PackCycles + float64(p.Opts.CallOverhead)
	freqHz := chip.FreqGHz * 1e9
	est.Seconds = est.Cycles / freqHz
	flops := 2 * float64(p.M) * float64(p.N) * float64(p.K)
	est.GFLOPS = flops / est.Seconds / 1e9
	est.Efficiency = est.GFLOPS / chip.PeakGFLOPS()
	return est, nil
}

// timeBandExact runs one band (fused or tile-by-tile) functionally and
// through the live-cache timing model, returning its cycles.
func (p *Plan) timeBandExact(model *sim.Model, mach *sim.Machine, bd band, kc int,
	aArg, bArg, cArg int64, lda, ldb, ldc int) (float64, error) {

	run := func(prog *simProgArg) (float64, error) {
		mach.SetArg(0, prog.a)
		mach.SetArg(1, prog.b)
		mach.SetArg(2, prog.c)
		mach.SetArg(3, int64(lda))
		mach.SetArg(4, int64(ldb))
		mach.SetArg(5, int64(ldc))
		res, err := model.RunAndTime(prog.p, mach, 1<<31)
		if err != nil {
			return 0, err
		}
		return float64(res.Cycles), nil
	}

	if p.Opts.Fuse && totalTiles(bd.Segs) > 1 {
		prog, err := p.cache.Band(bandConfigFor(p.Chip, p.Opts, bd.Segs, kc))
		if err != nil {
			return 0, err
		}
		return run(&simProgArg{p: prog, a: aArg, b: bArg, c: cArg})
	}
	total := 0.0
	colOff := int64(0)
	for _, seg := range bd.Segs {
		for i := 0; i < seg.Count; i++ {
			prog, err := p.cache.Kernel(kernelConfigFor(p.Chip, p.Opts, seg.Tile, kc))
			if err != nil {
				return 0, err
			}
			c, err := run(&simProgArg{p: prog, a: aArg, b: bArg + colOff, c: cArg + colOff})
			if err != nil {
				return 0, err
			}
			total += c
			colOff += int64(seg.Tile.NR) * 4
		}
	}
	return total, nil
}

// simProgArg bundles a kernel with its argument pointers for one run.
type simProgArg struct {
	p       *asm.Program
	a, b, c int64
}
