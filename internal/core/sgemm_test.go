package core

import (
	"math"
	"testing"
	"testing/quick"

	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// refSGEMM is the straightforward reference for C = α·op(A)·op(B) + β·C.
func refSGEMM(params SGEMMParams, c, a, b []float32, m, n, k int) {
	for i := 0; i < m*n; i++ {
		c[i] *= params.Beta
	}
	at := func(i, l int) float32 {
		if params.TransA == Trans {
			return a[l*m+i]
		}
		return a[i*k+l]
	}
	bt := func(l, j int) float32 {
		if params.TransB == Trans {
			return b[j*k+l]
		}
		return b[l*n+j]
	}
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			av := params.Alpha * at(i, l)
			for j := 0; j < n; j++ {
				c[i*n+j] += av * bt(l, j)
			}
		}
	}
}

func checkSGEMM(t *testing.T, params SGEMMParams, m, n, k int) {
	t.Helper()
	chip := hw.KP920()
	plan, err := NewPlan(chip, m, n, k, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, 1, m*k, m*k, 11)
	refgemm.Fill(b, 1, k*n, k*n, 12)
	refgemm.Fill(c, 1, m*n, m*n, 13)
	want := make([]float32, m*n)
	copy(want, c)
	refSGEMM(params, want, a, b, m, n, k)
	if err := plan.RunSGEMM(params, c, a, b); err != nil {
		t.Fatal(err)
	}
	if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
		t.Errorf("params %+v %dx%dx%d: max rel err %.3g", params, m, n, k, e)
	}
}

// TestSGEMMVariants covers the α/β/transpose matrix on an irregular shape.
func TestSGEMMVariants(t *testing.T) {
	for _, alpha := range []float32{1, 0, -2, 0.5} {
		for _, beta := range []float32{1, 0, 3} {
			for _, ta := range []Transpose{NoTrans, Trans} {
				for _, tb := range []Transpose{NoTrans, Trans} {
					checkSGEMM(t, SGEMMParams{Alpha: alpha, Beta: beta, TransA: ta, TransB: tb},
						13, 21, 9)
				}
			}
		}
	}
}

// TestSGEMMBetaZeroClearsNaN: the BLAS convention — β = 0 must overwrite
// C even when it holds NaN.
func TestSGEMMBetaZeroClearsNaN(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 5, 8, 4
	plan, err := NewPlan(chip, m, n, k, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 1)
	refgemm.Fill(b, k, n, n, 2)
	nan := float32(math.NaN())
	for i := range c {
		c[i] = nan
	}
	if err := plan.RunSGEMM(SGEMMParams{Alpha: 1, Beta: 0}, c, a, b); err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if math.IsNaN(float64(v)) {
			t.Fatalf("c[%d] is NaN after beta=0", i)
		}
	}
}

// TestSGEMMAlphaZero: α = 0 reduces to C = β·C without touching A/B.
func TestSGEMMAlphaZero(t *testing.T) {
	chip := hw.KP920()
	plan, _ := NewPlan(chip, 4, 4, 4, AutoOptions(chip))
	c := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	var a, b [16]float32
	if err := plan.RunSGEMM(SGEMMParams{Alpha: 0, Beta: 2}, c, a[:], b[:]); err != nil {
		t.Fatal(err)
	}
	if c[0] != 2 || c[15] != 32 {
		t.Errorf("alpha=0 path wrong: %v", c)
	}
}

// TestSGEMMProperty: random parameters and shapes agree with the
// reference.
func TestSGEMMProperty(t *testing.T) {
	f := func(mr, nr, kr uint8, alphaRaw, betaRaw int8, ta, tb bool) bool {
		m := int(mr)%20 + 1
		n := int(nr)%20 + 1
		k := int(kr)%20 + 1
		params := SGEMMParams{
			Alpha: float32(alphaRaw) / 16, Beta: float32(betaRaw) / 16,
			TransA: Transpose(ta), TransB: Transpose(tb),
		}
		chip := hw.Graviton2()
		plan, err := NewPlan(chip, m, n, k, AutoOptions(chip))
		if err != nil {
			return false
		}
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		c := make([]float32, m*n)
		refgemm.Fill(a, 1, m*k, m*k, uint64(m*3+1))
		refgemm.Fill(b, 1, k*n, k*n, uint64(n*5+2))
		refgemm.Fill(c, 1, m*n, m*n, uint64(k*7+3))
		want := make([]float32, m*n)
		copy(want, c)
		refSGEMM(params, want, a, b, m, n, k)
		if err := plan.RunSGEMM(params, c, a, b); err != nil {
			return false
		}
		return refgemm.MaxRelErr(c, want, m, n, n, n) <= refgemm.Tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestSGEMMSizeValidation rejects undersized buffers.
func TestSGEMMSizeValidation(t *testing.T) {
	chip := hw.KP920()
	plan, _ := NewPlan(chip, 8, 8, 8, AutoOptions(chip))
	small := make([]float32, 4)
	if err := plan.RunSGEMM(DefaultSGEMM(), small, small, small); err == nil {
		t.Error("undersized buffers accepted")
	}
}
