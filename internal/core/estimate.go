package core

import (
	"math"

	"autogemm/internal/asm"
	"autogemm/internal/cache"
	"autogemm/internal/sim"
)

// Estimate is the projected execution profile of a plan on its chip.
type Estimate struct {
	Cycles     float64 // end-to-end cycles (with Cores > 1: critical path)
	Seconds    float64
	GFLOPS     float64
	Efficiency float64 // fraction of the peak of the cores used

	KernelCycles float64 // single-core micro-kernel work
	PackCycles   float64
	LaunchOver   float64
	DRAMBytes    float64
	MaxBandCost  float64 // largest indivisible work unit (imbalance bound)
	Cores        int
}

// bandCostKey caches per-band timing simulations.
type bandCostKey struct {
	name string
	lat  int
}

// Estimate projects the plan's runtime: every distinct band kernel is
// executed once through the cycle simulator at the load latency implied
// by the blocking's cache residency, and the results are composed over
// the block grid with packing costs, launch overheads and — for
// multi-core runs — the imbalance, synchronization and NUMA/CMG model.
func (p *Plan) Estimate() (Estimate, error) {
	chip := p.Chip
	lanes := chip.Lanes
	hier := cache.NewHierarchy(chip)

	bandCache := make(map[bandCostKey]float64)
	var est Estimate

	// Distinct block shapes and their visit counts.
	type bkey struct{ mb, nb, kb int }
	counts := make(map[bkey]int)
	for _, blk := range p.blocks() {
		counts[bkey{blk.MB, blk.NB, blk.KB}]++
	}

	for key, cnt := range counts {
		tl, err := p.blockTiling(key.mb, key.nb)
		if err != nil {
			return est, err
		}
		lat := p.blockLoadLatency(hier, key.mb, key.nb, key.kb)

		blockKernel, blockLaunch := 0.0, 0.0
		for _, bd := range panelBands(tl, lanes) {
			var cost float64
			if p.Opts.Fuse && totalTiles(bd.Segs) > 1 {
				cfg := bandConfigFor(chip, p.Opts, bd.Segs, key.kb)
				c, err := p.bandCycles(bandCache, cfg.Name(), lat, func() (*simProg, error) {
					prog, err := p.cache.Band(cfg)
					if err != nil {
						return nil, err
					}
					return &simProg{prog: prog, mr: bd.MR, width: bd.Width(), kc: key.kb}, nil
				})
				if err != nil {
					return est, err
				}
				cost = c
				blockLaunch += float64(chip.LaunchCycles)
			} else {
				for _, seg := range bd.Segs {
					cfg := kernelConfigFor(chip, p.Opts, seg.Tile, key.kb)
					c, err := p.bandCycles(bandCache, cfg.Name(), lat, func() (*simProg, error) {
						prog, err := p.cache.Kernel(cfg)
						if err != nil {
							return nil, err
						}
						return &simProg{prog: prog, mr: seg.Tile.MR, width: seg.Tile.NR, kc: key.kb}, nil
					})
					if err != nil {
						return est, err
					}
					cost += float64(seg.Count) * c
					blockLaunch += float64(seg.Count) * float64(chip.LaunchCycles)
				}
			}
			blockKernel += cost
			if cost > est.MaxBandCost {
				est.MaxBandCost = cost
			}
		}

		pack, dram := p.blockTrafficCost(key.mb, key.nb, key.kb)
		est.KernelCycles += float64(cnt) * blockKernel
		est.LaunchOver += float64(cnt) * blockLaunch
		est.PackCycles += float64(cnt) * pack
		est.DRAMBytes += float64(cnt) * dram
	}

	single := est.KernelCycles + est.LaunchOver + est.PackCycles + float64(p.Opts.CallOverhead)
	est.Cores = max(1, p.Opts.Cores)
	est.Cycles = p.parallelCycles(single, est)
	freqHz := chip.FreqGHz * 1e9
	est.Seconds = est.Cycles / freqHz
	flops := 2 * float64(p.M) * float64(p.N) * float64(p.K)
	est.GFLOPS = flops / est.Seconds / 1e9
	est.Efficiency = est.GFLOPS / (chip.PeakGFLOPS() * float64(est.Cores))
	return est, nil
}

// simProg bundles a program with the shapes needed to build its scratch
// data for one timing run.
type simProg struct {
	prog          *asm.Program
	mr, width, kc int
}

// bandCycles memoizes the per-invocation cycle count of a kernel at a
// given effective load latency by running it once through the functional
// machine and then the timing model.
func (p *Plan) bandCycles(memo map[bandCostKey]float64, name string, lat int,
	build func() (*simProg, error)) (float64, error) {

	key := bandCostKey{name, lat}
	if c, ok := memo[key]; ok {
		return c, nil
	}
	sp, err := build()
	if err != nil {
		return 0, err
	}
	lanes := p.Chip.Lanes
	arena := sim.NewArena(sp.mr*sp.kc + (sp.kc+4)*(sp.width+lanes) + sp.mr*(sp.width+lanes) + 4096)
	aAddr := arena.Alloc(sp.mr*sp.kc + 2*lanes)
	bAddr := arena.Alloc((sp.kc + 4) * (sp.width + lanes))
	cAddr := arena.Alloc(sp.mr * (sp.width + lanes))
	mach := sim.NewMachine(arena, lanes)
	mach.SetArg(0, aAddr)
	mach.SetArg(1, bAddr)
	mach.SetArg(2, cAddr)
	mach.SetArg(3, int64(sp.kc))
	mach.SetArg(4, int64(sp.width))
	mach.SetArg(5, int64(sp.width))

	model := sim.NewModel(p.Chip)
	model.Caches = nil
	model.AssumeLoadLat = lat

	res, err := model.RunAndTime(sp.prog, mach, 1<<31)
	if err != nil {
		return 0, err
	}
	c := float64(res.Cycles)
	memo[key] = c
	return c, nil
}

// blockLoadLatency derives the effective micro-kernel load latency for
// a block visit; the planner records the same figure in the recipe (see
// loadLatencyFor), the estimator keeps per-k-chunk resolution.
func (p *Plan) blockLoadLatency(hier *cache.Hierarchy, mb, nb, kb int) int {
	return loadLatencyFor(p.Chip, hier, p.Opts.Pack, p.N, nb, kb)
}

// blockTrafficCost returns the packing cycles charged inside the timed
// region for one block visit and the DRAM bytes it moves. Offline
// packing moves the B panel ahead of time (bytes still count toward
// bandwidth, cycles do not — the LibShalom accounting of §V-C).
func (p *Plan) blockTrafficCost(mb, nb, kb int) (packCycles, dramBytes float64) {
	chip := p.Chip
	lanes := chip.Lanes
	nbQ := quantUp(nb, lanes)
	aBytes := float64(mb*kb) * 4
	bBytes := float64(kb*nbQ) * 4
	cBytes := float64(mb*nbQ) * 4

	bwBytesPerCycle := chip.DRAMGBs / chip.FreqGHz
	copyCost := func(bytes float64) float64 {
		elems := bytes / 4
		issue := elems / float64(lanes) * (1/float64(chip.LoadPorts) + 1/float64(chip.StorePorts))
		stream := 2 * bytes / bwBytesPerCycle
		return math.Max(issue, stream) + float64(chip.DRAMLatCycles)
	}

	switch p.Opts.Pack {
	case PackOnline:
		packCycles = copyCost(aBytes) + copyCost(bBytes)
	case PackOffline:
		packCycles = copyCost(aBytes) // only A packs in the timed region
	}
	// Streaming traffic: panels in once, C read+written per k chunk.
	dramBytes = aBytes + bBytes + 2*cBytes
	return packCycles, dramBytes
}

// parallelCycles applies the multi-core model: greedy band scheduling
// (imbalance bounded by the largest band), the NUMA/CMG span slowdown,
// the per-core synchronization fraction, and the socket bandwidth floor.
func (p *Plan) parallelCycles(single float64, est Estimate) float64 {
	chip := p.Chip
	cores := max(1, p.Opts.Cores)
	if cores == 1 {
		return single
	}
	if cores > chip.Cores {
		cores = chip.Cores
	}
	perCore := single/float64(cores) + est.MaxBandCost // greedy bound

	// NUMA/CMG span slowdown, interpolated over groups in use.
	groups := chip.NUMAGroups
	if groups > 1 {
		perGroup := (chip.Cores + groups - 1) / groups
		used := (cores + perGroup - 1) / perGroup
		if used > 1 {
			frac := float64(used-1) / float64(groups-1)
			perCore *= 1 + (chip.NUMACrossPenalty-1)*frac
		}
	}
	perCore *= 1 + chip.SyncFrac*float64(cores-1)

	bw := est.DRAMBytes / (chip.DRAMGBs / chip.FreqGHz)
	return math.Max(perCore, bw)
}
