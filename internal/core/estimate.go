package core

import (
	"math"

	"autogemm/internal/asm"
	"autogemm/internal/cache"
	"autogemm/internal/hw"
	"autogemm/internal/sim"
)

// Estimate is the projected execution profile of a plan on its chip.
type Estimate struct {
	Cycles     float64 // end-to-end cycles (with Cores > 1: critical path)
	Seconds    float64
	GFLOPS     float64
	Efficiency float64 // fraction of the peak of the cores used

	KernelCycles float64 // single-core micro-kernel work
	PackCycles   float64
	LaunchOver   float64
	DRAMBytes    float64
	MaxBandCost  float64 // largest indivisible work unit (imbalance bound)
	Cores        int
}

// bandCostKey caches per-band timing simulations.
type bandCostKey struct {
	name string
	lat  int
}

// blockCost is the simulated cost of one visit to a cache-block shape:
// the per-band timing-simulator cycles, launch overheads, packing
// cycles charged in the timed region, the DRAM bytes moved, and the
// largest single band (the analytic imbalance bound). Computed once per
// distinct shape (shapeCosts) and shared between the analytic estimate
// and the virtual-time cost attribution — both views of a plan's time
// come from the same numbers.
type blockCost struct {
	kernel  float64
	launch  float64
	pack    float64
	dram    float64
	maxBand float64
}

// total returns the compute cycles of one block visit.
func (b blockCost) total() float64 { return b.kernel + b.launch + b.pack }

// shapeCosts computes (once, memoized on the plan) the cost of every
// distinct block shape in the grid. Keys are returned in first-visit
// order of the plan's loop order, and all composition downstream
// iterates that slice — never the map — so every float sum is performed
// in one fixed order and the resulting estimates are bit-deterministic
// across runs and GOMAXPROCS.
func (p *Plan) shapeCosts() (map[[3]int]blockCost, [][3]int, error) {
	p.costOnce.Do(func() {
		hier := cache.NewHierarchy(p.Chip)
		bandCache := make(map[bandCostKey]float64)
		costs := make(map[[3]int]blockCost, 8)
		var keys [][3]int
		for _, blk := range p.blocks() {
			key := [3]int{blk.MB, blk.NB, blk.KB}
			if _, ok := costs[key]; ok {
				continue
			}
			bc, err := p.blockCostFor(hier, bandCache, key[0], key[1], key[2])
			if err != nil {
				p.costErr = err
				return
			}
			costs[key] = bc
			keys = append(keys, key)
		}
		p.costs, p.costKeys = costs, keys
	})
	return p.costs, p.costKeys, p.costErr
}

// blockCostFor times one visit to a block shape: every distinct band
// kernel runs once through the cycle simulator at the load latency
// implied by the blocking's cache residency, and packing/launch/DRAM
// costs are added per the plan's pack mode.
func (p *Plan) blockCostFor(hier *cache.Hierarchy, bandCache map[bandCostKey]float64, mb, nb, kb int) (blockCost, error) {
	chip := p.Chip
	lanes := chip.Lanes
	var bc blockCost

	tl, err := p.blockTiling(mb, nb)
	if err != nil {
		return bc, err
	}
	lat := p.blockLoadLatency(hier, mb, nb, kb)

	for _, bd := range panelBands(tl, lanes) {
		var cost float64
		if p.Opts.Fuse && totalTiles(bd.Segs) > 1 {
			cfg := bandConfigFor(chip, p.Opts, bd.Segs, kb)
			c, err := p.bandCycles(bandCache, cfg.Name(), lat, func() (*simProg, error) {
				prog, err := p.cache.Band(cfg)
				if err != nil {
					return nil, err
				}
				return &simProg{prog: prog, mr: bd.MR, width: bd.Width(), kc: kb}, nil
			})
			if err != nil {
				return bc, err
			}
			cost = c
			bc.launch += float64(chip.LaunchCycles)
		} else {
			for _, seg := range bd.Segs {
				cfg := kernelConfigFor(chip, p.Opts, seg.Tile, kb)
				c, err := p.bandCycles(bandCache, cfg.Name(), lat, func() (*simProg, error) {
					prog, err := p.cache.Kernel(cfg)
					if err != nil {
						return nil, err
					}
					return &simProg{prog: prog, mr: seg.Tile.MR, width: seg.Tile.NR, kc: kb}, nil
				})
				if err != nil {
					return bc, err
				}
				cost += float64(seg.Count) * c
				bc.launch += float64(seg.Count) * float64(chip.LaunchCycles)
			}
		}
		bc.kernel += cost
		if cost > bc.maxBand {
			bc.maxBand = cost
		}
	}

	bc.pack, bc.dram = p.blockTrafficCost(mb, nb, kb)
	return bc, nil
}

// Estimate projects the plan's runtime at the plan's configured core
// count (Options.Cores; 0 or 1 is single-core). See EstimateAt.
func (p *Plan) Estimate() (Estimate, error) {
	return p.EstimateAt(max(1, p.Opts.Cores))
}

// EstimateAt projects the plan's runtime on `cores` cores: the memoized
// per-shape costs are composed over the block grid, and — for
// multi-core runs — the imbalance, synchronization and NUMA/CMG
// contention model (hw.Topology) is applied. The per-shape simulation
// work is shared across calls, so sweeping a scaling curve costs one
// timing simulation per distinct shape, not per core count.
func (p *Plan) EstimateAt(cores int) (Estimate, error) {
	var est Estimate
	costs, keys, err := p.shapeCosts()
	if err != nil {
		return est, err
	}

	counts := make(map[[3]int]int, len(keys))
	for _, blk := range p.blocks() {
		counts[[3]int{blk.MB, blk.NB, blk.KB}]++
	}
	for _, key := range keys {
		bc := costs[key]
		cnt := float64(counts[key])
		est.KernelCycles += cnt * bc.kernel
		est.LaunchOver += cnt * bc.launch
		est.PackCycles += cnt * bc.pack
		est.DRAMBytes += cnt * bc.dram
		if bc.maxBand > est.MaxBandCost {
			est.MaxBandCost = bc.maxBand
		}
	}

	chip := p.Chip
	single := est.KernelCycles + est.LaunchOver + est.PackCycles + float64(p.Opts.CallOverhead)
	est.Cores = max(1, cores)
	est.Cycles = p.parallelCyclesAt(single, est, est.Cores)
	freqHz := chip.FreqGHz * 1e9
	est.Seconds = est.Cycles / freqHz
	flops := 2 * float64(p.M) * float64(p.N) * float64(p.K)
	est.GFLOPS = flops / est.Seconds / 1e9
	est.Efficiency = est.GFLOPS / (chip.PeakGFLOPS() * float64(est.Cores))
	return est, nil
}

// simProg bundles a program with the shapes needed to build its scratch
// data for one timing run.
type simProg struct {
	prog          *asm.Program
	mr, width, kc int
}

// bandCycles memoizes the per-invocation cycle count of a kernel at a
// given effective load latency by running it once through the functional
// machine and then the timing model.
func (p *Plan) bandCycles(memo map[bandCostKey]float64, name string, lat int,
	build func() (*simProg, error)) (float64, error) {

	key := bandCostKey{name, lat}
	if c, ok := memo[key]; ok {
		return c, nil
	}
	sp, err := build()
	if err != nil {
		return 0, err
	}
	lanes := p.Chip.Lanes
	arena := sim.NewArena(sp.mr*sp.kc + (sp.kc+4)*(sp.width+lanes) + sp.mr*(sp.width+lanes) + 4096)
	aAddr := arena.Alloc(sp.mr*sp.kc + 2*lanes)
	bAddr := arena.Alloc((sp.kc + 4) * (sp.width + lanes))
	cAddr := arena.Alloc(sp.mr * (sp.width + lanes))
	mach := sim.NewMachine(arena, lanes)
	mach.SetArg(0, aAddr)
	mach.SetArg(1, bAddr)
	mach.SetArg(2, cAddr)
	mach.SetArg(3, int64(sp.kc))
	mach.SetArg(4, int64(sp.width))
	mach.SetArg(5, int64(sp.width))

	model := sim.NewModel(p.Chip)
	model.Caches = nil
	model.AssumeLoadLat = lat

	res, err := model.RunAndTime(sp.prog, mach, 1<<31)
	if err != nil {
		return 0, err
	}
	c := float64(res.Cycles)
	memo[key] = c
	return c, nil
}

// blockLoadLatency derives the effective micro-kernel load latency for
// a block visit; the planner records the same figure in the recipe (see
// loadLatencyFor), the estimator keeps per-k-chunk resolution.
func (p *Plan) blockLoadLatency(hier *cache.Hierarchy, mb, nb, kb int) int {
	return loadLatencyFor(p.Chip, hier, p.Opts.Pack, p.N, nb, kb)
}

// blockTrafficCost returns the packing cycles charged inside the timed
// region for one block visit and the DRAM bytes it moves. Offline
// packing moves the B panel ahead of time (bytes still count toward
// bandwidth, cycles do not — the LibShalom accounting of §V-C).
func (p *Plan) blockTrafficCost(mb, nb, kb int) (packCycles, dramBytes float64) {
	chip := p.Chip
	lanes := chip.Lanes
	nbQ := quantUp(nb, lanes)
	aBytes := float64(mb*kb) * 4
	bBytes := float64(kb*nbQ) * 4
	cBytes := float64(mb*nbQ) * 4

	bwBytesPerCycle := chip.DRAMGBs / chip.FreqGHz
	copyCost := func(bytes float64) float64 {
		elems := bytes / 4
		issue := elems / float64(lanes) * (1/float64(chip.LoadPorts) + 1/float64(chip.StorePorts))
		stream := 2 * bytes / bwBytesPerCycle
		return math.Max(issue, stream) + float64(chip.DRAMLatCycles)
	}

	switch p.Opts.Pack {
	case PackOnline:
		packCycles = copyCost(aBytes) + copyCost(bBytes)
	case PackOffline:
		packCycles = copyCost(aBytes) // only A packs in the timed region
	}
	// Streaming traffic: panels in once, C read+written per k chunk.
	dramBytes = aBytes + bBytes + 2*cBytes
	return packCycles, dramBytes
}

// parallelCyclesAt applies the multi-core model at an explicit core
// count: greedy band scheduling (imbalance bounded by the largest
// band), then the NUMA/CMG span slowdown, per-core synchronization
// fraction and socket bandwidth floor — all read off the shared
// hw.Topology contention model so the analytic estimate and the
// virtual-time simulator (internal/vtime) apply identical penalties.
func (p *Plan) parallelCyclesAt(single float64, est Estimate, cores int) float64 {
	if cores <= 1 {
		return single
	}
	top := hw.NewTopology(p.Chip)
	cores = top.ClampCores(cores)
	perCore := single/float64(cores) + est.MaxBandCost // greedy bound
	perCore *= top.SpanPenalty(cores)
	perCore *= top.SyncPenalty(cores)

	bw := est.DRAMBytes / top.SocketBandwidth()
	return math.Max(perCore, bw)
}
