package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
	"autogemm/internal/sched"
)

// TestRunParallelMatchesReference: parallel execution equals the
// reference across worker counts and loop orders.
func TestRunParallelMatchesReference(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 50, 70, 40
	for _, workers := range []int{1, 2, 4, 7} {
		for _, order := range []LoopOrder{OrderMNK, OrderKNM} {
			opts := Options{MC: 16, NC: 20, KC: 12, Order: order,
				Pack: PackOnline, Rotate: true, Fuse: true}
			plan, err := NewPlan(chip, m, n, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			c := make([]float32, m*n)
			refgemm.Fill(a, m, k, k, 31)
			refgemm.Fill(b, k, n, n, 32)
			refgemm.Fill(c, m, n, n, 33)
			want := make([]float32, m*n)
			copy(want, c)
			refgemm.GEMM(m, n, k, a, k, b, n, want, n)
			if err := plan.RunParallel(c, a, b, workers); err != nil {
				t.Fatalf("workers=%d order=%v: %v", workers, order, err)
			}
			if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
				t.Errorf("workers=%d order=%v: max rel err %.3g", workers, order, e)
			}
		}
	}
}

// TestRunParallelSharedPlan: one plan driven concurrently by many Run
// calls stays correct (the engine's plan cache relies on this).
func TestRunParallelSharedPlan(t *testing.T) {
	chip := hw.Graviton2()
	const m, n, k = 24, 28, 16
	plan, err := NewPlan(chip, m, n, k, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed uint64) {
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			c := make([]float32, m*n)
			refgemm.Fill(a, m, k, k, seed)
			refgemm.Fill(b, k, n, n, seed+1)
			want := make([]float32, m*n)
			refgemm.GEMM(m, n, k, a, k, b, n, want, n)
			if err := plan.Run(c, a, b); err != nil {
				errCh <- err
				return
			}
			if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
				errCh <- &parallelErr{e}
				return
			}
			errCh <- nil
		}(uint64(g * 100))
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

type parallelErr struct{ e float64 }

func (p *parallelErr) Error() string { return "parallel result mismatch" }

// TestRunParallelValidation rejects bad buffers.
func TestRunParallelValidation(t *testing.T) {
	chip := hw.KP920()
	plan, _ := NewPlan(chip, 8, 8, 8, AutoOptions(chip))
	small := make([]float32, 4)
	if err := plan.RunParallel(small, small, small, 2); err == nil {
		t.Error("undersized buffers accepted")
	}
}

// TestPartitionPrecomputed: the C-tile-group partition attached to the
// plan covers the block grid exactly — every block of the loop-order
// iteration appears in exactly one group, grouped by (MOff, NOff) with
// k chunks ascending.
func TestPartitionPrecomputed(t *testing.T) {
	chip := hw.KP920()
	for _, order := range AllLoopOrders() {
		opts := Options{MC: 16, NC: 20, KC: 12, Order: order,
			Pack: PackOnline, Rotate: true, Fuse: true}
		plan, err := NewPlan(chip, 50, 70, 40, opts)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, g := range plan.groups {
			if len(g) == 0 {
				t.Fatalf("order %v: empty group", order)
			}
			for i, blk := range g {
				if blk.MOff != g[0].MOff || blk.NOff != g[0].NOff {
					t.Fatalf("order %v: group mixes C tiles", order)
				}
				if i > 0 && blk.KOff <= g[i-1].KOff {
					t.Fatalf("order %v: k chunks not ascending", order)
				}
			}
			total += len(g)
		}
		if want := len(plan.blocks()); total != want {
			t.Fatalf("order %v: partition covers %d blocks, grid has %d", order, total, want)
		}
	}
}

// TestRunParallelBitIdenticalToRun: the determinism contract — any
// worker count produces the same bits as serial Run, because each C
// tile's k chunks stay in ascending order inside one task.
func TestRunParallelBitIdenticalToRun(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 50, 70, 40
	opts := Options{MC: 16, NC: 20, KC: 12, Pack: PackOnline, Rotate: true, Fuse: true}
	plan, err := NewPlan(chip, m, n, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	refgemm.Fill(a, m, k, k, 61)
	refgemm.Fill(b, k, n, n, 62)
	cInit := make([]float32, m*n)
	refgemm.Fill(cInit, m, n, n, 63)

	want := append([]float32(nil), cInit...)
	if err := plan.Run(want, a, b); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got := append([]float32(nil), cInit...)
		if err := plan.RunParallel(got, a, b, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("workers=%d: C[%d] = %g != serial %g", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSubmitAsync: the asynchronous core path completes through the
// future, matches the reference, and the plan's scheduler counters
// advance.
func TestSubmitAsync(t *testing.T) {
	chip := hw.Graviton2()
	const m, n, k = 24, 28, 16
	plan, err := NewPlan(chip, m, n, k, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 71)
	refgemm.Fill(b, k, n, n, 72)
	want := make([]float32, m*n)
	refgemm.GEMM(m, n, k, a, k, b, n, want, n)

	fut, err := plan.Submit(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := fut.Wait(); err != nil { // idempotent
		t.Fatal(err)
	}
	if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
		t.Fatalf("max rel err %.3g", e)
	}
	st := plan.Stats()
	if st.JobsSubmitted != 1 || st.JobsCompleted != 1 {
		t.Errorf("sched counters %+v, want 1 job submitted and completed", st)
	}
}

// TestRunOnClosedRuntime: a plan attached to a closed pool reports the
// closure instead of hanging or panicking.
func TestRunOnClosedRuntime(t *testing.T) {
	pool := sched.New(2, 4)
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	chip := hw.KP920()
	opts := AutoOptions(chip)
	opts.Runtime = pool
	plan, err := NewPlan(chip, 8, 8, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, 64)
	if err := plan.Run(buf, buf, buf); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("Run on closed runtime: err = %v, want sched.ErrClosed", err)
	}
	if _, err := plan.Submit(buf, buf, buf); !errors.Is(err, sched.ErrClosed) {
		t.Fatalf("Submit on closed runtime: err = %v, want sched.ErrClosed", err)
	}
}

// TestGeometryValidation: negative extents and overflowing products are
// rejected at the plan and submit boundaries instead of slipping past
// the minimum-buffer-length checks (m = k = -1 makes m*k = 1).
func TestGeometryValidation(t *testing.T) {
	if err := checkGeometry(-1, 8, -1); err == nil {
		t.Error("checkGeometry accepted negative extents")
	}
	big := math.MaxInt/2 + 1
	if err := checkGeometry(big, 2, 2); err == nil {
		t.Error("checkGeometry accepted an overflowing m*k product")
	}
	if err := checkGeometry(2, big, big); err == nil {
		t.Error("checkGeometry accepted an overflowing k*n product")
	}
	if err := checkGeometry(1024, 1024, 1024); err != nil {
		t.Errorf("checkGeometry rejected a sane problem: %v", err)
	}

	chip := hw.KP920()
	for _, d := range [][3]int{{-1, 8, -1}, {8, -1, -1}, {-1, -1, -1}} {
		if _, err := Produce(chip, d[0], d[1], d[2], AutoOptions(chip)); err == nil {
			t.Errorf("Produce accepted %v", d)
		}
	}

	// A deserialized recipe is untrusted: corrupting its geometry after
	// production must fail Attach, not reach execution.
	rec, err := Produce(chip, 8, 8, 8, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	rec.Request.M, rec.Request.K = -1, -1
	if _, err := Attach(chip, rec, AutoOptions(chip)); err == nil {
		t.Error("Attach accepted a recipe with negative geometry")
	}

	// And the submit boundary itself rejects garbage geometry even if a
	// plan struct with negative extents is conjured directly.
	good, err := NewPlan(chip, 8, 8, 8, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	good.M, good.K = -1, -1
	buf := make([]float32, 64)
	if _, err := good.Submit(buf, buf, buf); err == nil {
		t.Error("submitJob accepted m = k = -1 (m*k = 1 bypass)")
	}
}

// TestRunContextCancelledMidJob: cancelling the context from inside the
// first C-tile-group task skips the remaining groups and surfaces
// context.Canceled from RunContext.
func TestRunContextCancelledMidJob(t *testing.T) {
	chip := hw.KP920()
	opts := AutoOptions(chip)
	opts.MC, opts.NC, opts.KC = 16, 16, 16
	plan, err := NewPlan(chip, 48, 48, 48, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.groups) < 2 {
		t.Fatalf("want multiple C-tile groups, got %d", len(plan.groups))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired int32
	sched.SetFaultHook(func(task int) error {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			cancel()
		}
		return nil
	})
	defer sched.SetFaultHook(nil)
	const m, n, k = 48, 48, 48
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 3)
	refgemm.Fill(b, k, n, n, 4)
	if err := plan.RunContext(ctx, c, a, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	sched.SetFaultHook(nil)
	// The plan (and its runtime) keep serving after the cancellation.
	if err := plan.Run(c, a, b); err != nil {
		t.Fatalf("Run after cancelled RunContext: %v", err)
	}
}

// TestSubmitContextPreCancelledCore: an already-cancelled context stops
// the submission at the boundary with ctx.Err().
func TestSubmitContextPreCancelledCore(t *testing.T) {
	chip := hw.KP920()
	plan, err := NewPlan(chip, 8, 8, 8, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	buf := make([]float32, 64)
	if _, err := plan.SubmitContext(ctx, buf, buf, buf); !errors.Is(err, context.Canceled) {
		t.Fatalf("SubmitContext = %v, want context.Canceled", err)
	}
	if err := plan.RunParallelContext(ctx, buf, buf, buf, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunParallelContext = %v, want context.Canceled", err)
	}
}
