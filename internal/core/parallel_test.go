package core

import (
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// TestRunParallelMatchesReference: parallel execution equals the
// reference across worker counts and loop orders.
func TestRunParallelMatchesReference(t *testing.T) {
	chip := hw.KP920()
	const m, n, k = 50, 70, 40
	for _, workers := range []int{1, 2, 4, 7} {
		for _, order := range []LoopOrder{OrderMNK, OrderKNM} {
			opts := Options{MC: 16, NC: 20, KC: 12, Order: order,
				Pack: PackOnline, Rotate: true, Fuse: true}
			plan, err := NewPlan(chip, m, n, k, opts)
			if err != nil {
				t.Fatal(err)
			}
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			c := make([]float32, m*n)
			refgemm.Fill(a, m, k, k, 31)
			refgemm.Fill(b, k, n, n, 32)
			refgemm.Fill(c, m, n, n, 33)
			want := make([]float32, m*n)
			copy(want, c)
			refgemm.GEMM(m, n, k, a, k, b, n, want, n)
			if err := plan.RunParallel(c, a, b, workers); err != nil {
				t.Fatalf("workers=%d order=%v: %v", workers, order, err)
			}
			if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
				t.Errorf("workers=%d order=%v: max rel err %.3g", workers, order, e)
			}
		}
	}
}

// TestRunParallelSharedPlan: one plan driven concurrently by many Run
// calls stays correct (the engine's plan cache relies on this).
func TestRunParallelSharedPlan(t *testing.T) {
	chip := hw.Graviton2()
	const m, n, k = 24, 28, 16
	plan, err := NewPlan(chip, m, n, k, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 6
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(seed uint64) {
			a := make([]float32, m*k)
			b := make([]float32, k*n)
			c := make([]float32, m*n)
			refgemm.Fill(a, m, k, k, seed)
			refgemm.Fill(b, k, n, n, seed+1)
			want := make([]float32, m*n)
			refgemm.GEMM(m, n, k, a, k, b, n, want, n)
			if err := plan.Run(c, a, b); err != nil {
				errCh <- err
				return
			}
			if e := refgemm.MaxRelErr(c, want, m, n, n, n); e > refgemm.Tolerance {
				errCh <- &parallelErr{e}
				return
			}
			errCh <- nil
		}(uint64(g * 100))
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

type parallelErr struct{ e float64 }

func (p *parallelErr) Error() string { return "parallel result mismatch" }

// TestRunParallelValidation rejects bad buffers.
func TestRunParallelValidation(t *testing.T) {
	chip := hw.KP920()
	plan, _ := NewPlan(chip, 8, 8, 8, AutoOptions(chip))
	small := make([]float32, 4)
	if err := plan.RunParallel(small, small, small, 2); err == nil {
		t.Error("undersized buffers accepted")
	}
}
