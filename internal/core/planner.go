package core

import (
	"fmt"
	"os"
	"strings"

	"autogemm/internal/cache"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
	"autogemm/internal/plan"
	"autogemm/internal/plan/audit"
	"autogemm/internal/sched"
	"autogemm/internal/tiling"
)

// This file is the plan *producer*: everything expensive and
// shape-specific — automatic blocking resolution, the residency-aware
// Dynamic Micro-Tiling of every distinct cache block, the kernel-key
// enumeration and the Eqn-13 cost projection — happens here, once, and
// is captured in an immutable plan.Plan. The executor (core.go,
// exec.go) replays plans without re-deriving any of it.

// OrderFromString parses a loop order name ("MNK", "knm", ...).
func OrderFromString(s string) (LoopOrder, error) {
	for _, o := range AllLoopOrders() {
		if strings.EqualFold(o.String(), s) {
			return o, nil
		}
	}
	return OrderMNK, fmt.Errorf("core: unknown loop order %q", s)
}

// PackFromString parses a packing mode name, including "auto".
func PackFromString(s string) (PackMode, error) {
	for _, p := range []PackMode{PackNone, PackOnline, PackOffline, PackAuto} {
		if strings.EqualFold(p.String(), s) {
			return p, nil
		}
	}
	return PackAuto, fmt.Errorf("core: unknown packing mode %q", s)
}

// strategyName reports the tiler a set of options selects.
func strategyName(o Options) string {
	if o.Strategy == nil {
		return (&tiling.DMT{}).Name()
	}
	return o.Strategy.Name()
}

// RequestOf converts planning inputs into the serializable request the
// fingerprint is computed over — the options exactly as given, before
// any automatic resolution, so identical requests always map to the
// same plan-cache and registry key.
func RequestOf(chip *hw.Chip, m, n, k int, opts Options) plan.Request {
	req := plan.Request{
		Chip: chip.Name, M: m, N: n, K: k,
		MC: opts.MC, NC: opts.NC, KC: opts.KC,
		Order: opts.Order.String(), Pack: opts.Pack.String(),
		Rotate: opts.Rotate, Fuse: opts.Fuse,
		Cores: opts.Cores, Over: opts.CallOverhead, KCisK: opts.ForceKCisK,
		Tiler: strategyName(opts),
	}
	for _, t := range opts.DMTCandidates {
		req.Cands = append(req.Cands, t.String())
	}
	return req
}

// Fingerprint returns the plan-cache key for a problem and option set.
func Fingerprint(chip *hw.Chip, m, n, k int, opts Options) string {
	return RequestOf(chip, m, n, k, opts).Fingerprint()
}

// resolveOptions applies the automatic parameter choices: packing by
// problem size (§IV-C2) and Goto-layered blocking. It returns a copy;
// the caller's options are not mutated.
func resolveOptions(chip *hw.Chip, m, n, k int, opts Options) Options {
	o := opts
	if o.Pack == PackAuto {
		// Skip packing when the whole B matrix fits L1 alongside the A
		// and C bands; otherwise pack online.
		if k*quantUp(n, chip.Lanes)*4 <= chip.L1D.SizeBytes*3/4 {
			o.Pack = PackNone
		} else {
			o.Pack = PackOnline
		}
	}
	resolveBlocking(chip, m, n, k, &o)
	return o
}

// resolveBlocking picks m_c, n_c, k_c when unset: k_c sized so a B panel
// (k_c × n_c) plus the A band fits L1 (Eqn 1's residency assumption),
// m_c so the A block fits L2, following Goto's layering.
func resolveBlocking(chip *hw.Chip, m, n, k int, o *Options) {
	lanes := chip.Lanes
	if o.ForceKCisK {
		o.KC = k
	}
	if o.KC <= 0 {
		// Half of L1 for the B panel at the default n_c target.
		target := chip.L1D.SizeBytes / 2 / 4 / 64 // elements of k per 64-wide panel
		o.KC = clamp(target, lanes, 256)
		if o.KC > k {
			o.KC = k
		}
	}
	if o.NC <= 0 {
		nc := (chip.L1D.SizeBytes / 2 / 4) / max(o.KC, 1)
		nc = nc / lanes * lanes
		o.NC = clamp(nc, lanes, 512)
		if o.NC > n {
			o.NC = quantUp(n, lanes)
		}
	}
	if o.MC <= 0 {
		mc := (chip.L2.SizeBytes / 2 / 4) / max(o.KC, 1)
		o.MC = clamp(mc, 4, 256)
		if o.MC > m {
			o.MC = m
		}
	}
}

// blockShapes returns the distinct block extents of a dimension: the
// full block size and the remainder, if any.
func blockShapes(total, bs int) []int {
	if bs >= total {
		return []int{total}
	}
	out := []int{bs}
	if rem := total % bs; rem > 0 {
		out = append(out, rem)
	}
	return out
}

// tilerFor returns the strategy instance planning uses, applying the
// residency-derived load latency and any candidate restriction when the
// strategy is DMT (default or explicit).
func tilerFor(opts Options, params perfmodel.Params, lat int) tiling.Strategy {
	popt := perfmodel.Opt{Rotate: opts.Rotate, Fuse: opts.Fuse}
	base, isDMT := opts.Strategy.(*tiling.DMT)
	if opts.Strategy == nil {
		base, isDMT = &tiling.DMT{Params: params, Opt: popt}, true
	}
	if !isDMT {
		return opts.Strategy
	}
	d := &tiling.DMT{
		Params:     base.Params.WithLoadLatency(float64(lat)),
		Opt:        base.Opt,
		Candidates: base.Candidates,
	}
	if d.Params.Lanes == 0 { // zero-value DMT: inherit chip params
		d.Params = params.WithLoadLatency(float64(lat))
		d.Opt = popt
	}
	if opts.DMTCandidates != nil {
		d.Candidates = opts.DMTCandidates
	}
	return d
}

// loadLatencyFor derives the effective micro-kernel load latency from
// where the block's streaming working set resides: the B panel plus one
// A band and one C band. Without packing the strided panels occupy about
// twice the footprint in cache lines and conflict more, modelled as a
// doubled footprint (§IV-C: packing pays off once N is large).
func loadLatencyFor(chip *hw.Chip, hier *cache.Hierarchy, pack PackMode, nTotal, nb, kb int) int {
	lanes := chip.Lanes
	nbQ := quantUp(nb, lanes)
	panel := kb * nbQ * 4
	if pack == PackNone && nTotal > nbQ {
		// Strided panels occupy roughly double their size in cache lines
		// and conflict more — but never more than the whole B matrix.
		panel = min(2*panel, kb*quantUp(nTotal, lanes)*4)
	}
	ws := panel + mkernel.MaxMR*kb*4 + mkernel.MaxMR*nbQ*4
	return hier.LatencyOfLevel(hier.ResidencyLevel(ws))
}

// Produce plans a problem from scratch and returns the immutable,
// serializable recipe: resolved blocking, the tiling of every distinct
// block shape (each tiled at the load latency its residency implies),
// the kernel keys execution will request, and the Eqn-13 projected
// cost. Produce never touches the simulator — it is the cheap analytic
// half of planning; the tuner's search sits on top of it.
func Produce(chip *hw.Chip, m, n, k int, opts Options) (*plan.Plan, error) {
	if chip == nil {
		return nil, fmt.Errorf("core: nil chip")
	}
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, fmt.Errorf("core: invalid problem %dx%dx%d", m, n, k)
	}
	if err := checkGeometry(m, n, k); err != nil {
		return nil, err
	}
	req := RequestOf(chip, m, n, k, opts)
	o := resolveOptions(chip, m, n, k, opts)
	params := perfmodel.FromChip(chip)
	hier := cache.NewHierarchy(chip)
	popt := perfmodel.Opt{Rotate: o.Rotate, Fuse: o.Fuse}

	bld := plan.NewBuilder(req, o.MC, o.NC, o.KC, o.Order.String(), o.Pack.String())

	kcTile := min(o.KC, k)
	mShapes := blockShapes(m, o.MC)
	nShapes := blockShapes(n, o.NC)
	kShapes := blockShapes(k, o.KC)

	keys := map[mkernel.Key]bool{}
	for _, mb := range mShapes {
		for _, nb := range nShapes {
			lat := loadLatencyFor(chip, hier, o.Pack, n, nb, kcTile)
			strat := tilerFor(o, params, lat)
			tl, err := strat.Tile(mb, nb, kcTile)
			if err != nil {
				return nil, err
			}
			if err := tl.Validate(chip.Lanes); err != nil {
				return nil, fmt.Errorf("core: strategy %s: %w", strat.Name(), err)
			}
			blk := tl.ToPlanBlock()
			blk.LoadLatency = lat
			blk.Cost = tl.Cost(params.WithLoadLatency(float64(lat)), kcTile, popt)
			bld.AddBlock(blk)

			// Kernel keys for every k-chunk depth this block executes at.
			for _, kb := range kShapes {
				for _, bd := range tl.Bands(chip.Lanes) {
					if o.Fuse && totalTiles(bd.Segs) > 1 {
						keys[bandConfigFor(chip, o, bd.Segs, kb).Key()] = true
						continue
					}
					for _, seg := range bd.Segs {
						keys[kernelConfigFor(chip, o, seg.Tile, kb).Key()] = true
					}
				}
			}
		}
	}

	for key := range keys {
		bld.AddKernelKey(string(key))
	}

	// Projected cost composed over the block grid: the per-visit Eqn-13
	// cost of each (m, n) block shape times its visit count across the
	// k chunks — the analytic figure the tuner prunes with.
	kChunks := (k + o.KC - 1) / o.KC
	for _, mb := range mShapes {
		for _, nb := range nShapes {
			mCnt := gridCount(m, o.MC, mb)
			nCnt := gridCount(n, o.NC, nb)
			if blk := bld.Block(mb, nb); blk != nil {
				bld.AddModelCycles(blk.Cost * float64(mCnt*nCnt*kChunks))
			}
		}
	}
	return bld.Finish()
}

// gridCount returns how many blocks of extent size a dimension of the
// grid contains.
func gridCount(total, bs, size int) int {
	if bs >= total {
		return 1
	}
	if size == bs {
		return total / bs
	}
	return 1 // remainder block
}

// bandConfigFor builds the fused band-kernel configuration for a band
// at a given k-chunk depth. The construction itself lives in mkernel
// (PlanBandConfig) so the planner, the executor, the estimator and the
// plan auditor all address identical cache keys.
func bandConfigFor(chip *hw.Chip, o Options, segs []mkernel.Segment, kb int) mkernel.BandConfig {
	return mkernel.PlanBandConfig(segs, kb, chip.Lanes, o.Rotate, chip.SigmaAI)
}

// kernelConfigFor builds the single-tile kernel configuration for one
// tile at a given k-chunk depth; see bandConfigFor.
func kernelConfigFor(chip *hw.Chip, o Options, t mkernel.Tile, kb int) mkernel.Config {
	return mkernel.PlanKernelConfig(t, kb, chip.Lanes, o.Rotate, chip.SigmaAI)
}

// Attach binds an executor to a produced (or deserialized) recipe. The
// recipe must validate and belong to the chip; unless runtime marks it
// TrustedPlan (the in-process produce path), it must additionally pass
// the static plan audit — coverage, bounds composition and kernel-key
// consistency are re-proven before any kernel can execute, so a
// corrupt or tampered registry entry is rejected here and the caller
// falls back to fresh planning. runtime carries only the
// non-serializable toggles (ForceInterp, a custom Strategy for later
// re-planning, TrustedPlan).
func Attach(chip *hw.Chip, rec *plan.Plan, runtime Options) (*Plan, error) {
	if chip == nil {
		return nil, fmt.Errorf("core: nil chip")
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	if rec.Request.Chip != chip.Name {
		return nil, fmt.Errorf("core: plan for chip %s attached to %s", rec.Request.Chip, chip.Name)
	}
	if !runtime.TrustedPlan {
		if _, err := audit.Audit(chip, rec, audit.Options{}); err != nil {
			return nil, err
		}
	}
	// A deserialized recipe is untrusted: reject degenerate or
	// overflowing geometry here, before it can reach execution where the
	// minimum-buffer-length checks would mis-evaluate on it.
	if rec.Request.M <= 0 || rec.Request.N <= 0 || rec.Request.K <= 0 {
		return nil, fmt.Errorf("core: plan has invalid problem %dx%dx%d",
			rec.Request.M, rec.Request.N, rec.Request.K)
	}
	if err := checkGeometry(rec.Request.M, rec.Request.N, rec.Request.K); err != nil {
		return nil, err
	}
	order, err := OrderFromString(rec.Order)
	if err != nil {
		return nil, err
	}
	pack, err := PackFromString(rec.Pack)
	if err != nil {
		return nil, err
	}
	if pack == PackAuto {
		return nil, fmt.Errorf("core: plan has unresolved packing mode")
	}

	o := runtime
	o.MC, o.NC, o.KC = rec.MC, rec.NC, rec.KC
	o.Order, o.Pack = order, pack
	o.Rotate, o.Fuse = rec.Request.Rotate, rec.Request.Fuse
	o.Cores = rec.Request.Cores
	o.CallOverhead = rec.Request.Over
	o.ForceKCisK = rec.Request.KCisK

	p := &Plan{
		Chip: chip, M: rec.Request.M, N: rec.Request.N, K: rec.Request.K,
		Opts:    o,
		Recipe:  rec,
		params:  perfmodel.FromChip(chip),
		tilings: make(map[[2]int]tiling.Tiling, len(rec.Blocks)),
		progs:   make(map[[3]int]*blockProg),
		cache:   mkernel.NewCache(),
	}
	for _, blk := range rec.Blocks {
		tl := tiling.FromPlanBlock(blk)
		if err := tl.Validate(chip.Lanes); err != nil {
			return nil, fmt.Errorf("core: plan block %dx%d: %w", blk.M, blk.N, err)
		}
		p.tilings[[2]int{blk.M, blk.N}] = tl
	}
	// Every block shape of the grid must be covered by the recipe.
	for _, mb := range blockShapes(p.M, o.MC) {
		for _, nb := range blockShapes(p.N, o.NC) {
			if _, ok := p.tilings[[2]int{mb, nb}]; !ok {
				return nil, fmt.Errorf("core: plan missing tiling for block %dx%d", mb, nb)
			}
		}
	}
	p.interpOnly = o.ForceInterp || os.Getenv("AUTOGEMM_INTERP") == "1"

	// Execution runtime: the scheduler pool every run is a job on, one
	// scratch slot per pool worker, and the C-tile-group partition —
	// precomputed here, alongside blockProg, instead of rebuilt by
	// every parallel call.
	p.runtime = o.Runtime
	if p.runtime == nil {
		p.runtime = sched.Shared()
	}
	p.states = make([]*execState, p.runtime.Workers())
	p.groups = partitionGroups(p.blocks())
	return p, nil
}
