package core

import (
	"fmt"
	"os"
	"strings"

	"autogemm/internal/cache"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
	"autogemm/internal/plan"
	"autogemm/internal/plan/audit"
	"autogemm/internal/sched"
	"autogemm/internal/tiling"
)

// This file is the plan *producer*: everything expensive and
// shape-specific — automatic blocking resolution, the residency-aware
// Dynamic Micro-Tiling of every distinct cache block, the kernel-key
// enumeration and the Eqn-13 cost projection — happens here, once, and
// is captured in an immutable plan.Plan. The executor (core.go,
// exec.go) replays plans without re-deriving any of it.

// OrderFromString parses a loop order name ("MNK", "knm", ...).
func OrderFromString(s string) (LoopOrder, error) {
	for _, o := range AllLoopOrders() {
		if strings.EqualFold(o.String(), s) {
			return o, nil
		}
	}
	return OrderMNK, fmt.Errorf("core: unknown loop order %q", s)
}

// PackFromString parses a packing mode name, including "auto".
func PackFromString(s string) (PackMode, error) {
	for _, p := range []PackMode{PackNone, PackOnline, PackOffline, PackAuto} {
		if strings.EqualFold(p.String(), s) {
			return p, nil
		}
	}
	return PackAuto, fmt.Errorf("core: unknown packing mode %q", s)
}

// strategyName reports the tiler a set of options selects.
func strategyName(o Options) string {
	if o.Strategy == nil {
		return (&tiling.DMT{}).Name()
	}
	return o.Strategy.Name()
}

// RequestOf converts planning inputs into the serializable request the
// fingerprint is computed over — the options exactly as given, before
// any automatic resolution, so identical requests always map to the
// same plan-cache and registry key.
func RequestOf(chip *hw.Chip, m, n, k int, opts Options) plan.Request {
	req := plan.Request{
		Chip: chip.Name, M: m, N: n, K: k,
		MC: opts.MC, NC: opts.NC, KC: opts.KC,
		Order: opts.Order.String(), Pack: opts.Pack.String(),
		Rotate: opts.Rotate, Fuse: opts.Fuse,
		Cores: opts.Cores, Over: opts.CallOverhead, KCisK: opts.ForceKCisK,
		Tiler: strategyName(opts),
	}
	for _, t := range opts.DMTCandidates {
		req.Cands = append(req.Cands, t.String())
	}
	return req
}

// Fingerprint returns the plan-cache key for a problem and option set.
func Fingerprint(chip *hw.Chip, m, n, k int, opts Options) string {
	return RequestOf(chip, m, n, k, opts).Fingerprint()
}

// resolveOptions applies the automatic parameter choices: packing by
// problem size (§IV-C2) and Goto-layered blocking. It returns a copy;
// the caller's options are not mutated.
func resolveOptions(chip *hw.Chip, m, n, k int, opts Options) Options {
	o := opts
	if o.Pack == PackAuto {
		// Skip packing when the whole B matrix fits L1 alongside the A
		// and C bands; otherwise pack online.
		if k*quantUp(n, chip.Lanes)*4 <= chip.L1D.SizeBytes*3/4 {
			o.Pack = PackNone
		} else {
			o.Pack = PackOnline
		}
	}
	resolveBlocking(chip, m, n, k, &o)
	return o
}

// resolveBlocking picks m_c, n_c, k_c when unset: k_c sized so a B panel
// (k_c × n_c) plus the A band fits L1 (Eqn 1's residency assumption),
// m_c so the A block fits L2, following Goto's layering.
func resolveBlocking(chip *hw.Chip, m, n, k int, o *Options) {
	lanes := chip.Lanes
	if o.ForceKCisK {
		o.KC = k
	}
	if o.KC <= 0 {
		// Half of L1 for the B panel at the default n_c target.
		target := chip.L1D.SizeBytes / 2 / 4 / 64 // elements of k per 64-wide panel
		o.KC = clamp(target, lanes, 256)
		if o.KC > k {
			o.KC = k
		}
	}
	if o.NC <= 0 {
		nc := (chip.L1D.SizeBytes / 2 / 4) / max(o.KC, 1)
		nc = nc / lanes * lanes
		o.NC = clamp(nc, lanes, 512)
		if o.NC > n {
			o.NC = quantUp(n, lanes)
		}
	}
	if o.MC <= 0 {
		mc := (chip.L2.SizeBytes / 2 / 4) / max(o.KC, 1)
		o.MC = clamp(mc, 4, 256)
		if o.MC > m {
			o.MC = m
		}
	}
}

// blockShapes returns the distinct block extents of a dimension: the
// full block size and the remainder, if any.
func blockShapes(total, bs int) []int {
	if bs >= total {
		return []int{total}
	}
	out := []int{bs}
	if rem := total % bs; rem > 0 {
		out = append(out, rem)
	}
	return out
}

// tilerFor returns the strategy instance planning uses, applying the
// residency-derived load latency and any candidate restriction when the
// strategy is DMT (default or explicit).
func tilerFor(opts Options, params perfmodel.Params, lat int) tiling.Strategy {
	popt := perfmodel.Opt{Rotate: opts.Rotate, Fuse: opts.Fuse}
	base, isDMT := opts.Strategy.(*tiling.DMT)
	if opts.Strategy == nil {
		base, isDMT = &tiling.DMT{Params: params, Opt: popt}, true
	}
	if !isDMT {
		return opts.Strategy
	}
	d := &tiling.DMT{
		Params:     base.Params.WithLoadLatency(float64(lat)),
		Opt:        base.Opt,
		Candidates: base.Candidates,
	}
	if d.Params.Lanes == 0 { // zero-value DMT: inherit chip params
		d.Params = params.WithLoadLatency(float64(lat))
		d.Opt = popt
	}
	if opts.DMTCandidates != nil {
		d.Candidates = opts.DMTCandidates
	}
	return d
}

// loadLatencyFor derives the effective micro-kernel load latency from
// where the block's streaming working set resides: the B panel plus one
// A band and one C band. Without packing the strided panels occupy about
// twice the footprint in cache lines and conflict more, modelled as a
// doubled footprint (§IV-C: packing pays off once N is large).
func loadLatencyFor(chip *hw.Chip, hier *cache.Hierarchy, pack PackMode, nTotal, nb, kb int) int {
	lanes := chip.Lanes
	nbQ := quantUp(nb, lanes)
	panel := kb * nbQ * 4
	if pack == PackNone && nTotal > nbQ {
		// Strided panels occupy roughly double their size in cache lines
		// and conflict more — but never more than the whole B matrix.
		panel = min(2*panel, kb*quantUp(nTotal, lanes)*4)
	}
	ws := panel + mkernel.MaxMR*kb*4 + mkernel.MaxMR*nbQ*4
	return hier.LatencyOfLevel(hier.ResidencyLevel(ws))
}

// produceEnv is the resolved planning context every producer shares —
// the synchronous Produce, the tier-0 ProduceHeuristic and the
// background SubmitProduce differ only in *how* each distinct block
// shape gets tiled; everything around that (request, resolved options,
// model parameters, residency latencies, kernel-key enumeration, cost
// composition) is identical and lives here so the three paths cannot
// drift apart.
type produceEnv struct {
	chip    *hw.Chip
	m, n, k int
	req     plan.Request
	o       Options
	params  perfmodel.Params
	hier    *cache.Hierarchy
	popt    perfmodel.Opt
	kcTile  int
	mShapes []int
	nShapes []int
	kShapes []int
}

// newProduceEnv validates the problem and resolves the planning
// context.
func newProduceEnv(chip *hw.Chip, m, n, k int, opts Options) (*produceEnv, error) {
	if chip == nil {
		return nil, fmt.Errorf("core: nil chip")
	}
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, fmt.Errorf("core: invalid problem %dx%dx%d", m, n, k)
	}
	if err := checkGeometry(m, n, k); err != nil {
		return nil, err
	}
	o := resolveOptions(chip, m, n, k, opts)
	return &produceEnv{
		chip: chip, m: m, n: n, k: k,
		req:     RequestOf(chip, m, n, k, opts),
		o:       o,
		params:  perfmodel.FromChip(chip),
		hier:    cache.NewHierarchy(chip),
		popt:    perfmodel.Opt{Rotate: o.Rotate, Fuse: o.Fuse},
		kcTile:  min(o.KC, k),
		mShapes: blockShapes(m, o.MC),
		nShapes: blockShapes(n, o.NC),
		kShapes: blockShapes(k, o.KC),
	}, nil
}

// latFor derives the residency load latency of a block column width.
func (e *produceEnv) latFor(nb int) int {
	return loadLatencyFor(e.chip, e.hier, e.o.Pack, e.n, nb, e.kcTile)
}

// build assembles the full plan given a per-block tiling function:
// tile is called once per distinct (mb, nb) block shape with its
// residency latency and returns the block's panel cover. The rest —
// kernel keys for every k-chunk depth, the Eqn-13 cost composed over
// the block grid — is shared verbatim across producers.
func (e *produceEnv) build(source string, tile func(mb, nb, lat int) (tiling.Tiling, error)) (*plan.Plan, error) {
	bld := plan.NewBuilder(e.req, e.o.MC, e.o.NC, e.o.KC, e.o.Order.String(), e.o.Pack.String())
	bld.SetSource(source)

	keys := map[mkernel.Key]bool{}
	for _, mb := range e.mShapes {
		for _, nb := range e.nShapes {
			lat := e.latFor(nb)
			tl, err := tile(mb, nb, lat)
			if err != nil {
				return nil, err
			}
			if err := tl.Validate(e.chip.Lanes); err != nil {
				return nil, fmt.Errorf("core: strategy %s: %w", tl.Strategy, err)
			}
			blk := tl.ToPlanBlock()
			blk.LoadLatency = lat
			blk.Cost = tl.Cost(e.params.WithLoadLatency(float64(lat)), e.kcTile, e.popt)
			bld.AddBlock(blk)

			// Kernel keys for every k-chunk depth this block executes at.
			for _, kb := range e.kShapes {
				for _, bd := range tl.Bands(e.chip.Lanes) {
					if e.o.Fuse && totalTiles(bd.Segs) > 1 {
						keys[bandConfigFor(e.chip, e.o, bd.Segs, kb).Key()] = true
						continue
					}
					for _, seg := range bd.Segs {
						keys[kernelConfigFor(e.chip, e.o, seg.Tile, kb).Key()] = true
					}
				}
			}
		}
	}

	for key := range keys {
		bld.AddKernelKey(string(key))
	}

	// Projected cost composed over the block grid: the per-visit Eqn-13
	// cost of each (m, n) block shape times its visit count across the
	// k chunks — the analytic figure the tuner prunes with.
	kChunks := (e.k + e.o.KC - 1) / e.o.KC
	for _, mb := range e.mShapes {
		for _, nb := range e.nShapes {
			mCnt := gridCount(e.m, e.o.MC, mb)
			nCnt := gridCount(e.n, e.o.NC, nb)
			if blk := bld.Block(mb, nb); blk != nil {
				bld.AddModelCycles(blk.Cost * float64(mCnt*nCnt*kChunks))
			}
		}
	}
	return bld.Finish()
}

// Produce plans a problem from scratch and returns the immutable,
// serializable recipe: resolved blocking, the tiling of every distinct
// block shape (each tiled at the load latency its residency implies),
// the kernel keys execution will request, and the Eqn-13 projected
// cost. Produce never touches the simulator — it is the cheap analytic
// half of planning; the tuner's search sits on top of it.
func Produce(chip *hw.Chip, m, n, k int, opts Options) (*plan.Plan, error) {
	e, err := newProduceEnv(chip, m, n, k, opts)
	if err != nil {
		return nil, err
	}
	return e.build(plan.SourceAuto, func(mb, nb, lat int) (tiling.Tiling, error) {
		return tilerFor(e.o, e.params, lat).Tile(mb, nb, e.kcTile)
	})
}

// ProduceHeuristic is the tier-0 producer: the same request, resolved
// blocking, kernel keys and cost composition as Produce, but each block
// is covered by the single-panel Heuristic tiler instead of the DMT
// dynamic program — O(#candidates) per block, microseconds where the
// full search takes tens of milliseconds. The plan answers the same
// fingerprint as Produce's (Source is not fingerprinted), is tagged
// plan.SourceHeuristic, and passes the same audit gate; the tiered
// engine serves it instantly on a cold miss while the full plan builds
// in the background. A custom non-DMT strategy is already O(1), so it
// is used as-is (the plan is still tagged heuristic — it took the
// instant path).
func ProduceHeuristic(chip *hw.Chip, m, n, k int, opts Options) (*plan.Plan, error) {
	e, err := newProduceEnv(chip, m, n, k, opts)
	if err != nil {
		return nil, err
	}
	return e.build(plan.SourceHeuristic, func(mb, nb, lat int) (tiling.Tiling, error) {
		strat := tilerFor(e.o, e.params, lat)
		if d, ok := strat.(*tiling.DMT); ok {
			strat = &tiling.Heuristic{DMT: *d}
		}
		return strat.Tile(mb, nb, e.kcTile)
	})
}

// SubmitProduce plans a problem in the background on a sched pool and
// produces the same plan Produce would, bit for bit: the DMT dynamic
// program of every distinct block shape is opened as a tiling.Search
// and its memo rows are fanned out as independent pool tasks, then the
// completion hook finishes the searches and assembles the plan through
// the shared build path. onDone receives the finished plan or the
// first error; it runs on the pool's completion goroutine, never on a
// serving thread. SubmitProduce never blocks: when the pool is at its
// in-flight depth it returns sched.ErrBusy without enqueuing anything,
// and the caller retries later.
func SubmitProduce(pool *sched.Pool, chip *hw.Chip, m, n, k int, opts Options, onDone func(*plan.Plan, error)) error {
	if pool == nil {
		return fmt.Errorf("core: nil pool")
	}
	if onDone == nil {
		return fmt.Errorf("core: nil completion hook")
	}
	e, err := newProduceEnv(chip, m, n, k, opts)
	if err != nil {
		return err
	}

	// One Search per distinct DMT-tiled block shape. Static strategies
	// have nothing to parallelize and tile inline at assembly.
	type blockKey struct{ mb, nb int }
	searches := map[blockKey]*tiling.Search{}
	type rowChunk struct {
		s      *tiling.Search
		lo, hi int
	}
	var chunks []rowChunk
	for _, mb := range e.mShapes {
		for _, nb := range e.nShapes {
			d, ok := tilerFor(e.o, e.params, e.latFor(nb)).(*tiling.DMT)
			if !ok {
				continue
			}
			s, err := d.NewSearch(mb, nb, e.kcTile)
			if err != nil {
				return err
			}
			searches[blockKey{mb, nb}] = s
			rows := s.Rows()
			per := (rows + pool.Workers() - 1) / pool.Workers()
			if per < 16 {
				per = 16 // don't shred tiny blocks into claim overhead
			}
			for lo := 0; lo < rows; lo += per {
				chunks = append(chunks, rowChunk{s: s, lo: lo, hi: min(lo+per, rows)})
			}
		}
	}

	// Upgrades run under the scheduler's background class: weighted
	// claiming keeps DMT row-filling off the critical path whenever any
	// foreground class has jobs queued, instead of competing FIFO.
	fut, err := pool.TrySubmitQoS(len(chunks), 0, sched.QoS{Class: sched.BackgroundClass}, func(_ *sched.Worker, i int) error {
		chunks[i].s.FillRows(chunks[i].lo, chunks[i].hi)
		return nil
	})
	if err != nil {
		return err
	}
	fut.OnDone(func(jobErr error) {
		if jobErr != nil {
			onDone(nil, jobErr)
			return
		}
		p, err := e.build(plan.SourceAuto, func(mb, nb, lat int) (tiling.Tiling, error) {
			if s := searches[blockKey{mb, nb}]; s != nil {
				return s.Finish()
			}
			return tilerFor(e.o, e.params, lat).Tile(mb, nb, e.kcTile)
		})
		onDone(p, err)
	})
	return nil
}

// gridCount returns how many blocks of extent size a dimension of the
// grid contains.
func gridCount(total, bs, size int) int {
	if bs >= total {
		return 1
	}
	if size == bs {
		return total / bs
	}
	return 1 // remainder block
}

// bandConfigFor builds the fused band-kernel configuration for a band
// at a given k-chunk depth. The construction itself lives in mkernel
// (PlanBandConfig) so the planner, the executor, the estimator and the
// plan auditor all address identical cache keys.
func bandConfigFor(chip *hw.Chip, o Options, segs []mkernel.Segment, kb int) mkernel.BandConfig {
	return mkernel.PlanBandConfig(segs, kb, chip.Lanes, o.Rotate, chip.SigmaAI)
}

// kernelConfigFor builds the single-tile kernel configuration for one
// tile at a given k-chunk depth; see bandConfigFor.
func kernelConfigFor(chip *hw.Chip, o Options, t mkernel.Tile, kb int) mkernel.Config {
	return mkernel.PlanKernelConfig(t, kb, chip.Lanes, o.Rotate, chip.SigmaAI)
}

// Attach binds an executor to a produced (or deserialized) recipe. The
// recipe must validate and belong to the chip; unless runtime marks it
// TrustedPlan (the in-process produce path), it must additionally pass
// the static plan audit — coverage, bounds composition and kernel-key
// consistency are re-proven before any kernel can execute, so a
// corrupt or tampered registry entry is rejected here and the caller
// falls back to fresh planning. runtime carries only the
// non-serializable toggles (ForceInterp, a custom Strategy for later
// re-planning, TrustedPlan).
func Attach(chip *hw.Chip, rec *plan.Plan, runtime Options) (*Plan, error) {
	if chip == nil {
		return nil, fmt.Errorf("core: nil chip")
	}
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	if rec.Request.Chip != chip.Name {
		return nil, fmt.Errorf("core: plan for chip %s attached to %s", rec.Request.Chip, chip.Name)
	}
	if !runtime.TrustedPlan {
		if _, err := audit.Audit(chip, rec, audit.Options{}); err != nil {
			return nil, err
		}
	}
	// A deserialized recipe is untrusted: reject degenerate or
	// overflowing geometry here, before it can reach execution where the
	// minimum-buffer-length checks would mis-evaluate on it.
	if rec.Request.M <= 0 || rec.Request.N <= 0 || rec.Request.K <= 0 {
		return nil, fmt.Errorf("core: plan has invalid problem %dx%dx%d",
			rec.Request.M, rec.Request.N, rec.Request.K)
	}
	if err := checkGeometry(rec.Request.M, rec.Request.N, rec.Request.K); err != nil {
		return nil, err
	}
	order, err := OrderFromString(rec.Order)
	if err != nil {
		return nil, err
	}
	pack, err := PackFromString(rec.Pack)
	if err != nil {
		return nil, err
	}
	if pack == PackAuto {
		return nil, fmt.Errorf("core: plan has unresolved packing mode")
	}

	o := runtime
	o.MC, o.NC, o.KC = rec.MC, rec.NC, rec.KC
	o.Order, o.Pack = order, pack
	o.Rotate, o.Fuse = rec.Request.Rotate, rec.Request.Fuse
	o.Cores = rec.Request.Cores
	o.CallOverhead = rec.Request.Over
	o.ForceKCisK = rec.Request.KCisK

	p := &Plan{
		Chip: chip, M: rec.Request.M, N: rec.Request.N, K: rec.Request.K,
		Opts:    o,
		Recipe:  rec,
		params:  perfmodel.FromChip(chip),
		tilings: make(map[[2]int]tiling.Tiling, len(rec.Blocks)),
		progs:   make(map[[3]int]*blockProg),
		cache:   mkernel.NewCache(),
	}
	for _, blk := range rec.Blocks {
		tl := tiling.FromPlanBlock(blk)
		if err := tl.Validate(chip.Lanes); err != nil {
			return nil, fmt.Errorf("core: plan block %dx%d: %w", blk.M, blk.N, err)
		}
		p.tilings[[2]int{blk.M, blk.N}] = tl
	}
	// Every block shape of the grid must be covered by the recipe.
	for _, mb := range blockShapes(p.M, o.MC) {
		for _, nb := range blockShapes(p.N, o.NC) {
			if _, ok := p.tilings[[2]int{mb, nb}]; !ok {
				return nil, fmt.Errorf("core: plan missing tiling for block %dx%d", mb, nb)
			}
		}
	}
	p.interpOnly = o.ForceInterp || os.Getenv("AUTOGEMM_INTERP") == "1"

	// Execution runtime: the scheduler pool every run is a job on, one
	// scratch slot per pool worker, and the C-tile-group partition —
	// precomputed here, alongside blockProg, instead of rebuilt by
	// every parallel call.
	p.runtime = o.Runtime
	if p.runtime == nil {
		p.runtime = sched.Shared()
	}
	p.defaultQoS = o.DefaultQoS
	p.states = make([]*execState, p.runtime.Workers())
	p.groups = partitionGroups(p.blocks())
	return p, nil
}
