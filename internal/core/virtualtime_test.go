package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/sched"
	"autogemm/internal/vtime"
)

// vtPlan attaches a plan to its own small pool with cost accounting on.
func vtPlan(t *testing.T, chip *hw.Chip, m, n, k, workers int) (*Plan, *sched.Pool) {
	t.Helper()
	pool := sched.New(workers, 0)
	t.Cleanup(func() { pool.Close() })
	opts := AutoOptions(chip)
	opts.Runtime = pool
	p, err := NewPlan(chip, m, n, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.EnableCostAccounting(); err != nil {
		t.Fatal(err)
	}
	return p, pool
}

func fillVT(s []float32, seed uint32) {
	x := seed | 1
	for i := range s {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		s[i] = float32(int32(x%2048)-1024) / 64
	}
}

// TestVirtualTimeDeterminism: the per-task costs a Recorder observes
// during a real parallel execution are exactly the plan's precomputed
// TaskCosts — independent of the racy physical task-to-worker
// assignment — and replaying them through vtime is bit-identical run
// to run. This is the GOMAXPROCS-independence contract the CI
// determinism step exercises.
func TestVirtualTimeDeterminism(t *testing.T) {
	chip := hw.A64FX()
	p, pool := vtPlan(t, chip, 64, 1568, 147, 4)
	rec := sched.NewRecorder()
	pool.SetTimekeeper(rec)

	want, err := p.TaskCosts()
	if err != nil {
		t.Fatal(err)
	}
	m, n, k := p.M, p.N, p.K
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	fillVT(a, 1)
	fillVT(b, 2)

	for run := 0; run < 2; run++ {
		fut, err := p.Submit(c, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := fut.Wait(); err != nil {
			t.Fatal(err)
		}
		got := rec.Costs(fut.JobID())
		if len(got) != len(want) {
			t.Fatalf("run %d: recorded %d task costs, want %d", run, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("run %d task %d: recorded cost %+v != precomputed %+v",
					run, i, got[i], want[i])
			}
		}
	}

	// Replay determinism: same costs, same chip, same worker count —
	// bit-identical simulated cycles every time.
	r1 := vtime.Simulate(chip, 48, want)
	r2 := vtime.Simulate(chip, 48, want)
	if r1.Cycles != r2.Cycles {
		t.Errorf("replay cycles differ: %v vs %v", r1.Cycles, r2.Cycles)
	}
}

// TestVirtualTimeBitIdenticalOutputs: enabling the Timekeeper hook and
// cost charging changes nothing numeric — parallel outputs stay
// byte-identical to a serial run without accounting.
func TestVirtualTimeBitIdenticalOutputs(t *testing.T) {
	chip := hw.KP920()
	m, n, k := 64, 784, 147

	ref, err := NewPlan(chip, m, n, k, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fillVT(a, 3)
	fillVT(b, 4)
	cRef := make([]float32, m*n)
	if err := ref.Run(cRef, a, b); err != nil {
		t.Fatal(err)
	}

	p, pool := vtPlan(t, chip, m, n, k, 4)
	pool.SetTimekeeper(sched.NewRecorder())
	cPar := make([]float32, m*n)
	if err := p.RunParallel(cPar, a, b, 4); err != nil {
		t.Fatal(err)
	}

	var bufRef, bufPar bytes.Buffer
	if err := binary.Write(&bufRef, binary.LittleEndian, cRef); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(&bufPar, binary.LittleEndian, cPar); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufRef.Bytes(), bufPar.Bytes()) {
		t.Fatal("outputs with cost accounting differ from serial reference bits")
	}
}

// TestAnalyticVsScheduleCrossValidation: on ResNet-50 shapes, the
// analytic Eqn-13 estimate and the schedule-derived simulated cycles
// must agree within the granularity gap — the analytic imbalance term
// is one band, the replay's is one task, so the bound is the largest
// task cost (plus the band bound itself) over the analytic estimate.
func TestAnalyticVsScheduleCrossValidation(t *testing.T) {
	shapes := [][3]int{
		{64, 12544, 147}, // ResNet-50 L1
		{256, 3136, 64},
		{512, 784, 128},
	}
	for _, chip := range []*hw.Chip{hw.A64FX(), hw.Graviton2(), hw.KP920()} {
		top := hw.NewTopology(chip)
		for _, s := range shapes {
			p, _ := vtPlan(t, chip, s[0], s[1], s[2], 2)
			costs, err := p.TaskCosts()
			if err != nil {
				t.Fatal(err)
			}
			var maxTask float64
			for _, c := range costs {
				if c.Cycles > maxTask {
					maxTask = c.Cycles
				}
			}
			for _, cores := range []int{1, top.CoresPerGroup(), chip.Cores} {
				est, err := p.EstimateAt(cores)
				if err != nil {
					t.Fatal(err)
				}
				sim := vtime.Simulate(chip, cores, costs)
				rel := math.Abs(est.Cycles-sim.Cycles) / est.Cycles
				pen := top.SpanPenalty(cores) * top.SyncPenalty(cores)
				tol := (maxTask+est.MaxBandCost)*pen/est.Cycles + 0.02
				if rel > tol {
					t.Errorf("%s %dx%dx%d @%d cores: analytic %.0f vs simulated %.0f (rel %.3f > tol %.3f)",
						chip.Name, s[0], s[1], s[2], cores, est.Cycles, sim.Cycles, rel, tol)
				}
			}
		}
	}
}

// TestParallelCyclesCoreOverflow: asking for more cores than the chip
// has clamps — the cycle estimate is the full-chip one.
func TestParallelCyclesCoreOverflow(t *testing.T) {
	chip := hw.A64FX()
	p, _ := vtPlan(t, chip, 64, 1568, 147, 2)
	full, err := p.EstimateAt(chip.Cores)
	if err != nil {
		t.Fatal(err)
	}
	over, err := p.EstimateAt(1000)
	if err != nil {
		t.Fatal(err)
	}
	if over.Cycles != full.Cycles {
		t.Errorf("EstimateAt(1000).Cycles=%v != EstimateAt(%d).Cycles=%v",
			over.Cycles, chip.Cores, full.Cycles)
	}
}

// TestParallelCyclesSingleGroup: on a one-group chip the estimate is
// exactly the greedy bound times the sync penalty (no span slowdown),
// floored by socket bandwidth.
func TestParallelCyclesSingleGroup(t *testing.T) {
	chip := hw.KP920()
	p, _ := vtPlan(t, chip, 64, 1568, 147, 2)
	cores := chip.Cores
	est, err := p.EstimateAt(cores)
	if err != nil {
		t.Fatal(err)
	}
	top := hw.NewTopology(chip)
	single := est.KernelCycles + est.LaunchOver + est.PackCycles + float64(p.Opts.CallOverhead)
	want := (single/float64(cores) + est.MaxBandCost) * top.SyncPenalty(cores)
	if bw := est.DRAMBytes / top.SocketBandwidth(); bw > want {
		want = bw
	}
	if math.Abs(est.Cycles-want)/want > 1e-12 {
		t.Errorf("Cycles=%v, want %v (greedy bound, sync only)", est.Cycles, want)
	}
}

// TestParallelCyclesBandwidthFloor: when traffic dominates, the socket
// bandwidth floor binds the analytic estimate.
func TestParallelCyclesBandwidthFloor(t *testing.T) {
	chip := hw.Graviton2()
	p, _ := vtPlan(t, chip, 64, 784, 64, 2)
	top := hw.NewTopology(chip)
	syn := Estimate{MaxBandCost: 10, DRAMBytes: 1e13}
	got := p.parallelCyclesAt(1e4, syn, chip.Cores)
	want := syn.DRAMBytes / top.SocketBandwidth()
	if got != want {
		t.Errorf("floor-bound cycles %v, want %v", got, want)
	}
	// And with negligible traffic the same call is compute-bound.
	syn.DRAMBytes = 1
	if got := p.parallelCyclesAt(1e4, syn, chip.Cores); got == want {
		t.Error("compute-bound case still returned the bandwidth floor")
	}
}
