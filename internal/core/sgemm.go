package core

import "fmt"

// Transpose selects op(X) for the full SGEMM interface
// C = α·op(A)·op(B) + β·C.
type Transpose bool

// Transpose values.
const (
	NoTrans Transpose = false
	Trans   Transpose = true
)

// SGEMMParams carries the BLAS-level parameters beyond the plain
// C += A·B kernel: scaling factors and operand transposition.
type SGEMMParams struct {
	Alpha, Beta float32
	TransA      Transpose
	TransB      Transpose
}

// DefaultSGEMM returns α = β = 1, no transposition (the paper's kernel).
func DefaultSGEMM() SGEMMParams { return SGEMMParams{Alpha: 1, Beta: 1} }

// RunSGEMM computes C = α·op(A)·op(B) + β·C through the plan. The plan's
// (M, N, K) describe the *operated* shapes: op(A) is M×K and op(B) is
// K×N, so A is stored K×M when TransA is set (leading dimension M), and
// B is stored N×K when TransB is set (leading dimension K).
//
// Scaling and transposition are folded into buffer preparation — the
// generated kernels always see the canonical row-major accumulate form,
// the same way BLAS libraries fold them into their packing routines:
//
//   - β scales the C operand up front (β = 0 clears it, honouring the
//     BLAS convention that NaNs in C are not propagated);
//   - α scales a working copy of A;
//   - transposed operands are materialized row-major.
func (p *Plan) RunSGEMM(params SGEMMParams, c, a, b []float32) error {
	m, n, k := p.M, p.N, p.K
	if err := checkSGEMMSizes(params, len(a), len(b), len(c), m, n, k); err != nil {
		return err
	}

	// β handling on C.
	switch params.Beta {
	case 1:
		// accumulate as-is
	case 0:
		for i := 0; i < m*n; i++ {
			c[i] = 0
		}
	default:
		for i := 0; i < m*n; i++ {
			c[i] *= params.Beta
		}
	}
	if params.Alpha == 0 {
		return nil // C = β·C only
	}

	// Materialize op(A), folding α.
	ka := a
	if params.TransA == Trans || params.Alpha != 1 {
		ka = make([]float32, m*k)
		if params.TransA == Trans {
			for i := 0; i < m; i++ {
				for l := 0; l < k; l++ {
					ka[i*k+l] = params.Alpha * a[l*m+i]
				}
			}
		} else {
			for i := range ka {
				ka[i] = params.Alpha * a[i]
			}
		}
	}
	kb := b
	if params.TransB == Trans {
		kb = make([]float32, k*n)
		for l := 0; l < k; l++ {
			for j := 0; j < n; j++ {
				kb[l*n+j] = b[j*k+l]
			}
		}
	}
	return p.Run(c, ka, kb)
}

func checkSGEMMSizes(params SGEMMParams, la, lb, lc, m, n, k int) error {
	needA, needB := m*k, k*n
	if la < needA || lb < needB || lc < m*n {
		return fmt.Errorf("core: sgemm buffers (%d,%d,%d) too small for %dx%dx%d",
			la, lb, lc, m, n, k)
	}
	return nil
}
