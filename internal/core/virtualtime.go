package core

import (
	"fmt"

	"autogemm/internal/sched"
)

// This file turns an attached plan into a virtual-time cost source.
// With cost accounting enabled, every scheduler task the plan submits
// (one C-tile group per task) charges its precomputed simulated cost —
// compute cycles from the per-band timing simulation plus the DRAM
// traffic it moves — to the worker that ran it (sched.Worker.Charge).
// An installed sched.Timekeeper then observes the real scheduler's
// schedule in simulated time, which is what the -sim-scaling bench mode
// and the internal/vtime replay engine consume.
//
// The costs are a pure function of the plan (shape, blocking, tilings,
// chip), computed once by the same memoized shapeCosts the analytic
// Estimate uses: the task costs a run records are deterministic no
// matter which physical worker claimed which task, or at what
// GOMAXPROCS the host ran.

// EnableCostAccounting precomputes the per-task simulated costs of the
// plan's C-tile groups and turns on cost charging for every subsequent
// Run/RunParallel/Submit. Numeric execution is unchanged — outputs stay
// bit-identical — and runs on pools without a Timekeeper only pay the
// per-task accounting add. Idempotent; safe to call concurrently with
// execution.
func (p *Plan) EnableCostAccounting() error {
	if _, err := p.computeTaskCosts(); err != nil {
		return err
	}
	p.vtCosting.Store(true)
	return nil
}

// TaskCosts returns the plan's per-task simulated costs, indexed by the
// task (C-tile group) index of every job the plan submits. The slice is
// shared — callers must not mutate it.
func (p *Plan) TaskCosts() ([]sched.TaskCost, error) {
	return p.computeTaskCosts()
}

// computeTaskCosts builds (once) the per-group cost vector by summing
// the memoized per-shape block costs over each group's block visits, in
// group order — the same deterministic first-visit order partitionGroups
// fixed at Attach.
func (p *Plan) computeTaskCosts() ([]sched.TaskCost, error) {
	p.mu.Lock()
	tc := p.taskCosts
	p.mu.Unlock()
	if tc != nil {
		return tc, nil
	}

	costs, _, err := p.shapeCosts()
	if err != nil {
		return nil, err
	}
	if p.groups == nil {
		return nil, fmt.Errorf("core: plan not attached to a runtime")
	}
	tc = make([]sched.TaskCost, len(p.groups))
	for gi, group := range p.groups {
		var sum sched.TaskCost
		for _, blk := range group {
			bc, ok := costs[[3]int{blk.MB, blk.NB, blk.KB}]
			if !ok {
				return nil, fmt.Errorf("core: no cost for block shape %dx%dx%d", blk.MB, blk.NB, blk.KB)
			}
			sum.Cycles += bc.total()
			sum.Bytes += bc.dram
		}
		tc[gi] = sum
	}

	p.mu.Lock()
	if p.taskCosts == nil {
		p.taskCosts = tc
	}
	tc = p.taskCosts
	p.mu.Unlock()
	return tc, nil
}
