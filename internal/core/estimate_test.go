package core

import (
	"testing"

	"autogemm/internal/hw"
)

func estimateFor(t *testing.T, chip *hw.Chip, m, n, k int, opts Options) Estimate {
	t.Helper()
	plan, err := NewPlan(chip, m, n, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	est, err := plan.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// TestEstimateSanity: efficiency bounded, components positive, GFLOPS
// consistent with cycles.
func TestEstimateSanity(t *testing.T) {
	for _, chip := range hw.All() {
		est := estimateFor(t, chip, 64, 64, 64, AutoOptions(chip))
		if est.Efficiency <= 0 || est.Efficiency > 1 {
			t.Errorf("%s: efficiency %.3f out of range", chip.Name, est.Efficiency)
		}
		if est.KernelCycles <= 0 || est.Cycles < est.KernelCycles {
			t.Errorf("%s: inconsistent cycle components %+v", chip.Name, est)
		}
		if est.GFLOPS <= 0 {
			t.Errorf("%s: GFLOPS %.2f", chip.Name, est.GFLOPS)
		}
	}
}

// TestEstimate64CubeNearPeak: the headline claim — autoGEMM reaches
// >90% of single-core peak at M=N=K=64 (the paper reports 93–98% across
// the five chips).
func TestEstimate64CubeNearPeak(t *testing.T) {
	for _, chip := range hw.All() {
		opts := AutoOptions(chip)
		est := estimateFor(t, chip, 64, 64, 64, opts)
		if est.Efficiency < 0.80 {
			t.Errorf("%s: 64^3 efficiency %.1f%%, paper reports >93%%",
				chip.Name, est.Efficiency*100)
		}
	}
}

// TestOptimizationsImproveEstimate: each §III-C step must not slow the
// projection, and the full stack must beat the bare generator (Fig 6).
func TestOptimizationsImproveEstimate(t *testing.T) {
	chip := hw.KP920()
	base := estimateFor(t, chip, 64, 64, 64, Options{Pack: PackOnline})
	rot := estimateFor(t, chip, 64, 64, 64, Options{Pack: PackOnline, Rotate: true})
	full := estimateFor(t, chip, 64, 64, 64, Options{Pack: PackOnline, Rotate: true, Fuse: true})
	if rot.Cycles > base.Cycles*1.02 {
		t.Errorf("rotation slowed estimate: %.0f -> %.0f", base.Cycles, rot.Cycles)
	}
	if full.Cycles >= base.Cycles {
		t.Errorf("full optimization stack not faster: %.0f -> %.0f", base.Cycles, full.Cycles)
	}
}

// TestKP920L1Cliff reproduces §V-B: on KP920 at N=64, growing K from 64
// to 256 with k_c pinned to K pushes the B panel past the 64 KiB L1 and
// efficiency drops dramatically.
func TestKP920L1Cliff(t *testing.T) {
	chip := hw.KP920()
	// The whole 64-column B matrix is the panel (n_c = N = 64, k_c = K),
	// matching the Fig 6 setup where B cannot be re-blocked smaller.
	mk := func(k int) Estimate {
		return estimateFor(t, chip, 64, 64, k, Options{
			MC: 64, NC: 64, Pack: PackOnline, Rotate: true, Fuse: true, ForceKCisK: true,
		})
	}
	small := mk(64)
	big := mk(256)
	if big.Efficiency >= small.Efficiency {
		t.Errorf("no L1 cliff: K=64 eff %.2f, K=256 eff %.2f", small.Efficiency, big.Efficiency)
	}
	if small.Efficiency-big.Efficiency < 0.10 {
		t.Errorf("cliff too shallow: %.2f -> %.2f", small.Efficiency, big.Efficiency)
	}
	// Graviton2's 1 MiB L2 absorbs the same growth much more gracefully.
	g2 := hw.Graviton2()
	gSmall := estimateFor(t, g2, 64, 64, 64, Options{MC: 64, NC: 64, Pack: PackOnline, Rotate: true, Fuse: true, ForceKCisK: true})
	gBig := estimateFor(t, g2, 64, 64, 256, Options{MC: 64, NC: 64, Pack: PackOnline, Rotate: true, Fuse: true, ForceKCisK: true})
	if (gSmall.Efficiency - gBig.Efficiency) > (small.Efficiency-big.Efficiency)*0.9 {
		t.Errorf("Graviton2 cliff (%.2f->%.2f) not shallower than KP920's (%.2f->%.2f)",
			gSmall.Efficiency, gBig.Efficiency, small.Efficiency, big.Efficiency)
	}
}

// TestMultiCoreScaling: more cores must not slow the estimate, and the
// single-group chips must scale nearly linearly on a large problem.
func TestMultiCoreScaling(t *testing.T) {
	chip := hw.Graviton2()
	opts := AutoOptions(chip)
	opts.Cores = 1
	one := estimateFor(t, chip, 64, 12544, 147, opts)
	opts.Cores = chip.Cores
	all := estimateFor(t, chip, 64, 12544, 147, opts)
	speedup := one.Cycles / all.Cycles
	parEff := speedup / float64(chip.Cores)
	if parEff < 0.90 {
		t.Errorf("Graviton2 parallel efficiency %.2f, paper reports 98.2%%", parEff)
	}
	if parEff > 1.01 {
		t.Errorf("superlinear scaling %.2f", parEff)
	}
}

// TestA64FXScalingCollapse: the CMG/ring-bus model must reproduce the
// paper's poor A64FX strong scaling (≈30% at 48 cores) while staying
// high within one CMG.
func TestA64FXScalingCollapse(t *testing.T) {
	chip := hw.A64FX()
	opts := AutoOptions(chip)
	opts.Cores = 1
	one := estimateFor(t, chip, 64, 12544, 147, opts)
	opts.Cores = 12 // one CMG
	cmg := estimateFor(t, chip, 64, 12544, 147, opts)
	opts.Cores = 48
	all := estimateFor(t, chip, 64, 12544, 147, opts)

	effCMG := one.Cycles / cmg.Cycles / 12
	effAll := one.Cycles / all.Cycles / 48
	if effCMG < 0.7 {
		t.Errorf("within-CMG efficiency %.2f too low", effCMG)
	}
	if effAll > 0.45 || effAll < 0.18 {
		t.Errorf("48-core efficiency %.2f, paper reports ≈0.30", effAll)
	}
}

// TestPackingTradeoff: for a long-rectangle shape (large N), packing
// beats no packing; for a tiny problem it must not be forced on.
func TestPackingTradeoff(t *testing.T) {
	chip := hw.KP920()
	big := func(pack PackMode) Estimate {
		return estimateFor(t, chip, 256, 3136, 64, Options{Pack: pack, Rotate: true, Fuse: true})
	}
	if p, n := big(PackOnline), big(PackNone); p.Cycles >= n.Cycles {
		t.Errorf("packing not beneficial at N=3136: packed %.0f vs none %.0f", p.Cycles, n.Cycles)
	}
	small := func(pack PackMode) Estimate {
		return estimateFor(t, chip, 16, 16, 16, Options{Pack: pack, Rotate: true, Fuse: true})
	}
	if p, n := small(PackOnline), small(PackNone); n.Cycles > p.Cycles {
		t.Errorf("no-packing should win on 16^3: packed %.0f vs none %.0f", p.Cycles, n.Cycles)
	}
}

// TestEstimateDeterministic: two estimates of the same plan agree.
func TestEstimateDeterministic(t *testing.T) {
	chip := hw.M2()
	plan, err := NewPlan(chip, 48, 56, 40, AutoOptions(chip))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := plan.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := plan.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if e1.Cycles != e2.Cycles {
		t.Errorf("nondeterministic estimate: %.0f vs %.0f", e1.Cycles, e2.Cycles)
	}
}
