package core

import (
	"autogemm/internal/hw"
	"autogemm/internal/tiling"
)

// paddedStrategy returns the OpenBLAS-style fixed-tile-with-padding
// tiler for a chip (Fig 5-a).
func paddedStrategy(chip *hw.Chip) tiling.Strategy {
	return tiling.OpenBLASStyle{T: tiling.DefaultStaticTile(chip.Lanes), Lanes: chip.Lanes}
}

// edgeStrategy returns the LIBXSMM-style fixed-tile-with-edge-tiles
// tiler for a chip (Fig 5-b).
func edgeStrategy(chip *hw.Chip) tiling.Strategy {
	return tiling.LIBXSMMStyle{T: tiling.DefaultStaticTile(chip.Lanes), Lanes: chip.Lanes}
}

// PaddedStrategy and EdgeStrategy are exported for the baseline library
// models in package baselines.
func PaddedStrategy(chip *hw.Chip) tiling.Strategy { return paddedStrategy(chip) }

// EdgeStrategy is the exported form of edgeStrategy.
func EdgeStrategy(chip *hw.Chip) tiling.Strategy { return edgeStrategy(chip) }
