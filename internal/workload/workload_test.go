package workload

import "testing"

// TestTableVShapes verifies the ResNet-50 layer list against Table V.
func TestTableVShapes(t *testing.T) {
	rn := ResNet50()
	if len(rn) != 20 {
		t.Fatalf("Table V has 20 layers, got %d", len(rn))
	}
	spot := map[string][3]int{
		"L1":  {64, 12544, 147},
		"L4":  {256, 3136, 64},
		"L8":  {512, 784, 128},
		"L12": {256, 196, 2304},
		"L17": {512, 49, 4608},
		"L20": {512, 49, 2048},
	}
	for name, want := range spot {
		s, err := ResNet50Layer(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.M != want[0] || s.N != want[1] || s.K != want[2] {
			t.Errorf("%s = %v, want %v", name, s, want)
		}
	}
	if _, err := ResNet50Layer("L21"); err == nil {
		t.Error("phantom layer accepted")
	}
}

// TestClassify checks the §II-A taxonomy on representative shapes.
func TestClassify(t *testing.T) {
	cases := []struct {
		s    Shape
		want Kind
	}{
		{Shape{M: 64, N: 64, K: 64}, Small},
		{Shape{M: 8, N: 8, K: 8}, Small},
		{Shape{M: 64, N: 12544, K: 147}, LongRectangular},
		{Shape{M: 2048, N: 49, K: 512}, TallSkinny},
		{Shape{M: 512, N: 512, K: 512}, Regular},
	}
	for _, c := range cases {
		if got := c.s.Classify(); got != c.want {
			t.Errorf("Classify(%v) = %d, want %d", c.s, got, c.want)
		}
	}
}

// TestSweepsWellFormed sanity-checks the generated sweeps.
func TestSweepsWellFormed(t *testing.T) {
	for _, s := range SmallSweep() {
		if s.M != s.N || s.N != s.K || s.M < 1 || s.M > 128 {
			t.Errorf("small sweep shape %v not cubic in 1..128", s)
		}
	}
	for _, s := range StepSweep() {
		if s.M != 64 || s.N != 64 {
			t.Errorf("step sweep shape %v should fix M=N=64", s)
		}
	}
	if n := len(Fig7Blocks()); n < 4 {
		t.Errorf("Fig 7 needs several block shapes, got %d", n)
	}
}

// TestModels verifies the four Fig 12 networks.
func TestModels(t *testing.T) {
	models := Models()
	if len(models) != 4 {
		t.Fatalf("Fig 12 uses 4 models, got %d", len(models))
	}
	names := map[string]bool{}
	for _, m := range models {
		names[m.Name] = true
		if len(m.GEMMs) == 0 {
			t.Errorf("%s has no GEMM layers", m.Name)
		}
		if m.OtherFrac <= 0 || m.OtherFrac >= 1 {
			t.Errorf("%s OtherFrac %.2f out of range", m.Name, m.OtherFrac)
		}
		for _, lg := range m.GEMMs {
			if lg.Count < 1 || lg.Shape.M < 1 || lg.Shape.N < 1 || lg.Shape.K < 1 {
				t.Errorf("%s has degenerate layer %v", m.Name, lg)
			}
		}
	}
	for _, want := range []string{"ResNet50", "Inception-V3", "MobileNet-V1", "SqueezeNet"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
}

// TestFLOPs checks the arithmetic.
func TestFLOPs(t *testing.T) {
	if got := (Shape{M: 2, N: 3, K: 4}).FLOPs(); got != 48 {
		t.Errorf("FLOPs = %g, want 48", got)
	}
}
