package workload

import (
	"testing"
	"testing/quick"
)

// TestIm2ColMatchesTableV: the im2col lowering of the real ResNet-50
// convolution parameters reproduces the published Table V GEMM shapes —
// the provenance check for the paper's workload.
func TestIm2ColMatchesTableV(t *testing.T) {
	for _, conv := range ResNet50Convs() {
		if err := conv.Validate(); err != nil {
			t.Fatal(err)
		}
		got := conv.Im2ColGEMM()
		want, err := ResNet50Layer(conv.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.M != want.M || got.N != want.N || got.K != want.K {
			t.Errorf("%s: im2col gives %dx%dx%d, Table V says %dx%dx%d",
				conv.Name, got.M, got.N, got.K, want.M, want.N, want.K)
		}
	}
}

// TestConvOutputDims spot-checks the spatial arithmetic.
func TestConvOutputDims(t *testing.T) {
	c := Conv2D{InC: 3, OutC: 64, InH: 224, InW: 224, KH: 7, KW: 7,
		StrideH: 2, StrideW: 2, PadH: 3, PadW: 3}
	if c.OutH() != 112 || c.OutW() != 112 {
		t.Errorf("conv1 output %dx%d, want 112x112", c.OutH(), c.OutW())
	}
}

// TestConvValidate rejects malformed layers.
func TestConvValidate(t *testing.T) {
	bad := []Conv2D{
		{InC: 0, OutC: 1, InH: 8, InW: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 1, OutC: 1, InH: 4, InW: 4, KH: 9, KW: 1, StrideH: 1, StrideW: 1},
		{InC: 1, OutC: 1, InH: 8, InW: 8, KH: 1, KW: 1, StrideH: 0, StrideW: 1},
		{InC: 1, OutC: 1, InH: 8, InW: 8, KH: 1, KW: 1, StrideH: 1, StrideW: 1, PadH: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}

// TestConvGEMMProperty: the lowered K dimension always equals
// InC·KH·KW and N matches the output plane, for random valid layers.
func TestConvGEMMProperty(t *testing.T) {
	f := func(inC, outC, size, k, stride uint8) bool {
		c := Conv2D{
			InC: int(inC)%64 + 1, OutC: int(outC)%64 + 1,
			InH: int(size)%56 + 8, InW: int(size)%56 + 8,
			KH: int(k)%3 + 1, KW: int(k)%3 + 1,
			StrideH: int(stride)%2 + 1, StrideW: int(stride)%2 + 1,
			PadH: 1, PadW: 1,
		}
		if c.Validate() != nil {
			return true // skip invalid combinations
		}
		s := c.Im2ColGEMM()
		return s.K == c.InC*c.KH*c.KW && s.N == c.OutH()*c.OutW() && s.M == c.OutC
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
