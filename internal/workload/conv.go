package workload

import "fmt"

// Conv2D describes one convolution layer. The paper's irregular GEMMs
// come from lowering such layers with im2col (§I, Table V); this type
// performs that lowering so DNN workloads can be specified by their
// convolution parameters and checked against the published shapes.
type Conv2D struct {
	Name             string
	InC, OutC        int // channels
	InH, InW         int // input spatial size
	KH, KW           int // kernel size
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height.
func (c Conv2D) OutH() int { return (c.InH+2*c.PadH-c.KH)/c.StrideH + 1 }

// OutW returns the output width.
func (c Conv2D) OutW() int { return (c.InW+2*c.PadW-c.KW)/c.StrideW + 1 }

// Im2ColGEMM returns the GEMM this layer lowers to: the filter matrix
// (OutC × InC·KH·KW) times the im2col patch matrix
// (InC·KH·KW × OutH·OutW), i.e. M = OutC, N = OutH·OutW, K = InC·KH·KW.
func (c Conv2D) Im2ColGEMM() Shape {
	return Shape{
		Name: c.Name,
		M:    c.OutC,
		N:    c.OutH() * c.OutW(),
		K:    c.InC * c.KH * c.KW,
	}
}

// Validate checks the parameters are physically meaningful.
func (c Conv2D) Validate() error {
	switch {
	case c.InC < 1 || c.OutC < 1:
		return fmt.Errorf("workload: conv %s: channels must be positive", c.Name)
	case c.KH < 1 || c.KW < 1 || c.KH > c.InH+2*c.PadH || c.KW > c.InW+2*c.PadW:
		return fmt.Errorf("workload: conv %s: kernel does not fit input", c.Name)
	case c.StrideH < 1 || c.StrideW < 1:
		return fmt.Errorf("workload: conv %s: strides must be positive", c.Name)
	case c.PadH < 0 || c.PadW < 0:
		return fmt.Errorf("workload: conv %s: negative padding", c.Name)
	}
	return nil
}

// ResNet50Convs returns representative convolution layers of ResNet-50
// (batch 1, 224×224 input) whose im2col lowerings are exactly the
// Table V GEMM shapes — the provenance of the paper's irregular
// workload.
func ResNet50Convs() []Conv2D {
	return []Conv2D{
		// conv1: 7x7/2, 3→64 on 224² (+3 pad) → 64 × 12544 × 147 = L1.
		{Name: "L1", InC: 3, OutC: 64, InH: 224, InW: 224, KH: 7, KW: 7,
			StrideH: 2, StrideW: 2, PadH: 3, PadW: 3},
		// conv2_x 1x1, 64→64 on 56² → 64 × 3136 × 64 = L2.
		{Name: "L2", InC: 64, OutC: 64, InH: 56, InW: 56, KH: 1, KW: 1,
			StrideH: 1, StrideW: 1},
		// conv2_x 3x3, 64→64 on 56² (+1 pad) → 64 × 3136 × 576 = L3.
		{Name: "L3", InC: 64, OutC: 64, InH: 56, InW: 56, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		// conv2_x expand 1x1, 64→256 on 56² → 256 × 3136 × 64 = L4.
		{Name: "L4", InC: 64, OutC: 256, InH: 56, InW: 56, KH: 1, KW: 1,
			StrideH: 1, StrideW: 1},
		// conv2_x reduce 1x1, 256→64 on 56² → 64 × 3136 × 256 = L5.
		{Name: "L5", InC: 256, OutC: 64, InH: 56, InW: 56, KH: 1, KW: 1,
			StrideH: 1, StrideW: 1},
		// conv3_x 3x3, 128→128 on 28² (+1 pad) → 128 × 784 × 1152 = L7.
		{Name: "L7", InC: 128, OutC: 128, InH: 28, InW: 28, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		// conv5_x 3x3, 512→512 on 7² (+1 pad) → 512 × 49 × 4608 = L17.
		{Name: "L17", InC: 512, OutC: 512, InH: 7, InW: 7, KH: 3, KW: 3,
			StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		// conv5_x expand 1x1, 512→2048 on 7² → 2048 × 49 × 512 = L18.
		{Name: "L18", InC: 512, OutC: 2048, InH: 7, InW: 7, KH: 1, KW: 1,
			StrideH: 1, StrideW: 1},
	}
}
