// Package workload provides the evaluation inputs of §V: the ResNet-50
// GEMM shapes of Table V, the small-matrix sweeps of Fig 8, and the
// per-layer GEMM traces of the four DNN models used in the end-to-end
// TNN evaluation of Fig 12.
package workload

import "fmt"

// Shape is one GEMM problem.
type Shape struct {
	Name    string
	M, N, K int
}

// FLOPs returns 2·M·N·K.
func (s Shape) FLOPs() float64 { return 2 * float64(s.M) * float64(s.N) * float64(s.K) }

// String implements fmt.Stringer.
func (s Shape) String() string {
	if s.Name != "" {
		return fmt.Sprintf("%s(%dx%dx%d)", s.Name, s.M, s.N, s.K)
	}
	return fmt.Sprintf("%dx%dx%d", s.M, s.N, s.K)
}

// Kind classifies a shape the way §II-A does.
type Kind int

// Shape classes.
const (
	Small Kind = iota
	TallSkinny
	LongRectangular
	Regular
)

// Classify returns the §II-A class of the shape: small when every
// dimension is at most 80 (the LIBXSMM small-GEMM bound the paper
// cites), otherwise irregular if the aspect ratio is extreme.
func (s Shape) Classify() Kind {
	maxd := max3(s.M, s.N, s.K)
	mind := min3(s.M, s.N, s.K)
	switch {
	case maxd <= 80:
		return Small
	case mind*8 <= maxd && s.N >= s.M:
		return LongRectangular
	case mind*8 <= maxd:
		return TallSkinny
	default:
		return Regular
	}
}

// ResNet50 returns the 20 irregular GEMM shapes of Table V.
func ResNet50() []Shape {
	return []Shape{
		{"L1", 64, 12544, 147},
		{"L2", 64, 3136, 64},
		{"L3", 64, 3136, 576},
		{"L4", 256, 3136, 64},
		{"L5", 64, 3136, 256},
		{"L6", 128, 784, 256},
		{"L7", 128, 784, 1152},
		{"L8", 512, 784, 128},
		{"L9", 512, 784, 256},
		{"L10", 128, 784, 512},
		{"L11", 256, 196, 512},
		{"L12", 256, 196, 2304},
		{"L13", 1024, 196, 256},
		{"L14", 1024, 196, 512},
		{"L15", 256, 196, 1024},
		{"L16", 512, 49, 1024},
		{"L17", 512, 49, 4608},
		{"L18", 2048, 49, 512},
		{"L19", 2048, 49, 1024},
		{"L20", 512, 49, 2048},
	}
}

// ResNet50Layer returns a Table V layer by name (e.g. "L4").
func ResNet50Layer(name string) (Shape, error) {
	for _, s := range ResNet50() {
		if s.Name == name {
			return s, nil
		}
	}
	return Shape{}, fmt.Errorf("workload: no ResNet-50 layer %q", name)
}

// SmallSweep returns the cubic sweep of Fig 8: M = N = K from 1 to 128.
// The paper samples the full range; points lists the sampled sizes.
func SmallSweep() []Shape {
	sizes := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80, 96, 112, 128}
	out := make([]Shape, 0, len(sizes))
	for _, s := range sizes {
		out = append(out, Shape{M: s, N: s, K: s})
	}
	return out
}

// StepSweep returns the Fig 6 shape set: growing K at fixed M and N,
// covering the K = 4 fusion case and the K = 64..256 L1-cliff range.
func StepSweep() []Shape {
	var out []Shape
	for _, k := range []int{4, 8, 16, 32, 64, 128, 256} {
		out = append(out, Shape{M: 64, N: 64, K: k})
	}
	return out
}

// Fig7Blocks returns the sub-matrix shapes of the micro-tiling strategy
// comparison (Fig 7): the divisible cases where all strategies coincide
// (80×32, 25×64) and the irregular cases where DMT wins (26×64, 26×36
// and friends).
func Fig7Blocks() []Shape {
	return []Shape{
		{M: 80, N: 32, K: 64},
		{M: 25, N: 64, K: 64},
		{M: 26, N: 64, K: 64},
		{M: 26, N: 36, K: 64},
		{M: 23, N: 52, K: 64},
		{M: 31, N: 44, K: 64},
	}
}

// DNNModel is a per-layer GEMM trace of one network plus its non-GEMM
// operator time share, for the Fig 12 end-to-end evaluation.
type DNNModel struct {
	Name string
	// GEMMs are the convolution/FC layers lowered to GEMM (im2col),
	// with Count occurrences per inference.
	GEMMs []LayerGEMM
	// OtherFrac is the fraction of total OpenBLAS-backend inference time
	// spent in non-GEMM operators (pooling, activations, ...).
	OtherFrac float64
}

// LayerGEMM is a repeated GEMM within a model.
type LayerGEMM struct {
	Shape Shape
	Count int
}

// Models returns the four networks of Fig 12. GEMM lists are the
// dominant distinct shapes of each architecture (batch 1, im2col
// lowering); OtherFrac values follow TNN operator profiles where
// lightweight models spend relatively more time outside GEMM.
func Models() []DNNModel {
	rn := ResNet50()
	rnLayers := make([]LayerGEMM, 0, len(rn))
	counts := []int{1, 1, 3, 3, 4, 1, 4, 1, 3, 4, 1, 6, 1, 5, 6, 1, 3, 1, 2, 3}
	for i, s := range rn {
		rnLayers = append(rnLayers, LayerGEMM{Shape: s, Count: counts[i]})
	}
	return []DNNModel{
		{Name: "ResNet50", GEMMs: rnLayers, OtherFrac: 0.18},
		{Name: "Inception-V3", OtherFrac: 0.22, GEMMs: []LayerGEMM{
			{Shape{"conv1", 32, 34225, 27}, 1},
			{Shape{"conv2", 32, 33489, 288}, 1},
			{Shape{"conv3", 64, 33489, 288}, 1},
			{Shape{"mix5", 64, 1369, 2304}, 4},
			{Shape{"mix6", 192, 289, 1728}, 8},
			{Shape{"mix7", 320, 64, 5760}, 4},
			{Shape{"fc", 1000, 1, 2048}, 1},
		}},
		{Name: "MobileNet-V1", OtherFrac: 0.30, GEMMs: []LayerGEMM{
			{Shape{"conv1", 32, 12544, 27}, 1},
			{Shape{"pw2", 64, 12544, 32}, 1},
			{Shape{"pw3", 128, 3136, 64}, 2},
			{Shape{"pw4", 256, 784, 128}, 2},
			{Shape{"pw5", 512, 196, 256}, 6},
			{Shape{"pw6", 1024, 49, 512}, 2},
			{Shape{"fc", 1000, 1, 1024}, 1},
		}},
		{Name: "SqueezeNet", OtherFrac: 0.26, GEMMs: []LayerGEMM{
			{Shape{"conv1", 96, 12100, 147}, 1},
			{Shape{"squeeze", 16, 2916, 96}, 2},
			{Shape{"expand1", 64, 2916, 16}, 4},
			{Shape{"expand3", 64, 2916, 144}, 4},
			{Shape{"mid", 32, 676, 256}, 4},
			{Shape{"late", 64, 169, 384}, 4},
			{Shape{"conv10", 1000, 169, 512}, 1},
		}},
	}
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
