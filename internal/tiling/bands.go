package tiling

import (
	"autogemm/internal/mkernel"
)

// Band is one row strip of a panel: a sequence of tiles of equal height
// and contiguous columns, executable as a single fused band kernel (or
// tile by tile when fusion is off). Banding is the seam between a
// tiling and the kernels that run it: the planner enumerates kernel
// cache keys from bands, the executor lowers bands to compiled calls,
// and the plan auditor re-derives both to cross-check a loaded plan —
// all three must agree, which is why the decomposition lives here.
type Band struct {
	MR   int // tile height shared by every segment
	Row  int // row offset inside the block
	Col  int // column offset inside the block (lane-aligned)
	Segs []mkernel.Segment
}

// Width returns the band's n extent.
func (b Band) Width() int {
	w := 0
	for _, s := range b.Segs {
		w += s.Tile.NR * s.Count
	}
	return w
}

// Tiles returns the number of micro-tiles the band runs.
func (b Band) Tiles() int {
	n := 0
	for _, s := range b.Segs {
		n += s.Count
	}
	return n
}

// Bands decomposes the tiling into bands, one per row strip of each
// panel (different panels split rows differently, so banding is
// per-panel). The expansion order matches Rects: row-major across the
// block.
func (tl Tiling) Bands(lanes int) []Band {
	var bands []Band
	rects := tl.Rects(lanes)
	i := 0
	for i < len(rects) {
		j := i
		segs := []mkernel.Segment{}
		cur := rects[i]
		// Collect rects in this row with contiguous columns and equal MR.
		col := cur.Col
		for j < len(rects) && rects[j].Row == cur.Row && rects[j].Tile.MR == cur.Tile.MR && rects[j].Col == col {
			t := rects[j].Tile
			if n := len(segs); n > 0 && segs[n-1].Tile == t {
				segs[n-1].Count++
			} else {
				segs = append(segs, mkernel.Segment{Tile: t, Count: 1})
			}
			col += t.NR
			j++
		}
		bands = append(bands, Band{MR: cur.Tile.MR, Row: cur.Row, Col: cur.Col, Segs: segs})
		i = j
	}
	return bands
}
