package tiling

import (
	"testing"
	"testing/quick"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
)

func kp920Params() perfmodel.Params { return perfmodel.FromChip(hw.KP920()) }

func newDMT(chip *hw.Chip) *DMT {
	return &DMT{Params: perfmodel.FromChip(chip), Opt: perfmodel.Opt{Rotate: true, Fuse: true}}
}

// TestFig5OpenBLAS: the 26×36 example block tiled with 5×16 and padding
// yields 18 micro tiles (⌈26/5⌉ × ⌈36/16⌉), all full-sized.
func TestFig5OpenBLAS(t *testing.T) {
	s := OpenBLASStyle{T: mkernel.Tile{MR: 5, NR: 16}, Lanes: 4}
	tl, err := s.Tile(26, 36, 64)
	if err != nil {
		t.Fatal(err)
	}
	rects := tl.Rects(4)
	if len(rects) != 18 {
		t.Errorf("OpenBLAS-style tiles = %d, want 18 (Fig 5-a)", len(rects))
	}
	for _, r := range rects {
		if r.Tile != (mkernel.Tile{MR: 5, NR: 16}) {
			t.Errorf("padded strategy produced non-uniform tile %v", r.Tile)
		}
	}
	if err := tl.Validate(4); err != nil {
		t.Error(err)
	}
}

// TestFig5LIBXSMM: same block with edge tiles: still 18 tiles, 8 of them
// low-AI (the right column of 6 and bottom band of 2), matching Fig 5-b.
func TestFig5LIBXSMM(t *testing.T) {
	s := LIBXSMMStyle{T: mkernel.Tile{MR: 5, NR: 16}, Lanes: 4}
	tl, err := s.Tile(26, 36, 64)
	if err != nil {
		t.Fatal(err)
	}
	if n := tl.TileCount(4); n != 18 {
		t.Errorf("LIBXSMM-style tiles = %d, want 18 (Fig 5-b)", n)
	}
	if low := tl.LowAICount(4, 6.0); low != 8 {
		t.Errorf("LIBXSMM-style low-AI tiles = %d, want 8 (Fig 5-b)", low)
	}
	if err := tl.Validate(4); err != nil {
		t.Error(err)
	}
}

// TestFig5DMT: DMT must beat both static strategies on the example block:
// fewer tiles than 18, at most 2 low-AI tiles, and lower projected cost.
func TestFig5DMT(t *testing.T) {
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2(), hw.M2()} {
		d := newDMT(chip)
		tl, err := d.Tile(26, 36, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := tl.Validate(4); err != nil {
			t.Fatalf("%s: %v", chip.Name, err)
		}
		n := tl.TileCount(4)
		if n >= 18 {
			t.Errorf("%s: DMT tiles = %d, want < 18", chip.Name, n)
		}
		if low := tl.LowAICount(4, chip.SigmaAI); low > 2 {
			t.Errorf("%s: DMT low-AI tiles = %d, want <= 2 (Fig 5-c)", chip.Name, low)
		}
		p := d.Params
		opt := d.Opt
		xsmm, _ := LIBXSMMStyle{T: mkernel.Tile{MR: 5, NR: 16}, Lanes: 4}.Tile(26, 36, 64)
		if dc, xc := tl.Cost(p, 64, opt), xsmm.Cost(p, 64, opt); dc > xc {
			t.Errorf("%s: DMT cost %.0f above LIBXSMM-style %.0f", chip.Name, dc, xc)
		}
	}
}

// TestDMTDivisibleBlockMatchesStatic: when the block divides evenly by
// the static tile (80×32, 25×64 in Fig 7), all strategies produce the
// same uniform 5×16 tiling and DMT has no advantage.
func TestDMTDivisibleBlockMatchesStatic(t *testing.T) {
	d := newDMT(hw.KP920())
	for _, c := range []struct{ m, n int }{{80, 32}, {25, 64}} {
		tl, err := d.Tile(c.m, c.n, 64)
		if err != nil {
			t.Fatal(err)
		}
		want := (c.m / 5) * (c.n / 16)
		if got := tl.TileCount(4); got != want {
			t.Errorf("%dx%d: DMT tiles = %d, want %d (uniform 5x16)", c.m, c.n, got, want)
		}
		for _, r := range tl.Rects(4) {
			if r.Tile != (mkernel.Tile{MR: 5, NR: 16}) {
				t.Errorf("%dx%d: DMT chose %v, want 5x16", c.m, c.n, r.Tile)
			}
		}
	}
}

// TestDMTCoverageProperty: for arbitrary block shapes the DMT tiling
// covers every cell exactly once.
func TestDMTCoverageProperty(t *testing.T) {
	d := newDMT(hw.Graviton2())
	f := func(mRaw, nRaw uint8) bool {
		m := int(mRaw)%60 + 1
		n := int(nRaw)%60 + 1
		tl, err := d.Tile(m, n, 32)
		if err != nil {
			return false
		}
		return tl.Validate(4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestStaticCoverageProperty: both static strategies also produce valid
// covers for arbitrary blocks.
func TestStaticCoverageProperty(t *testing.T) {
	f := func(mRaw, nRaw uint8, padded bool) bool {
		m := int(mRaw)%80 + 1
		n := int(nRaw)%80 + 1
		var s Strategy
		if padded {
			s = OpenBLASStyle{T: DefaultStaticTile(4), Lanes: 4}
		} else {
			s = LIBXSMMStyle{T: DefaultStaticTile(4), Lanes: 4}
		}
		tl, err := s.Tile(m, n, 16)
		if err != nil {
			return false
		}
		return tl.Validate(4) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDMTNeverWorseThanStatic: across a shape sweep, DMT's projected
// cost is never above either static strategy's (it can always pick the
// degenerate split).
func TestDMTNeverWorseThanStatic(t *testing.T) {
	p := kp920Params()
	opt := perfmodel.Opt{Rotate: true, Fuse: true}
	d := &DMT{Params: p, Opt: opt}
	shapes := []struct{ m, n int }{{26, 36}, {26, 64}, {23, 40}, {17, 28}, {31, 52}, {7, 12}, {64, 64}}
	for _, s := range shapes {
		dt, err := d.Tile(s.m, s.n, 64)
		if err != nil {
			t.Fatal(err)
		}
		xt, _ := LIBXSMMStyle{T: DefaultStaticTile(4), Lanes: 4}.Tile(s.m, s.n, 64)
		if dc, xc := dt.Cost(p, 64, opt), xt.Cost(p, 64, opt); dc > xc*1.0001 {
			t.Errorf("%dx%d: DMT %.0f worse than LIBXSMM-style %.0f", s.m, s.n, dc, xc)
		}
	}
}

// TestRenderOutput: the Fig 5 renderer emits a complete grid.
func TestRenderOutput(t *testing.T) {
	d := newDMT(hw.KP920())
	tl, err := d.Tile(26, 36, 64)
	if err != nil {
		t.Fatal(err)
	}
	out := tl.Render(4)
	if len(out) < 26*37 {
		t.Errorf("render too short:\n%s", out)
	}
}

// TestEmptyBlockRejected: all strategies reject degenerate blocks.
func TestEmptyBlockRejected(t *testing.T) {
	strategies := []Strategy{
		OpenBLASStyle{T: DefaultStaticTile(4), Lanes: 4},
		LIBXSMMStyle{T: DefaultStaticTile(4), Lanes: 4},
		newDMT(hw.KP920()),
	}
	for _, s := range strategies {
		if _, err := s.Tile(0, 16, 8); err == nil {
			t.Errorf("%s accepted m=0", s.Name())
		}
		if _, err := s.Tile(16, 0, 8); err == nil {
			t.Errorf("%s accepted n=0", s.Name())
		}
	}
}

// TestSVETiling: DMT on the A64FX 16-lane configuration.
func TestSVETiling(t *testing.T) {
	d := newDMT(hw.A64FX())
	tl, err := d.Tile(40, 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Validate(16); err != nil {
		t.Error(err)
	}
}
