// Package tiling partitions a cache-blocked sub-matrix C(m_c, n_c) into
// register tiles. It implements the paper's Dynamic Micro-Tiling
// algorithm (Algorithm 1, §IV-A2) and, for comparison, the two static
// strategies of Fig 5: OpenBLAS-style single-tile-with-padding and
// LIBXSMM-style single-tile-with-edge-tiles.
package tiling

import (
	"fmt"
	"sort"
	"strings"

	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
)

// Panel is a rectangular region tiled uniformly with one register tile.
// Full tiles cover (M/T.MR)×(N/T.NR) positions; any m or n remainder is
// covered by correspondingly narrowed edge tiles (or, when Padded, by
// full tiles computing past the logical edge into packing padding).
type Panel struct {
	Row, Col int // offset inside the block
	M, N     int // extent
	Tile     mkernel.Tile
	Padded   bool
}

// Tiling is a complete cover of an m_c × n_c block.
type Tiling struct {
	MC, NC   int
	Panels   []Panel
	Strategy string
}

// Rect is one concrete micro-tile placement.
type Rect struct {
	Row, Col int
	Tile     mkernel.Tile // kernel shape actually run
	M, N     int          // useful extent (≤ Tile when padded)
}

// Strategy produces tilings for blocks.
type Strategy interface {
	Name() string
	// Tile partitions an m×n block for σ_lane-wide vectors at depth k_c
	// (depth affects projected tile costs and hence DMT's choices).
	Tile(m, n, kc int) (Tiling, error)
}

// quantN rounds n up to a lane multiple; packed buffers provide the
// padding so kernels can always issue full vector loads.
func quantN(n, lanes int) int {
	return (n + lanes - 1) / lanes * lanes
}

// expandPanel lists the concrete tiles of one panel.
func expandPanel(p Panel, lanes int) []Rect {
	var rects []Rect
	t := p.Tile
	nQ := quantN(p.N, lanes)
	for r := 0; r < p.M; r += t.MR {
		mr := min(t.MR, p.M-r)
		for c := 0; c < nQ; c += t.NR {
			nr := min(t.NR, nQ-c)
			kt := mkernel.Tile{MR: mr, NR: nr}
			useM, useN := mr, min(nr, p.N-c)
			if p.Padded {
				kt = t // full tile regardless; padding absorbs the edge
			}
			rects = append(rects, Rect{
				Row: p.Row + r, Col: p.Col + c, Tile: kt, M: useM, N: useN,
			})
		}
	}
	return rects
}

// Rects expands the tiling into concrete tiles in row-band order.
func (tl Tiling) Rects(lanes int) []Rect {
	var rects []Rect
	for _, p := range tl.Panels {
		rects = append(rects, expandPanel(p, lanes)...)
	}
	sort.Slice(rects, func(i, j int) bool {
		if rects[i].Row != rects[j].Row {
			return rects[i].Row < rects[j].Row
		}
		return rects[i].Col < rects[j].Col
	})
	return rects
}

// TileCount returns the number of micro-tiles the tiling runs.
func (tl Tiling) TileCount(lanes int) int { return len(tl.Rects(lanes)) }

// LowAICount counts tiles whose kernel shape falls below the σ_AI
// threshold — the quantity Fig 5 compares across strategies.
func (tl Tiling) LowAICount(lanes int, sigmaAI float64) int {
	n := 0
	for _, r := range tl.Rects(lanes) {
		if !r.Tile.ComputeBound(lanes, sigmaAI) {
			n++
		}
	}
	return n
}

// Cost projects the runtime of the whole tiling with the perfmodel
// (Eqn 13 composition): per row band, fused sequences of equal tiles.
func (tl Tiling) Cost(p perfmodel.Params, kc int, opt perfmodel.Opt) float64 {
	rects := tl.Rects(p.Lanes)
	total := 0.0
	i := 0
	for i < len(rects) {
		// Group a run of identical tiles in one band (same Row).
		j := i
		for j < len(rects) && rects[j].Row == rects[i].Row && rects[j].Tile == rects[i].Tile {
			j++
		}
		total += p.SequenceTime(rects[i].Tile, kc, j-i, opt)
		i = j
	}
	return total
}

// Validate checks that the tiling covers the block exactly once.
func (tl Tiling) Validate(lanes int) error {
	if tl.validatePanels() {
		return nil
	}
	return tl.validateCells(lanes)
}

// validatePanels proves exact-once coverage at panel granularity:
// expandPanel covers a non-padded panel exactly by construction, so
// in-bounds, pairwise-disjoint panels whose areas sum to the block area
// cover the block exactly once. This is the planner's hot case — the
// per-cell sweep below is O(m_c × n_c) and dominated the per-block
// planning cost on large blocks. Padded panels (whose overhang rules
// are judged per cell) and any violation fall back to the sweep, which
// also produces the precise error.
func (tl Tiling) validatePanels() bool {
	area := 0
	for i, p := range tl.Panels {
		if p.Padded || p.Tile.MR <= 0 || p.Tile.NR <= 0 {
			return false
		}
		if p.M <= 0 || p.N <= 0 || p.Row < 0 || p.Col < 0 ||
			p.Row+p.M > tl.MC || p.Col+p.N > tl.NC {
			return false
		}
		for _, q := range tl.Panels[:i] {
			if p.Row < q.Row+q.M && q.Row < p.Row+p.M &&
				p.Col < q.Col+q.N && q.Col < p.Col+p.N {
				return false
			}
		}
		area += p.M * p.N
	}
	return area == tl.MC*tl.NC
}

// validateCells is the exhaustive per-cell coverage check.
func (tl Tiling) validateCells(lanes int) error {
	covered := make([]bool, tl.MC*tl.NC)
	for _, r := range tl.Rects(lanes) {
		for i := 0; i < r.M; i++ {
			for j := 0; j < r.N; j++ {
				row, col := r.Row+i, r.Col+j
				if row >= tl.MC || col >= tl.NC {
					if r.Tile.MR > r.M || r.Tile.NR > r.N {
						continue // padded overhang
					}
					return fmt.Errorf("tiling: tile at (%d,%d) exceeds block", r.Row, r.Col)
				}
				idx := row*tl.NC + col
				if covered[idx] {
					return fmt.Errorf("tiling: cell (%d,%d) covered twice", row, col)
				}
				covered[idx] = true
			}
		}
	}
	for idx, c := range covered {
		if !c {
			return fmt.Errorf("tiling: cell (%d,%d) uncovered", idx/tl.NC, idx%tl.NC)
		}
	}
	return nil
}

// Render draws the tiling as ASCII art for inspection (the Fig 5
// illustrations). Each tile is outlined by its id letter.
func (tl Tiling) Render(lanes int) string {
	grid := make([][]byte, tl.MC)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", tl.NC))
	}
	glyphs := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	for k, r := range tl.Rects(lanes) {
		g := glyphs[k%len(glyphs)]
		for i := 0; i < r.M && r.Row+i < tl.MC; i++ {
			for j := 0; j < r.N && r.Col+j < tl.NC; j++ {
				grid[r.Row+i][r.Col+j] = g
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s %dx%d (%d tiles)\n", tl.Strategy, tl.MC, tl.NC, tl.TileCount(lanes))
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
