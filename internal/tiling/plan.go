package tiling

import (
	"autogemm/internal/mkernel"
	"autogemm/internal/plan"
)

// This file makes the tilers plan *producers*: a computed Tiling
// converts losslessly into the serializable plan form and back, so the
// Algorithm-1 panel splits survive process exits instead of being
// re-derived per call.

// ToPlanBlock serializes the tiling as a plan block. LoadLatency and
// Cost are recorded by the planner, which knows the residency model the
// tiler was parameterized with.
func (tl Tiling) ToPlanBlock() plan.Block {
	b := plan.Block{M: tl.MC, N: tl.NC, Tiler: tl.Strategy}
	for _, p := range tl.Panels {
		b.Panels = append(b.Panels, plan.Panel{
			Row: p.Row, Col: p.Col, M: p.M, N: p.N,
			MR: p.Tile.MR, NR: p.Tile.NR, Padded: p.Padded,
		})
	}
	return b
}

// FromPlanBlock reconstructs a Tiling from its serialized form. The
// caller must still Validate the result against the lane width — a
// corrupted or hand-edited registry entry fails there, not here.
func FromPlanBlock(b plan.Block) Tiling {
	tl := Tiling{MC: b.M, NC: b.N, Strategy: b.Tiler}
	for _, p := range b.Panels {
		tl.Panels = append(tl.Panels, Panel{
			Row: p.Row, Col: p.Col, M: p.M, N: p.N,
			Tile:   mkernel.Tile{MR: p.MR, NR: p.NR},
			Padded: p.Padded,
		})
	}
	return tl
}
