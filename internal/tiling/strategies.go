package tiling

import (
	"fmt"

	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
)

// DefaultStaticTile returns the fixed main tile the static strategies
// use: 5×16 for NEON (OpenBLAS's armv8 sgemm kernel shape, the tile of
// the Fig 5 example) and the highest-AI preferred tile otherwise.
func DefaultStaticTile(lanes int) mkernel.Tile {
	if lanes == 4 {
		return mkernel.Tile{MR: 5, NR: 16}
	}
	return mkernel.PreferredTiles(lanes)[0]
}

// OpenBLASStyle tiles with a single fixed shape and pads the edges
// (Fig 5-a): corner tiles compute full-size results into packing padding,
// wasting the overhang work.
type OpenBLASStyle struct {
	T     mkernel.Tile
	Lanes int
}

// Name implements Strategy.
func (s OpenBLASStyle) Name() string { return "openblas-pad" }

// Tile implements Strategy.
func (s OpenBLASStyle) Tile(m, n, kc int) (Tiling, error) {
	if m <= 0 || n <= 0 {
		return Tiling{}, fmt.Errorf("tiling: empty block %dx%d", m, n)
	}
	return Tiling{MC: m, NC: n, Strategy: s.Name(), Panels: []Panel{
		{M: m, N: n, Tile: s.T, Padded: true},
	}}, nil
}

// LIBXSMMStyle tiles the interior with a fixed shape and the edges with
// exact-fit smaller tiles (Fig 5-b). Edge tiles can have very low
// arithmetic intensity.
type LIBXSMMStyle struct {
	T     mkernel.Tile
	Lanes int
}

// Name implements Strategy.
func (s LIBXSMMStyle) Name() string { return "libxsmm-edge" }

// Tile implements Strategy.
func (s LIBXSMMStyle) Tile(m, n, kc int) (Tiling, error) {
	if m <= 0 || n <= 0 {
		return Tiling{}, fmt.Errorf("tiling: empty block %dx%d", m, n)
	}
	return Tiling{MC: m, NC: n, Strategy: s.Name(), Panels: []Panel{
		{M: m, N: n, Tile: s.T},
	}}, nil
}

// DMT is the paper's Dynamic Micro-Tiling (Algorithm 1): split the block
// into up to four panels by (n_front, m_front_up, m_back_up), choose the
// best uniform tile per panel by projected runtime, and take the split
// minimizing the total (Eqn 13). The projection — and therefore the
// chosen tiling — depends on the chip parameters, reproducing the
// paper's observation that the best tiling differs between high-σ_AI
// (KP920) and low-σ_AI (Graviton2/M2) hardware.
type DMT struct {
	Params perfmodel.Params
	Opt    perfmodel.Opt

	// Candidates narrows the tile set considered by T(m,n); nil means
	// every generatable tile (preferred tiles first is implicit in cost).
	Candidates []mkernel.Tile
}

// Name implements Strategy.
func (d *DMT) Name() string { return "dmt" }

type panelChoice struct {
	cost float64
	tile mkernel.Tile
}

// candidates returns the tile set T(m', n') minimizes over: the
// explicit restriction when one is set, otherwise every generatable
// tile (subject to the rotation register-slack rule).
func (d *DMT) candidates() []mkernel.Tile {
	if d.Candidates != nil {
		return d.Candidates
	}
	var cands []mkernel.Tile
	lanes := d.Params.Lanes
	for _, t := range mkernel.FeasibleTiles(lanes) {
		if !t.Generatable(lanes) {
			continue
		}
		// With rotation enabled, reserve spare registers for the
		// rotated A/B buffers (the reason Table II excludes shapes
		// like 7×12 that fill the register file exactly): a tile with
		// no slack cannot pipeline and stalls on every reload.
		if d.Opt.Rotate && t.RegistersNeeded(lanes) > 30 {
			continue
		}
		cands = append(cands, t)
	}
	return cands
}

// bestTile is Algorithm 1's inner T(m', n'): the cheapest uniform cover
// of an mm×nn panel over the candidate set, falling back to the
// smallest strip tile when nothing fits.
func (d *DMT) bestTile(cands []mkernel.Tile, mm, nn, kc int) panelChoice {
	best := panelChoice{cost: -1}
	for _, t := range cands {
		if t.MR > mm || t.NR > nn {
			continue
		}
		c := d.gridCost(t, mm, nn, kc)
		if best.cost < 0 || c < best.cost {
			best = panelChoice{cost: c, tile: t}
		}
	}
	if best.cost < 0 {
		// Fall back to the smallest strip tile.
		t := mkernel.Tile{MR: min(mm, mkernel.MaxMR), NR: d.Params.Lanes}
		best = panelChoice{cost: d.gridCost(t, mm, nn, kc), tile: t}
	}
	return best
}

// Search is one DMT dynamic program opened up for incremental fill.
// The memo table T(m', n') has no cell-to-cell dependencies — gridCost
// never recurses — so disjoint row ranges can be filled from different
// goroutines race-free and the whole DP parallelizes trivially:
//
//	s, _ := d.NewSearch(m, n, kc)
//	// fan FillRows(lo, hi) over workers, barrier, then
//	tl, _ := s.Finish()
//
// Finish lazily computes any cells the fill skipped, so a Search also
// works fully sequentially — DMT.Tile is exactly NewSearch + Finish.
type Search struct {
	d      *DMT
	m, n   int
	kc     int
	lanes  int
	nQ     int
	nSteps int
	cands  []mkernel.Tile
	memo   []panelChoice
}

// NewSearch prepares the dynamic program for one block. The memo is
// allocated up front; nothing is computed yet.
func (d *DMT) NewSearch(m, n, kc int) (*Search, error) {
	if m <= 0 || n <= 0 {
		return nil, fmt.Errorf("tiling: empty block %dx%d", m, n)
	}
	lanes := d.Params.Lanes
	nQ := quantN(n, lanes)
	s := &Search{
		d: d, m: m, n: n, kc: kc, lanes: lanes,
		nQ: nQ, nSteps: nQ/lanes + 1,
		cands: d.candidates(),
		memo:  make([]panelChoice, (m+1)*(nQ/lanes+1)),
	}
	for i := range s.memo {
		s.memo[i].cost = -1
	}
	return s, nil
}

// Rows reports the row extent of the memo table; FillRows ranges over
// [0, Rows()).
func (s *Search) Rows() int { return s.m + 1 }

// FillRows computes every memo cell with row index in [lo, hi). Rows
// are independent, so concurrent calls over disjoint ranges are safe.
func (s *Search) FillRows(lo, hi int) {
	lo = max(lo, 1) // row 0 is the empty panel, cost 0 by definition
	hi = min(hi, s.m+1)
	for mm := lo; mm < hi; mm++ {
		for step := 1; step < s.nSteps; step++ {
			s.memo[mm*s.nSteps+step] = s.d.bestTile(s.cands, mm, step*s.lanes, s.kc)
		}
	}
}

// t returns the memoized T(m', n'), computing the cell on demand when
// the parallel fill did not reach it.
func (s *Search) t(mm, nn int) panelChoice {
	if mm == 0 || nn == 0 {
		return panelChoice{cost: 0}
	}
	idx := mm*s.nSteps + nn/s.lanes
	if s.memo[idx].cost >= 0 {
		return s.memo[idx]
	}
	s.memo[idx] = s.d.bestTile(s.cands, mm, nn, s.kc)
	return s.memo[idx]
}

// Finish runs the outer split search over the filled table and
// assembles the panel cover. Call after every FillRows has returned;
// Finish itself is single-threaded.
func (s *Search) Finish() (Tiling, error) {
	// Algorithm 1 iterates the full (n_front, m_front_up, m_back_up)
	// product; the front and back column costs are independent given
	// n_front, so the search decomposes exactly into two 1-D minima.
	bestCost := -1.0
	var bestNF, bestMFU, bestMBU int
	columnBest := func(width int) (float64, int) {
		bc, barg := -1.0, 0
		for mu := 0; mu <= s.m; mu++ {
			c := s.t(mu, width).cost + s.t(s.m-mu, width).cost
			if bc < 0 || c < bc {
				bc, barg = c, mu
			}
		}
		return bc, barg
	}
	for nf := 0; nf <= s.nQ; nf += s.lanes {
		fc, fArg := columnBest(nf)
		bc, bArg := columnBest(s.nQ - nf)
		if c := fc + bc; bestCost < 0 || c < bestCost {
			bestCost, bestNF, bestMFU, bestMBU = c, nf, fArg, bArg
		}
	}

	tl := Tiling{MC: s.m, NC: s.n, Strategy: s.d.Name()}
	addPanel := func(row, col, pm, pn int) {
		if pm <= 0 || pn <= 0 {
			return
		}
		// Clip the logical width to the true block edge; lane padding is
		// reapplied during expansion.
		if col+pn > s.n {
			pn = s.n - col
		}
		if pn <= 0 {
			return
		}
		tl.Panels = append(tl.Panels, Panel{
			Row: row, Col: col, M: pm, N: pn, Tile: s.t(pm, quantN(pn, s.lanes)).tile,
		})
	}
	addPanel(0, 0, bestMFU, bestNF)
	addPanel(bestMFU, 0, s.m-bestMFU, bestNF)
	addPanel(0, bestNF, bestMBU, s.nQ-bestNF)
	addPanel(bestMBU, bestNF, s.m-bestMBU, s.nQ-bestNF)
	return tl, nil
}

// Tile implements Strategy.
func (d *DMT) Tile(m, n, kc int) (Tiling, error) {
	s, err := d.NewSearch(m, n, kc)
	if err != nil {
		return Tiling{}, err
	}
	return s.Finish()
}

// gridCost projects covering an mm×nn panel uniformly with tile t,
// including the narrowed edge tiles for the m and n remainders (the
// T(m, n) inner function of Algorithm 1, line 14, generalized to
// non-divisible extents).
func (d *DMT) gridCost(t mkernel.Tile, mm, nn, kc int) float64 {
	rows, mrem := mm/t.MR, mm%t.MR
	cols, nrem := nn/t.NR, nn%t.NR
	cost := 0.0
	if rows > 0 && cols > 0 {
		cost += float64(rows) * d.Params.SequenceTime(t, kc, cols, d.Opt)
	}
	if nrem > 0 && rows > 0 {
		cost += float64(rows) * d.Params.TileTime(mkernel.Tile{MR: t.MR, NR: nrem}, kc, d.Opt)
	}
	if mrem > 0 && cols > 0 {
		cost += d.Params.SequenceTime(mkernel.Tile{MR: mrem, NR: t.NR}, kc, cols, d.Opt)
	}
	if mrem > 0 && nrem > 0 {
		cost += d.Params.TileTime(mkernel.Tile{MR: mrem, NR: nrem}, kc, d.Opt)
	}
	return cost
}
