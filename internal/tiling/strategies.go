package tiling

import (
	"fmt"

	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
)

// DefaultStaticTile returns the fixed main tile the static strategies
// use: 5×16 for NEON (OpenBLAS's armv8 sgemm kernel shape, the tile of
// the Fig 5 example) and the highest-AI preferred tile otherwise.
func DefaultStaticTile(lanes int) mkernel.Tile {
	if lanes == 4 {
		return mkernel.Tile{MR: 5, NR: 16}
	}
	return mkernel.PreferredTiles(lanes)[0]
}

// OpenBLASStyle tiles with a single fixed shape and pads the edges
// (Fig 5-a): corner tiles compute full-size results into packing padding,
// wasting the overhang work.
type OpenBLASStyle struct {
	T     mkernel.Tile
	Lanes int
}

// Name implements Strategy.
func (s OpenBLASStyle) Name() string { return "openblas-pad" }

// Tile implements Strategy.
func (s OpenBLASStyle) Tile(m, n, kc int) (Tiling, error) {
	if m <= 0 || n <= 0 {
		return Tiling{}, fmt.Errorf("tiling: empty block %dx%d", m, n)
	}
	return Tiling{MC: m, NC: n, Strategy: s.Name(), Panels: []Panel{
		{M: m, N: n, Tile: s.T, Padded: true},
	}}, nil
}

// LIBXSMMStyle tiles the interior with a fixed shape and the edges with
// exact-fit smaller tiles (Fig 5-b). Edge tiles can have very low
// arithmetic intensity.
type LIBXSMMStyle struct {
	T     mkernel.Tile
	Lanes int
}

// Name implements Strategy.
func (s LIBXSMMStyle) Name() string { return "libxsmm-edge" }

// Tile implements Strategy.
func (s LIBXSMMStyle) Tile(m, n, kc int) (Tiling, error) {
	if m <= 0 || n <= 0 {
		return Tiling{}, fmt.Errorf("tiling: empty block %dx%d", m, n)
	}
	return Tiling{MC: m, NC: n, Strategy: s.Name(), Panels: []Panel{
		{M: m, N: n, Tile: s.T},
	}}, nil
}

// DMT is the paper's Dynamic Micro-Tiling (Algorithm 1): split the block
// into up to four panels by (n_front, m_front_up, m_back_up), choose the
// best uniform tile per panel by projected runtime, and take the split
// minimizing the total (Eqn 13). The projection — and therefore the
// chosen tiling — depends on the chip parameters, reproducing the
// paper's observation that the best tiling differs between high-σ_AI
// (KP920) and low-σ_AI (Graviton2/M2) hardware.
type DMT struct {
	Params perfmodel.Params
	Opt    perfmodel.Opt

	// Candidates narrows the tile set considered by T(m,n); nil means
	// every generatable tile (preferred tiles first is implicit in cost).
	Candidates []mkernel.Tile
}

// Name implements Strategy.
func (d *DMT) Name() string { return "dmt" }

type panelChoice struct {
	cost float64
	tile mkernel.Tile
}

// Tile implements Strategy.
func (d *DMT) Tile(m, n, kc int) (Tiling, error) {
	if m <= 0 || n <= 0 {
		return Tiling{}, fmt.Errorf("tiling: empty block %dx%d", m, n)
	}
	lanes := d.Params.Lanes
	nQ := quantN(n, lanes)
	cands := d.Candidates
	if cands == nil {
		for _, t := range mkernel.FeasibleTiles(lanes) {
			if !t.Generatable(lanes) {
				continue
			}
			// With rotation enabled, reserve spare registers for the
			// rotated A/B buffers (the reason Table II excludes shapes
			// like 7×12 that fill the register file exactly): a tile with
			// no slack cannot pipeline and stalls on every reload.
			if d.Opt.Rotate && t.RegistersNeeded(lanes) > 30 {
				continue
			}
			cands = append(cands, t)
		}
	}

	// Memoize T(m', n') over the lane-quantized n grid.
	nSteps := nQ/lanes + 1
	memo := make([]panelChoice, (m+1)*nSteps)
	for i := range memo {
		memo[i].cost = -1
	}
	T := func(mm, nn int) panelChoice {
		if mm == 0 || nn == 0 {
			return panelChoice{cost: 0}
		}
		idx := mm*nSteps + nn/lanes
		if memo[idx].cost >= 0 {
			return memo[idx]
		}
		best := panelChoice{cost: -1}
		for _, t := range cands {
			if t.MR > mm || t.NR > nn {
				continue
			}
			c := d.gridCost(t, mm, nn, kc)
			if best.cost < 0 || c < best.cost {
				best = panelChoice{cost: c, tile: t}
			}
		}
		if best.cost < 0 {
			// Fall back to the smallest strip tile.
			t := mkernel.Tile{MR: min(mm, mkernel.MaxMR), NR: lanes}
			best = panelChoice{cost: d.gridCost(t, mm, nn, kc), tile: t}
		}
		memo[idx] = best
		return best
	}

	// Algorithm 1 iterates the full (n_front, m_front_up, m_back_up)
	// product; the front and back column costs are independent given
	// n_front, so the search decomposes exactly into two 1-D minima.
	bestCost := -1.0
	var bestNF, bestMFU, bestMBU int
	columnBest := func(width int) (float64, int) {
		bc, barg := -1.0, 0
		for mu := 0; mu <= m; mu++ {
			c := T(mu, width).cost + T(m-mu, width).cost
			if bc < 0 || c < bc {
				bc, barg = c, mu
			}
		}
		return bc, barg
	}
	for nf := 0; nf <= nQ; nf += lanes {
		fc, fArg := columnBest(nf)
		bc, bArg := columnBest(nQ - nf)
		if c := fc + bc; bestCost < 0 || c < bestCost {
			bestCost, bestNF, bestMFU, bestMBU = c, nf, fArg, bArg
		}
	}

	tl := Tiling{MC: m, NC: n, Strategy: d.Name()}
	addPanel := func(row, col, pm, pn int) {
		if pm <= 0 || pn <= 0 {
			return
		}
		// Clip the logical width to the true block edge; lane padding is
		// reapplied during expansion.
		if col+pn > n {
			pn = n - col
		}
		if pn <= 0 {
			return
		}
		tl.Panels = append(tl.Panels, Panel{
			Row: row, Col: col, M: pm, N: pn, Tile: T(pm, quantN(pn, lanes)).tile,
		})
	}
	addPanel(0, 0, bestMFU, bestNF)
	addPanel(bestMFU, 0, m-bestMFU, bestNF)
	addPanel(0, bestNF, bestMBU, nQ-bestNF)
	addPanel(bestMBU, bestNF, m-bestMBU, nQ-bestNF)
	return tl, nil
}

// gridCost projects covering an mm×nn panel uniformly with tile t,
// including the narrowed edge tiles for the m and n remainders (the
// T(m, n) inner function of Algorithm 1, line 14, generalized to
// non-divisible extents).
func (d *DMT) gridCost(t mkernel.Tile, mm, nn, kc int) float64 {
	rows, mrem := mm/t.MR, mm%t.MR
	cols, nrem := nn/t.NR, nn%t.NR
	cost := 0.0
	if rows > 0 && cols > 0 {
		cost += float64(rows) * d.Params.SequenceTime(t, kc, cols, d.Opt)
	}
	if nrem > 0 && rows > 0 {
		cost += float64(rows) * d.Params.TileTime(mkernel.Tile{MR: t.MR, NR: nrem}, kc, d.Opt)
	}
	if mrem > 0 && cols > 0 {
		cost += d.Params.SequenceTime(mkernel.Tile{MR: mrem, NR: t.NR}, kc, cols, d.Opt)
	}
	if mrem > 0 && nrem > 0 {
		cost += d.Params.TileTime(mkernel.Tile{MR: mrem, NR: nrem}, kc, d.Opt)
	}
	return cost
}
