package tiling

import (
	"fmt"
)

// Heuristic is the tier-0 tiler: it covers the whole block with a
// single panel whose tile is the cheapest uniform cover under the same
// projected grid cost DMT minimizes — one call to Algorithm 1's inner
// T(m, n) instead of the full (n_front, m_front_up, m_back_up) dynamic
// program. That makes it O(#candidates) per block, microseconds where
// DMT takes tens of milliseconds, at the price of giving up the panel
// split: edge remainders are still covered exactly (the executor
// narrows edge tiles during expansion), they are just not re-tiled
// with their own shapes.
//
// The tiered planner serves a Heuristic-tiled plan instantly on a cold
// miss and upgrades it to the DMT plan in the background; both answer
// the same request, so a Heuristic tiling must stay within the exact
// candidate set the full search would use — it shares DMT's candidate
// filter and cost model rather than reimplementing them.
type Heuristic struct {
	DMT
}

// Name implements Strategy.
func (h *Heuristic) Name() string { return "heuristic" }

// Tile implements Strategy.
func (h *Heuristic) Tile(m, n, kc int) (Tiling, error) {
	if m <= 0 || n <= 0 {
		return Tiling{}, fmt.Errorf("tiling: empty block %dx%d", m, n)
	}
	nQ := quantN(n, h.Params.Lanes)
	best := h.bestTile(h.candidates(), m, nQ, kc)
	return Tiling{MC: m, NC: n, Strategy: h.Name(), Panels: []Panel{
		{M: m, N: n, Tile: best.tile},
	}}, nil
}
