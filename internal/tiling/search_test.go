package tiling

import (
	"reflect"
	"sync"
	"testing"

	"autogemm/internal/hw"
)

// TestSearchParallelFillMatchesSequentialTile is the equivalence
// guarantee the background planner rests on: filling the DP memo from
// many goroutines over disjoint row ranges, then Finish, must yield
// exactly the tiling the sequential DMT.Tile produces.
func TestSearchParallelFillMatchesSequentialTile(t *testing.T) {
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2()} {
		d := newDMT(chip)
		for _, blk := range [][3]int{{26, 36, 64}, {80, 32, 64}, {64, 100, 48}, {7, 4, 16}} {
			want, err := d.Tile(blk[0], blk[1], blk[2])
			if err != nil {
				t.Fatal(err)
			}
			s, err := d.NewSearch(blk[0], blk[1], blk[2])
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			const chunk = 5
			for lo := 0; lo < s.Rows(); lo += chunk {
				wg.Add(1)
				go func(lo int) {
					defer wg.Done()
					s.FillRows(lo, lo+chunk)
				}(lo)
			}
			wg.Wait()
			got, err := s.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s %v: parallel Search = %+v, sequential Tile = %+v",
					chip.Name, blk, got, want)
			}
		}
	}
}

// TestSearchFinishWithoutFill checks the lazy path: Finish on an
// untouched Search computes every needed cell itself.
func TestSearchFinishWithoutFill(t *testing.T) {
	d := newDMT(hw.KP920())
	want, err := d.Tile(26, 36, 64)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.NewSearch(26, 36, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("lazy Finish = %+v, want %+v", got, want)
	}
}

// TestHeuristicSinglePanelCover: the tier-0 tiler emits one valid
// full-cover panel whose tile comes from DMT's own candidate set.
func TestHeuristicSinglePanelCover(t *testing.T) {
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2()} {
		h := &Heuristic{DMT: *newDMT(chip)}
		for _, blk := range [][3]int{{26, 36, 64}, {256, 3136, 64}, {1, 4, 8}, {11, 49, 128}} {
			tl, err := h.Tile(blk[0], blk[1], blk[2])
			if err != nil {
				t.Fatal(err)
			}
			if err := tl.Validate(chip.Lanes); err != nil {
				t.Fatalf("%s %v: %v", chip.Name, blk, err)
			}
			if len(tl.Panels) != 1 {
				t.Fatalf("%s %v: %d panels, want 1", chip.Name, blk, len(tl.Panels))
			}
			if tl.Strategy != "heuristic" {
				t.Fatalf("strategy %q, want heuristic", tl.Strategy)
			}
			tile := tl.Panels[0].Tile
			if tile.MR <= 0 || tile.NR <= 0 || !tile.Generatable(chip.Lanes) {
				t.Fatalf("%s %v: ungeneratable tile %v", chip.Name, blk, tile)
			}
		}
	}
}

// TestHeuristicHonorsCandidateRestriction: an explicit candidate set
// restricts the heuristic exactly as it restricts DMT.
func TestHeuristicHonorsCandidateRestriction(t *testing.T) {
	d := newDMT(hw.KP920())
	d.Candidates = d.candidates()[:1]
	h := &Heuristic{DMT: *d}
	tl, err := h.Tile(64, 64, 48)
	if err != nil {
		t.Fatal(err)
	}
	if got := tl.Panels[0].Tile; got != d.Candidates[0] {
		t.Fatalf("tile %v, want the only candidate %v", got, d.Candidates[0])
	}
}
