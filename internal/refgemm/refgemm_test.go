package refgemm

import "testing"

// TestGEMMKnownValues: a hand-computed 2x2x2 product.
func TestGEMMKnownValues(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := []float32{1, 1, 1, 1}
	GEMM(2, 2, 2, a, 2, b, 2, c, 2)
	want := []float32{20, 23, 44, 51} // 1 + A·B
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
}

// TestGEMMLeadingDimensions: strided matrices multiply correctly.
func TestGEMMLeadingDimensions(t *testing.T) {
	// 1x1x1 embedded in larger buffers.
	a := []float32{3, 99}
	b := []float32{4, 99}
	c := []float32{0, 99}
	GEMM(1, 1, 1, a, 2, b, 2, c, 2)
	if c[0] != 12 || c[1] != 99 {
		t.Errorf("strided GEMM wrote %v", c)
	}
}

// TestFillDeterministicAndBounded: same seed same data, different seeds
// differ, values within [-1, 1).
func TestFillDeterministicAndBounded(t *testing.T) {
	x := make([]float32, 64)
	y := make([]float32, 64)
	Fill(x, 8, 8, 8, 7)
	Fill(y, 8, 8, 8, 7)
	for i := range x {
		if x[i] != y[i] {
			t.Fatal("Fill not deterministic")
		}
		if x[i] < -1 || x[i] >= 1 {
			t.Fatalf("Fill value %g out of [-1, 1)", x[i])
		}
	}
	Fill(y, 8, 8, 8, 8)
	same := true
	for i := range x {
		if x[i] != y[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// TestMaxRelErr: absolute comparison near zero, relative away from it.
func TestMaxRelErr(t *testing.T) {
	got := []float32{0.5, 100}
	want := []float32{0.5 + 0.25, 101}
	e := MaxRelErr(got, want, 1, 2, 2, 2)
	// Element 0: |0.25|/max(1, 0.75) = 0.25; element 1: 1/101 ≈ 0.0099.
	if e < 0.24 || e > 0.26 {
		t.Errorf("MaxRelErr = %g, want ~0.25", e)
	}
	if MaxRelErr(got, got, 1, 2, 2, 2) != 0 {
		t.Error("identical data should give zero error")
	}
}
