// Package refgemm provides a plain, obviously-correct float32 GEMM and
// matrix helpers. It is the numerical ground truth every generated
// kernel, plan and baseline is verified against (the paper verifies
// against other BLAS libraries with relative error < 1e-6; here the
// reference implementation plays that role).
package refgemm

import "math"

// GEMM computes C(M,N) += A(M,K)·B(K,N) over row-major matrices with the
// given leading dimensions (in elements).
func GEMM(m, n, k int, a []float32, lda int, b []float32, ldb int, c []float32, ldc int) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			av := a[i*lda+p]
			if av == 0 {
				continue
			}
			bRow := b[p*ldb : p*ldb+n]
			cRow := c[i*ldc : i*ldc+n]
			for j := 0; j < n; j++ {
				cRow[j] += av * bRow[j]
			}
		}
	}
}

// Fill writes a deterministic pseudo-random pattern into a row-major
// matrix, seeded so different matrices get different data. Values stay
// in [-1, 1) so float32 accumulation error remains well under the 1e-6
// relative tolerance for the problem sizes used in tests.
func Fill(m []float32, rows, cols, ld int, seed uint64) {
	s := seed*2654435761 + 12345
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			s = s*6364136223846793005 + 1442695040888963407
			// Map the top bits to [-1, 1).
			v := float64(int32(s>>32)) / float64(1<<31)
			m[i*ld+j] = float32(v)
		}
	}
}

// MaxRelErr returns the maximum element-wise relative error of got vs
// want over an m×n region, using max(1, |want|) as the denominator so
// near-zero entries are compared absolutely.
func MaxRelErr(got, want []float32, m, n, ldGot, ldWant int) float64 {
	worst := 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			g := float64(got[i*ldGot+j])
			w := float64(want[i*ldWant+j])
			den := math.Max(1, math.Abs(w))
			if e := math.Abs(g-w) / den; e > worst {
				worst = e
			}
		}
	}
	return worst
}

// Tolerance is the verification threshold from §V of the paper.
const Tolerance = 1e-6
