package perfmodel

import (
	"math"
	"testing"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
)

// didactic matches the worked example of Fig 3: L = 8 and IPC = 1 for
// load, store and FMA.
func didactic() Params {
	return Params{
		IPCFMA: 1, IPCLoad: 1, IPCStore: 1,
		LFMA: 8, LLoad: 8, LStore: 8,
		Lanes: 4, SigmaAI: 6.15, Launch: 0,
	}
}

// TestPaper5x16Formula reproduces the paper's closed form for the 5×16
// compute-bound tile: besides launch, 20·k_c + 13·⌊k̂_c⌋ + 65 cycles.
func TestPaper5x16Formula(t *testing.T) {
	p := didactic()
	tile := mkernel.Tile{MR: 5, NR: 16}
	for _, kc := range []int{4, 8, 16, 32, 64, 128} {
		khat := float64(kc / 4)
		want := 20*float64(kc) + 13*khat + 65
		got := p.TileTime(tile, kc, Opt{})
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("kc=%d: TileTime = %g, want %g", kc, got, want)
		}
	}
}

// TestPaper5x16RotatedFormula: with rotation the A-reload stall halves,
// giving 20·k_c + 13·⌈⌊k̂_c⌋/2⌉ + 65 (§III-C1).
func TestPaper5x16RotatedFormula(t *testing.T) {
	p := didactic()
	tile := mkernel.Tile{MR: 5, NR: 16}
	for _, kc := range []int{4, 8, 12, 16, 64} {
		khat := float64(kc / 4)
		want := 20*float64(kc) + 13*math.Ceil(khat/2) + 65
		got := p.TileTime(tile, kc, Opt{Rotate: true})
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("kc=%d: rotated TileTime = %g, want %g", kc, got, want)
		}
	}
}

// TestPaper2x16Mainloop reproduces the memory-bound figures: 48·⌊k̂_c⌋
// for the basic kernel and 42·⌊k̂_c⌋ after B double-buffering.
func TestPaper2x16Mainloop(t *testing.T) {
	p := didactic()
	tile := mkernel.Tile{MR: 2, NR: 16}
	if tile.ComputeBound(4, p.SigmaAI) {
		t.Fatal("2x16 should be memory-bound at σ_AI = 6.15")
	}
	for _, kc := range []int{4, 16, 64} {
		khat := float64(kc / 4)
		if got := p.MainloopMemory(tile, kc); math.Abs(got-48*khat) > 1e-9 {
			t.Errorf("kc=%d: memory mainloop = %g, want %g", kc, got, 48*khat)
		}
		if got := p.MainloopMemoryRotated(tile, kc); math.Abs(got-42*khat) > 1e-9 {
			t.Errorf("kc=%d: rotated memory mainloop = %g, want %g", kc, got, 42*khat)
		}
	}
}

// TestPrologueEpilogueShares checks the paper's §III-C2 observation: for
// 5×16 with k_c = 18, prologue and epilogue account for ≈8.2% and ≈15.1%
// of the projected runtime.
func TestPrologueEpilogueShares(t *testing.T) {
	p := didactic()
	tile := mkernel.Tile{MR: 5, NR: 16}
	kc := 18
	total := p.TileTime(tile, kc, Opt{})
	pro := p.Prologue(tile) / total
	epi := p.Epilogue(tile, kc) / total
	if math.Abs(pro-0.082) > 0.02 {
		t.Errorf("prologue share %.3f, paper says ≈0.082", pro)
	}
	if math.Abs(epi-0.151) > 0.02 {
		t.Errorf("epilogue share %.3f, paper says ≈0.151", epi)
	}
}

// TestFusionGainSmallK: fusing epilogue with next prologue should give a
// double-digit percentage gain at K=4 (the paper reports 15.8–17.3%).
func TestFusionGainSmallK(t *testing.T) {
	p := FromChip(hw.KP920())
	tile := mkernel.Tile{MR: 5, NR: 16}
	const n = 32
	unfused := p.SequenceTime(tile, 4, n, Opt{Rotate: true})
	fused := p.SequenceTime(tile, 4, n, Opt{Rotate: true, Fuse: true})
	gain := unfused/fused - 1
	// The paper's 15.8–17.3% is end-to-end; at the micro-kernel level the
	// boundary replaces the whole launch+epilogue+prologue, so the model
	// projects a larger gain for tiny K.
	if gain < 0.08 || gain > 0.80 {
		t.Errorf("fusion gain at K=4 is %.1f%%, expected substantial", gain*100)
	}
	// At large K the prologue/epilogue vanish in the main loop and the
	// gain must shrink substantially.
	unfusedBig := p.SequenceTime(tile, 256, n, Opt{Rotate: true})
	fusedBig := p.SequenceTime(tile, 256, n, Opt{Rotate: true, Fuse: true})
	gainBig := unfusedBig/fusedBig - 1
	if gainBig >= gain/2 {
		t.Errorf("fusion gain did not shrink with K: %.1f%% at K=4 vs %.1f%% at K=256",
			gain*100, gainBig*100)
	}
}

// TestRotationNeverHurts: the projected rotated time is never above the
// basic time, for any feasible tile.
func TestRotationNeverHurts(t *testing.T) {
	p := FromChip(hw.KP920())
	for _, tile := range mkernel.FeasibleTiles(4) {
		for _, kc := range []int{4, 32, 128} {
			base := p.TileTime(tile, kc, Opt{})
			rot := p.TileTime(tile, kc, Opt{Rotate: true})
			if rot > base+1e-9 {
				t.Errorf("%v kc=%d: rotation raises projection %g -> %g", tile, kc, base, rot)
			}
		}
	}
}

// TestEfficiencyBounds: projected efficiency lies in (0, 1] and grows
// with k_c for a compute-bound tile (the Fig 2 trend).
func TestEfficiencyBounds(t *testing.T) {
	chip := hw.Graviton2()
	p := FromChip(chip)
	tile := mkernel.Tile{MR: 5, NR: 16}
	prev := 0.0
	for _, kc := range []int{4, 8, 16, 32, 64, 128, 256} {
		e := Efficiency(chip, FLOPs(tile, kc), p.TileTime(tile, kc, Opt{Rotate: true, Fuse: true}))
		if e <= 0 || e > 1 {
			t.Fatalf("kc=%d: efficiency %g out of range", kc, e)
		}
		if e < prev {
			t.Errorf("kc=%d: efficiency fell %g -> %g; Fig 2 trend is monotone", kc, prev, e)
		}
		prev = e
	}
	if prev < 0.85 {
		t.Errorf("asymptotic efficiency %.2f, expected near peak for 5x16", prev)
	}
}

// TestModelTracksSimulator: the analytic projection and the cycle-level
// simulator must agree within a tolerance band across tiles and depths
// on the didactic machine (constant load latency, single ports).
func TestModelTracksSimulator(t *testing.T) {
	chip := hw.Didactic()
	p := FromChip(chip)
	p.Launch = 0
	for _, tile := range []mkernel.Tile{{MR: 5, NR: 16}, {MR: 4, NR: 20}, {MR: 8, NR: 8}, {MR: 2, NR: 16}, {MR: 6, NR: 12}, {MR: 3, NR: 8}} {
		for _, kc := range []int{8, 32, 96} {
			for _, rotate := range []bool{false, true} {
				cfg := mkernel.Config{Tile: tile, KC: kc, Lanes: 4,
					Rotate: rotate, LoadC: true, SigmaAI: chip.SigmaAI}
				prog, err := mkernel.Generate(cfg)
				if err != nil {
					t.Fatal(err)
				}
				arena := sim.NewArena(1 << 15)
				aAddr := arena.Alloc(tile.MR*kc + 8)
				bAddr := arena.Alloc((kc+2)*tile.NR + 8)
				cAddr := arena.Alloc(tile.MR*tile.NR + 8)
				m := sim.NewMachine(arena, 4)
				m.SetArg(0, aAddr)
				m.SetArg(1, bAddr)
				m.SetArg(2, cAddr)
				m.SetArg(3, int64(kc))
				m.SetArg(4, int64(tile.NR))
				m.SetArg(5, int64(tile.NR))
				model := sim.NewModel(chip)
				model.AssumeLoadLat = chip.LatLoad
				res, err := model.RunAndTime(prog, m, 10_000_000)
				if err != nil {
					t.Fatal(err)
				}
				proj := p.TileTime(tile, kc, Opt{Rotate: rotate})
				ratio := proj / float64(res.Cycles)
				if ratio < 0.5 || ratio > 2.0 {
					t.Errorf("%s: model %g vs simulator %d (ratio %.2f)",
						cfg.Name(), proj, res.Cycles, ratio)
				}
			}
		}
	}
}
