// Package perfmodel implements the paper's analytic micro-kernel
// performance model (§III-B and §III-C): projected cycle counts for the
// prologue, main loop and epilogue of a generated micro-kernel (Eqns
// 4–8), the rotating-register-allocation refinements (Eqns 9–10), the
// epilogue–prologue fusion cost (Eqn 11), and the sub-matrix cost
// composition used to prune the tuning search space (Eqn 13).
//
// Counts follow the paper's conventions: n̂_r = n_r/σ_lane and
// k̂_c = k_c/σ_lane are vectorized extents, IPC_x is the issue cost in
// cycles per instruction of class x (the reciprocal of port count for
// fully pipelined units), and L_x is the completion latency.
package perfmodel

import (
	"math"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
)

// Params carries the hardware quantities of Table III.
type Params struct {
	IPCFMA   float64 // cycles per FMA issue
	IPCLoad  float64 // cycles per vector-load issue
	IPCStore float64 // cycles per vector-store issue
	LFMA     float64 // FMA latency
	LLoad    float64 // load-to-use latency at the residency level
	LStore   float64 // store latency
	Lanes    int     // σ_lane
	SigmaAI  float64 // σ_AI threshold
	Launch   float64 // T_launch, the kernel call overhead
}

// FromChip derives model parameters from a machine description, taking
// the L1-resident load latency (the model's default assumption: the
// paper's kernels rely on blocking, not L1 prefetch, §V-C).
func FromChip(c *hw.Chip) Params {
	return Params{
		IPCFMA:   1 / float64(c.FMAPorts),
		IPCLoad:  1 / float64(c.LoadPorts),
		IPCStore: 1 / float64(c.StorePorts),
		LFMA:     float64(c.LatFMA),
		LLoad:    float64(c.LatLoad),
		LStore:   float64(c.LatStore),
		Lanes:    c.Lanes,
		SigmaAI:  c.SigmaAI,
		Launch:   float64(c.LaunchCycles),
	}
}

// WithLoadLatency returns a copy of p with the load latency replaced —
// used when the blocking configuration leaves a panel resident in L2 or
// beyond (the KP920 N=64, K=256 cliff of §V-B).
func (p Params) WithLoadLatency(lat float64) Params {
	p.LLoad = lat
	return p
}

// Opt selects which §III-C optimizations the projection assumes.
type Opt struct {
	Rotate bool
	Fuse   bool
}

// vec returns the vectorized extents (n̂_r, ⌊k̂_c⌋, remainder).
func vec(t mkernel.Tile, kc, lanes int) (nhat, khat, rem float64) {
	return float64(t.NR) / float64(lanes), math.Floor(float64(kc) / float64(lanes)),
		float64(kc % lanes)
}

// Prologue returns T_prologue (Eqn 5): issuing the C(m_r,n_r) loads, the
// first A block and first B row, plus one load latency to drain.
func (p Params) Prologue(t mkernel.Tile) float64 {
	nhat := float64(t.NR) / float64(p.Lanes)
	mr := float64(t.MR)
	return (mr*nhat+mr+nhat)*p.IPCLoad + p.LLoad
}

// fmaStream returns the main-loop FMA time: k̂_c·σ_lane k-steps, each
// issuing m_r·n̂_r FMAs. Every accumulator is updated once per k-step,
// so the step period cannot drop below the FMA latency (an effect the
// paper's didactic parameters sit exactly at: 2×16 has 8 accumulators at
// IPC 1 against L_fma = 8, leaving Eqns 6–10 unchanged); tiles with too
// few accumulators for a chip's FMA pipeline are capped by this chain.
func (p Params) fmaStream(t mkernel.Tile, kc int) float64 {
	nhat, khat, _ := vec(t, kc, p.Lanes)
	step := float64(t.MR) * nhat * p.IPCFMA
	if step < p.LFMA {
		step = p.LFMA
	}
	return step * khat * float64(p.Lanes)
}

// MainloopCompute returns T_mainloop for a compute-bound tile (Eqn 6):
// the FMA stream covers the B loads; the per-block A reloads stall once
// per unrolled block.
func (p Params) MainloopCompute(t mkernel.Tile, kc int) float64 {
	_, khat, _ := vec(t, kc, p.Lanes)
	mr := float64(t.MR)
	return p.fmaStream(t, kc) + khat*(mr*p.IPCLoad+p.LLoad)
}

// MainloopComputeRotated returns Eqn 9: rotating register allocation
// hides the A reload stall in every other block.
func (p Params) MainloopComputeRotated(t mkernel.Tile, kc int) float64 {
	_, khat, _ := vec(t, kc, p.Lanes)
	mr := float64(t.MR)
	return p.fmaStream(t, kc) + math.Ceil(khat/2)*(mr*p.IPCLoad+p.LLoad)
}

// MainloopMemory returns T_mainloop for a memory-bound tile: the
// FMA→LOAD→FMA register dependency inserts a bubble each k-step (Eqn 8).
// On machines with more load bandwidth than the paper's didactic
// configuration, Eqn 8 can fall below the FMA-stream time itself, which
// is a hard lower bound; the projection is therefore the maximum of the
// two constraints.
func (p Params) MainloopMemory(t mkernel.Tile, kc int) float64 {
	_, khat, _ := vec(t, kc, p.Lanes)
	mr := float64(t.MR)
	eqn8 := mr*p.IPCLoad*khat*float64(p.Lanes) + p.LLoad*khat*(float64(p.Lanes)+1)
	return math.Max(eqn8, p.MainloopMemoryRotated(t, kc))
}

// MainloopMemoryRotated returns Eqn 10: doubled B buffering removes the
// dependency bubbles, leaving the FMA stream plus the A reload stalls.
func (p Params) MainloopMemoryRotated(t mkernel.Tile, kc int) float64 {
	_, khat, _ := vec(t, kc, p.Lanes)
	mr := float64(t.MR)
	return p.fmaStream(t, kc) + khat*(mr*p.IPCLoad+p.LLoad)
}

// Epilogue returns T_epilogue (Eqn 7): the k_c-remainder FMAs, the FMA
// pipeline drain, and the C stores.
func (p Params) Epilogue(t mkernel.Tile, kc int) float64 {
	nhat, _, rem := vec(t, kc, p.Lanes)
	mr := float64(t.MR)
	return mr*nhat*p.IPCFMA*rem + p.LFMA + mr*nhat*p.IPCStore
}

// Mainloop dispatches on the tile's boundedness and rotation.
func (p Params) Mainloop(t mkernel.Tile, kc int, opt Opt) float64 {
	cb := t.ComputeBound(p.Lanes, p.SigmaAI)
	switch {
	case cb && opt.Rotate:
		return p.MainloopComputeRotated(t, kc)
	case cb:
		return p.MainloopCompute(t, kc)
	case opt.Rotate:
		return p.MainloopMemoryRotated(t, kc)
	default:
		return p.MainloopMemory(t, kc)
	}
}

// TileTime returns the total projected micro-kernel runtime T_r (Eqn 4):
// launch + prologue + main loop + epilogue.
func (p Params) TileTime(t mkernel.Tile, kc int, opt Opt) float64 {
	return p.Launch + p.Prologue(t) + p.Mainloop(t, kc, opt) + p.Epilogue(t, kc)
}

// FuseBoundary returns the cost of a fused epilogue→prologue boundary
// between two consecutive tiles (Eqn 11 generalized to the four modes of
// Fig 4). It replaces cur's epilogue, next's launch and next's prologue.
// For a compute-bound→compute-bound boundary this is exactly Eqn 11: the
// remainder FMAs of cur plus the overlapped C-and-A loads of next. When
// either side is memory-bound there is no FMA surplus to hide behind, so
// the store drain (cur memory-bound) and the B-row loads (next
// memory-bound) surface in the cost.
func (p Params) FuseBoundary(cur mkernel.Tile, curKC int, next mkernel.Tile, nextKC int) float64 {
	nhatC, _, remC := vec(cur, curKC, p.Lanes)
	nhatN := float64(next.NR) / float64(p.Lanes)
	mrC, mrN := float64(cur.MR), float64(next.MR)

	cost := mrC*nhatC*p.IPCFMA*remC + (mrN*nhatN+mrN)*p.IPCLoad + p.LLoad
	if !cur.ComputeBound(p.Lanes, p.SigmaAI) {
		cost += mrC * nhatC * p.IPCStore // stores cannot hide behind FMAs
	}
	if !next.ComputeBound(p.Lanes, p.SigmaAI) {
		cost += nhatN * p.IPCLoad // B prologue loads surface too
	}
	return cost
}

// SequenceTime projects the runtime of n consecutive same-shape tiles.
// Without fusion each tile pays the full Eqn 4; with fusion the interior
// boundaries are replaced by FuseBoundary and only the first prologue,
// last epilogue and one launch remain (§III-C2).
func (p Params) SequenceTime(t mkernel.Tile, kc, n int, opt Opt) float64 {
	if n <= 0 {
		return 0
	}
	single := p.TileTime(t, kc, opt)
	if !opt.Fuse || n == 1 {
		return float64(n) * single
	}
	interior := p.Mainloop(t, kc, opt) + p.FuseBoundary(t, kc, t, kc)
	return p.Launch + p.Prologue(t) + float64(n-1)*interior +
		p.Mainloop(t, kc, opt) + p.Epilogue(t, kc)
}

// TileGrid projects the cost of covering an m×n panel with ⌈m/m_r⌉×
// ⌈n/n_r⌉ tiles of one shape at depth k_c — the T(m, n) inner cost of
// Algorithm 1, with fusion applied along each row band when enabled.
func (p Params) TileGrid(t mkernel.Tile, m, n, kc int, opt Opt) float64 {
	if m <= 0 || n <= 0 {
		return 0
	}
	rows := (m + t.MR - 1) / t.MR
	cols := (n + t.NR - 1) / t.NR
	return float64(rows) * p.SequenceTime(t, kc, cols, opt)
}

// FLOPs returns the floating-point operations of one tile invocation.
func FLOPs(t mkernel.Tile, kc int) float64 { return 2 * float64(t.MR) * float64(t.NR) * float64(kc) }

// Efficiency converts a projected cycle count into fraction-of-peak for
// the chip: useful work over FMA-port capacity.
func Efficiency(c *hw.Chip, flops, cycles float64) float64 {
	if cycles <= 0 {
		return 0
	}
	peakPerCycle := float64(c.FMAPorts) * float64(c.Lanes) * 2
	return flops / (cycles * peakPerCycle)
}
