package asm

import (
	"strings"
	"testing"
)

func TestSFileStructure(t *testing.T) {
	p := NewProgram("mk_2x8x4_l4")
	p.Lsl(X(3), X(3), 2)
	p.MovI(X(29), 2)
	p.Label("loop")
	p.Fmla(V(0), V(1), V(2), 0)
	p.Subs(X(29), X(29), 1)
	p.Bne("loop")
	p.Ret()
	out := p.SFile()
	for _, want := range []string{
		".arch armv8-a",
		".global mk_2x8x4_l4",
		".type mk_2x8x4_l4, %function",
		"stp x29, x30, [sp, #-96]!",
		"stp d8, d9",
		".mk_2x8x4_l4_loop:",
		"b.ne .mk_2x8x4_l4_loop",
		"ldp d14, d15",
		"ldp x29, x30, [sp], #96",
		"\tret",
		".size mk_2x8x4_l4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SFile missing %q:\n%s", want, out)
		}
	}
	// Every d-register spill has a matching reload.
	if strings.Count(out, "stp d") != strings.Count(out, "ldp d") {
		t.Error("unbalanced SIMD spills")
	}
}

func TestSanitizeSymbol(t *testing.T) {
	cases := map[string]string{
		"mk_5x16":   "mk_5x16",
		"band k=4!": "band_k_4_",
		"9lives":    "k9lives",
		"":          "k",
	}
	for in, want := range cases {
		if got := sanitizeSymbol(in); got != want {
			t.Errorf("sanitizeSymbol(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHexWords(t *testing.T) {
	p := NewProgram("h")
	for i := 0; i < 5; i++ {
		p.VZero(V(i))
	}
	p.Ret()
	out, err := p.HexWords()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, ".word") != 6 {
		t.Errorf("want 6 words, got:\n%s", out)
	}
	// Unencodable program errors.
	p2 := NewProgram("bad")
	p2.MovI(X(0), 1<<30)
	p2.Ret()
	if _, err := p2.HexWords(); err == nil {
		t.Error("unencodable program produced hex")
	}
}

func TestDecodeRejectsUnknownWord(t *testing.T) {
	if _, err := Decode([]uint32{0xFFFFFFFF}); err == nil {
		t.Error("garbage word decoded")
	}
}

func TestSVEOpsValidateAndPrint(t *testing.T) {
	p := NewProgram("sve")
	p.PTrue(P(0))
	p.MovI(X(1), 3)
	p.MovI(X(2), 7)
	p.Whilelt(P(1), X(1), X(2))
	p.Ld1W(V(0), P(1), X(3), 0)
	p.St1W(V(0), P(0), X(4), 16)
	p.Ret()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	out := p.String()
	for _, want := range []string{"ptrue p0.s", "whilelt p1.s, x1, x2", "ld1w {z0.s}, p1/z", "st1w {z0.s}, p0"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVE printing missing %q in:\n%s", want, out)
		}
	}
	// Bad operand classes rejected.
	bad := NewProgram("badsve")
	bad.Whilelt(X(0), X(1), X(2)) // dest must be a predicate
	bad.Ret()
	if err := bad.Validate(); err == nil {
		t.Error("whilelt with scalar destination validated")
	}
	bad2 := NewProgram("badsve2")
	bad2.Ld1W(V(0), V(1), X(2), 0) // predicate operand is a vector
	bad2.Ret()
	if err := bad2.Validate(); err == nil {
		t.Error("ld1w with vector predicate validated")
	}
	// SVE ops are not NEON-encodable.
	if _, err := p.Encode(); err == nil {
		t.Error("SVE program encoded as NEON")
	}
}

func TestPredRegisterHelpers(t *testing.T) {
	if !P(0).IsPred() || P(15).IsPred() == false {
		t.Error("IsPred broken")
	}
	if P(3).IsVector() || P(3).IsScalar() {
		t.Error("predicate misclassified")
	}
	defer func() {
		if recover() == nil {
			t.Error("P(16) should panic")
		}
	}()
	P(16)
}
