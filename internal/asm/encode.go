package asm

import "fmt"

// Encode lowers the program to AArch64 machine code, one 32-bit word per
// instruction (labels produce no word; branches are resolved to PC-
// relative offsets). The encoder covers exactly the IR subset the
// micro-kernel generator emits, so `cmd/autogemm-gen -bin` output can be
// linked and executed on real Armv8 hardware. Encodings follow the Arm
// ARM (DDI 0487); the decoder below round-trips every encodable program
// and the tests pin known golden words.
func (p *Program) Encode() ([]uint32, error) {
	// First pass: assign word offsets (labels occupy none).
	offsets := make([]int, len(p.Instrs))
	w := 0
	for i := range p.Instrs {
		offsets[i] = w
		if p.Instrs[i].Op != OpLabel {
			w++
		}
	}
	words := make([]uint32, 0, w)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == OpLabel {
			continue
		}
		word, err := p.encodeInstr(in, offsets[i], offsets)
		if err != nil {
			return nil, fmt.Errorf("asm: %s: instr %d (%s): %w", p.Name, i, in.Op, err)
		}
		words = append(words, word)
	}
	return words, nil
}

func (p *Program) encodeInstr(in *Instr, at int, offsets []int) (uint32, error) {
	rd := func(r Reg) uint32 { return uint32(r.Index()) }
	switch in.Op {
	case OpNop:
		return 0xD503201F, nil
	case OpMov: // ORR Xd, XZR, Xm
		return 0xAA0003E0 | rd(in.Src1)<<16 | rd(in.Dst), nil
	case OpMovI: // MOVZ Xd, #imm16
		if in.Imm < 0 || in.Imm > 0xFFFF {
			return 0, fmt.Errorf("immediate %d exceeds MOVZ range", in.Imm)
		}
		return 0xD2800000 | uint32(in.Imm)<<5 | rd(in.Dst), nil
	case OpLsl: // UBFM Xd, Xn, #(-sh mod 64), #(63-sh)
		sh := uint32(in.Imm)
		if sh == 0 || sh > 63 {
			return 0, fmt.Errorf("shift %d out of range", sh)
		}
		immr := (64 - sh) % 64
		imms := 63 - sh
		return 0xD3400000 | immr<<16 | imms<<10 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpAdd: // ADD Xd, Xn, Xm
		return 0x8B000000 | rd(in.Src2)<<16 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpAddI: // ADD Xd, Xn, #imm12
		if in.Imm < 0 || in.Imm > 0xFFF {
			return 0, fmt.Errorf("immediate %d exceeds ADD range", in.Imm)
		}
		return 0x91000000 | uint32(in.Imm)<<10 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpSubI: // SUB Xd, Xn, #imm12
		if in.Imm < 0 || in.Imm > 0xFFF {
			return 0, fmt.Errorf("immediate %d exceeds SUB range", in.Imm)
		}
		return 0xD1000000 | uint32(in.Imm)<<10 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpSubs: // SUBS Xd, Xn, #imm12
		if in.Imm < 0 || in.Imm > 0xFFF {
			return 0, fmt.Errorf("immediate %d exceeds SUBS range", in.Imm)
		}
		return 0xF1000000 | uint32(in.Imm)<<10 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpB, OpBne:
		target, ok := p.labels[in.Label]
		if !ok {
			return 0, fmt.Errorf("undefined label %q", in.Label)
		}
		delta := offsets[target] - at
		if in.Op == OpB {
			if delta < -(1<<25) || delta >= 1<<25 {
				return 0, fmt.Errorf("branch offset %d out of range", delta)
			}
			return 0x14000000 | uint32(delta)&0x03FFFFFF, nil
		}
		if delta < -(1<<18) || delta >= 1<<18 {
			return 0, fmt.Errorf("conditional branch offset %d out of range", delta)
		}
		return 0x54000001 | (uint32(delta)&0x7FFFF)<<5, nil // cond = NE
	case OpRet:
		return 0xD65F03C0, nil
	case OpLdrQ: // LDR Qt, [Xn, #imm] (unsigned offset, scaled by 16)
		if in.Imm < 0 || in.Imm%16 != 0 || in.Imm/16 > 0xFFF {
			return 0, fmt.Errorf("offset %d not encodable for LDR Q", in.Imm)
		}
		return 0x3DC00000 | uint32(in.Imm/16)<<10 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpLdrQPost: // LDR Qt, [Xn], #imm9
		if in.Imm < -256 || in.Imm > 255 {
			return 0, fmt.Errorf("post-index %d exceeds imm9", in.Imm)
		}
		return 0x3CC00400 | (uint32(in.Imm)&0x1FF)<<12 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpStrQ: // STR Qt, [Xn, #imm]
		if in.Imm < 0 || in.Imm%16 != 0 || in.Imm/16 > 0xFFF {
			return 0, fmt.Errorf("offset %d not encodable for STR Q", in.Imm)
		}
		return 0x3D800000 | uint32(in.Imm/16)<<10 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpStrQPost: // STR Qt, [Xn], #imm9
		if in.Imm < -256 || in.Imm > 255 {
			return 0, fmt.Errorf("post-index %d exceeds imm9", in.Imm)
		}
		return 0x3C800400 | (uint32(in.Imm)&0x1FF)<<12 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpFmla: // FMLA Vd.4S, Vn.4S, Vm.S[idx]
		if in.Lane > 3 {
			return 0, fmt.Errorf("lane %d exceeds the .4S element range", in.Lane)
		}
		h := uint32(in.Lane>>1) & 1
		l := uint32(in.Lane) & 1
		return 0x4F801000 | l<<21 | rd(in.Src2)<<16 | h<<11 | rd(in.Src1)<<5 | rd(in.Dst), nil
	case OpVZero: // MOVI Vd.4S, #0
		return 0x4F000400 | rd(in.Dst), nil
	case OpPrfm: // PRFM PLDL1KEEP, [Xn, #imm] (scaled by 8)
		if in.Imm < 0 || in.Imm%8 != 0 || in.Imm/8 > 0xFFF {
			return 0, fmt.Errorf("offset %d not encodable for PRFM", in.Imm)
		}
		return 0xF9800000 | uint32(in.Imm/8)<<10 | rd(in.Src1)<<5, nil
	default:
		return 0, fmt.Errorf("unencodable opcode")
	}
}

// Decode reverses Encode for the subset of words Encode produces; branch
// targets come back as synthetic labels. It exists to validate the
// encoder by round-trip and to disassemble binary kernels.
func Decode(words []uint32) (*Program, error) {
	p := NewProgram("decoded")
	// Pre-scan for branch targets so labels land before decoding.
	targets := map[int]string{}
	for i, w := range words {
		switch {
		case w&0xFC000000 == 0x14000000: // B
			delta := int(int32(w<<6) >> 6)
			targets[i+delta] = fmt.Sprintf("L%d", i+delta)
		case w&0xFF00001F == 0x54000001: // B.NE
			delta := int(int32(w<<8) >> 13)
			targets[i+delta] = fmt.Sprintf("L%d", i+delta)
		}
	}
	for i, w := range words {
		if name, ok := targets[i]; ok {
			p.Label(name)
		}
		in, err := decodeWord(w, i, targets)
		if err != nil {
			return nil, fmt.Errorf("asm: word %d (%#08x): %w", i, w, err)
		}
		p.Instrs = append(p.Instrs, in)
	}
	return p, nil
}

func decodeWord(w uint32, at int, targets map[int]string) (Instr, error) {
	xr := func(off uint) Reg { return Reg((w >> off) & 31) }
	vr := func(off uint) Reg { return V(int((w >> off) & 31)) }
	switch {
	case w == 0xD503201F:
		return Instr{Op: OpNop}, nil
	case w == 0xD65F03C0:
		return Instr{Op: OpRet}, nil
	case w&0xFFE0FFE0 == 0xAA0003E0:
		return Instr{Op: OpMov, Dst: xr(0), Src1: xr(16)}, nil
	case w&0xFFE00000 == 0xD2800000:
		return Instr{Op: OpMovI, Dst: xr(0), Imm: int64((w >> 5) & 0xFFFF)}, nil
	case w&0xFFC00000 == 0xD3400000:
		imms := (w >> 10) & 0x3F
		return Instr{Op: OpLsl, Dst: xr(0), Src1: xr(5), Imm: int64(63 - imms)}, nil
	case w&0xFFE0FC00 == 0x8B000000:
		return Instr{Op: OpAdd, Dst: xr(0), Src1: xr(5), Src2: xr(16)}, nil
	case w&0xFFC00000 == 0x91000000:
		return Instr{Op: OpAddI, Dst: xr(0), Src1: xr(5), Imm: int64((w >> 10) & 0xFFF)}, nil
	case w&0xFFC00000 == 0xD1000000:
		return Instr{Op: OpSubI, Dst: xr(0), Src1: xr(5), Imm: int64((w >> 10) & 0xFFF)}, nil
	case w&0xFFC00000 == 0xF1000000:
		return Instr{Op: OpSubs, Dst: xr(0), Src1: xr(5), Imm: int64((w >> 10) & 0xFFF)}, nil
	case w&0xFC000000 == 0x14000000:
		delta := int(int32(w<<6) >> 6)
		return Instr{Op: OpB, Label: targets[at+delta]}, nil
	case w&0xFF00001F == 0x54000001:
		delta := int(int32(w<<8) >> 13)
		return Instr{Op: OpBne, Label: targets[at+delta]}, nil
	case w&0xFFC00000 == 0x3DC00000:
		return Instr{Op: OpLdrQ, Dst: vr(0), Src1: xr(5), Imm: int64((w>>10)&0xFFF) * 16}, nil
	case w&0xFFE00C00 == 0x3CC00400:
		imm := int64(int32(w<<11) >> 23)
		return Instr{Op: OpLdrQPost, Dst: vr(0), Src1: xr(5), Imm: imm}, nil
	case w&0xFFC00000 == 0x3D800000:
		return Instr{Op: OpStrQ, Dst: vr(0), Src1: xr(5), Imm: int64((w>>10)&0xFFF) * 16}, nil
	case w&0xFFE00C00 == 0x3C800400:
		imm := int64(int32(w<<11) >> 23)
		return Instr{Op: OpStrQPost, Dst: vr(0), Src1: xr(5), Imm: imm}, nil
	case w&0xFFC0F400 == 0x4F801000:
		lane := uint8((w>>11)&1)<<1 | uint8((w>>21)&1)
		return Instr{Op: OpFmla, Dst: vr(0), Src1: vr(5), Src2: vr(16), Lane: lane}, nil
	case w&0xFFFFFC00 == 0x4F000400:
		return Instr{Op: OpVZero, Dst: vr(0)}, nil
	case w&0xFFC0001F == 0xF9800000:
		return Instr{Op: OpPrfm, Src1: xr(5), Imm: int64((w>>10)&0xFFF) * 8}, nil
	default:
		return Instr{}, fmt.Errorf("unrecognized encoding")
	}
}
