package asm

import "fmt"

// Validate checks structural well-formedness of a program: every branch
// targets a defined label, labels are unique and registered where they
// appear, counted loops initialize their counter, operand register
// classes match each opcode, addressing immediates are 16-byte multiples
// where AArch64 requires it, and the program terminates with RET. The
// micro-kernel generator runs this on every kernel it emits; deeper
// semantic contracts are checked by internal/asm/analysis.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("asm: %s: empty program", p.Name)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := p.validateInstr(in); err != nil {
			return fmt.Errorf("asm: %s: instr %d (%s): %w", p.Name, i, in.Op, err)
		}
	}
	if err := p.validateLabels(); err != nil {
		return fmt.Errorf("asm: %s: %w", p.Name, err)
	}
	if err := p.validateLoops(); err != nil {
		return fmt.Errorf("asm: %s: %w", p.Name, err)
	}
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != OpRet {
		return fmt.Errorf("asm: %s: program does not end in ret", p.Name)
	}
	return nil
}

// validateLabels checks that every OpLabel pseudo-instruction is unique
// and registered in the label table at its own index. The Label() helper
// maintains both invariants, but programs assembled by appending Instrs
// directly (the band generator's interleaving, hand-built tests) can
// silently shadow an earlier label, sending every branch to whichever
// copy was registered.
func (p *Program) validateLabels() error {
	seen := make(map[string]int)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op != OpLabel {
			continue
		}
		if prev, dup := seen[in.Label]; dup {
			return fmt.Errorf("duplicate label %q at instrs %d and %d", in.Label, prev, i)
		}
		seen[in.Label] = i
		if at, ok := p.labels[in.Label]; !ok || at != i {
			return fmt.Errorf("label %q at instr %d is not registered there (use Program.Label)", in.Label, i)
		}
	}
	return nil
}

// validateLoops checks the counted-loop protocol of every backward
// conditional branch: the body must contain the SUBS that drives the
// flags, the SUBS counter must be initialized somewhere before the loop
// head, and no other branch may jump into the body from outside —
// entering mid-loop skips the counter initialization, so the trip count
// would be whatever the register happened to hold.
func (p *Program) validateLoops() error {
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op != OpBne {
			continue
		}
		head, ok := p.labels[in.Label]
		if !ok || head > i {
			continue // forward branches are not loops
		}
		ctr := NoReg
		for j := i - 1; j > head; j-- {
			if p.Instrs[j].Op == OpSubs {
				ctr = p.Instrs[j].Src1
				break
			}
		}
		if ctr == NoReg {
			return fmt.Errorf("loop %q (instrs %d..%d) has no subs to set the flags its b.ne reads", in.Label, head, i)
		}
		init := false
		for j := 0; j < head && !init; j++ {
			for _, w := range p.Instrs[j].Writes() {
				if w == ctr {
					init = true
					break
				}
			}
		}
		if !init {
			return fmt.Errorf("loop %q counter %s is never initialized before the loop head at instr %d", in.Label, ctr, head)
		}
		for k := range p.Instrs {
			b := &p.Instrs[k]
			if (b.Op != OpB && b.Op != OpBne) || k == i {
				continue
			}
			if t, ok := p.labels[b.Label]; ok && t >= head && t <= i && (k <= head || k >= i) {
				return fmt.Errorf("branch at instr %d jumps into loop %q (instrs %d..%d), skipping its counter initialization", k, in.Label, head, i)
			}
		}
	}
	return nil
}

func (p *Program) validateInstr(in *Instr) error {
	switch in.Op {
	case OpNop, OpRet:
		return nil
	case OpLabel:
		if in.Label == "" {
			return fmt.Errorf("label without a name")
		}
		return nil
	case OpB, OpBne:
		if _, ok := p.labels[in.Label]; !ok {
			return fmt.Errorf("branch to undefined label %q", in.Label)
		}
		return nil
	case OpMov, OpLsl, OpAddI, OpSubI, OpSubs:
		if !in.Dst.IsScalar() || !in.Src1.IsScalar() {
			return fmt.Errorf("scalar op with non-scalar operand (%s, %s)", in.Dst, in.Src1)
		}
		if in.Op == OpSubs && in.Dst == XZR && in.Src1 == XZR {
			return fmt.Errorf("subs on xzr only is useless")
		}
		return nil
	case OpMovI:
		if !in.Dst.IsScalar() {
			return fmt.Errorf("mov immediate into non-scalar %s", in.Dst)
		}
		return nil
	case OpAdd:
		if !in.Dst.IsScalar() || !in.Src1.IsScalar() || !in.Src2.IsScalar() {
			return fmt.Errorf("add with non-scalar operand")
		}
		return nil
	case OpLdrQ, OpLdrQPost:
		if !in.Dst.IsVector() {
			return fmt.Errorf("vector load into scalar %s", in.Dst)
		}
		if !in.Src1.IsScalar() || in.Src1 == XZR {
			return fmt.Errorf("load base %s is not an addressable register", in.Src1)
		}
		return nil
	case OpStrQ, OpStrQPost:
		if !in.Dst.IsVector() {
			return fmt.Errorf("vector store from scalar %s", in.Dst)
		}
		if !in.Src1.IsScalar() || in.Src1 == XZR {
			return fmt.Errorf("store base %s is not an addressable register", in.Src1)
		}
		return nil
	case OpFmla:
		if !in.Dst.IsVector() || !in.Src1.IsVector() || !in.Src2.IsVector() {
			return fmt.Errorf("fmla with scalar operand")
		}
		return nil
	case OpVZero:
		if !in.Dst.IsVector() {
			return fmt.Errorf("movi zero into scalar %s", in.Dst)
		}
		return nil
	case OpPrfm:
		if !in.Src1.IsScalar() || in.Src1 == XZR {
			return fmt.Errorf("prefetch base %s is not an addressable register", in.Src1)
		}
		return nil
	default:
		return p.validateSVE(in)
	}
}

// Stats summarizes the static instruction mix of a program; the generator
// tests use it to check that optimizations change only what they should.
type Stats struct {
	Total    int // excluding labels
	ALU      int
	Loads    int
	Stores   int
	FMA      int
	Prfm     int
	Labels   int
	Branches int
}

// CollectStats counts instructions by class.
func (p *Program) CollectStats() Stats {
	var s Stats
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case OpLabel:
			s.Labels++
			continue
		case OpB, OpBne:
			s.Branches++
		}
		s.Total++
		switch ClassOf(in.Op) {
		case ClassALU:
			s.ALU++
		case ClassLoad:
			s.Loads++
		case ClassStore:
			s.Stores++
		case ClassFMA:
			s.FMA++
		case ClassPrfm:
			s.Prfm++
		}
	}
	return s
}

// VectorRegsUsed returns how many distinct vector registers the program
// touches. Table II's feasibility constraint is that this never exceeds 32.
func (p *Program) VectorRegsUsed() int {
	var seen [NumVectorRegs]bool
	for i := range p.Instrs {
		in := &p.Instrs[i]
		for _, r := range in.Reads() {
			if r.IsVector() {
				seen[r.Index()] = true
			}
		}
		for _, r := range in.Writes() {
			if r.IsVector() {
				seen[r.Index()] = true
			}
		}
	}
	n := 0
	for _, b := range seen {
		if b {
			n++
		}
	}
	return n
}
