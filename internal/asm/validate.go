package asm

import "fmt"

// Validate checks structural well-formedness of a program: every branch
// targets a defined label, operand register classes match each opcode,
// addressing immediates are 16-byte multiples where AArch64 requires it,
// and the program terminates with RET. The micro-kernel generator runs
// this on every kernel it emits.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("asm: %s: empty program", p.Name)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if err := p.validateInstr(in); err != nil {
			return fmt.Errorf("asm: %s: instr %d (%s): %w", p.Name, i, in.Op, err)
		}
	}
	last := p.Instrs[len(p.Instrs)-1]
	if last.Op != OpRet {
		return fmt.Errorf("asm: %s: program does not end in ret", p.Name)
	}
	return nil
}

func (p *Program) validateInstr(in *Instr) error {
	switch in.Op {
	case OpNop, OpRet:
		return nil
	case OpLabel:
		if in.Label == "" {
			return fmt.Errorf("label without a name")
		}
		return nil
	case OpB, OpBne:
		if _, ok := p.labels[in.Label]; !ok {
			return fmt.Errorf("branch to undefined label %q", in.Label)
		}
		return nil
	case OpMov, OpLsl, OpAddI, OpSubI, OpSubs:
		if !in.Dst.IsScalar() || !in.Src1.IsScalar() {
			return fmt.Errorf("scalar op with non-scalar operand (%s, %s)", in.Dst, in.Src1)
		}
		if in.Op == OpSubs && in.Dst == XZR && in.Src1 == XZR {
			return fmt.Errorf("subs on xzr only is useless")
		}
		return nil
	case OpMovI:
		if !in.Dst.IsScalar() {
			return fmt.Errorf("mov immediate into non-scalar %s", in.Dst)
		}
		return nil
	case OpAdd:
		if !in.Dst.IsScalar() || !in.Src1.IsScalar() || !in.Src2.IsScalar() {
			return fmt.Errorf("add with non-scalar operand")
		}
		return nil
	case OpLdrQ, OpLdrQPost:
		if !in.Dst.IsVector() {
			return fmt.Errorf("vector load into scalar %s", in.Dst)
		}
		if !in.Src1.IsScalar() || in.Src1 == XZR {
			return fmt.Errorf("load base %s is not an addressable register", in.Src1)
		}
		return nil
	case OpStrQ, OpStrQPost:
		if !in.Dst.IsVector() {
			return fmt.Errorf("vector store from scalar %s", in.Dst)
		}
		if !in.Src1.IsScalar() || in.Src1 == XZR {
			return fmt.Errorf("store base %s is not an addressable register", in.Src1)
		}
		return nil
	case OpFmla:
		if !in.Dst.IsVector() || !in.Src1.IsVector() || !in.Src2.IsVector() {
			return fmt.Errorf("fmla with scalar operand")
		}
		return nil
	case OpVZero:
		if !in.Dst.IsVector() {
			return fmt.Errorf("movi zero into scalar %s", in.Dst)
		}
		return nil
	case OpPrfm:
		if !in.Src1.IsScalar() || in.Src1 == XZR {
			return fmt.Errorf("prefetch base %s is not an addressable register", in.Src1)
		}
		return nil
	default:
		return p.validateSVE(in)
	}
}

// Stats summarizes the static instruction mix of a program; the generator
// tests use it to check that optimizations change only what they should.
type Stats struct {
	Total    int // excluding labels
	ALU      int
	Loads    int
	Stores   int
	FMA      int
	Prfm     int
	Labels   int
	Branches int
}

// CollectStats counts instructions by class.
func (p *Program) CollectStats() Stats {
	var s Stats
	for i := range p.Instrs {
		in := &p.Instrs[i]
		switch in.Op {
		case OpLabel:
			s.Labels++
			continue
		case OpB, OpBne:
			s.Branches++
		}
		s.Total++
		switch ClassOf(in.Op) {
		case ClassALU:
			s.ALU++
		case ClassLoad:
			s.Loads++
		case ClassStore:
			s.Stores++
		case ClassFMA:
			s.FMA++
		case ClassPrfm:
			s.Prfm++
		}
	}
	return s
}

// VectorRegsUsed returns how many distinct vector registers the program
// touches. Table II's feasibility constraint is that this never exceeds 32.
func (p *Program) VectorRegsUsed() int {
	var seen [NumVectorRegs]bool
	for i := range p.Instrs {
		in := &p.Instrs[i]
		for _, r := range in.Reads() {
			if r.IsVector() {
				seen[r.Index()] = true
			}
		}
		for _, r := range in.Writes() {
			if r.IsVector() {
				seen[r.Index()] = true
			}
		}
	}
	n := 0
	for _, b := range seen {
		if b {
			n++
		}
	}
	return n
}
