package asm

import (
	"fmt"
	"strings"
)

// String renders the program as GNU-style AArch64 assembly text, the form
// a user would inspect with cmd/autogemm-gen. Lane suffixes use the NEON
// ".4s" spelling; for SVE configurations the printed text is still the
// NEON form since the IR is lane-width agnostic.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// kernel %s\n", p.Name)
	for i := range p.Instrs {
		in := &p.Instrs[i]
		line := formatInstr(in)
		if in.Op == OpLabel {
			fmt.Fprintf(&b, "%s\n", line)
			continue
		}
		if in.Comment != "" {
			fmt.Fprintf(&b, "\t%-40s // %s\n", line, in.Comment)
		} else {
			fmt.Fprintf(&b, "\t%s\n", line)
		}
	}
	return b.String()
}

// FormatInstr renders one instruction in the same assembly syntax as
// Program.String — diagnostics (cmd/autogemm-lint) use it to show the
// instruction a finding points at.
func FormatInstr(in *Instr) string { return formatInstr(in) }

func formatInstr(in *Instr) string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpMov:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src1)
	case OpMovI:
		return fmt.Sprintf("mov %s, #%d", in.Dst, in.Imm)
	case OpLsl:
		return fmt.Sprintf("lsl %s, %s, #%d", in.Dst, in.Src1, in.Imm)
	case OpAdd:
		return fmt.Sprintf("add %s, %s, %s", in.Dst, in.Src1, in.Src2)
	case OpAddI:
		return fmt.Sprintf("add %s, %s, #%d", in.Dst, in.Src1, in.Imm)
	case OpSubI:
		return fmt.Sprintf("sub %s, %s, #%d", in.Dst, in.Src1, in.Imm)
	case OpSubs:
		return fmt.Sprintf("subs %s, %s, #%d", in.Dst, in.Src1, in.Imm)
	case OpLabel:
		return in.Label + ":"
	case OpB:
		return "b " + in.Label
	case OpBne:
		return "b.ne " + in.Label
	case OpRet:
		return "ret"
	case OpLdrQ:
		return fmt.Sprintf("ldr q%d, [%s, #%d]", in.Dst.Index(), in.Src1, in.Imm)
	case OpLdrQPost:
		return fmt.Sprintf("ldr q%d, [%s], #%d", in.Dst.Index(), in.Src1, in.Imm)
	case OpStrQ:
		return fmt.Sprintf("str q%d, [%s, #%d]", in.Dst.Index(), in.Src1, in.Imm)
	case OpStrQPost:
		return fmt.Sprintf("str q%d, [%s], #%d", in.Dst.Index(), in.Src1, in.Imm)
	case OpFmla:
		return fmt.Sprintf("fmla %s.4s, %s.4s, %s.s[%d]", in.Dst, in.Src1, in.Src2, in.Lane)
	case OpVZero:
		return fmt.Sprintf("movi %s.4s, #0", in.Dst)
	case OpPrfm:
		return fmt.Sprintf("prfm pldl1keep, [%s, #%d]", in.Src1, in.Imm)
	default:
		if line, ok := formatSVE(in); ok {
			return line
		}
		return fmt.Sprintf("<op %d>", in.Op)
	}
}
