package asm

import "testing"

// TestGoldenEncodings pins widely-known AArch64 words.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		build func(p *Program)
		want  uint32
		name  string
	}{
		{func(p *Program) { p.Ret() }, 0xD65F03C0, "ret"},
		{func(p *Program) { p.Add(X(0), X(1), X(2)); p.Ret() }, 0x8B020020, "add x0,x1,x2"},
		{func(p *Program) { p.MovI(X(0), 1); p.Ret() }, 0xD2800020, "movz x0,#1"},
		{func(p *Program) { p.Mov(X(3), X(7)); p.Ret() }, 0xAA0703E3, "mov x3,x7"},
		{func(p *Program) { p.AddI(X(1), X(2), 4); p.Ret() }, 0x91001041, "add x1,x2,#4"},
		{func(p *Program) { p.Subs(X(29), X(29), 1); p.Ret() }, 0xF10007BD, "subs x29,x29,#1"},
		{func(p *Program) { p.Lsl(X(3), X(3), 2); p.Ret() }, 0xD37EF463, "lsl x3,x3,#2"},
		{func(p *Program) { p.LdrQ(V(0), X(1), 16); p.Ret() }, 0x3DC00420, "ldr q0,[x1,#16]"},
		{func(p *Program) { p.LdrQPost(V(5), X(6), 16); p.Ret() }, 0x3CC104C5, "ldr q5,[x6],#16"},
		{func(p *Program) { p.StrQ(V(2), X(9), 0); p.Ret() }, 0x3D800122, "str q2,[x9]"},
		{func(p *Program) { p.VZero(V(7)); p.Ret() }, 0x4F000407, "movi v7.4s,#0"},
	}
	for _, c := range cases {
		p := NewProgram("g")
		c.build(p)
		words, err := p.Encode()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if words[0] != c.want {
			t.Errorf("%s: encoded %#08x, want %#08x", c.name, words[0], c.want)
		}
	}
}

// TestBranchEncoding: backward conditional branch with correct offset.
func TestBranchEncoding(t *testing.T) {
	p := NewProgram("b")
	p.MovI(X(29), 4)
	p.Label("loop")
	p.Subs(X(29), X(29), 1)
	p.Bne("loop")
	p.Ret()
	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// words: movz, subs, b.ne, ret — b.ne at word 2 targets word 1 → delta -1.
	minusOne := int32(-1)
	want := 0x54000001 | (uint32(minusOne)&0x7FFFF)<<5
	if words[2] != want {
		t.Errorf("b.ne encoded %#08x, want %#08x", words[2], want)
	}
	// Unconditional forward branch.
	p2 := NewProgram("b2")
	p2.B("end")
	p2.MovI(X(0), 0)
	p2.Label("end")
	p2.Ret()
	w2, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if w2[0] != 0x14000002 {
		t.Errorf("b +2 encoded %#08x", w2[0])
	}
}

// TestFMLALaneBits: the H:L index bits select the element.
func TestFMLALaneBits(t *testing.T) {
	words := make([]uint32, 4)
	for lane := 0; lane < 4; lane++ {
		p := NewProgram("f")
		p.Fmla(V(0), V(1), V(2), lane)
		p.Ret()
		ws, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		words[lane] = ws[0]
	}
	// All four encodings distinct; lane 0 has H=L=0.
	if words[0] != 0x4F821020 {
		t.Errorf("fmla v0.4s,v1.4s,v2.s[0] = %#08x, want 0x4F821020", words[0])
	}
	seen := map[uint32]bool{}
	for lane, w := range words {
		if seen[w] {
			t.Errorf("lane %d encoding collides", lane)
		}
		seen[w] = true
	}
	if words[1] != words[0]|1<<21 {
		t.Errorf("lane 1 should set L (bit 21): %#08x", words[1])
	}
	if words[2] != words[0]|1<<11 {
		t.Errorf("lane 2 should set H (bit 11): %#08x", words[2])
	}
}

// TestEncodeRejectsOutOfRange: unencodable immediates error out rather
// than truncating.
func TestEncodeRejectsOutOfRange(t *testing.T) {
	cases := []func(p *Program){
		func(p *Program) { p.MovI(X(0), 1<<20) },
		func(p *Program) { p.AddI(X(0), X(1), 1<<13) },
		func(p *Program) { p.LdrQ(V(0), X(1), 8) },       // not 16-aligned
		func(p *Program) { p.LdrQPost(V(0), X(1), 512) }, // exceeds imm9
		func(p *Program) { p.Fmla(V(0), V(1), V(2), 9) }, // lane beyond .4s
	}
	for i, build := range cases {
		p := NewProgram("bad")
		build(p)
		p.Ret()
		if _, err := p.Encode(); err == nil {
			t.Errorf("case %d: encoded out-of-range operand", i)
		}
	}
}

// TestEncodeDecodeRoundTrip: a full generated-kernel-shaped program
// survives encode → decode with identical semantics fields.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := NewProgram("rt")
	p.Prfm(X(0), 64)
	p.Lsl(X(3), X(3), 2)
	p.Mov(X(6), X(0))
	p.Add(X(7), X(6), X(3))
	p.LdrQ(V(0), X(8), 0)
	p.LdrQPost(V(20), X(6), 16)
	p.MovI(X(29), 8)
	p.Label("loop")
	p.Fmla(V(0), V(21), V(20), 3)
	p.AddI(X(1), X(1), 64)
	p.Subs(X(29), X(29), 1)
	p.Bne("loop")
	p.StrQPost(V(0), X(11), 16)
	p.SubI(X(6), X(6), 128)
	p.VZero(V(9))
	p.Ret()

	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(words)
	if err != nil {
		t.Fatal(err)
	}
	re, err := back.Encode()
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if len(re) != len(words) {
		t.Fatalf("round trip changed length %d -> %d", len(words), len(re))
	}
	for i := range words {
		if words[i] != re[i] {
			t.Errorf("word %d: %#08x -> %#08x", i, words[i], re[i])
		}
	}
}

// TestGeneratedKernelEncodes: the real generator output is fully
// encodable and the decoded program is functionally identical.
func TestGeneratedKernelEncodes(t *testing.T) {
	// Build a plausible kernel shape by hand (avoiding an import cycle
	// with mkernel); mkernel's own tests cover Encode on its output.
	p := NewProgram("k")
	p.Lsl(X(3), X(3), 2)
	p.Lsl(X(4), X(4), 2)
	p.Lsl(X(5), X(5), 2)
	p.Mov(X(6), X(0))
	p.Mov(X(8), X(2))
	p.Add(X(7), X(6), X(3))
	p.Add(X(9), X(8), X(5))
	for i := 0; i < 4; i++ {
		p.LdrQ(V(i), X(8), int64(i%2)*16)
	}
	p.MovI(X(29), 4)
	p.Label("l")
	for i := 0; i < 4; i++ {
		p.Fmla(V(i), V(6), V(4), i)
	}
	p.LdrQPost(V(4), X(6), 16)
	p.Add(X(1), X(1), X(4))
	p.Subs(X(29), X(29), 1)
	p.Bne("l")
	for i := 0; i < 4; i++ {
		p.StrQPost(V(i), X(9), 16)
	}
	p.Ret()
	words, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != p.CollectStats().Total {
		t.Errorf("encoded %d words for %d instructions", len(words), p.CollectStats().Total)
	}
}
