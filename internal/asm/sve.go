package asm

import "fmt"

// SVE predication support. The paper ports autoGEMM to A64FX by
// substituting SVE for NEON intrinsics and lists deeper SVE optimization
// as future work (§V-C); this extension implements the key SVE facility
// NEON lacks — per-lane predication — so kernels can handle n-tails that
// are not multiples of the vector width without padding. The subset
// mirrors real SVE: WHILELT builds a predicate from loop bounds, PTRUE
// activates all lanes, and LD1W/ST1W transfer only active lanes (loads
// zero inactive ones). FMLA stays unpredicated, as in SVE's indexed
// form; predicated stores discard the garbage lanes.

// NumPredRegs is the SVE predicate register file size (P0..P15).
const NumPredRegs = 16

// predBase is the Reg encoding offset for predicate registers.
const predBase = NumScalarRegs + NumVectorRegs

// P returns the i-th predicate register.
func P(i int) Reg {
	if i < 0 || i >= NumPredRegs {
		panic(fmt.Sprintf("asm: predicate register P%d out of range", i))
	}
	return Reg(predBase + i)
}

// IsPred reports whether r names a predicate register.
func (r Reg) IsPred() bool { return r >= predBase && r < predBase+NumPredRegs }

// SVE opcodes, continuing the Op space.
const (
	OpWhilelt Op = numOps + iota // Dst(pred) = lanes i where Src1 + i < Src2
	OpPTrue                      // Dst(pred) = all lanes active
	OpLd1W                       // Dst(vec) = mem[Src1 + Imm] for active lanes of Pred; others zero
	OpSt1W                       // mem[Src1 + Imm] = Dst(vec) for active lanes of Pred
	numSVEOps
)

// Pred returns the governing predicate of a predicated instruction (held
// in Src2 for the memory forms).
func (in *Instr) Pred() Reg { return in.Src2 }

// Whilelt appends Dst = whilelt(idx, limit).
func (p *Program) Whilelt(dst, idx, limit Reg) *Program {
	return p.push(Instr{Op: OpWhilelt, Dst: dst, Src1: idx, Src2: limit})
}

// PTrue appends Dst = all-active.
func (p *Program) PTrue(dst Reg) *Program { return p.push(Instr{Op: OpPTrue, Dst: dst}) }

// Ld1W appends Dst = mem[base + off] under pred (inactive lanes zeroed).
func (p *Program) Ld1W(dst, pred, base Reg, off int64) *Program {
	return p.push(Instr{Op: OpLd1W, Dst: dst, Src1: base, Src2: pred, Imm: off})
}

// St1W appends mem[base + off] = src under pred.
func (p *Program) St1W(src, pred, base Reg, off int64) *Program {
	return p.push(Instr{Op: OpSt1W, Dst: src, Src1: base, Src2: pred, Imm: off})
}

// sveOpName names the extension opcodes.
func sveOpName(o Op) (string, bool) {
	switch o {
	case OpWhilelt:
		return "whilelt", true
	case OpPTrue:
		return "ptrue", true
	case OpLd1W:
		return "ld1w", true
	case OpSt1W:
		return "st1w", true
	default:
		return "", false
	}
}

// sveClass classifies the extension opcodes.
func sveClass(o Op) (Class, bool) {
	switch o {
	case OpWhilelt, OpPTrue:
		return ClassALU, true
	case OpLd1W:
		return ClassLoad, true
	case OpSt1W:
		return ClassStore, true
	default:
		return ClassNone, false
	}
}

// validateSVE checks the extension opcodes.
func (p *Program) validateSVE(in *Instr) error {
	switch in.Op {
	case OpWhilelt:
		if !in.Dst.IsPred() || !in.Src1.IsScalar() || !in.Src2.IsScalar() {
			return fmt.Errorf("whilelt operands must be (pred, scalar, scalar)")
		}
		return nil
	case OpPTrue:
		if !in.Dst.IsPred() {
			return fmt.Errorf("ptrue destination must be a predicate")
		}
		return nil
	case OpLd1W, OpSt1W:
		if !in.Dst.IsVector() {
			return fmt.Errorf("predicated transfer data register %s is not a vector", in.Dst)
		}
		if !in.Src2.IsPred() {
			return fmt.Errorf("predicated transfer needs a predicate, got %s", in.Src2)
		}
		if !in.Src1.IsScalar() || in.Src1 == XZR {
			return fmt.Errorf("base %s is not addressable", in.Src1)
		}
		return nil
	default:
		return fmt.Errorf("unknown SVE opcode %d", in.Op)
	}
}

// sveReads lists register reads of the extension opcodes.
func sveReads(in *Instr) ([]Reg, bool) {
	switch in.Op {
	case OpWhilelt:
		return []Reg{in.Src1, in.Src2}, true
	case OpPTrue:
		return nil, true
	case OpLd1W:
		return []Reg{in.Src1, in.Src2}, true
	case OpSt1W:
		return []Reg{in.Dst, in.Src1, in.Src2}, true
	default:
		return nil, false
	}
}

// sveWrites lists register writes of the extension opcodes.
func sveWrites(in *Instr) ([]Reg, bool) {
	switch in.Op {
	case OpWhilelt, OpPTrue, OpLd1W:
		return []Reg{in.Dst}, true
	case OpSt1W:
		return nil, true
	default:
		return nil, false
	}
}

// formatSVE renders the extension opcodes.
func formatSVE(in *Instr) (string, bool) {
	pn := func(r Reg) string { return fmt.Sprintf("p%d", int(r)-predBase) }
	switch in.Op {
	case OpWhilelt:
		return fmt.Sprintf("whilelt %s.s, %s, %s", pn(in.Dst), in.Src1, in.Src2), true
	case OpPTrue:
		return fmt.Sprintf("ptrue %s.s", pn(in.Dst)), true
	case OpLd1W:
		return fmt.Sprintf("ld1w {z%d.s}, %s/z, [%s, #%d]", in.Dst.Index(), pn(in.Src2), in.Src1, in.Imm), true
	case OpSt1W:
		return fmt.Sprintf("st1w {z%d.s}, %s, [%s, #%d]", in.Dst.Index(), pn(in.Src2), in.Src1, in.Imm), true
	default:
		return "", false
	}
}
