package asm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegisterConstructors(t *testing.T) {
	if X(0) != Reg(0) || X(30) != Reg(30) {
		t.Error("scalar register numbering")
	}
	if !V(0).IsVector() || V(31).Index() != 31 {
		t.Error("vector register numbering")
	}
	if X(5).IsVector() || !X(5).IsScalar() {
		t.Error("class predicates")
	}
	if XZR.String() != "xzr" || V(7).String() != "v7" || X(3).String() != "x3" {
		t.Error("register names")
	}
}

func TestRegisterConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { X(32) }, func() { X(-1) }, func() { V(32) }, func() { V(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			f()
		}()
	}
}

func TestProgramBuilderAndLabels(t *testing.T) {
	p := NewProgram("t")
	p.MovI(X(0), 4).Label("top").Subs(X(0), X(0), 1).Bne("top").Ret()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if i, ok := p.LabelIndex("top"); !ok || p.Instrs[i].Op != OpLabel {
		t.Error("label resolution")
	}
	if _, ok := p.LabelIndex("missing"); ok {
		t.Error("phantom label")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate label")
		}
	}()
	NewProgram("t").Label("a").Label("a")
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func(f func(p *Program)) error {
		p := NewProgram("t")
		f(p)
		p.Ret()
		return p.Validate()
	}
	cases := []struct {
		name string
		f    func(p *Program)
	}{
		{"undefined branch", func(p *Program) { p.Bne("nowhere") }},
		{"vector into scalar mov", func(p *Program) { p.Mov(V(0), X(1)) }},
		{"scalar fmla", func(p *Program) { p.Fmla(V(0), X(1), V(2), 0) }},
		{"load into scalar", func(p *Program) { p.LdrQ(X(0), X(1), 0) }},
		{"load base xzr", func(p *Program) { p.LdrQ(V(0), XZR, 0) }},
		{"store from scalar", func(p *Program) { p.StrQ(X(0), X(1), 0) }},
	}
	for _, c := range cases {
		if err := mk(c.f); err == nil {
			t.Errorf("%s: validation passed, want error", c.name)
		}
	}
	if err := NewProgram("empty").Validate(); err == nil {
		t.Error("empty program validated")
	}
	p := NewProgram("noret")
	p.MovI(X(0), 1)
	if err := p.Validate(); err == nil {
		t.Error("program without ret validated")
	}
}

func TestReadsWrites(t *testing.T) {
	in := Instr{Op: OpFmla, Dst: V(0), Src1: V(1), Src2: V(2)}
	if got := in.Reads(); len(got) != 3 {
		t.Errorf("fmla reads %v", got) // fmla accumulates: reads dst too
	}
	in = Instr{Op: OpLdrQPost, Dst: V(3), Src1: X(1), Imm: 16}
	if w := in.Writes(); len(w) != 2 {
		t.Errorf("post-index load writes %v, want data+base", w)
	}
	in = Instr{Op: OpStrQ, Dst: V(3), Src1: X(1)}
	if w := in.Writes(); len(w) != 0 {
		t.Errorf("plain store writes %v, want none", w)
	}
	if r := in.Reads(); len(r) != 2 {
		t.Errorf("store reads %v, want data+base", r)
	}
}

func TestCollectStats(t *testing.T) {
	p := NewProgram("s")
	p.MovI(X(29), 2).Label("l")
	p.LdrQ(V(0), X(0), 0)
	p.Fmla(V(1), V(0), V(0), 0)
	p.StrQ(V(1), X(2), 0)
	p.Subs(X(29), X(29), 1).Bne("l").Ret()
	s := p.CollectStats()
	if s.Loads != 1 || s.Stores != 1 || s.FMA != 1 || s.Labels != 1 || s.Branches != 1 {
		t.Errorf("stats %+v", s)
	}
	if s.ALU != 3 { // movi, subs, bne
		t.Errorf("ALU count %d, want 3", s.ALU)
	}
}

func TestVectorRegsUsed(t *testing.T) {
	p := NewProgram("v")
	p.VZero(V(0)).VZero(V(5)).Fmla(V(0), V(5), V(9), 1).Ret()
	if n := p.VectorRegsUsed(); n != 3 {
		t.Errorf("VectorRegsUsed = %d, want 3", n)
	}
}

func TestPrinterOutput(t *testing.T) {
	p := NewProgram("pr")
	p.Prfm(X(0), 64)
	p.Lsl(X(3), X(3), 2).Comment("lda *= 4")
	p.MovI(X(29), 7).Label("loop")
	p.LdrQPost(V(20), X(6), 16)
	p.Fmla(V(0), V(21), V(20), 2)
	p.StrQ(V(0), X(11), 32)
	p.Subs(X(29), X(29), 1).Bne("loop").Ret()
	out := p.String()
	for _, want := range []string{
		"prfm pldl1keep, [x0, #64]",
		"lsl x3, x3, #2",
		"// lda *= 4",
		"loop:",
		"ldr q20, [x6], #16",
		"fmla v0.4s, v21.4s, v20.s[2]",
		"str q0, [x11, #32]",
		"subs x29, x29, #1",
		"b.ne loop",
		"ret",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q in:\n%s", want, out)
		}
	}
}

// TestClassTotalProperty: every opcode maps to exactly one class and the
// class assignment is stable under round-trips.
func TestClassTotalProperty(t *testing.T) {
	f := func(op uint8) bool {
		o := Op(op % uint8(numOps))
		c := ClassOf(o)
		return c <= ClassPrfm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
