// Package asm defines a small AArch64-flavoured assembly intermediate
// representation used by the autoGEMM micro-kernel generator.
//
// The IR covers exactly the instruction mix that Listing 1 of the paper
// emits: scalar pointer arithmetic (MOV/MOVI/LSL/ADD/SUBS), vector loads
// and stores of one SIMD register (offset and post-index addressing),
// fused multiply-add by element (FMLA Vd, Vn, Vm.s[lane]), prefetch, and
// the loop branch. Programs built from this IR are executed functionally
// and timed by package sim.
//
// Vector width is a property of the executing machine, not of the IR: a
// vector register holds σ_lane float32 values (4 for NEON, 16 for the
// 512-bit SVE configuration used by A64FX).
package asm

import "fmt"

// NumScalarRegs and NumVectorRegs fix the architectural register file
// sizes. AArch64 has 31 general-purpose registers plus the zero register,
// and 32 SIMD registers — the paper's Table II derives its 58 feasible
// tile sizes from the 32-vector-register limit.
const (
	NumScalarRegs = 32 // X0..X30 plus XZR (index 31)
	NumVectorRegs = 32 // V0..V31
)

// Reg identifies a register. Values 0..31 are the scalar registers
// X0..X30 and XZR; values 32..63 are the vector registers V0..V31.
type Reg uint8

// XZR is the AArch64 zero register: reads as zero, writes are discarded.
const XZR = Reg(31)

// NoReg marks an unused register operand.
const NoReg = Reg(255)

// X returns the i-th scalar register.
func X(i int) Reg {
	if i < 0 || i >= NumScalarRegs {
		panic(fmt.Sprintf("asm: scalar register X%d out of range", i))
	}
	return Reg(i)
}

// V returns the i-th vector register.
func V(i int) Reg {
	if i < 0 || i >= NumVectorRegs {
		panic(fmt.Sprintf("asm: vector register V%d out of range", i))
	}
	return Reg(NumScalarRegs + i)
}

// IsVector reports whether r names a SIMD register.
func (r Reg) IsVector() bool { return r >= NumScalarRegs && r < NumScalarRegs+NumVectorRegs }

// IsScalar reports whether r names a general-purpose register.
func (r Reg) IsScalar() bool { return r < NumScalarRegs }

// Index returns the register number within its class.
func (r Reg) Index() int {
	if r.IsVector() {
		return int(r - NumScalarRegs)
	}
	return int(r)
}

// String renders the register in AArch64 syntax.
func (r Reg) String() string {
	switch {
	case r == NoReg:
		return "-"
	case r == XZR:
		return "xzr"
	case r.IsVector():
		return fmt.Sprintf("v%d", r.Index())
	default:
		return fmt.Sprintf("x%d", r.Index())
	}
}

// Op enumerates the instruction kinds in the IR.
type Op uint8

// Instruction opcodes. Addressing follows AArch64: "post" means
// post-indexed (the base register is incremented by the immediate after
// the access); otherwise the immediate is a plain byte offset.
const (
	OpNop Op = iota
	// Scalar ALU.
	OpMov  // Dst = Src1
	OpMovI // Dst = Imm
	OpLsl  // Dst = Src1 << Imm
	OpAdd  // Dst = Src1 + Src2
	OpAddI // Dst = Src1 + Imm
	OpSubI // Dst = Src1 - Imm
	OpSubs // Dst = Src1 - Imm, sets the Z flag
	// Control flow.
	OpLabel // pseudo-instruction: defines Label
	OpB     // unconditional branch to Label
	OpBne   // branch to Label when Z flag is clear
	OpRet   // end of kernel
	// Vector memory.
	OpLdrQ     // Dst(vec) = mem[Src1 + Imm]
	OpLdrQPost // Dst(vec) = mem[Src1]; Src1 += Imm
	OpStrQ     // mem[Src1 + Imm] = Dst(vec)
	OpStrQPost // mem[Src1] = Dst(vec); Src1 += Imm
	// Vector arithmetic.
	OpFmla  // Dst.4s += Src1.4s * Src2.s[Lane]
	OpVZero // Dst.4s = 0 (movi vd.4s, #0)
	// Memory hints.
	OpPrfm // prefetch mem[Src1 + Imm]
	numOps // sentinel
)

var opNames = [numOps]string{
	OpNop:      "nop",
	OpMov:      "mov",
	OpMovI:     "mov",
	OpLsl:      "lsl",
	OpAdd:      "add",
	OpAddI:     "add",
	OpSubI:     "sub",
	OpSubs:     "subs",
	OpLabel:    "label",
	OpB:        "b",
	OpBne:      "b.ne",
	OpRet:      "ret",
	OpLdrQ:     "ldr",
	OpLdrQPost: "ldr",
	OpStrQ:     "str",
	OpStrQPost: "str",
	OpFmla:     "fmla",
	OpVZero:    "movi",
	OpPrfm:     "prfm",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	if name, ok := sveOpName(o); ok {
		return name
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Class groups opcodes by the execution resource they occupy; the timing
// simulator assigns latencies and issue ports per class.
type Class uint8

// Instruction classes.
const (
	ClassNone  Class = iota // labels, ret
	ClassALU                // scalar arithmetic and branches
	ClassLoad               // vector loads
	ClassStore              // vector stores
	ClassFMA                // vector fused multiply-add
	ClassPrfm               // prefetch hints (load port, no result)
)

// ClassOf returns the execution class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case OpMov, OpMovI, OpLsl, OpAdd, OpAddI, OpSubI, OpSubs, OpB, OpBne:
		return ClassALU
	case OpLdrQ, OpLdrQPost:
		return ClassLoad
	case OpStrQ, OpStrQPost:
		return ClassStore
	case OpFmla, OpVZero:
		return ClassFMA
	case OpPrfm:
		return ClassPrfm
	default:
		if c, ok := sveClass(op); ok {
			return c
		}
		return ClassNone
	}
}

// Instr is a single instruction. Field use depends on Op; see the Op
// constants. Comment carries generator annotations that the printer emits
// verbatim, mirroring the commentary in the paper's Listing 1.
type Instr struct {
	Op      Op
	Dst     Reg
	Src1    Reg
	Src2    Reg
	Imm     int64
	Lane    uint8  // FMLA source element
	Label   string // branch target or label name
	Comment string
}

// Program is an ordered instruction sequence with resolved labels.
type Program struct {
	Name   string
	Instrs []Instr
	labels map[string]int // label name -> index of the OpLabel pseudo-instruction
}

// NewProgram returns an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, labels: make(map[string]int)}
}

// Len returns the number of instructions, including label pseudo-instructions.
func (p *Program) Len() int { return len(p.Instrs) }

// LabelIndex returns the instruction index of a label.
func (p *Program) LabelIndex(name string) (int, bool) {
	i, ok := p.labels[name]
	return i, ok
}

func (p *Program) push(in Instr) *Program {
	p.Instrs = append(p.Instrs, in)
	return p
}

// Mov appends Dst = Src.
func (p *Program) Mov(dst, src Reg) *Program { return p.push(Instr{Op: OpMov, Dst: dst, Src1: src}) }

// MovI appends Dst = imm.
func (p *Program) MovI(dst Reg, imm int64) *Program {
	return p.push(Instr{Op: OpMovI, Dst: dst, Imm: imm})
}

// Lsl appends Dst = Src << sh.
func (p *Program) Lsl(dst, src Reg, sh int64) *Program {
	return p.push(Instr{Op: OpLsl, Dst: dst, Src1: src, Imm: sh})
}

// Add appends Dst = a + b.
func (p *Program) Add(dst, a, b Reg) *Program {
	return p.push(Instr{Op: OpAdd, Dst: dst, Src1: a, Src2: b})
}

// AddI appends Dst = a + imm.
func (p *Program) AddI(dst, a Reg, imm int64) *Program {
	return p.push(Instr{Op: OpAddI, Dst: dst, Src1: a, Imm: imm})
}

// SubI appends Dst = a - imm.
func (p *Program) SubI(dst, a Reg, imm int64) *Program {
	return p.push(Instr{Op: OpSubI, Dst: dst, Src1: a, Imm: imm})
}

// Subs appends Dst = a - imm and sets the zero flag.
func (p *Program) Subs(dst, a Reg, imm int64) *Program {
	return p.push(Instr{Op: OpSubs, Dst: dst, Src1: a, Imm: imm})
}

// Label defines a branch target at the current position.
func (p *Program) Label(name string) *Program {
	if _, dup := p.labels[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q in %s", name, p.Name))
	}
	p.labels[name] = len(p.Instrs)
	return p.push(Instr{Op: OpLabel, Label: name})
}

// B appends an unconditional branch.
func (p *Program) B(label string) *Program { return p.push(Instr{Op: OpB, Label: label}) }

// Bne appends a branch taken while the zero flag is clear.
func (p *Program) Bne(label string) *Program { return p.push(Instr{Op: OpBne, Label: label}) }

// Ret terminates the kernel.
func (p *Program) Ret() *Program { return p.push(Instr{Op: OpRet}) }

// LdrQ appends Dst = mem[base + off].
func (p *Program) LdrQ(dst, base Reg, off int64) *Program {
	return p.push(Instr{Op: OpLdrQ, Dst: dst, Src1: base, Imm: off})
}

// LdrQPost appends Dst = mem[base]; base += inc.
func (p *Program) LdrQPost(dst, base Reg, inc int64) *Program {
	return p.push(Instr{Op: OpLdrQPost, Dst: dst, Src1: base, Imm: inc})
}

// StrQ appends mem[base + off] = src.
func (p *Program) StrQ(src, base Reg, off int64) *Program {
	return p.push(Instr{Op: OpStrQ, Dst: src, Src1: base, Imm: off})
}

// StrQPost appends mem[base] = src; base += inc.
func (p *Program) StrQPost(src, base Reg, inc int64) *Program {
	return p.push(Instr{Op: OpStrQPost, Dst: src, Src1: base, Imm: inc})
}

// Fmla appends Dst += Vn * Vm.s[lane] across all vector lanes.
func (p *Program) Fmla(dst, vn, vm Reg, lane int) *Program {
	return p.push(Instr{Op: OpFmla, Dst: dst, Src1: vn, Src2: vm, Lane: uint8(lane)})
}

// VZero appends Dst = 0 across all vector lanes.
func (p *Program) VZero(dst Reg) *Program { return p.push(Instr{Op: OpVZero, Dst: dst}) }

// Prfm appends a prefetch hint for mem[base + off].
func (p *Program) Prfm(base Reg, off int64) *Program {
	return p.push(Instr{Op: OpPrfm, Src1: base, Imm: off})
}

// Comment attaches a comment to the most recently appended instruction.
func (p *Program) Comment(c string) *Program {
	if n := len(p.Instrs); n > 0 {
		p.Instrs[n-1].Comment = c
	}
	return p
}

// Reads returns the registers an instruction reads. The zero register is
// included when named; callers that track dependencies should skip XZR.
func (in *Instr) Reads() []Reg {
	switch in.Op {
	case OpMov:
		return []Reg{in.Src1}
	case OpLsl, OpAddI, OpSubI, OpSubs:
		return []Reg{in.Src1}
	case OpAdd:
		return []Reg{in.Src1, in.Src2}
	case OpLdrQ, OpPrfm:
		return []Reg{in.Src1}
	case OpLdrQPost:
		return []Reg{in.Src1}
	case OpStrQ:
		return []Reg{in.Dst, in.Src1} // stores read the data register
	case OpStrQPost:
		return []Reg{in.Dst, in.Src1}
	case OpFmla:
		return []Reg{in.Dst, in.Src1, in.Src2} // FMLA accumulates into Dst
	default:
		if rs, ok := sveReads(in); ok {
			return rs
		}
		return nil
	}
}

// Writes returns the registers an instruction writes.
func (in *Instr) Writes() []Reg {
	switch in.Op {
	case OpMov, OpMovI, OpLsl, OpAdd, OpAddI, OpSubI, OpSubs, OpLdrQ, OpVZero:
		return []Reg{in.Dst}
	case OpLdrQPost:
		return []Reg{in.Dst, in.Src1} // post-index updates the base
	case OpStrQPost:
		return []Reg{in.Src1}
	case OpFmla:
		return []Reg{in.Dst}
	default:
		if ws, ok := sveWrites(in); ok {
			return ws
		}
		return nil
	}
}
