package analysis

import (
	"fmt"

	"autogemm/internal/asm"
)

// isVecLoad reports an instruction that fully overwrites a vector
// register from memory.
func isVecLoad(op asm.Op) bool {
	switch op {
	case asm.OpLdrQ, asm.OpLdrQPost, asm.OpLd1W:
		return true
	}
	return false
}

// checkPipeline verifies the steady-state software pipeline inside each
// counted loop body. The generator's k-steps are recovered from the
// FMLA Lane operands: all FMLAs of one unrolled k-step share a lane
// index, and the lane changes exactly at step boundaries. Two contracts
// are enforced:
//
//  1. a load issued during step s must not feed an FMLA later in the
//     same step — its consumers belong to step s+1 (or s+2 under B
//     double buffering), otherwise the load latency lands directly on
//     the FMA stream (the Fig 3-b bubble the rotation exists to kill);
//  2. when the generator claims rotation (Options.Rotation), the
//     claimed alternation is verified: with BDouble the B working sets
//     of adjacent k-steps are disjoint, and with ARows > 0 the A
//     working sets of the two halves of the unrolled body differ in
//     exactly ARows registers per side.
func (a *analyzer) checkPipeline(loops []loop) {
	for _, l := range loops {
		if !l.simple {
			continue
		}
		a.checkLoopSteps(l)
	}
}

// stepFMLA describes the FMLAs and loads of a loop body grouped into
// unrolled k-steps.
type stepInfo struct {
	aRegs regset // FMLA Src2 (by-element) registers of the step
	bRegs regset // FMLA Src1 (full-vector) registers of the step
}

func (a *analyzer) checkLoopSteps(l loop) {
	p := a.p
	// Pass 1: same-step load-to-FMLA feeds, walking the body in order.
	step := 0
	lastLane := -1
	loadStep := map[asm.Reg]int{}  // vector reg -> step of its latest load
	loadIndex := map[asm.Reg]int{} // vector reg -> instr index of that load
	var steps []stepInfo
	ensure := func(s int) {
		for len(steps) <= s {
			steps = append(steps, stepInfo{})
		}
	}
	for i := l.head + 1; i < l.latch; i++ {
		in := &p.Instrs[i]
		switch {
		case in.Op == asm.OpFmla:
			if lastLane >= 0 && int(in.Lane) != lastLane {
				step++
			}
			lastLane = int(in.Lane)
			ensure(step)
			steps[step].bRegs.add(regID(in.Src1))
			steps[step].aRegs.add(regID(in.Src2))
			for _, src := range []asm.Reg{in.Src1, in.Src2} {
				if s, ok := loadStep[src]; ok && s == step {
					a.addFinding(Finding{Kind: KindPipeline, Index: i, Reg: src,
						Detail: fmt.Sprintf("FMLA consumes the load at instr %d within the same unrolled k-step — no latency slack", loadIndex[src])})
				}
			}
		case isVecLoad(in.Op):
			loadStep[in.Dst] = step
			loadIndex[in.Dst] = i
		}
	}
	nsteps := len(steps)
	if nsteps == 0 || a.opts.Rotation == nil {
		return
	}
	hint := a.opts.Rotation

	// Pass 2a: B-side double buffering — adjacent k-steps must read
	// disjoint B register sets.
	if hint.BDouble && nsteps >= 2 {
		var even, odd regset
		for s := range steps {
			if s%2 == 0 {
				even = even.union(steps[s].bRegs)
			} else {
				odd = odd.union(steps[s].bRegs)
			}
		}
		if ov := even.inter(odd); !ov.empty() {
			a.addFinding(Finding{Kind: KindRotation, Index: l.head, Reg: regsOf(ov)[0],
				Detail: "B double buffering claimed but adjacent k-steps share B registers"})
		}
	}

	// Pass 2b: A-side rotation — the body holds two unrolled blocks
	// whose A register sets differ in exactly ARows registers each way.
	if hint.ARows > 0 && nsteps%2 == 0 {
		half := nsteps / 2
		var first, second regset
		for s := 0; s < half; s++ {
			first = first.union(steps[s].aRegs)
		}
		for s := half; s < nsteps; s++ {
			second = second.union(steps[s].aRegs)
		}
		onlyFirst := first.minus(second)
		onlySecond := second.minus(first)
		nf, ns := len(regsOf(onlyFirst)), len(regsOf(onlySecond))
		if nf != hint.ARows || ns != hint.ARows {
			a.addFinding(Finding{Kind: KindRotation, Index: l.head, Reg: asm.NoReg,
				Detail: fmt.Sprintf("A rotation of %d rows claimed but block A-sets differ by %d/%d registers", hint.ARows, nf, ns)})
		}
	}
}
