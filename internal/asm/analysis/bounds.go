package analysis

import (
	"fmt"

	"autogemm/internal/asm"
)

// The bounds pass interprets the scalar register file symbolically over
// the affine domain  c + Σ kᵢ·symᵢ  with symbols for the three panel
// base pointers and the three leading dimensions (in elements; the
// kernels' LSL-by-2 stride conversion lands in the coefficients). Every
// load/store address must resolve to  base + r·ld + c  with r and c
// inside the panel plus the declared over-read slack. Counted SUBS/B.NE
// loops are handled exactly: the body's per-iteration delta is affine,
// so the final iteration is re-checked at  snapshot + (n−1)·delta.
//
// The pass is deliberately restricted to the branch structure the
// generator emits — backward conditional branches only. Programs with
// forward or unconditional branches skip the pass (Report.BoundsChecked
// stays false) rather than risk unsound conclusions.

// Affine symbols.
const (
	symLda = iota
	symLdb
	symLdc
	symA
	symB
	symC
	nsyms
)

// symval is an affine value: c + Σ k[i]·sym[i]; known=false is ⊤.
type symval struct {
	known bool
	c     int64
	k     [nsyms]int64
}

func symConst(c int64) symval { return symval{known: true, c: c} }

func symOf(s int) symval {
	v := symval{known: true}
	v.k[s] = 1
	return v
}

func (v symval) add(o symval) symval {
	if !v.known || !o.known {
		return symval{}
	}
	r := symval{known: true, c: v.c + o.c}
	for i := range r.k {
		r.k[i] = v.k[i] + o.k[i]
	}
	return r
}

func (v symval) sub(o symval) symval {
	if !v.known || !o.known {
		return symval{}
	}
	r := symval{known: true, c: v.c - o.c}
	for i := range r.k {
		r.k[i] = v.k[i] - o.k[i]
	}
	return r
}

func (v symval) addConst(c int64) symval {
	if !v.known {
		return v
	}
	v.c += c
	return v
}

func (v symval) shl(sh int64) symval {
	if !v.known || sh < 0 || sh > 32 {
		return symval{}
	}
	v.c <<= sh
	for i := range v.k {
		v.k[i] <<= sh
	}
	return v
}

func (v symval) scale(n int64) symval {
	if !v.known {
		return v
	}
	v.c *= n
	for i := range v.k {
		v.k[i] *= n
	}
	return v
}

// isConst reports a pure constant and its value.
func (v symval) isConst() (int64, bool) {
	if !v.known {
		return 0, false
	}
	for _, k := range v.k {
		if k != 0 {
			return 0, false
		}
	}
	return v.c, true
}

// boundsState is the machine state of the symbolic walk.
type boundsState struct {
	x     [asm.NumScalarRegs]symval
	preds [asm.NumPredRegs]int // active lanes; -1 unknown
}

type boundsInterp struct {
	a      *analyzer
	b      *Bounds
	st     boundsState
	snaps  map[int]boundsState // label instruction index -> state
	rewalk bool

	// incomplete records that some access was skipped rather than proven
	// (unknown address, absolute address, havoced loop, unknown opcode).
	// It demotes Report.BoundsComplete without producing a finding.
	incomplete bool
}

// checkBounds drives the symbolic walk. Loops must be the counted
// backward-B.NE kind; anything else disables the pass.
func (a *analyzer) checkBounds(loops []loop) {
	p := a.p
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op == asm.OpB {
			return // unconditional branches: linear walk unsound
		}
		if in.Op == asm.OpBne {
			if t, ok := p.LabelIndex(in.Label); !ok || t > i {
				return // forward conditional branch
			}
		}
	}
	for _, l := range loops {
		if !l.simple {
			return // nested or irregular loop bodies
		}
	}
	bi := &boundsInterp{a: a, b: a.opts.Bounds, snaps: make(map[int]boundsState)}
	for r := range bi.st.x {
		bi.st.x[r] = symval{} // unknown
	}
	bi.st.x[0] = symOf(symA)
	bi.st.x[1] = symOf(symB)
	bi.st.x[2] = symOf(symC)
	bi.st.x[3] = symOf(symLda)
	bi.st.x[4] = symOf(symLdb)
	bi.st.x[5] = symOf(symLdc)
	for i := range bi.st.preds {
		bi.st.preds[i] = -1
	}
	a.report.BoundsChecked = true
	a.report.AccessBanks = make([]int8, len(p.Instrs))
	for i := range a.report.AccessBanks {
		a.report.AccessBanks[i] = BankNone
	}

	i := 0
	for i < len(p.Instrs) {
		in := &p.Instrs[i]
		if in.Op == asm.OpLabel {
			bi.snaps[i] = bi.st
		}
		if in.Op == asm.OpBne {
			t, _ := p.LabelIndex(in.Label)
			bi.handleLoop(t, i)
		}
		bi.step(in, i)
		i++
	}
	a.report.BoundsComplete = !bi.incomplete
}

// val reads a scalar register's symbolic value.
func (bi *boundsInterp) val(r asm.Reg) symval {
	if r == asm.XZR {
		return symConst(0)
	}
	if !r.IsScalar() {
		return symval{}
	}
	return bi.st.x[r.Index()]
}

func (bi *boundsInterp) set(r asm.Reg, v symval) {
	if r == asm.XZR || !r.IsScalar() {
		return
	}
	bi.st.x[r.Index()] = v
}

// step interprets one instruction, checking memory accesses.
func (bi *boundsInterp) step(in *asm.Instr, idx int) {
	switch in.Op {
	case asm.OpMov:
		bi.set(in.Dst, bi.val(in.Src1))
	case asm.OpMovI:
		bi.set(in.Dst, symConst(in.Imm))
	case asm.OpLsl:
		bi.set(in.Dst, bi.val(in.Src1).shl(in.Imm))
	case asm.OpAdd:
		bi.set(in.Dst, bi.val(in.Src1).add(bi.val(in.Src2)))
	case asm.OpAddI:
		bi.set(in.Dst, bi.val(in.Src1).addConst(in.Imm))
	case asm.OpSubI, asm.OpSubs:
		bi.set(in.Dst, bi.val(in.Src1).addConst(-in.Imm))
	case asm.OpLdrQ:
		bi.checkAccess(idx, bi.val(in.Src1).addConst(in.Imm), int64(bi.b.Lanes)*4, false)
	case asm.OpStrQ:
		bi.checkAccess(idx, bi.val(in.Src1).addConst(in.Imm), int64(bi.b.Lanes)*4, true)
	case asm.OpLdrQPost:
		bi.checkAccess(idx, bi.val(in.Src1), int64(bi.b.Lanes)*4, false)
		bi.set(in.Src1, bi.val(in.Src1).addConst(in.Imm))
	case asm.OpStrQPost:
		bi.checkAccess(idx, bi.val(in.Src1), int64(bi.b.Lanes)*4, true)
		bi.set(in.Src1, bi.val(in.Src1).addConst(in.Imm))
	case asm.OpPTrue:
		if in.Dst.IsPred() {
			bi.st.preds[int(in.Dst)-predID0] = bi.b.Lanes
		}
	case asm.OpWhilelt:
		if in.Dst.IsPred() {
			n := -1
			if lo, ok := bi.val(in.Src1).isConst(); ok {
				if hi, ok2 := bi.val(in.Src2).isConst(); ok2 {
					d := hi - lo
					if d < 0 {
						d = 0
					}
					if d > int64(bi.b.Lanes) {
						d = int64(bi.b.Lanes)
					}
					n = int(d)
				}
			}
			bi.st.preds[int(in.Dst)-predID0] = n
		}
	case asm.OpLd1W, asm.OpSt1W:
		lanes := bi.b.Lanes
		if in.Src2.IsPred() {
			if n := bi.st.preds[int(in.Src2)-predID0]; n >= 0 {
				lanes = n
			}
		}
		if lanes > 0 {
			bi.checkAccess(idx, bi.val(in.Src1).addConst(in.Imm), int64(lanes)*4, in.Op == asm.OpSt1W)
		} else {
			// Provably zero active lanes: nothing to check, but the access
			// stays unclassified, so the program cannot claim completeness.
			bi.incomplete = true
		}
	case asm.OpPrfm, asm.OpNop, asm.OpLabel, asm.OpB, asm.OpBne, asm.OpRet,
		asm.OpFmla, asm.OpVZero:
		// Prefetches are hints with no architectural bound; the rest
		// touch no scalar state or memory.
	default:
		// Unknown opcode writing a scalar register: drop to ⊤.
		bi.incomplete = true
		for _, r := range in.Writes() {
			bi.set(r, symval{})
		}
	}
}

// predID0 is the dataflow id of p0.
const predID0 = asm.NumScalarRegs + asm.NumVectorRegs

// handleLoop is called at a backward B.NE. The body [head+1, latch) has
// already been walked once (iteration 1, accesses checked). Using the
// snapshot at the head label it derives the per-iteration affine delta
// and the exact trip count, re-checks the final iteration, and leaves
// the state at loop exit.
func (bi *boundsInterp) handleLoop(head, latch int) {
	if bi.rewalk {
		return
	}
	p := bi.a.p
	snap, ok := bi.snaps[head]
	if !ok {
		bi.havocBody(head, latch)
		return
	}
	// The governing counter: nearest SUBS before the latch.
	ctr := asm.NoReg
	for j := latch - 1; j > head; j-- {
		if p.Instrs[j].Op == asm.OpSubs {
			ctr = p.Instrs[j].Src1
			break
		}
	}
	if ctr == asm.NoReg || !ctr.IsScalar() {
		bi.havocBody(head, latch)
		return
	}
	n, isConst := snap.x[ctr.Index()].isConst()
	if !isConst || n < 1 {
		bi.havocBody(head, latch)
		return
	}
	if n == 1 {
		return // the single iteration was the one already walked
	}
	// Per-iteration delta of every scalar register; unknown propagates.
	var delta [asm.NumScalarRegs]symval
	for r := range delta {
		delta[r] = bi.st.x[r].sub(snap.x[r])
	}
	// Predicates must be loop-invariant for the exact treatment.
	for i := range bi.st.preds {
		if bi.st.preds[i] != snap.preds[i] {
			bi.st.preds[i] = -1
		}
	}
	// Jump to the start of the final iteration and re-walk it with
	// access checks; the walk itself then produces the exit state.
	for r := range bi.st.x {
		bi.st.x[r] = snap.x[r].add(delta[r].scale(n - 1))
	}
	bi.rewalk = true
	for j := head + 1; j < latch; j++ {
		bi.step(&p.Instrs[j], j)
	}
	bi.rewalk = false
}

// havocBody forgets everything the loop body writes — the conservative
// fallback when the trip count cannot be proven. Iterations beyond the
// first were never walked, so their accesses are unverified: the program
// loses completeness even if no finding is ever produced.
func (bi *boundsInterp) havocBody(head, latch int) {
	bi.incomplete = true
	p := bi.a.p
	for j := head + 1; j < latch; j++ {
		in := &p.Instrs[j]
		for _, r := range in.Writes() {
			bi.set(r, symval{})
			if in.Dst.IsPred() {
				bi.st.preds[int(in.Dst)-predID0] = -1
			}
		}
	}
}

// checkAccess verifies one memory access of size bytes at the symbolic
// address.
func (bi *boundsInterp) checkAccess(idx int, addr symval, size int64, isStore bool) {
	if !addr.known || size <= 0 {
		bi.incomplete = true
		return
	}
	b := bi.b
	nbase, base := 0, -1
	for s := symA; s <= symC; s++ {
		if addr.k[s] != 0 {
			nbase++
			base = s
		}
	}
	if nbase == 0 {
		bi.incomplete = true
		return // absolute address: outside the panel model
	}
	bad := func(detail string) {
		kind := KindOverRead
		bi.incomplete = true
		bi.a.addFinding(Finding{Kind: kind, Index: idx, Reg: asm.NoReg, Detail: detail})
	}
	if nbase > 1 || addr.k[base] != 1 {
		bi.incomplete = true
		bi.a.addFinding(Finding{Kind: KindBadAddress, Index: idx, Reg: asm.NoReg,
			Detail: "address is not base + r·ld + c over a single panel"})
		return
	}
	// Classify the access by operand panel. A single instruction reaching
	// two different panels (possible only through exotic pointer reuse the
	// generators never emit) defeats per-instruction bank binding.
	bank := int8(base - symA)
	if have := bi.a.report.AccessBanks[idx]; have != BankNone && have != bank {
		bi.incomplete = true
	}
	bi.a.report.AccessBanks[idx] = bank
	// Byte-stride coefficients must be whole multiples of 4 (the LSL-2
	// element-to-byte conversion) on the matching stride only.
	rowOf := func(sym int) (int64, bool) {
		for s := symLda; s <= symLdc; s++ {
			if s != sym && addr.k[s] != 0 {
				return 0, false
			}
		}
		if addr.k[sym]%4 != 0 {
			return 0, false
		}
		return addr.k[sym] / 4, true
	}
	vb := int64(b.Lanes) * 4
	switch base {
	case symA:
		row, ok := rowOf(symLda)
		if !ok {
			bi.incomplete = true
			bi.a.addFinding(Finding{Kind: KindBadAddress, Index: idx, Reg: asm.NoReg,
				Detail: "A address mixes foreign strides"})
			return
		}
		if isStore {
			bad("store into the A panel")
			return
		}
		if row < 0 || row >= int64(b.MR) {
			bad(fmt.Sprintf("A row %d outside 0..%d", row, b.MR-1))
			return
		}
		limit := int64(b.KC)*4 + int64(b.AOverVectors)*vb
		if addr.c < 0 || addr.c+size > limit {
			bad(fmt.Sprintf("A row offset [%d,%d) exceeds row length %d + slack %d",
				addr.c, addr.c+size, b.KC*4, int64(b.AOverVectors)*vb))
		}
	case symB:
		row, ok := rowOf(symLdb)
		if !ok {
			bi.incomplete = true
			bi.a.addFinding(Finding{Kind: KindBadAddress, Index: idx, Reg: asm.NoReg,
				Detail: "B address mixes foreign strides"})
			return
		}
		if isStore {
			bad("store into the B panel")
			return
		}
		if row < 0 || row >= int64(b.KC+b.BOverRows) {
			bad(fmt.Sprintf("B row %d outside 0..%d (+%d over-read rows)", row, b.KC-1, b.BOverRows))
			return
		}
		if addr.c < 0 || addr.c+size > int64(b.NR)*4 {
			bad(fmt.Sprintf("B column offset [%d,%d) exceeds panel width %d", addr.c, addr.c+size, b.NR*4))
		}
	case symC:
		row, ok := rowOf(symLdc)
		if !ok {
			bi.incomplete = true
			bi.a.addFinding(Finding{Kind: KindBadAddress, Index: idx, Reg: asm.NoReg,
				Detail: "C address mixes foreign strides"})
			return
		}
		if row < 0 || row >= int64(b.MR) {
			bad(fmt.Sprintf("C row %d outside 0..%d", row, b.MR-1))
			return
		}
		if addr.c < 0 || addr.c+size > int64(b.NR)*4 {
			bad(fmt.Sprintf("C offset [%d,%d) exceeds row width %d — C has no over-read slack",
				addr.c, addr.c+size, b.NR*4))
		}
	}
}
