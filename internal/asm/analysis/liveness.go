package analysis

import (
	"fmt"

	"autogemm/internal/asm"
)

// defaultArgs is the AAPCS64 argument convention of the generated
// kernels: x0..x5 are defined at entry.
func (a *analyzer) entryDefined() regset {
	var s regset
	if len(a.opts.ArgRegs) == 0 {
		for i := 0; i <= 5; i++ {
			s.add(i)
		}
		return s
	}
	for _, r := range a.opts.ArgRegs {
		s.add(regID(r))
	}
	return s
}

// checkUseBeforeDef runs a forward "definitely assigned" analysis: a
// register read on some path before any write is a contract violation
// (the kernel would consume garbage).
func (a *analyzer) checkUseBeforeDef() {
	nb := len(a.g.blocks)
	in := make([]regset, nb)
	out := make([]regset, nb)
	full := fullSet()
	for bi := range a.g.blocks {
		in[bi] = full // ⊤ for the must-intersection
		out[bi] = full
	}

	changed := true
	for changed {
		changed = false
		for bi := range a.g.blocks {
			b := &a.g.blocks[bi]
			// The meet is over every incoming edge; block 0 additionally
			// has the virtual entry edge carrying the argument registers.
			s := full
			if bi == 0 {
				s = a.entryDefined()
			}
			for _, p := range b.preds {
				s = s.inter(out[p])
			}
			in[bi] = s
			for i := b.start; i < b.end; i++ {
				s = s.union(a.defs[i])
			}
			if s != out[bi] {
				out[bi] = s
				changed = true
			}
		}
	}
	// Report pass.
	for bi := range a.g.blocks {
		b := &a.g.blocks[bi]
		s := in[bi]
		for i := b.start; i < b.end; i++ {
			missing := a.uses[i].minus(s)
			if !missing.empty() {
				for id := 0; id < universe; id++ {
					if !missing.has(id) {
						continue
					}
					f := Finding{Kind: KindUseBeforeDef, Index: i, Reg: asm.NoReg,
						Detail: "read before any definition reaches it"}
					if id == flagsID {
						f.Detail = "conditional branch reads flags never set by subs"
					} else {
						f.Reg = asm.Reg(id)
					}
					a.addFinding(f)
				}
			}
			s = s.union(a.defs[i])
		}
	}
}

// checkLiveness runs backward liveness to measure peak vector register
// pressure and to flag dead value definitions. Dead *loads* are exempt:
// the generator's trailing over-read loads double as pointer advances
// and prefetch and are part of the documented contract; a dead FMLA or
// VZERO, by contrast, is always a generator bug.
func (a *analyzer) checkLiveness() {
	nb := len(a.g.blocks)
	liveIn := make([]regset, nb)
	liveOut := make([]regset, nb)
	changed := true
	for changed {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			b := &a.g.blocks[bi]
			var out regset
			for _, s := range b.succs {
				out = out.union(liveIn[s])
			}
			liveOut[bi] = out
			s := out
			for i := b.end - 1; i >= b.start; i-- {
				s = s.minus(a.defs[i]).union(a.uses[i])
			}
			if s != liveIn[bi] {
				liveIn[bi] = s
				changed = true
			}
		}
	}
	budget := a.opts.VectorBudget
	if budget <= 0 {
		budget = asm.NumVectorRegs
	}
	maxLive, maxAt := 0, -1
	for bi := range a.g.blocks {
		b := &a.g.blocks[bi]
		s := liveOut[bi]
		for i := b.end - 1; i >= b.start; i-- {
			in := &a.p.Instrs[i]
			if in.Op == asm.OpFmla || in.Op == asm.OpVZero {
				dst := regID(in.Dst)
				if !s.has(dst) {
					a.addFinding(Finding{Kind: KindDeadDef, Index: i, Reg: in.Dst,
						Detail: fmt.Sprintf("%s result is never read", in.Op)})
				}
			}
			s = s.minus(a.defs[i]).union(a.uses[i])
			if n := s.countVectors(); n > maxLive {
				maxLive, maxAt = n, i
			}
		}
	}
	a.report.MaxLiveVectors = maxLive
	if maxLive > budget {
		a.addFinding(Finding{Kind: KindPressure, Index: maxAt, Reg: asm.NoReg,
			Detail: fmt.Sprintf("%d vector registers live, budget %d", maxLive, budget)})
	}
}

// checkClobbers verifies the accumulator protocol with a forward
// dataflow over per-register states: an accumulator is "dirty" from the
// first FMLA that folds into it until a store writes it back to C. A
// full overwrite (vector load or zeroing) of a dirty accumulator throws
// away a partial sum — the exact bug class epilogue–prologue fusion can
// introduce at band boundaries.
func (a *analyzer) checkClobbers() {
	if a.acc.empty() {
		return
	}
	nb := len(a.g.blocks)
	dirtyIn := make([]regset, nb)
	dirtyOut := make([]regset, nb)
	transfer := func(dirty regset, i int, report bool) regset {
		in := &a.p.Instrs[i]
		switch in.Op {
		case asm.OpFmla:
			for _, src := range []asm.Reg{in.Src1, in.Src2} {
				if report && dirty.has(regID(src)) {
					a.addFinding(Finding{Kind: KindRoleOverlap, Index: i, Reg: src,
						Detail: "FMLA multiplicand holds an unstored accumulator"})
				}
			}
			dirty.add(regID(in.Dst))
		case asm.OpStrQ, asm.OpStrQPost, asm.OpSt1W:
			dirty.del(regID(in.Dst)) // data register written back
		case asm.OpLdrQ, asm.OpLdrQPost, asm.OpLd1W, asm.OpVZero:
			id := regID(in.Dst)
			if a.acc.has(id) {
				if report && dirty.has(id) {
					a.addFinding(Finding{Kind: KindAccClobber, Index: i, Reg: in.Dst,
						Detail: "overwrites an accumulator before its partial sum is stored"})
				}
				dirty.del(id) // fresh initialization either way
			}
		}
		return dirty
	}
	changed := true
	for changed {
		changed = false
		for bi := range a.g.blocks {
			b := &a.g.blocks[bi]
			var s regset
			for _, p := range b.preds {
				s = s.union(dirtyOut[p])
			}
			dirtyIn[bi] = s
			for i := b.start; i < b.end; i++ {
				s = transfer(s, i, false)
			}
			if s != dirtyOut[bi] {
				dirtyOut[bi] = s
				changed = true
			}
		}
	}
	for bi := range a.g.blocks {
		s := dirtyIn[bi]
		b := &a.g.blocks[bi]
		for i := b.start; i < b.end; i++ {
			s = transfer(s, i, true)
		}
	}
}
