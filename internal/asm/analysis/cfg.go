package analysis

import (
	"fmt"
	"math/bits"

	"autogemm/internal/asm"
)

// The dataflow register universe: scalar x0..xzr occupy ids 0..31,
// vectors v0..v31 ids 32..63, predicates p0..p15 ids 64..79, and one
// synthetic id for the NZCV flags written by SUBS and read by B.NE.
const (
	vecBase  = asm.NumScalarRegs
	predEnd  = asm.NumScalarRegs + asm.NumVectorRegs + asm.NumPredRegs
	flagsID  = predEnd // 80
	universe = flagsID + 1
)

// regset is a bitset over the register universe.
type regset [2]uint64

func (s *regset) add(id int)     { s[id>>6] |= 1 << (id & 63) }
func (s *regset) del(id int)     { s[id>>6] &^= 1 << (id & 63) }
func (s regset) has(id int) bool { return s[id>>6]&(1<<(id&63)) != 0 }

func (s regset) union(o regset) regset { return regset{s[0] | o[0], s[1] | o[1]} }
func (s regset) inter(o regset) regset { return regset{s[0] & o[0], s[1] & o[1]} }
func (s regset) minus(o regset) regset { return regset{s[0] &^ o[0], s[1] &^ o[1]} }
func (s regset) empty() bool           { return s[0] == 0 && s[1] == 0 }

// countVectors returns how many vector-register ids the set holds.
func (s regset) countVectors() int {
	lo := s[0] >> vecBase // vector ids 32..63 live in word 0 bits 32..63
	return bits.OnesCount64(lo)
}

func fullSet() regset {
	var s regset
	for id := 0; id < universe; id++ {
		s.add(id)
	}
	return s
}

// regID maps an asm register to its dataflow id.
func regID(r asm.Reg) int { return int(r) }

// instrUses returns the registers (and flags) an instruction reads,
// excluding the always-zero xzr.
func instrUses(in *asm.Instr) regset {
	var s regset
	for _, r := range in.Reads() {
		if r == asm.XZR || r == asm.NoReg {
			continue
		}
		s.add(regID(r))
	}
	if in.Op == asm.OpBne {
		s.add(flagsID)
	}
	return s
}

// instrDefs returns the registers (and flags) an instruction writes;
// writes to xzr are architectural no-ops and excluded.
func instrDefs(in *asm.Instr) regset {
	var s regset
	for _, r := range in.Writes() {
		if r == asm.XZR || r == asm.NoReg {
			continue
		}
		s.add(regID(r))
	}
	if in.Op == asm.OpSubs {
		s.add(flagsID)
	}
	return s
}

// block is a maximal straight-line instruction range [start, end).
type block struct {
	start, end   int
	succs, preds []int
}

// graph is the control-flow graph of a program.
type graph struct {
	p       *asm.Program
	blocks  []block
	blockOf []int // instruction index -> block index
}

// buildGraph splits the program at labels and branches and links the
// blocks. It fails only on branches to unregistered labels (which
// Validate rejects first).
func buildGraph(p *asm.Program) (*graph, error) {
	n := len(p.Instrs)
	leader := make([]bool, n)
	leader[0] = true
	for i := 0; i < n; i++ {
		switch p.Instrs[i].Op {
		case asm.OpLabel:
			leader[i] = true
		case asm.OpB, asm.OpBne, asm.OpRet:
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}
	g := &graph{p: p, blockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.blocks = append(g.blocks, block{start: i})
		}
		g.blockOf[i] = len(g.blocks) - 1
		g.blocks[len(g.blocks)-1].end = i + 1
	}
	link := func(from, to int) {
		g.blocks[from].succs = append(g.blocks[from].succs, to)
		g.blocks[to].preds = append(g.blocks[to].preds, from)
	}
	for bi := range g.blocks {
		b := &g.blocks[bi]
		last := &p.Instrs[b.end-1]
		switch last.Op {
		case asm.OpRet:
			// no successors
		case asm.OpB, asm.OpBne:
			t, ok := p.LabelIndex(last.Label)
			if !ok {
				return nil, fmt.Errorf("branch at instr %d targets undefined label %q", b.end-1, last.Label)
			}
			link(bi, g.blockOf[t])
			if last.Op == asm.OpBne && bi+1 < len(g.blocks) {
				link(bi, bi+1)
			}
		default:
			if bi+1 < len(g.blocks) {
				link(bi, bi+1)
			}
		}
	}
	return g, nil
}

// loop is a counted SUBS/B.NE loop: the region of instructions from the
// head label through the backward conditional branch.
type loop struct {
	head, latch int  // instruction indexes: OpLabel .. OpBne
	simple      bool // no internal labels or branches: step analysis applies
}

// findLoops locates backward conditional branches and their regions.
func findLoops(p *asm.Program) []loop {
	var out []loop
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Op != asm.OpBne {
			continue
		}
		t, ok := p.LabelIndex(in.Label)
		if !ok || t > i {
			continue
		}
		l := loop{head: t, latch: i, simple: true}
		for j := t + 1; j < i; j++ {
			switch p.Instrs[j].Op {
			case asm.OpLabel, asm.OpB, asm.OpBne, asm.OpRet:
				l.simple = false
			}
		}
		out = append(out, l)
	}
	return out
}
