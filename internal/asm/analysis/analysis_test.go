package analysis_test

import (
	"strings"
	"testing"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
)

// buildKernel hand-writes a miniature but fully realistic micro-kernel
// (m_r = 1, n̂_r = 1, k_c = 8, σ = 4): strides to bytes, C load, A/B
// prologue, a 2-iteration counted loop of 4 unrolled k-steps with B
// loaded one step ahead, and the C store. mutate, when non-nil, is
// called at the named points so each test case can break exactly one
// contract.
func buildKernel(t *testing.T, mutate func(point string, p *asm.Program)) *asm.Program {
	t.Helper()
	hook := func(point string, p *asm.Program) {
		if mutate != nil {
			mutate(point, p)
		}
	}
	p := asm.NewProgram("mini")
	p.Lsl(asm.X(3), asm.X(3), 2)
	p.Lsl(asm.X(4), asm.X(4), 2)
	p.Lsl(asm.X(5), asm.X(5), 2)
	p.Mov(asm.X(6), asm.X(0)) // A row pointer
	p.Mov(asm.X(7), asm.X(2)) // C row pointer
	p.LdrQ(asm.V(0), asm.X(7), 0).Comment("load C")
	p.LdrQPost(asm.V(1), asm.X(6), 16).Comment("load A block 0")
	p.LdrQ(asm.V(2), asm.X(1), 0).Comment("load B row 0")
	p.Add(asm.X(1), asm.X(1), asm.X(4))
	hook("pre-loop", p)
	p.MovI(asm.X(29), 2)
	p.Label("kloop")
	for i := 0; i < 4; i++ {
		p.Fmla(asm.V(0), asm.V(2), asm.V(1), i)
		hook("step", p)
		p.LdrQ(asm.V(2), asm.X(1), 0).Comment("load B one step ahead")
		p.Add(asm.X(1), asm.X(1), asm.X(4))
	}
	p.LdrQPost(asm.V(1), asm.X(6), 16).Comment("load next A block")
	p.Subs(asm.X(29), asm.X(29), 1)
	p.Bne("kloop")
	hook("pre-store", p)
	p.StrQPost(asm.V(0), asm.X(7), 16)
	hook("pre-ret", p)
	p.Ret()
	if err := p.Validate(); err != nil {
		t.Fatalf("mini kernel does not validate: %v", err)
	}
	return p
}

func miniBounds() *analysis.Bounds {
	return &analysis.Bounds{MR: 1, NR: 4, KC: 8, Lanes: 4, AOverVectors: 1, BOverRows: 2}
}

// TestCleanKernel is the positive case: the mini kernel has zero
// findings and the report reflects its structure.
func TestCleanKernel(t *testing.T) {
	p := buildKernel(t, nil)
	rep, err := analysis.Analyze(p, analysis.Options{Bounds: miniBounds()})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean kernel has findings:\n%s", rep.String())
	}
	if rep.Loops != 1 {
		t.Errorf("Loops = %d, want 1", rep.Loops)
	}
	if !rep.BoundsChecked {
		t.Error("bounds pass did not run")
	}
	if rep.MaxLiveVectors != 3 {
		t.Errorf("MaxLiveVectors = %d, want 3 (C, A, B)", rep.MaxLiveVectors)
	}
	if len(rep.Accumulators) != 1 || rep.Accumulators[0] != asm.V(0) {
		t.Errorf("Accumulators = %v, want [v0]", rep.Accumulators)
	}
	if rep.Err() != nil {
		t.Error("Err() non-nil on clean report")
	}
	if !strings.Contains(rep.String(), "ok") {
		t.Errorf("report string %q", rep.String())
	}
}

// TestNegativeFindings breaks one contract per case and checks the
// analyzer reports exactly the matching kind with a distinct diagnostic.
func TestNegativeFindings(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(point string, p *asm.Program)
		opts   func() analysis.Options
		want   analysis.Kind
	}{
		{
			name: "clobbered accumulator",
			mutate: func(point string, p *asm.Program) {
				if point == "pre-store" {
					p.VZero(asm.V(0)).Comment("injected: zero the dirty accumulator")
				}
			},
			opts: func() analysis.Options { return analysis.Options{Bounds: miniBounds()} },
			want: analysis.KindAccClobber,
		},
		{
			name: "use before def",
			mutate: func(point string, p *asm.Program) {
				if point == "pre-store" {
					p.Fmla(asm.V(0), asm.V(9), asm.V(1), 0).Comment("injected: v9 never written")
				}
			},
			opts: func() analysis.Options { return analysis.Options{Bounds: miniBounds()} },
			want: analysis.KindUseBeforeDef,
		},
		{
			name:   "over pressure",
			mutate: nil,
			opts: func() analysis.Options {
				return analysis.Options{VectorBudget: 2, Bounds: miniBounds()}
			},
			want: analysis.KindPressure,
		},
		{
			name:   "broken rotation",
			mutate: nil,
			opts: func() analysis.Options {
				// The mini kernel reuses one B register every step, so a
				// double-buffering claim is false.
				return analysis.Options{Rotation: &analysis.RotationHint{BDouble: true}}
			},
			want: analysis.KindRotation,
		},
		{
			name: "dead definition",
			mutate: func(point string, p *asm.Program) {
				if point == "pre-ret" {
					p.VZero(asm.V(10))
					p.Fmla(asm.V(10), asm.V(2), asm.V(1), 0).Comment("injected: result unread")
				}
			},
			opts: func() analysis.Options { return analysis.Options{} },
			want: analysis.KindDeadDef,
		},
		{
			name: "same-step load feed",
			mutate: func(point string, p *asm.Program) {
				if point == "step" {
					// Load a second B vector and consume it immediately within
					// the same unrolled k-step.
					p.LdrQ(asm.V(11), asm.X(1), 0)
					last := p.Instrs[len(p.Instrs)-2] // the step's FMLA (the load is last)
					p.Fmla(asm.V(0), asm.V(11), asm.V(1), int(last.Lane))
				}
			},
			opts: func() analysis.Options { return analysis.Options{} },
			want: analysis.KindPipeline,
		},
		{
			name: "multiplicand aliases live accumulator",
			mutate: func(point string, p *asm.Program) {
				if point == "pre-store" {
					p.Fmla(asm.V(2), asm.V(0), asm.V(1), 0).Comment("injected: reads dirty v0")
					p.StrQ(asm.V(2), asm.X(7), 0)
				}
			},
			opts: func() analysis.Options { return analysis.Options{} },
			want: analysis.KindRoleOverlap,
		},
		{
			name: "flags never set",
			mutate: func(point string, p *asm.Program) {
				if point == "pre-loop" {
					// A conditional branch whose flags no SUBS ever defines:
					// jump over a nop-equivalent.
					p.Bne("skip")
					p.MovI(asm.X(8), 0)
					p.Label("skip")
				}
			},
			opts: func() analysis.Options { return analysis.Options{} },
			want: analysis.KindUseBeforeDef,
		},
	}
	diagnostics := map[string]bool{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := buildKernel(t, tc.mutate)
			rep, err := analysis.Analyze(p, tc.opts())
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK() {
				t.Fatalf("defect not detected")
			}
			found := false
			for _, f := range rep.Findings {
				if f.Kind == tc.want {
					found = true
					diagnostics[f.Kind.String()] = true
					if f.String() == "" || !strings.Contains(f.String(), f.Kind.String()) {
						t.Errorf("finding renders poorly: %q", f.String())
					}
				} else {
					t.Errorf("unexpected extra finding: %s", f.String())
				}
			}
			if !found {
				t.Fatalf("no %s finding; got:\n%s", tc.want, rep.String())
			}
			if rep.Err() == nil {
				t.Error("Err() nil despite findings")
			}
		})
	}
	// Each defect class surfaced under its own diagnostic name.
	if len(diagnostics) < 7 {
		t.Errorf("only %d distinct diagnostics across cases: %v", len(diagnostics), diagnostics)
	}
}

// TestBoundsViolations covers the symbolic over-read pass: a loop that
// runs one iteration too many walks A and B out of their panels, and a
// mixed-base address is rejected as unanalyzable.
func TestBoundsViolations(t *testing.T) {
	t.Run("over-read", func(t *testing.T) {
		p := buildKernel(t, nil)
		// Same code, smaller declared panels: k_c = 4 means the second
		// loop iteration reads past both A and B.
		rep, err := analysis.Analyze(p, analysis.Options{
			Bounds: &analysis.Bounds{MR: 1, NR: 4, KC: 4, Lanes: 4, AOverVectors: 1, BOverRows: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.BoundsChecked {
			t.Fatal("bounds pass did not run")
		}
		found := false
		for _, f := range rep.Findings {
			if f.Kind == analysis.KindOverRead {
				found = true
			}
		}
		if !found {
			t.Fatalf("no over-read finding; got:\n%s", rep.String())
		}
	})
	t.Run("bad address", func(t *testing.T) {
		p := buildKernel(t, func(point string, p *asm.Program) {
			if point == "pre-loop" {
				p.Add(asm.X(8), asm.X(6), asm.X(7)).Comment("injected: A ptr + C ptr")
				p.LdrQ(asm.V(12), asm.X(8), 0)
			}
		})
		rep, err := analysis.Analyze(p, analysis.Options{Bounds: miniBounds()})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range rep.Findings {
			if f.Kind == analysis.KindBadAddress {
				found = true
			}
		}
		if !found {
			t.Fatalf("no bad-address finding; got:\n%s", rep.String())
		}
	})
	t.Run("store into B", func(t *testing.T) {
		p := buildKernel(t, func(point string, p *asm.Program) {
			if point == "pre-loop" {
				p.StrQ(asm.V(2), asm.X(1), 0).Comment("injected: write the B panel")
			}
		})
		rep, err := analysis.Analyze(p, analysis.Options{Bounds: miniBounds()})
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, f := range rep.Findings {
			if f.Kind == analysis.KindOverRead && strings.Contains(f.Detail, "store into the B panel") {
				found = true
			}
		}
		if !found {
			t.Fatalf("store into B not flagged; got:\n%s", rep.String())
		}
	})
}

// TestBoundsSkippedOnIrregularFlow: forward branches disable the
// symbolic pass rather than producing unsound findings.
func TestBoundsSkippedOnIrregularFlow(t *testing.T) {
	p := asm.NewProgram("fwd")
	p.MovI(asm.X(6), 0)
	p.B("end")
	p.LdrQ(asm.V(0), asm.X(0), 1<<20) // unreachable wild load
	p.Label("end")
	p.Ret()
	rep, err := analysis.Analyze(p, analysis.Options{
		Bounds: &analysis.Bounds{MR: 1, NR: 4, KC: 4, Lanes: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundsChecked {
		t.Error("bounds pass claimed to run over a program with forward branches")
	}
}

// TestAnalyzeErrors covers the hard-error paths: empty programs, invalid
// bounds, and branches the CFG builder cannot resolve.
func TestAnalyzeErrors(t *testing.T) {
	if _, err := analysis.Analyze(asm.NewProgram("empty"), analysis.Options{}); err == nil {
		t.Error("empty program accepted")
	}
	p := asm.NewProgram("bad-branch")
	p.MovI(asm.X(29), 1)
	p.Subs(asm.X(29), asm.X(29), 1)
	p.Bne("nowhere")
	p.Ret()
	if _, err := analysis.Analyze(p, analysis.Options{}); err == nil {
		t.Error("undefined branch target accepted")
	}
	good := buildKernel(t, nil)
	if _, err := analysis.Analyze(good, analysis.Options{
		Bounds: &analysis.Bounds{MR: 0, NR: 4, KC: 4, Lanes: 4},
	}); err == nil {
		t.Error("invalid bounds accepted")
	}
}

// TestKindStrings pins the stable diagnostic names.
func TestKindStrings(t *testing.T) {
	want := map[analysis.Kind]string{
		analysis.KindUseBeforeDef: "use-before-def",
		analysis.KindAccClobber:   "accumulator-clobber",
		analysis.KindRoleOverlap:  "role-overlap",
		analysis.KindDeadDef:      "dead-def",
		analysis.KindPressure:     "register-pressure",
		analysis.KindPipeline:     "pipeline-hazard",
		analysis.KindRotation:     "rotation-broken",
		analysis.KindOverRead:     "over-read",
		analysis.KindBadAddress:   "bad-address",
	}
	seen := map[string]bool{}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d = %q, want %q", int(k), k.String(), s)
		}
		if seen[s] {
			t.Errorf("duplicate diagnostic name %q", s)
		}
		seen[s] = true
	}
	if analysis.Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
