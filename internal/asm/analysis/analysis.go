// Package analysis is a semantic dataflow analyzer for generated
// micro-kernels. Package asm's Validate checks structural
// well-formedness (operand classes, branch targets, RET); this package
// checks the contracts that make the generator's aggressive scheduling
// safe and that structural validation cannot see:
//
//   - no instruction overwrites a live ("dirty") accumulator between a
//     k-step FMLA and the store of that accumulator to C;
//   - no vector, scalar or predicate register is read before it is
//     written (modulo the AAPCS64 argument registers x0–x5 and xzr),
//     including the NZCV flags consumed by B.NE;
//   - rotating register allocation (§III-C1 of the paper) actually
//     rotates: under a RotationHint, the A or B working sets alternate
//     across unrolled k-steps and never alias an accumulator;
//   - register pressure stays within the vector budget, and value
//     definitions (FMLA results, register zeroing) are never dead;
//   - with a Bounds description of the operand panels, every load and
//     store provably stays within the kernel's documented over-read
//     contract (at most one vector past an A row, at most two rows past
//     the B panel, exact bounds on C).
//
// The analyzer builds a control-flow graph from labels and branches and
// runs classic forward/backward dataflow over it; the bounds check adds
// a symbolic affine interpretation of the scalar register file with
// exact trip counts for counted SUBS/B.NE loops. mkernel runs Analyze on
// every kernel it emits (see Config.SkipAnalysis) and cmd/autogemm-lint
// sweeps the whole generation space.
package analysis

import (
	"fmt"
	"strings"

	"autogemm/internal/asm"
)

// Kind classifies a finding.
type Kind int

// Finding kinds. Each negative-test defect class maps to exactly one.
const (
	// KindUseBeforeDef: a register (or the flags) is read on some path
	// before any instruction defines it.
	KindUseBeforeDef Kind = iota
	// KindAccClobber: a full overwrite (load, zeroing) of an accumulator
	// that holds an unstored partial sum.
	KindAccClobber
	// KindRoleOverlap: an FMLA reads a register as a multiplicand while it
	// holds an unstored partial sum, so the working set aliases a live
	// accumulator.
	KindRoleOverlap
	// KindDeadDef: an FMLA result or register zeroing that no path ever
	// reads — computation thrown away.
	KindDeadDef
	// KindPressure: more vector registers simultaneously live than the
	// configured budget.
	KindPressure
	// KindPipeline: inside a steady-state loop body, a load feeds an FMLA
	// in the same unrolled k-step, leaving no latency slack.
	KindPipeline
	// KindRotation: a RotationHint promised rotating register allocation
	// but the working sets do not alternate as claimed.
	KindRotation
	// KindOverRead: a memory access provably exceeds the declared panel
	// bounds plus the documented over-read slack.
	KindOverRead
	// KindBadAddress: an address is not of the recognized affine form
	// base + k·stride + constant over a single operand panel.
	KindBadAddress
)

var kindNames = map[Kind]string{
	KindUseBeforeDef: "use-before-def",
	KindAccClobber:   "accumulator-clobber",
	KindRoleOverlap:  "role-overlap",
	KindDeadDef:      "dead-def",
	KindPressure:     "register-pressure",
	KindPipeline:     "pipeline-hazard",
	KindRotation:     "rotation-broken",
	KindOverRead:     "over-read",
	KindBadAddress:   "bad-address",
}

// String returns the stable name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Finding is one contract violation, anchored at an instruction.
type Finding struct {
	Kind   Kind
	Index  int     // instruction index in the program (-1: whole program)
	Reg    asm.Reg // offending register (asm.NoReg if not register-specific)
	Detail string
}

// String renders the finding for reports.
func (f Finding) String() string {
	at := "program"
	if f.Index >= 0 {
		at = fmt.Sprintf("instr %d", f.Index)
	}
	if f.Reg != asm.NoReg {
		return fmt.Sprintf("%s: %s: %s: %s", at, f.Kind, f.Reg, f.Detail)
	}
	return fmt.Sprintf("%s: %s: %s", at, f.Kind, f.Detail)
}

// RotationHint tells the analyzer what rotation scheme the generator
// claims to have applied, so the claim can be verified against the code.
type RotationHint struct {
	// ARows is the number of A rows double-buffered across unrolled
	// blocks (Eqn 9); 0 means no A-side rotation.
	ARows int
	// BDouble reports B-side double buffering (Eqn 10): adjacent k-steps
	// must read disjoint B register sets.
	BDouble bool
}

// Bounds describes the operand panels of a GEMM kernel under the
// standard argument convention (x0=&A, x1=&B, x2=&C, x3=lda, x4=ldb,
// x5=ldc, strides in elements) so the symbolic bounds check can verify
// the over-read contract. All figures are in float32 elements.
type Bounds struct {
	MR    int // rows of A and C
	NR    int // columns of B and C (band kernels: the full band width)
	KC    int // columns of A, rows of B
	Lanes int // σ_lane: elements per vector register

	// AOverVectors is the permitted over-read past the end of an A row,
	// in whole vectors (the paper's kernels need 1; predicated SVE 0).
	AOverVectors int
	// BOverRows is the permitted over-read past the last B panel row
	// (2 for the pipelined kernels, 0 for predicated SVE).
	BOverRows int
}

// The three *Extent methods are the proven bounds facts of a kernel in
// composable form: the exclusive element extent each operand panel
// access can reach from its base offset, under the symbolic proof that
// every access has the affine form  off + row·ld + col  with row and
// col inside the panel shape plus the declared over-read slack. They
// are the single arithmetic shared by the compiled executor's runtime
// Precheck (internal/sim/compile) and the static plan auditor
// (internal/plan/audit), which composes them with tile placements to
// prove loaded plans safe before anything executes.

// AExtent returns the exclusive extent, in elements past the A panel
// base, of the furthest A access: MR rows at stride lda, each row KC
// elements plus AOverVectors whole vectors of slack.
func (b Bounds) AExtent(lda int64) int64 {
	return int64(b.MR-1)*lda + int64(b.KC) + int64(b.AOverVectors)*int64(b.Lanes)
}

// BExtent returns the exclusive extent past the B panel base:
// KC + BOverRows rows at stride ldb, NR elements wide.
func (b Bounds) BExtent(ldb int64) int64 {
	return int64(b.KC+b.BOverRows-1)*ldb + int64(b.NR)
}

// CExtent returns the exclusive extent past the C panel base: MR rows
// at stride ldc, NR elements wide — C has no over-read slack.
func (b Bounds) CExtent(ldc int64) int64 {
	return int64(b.MR-1)*ldc + int64(b.NR)
}

// Options configures Analyze.
type Options struct {
	// ArgRegs are the scalar registers holding arguments, defined at
	// entry. Empty means the AAPCS64 default x0..x5.
	ArgRegs []asm.Reg
	// VectorBudget caps simultaneously-live vector registers; 0 means
	// the architectural 32.
	VectorBudget int
	// Rotation, when non-nil, makes the analyzer verify the claimed
	// rotation scheme on every counted loop body.
	Rotation *RotationHint
	// Bounds, when non-nil, enables the symbolic over-read check.
	Bounds *Bounds
}

// Report is the analysis result for one program.
type Report struct {
	Program  *asm.Program
	Findings []Finding

	// MaxLiveVectors is the peak number of simultaneously live vector
	// registers at any program point.
	MaxLiveVectors int
	// Accumulators, ARole and BRole are the inferred register roles:
	// FMLA destinations, FMLA by-element multiplicands (Src2) and FMLA
	// full-vector multiplicands (Src1).
	Accumulators, ARole, BRole []asm.Reg
	// Loops is the number of counted loops found.
	Loops int
	// BoundsChecked reports whether the symbolic over-read pass ran
	// (it is skipped for programs with forward or unconditional
	// branches, which the generator never emits).
	BoundsChecked bool

	// BoundsComplete strengthens BoundsChecked into a proof usable for
	// check elision (internal/sim/compile): it is true only when every
	// load and store the program can execute was resolved to the affine
	// panel form, classified to exactly one operand panel, and verified
	// in-bounds for every loop iteration (exact trip counts, no havoc).
	// BoundsChecked with findings == 0 but BoundsComplete == false means
	// some access was skipped as unresolvable — fine for a lint gate,
	// not for removing runtime checks.
	BoundsComplete bool

	// AccessBanks classifies each instruction's memory access by operand
	// panel: BankA, BankB or BankC, or BankNone for instructions without
	// a classified access. Only meaningful when BoundsComplete is true;
	// nil when the bounds pass did not run.
	AccessBanks []int8
}

// Operand-panel bank identifiers used in Report.AccessBanks.
const (
	BankNone int8 = -1
	BankA    int8 = 0
	BankB    int8 = 1
	BankC    int8 = 2
)

// OK reports a clean bill of health.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// Err returns nil when the report is clean, or an error summarizing the
// findings — the form generator gates consume.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "analysis: %s: %d finding(s):", r.Program.Name, len(r.Findings))
	max := len(r.Findings)
	if max > 8 {
		max = 8
	}
	for _, f := range r.Findings[:max] {
		b.WriteString("\n  " + f.String())
	}
	if max < len(r.Findings) {
		fmt.Fprintf(&b, "\n  ... and %d more", len(r.Findings)-max)
	}
	return fmt.Errorf("%s", b.String())
}

// String renders a human-readable report for cmd/autogemm-lint.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analysis %s: ", r.Program.Name)
	if r.OK() {
		fmt.Fprintf(&b, "ok (%d loops, peak %d live vectors, %d accumulators)",
			r.Loops, r.MaxLiveVectors, len(r.Accumulators))
		return b.String()
	}
	fmt.Fprintf(&b, "%d finding(s)", len(r.Findings))
	for _, f := range r.Findings {
		b.WriteString("\n  " + f.String())
	}
	return b.String()
}

// addFinding records a deduplicated finding.
func (a *analyzer) addFinding(f Finding) {
	key := findingKey{f.Kind, f.Index, f.Reg}
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.report.Findings = append(a.report.Findings, f)
}

type findingKey struct {
	kind Kind
	idx  int
	reg  asm.Reg
}

type analyzer struct {
	p      *asm.Program
	opts   Options
	g      *graph
	uses   []regset // per instruction, flags included
	defs   []regset
	report *Report
	seen   map[findingKey]bool

	acc   regset // FMLA destinations
	aRole regset // FMLA Src2 (by-element multiplicand: the A side)
	bRole regset // FMLA Src1 (full-vector multiplicand: the B side)
}

// Analyze runs every pass over the program and returns the report. The
// program should already satisfy Validate; Analyze returns an error
// (not findings) when it is too malformed to build a CFG for.
func Analyze(p *asm.Program, opts Options) (*Report, error) {
	if len(p.Instrs) == 0 {
		return nil, fmt.Errorf("analysis: %s: empty program", p.Name)
	}
	g, err := buildGraph(p)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", p.Name, err)
	}
	a := &analyzer{
		p: p, opts: opts, g: g,
		report: &Report{Program: p},
		seen:   make(map[findingKey]bool),
	}
	a.uses = make([]regset, len(p.Instrs))
	a.defs = make([]regset, len(p.Instrs))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		a.uses[i] = instrUses(in)
		a.defs[i] = instrDefs(in)
	}
	a.inferRoles()
	a.checkUseBeforeDef()
	a.checkLiveness()
	a.checkClobbers()
	loops := findLoops(p)
	a.report.Loops = len(loops)
	a.checkPipeline(loops)
	if opts.Bounds != nil {
		if err := opts.Bounds.check(); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", p.Name, err)
		}
		a.checkBounds(loops)
	}
	return a.report, nil
}

func (b *Bounds) check() error {
	if b.MR < 1 || b.NR < 1 || b.KC < 1 || b.Lanes < 1 {
		return fmt.Errorf("bounds must have positive MR/NR/KC/Lanes, got %+v", *b)
	}
	if b.AOverVectors < 0 || b.BOverRows < 0 {
		return fmt.Errorf("bounds slack must be non-negative, got %+v", *b)
	}
	return nil
}

// inferRoles classifies the vector registers by how FMLA uses them.
func (a *analyzer) inferRoles() {
	for i := range a.p.Instrs {
		in := &a.p.Instrs[i]
		if in.Op != asm.OpFmla {
			continue
		}
		a.acc.add(regID(in.Dst))
		a.bRole.add(regID(in.Src1))
		a.aRole.add(regID(in.Src2))
	}
	a.report.Accumulators = regsOf(a.acc)
	a.report.ARole = regsOf(a.aRole)
	a.report.BRole = regsOf(a.bRole)
	// Note: roles are a whole-program summary, not an invariant — a
	// mixed-shape band legitimately reuses one tile's accumulators as the
	// next tile's multiplicands once the stores have drained. The real
	// aliasing rule (never read a *dirty* accumulator as a multiplicand)
	// is flow-sensitive and enforced by checkClobbers.
}

// regsOf expands a vector/predicate/scalar id set into registers.
func regsOf(s regset) []asm.Reg {
	var out []asm.Reg
	for id := 0; id < flagsID; id++ {
		if s.has(id) {
			out = append(out, asm.Reg(id))
		}
	}
	return out
}
