package asm

import (
	"strings"
	"testing"
)

// countedLoop builds the canonical generated-loop shape: counter init,
// label, body, SUBS, B.NE, RET.
func countedLoop() *Program {
	p := NewProgram("loop")
	p.MovI(X(29), 4)
	p.Label("head")
	p.AddI(X(0), X(0), 8)
	p.Subs(X(29), X(29), 1)
	p.Bne("head")
	p.Ret()
	return p
}

func TestValidateCountedLoopOK(t *testing.T) {
	if err := countedLoop().Validate(); err != nil {
		t.Fatalf("canonical loop rejected: %v", err)
	}
}

// TestValidateDuplicateLabel: a second OpLabel with the same name,
// appended directly so Label()'s panic cannot catch it, must be
// rejected — the registered index only matches one of the copies.
func TestValidateDuplicateLabel(t *testing.T) {
	p := countedLoop()
	p.Instrs = append(p.Instrs[:len(p.Instrs)-1],
		Instr{Op: OpLabel, Label: "head"},
		Instr{Op: OpRet})
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Fatalf("duplicate label not rejected: %v", err)
	}
}

// TestValidateUnregisteredLabel: an OpLabel never recorded via Label()
// is invisible to branches and must be rejected.
func TestValidateUnregisteredLabel(t *testing.T) {
	p := countedLoop()
	p.Instrs = append(p.Instrs[:len(p.Instrs)-1],
		Instr{Op: OpLabel, Label: "orphan"},
		Instr{Op: OpRet})
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("unregistered label not rejected: %v", err)
	}
}

// TestValidateLoopWithoutSubs: a backward B.NE whose body never sets the
// flags loops on stale state.
func TestValidateLoopWithoutSubs(t *testing.T) {
	p := NewProgram("nosubs")
	p.MovI(X(29), 4)
	p.Label("head")
	p.AddI(X(29), X(29), -1)
	p.Bne("head")
	p.Ret()
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "no subs") {
		t.Fatalf("flagless loop not rejected: %v", err)
	}
}

// TestValidateUninitializedCounter: the SUBS counter must be written
// before the loop head, otherwise the trip count is garbage.
func TestValidateUninitializedCounter(t *testing.T) {
	p := NewProgram("noinit")
	p.Label("head")
	p.AddI(X(0), X(0), 8)
	p.Subs(X(29), X(29), 1)
	p.Bne("head")
	p.Ret()
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "never initialized") {
		t.Fatalf("uninitialized counter not rejected: %v", err)
	}
}

// TestValidateBranchIntoLoop: jumping into a loop body from outside
// skips the counter initialization and must be rejected.
func TestValidateBranchIntoLoop(t *testing.T) {
	p := NewProgram("sidedoor")
	p.MovI(X(29), 4)
	p.Label("head")
	p.Label("mid")
	p.AddI(X(0), X(0), 8)
	p.Subs(X(29), X(29), 1)
	p.Bne("head")
	p.B("mid")
	p.Ret()
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "jumps into loop") {
		t.Fatalf("branch into loop body not rejected: %v", err)
	}
}

// TestValidateForwardBranchStillAllowed: forward control flow around a
// loop (epilogue skips and the like) is not a loop violation.
func TestValidateForwardBranchStillAllowed(t *testing.T) {
	p := NewProgram("fwd")
	p.MovI(X(29), 4)
	p.Subs(X(29), X(29), 1)
	p.Bne("end")
	p.AddI(X(0), X(0), 8)
	p.Label("end")
	p.Ret()
	if err := p.Validate(); err != nil {
		t.Fatalf("forward branch rejected: %v", err)
	}
}
