package experiments

import (
	"fmt"

	"autogemm/internal/baselines"
	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/workload"
)

// TableI regenerates the efficiency summary of Table I: every library on
// the small (64³) and irregular (256×3136×64) reference shapes, KP920.
func TableI() (Table, error) {
	chip := hw.KP920()
	t := Table{ID: "table1", Title: "Library efficiency summary (KP920)",
		Header: []string{"library", "small 64^3 (%)", "irregular 256x3136x64 (%)"}}
	for _, p := range baselines.All() {
		small := "N/A"
		if p.Supports(chip, 64, 64, 64) {
			est, err := p.Estimate(chip, 64, 64, 64)
			if err != nil {
				return t, err
			}
			small = fmt.Sprintf("%.1f", est.Efficiency*100)
		}
		irr := "N/A"
		if p.Supports(chip, 256, 3136, 64) {
			est, err := p.Estimate(chip, 256, 3136, 64)
			if err != nil {
				return t, err
			}
			irr = fmt.Sprintf("%.1f", est.Efficiency*100)
		}
		t.Add(p.Name, small, irr)
	}
	t.Note("paper row: OpenBLAS 35/47, Eigen 50/49, LibShalom 95/86, FastConv 58/79, LIBXSMM 68/NA, TVM 78/72, ours 98/91")
	return t, nil
}

// Fig6 regenerates the step-wise pipeline-optimization evaluation on
// KP920, Graviton2 and M2: basic generated kernel, plus rotating
// register allocation, plus epilogue–prologue fusion, across the Fig 6
// shape sweep (growing K at M=N=64, blocking pinned to the matrix so the
// K=256 point exposes the KP920 L1 cliff).
func Fig6() (Table, error) {
	t := Table{ID: "fig6", Title: "Step-wise pipeline optimization (efficiency %)",
		Header: []string{"chip", "MxNxK", "basic", "+rotate", "+fuse", "fuse-gain%"}}
	steps := []core.Options{
		{Pack: core.PackAuto},
		{Pack: core.PackAuto, Rotate: true},
		{Pack: core.PackAuto, Rotate: true, Fuse: true},
	}
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2(), hw.M2()} {
		for _, s := range workload.StepSweep() {
			var eff [3]float64
			for i, base := range steps {
				opts := base
				opts.MC, opts.NC = s.M, s.N
				opts.ForceKCisK = true
				plan, err := core.NewPlan(chip, s.M, s.N, s.K, opts)
				if err != nil {
					return t, err
				}
				est, err := plan.Estimate()
				if err != nil {
					return t, err
				}
				eff[i] = est.Efficiency * 100
			}
			t.Add(chip.Name, s.String(), eff[0], eff[1], eff[2], 100*(eff[2]-eff[1])/eff[1])
		}
	}
	t.Note("paper: fusion gains 17.3/15.8/16.7%% at K=4; KP920 efficiency collapses K=64→256 at N=64 (L1 cliff)")
	return t, nil
}

// Fig8 regenerates the small-GEMM single-core comparison: every library
// across the cubic sweep on all five chips. LibShalom appears only where
// N and K are divisible by 8 and never on M2/A64FX; SSL2 only on A64FX.
func Fig8() (Table, error) {
	t := Table{ID: "fig8", Title: "Small GEMM, single core (GFLOPS)",
		Header: []string{"chip", "size", "OpenBLAS", "Eigen", "LibShalom", "FastConv", "LIBXSMM", "TVM", "SSL2", "autoGEMM"}}
	providers := []baselines.Provider{
		baselines.OpenBLAS(), baselines.Eigen(), baselines.LibShalom(),
		baselines.FastConv(), baselines.LIBXSMM(), baselines.TVMGeneric(),
		baselines.SSL2(), baselines.AutoGEMM(),
	}
	for _, chip := range hw.All() {
		for _, s := range workload.SmallSweep() {
			row := []interface{}{chip.Name, s.M}
			for _, p := range providers {
				if !p.Supports(chip, s.M, s.N, s.K) {
					row = append(row, "-")
					continue
				}
				est, err := p.Estimate(chip, s.M, s.N, s.K)
				if err != nil {
					return t, err
				}
				row = append(row, est.GFLOPS)
			}
			t.Add(row...)
		}
	}
	t.Note("paper: autoGEMM 1.5-2.0x over LIBXSMM/LibShalom for sizes ≤ 24, near-peak from 64 up")
	return t, nil
}
