package experiments

import (
	"autogemm/internal/asm"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/refgemm"
	"autogemm/internal/sim"
)

// SVEEdge compares the two ways of handling an n edge that is not a
// multiple of the 512-bit SVE width on A64FX: the NEON-style padded tile
// (compute a full vector column into packing padding — the approach the
// paper transplanted) versus the predicated kernel (WHILELT-governed
// tail, the paper's stated future work). The honest finding: FMLA
// operates on whole vectors either way, so predication does not reduce
// kernel cycles (it costs a few percent in predicate management and lost
// rotation); its benefit is structural — exact bounds, so no padded
// packing buffers, no copy-back of column overhang, and zero
// out-of-bounds access (verified by the zero-slack tests in
// internal/mkernel).
func SVEEdge() (Table, error) {
	chip := hw.A64FX()
	t := Table{ID: "sve-edge",
		Title:  "SVE n-edge handling on A64FX: padded vs predicated (kc=64)",
		Header: []string{"mr x nr", "padded-cycles", "predicated-cycles", "cycle-ratio", "pad-overhang%"}}
	cases := []mkernel.Tile{
		{MR: 4, NR: 17}, {MR: 4, NR: 20}, {MR: 4, NR: 36}, {MR: 3, NR: 41}, {MR: 2, NR: 49},
	}
	const kc = 64
	for _, tile := range cases {
		lanes := chip.Lanes
		nQ := (tile.NR + lanes - 1) / lanes * lanes

		padded, err := timePadded(chip, mkernel.Tile{MR: tile.MR, NR: nQ}, kc)
		if err != nil {
			return t, err
		}
		pred, err := timePredicated(chip, tile, kc)
		if err != nil {
			return t, err
		}
		waste := 100 * float64(nQ-tile.NR) / float64(nQ)
		t.Add(tile.String(), padded, pred, float64(padded)/float64(pred), waste)
	}
	t.Note("cycles are comparable by design (whole-vector FMLA); predication removes the padding")
	t.Note("padded tiles need buffers rounded to n_q = ⌈n_r/16⌉·16; predicated kernels touch exactly n_r columns")
	return t, nil
}

// timePadded measures the lane-quantized kernel (full-width tile).
func timePadded(chip *hw.Chip, tile mkernel.Tile, kc int) (int64, error) {
	prog, err := mkernel.Generate(mkernel.Config{
		Tile: tile, KC: kc, Lanes: chip.Lanes,
		Rotate: true, LoadC: true, SigmaAI: chip.SigmaAI,
	})
	if err != nil {
		return 0, err
	}
	return timeOnChip(chip, prog, tile.MR, tile.NR, kc, chip.Lanes)
}

// timePredicated measures the exact-width predicated kernel.
func timePredicated(chip *hw.Chip, tile mkernel.Tile, kc int) (int64, error) {
	prog, err := mkernel.GeneratePredicated(mkernel.PredConfig{
		Tile: tile, KC: kc, Lanes: chip.Lanes, LoadC: true,
	})
	if err != nil {
		return 0, err
	}
	return timeOnChip(chip, prog, tile.MR, tile.NR, kc, chip.Lanes)
}

func timeOnChip(chip *hw.Chip, p *asm.Program, mr, nr, kc, lanes int) (int64, error) {
	arena := sim.NewArena(1 << 18)
	aAddr := arena.Alloc(mr*kc + 2*lanes)
	bAddr := arena.Alloc((kc + 4) * (nr + lanes))
	cAddr := arena.Alloc(mr * (nr + lanes))
	refgemm.Fill(arena.Slice(aAddr, mr*kc), mr, kc, kc, 1)
	refgemm.Fill(arena.Slice(bAddr, kc*nr), kc, nr, nr, 2)
	mach := sim.NewMachine(arena, lanes)
	mach.SetArg(0, aAddr)
	mach.SetArg(1, bAddr)
	mach.SetArg(2, cAddr)
	mach.SetArg(3, int64(kc))
	mach.SetArg(4, int64(nr))
	mach.SetArg(5, int64(nr))
	model := sim.NewModel(chip)
	model.Caches = nil
	model.AssumeLoadLat = chip.LatLoad
	res, err := model.RunAndTime(p, mach, 1<<30)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}
