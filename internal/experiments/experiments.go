// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated chips: each experiment returns a
// Table whose rows mirror what the paper plots, and the registry lets
// cmd/autogemm-bench run any of them by identifier. EXPERIMENTS.md
// records paper-versus-measured values for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one regenerated table or figure data set.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note attaches a free-form annotation printed under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one experiment.
type Runner func() (Table, error)

// Registry maps experiment identifiers to their runners. Heavyweight
// experiments take minutes of simulation; the IDs match DESIGN.md §4.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": TableI,
		"table2": func() (Table, error) { return TableII(), nil },
		"table3": func() (Table, error) { return TableIII(), nil },
		"table4": func() (Table, error) { return TableIV(), nil },
		"table5": func() (Table, error) { return TableV(), nil },
		"fig2":   func() (Table, error) { return Fig2(), nil },
		"fig3":   Fig3,
		"fig4":   func() (Table, error) { return Fig4(), nil },
		"fig5":   Fig5,
		"fig6":   Fig6,
		"fig7":   Fig7,
		"fig8":   Fig8,
		"fig9":   Fig9,
		"fig10":  Fig10,
		"fig11":  Fig11,
		"fig12":  Fig12,
		// Ablations of the design choices DESIGN.md calls out.
		"sve-edge":           SVEEdge,
		"large-square":       LargeSquare,
		"pack-kernels":       PackKernels,
		"ablation-window":    AblationWindow,
		"ablation-prefetch":  AblationPrefetch,
		"ablation-dmt":       AblationDMTCandidates,
		"ablation-residency": AblationResidency,
	}
}

// IDs returns the registered experiment identifiers, sorted.
func IDs() []string {
	var ids []string
	for id := range Registry() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CSV renders the table as comma-separated values (header first). Cells
// are quoted only when they contain commas or quotes.
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
