package experiments

import (
	"fmt"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
	"autogemm/internal/sim"
)

// TableII regenerates the arithmetic-intensity table of feasible
// register tiles (Eqn 2 over the 32-register space); the blue preferred
// shapes are flagged.
func TableII() Table {
	t := Table{ID: "table2", Title: "AI of feasible register tiles (Eqn 2), NEON σ_lane=4",
		Header: []string{"mr\\nr", "4", "8", "12", "16", "20", "24", "28"}}
	preferred := map[mkernel.Tile]bool{}
	for _, p := range mkernel.PreferredTiles(4) {
		preferred[p] = true
	}
	for mr := 2; mr <= 8; mr++ {
		row := []interface{}{fmt.Sprintf("%d", mr)}
		for nr := 4; nr <= 28; nr += 4 {
			tile := mkernel.Tile{MR: mr, NR: nr}
			if !tile.Feasible(4) {
				row = append(row, "-")
				continue
			}
			cell := fmt.Sprintf("%.2f", tile.AIMax(4))
			if preferred[tile] {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.Add(row...)
	}
	t.Note("* = preferred (blue) shapes; %d feasible tiles in total (paper: 58)",
		len(mkernel.FeasibleTiles(4)))
	return t
}

// Fig2 regenerates the AI-versus-k_c trend for m_r×16 micro-kernels
// (Eqn 3) together with each chip's σ_AI threshold line.
func Fig2() Table {
	t := Table{ID: "fig2", Title: "AI vs k_c for m_r x 16 tiles (Eqn 3) and hardware σ_AI",
		Header: []string{"kc", "2x16", "3x16", "4x16", "5x16"}}
	for _, kc := range []int{4, 8, 16, 32, 64, 128, 256} {
		row := []interface{}{kc}
		for mr := 2; mr <= 5; mr++ {
			row = append(row, mkernel.Tile{MR: mr, NR: 16}.AI(kc, 4))
		}
		t.Add(row...)
	}
	for _, chip := range hw.All() {
		t.Note("σ_AI(%s) = %.2f", chip.Name, chip.SigmaAI)
	}
	return t
}

// Fig3 regenerates the pipeline walk-through: projected and simulated
// cycles for the compute-bound 5×16 and memory-bound 2×16 kernels, with
// and without rotating register allocation, on the didactic machine
// (L = 8, IPC = 1).
func Fig3() (Table, error) {
	chip := hw.Didactic()
	params := perfmodel.FromChip(chip)
	params.Launch = 0
	t := Table{ID: "fig3", Title: "Micro-kernel cycles on the didactic machine (L=8, IPC=1)",
		Header: []string{"tile", "kc", "rotate", "model-cycles", "sim-cycles", "model/sim"}}
	for _, tile := range []mkernel.Tile{{MR: 5, NR: 16}, {MR: 2, NR: 16}} {
		for _, kc := range []int{16, 64, 128} {
			for _, rotate := range []bool{false, true} {
				proj := params.TileTime(tile, kc, perfmodel.Opt{Rotate: rotate})
				cycles, err := simulateKernel(chip, tile, kc, rotate)
				if err != nil {
					return t, err
				}
				t.Add(tile.String(), kc, rotate, proj, cycles, proj/float64(cycles))
			}
		}
	}
	t.Note("paper closed forms at k̂_c=16: 5x16 basic = 20·64+13·16+65 = %v; "+
		"2x16 mainloop 48·k̂_c basic vs 42·k̂_c rotated", 20*64+13*16+65)
	return t, nil
}

// Fig4 regenerates the four epilogue–prologue fusion boundary costs
// (c_to_c, m_to_m, c_to_m, m_to_c) versus the unfused launch+epilogue+
// prologue they replace.
func Fig4() Table {
	chip := hw.KP920()
	p := perfmodel.FromChip(chip)
	comp := mkernel.Tile{MR: 5, NR: 16} // compute-bound at σ_AI = 6
	mem := mkernel.Tile{MR: 2, NR: 16}  // memory-bound
	kc := 16
	t := Table{ID: "fig4", Title: "Fusion boundary cost vs unfused gap (KP920, kc=16)",
		Header: []string{"mode", "fused-cycles", "unfused-cycles", "saving%"}}
	cases := []struct {
		name     string
		cur, nxt mkernel.Tile
	}{
		{"c_to_c", comp, comp},
		{"m_to_m", mem, mem},
		{"c_to_m", comp, mem},
		{"m_to_c", mem, comp},
	}
	for _, c := range cases {
		fused := p.FuseBoundary(c.cur, kc, c.nxt, kc)
		unfused := p.Epilogue(c.cur, kc) + p.Launch + p.Prologue(c.nxt)
		t.Add(c.name, fused, unfused, 100*(1-fused/unfused))
	}
	return t
}

// simulateKernel measures one micro-kernel on the cycle simulator with a
// fixed load latency.
func simulateKernel(chip *hw.Chip, tile mkernel.Tile, kc int, rotate bool) (int64, error) {
	prog, err := mkernel.Generate(mkernel.Config{
		Tile: tile, KC: kc, Lanes: chip.Lanes,
		Rotate: rotate, LoadC: true, SigmaAI: chip.SigmaAI,
	})
	if err != nil {
		return 0, err
	}
	arena := sim.NewArena(1 << 16)
	aAddr := arena.Alloc(tile.MR*kc + 2*chip.Lanes)
	bAddr := arena.Alloc((kc + 4) * (tile.NR + chip.Lanes))
	cAddr := arena.Alloc(tile.MR * (tile.NR + chip.Lanes))
	m := sim.NewMachine(arena, chip.Lanes)
	m.SetArg(0, aAddr)
	m.SetArg(1, bAddr)
	m.SetArg(2, cAddr)
	m.SetArg(3, int64(kc))
	m.SetArg(4, int64(tile.NR))
	m.SetArg(5, int64(tile.NR))
	model := sim.NewModel(chip)
	model.Caches = nil
	model.AssumeLoadLat = chip.LatLoad
	res, err := model.RunAndTime(prog, m, 1<<30)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}
