package experiments

import (
	"math"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
)

// PackKernels times the generated in-library packing kernels on the
// pipeline simulator and compares them with the analytic packing cost
// the estimator charges (issue-bound copy vs streaming-bandwidth floor).
func PackKernels() (Table, error) {
	t := Table{ID: "pack-kernels",
		Title:  "Generated packing kernels: simulated vs analytic cycles (L1-resident source)",
		Header: []string{"chip", "panel", "sim-cycles", "analytic-cycles", "ratio"}}
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2()} {
		for _, shape := range []struct{ rows, cols int }{
			{16, 64}, {64, 64}, {128, 32},
		} {
			cfg := mkernel.PackConfig{Rows: shape.rows, Cols: shape.cols, Lanes: chip.Lanes}
			prog, err := mkernel.GeneratePack(cfg)
			if err != nil {
				return t, err
			}
			srcLD := shape.cols + 8
			arena := sim.NewArena(1 << 16)
			srcAddr := arena.Alloc(shape.rows*srcLD + chip.Lanes)
			dstAddr := arena.Alloc(shape.rows*shape.cols + chip.Lanes)
			mach := sim.NewMachine(arena, chip.Lanes)
			mach.SetArg(0, srcAddr)
			mach.SetArg(1, dstAddr)
			mach.SetArg(3, int64(srcLD))
			mach.SetArg(4, int64(shape.cols))
			model := sim.NewModel(chip)
			model.Caches = nil
			model.AssumeLoadLat = chip.LatLoad
			res, err := model.RunAndTime(prog, mach, 1<<28)
			if err != nil {
				return t, err
			}
			// The estimator's issue-bound term for an L1-resident copy.
			elems := float64(shape.rows * shape.cols)
			analytic := elems/float64(chip.Lanes)*(1/float64(chip.LoadPorts)+1/float64(chip.StorePorts)) +
				float64(chip.LatLoad)
			t.Add(chip.Name, tName(shape.rows, shape.cols), res.Cycles, analytic,
				float64(res.Cycles)/math.Max(analytic, 1))
		}
	}
	t.Note("agreement validates the copy-cost term of blockTrafficCost; the bandwidth floor applies only to DRAM-resident panels")
	return t, nil
}

func tName(r, c int) string { return itoa(r) + "x" + itoa(c) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
