package experiments

import (
	"autogemm/internal/baselines"
	"autogemm/internal/hw"
	"autogemm/internal/workload"
)

// Fig9 regenerates the irregular-GEMM evaluation on the 20 ResNet-50
// layers of Table V: single-core GFLOPS (upper Fig 9) and all-core
// GFLOPS (lower Fig 9) for each library on KP920, Graviton2 and Altra,
// plus SSL2/autoGEMM on A64FX. The multi-core rows reproduce the paper's
// k_c = K limitation ("TVM does not support parallelism over K"), which
// degrades the large-K layers L7, L12, L17 and L20.
func Fig9() (Table, error) {
	t := Table{ID: "fig9", Title: "ResNet-50 layer GEMMs (GFLOPS)",
		Header: []string{"chip", "cores", "layer", "OpenBLAS", "Eigen", "LibShalom", "SSL2", "autoGEMM"}}
	providers := []baselines.Provider{
		baselines.OpenBLAS(), baselines.Eigen(), baselines.LibShalom(),
		baselines.SSL2(), baselines.AutoGEMM(),
	}
	chips := []*hw.Chip{hw.KP920(), hw.Graviton2(), hw.Altra(), hw.A64FX()}
	for _, chip := range chips {
		for _, cores := range []int{1, chip.Cores} {
			for _, s := range workload.ResNet50() {
				row := []interface{}{chip.Name, cores, s.Name}
				for _, p := range providers {
					if !p.Supports(chip, s.M, s.N, s.K) {
						row = append(row, "-")
						continue
					}
					plan, err := p.Plan(chip, s.M, s.N, s.K)
					if err != nil {
						return t, err
					}
					plan.Opts.Cores = cores
					if cores > 1 && p.Name == "autoGEMM" {
						// §V-C: the TVM integration cannot split K across
						// cores, so k_c stays pinned to K in parallel runs.
						plan.Opts.ForceKCisK = true
					}
					est, err := plan.Estimate()
					if err != nil {
						return t, err
					}
					row = append(row, est.GFLOPS)
				}
				t.Add(row...)
			}
		}
	}
	t.Note("paper: single core 1.3x (up to 1.9x) over OpenBLAS, 1.5x (up to 2.0x) over Eigen; " +
		"multi-core large-K layers (L7, L12, L17, L20) degrade for autoGEMM")
	return t, nil
}
