package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablation-dmt", "ablation-prefetch", "ablation-residency", "ablation-window",
		"fig10", "fig11", "fig12", "fig2", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9", "large-square", "pack-kernels", "sve-edge",
		"table1", "table2", "table3", "table4", "table5",
	}
	if len(ids) != len(want) {
		t.Fatalf("registry has %d entries, want %d: %v", len(ids), len(want), ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("registry[%d] = %s, want %s", i, ids[i], id)
		}
	}
}

// TestAblationWindow: rotation pays only on machines without WAR
// renaming (the paper's trend 1 mechanism).
func TestAblationWindow(t *testing.T) {
	tbl, err := AblationWindow()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		gain := parseF(t, row[4])
		if row[0] == "false" && gain < 10 {
			t.Errorf("no-rename window %s: rotation gain %.1f%%, want substantial", row[1], gain)
		}
		if row[0] == "true" && gain > 5 {
			t.Errorf("renamed window %s: rotation gain %.1f%%, want ~0", row[1], gain)
		}
	}
}

// TestAblationPrefetch: prefetch helps on cold caches, everywhere.
func TestAblationPrefetch(t *testing.T) {
	tbl, err := AblationPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if gain := parseF(t, row[3]); gain <= 0 {
			t.Errorf("%s: prefetch gain %.1f%%", row[0], gain)
		}
	}
}

// TestAblationResidency: efficiency degrades monotonically as the panel
// moves out through the hierarchy — the cliff mechanism.
func TestAblationResidency(t *testing.T) {
	tbl, err := AblationResidency()
	if err != nil {
		t.Fatal(err)
	}
	prev := 101.0
	for _, row := range tbl.Rows {
		eff := parseF(t, row[3])
		if eff >= prev {
			t.Errorf("residency %s: efficiency %.1f not below previous %.1f", row[0], eff, prev)
		}
		prev = eff
	}
	first := parseF(t, tbl.Rows[0][3])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][3])
	if first < 80 || last > 15 {
		t.Errorf("residency extremes off: L1 %.1f%%, DRAM %.1f%%", first, last)
	}
}

// TestAblationDMTCandidates: the full tile space never loses to the
// restricted preferred set by more than noise.
func TestAblationDMTCandidates(t *testing.T) {
	tbl, err := AblationDMTCandidates()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if ratio := parseF(t, row[3]); ratio < 0.98 {
			t.Errorf("%s: full space %.2fx worse than preferred-only", row[0], ratio)
		}
	}
}

func TestTableIIStructure(t *testing.T) {
	tbl := TableII()
	if len(tbl.Rows) != 7 {
		t.Fatalf("Table II rows = %d, want 7 (mr 2..8)", len(tbl.Rows))
	}
	// Spot-check paper values: (5,16)=7.62, (8,8)=8.00, (2,4)=2.67.
	find := func(mr int, col int) string { return tbl.Rows[mr-2][col] }
	if got := find(5, 4); !strings.HasPrefix(got, "7.62") {
		t.Errorf("AI(5,16) = %s, want 7.62", got)
	}
	if got := find(8, 2); !strings.HasPrefix(got, "8.00") {
		t.Errorf("AI(8,8) = %s, want 8.00", got)
	}
	if got := find(2, 1); !strings.HasPrefix(got, "2.67") {
		t.Errorf("AI(2,4) = %s, want 2.67", got)
	}
	// Infeasible corners are dashes.
	if got := find(8, 3); got != "-" {
		t.Errorf("AI(8,12) = %s, want - (infeasible)", got)
	}
}

func TestFig2Monotone(t *testing.T) {
	tbl := Fig2()
	// AI grows with kc for each tile column and is bounded by AImax.
	for col := 1; col <= 4; col++ {
		prev := 0.0
		for _, row := range tbl.Rows {
			v := parseF(t, row[col])
			if v < prev {
				t.Errorf("Fig2 column %d not monotone", col)
			}
			prev = v
		}
	}
}

func TestFig3ModelMatchesSim(t *testing.T) {
	tbl, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ratio := parseF(t, row[5])
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("Fig3 %v: model/sim ratio %.2f out of band", row, ratio)
		}
	}
}

func TestFig4FusionSaves(t *testing.T) {
	tbl := Fig4()
	if len(tbl.Rows) != 4 {
		t.Fatalf("Fig4 needs 4 fusion modes, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if saving := parseF(t, row[3]); saving <= 0 {
			t.Errorf("fusion mode %s saves nothing (%.1f%%)", row[0], saving)
		}
	}
}

func TestFig5Counts(t *testing.T) {
	tbl, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]float64{}
	lowAI := map[string]float64{}
	for _, row := range tbl.Rows {
		counts[row[0]] = parseF(t, row[1])
		lowAI[row[0]] = parseF(t, row[2])
	}
	if counts["openblas-pad"] != 18 || counts["libxsmm-edge"] != 18 {
		t.Errorf("static strategies should use 18 tiles: %v", counts)
	}
	if lowAI["libxsmm-edge"] != 8 {
		t.Errorf("LIBXSMM-style low-AI tiles = %v, want 8", lowAI["libxsmm-edge"])
	}
	if counts["dmt"] >= 18 {
		t.Errorf("DMT should use fewer than 18 tiles, got %v", counts["dmt"])
	}
	if lowAI["dmt"] > 2 {
		t.Errorf("DMT low-AI tiles = %v, want <= 2", lowAI["dmt"])
	}
}

func TestFig6StepwiseGains(t *testing.T) {
	tbl, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	var kp920CliffSmall, kp920CliffBig float64
	for _, row := range tbl.Rows {
		basic, rot, full := parseF(t, row[2]), parseF(t, row[3]), parseF(t, row[4])
		if full < basic-1 {
			t.Errorf("%s %s: optimizations regressed %.1f -> %.1f", row[0], row[1], basic, full)
		}
		if row[0] == "KP920" {
			if strings.Contains(row[1], "x64x4)") || row[1] == "64x64x4" {
				gain := parseF(t, row[5])
				if gain < 5 {
					t.Errorf("KP920 K=4 fusion gain %.1f%%, paper reports ~17%%", gain)
				}
			}
			if row[1] == "64x64x64" {
				kp920CliffSmall = full
			}
			if row[1] == "64x64x256" {
				kp920CliffBig = full
			}
		}
		_ = rot
	}
	if kp920CliffBig >= kp920CliffSmall {
		t.Errorf("KP920 L1 cliff missing: K=64 %.1f%% vs K=256 %.1f%%", kp920CliffSmall, kp920CliffBig)
	}
}

func TestFig11ParallelEfficiency(t *testing.T) {
	tbl, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	// Last row per chip is the full socket; compare to the paper's bands.
	want := map[string][2]float64{
		"KP920":     {90, 101},
		"Graviton2": {90, 101},
		"Altra":     {70, 95},
		"M2":        {85, 101},
		"A64FX":     {18, 45},
	}
	last := map[string]float64{}
	for _, row := range tbl.Rows {
		last[row[0]] = parseF(t, row[4])
	}
	for chip, band := range want {
		eff, ok := last[chip]
		if !ok {
			t.Fatalf("no scaling rows for %s", chip)
		}
		if eff < band[0] || eff > band[1] {
			t.Errorf("%s full-socket parallel efficiency %.1f%% outside [%g, %g]", chip, eff, band[0], band[1])
		}
	}
}

func TestFig12Speedups(t *testing.T) {
	tbl, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[2] != "autoGEMM" {
			continue
		}
		speedup := parseF(t, row[6])
		lo, hi := 1.02, 2.2
		if row[0] == "Graviton2" {
			lo, hi = 1.0, 1.8
		}
		if speedup < lo || speedup > hi {
			t.Errorf("%s/%s end-to-end speedup %.2fx outside [%g, %g]", row[0], row[1], speedup, lo, hi)
		}
	}
}

func TestTableIOrdering(t *testing.T) {
	tbl, err := TableI()
	if err != nil {
		t.Fatal(err)
	}
	small := map[string]float64{}
	for _, row := range tbl.Rows {
		if row[1] != "N/A" {
			small[row[0]] = parseF(t, row[1])
		}
	}
	if !(small["OpenBLAS"] < small["Eigen"] && small["Eigen"] < small["TVM"] &&
		small["TVM"] < small["autoGEMM"]) {
		t.Errorf("Table I small-GEMM ordering broken: %v", small)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := TableII()
	out := tbl.String()
	if !strings.Contains(out, "table2") || !strings.Contains(out, "7.62") {
		t.Errorf("table rendering broken:\n%s", out)
	}
}

// Heavier sweeps run only outside -short.

func TestFig7DMTWins(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tbl, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		dmtSpeedup := parseF(t, row[5])
		if dmtSpeedup < 0.97 {
			t.Errorf("%s %s: DMT %.2fx slower than best static", row[0], row[1], dmtSpeedup)
		}
		if row[1] == "80x32x64" || row[1] == "25x64x64" {
			if dmtSpeedup > 1.12 {
				t.Errorf("%s %s: divisible block should show ~no DMT gain, got %.2fx", row[0], row[1], dmtSpeedup)
			}
		}
	}
}

func TestFig9AutoGEMMLeads(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tbl, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	total := 0
	for _, row := range tbl.Rows {
		if row[1] != "1" { // single-core rows only
			continue
		}
		auto := parseF(t, row[7])
		for _, col := range []int{3, 4} { // OpenBLAS, Eigen
			if row[col] == "-" {
				continue
			}
			total++
			if v := parseF(t, row[col]); v >= auto {
				worse++
			}
		}
	}
	if total == 0 {
		t.Fatal("no comparable rows")
	}
	if frac := float64(worse) / float64(total); frac > 0.05 {
		t.Errorf("autoGEMM loses to OpenBLAS/Eigen on %.0f%% of single-core layers", frac*100)
	}
}

func TestFig10Bounds(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tbl, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		gf, attain := parseF(t, row[4]), parseF(t, row[5])
		if gf > attain*1.05 {
			t.Errorf("%s %s: measured %.1f exceeds roofline %.1f", row[0], row[1], gf, attain)
		}
	}
}

func TestFig8Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tbl, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5*14 {
		t.Fatalf("Fig8 rows = %d, want %d", len(tbl.Rows), 5*14)
	}
	// autoGEMM (last column) never trails every baseline on any row.
	for _, row := range tbl.Rows {
		auto := parseF(t, row[len(row)-1])
		bestOther := 0.0
		for _, c := range row[2 : len(row)-1] {
			if c == "-" {
				continue
			}
			if v := parseF(t, c); v > bestOther {
				bestOther = v
			}
		}
		if auto < bestOther*0.95 {
			t.Errorf("%s size %s: autoGEMM %.1f GF/s more than 5%% behind best baseline %.1f",
				row[0], row[1], auto, bestOther)
		}
	}
}

// TestSVEEdge: predicated edge kernels stay within a few percent of the
// padded ones (whole-vector FMLA dominates both) while removing all
// padding requirements.
func TestSVEEdge(t *testing.T) {
	tbl, err := SVEEdge()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ratio := parseF(t, row[3])
		if ratio < 0.80 || ratio > 1.15 {
			t.Errorf("%s: padded/predicated cycle ratio %.2f outside the comparable band", row[0], ratio)
		}
	}
}

// TestTableCSV: CSV export quotes and escapes correctly.
func TestTableCSV(t *testing.T) {
	tbl := Table{Header: []string{"a", "b"}, Rows: [][]string{{"1,2", `say "hi"`}}}
	got := tbl.CSV()
	want := "a,b\n\"1,2\",\"say \"\"hi\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// TestLargeSquareConvergence: the autoGEMM/OpenBLAS ratio shrinks with
// size — the small-GEMM advantages amortize away.
func TestLargeSquareConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	tbl, err := LargeSquare()
	if err != nil {
		t.Fatal(err)
	}
	first := parseF(t, tbl.Rows[0][4])
	last := parseF(t, tbl.Rows[len(tbl.Rows)-1][4])
	if last >= first {
		t.Errorf("advantage did not shrink: %.2fx at %s -> %.2fx at %s",
			first, tbl.Rows[0][0], last, tbl.Rows[len(tbl.Rows)-1][0])
	}
	if last < 0.9 {
		t.Errorf("autoGEMM fell behind on large square GEMM: %.2fx", last)
	}
}

// TestDescriptiveTables: Tables III-V regenerate from the code and carry
// the published values.
func TestDescriptiveTables(t *testing.T) {
	t3 := TableIII()
	if len(t3.Rows) != 5 {
		t.Errorf("Table III rows = %d", len(t3.Rows))
	}
	t4 := TableIV()
	found := false
	for _, row := range t4.Rows {
		if row[0] == "A64FX" && row[6] == "SVE(512)" && row[7] == "Supercomputer" {
			found = true
		}
	}
	if !found {
		t.Errorf("Table IV missing the A64FX row: %v", t4.Rows)
	}
	t5 := TableV()
	if len(t5.Rows) != 20 {
		t.Fatalf("Table V rows = %d, want 20", len(t5.Rows))
	}
	for _, row := range t5.Rows {
		if row[0] == "L1" {
			if row[1] != "64" || row[2] != "12544" || row[3] != "147" {
				t.Errorf("L1 row wrong: %v", row)
			}
			if !strings.Contains(row[5], "7x7/2") {
				t.Errorf("L1 conv provenance missing: %v", row)
			}
		}
	}
}

// TestPackKernelsAgree: simulated packing cycles track the analytic
// copy-cost model within a band.
func TestPackKernelsAgree(t *testing.T) {
	tbl, err := PackKernels()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ratio := parseF(t, row[4])
		if ratio < 0.6 || ratio > 2.5 {
			t.Errorf("%s %s: sim/analytic ratio %.2f out of band", row[0], row[1], ratio)
		}
	}
}
