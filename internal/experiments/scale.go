package experiments

import (
	"autogemm/internal/baselines"
	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/roofline"
	"autogemm/internal/workload"
)

// Fig10 regenerates the roofline analysis on KP920, Graviton2 and M2:
// the four small cubes (8, 16, 32, 64) and four Table-V layers (L4, L8,
// L10, L16), each placed on the single-core and all-core rooflines with
// autoGEMM's measured GFLOPS.
func Fig10() (Table, error) {
	t := Table{ID: "fig10", Title: "Roofline placement (autoGEMM)",
		Header: []string{"chip", "kernel", "cores", "AI", "GFLOPS", "attainable", "bound"}}
	var shapes []workload.Shape
	for _, s := range []int{8, 16, 32, 64} {
		shapes = append(shapes, workload.Shape{M: s, N: s, K: s})
	}
	for _, l := range []string{"L4", "L8", "L10", "L16"} {
		s, err := workload.ResNet50Layer(l)
		if err != nil {
			return t, err
		}
		shapes = append(shapes, s)
	}
	auto := baselines.AutoGEMM()
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2(), hw.M2()} {
		for _, cores := range []int{1, chip.Cores} {
			model := roofline.New(chip, cores)
			for _, s := range shapes {
				plan, err := auto.Plan(chip, s.M, s.N, s.K)
				if err != nil {
					return t, err
				}
				plan.Opts.Cores = cores
				est, err := plan.Estimate()
				if err != nil {
					return t, err
				}
				ai := roofline.AIOfGEMM(s.M, s.N, s.K)
				pt := model.Place(s.String(), ai, est.GFLOPS)
				t.Add(chip.Name, s.String(), cores, pt.AI, pt.GFLOPS, pt.Attain, pt.BoundedBy)
			}
		}
	}
	t.Note("paper: small GEMM mostly compute-bound; single-core autoGEMM near the roofline peak")
	return t, nil
}

// Fig11 regenerates the strong-scaling evaluation: the L1 layer
// (64×12544×147) on every chip as the core count doubles toward the full
// socket, reporting speedup and parallel efficiency. A64FX's CMG ring
// bus collapses its scaling (paper: 30.3% at 48 cores).
func Fig11() (Table, error) {
	t := Table{ID: "fig11", Title: "Strong scaling on ResNet-50 L1 (64x12544x147)",
		Header: []string{"chip", "cores", "GFLOPS", "speedup", "parallel-eff%"}}
	s, err := workload.ResNet50Layer("L1")
	if err != nil {
		return t, err
	}
	for _, chip := range hw.All() {
		var base float64
		for cores := 1; ; cores *= 2 {
			if cores > chip.Cores {
				cores = chip.Cores
			}
			opts := core.AutoOptions(chip)
			opts.Cores = cores
			plan, err := core.NewPlan(chip, s.M, s.N, s.K, opts)
			if err != nil {
				return t, err
			}
			est, err := plan.Estimate()
			if err != nil {
				return t, err
			}
			if cores == 1 {
				base = est.GFLOPS
			}
			speedup := est.GFLOPS / base
			t.Add(chip.Name, cores, est.GFLOPS, speedup, 100*speedup/float64(cores))
			if cores == chip.Cores {
				break
			}
		}
	}
	t.Note("paper parallel efficiency at full socket: KP920 98%%, Graviton2 98.2%%, Altra 83.2%%, M2 93.5%%, A64FX 30.3%%")
	return t, nil
}
