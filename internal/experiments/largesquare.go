package experiments

import (
	"autogemm/internal/baselines"
	"autogemm/internal/hw"
)

// LargeSquare checks the regime the paper does NOT optimize for: large
// square GEMM, where classic Goto-blocked libraries are already
// near-optimal (§I: "dense and large-squared GEMM is well-studied").
// autoGEMM should remain competitive but its advantage must shrink as
// the matrices grow — the paper itself reports LibShalom overtaking it
// at 128³ on KP920 thanks to hand-written prefetching.
func LargeSquare() (Table, error) {
	chip := hw.KP920()
	t := Table{ID: "large-square",
		Title:  "Large square GEMM: where the classic libraries catch up (KP920, GFLOPS)",
		Header: []string{"size", "OpenBLAS", "LibShalom", "autoGEMM", "auto/OpenBLAS"}}
	ob := baselines.OpenBLAS()
	ls := baselines.LibShalom()
	auto := baselines.AutoGEMM()
	for _, s := range []int{32, 64, 128, 192, 256, 384} {
		obE, err := ob.Estimate(chip, s, s, s)
		if err != nil {
			return t, err
		}
		lsE, err := ls.Estimate(chip, s, s, s)
		if err != nil {
			return t, err
		}
		autoE, err := auto.Estimate(chip, s, s, s)
		if err != nil {
			return t, err
		}
		t.Add(s, obE.GFLOPS, lsE.GFLOPS, autoE.GFLOPS, autoE.GFLOPS/obE.GFLOPS)
	}
	t.Note("the small-GEMM advantage (call overhead, padding, fusion) amortizes away with size")
	t.Note("model limitation: the simulator has no hardware prefetcher, so OpenBLAS's " +
		"large fixed panels (streamed from L2 at full speed on real chips) pay raw L2 latency " +
		"here — its large-square plateau is pessimistic; LibShalom and autoGEMM, whose blocking " +
		"keeps panels L1-resident, are unaffected")
	return t, nil
}
