package experiments

import (
	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/perfmodel"
	"autogemm/internal/tiling"
	"autogemm/internal/workload"
)

// Fig5 regenerates the micro-tiling strategy comparison on the paper's
// C(26, 36) example block: tile counts, low-AI tile counts and projected
// cost for OpenBLAS-style padding, LIBXSMM-style edge tiles, and DMT.
func Fig5() (Table, error) {
	chip := hw.KP920()
	params := perfmodel.FromChip(chip)
	opt := perfmodel.Opt{Rotate: true, Fuse: true}
	const m, n, kc = 26, 36, 64

	t := Table{ID: "fig5", Title: "Micro-tiling strategies on C(26,36)",
		Header: []string{"strategy", "tiles", "low-AI-tiles", "projected-cycles"}}
	strategies := []tiling.Strategy{
		tiling.OpenBLASStyle{T: tiling.DefaultStaticTile(4), Lanes: 4},
		tiling.LIBXSMMStyle{T: tiling.DefaultStaticTile(4), Lanes: 4},
		&tiling.DMT{Params: params, Opt: opt},
	}
	for _, s := range strategies {
		tl, err := s.Tile(m, n, kc)
		if err != nil {
			return t, err
		}
		t.Add(s.Name(), tl.TileCount(4), tl.LowAICount(4, chip.SigmaAI), tl.Cost(params, kc, opt))
		t.Note("%s", tl.Render(4))
	}
	t.Note("paper: OpenBLAS and LIBXSMM both 18 tiles (LIBXSMM: 8 low-AI); DMT 13 tiles, ≤2 low-AI")
	return t, nil
}

// Fig7 regenerates the micro-tiling strategy comparison at whole-GEMM
// level: GFLOPS for the three strategies on the Fig 7 block shapes,
// across KP920, Graviton2 and M2. On divisible blocks (80×32, 25×64) the
// strategies coincide; on the irregular ones DMT wins.
func Fig7() (Table, error) {
	t := Table{ID: "fig7", Title: "Tiling strategy comparison (GFLOPS, single core)",
		Header: []string{"chip", "MxNxK", "openblas-pad", "libxsmm-edge", "dmt", "dmt-speedup"}}
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2(), hw.M2()} {
		for _, s := range workload.Fig7Blocks() {
			var gf [3]float64
			strategies := []tiling.Strategy{
				core.PaddedStrategy(chip),
				core.EdgeStrategy(chip),
				nil, // DMT default
			}
			for i, strat := range strategies {
				opts := core.AutoOptions(chip)
				opts.Strategy = strat
				plan, err := core.NewPlan(chip, s.M, s.N, s.K, opts)
				if err != nil {
					return t, err
				}
				est, err := plan.Estimate()
				if err != nil {
					return t, err
				}
				gf[i] = est.GFLOPS
			}
			best := gf[0]
			if gf[1] > best {
				best = gf[1]
			}
			t.Add(chip.Name, s.String(), gf[0], gf[1], gf[2], gf[2]/best)
		}
	}
	t.Note("paper: identical tiles (hence no gain) at 80x32 and 25x64; DMT ahead elsewhere")
	return t, nil
}
