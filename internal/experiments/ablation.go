package experiments

import (
	"fmt"

	"autogemm/internal/cache"
	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/sim"
)

// AblationWindow isolates the paper's §V-B trend 1 — "rotating register
// allocation improves KP920 ~3% but Graviton2 and M2 do not benefit due
// to a larger hardware out-of-order execution window" — by sweeping the
// out-of-order machinery of a fixed machine (scheduler depth and
// register renaming of WAR hazards) and measuring the rotation gain for
// the memory-bound 2×16 kernel, whose FMA→LOAD→FMA dependency is what
// rotation removes (Fig 3-b/d).
func AblationWindow() (Table, error) {
	t := Table{ID: "ablation-window",
		Title:  "Rotation gain vs out-of-order capability (2x16, kc=64)",
		Header: []string{"rename-WAR", "window", "basic-cycles", "rotated-cycles", "rotation-gain%"}}
	for _, rename := range []bool{false, true} {
		for _, window := range []int{24, 48, 96, 256} {
			chip := hw.Didactic()
			chip.Window = window
			chip.RenameWAR = rename
			basic, err := simulateKernel(chip, mkernel.Tile{MR: 2, NR: 16}, 64, false)
			if err != nil {
				return t, err
			}
			rot, err := simulateKernel(chip, mkernel.Tile{MR: 2, NR: 16}, 64, true)
			if err != nil {
				return t, err
			}
			t.Add(rename, window, basic, rot, 100*(float64(basic)/float64(rot)-1))
		}
	}
	t.Note("without renaming (KP920-like) rotation removes the WAR bubbles; " +
		"with renaming and a deep window (Graviton2/M2-like) hardware already hides them")
	return t, nil
}

// AblationPrefetch measures the in-kernel L2 prefetch hints (§V-C) on a
// cold cache hierarchy: the same kernel with and without PRFM emission,
// timed with the cache simulator active rather than a fixed latency.
func AblationPrefetch() (Table, error) {
	t := Table{ID: "ablation-prefetch",
		Title:  "In-kernel prefetch on cold caches (5x16, kc=64)",
		Header: []string{"chip", "no-prfm-cycles", "prfm-cycles", "gain%"}}
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2()} {
		var cycles [2]int64
		for i, prefetch := range []bool{false, true} {
			tile := mkernel.Tile{MR: 5, NR: 16}
			kc := 64
			prog, err := mkernel.Generate(mkernel.Config{
				Tile: tile, KC: kc, Lanes: chip.Lanes,
				Rotate: true, LoadC: true, SigmaAI: chip.SigmaAI, Prefetch: prefetch,
			})
			if err != nil {
				return t, err
			}
			arena := sim.NewArena(1 << 18)
			aAddr := arena.Alloc(tile.MR*kc + 2*chip.Lanes)
			bAddr := arena.Alloc((kc + 4) * (tile.NR + chip.Lanes))
			cAddr := arena.Alloc(tile.MR * (tile.NR + chip.Lanes))
			mach := sim.NewMachine(arena, chip.Lanes)
			mach.SetArg(0, aAddr)
			mach.SetArg(1, bAddr)
			mach.SetArg(2, cAddr)
			mach.SetArg(3, int64(kc))
			mach.SetArg(4, int64(tile.NR))
			mach.SetArg(5, int64(tile.NR))
			model := sim.NewModel(chip) // cache hierarchy active, cold
			res, err := model.RunAndTime(prog, mach, 1<<30)
			if err != nil {
				return t, err
			}
			cycles[i] = res.Cycles
		}
		t.Add(chip.Name, cycles[0], cycles[1], 100*(float64(cycles[0])/float64(cycles[1])-1))
	}
	t.Note("prefetch hints warm lines before the demand loads; blocking (not prefetch) provides L1 residency, as §V-C states")
	return t, nil
}

// AblationDMTCandidates compares DMT restricted to the four preferred
// tiles against DMT over the full generatable tile space, quantifying
// what the corner-case shapes of Table II contribute.
func AblationDMTCandidates() (Table, error) {
	chip := hw.KP920()
	t := Table{ID: "ablation-dmt",
		Title:  "DMT tile-candidate ablation (KP920, GFLOPS)",
		Header: []string{"MxNxK", "preferred-only", "full-space", "full/preferred"}}
	shapes := []struct{ m, n, k int }{{26, 36, 20}, {26, 64, 64}, {23, 52, 64}, {61, 77, 33}}
	for _, s := range shapes {
		var gf [2]float64
		for i, restrict := range []bool{true, false} {
			opts := core.AutoOptions(chip)
			if restrict {
				opts.Strategy = nil // set below via candidates
			}
			plan, err := core.NewPlan(chip, s.m, s.n, s.k, opts)
			if err != nil {
				return t, err
			}
			if restrict {
				plan.RestrictDMTCandidates(mkernel.PreferredTiles(chip.Lanes))
			}
			est, err := plan.Estimate()
			if err != nil {
				return t, err
			}
			gf[i] = est.GFLOPS
		}
		t.Add(fmt.Sprintf("%dx%dx%d", s.m, s.n, s.k), gf[0], gf[1], gf[1]/gf[0])
	}
	t.Note("the corner-case tiles exist to cover edges; the preferred shapes do the bulk of the work")
	return t, nil
}

// AblationResidency shows the load-latency mechanism behind the Fig 6
// KP920 cliff directly: one band kernel timed at each cache level's
// latency.
func AblationResidency() (Table, error) {
	chip := hw.KP920()
	hier := cache.NewHierarchy(chip)
	t := Table{ID: "ablation-residency",
		Title:  "Band kernel cycles vs panel residency level (KP920, 5x16 x4, kc=64)",
		Header: []string{"level", "load-latency", "cycles", "efficiency%"}}
	cfg := mkernel.BandConfig{
		Segments: []mkernel.Segment{{Tile: mkernel.Tile{MR: 5, NR: 16}, Count: 4}},
		KC:       64, Lanes: chip.Lanes, Rotate: true, Fuse: true, LoadC: true,
		SigmaAI: chip.SigmaAI,
	}
	prog, err := mkernel.GenerateBand(cfg)
	if err != nil {
		return t, err
	}
	names := []string{"L1", "L2", "L3", "DRAM"}
	for lvl := 0; lvl <= 3; lvl++ {
		lat := hier.LatencyOfLevel(lvl)
		arena := sim.NewArena(1 << 18)
		aAddr := arena.Alloc(5*64 + 8)
		bAddr := arena.Alloc(68 * 80)
		cAddr := arena.Alloc(5 * 80)
		mach := sim.NewMachine(arena, chip.Lanes)
		mach.SetArg(0, aAddr)
		mach.SetArg(1, bAddr)
		mach.SetArg(2, cAddr)
		mach.SetArg(3, 64)
		mach.SetArg(4, 64)
		mach.SetArg(5, 64)
		model := sim.NewModel(chip)
		model.Caches = nil
		model.AssumeLoadLat = lat
		res, err := model.RunAndTime(prog, mach, 1<<30)
		if err != nil {
			return t, err
		}
		flops := 2.0 * 5 * 64 * 64
		eff := flops / (float64(res.Cycles) * float64(chip.FMAPorts*chip.Lanes) * 2)
		t.Add(names[lvl], lat, res.Cycles, eff*100)
	}
	t.Note("the K=256/N=64 cliff of Fig 6 is this row moving from L1 to L2")
	return t, nil
}
