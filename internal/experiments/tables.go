package experiments

import (
	"fmt"

	"autogemm/internal/hw"
	"autogemm/internal/perfmodel"
	"autogemm/internal/workload"
)

// TableIII prints the performance-model parameter inventory (algorithm
// and hardware parameters) as instantiated for each chip.
func TableIII() Table {
	t := Table{ID: "table3", Title: "Performance model parameters (Table III) per chip",
		Header: []string{"chip", "σ_lane", "σ_AI", "IPC_fma", "IPC_load", "IPC_store",
			"L_fma", "L_load", "L_store", "T_launch"}}
	for _, chip := range hw.All() {
		p := perfmodel.FromChip(chip)
		t.Add(chip.Name, p.Lanes, p.SigmaAI, p.IPCFMA, p.IPCLoad, p.IPCStore,
			p.LFMA, p.LLoad, p.LStore, p.Launch)
	}
	t.Note("algorithm parameters (M,N,K; lda/ldb/ldc; m_c,n_c,k_c; m_r,n_r; σ_order; σ_packing) are per-plan — see cmd/autogemm-tune -explain")
	return t
}

// TableIV prints the hardware specification table of the evaluation.
func TableIV() Table {
	t := Table{ID: "table4", Title: "Hardware specifications (Table IV)",
		Header: []string{"chip", "cores", "GHz", "L1d/core", "L2", "L3", "SIMD", "type"}}
	kind := map[string]string{
		"KP920": "SoC", "Graviton2": "Datacenter", "Altra": "Datacenter",
		"M2": "Consumer", "A64FX": "Supercomputer",
	}
	for _, chip := range hw.All() {
		simd := fmt.Sprintf("NEON(%d)", chip.Lanes*32)
		if chip.SVE {
			simd = fmt.Sprintf("SVE(%d)", chip.Lanes*32)
		}
		l3 := "None"
		if chip.L3.Exists() {
			l3 = fmt.Sprintf("%dM-share", chip.L3.SizeBytes>>20)
		}
		t.Add(chip.Name, chip.Cores, chip.FreqGHz,
			fmt.Sprintf("%dK", chip.L1D.SizeBytes>>10),
			fmt.Sprintf("%dK", chip.L2.SizeBytes>>10), l3, simd, kind[chip.Name])
	}
	return t
}

// TableV prints the ResNet-50 GEMM shapes with their im2col provenance
// where the convolution parameters are recorded.
func TableV() Table {
	t := Table{ID: "table5", Title: "Irregular GEMM shapes from ResNet-50 (Table V)",
		Header: []string{"layer", "M", "N", "K", "class", "conv provenance"}}
	convs := map[string]workload.Conv2D{}
	for _, c := range workload.ResNet50Convs() {
		convs[c.Name] = c
	}
	classes := map[workload.Kind]string{
		workload.Small: "small", workload.TallSkinny: "tall-skinny",
		workload.LongRectangular: "long-rectangular", workload.Regular: "regular",
	}
	for _, s := range workload.ResNet50() {
		prov := "-"
		if c, ok := convs[s.Name]; ok {
			prov = fmt.Sprintf("%dx%d/%d, %d->%d ch on %dx%d",
				c.KH, c.KW, c.StrideH, c.InC, c.OutC, c.InH, c.InW)
		}
		t.Add(s.Name, s.M, s.N, s.K, classes[s.Classify()], prov)
	}
	return t
}
