package experiments

import (
	"autogemm/internal/baselines"
	"autogemm/internal/dnn"
	"autogemm/internal/hw"
	"autogemm/internal/workload"
)

// Fig12 regenerates the end-to-end DNN evaluation: the four networks
// (ResNet50, Inception-V3, MobileNet-V1, SqueezeNet) run through the
// TNN-substitute framework with OpenBLAS and autoGEMM GEMM backends on
// KP920 and Graviton2, reporting the T_GEMM / T_other split normalized
// to the OpenBLAS total and the end-to-end speedup.
func Fig12() (Table, error) {
	t := Table{ID: "fig12", Title: "End-to-end DNN inference (normalized to OpenBLAS total)",
		Header: []string{"chip", "model", "backend", "T_GEMM", "T_other", "total", "speedup"}}
	for _, chip := range []*hw.Chip{hw.KP920(), hw.Graviton2()} {
		engine := dnn.New(chip, 1)
		for _, model := range workload.Models() {
			base, err := engine.Run(model, baselines.OpenBLAS())
			if err != nil {
				return t, err
			}
			with, err := engine.Run(model, baselines.AutoGEMM())
			if err != nil {
				return t, err
			}
			norm := base.Total()
			t.Add(chip.Name, model.Name, "OpenBLAS",
				base.GEMMSeconds/norm, base.OtherSeconds/norm, 1.0, 1.0)
			t.Add(chip.Name, model.Name, "autoGEMM",
				with.GEMMSeconds/norm, with.OtherSeconds/norm, with.Total()/norm, norm/with.Total())
		}
	}
	t.Note("paper: 1.30x end-to-end on KP920 across all four models; 1.08-1.15x on Graviton2")
	return t, nil
}
