package autogemm

import (
	"strings"
	"testing"

	"autogemm/internal/refgemm"
)

func TestNewAndChips(t *testing.T) {
	for _, name := range Chips() {
		e, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if e.ChipName() != name || e.PeakGFLOPS() <= 0 || e.Lanes() < 4 {
			t.Errorf("engine for %s misconfigured", name)
		}
	}
	if _, err := New("Itanium"); err == nil {
		t.Error("New accepted an unknown chip")
	}
}

func TestMultiplyMatchesReference(t *testing.T) {
	e, err := New("KP920")
	if err != nil {
		t.Fatal(err)
	}
	const m, n, k = 26, 36, 20
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 1)
	refgemm.Fill(b, k, n, n, 2)
	refgemm.Fill(c, m, n, n, 3)
	want := make([]float32, m*n)
	copy(want, c)
	refgemm.GEMM(m, n, k, a, k, b, n, want, n)
	if err := e.Multiply(c, a, b, m, n, k); err != nil {
		t.Fatal(err)
	}
	if got := refgemm.MaxRelErr(c, want, m, n, n, n); got > refgemm.Tolerance {
		t.Errorf("max rel err %.3g", got)
	}
}

func TestMultiplyWithOptions(t *testing.T) {
	e, _ := New("Graviton2")
	const m, n, k = 19, 27, 31
	opts := &Options{MC: 10, NC: 12, KC: 8, Order: "KNM", Pack: "online"}
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 4)
	refgemm.Fill(b, k, n, n, 5)
	want := make([]float32, m*n)
	refgemm.GEMM(m, n, k, a, k, b, n, want, n)
	if err := e.MultiplyWith(opts, c, a, b, m, n, k); err != nil {
		t.Fatal(err)
	}
	if got := refgemm.MaxRelErr(c, want, m, n, n, n); got > refgemm.Tolerance {
		t.Errorf("max rel err %.3g", got)
	}
}

func TestOptionValidation(t *testing.T) {
	e, _ := New("KP920")
	buf := make([]float32, 64)
	if err := e.MultiplyWith(&Options{Order: "XYZ"}, buf, buf, buf, 4, 4, 4); err == nil {
		t.Error("bad loop order accepted")
	}
	if err := e.MultiplyWith(&Options{Pack: "sideways"}, buf, buf, buf, 4, 4, 4); err == nil {
		t.Error("bad pack mode accepted")
	}
	if _, err := e.Estimate(0, 4, 4, nil); err == nil {
		t.Error("degenerate problem accepted")
	}
}

func TestEstimateAndProviders(t *testing.T) {
	e, _ := New("Graviton2")
	perf, err := e.Estimate(64, 64, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	if perf.Efficiency < 0.85 || perf.Efficiency > 1 {
		t.Errorf("64^3 efficiency %.2f out of expected range", perf.Efficiency)
	}
	ob, err := e.EstimateProvider("OpenBLAS", 64, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ob.GFLOPS >= perf.GFLOPS {
		t.Errorf("OpenBLAS model (%.1f) should trail autoGEMM (%.1f)", ob.GFLOPS, perf.GFLOPS)
	}
	if _, err := e.EstimateProvider("SSL2", 64, 64, 64); err == nil {
		t.Error("SSL2 should be A64FX-only")
	}
	if _, err := e.EstimateProvider("CUBLAS", 8, 8, 8); err == nil {
		t.Error("unknown provider accepted")
	}
	if len(Providers()) < 7 {
		t.Errorf("Providers() = %v", Providers())
	}
}

func TestTuneAPI(t *testing.T) {
	e, _ := New("M2")
	opts, perf, err := e.Tune(26, 36, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	if perf.GFLOPS <= 0 {
		t.Error("tuned perf empty")
	}
	// The tuned options must round-trip through MultiplyWith.
	a := make([]float32, 26*20)
	b := make([]float32, 20*36)
	c := make([]float32, 26*36)
	refgemm.Fill(a, 26, 20, 20, 1)
	refgemm.Fill(b, 20, 36, 36, 2)
	want := make([]float32, 26*36)
	refgemm.GEMM(26, 36, 20, a, 20, b, 36, want, 36)
	if err := e.MultiplyWith(&opts, c, a, b, 26, 36, 20); err != nil {
		t.Fatal(err)
	}
	if got := refgemm.MaxRelErr(c, want, 26, 36, 36, 36); got > refgemm.Tolerance {
		t.Errorf("tuned multiply wrong: %.3g", got)
	}
}

func TestGenerateKernelText(t *testing.T) {
	e, _ := New("KP920")
	asm, err := e.GenerateKernel(5, 16, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fmla", "ldr q", "subs", "b.ne", "ret", "prfm"} {
		if !strings.Contains(asm, want) {
			t.Errorf("generated assembly missing %q", want)
		}
	}
	if _, err := e.GenerateKernel(12, 16, 32, false); err == nil {
		t.Error("infeasible tile accepted")
	}
}

func TestPreferredTiles(t *testing.T) {
	e, _ := New("KP920")
	tiles := e.PreferredTiles()
	want := map[string]bool{"8x8": true, "6x12": true, "5x16": true, "4x20": true}
	if len(tiles) != 4 {
		t.Fatalf("PreferredTiles = %v", tiles)
	}
	for _, tl := range tiles {
		if !want[tl] {
			t.Errorf("unexpected preferred tile %s", tl)
		}
	}
}

func TestGenerateKernelSAndWords(t *testing.T) {
	e, _ := New("KP920")
	s, err := e.GenerateKernelS(4, 16, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".global mk_4x16x16_l4_rot", "stp x29, x30", "fmla", ".size"} {
		if !strings.Contains(s, want) {
			t.Errorf(".S output missing %q", want)
		}
	}
	w, err := e.GenerateKernelWords(4, 16, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w, ".word 0x") {
		t.Error("no machine words emitted")
	}
	// The SVE chip's 16-lane FMLA indices have no .4s encoding.
	a64, _ := New("A64FX")
	if _, err := a64.GenerateKernelWords(4, 32, 16, false); err == nil {
		t.Error("SVE kernel should not encode to NEON words")
	}
}
