package autogemm

import (
	"context"

	"autogemm/internal/core"
	"autogemm/internal/mkernel"
	"autogemm/internal/plan"
	"autogemm/internal/tiling"
)

// Tiered input-aware planning. The full planner's cold cost is the DMT
// dynamic program — tens of milliseconds per new shape, five decimal
// orders above a warm cache hit. In tiered mode the engine kills that
// cliff in three moves:
//
//   - Tier 0: a cold miss is answered by core.ProduceHeuristic — the
//     same resolved blocking, kernel keys and cost composition, but
//     each block covered by the single-panel heuristic tiler. Plans in
//     microseconds, tagged plan.SourceHeuristic, same fingerprint.
//   - Tier 1: the serve enqueues a background upgrade on the engine's
//     scheduler pool. core.SubmitProduce fans the DMT memo rows out as
//     pool tasks, and on completion the fully tuned plan is hot-swapped
//     into the plan cache (plan.Cache.Replace) and persisted to the
//     registry. In-flight executions of the heuristic plan are
//     untouched; the next serve gets the upgraded plan.
//   - Transfer: when the registry already holds a plan for a nearby
//     shape (same chip and planning configuration, log-space shape
//     distance), the upgrade's DMT search is warm-started from that
//     neighbor's register tiles — the candidate set shrinks from every
//     generatable tile to the neighbor's choices plus the preferred
//     tiles, cutting the dynamic program's inner loop severalfold.
//
// A failed upgrade (planner error, pool closed, injected fault) only
// increments a counter: the serving heuristic plan stays in the cache
// and on the next cold serve the upgrade is retried. Tiered mode is
// opt-in (WithPlanMode or AUTOGEMM_PLAN_MODE=tiered) — the default
// engine plans synchronously exactly as before.

// PlanMode selects how an Engine answers a plan-cache miss.
type PlanMode string

const (
	// PlanModeFull blocks the first call on each shape until the full
	// DMT plan is produced — the default, and the pre-tiered behavior.
	PlanModeFull PlanMode = "full"
	// PlanModeTiered serves an instant heuristic plan on a cold miss
	// and upgrades it to the full plan in the background.
	PlanModeTiered PlanMode = "tiered"
)

// WithPlanMode selects the engine's cold-miss policy. It overrides the
// AUTOGEMM_PLAN_MODE environment variable; an unknown mode falls back
// to PlanModeFull.
func WithPlanMode(mode PlanMode) EngineOption {
	return func(e *Engine) { e.mode = mode }
}

// PlanMode reports the engine's cold-miss policy.
func (e *Engine) PlanMode() PlanMode {
	if e.mode == PlanModeTiered {
		return PlanModeTiered
	}
	return PlanModeFull
}

// planTiered is planResolved's tiered path: build (or fetch) the tier-0
// plan under the request's fingerprint, then — if what came out of the
// cache is still heuristic — make sure a background upgrade is in
// flight. The cache keeps its singleflight invariant untouched: the
// build function still runs once per fingerprint, it is just cheap now.
func (e *Engine) planTiered(co core.Options, m, n, k int, req plan.Request) (*core.Plan, error) {
	fp := req.Fingerprint()
	p, err := e.plans.Get(fp, func() (*core.Plan, error) {
		// A registry hit is already the full plan — no tier-0 detour.
		if e.registry != nil {
			if rec, err := e.registry.Load(fp); err == nil {
				if rec.CheckRequest(req) == nil {
					if p, err := core.Attach(e.chip, rec, co); err == nil {
						return p, nil
					}
				}
			}
		}
		rec, err := core.ProduceHeuristic(e.chip, m, n, k, co)
		if err != nil {
			return nil, err
		}
		att := co
		att.TrustedPlan = true // produced in-process, no audit needed
		return core.Attach(e.chip, rec, att)
	})
	if err != nil {
		return nil, err
	}
	if p.Recipe.Source == plan.SourceHeuristic {
		e.heuristicServed.Add(1)
		e.maybeUpgrade(req, co, m, n, k)
	}
	return p, nil
}

// maybeUpgrade enqueues the background DMT upgrade for a fingerprint
// currently served by a heuristic plan, unless one is already in
// flight. Enqueueing is best-effort and never blocks the serving path:
// a pool at depth (sched.ErrBusy) or closed simply means the next
// serve of the heuristic plan retries.
func (e *Engine) maybeUpgrade(req plan.Request, co core.Options, m, n, k int) {
	fp := req.Fingerprint()
	// A serve that raced past a completed upgrade still holds the old
	// heuristic handle; consult the cache, not the handle, before
	// spending a planner run.
	if cur, ok := e.plans.Lookup(fp); ok && cur.Recipe.Source != plan.SourceHeuristic {
		return
	}
	e.upMu.Lock()
	if _, busy := e.upgrading[fp]; busy {
		e.upMu.Unlock()
		return
	}
	done := make(chan struct{})
	e.upgrading[fp] = done
	e.upMu.Unlock()
	settle := func() {
		e.upMu.Lock()
		delete(e.upgrading, fp)
		e.upMu.Unlock()
		close(done)
	}

	// Transfer planning: warm-start the DMT search from the nearest
	// stored neighbor's tile choices. The seed rides on the
	// runtime-only Strategy field, so the upgraded plan keeps the
	// request's fingerprint.
	up := co
	if e.registry != nil {
		if tiles, _, ok := e.registry.NeighborTiles(req); ok {
			if seed := seedCandidates(e.chip.Lanes, co.Rotate, tiles); len(seed) > 0 {
				up.Strategy = &tiling.DMT{Candidates: seed}
				e.neighborSeeded.Add(1)
			}
		}
	}

	err := core.SubmitProduce(e.sched, e.chip, m, n, k, up, func(rec *plan.Plan, perr error) {
		defer settle()
		if perr != nil {
			// The heuristic plan keeps serving; nothing is evicted and
			// the next cold serve retries the upgrade.
			e.upgradesFailed.Add(1)
			return
		}
		att := co
		att.TrustedPlan = true
		p, aerr := core.Attach(e.chip, rec, att)
		if aerr != nil {
			e.upgradesFailed.Add(1)
			return
		}
		if cur, ok := e.plans.Lookup(fp); ok && cur.Recipe.Source != plan.SourceHeuristic {
			return // an earlier upgrade (or a tuner/load) already landed
		}
		e.plans.Replace(fp, p)
		e.upgradesCompleted.Add(1)
		if e.registry != nil {
			_ = e.registry.Store(rec) // best-effort persistence
		}
	})
	if err != nil {
		settle()
	}
}

// seedCandidates converts a neighbor's (MR, NR) tile shapes into the
// warm-start candidate set: the neighbor's tiles plus the chip's
// preferred tiles (so a bad donor can never pin the search below the
// default quality anchors), filtered by the same generatability and
// rotation register-slack rules DMT's own candidate enumeration uses —
// an explicit candidate list bypasses that filter, so it is reapplied
// here.
func seedCandidates(lanes int, rotate bool, tiles [][2]int) []mkernel.Tile {
	var seed []mkernel.Tile
	seen := map[mkernel.Tile]bool{}
	add := func(t mkernel.Tile) {
		if seen[t] || !t.Generatable(lanes) {
			return
		}
		if rotate && t.RegistersNeeded(lanes) > 30 {
			return
		}
		seen[t] = true
		seed = append(seed, t)
	}
	for _, t := range tiles {
		add(mkernel.Tile{MR: t[0], NR: t[1]})
	}
	for _, t := range mkernel.PreferredTiles(lanes) {
		add(t)
	}
	return seed
}

// FlushUpgrades blocks until every background plan upgrade currently in
// flight has settled (hot-swapped or failed), or until the context
// fires. Benchmarks and tests use it to observe the upgraded state;
// serving code never needs to call it.
func (e *Engine) FlushUpgrades(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		e.upMu.Lock()
		var done chan struct{}
		for _, d := range e.upgrading {
			done = d
			break
		}
		e.upMu.Unlock()
		if done == nil {
			return nil
		}
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
