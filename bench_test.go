package autogemm_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§V). Each BenchmarkTableX/BenchmarkFigX target regenerates
// the corresponding experiment through internal/experiments and reports,
// alongside Go's timing of the harness itself, custom metrics that carry
// the experiment's headline numbers (simulated GFLOPS, efficiencies,
// speedups) so `go test -bench=.` reproduces the paper's result set.
// Absolute wall-clock numbers measure this host running the simulator;
// the simulated-cycle metrics are the paper-comparable quantities.

import (
	"strconv"
	"testing"

	"autogemm"
	"autogemm/internal/baselines"
	"autogemm/internal/core"
	"autogemm/internal/experiments"
	"autogemm/internal/hw"
	"autogemm/internal/refgemm"
)

// run regenerates one experiment per iteration.
func runExperiment(b *testing.B, id string) experiments.Table {
	b.Helper()
	runner, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tbl experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = runner()
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func cell(b *testing.B, tbl experiments.Table, row, col int) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) = %q not numeric", row, col, tbl.Rows[row][col])
	}
	return v
}

// BenchmarkTableI regenerates the library-efficiency summary.
func BenchmarkTableI(b *testing.B) {
	tbl := runExperiment(b, "table1")
	for _, row := range tbl.Rows {
		if row[0] == "autoGEMM" {
			if v, err := strconv.ParseFloat(row[1], 64); err == nil {
				b.ReportMetric(v, "autoGEMM-small-eff%")
			}
			if v, err := strconv.ParseFloat(row[2], 64); err == nil {
				b.ReportMetric(v, "autoGEMM-irregular-eff%")
			}
		}
	}
}

// BenchmarkTableII regenerates the tile arithmetic-intensity table.
func BenchmarkTableII(b *testing.B) {
	tbl := runExperiment(b, "table2")
	b.ReportMetric(float64(len(tbl.Rows)), "mr-rows")
}

// BenchmarkFig2 regenerates the AI-vs-k_c trend.
func BenchmarkFig2(b *testing.B) {
	tbl := runExperiment(b, "fig2")
	last := tbl.Rows[len(tbl.Rows)-1]
	if v, err := strconv.ParseFloat(last[4], 64); err == nil {
		b.ReportMetric(v, "AI-5x16-kc256")
	}
}

// BenchmarkFig3 regenerates the pipeline timing walk-through.
func BenchmarkFig3(b *testing.B) {
	tbl := runExperiment(b, "fig3")
	b.ReportMetric(cell(b, tbl, 0, 4), "5x16-kc16-sim-cycles")
}

// BenchmarkFig4 regenerates the fusion boundary comparison.
func BenchmarkFig4(b *testing.B) {
	tbl := runExperiment(b, "fig4")
	b.ReportMetric(cell(b, tbl, 0, 3), "c_to_c-saving%")
}

// BenchmarkFig5 regenerates the micro-tiling strategy example block.
func BenchmarkFig5(b *testing.B) {
	tbl := runExperiment(b, "fig5")
	for _, row := range tbl.Rows {
		if row[0] == "dmt" {
			if v, err := strconv.ParseFloat(row[1], 64); err == nil {
				b.ReportMetric(v, "dmt-tiles")
			}
		}
	}
}

// BenchmarkFig6 regenerates the step-wise optimization sweep.
func BenchmarkFig6(b *testing.B) {
	tbl := runExperiment(b, "fig6")
	// First row is KP920 64x64x4: report the fusion gain at K=4.
	b.ReportMetric(cell(b, tbl, 0, 5), "KP920-K4-fuse-gain%")
}

// BenchmarkFig7 regenerates the tiling strategy comparison.
func BenchmarkFig7(b *testing.B) {
	tbl := runExperiment(b, "fig7")
	b.ReportMetric(cell(b, tbl, 0, 4), "KP920-80x32-dmt-GFLOPS")
}

// BenchmarkFig8 regenerates the small-GEMM sweep over all chips and
// libraries (the heaviest experiment).
func BenchmarkFig8(b *testing.B) {
	tbl := runExperiment(b, "fig8")
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkFig9 regenerates the ResNet-50 layer evaluation.
func BenchmarkFig9(b *testing.B) {
	tbl := runExperiment(b, "fig9")
	b.ReportMetric(float64(len(tbl.Rows)), "rows")
}

// BenchmarkFig10 regenerates the roofline placements.
func BenchmarkFig10(b *testing.B) {
	tbl := runExperiment(b, "fig10")
	b.ReportMetric(float64(len(tbl.Rows)), "points")
}

// BenchmarkFig11 regenerates the strong-scaling curves and reports the
// full-socket parallel efficiencies the paper quotes.
func BenchmarkFig11(b *testing.B) {
	tbl := runExperiment(b, "fig11")
	for i, row := range tbl.Rows {
		isLast := i == len(tbl.Rows)-1 || tbl.Rows[i+1][0] != row[0]
		if isLast {
			if v, err := strconv.ParseFloat(row[4], 64); err == nil {
				b.ReportMetric(v, row[0]+"-par-eff%")
			}
		}
	}
}

// BenchmarkFig12 regenerates the end-to-end DNN evaluation and reports
// the ResNet50 speedup on KP920 (paper: 1.30x).
func BenchmarkFig12(b *testing.B) {
	tbl := runExperiment(b, "fig12")
	for _, row := range tbl.Rows {
		if row[0] == "KP920" && row[1] == "ResNet50" && row[2] == "autoGEMM" {
			if v, err := strconv.ParseFloat(row[6], 64); err == nil {
				b.ReportMetric(v, "KP920-ResNet50-speedup")
			}
		}
	}
}

// BenchmarkMultiply measures the host-side cost of the functional
// execution path (interpreting generated kernels) for a small GEMM.
func BenchmarkMultiply(b *testing.B) {
	eng, err := autogemm.New("KP920")
	if err != nil {
		b.Fatal(err)
	}
	const m, n, k = 32, 32, 32
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 1)
	refgemm.Fill(bb, k, n, n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Multiply(c, a, bb, m, n, k); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
}

// BenchmarkEstimate measures one performance projection (the unit of
// work inside every experiment).
func BenchmarkEstimate(b *testing.B) {
	eng, err := autogemm.New("Graviton2")
	if err != nil {
		b.Fatal(err)
	}
	var last autogemm.Perf
	for i := 0; i < b.N; i++ {
		last, err = eng.Estimate(64, 64, 64, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.GFLOPS, "simulated-GFLOPS")
}

// BenchmarkKernelGeneration measures micro-kernel generation throughput.
func BenchmarkKernelGeneration(b *testing.B) {
	eng, err := autogemm.New("KP920")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := eng.GenerateKernel(5, 16, 64, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProviderEstimates measures the per-library projection cost on
// the Table I irregular shape.
func BenchmarkProviderEstimates(b *testing.B) {
	chip := hw.KP920()
	for _, p := range baselines.All() {
		if !p.Supports(chip, 256, 3136, 64) {
			continue
		}
		b.Run(p.Name, func(b *testing.B) {
			var eff float64
			for i := 0; i < b.N; i++ {
				est, err := p.Estimate(chip, 256, 3136, 64)
				if err != nil {
					b.Fatal(err)
				}
				eff = est.Efficiency
			}
			b.ReportMetric(eff*100, "sim-eff%")
		})
	}
}

// BenchmarkTableIII regenerates the model-parameter inventory.
func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTableIV regenerates the hardware-specification table.
func BenchmarkTableIV(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTableV regenerates the ResNet-50 shape table with its im2col
// provenance.
func BenchmarkTableV(b *testing.B) {
	tbl := runExperiment(b, "table5")
	b.ReportMetric(float64(len(tbl.Rows)), "layers")
}

// BenchmarkAblationWindow regenerates the rotation-vs-OoO ablation and
// reports the no-rename rotation gain.
func BenchmarkAblationWindow(b *testing.B) {
	tbl := runExperiment(b, "ablation-window")
	b.ReportMetric(cell(b, tbl, 0, 4), "norename-rotation-gain%")
}

// BenchmarkAblationPrefetch regenerates the cold-cache prefetch ablation.
func BenchmarkAblationPrefetch(b *testing.B) {
	tbl := runExperiment(b, "ablation-prefetch")
	b.ReportMetric(cell(b, tbl, 0, 3), "KP920-prefetch-gain%")
}

// BenchmarkAblationResidency regenerates the residency-cliff ablation.
func BenchmarkAblationResidency(b *testing.B) {
	tbl := runExperiment(b, "ablation-residency")
	b.ReportMetric(cell(b, tbl, 0, 3), "L1-eff%")
	b.ReportMetric(cell(b, tbl, 1, 3), "L2-eff%")
}

// BenchmarkAblationDMT regenerates the tile-candidate ablation.
func BenchmarkAblationDMT(b *testing.B) { runExperiment(b, "ablation-dmt") }

// BenchmarkSVEEdge regenerates the padded-vs-predicated A64FX comparison.
func BenchmarkSVEEdge(b *testing.B) {
	tbl := runExperiment(b, "sve-edge")
	b.ReportMetric(cell(b, tbl, 0, 3), "padded/predicated")
}

// BenchmarkPackKernels regenerates the packing-kernel validation.
func BenchmarkPackKernels(b *testing.B) { runExperiment(b, "pack-kernels") }

// BenchmarkLargeSquare regenerates the large-square crossover sweep.
func BenchmarkLargeSquare(b *testing.B) {
	tbl := runExperiment(b, "large-square")
	b.ReportMetric(cell(b, tbl, len(tbl.Rows)-1, 4), "auto/OpenBLAS-at-384")
}

// BenchmarkRunParallel measures the host-side parallel functional path.
func BenchmarkRunParallel(b *testing.B) {
	chip := hw.KP920()
	plan, err := coreNewPlan(chip)
	if err != nil {
		b.Fatal(err)
	}
	const m, n, k = 64, 64, 48
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	refgemm.Fill(a, m, k, k, 1)
	refgemm.Fill(bb, k, n, n, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := plan.RunParallel(c, a, bb, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// coreNewPlan builds the 64x64x48 plan BenchmarkRunParallel uses.
func coreNewPlan(chip *hw.Chip) (*core.Plan, error) {
	return core.NewPlan(chip, 64, 64, 48, core.AutoOptions(chip))
}
