package autogemm

import (
	"autogemm/internal/core"
)

// plan resolves public options and returns the cached executor for the
// problem, planning (or registry warm-starting) on first request. See
// planResolved in plan.go for the cache and registry mechanics.
func (e *Engine) plan(opts *Options, m, n, k int) (*core.Plan, error) {
	co, err := e.resolve(opts)
	if err != nil {
		return nil, err
	}
	return e.planResolved(co, m, n, k)
}

// SGEMM computes C = α·op(A)·op(B) + β·C with the full BLAS-3 parameter
// set. m, n, k describe the operated shapes: op(A) is m×k and op(B) is
// k×n; when transA is set, A is stored k×m row-major (and likewise B is
// n×k when transB is set). β = 0 overwrites C without reading it.
func (e *Engine) SGEMM(transA, transB bool, m, n, k int,
	alpha float32, a, b []float32, beta float32, c []float32) error {
	return e.SGEMMWith(nil, transA, transB, m, n, k, alpha, a, b, beta, c)
}

// SGEMMWith is SGEMM with explicit algorithm parameters.
func (e *Engine) SGEMMWith(opts *Options, transA, transB bool, m, n, k int,
	alpha float32, a, b []float32, beta float32, c []float32) error {
	plan, err := e.plan(opts, m, n, k)
	if err != nil {
		return err
	}
	return plan.RunSGEMM(core.SGEMMParams{
		Alpha: alpha, Beta: beta,
		TransA: core.Transpose(transA), TransB: core.Transpose(transB),
	}, c, a, b)
}

// CachedPlans reports how many resolved plans the engine holds.
func (e *Engine) CachedPlans() int {
	return e.plans.Len()
}
