// Command autogemm-vet runs the module's custom static-analysis passes
// (internal/vet) over the tree: plan immutability outside internal/plan,
// unsafe confinement to the JIT boundary, context-first exported
// signatures, and goroutine confinement to the scheduler runtime.
//
// It exits 1 when any finding is reported, 2 on operational errors
// (unparseable or untypecheckable tree), so CI can wire it next to
// `go vet`.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autogemm/internal/vet"
)

func main() {
	root := flag.String("root", "", "module root to sweep (default: nearest go.mod above the working directory)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := vet.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*vet.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fmt.Fprintf(os.Stderr, "autogemm-vet: unknown analyzer %q\n", name)
			os.Exit(2)
		}
		analyzers = sel
	}

	dir := *root
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(os.Stderr, "autogemm-vet: %v\n", err)
			os.Exit(2)
		}
		dir, err = vet.FindModuleRoot(wd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "autogemm-vet: %v\n", err)
			os.Exit(2)
		}
	}

	findings, err := vet.Run(dir, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "autogemm-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "autogemm-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
