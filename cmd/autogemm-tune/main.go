// Command autogemm-tune searches the algorithm parameter space for one
// GEMM shape and prints the winning configuration:
//
//	autogemm-tune -chip Graviton2 -m 256 -n 3136 -k 64
//
// With -plan-dir it pre-bakes an on-disk plan registry: the tuned plan
// and the default (auto-options) plan are both persisted, so a serving
// process pointed at the same directory (AUTOGEMM_PLAN_DIR or
// autogemm.WithPlanDir) warm-starts Multiply without planning:
//
//	autogemm-tune -chip KP920 -m 64 -n 3136 -k 64 -plan-dir /var/lib/autogemm/plans
package main

import (
	"flag"
	"fmt"
	"os"

	"autogemm"
)

func main() {
	chip := flag.String("chip", "KP920", "chip model")
	m := flag.Int("m", 64, "rows of A and C")
	n := flag.Int("n", 64, "columns of B and C")
	k := flag.Int("k", 64, "inner dimension")
	budget := flag.Int("budget", 16, "simulator evaluation budget")
	explain := flag.Bool("explain", false, "print the resolved plan and its tilings")
	planDir := flag.String("plan-dir", "", "persist the tuned and default plans into this registry directory")
	flag.Parse()

	var engOpts []autogemm.EngineOption
	if *planDir != "" {
		engOpts = append(engOpts, autogemm.WithPlanDir(*planDir))
	}
	eng, err := autogemm.New(*chip, engOpts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts, perf, err := eng.Tune(*m, *n, *k, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("problem   %dx%dx%d on %s\n", *m, *n, *k, eng.ChipName())
	fmt.Printf("blocking  m_c=%d n_c=%d k_c=%d\n", opts.MC, opts.NC, opts.KC)
	fmt.Printf("order     %s\n", opts.Order)
	fmt.Printf("packing   %s\n", opts.Pack)
	fmt.Printf("projected %.1f GF/s (%.1f%% of single-core peak)\n",
		perf.GFLOPS, perf.Efficiency*100)
	if *planDir != "" {
		// Engine.Tune already persisted the tuned plan; also pre-bake the
		// default-options plan so plain Multiply warm-starts too.
		tuned, err := eng.PlanFor(&opts, *m, *n, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		auto, err := eng.PlanFor(nil, *m, *n, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := eng.SavePlan(auto); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("registry  %s: tuned %s, auto %s\n", *planDir, tuned.Fingerprint(), auto.Fingerprint())
	}
	if *explain {
		desc, err := eng.DescribePlan(&opts, *m, *n, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(desc)
	}
}
