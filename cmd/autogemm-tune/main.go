// Command autogemm-tune searches the algorithm parameter space for one
// GEMM shape and prints the winning configuration:
//
//	autogemm-tune -chip Graviton2 -m 256 -n 3136 -k 64
package main

import (
	"flag"
	"fmt"
	"os"

	"autogemm"
)

func main() {
	chip := flag.String("chip", "KP920", "chip model")
	m := flag.Int("m", 64, "rows of A and C")
	n := flag.Int("n", 64, "columns of B and C")
	k := flag.Int("k", 64, "inner dimension")
	budget := flag.Int("budget", 16, "simulator evaluation budget")
	explain := flag.Bool("explain", false, "print the resolved plan and its tilings")
	flag.Parse()

	eng, err := autogemm.New(*chip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts, perf, err := eng.Tune(*m, *n, *k, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("problem   %dx%dx%d on %s\n", *m, *n, *k, eng.ChipName())
	fmt.Printf("blocking  m_c=%d n_c=%d k_c=%d\n", opts.MC, opts.NC, opts.KC)
	fmt.Printf("order     %s\n", opts.Order)
	fmt.Printf("packing   %s\n", opts.Pack)
	fmt.Printf("projected %.1f GF/s (%.1f%% of single-core peak)\n",
		perf.GFLOPS, perf.Efficiency*100)
	if *explain {
		desc, err := eng.DescribePlan(&opts, *m, *n, *k)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(desc)
	}
}
