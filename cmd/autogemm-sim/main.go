// Command autogemm-sim runs one generated micro-kernel through the
// cycle-level pipeline simulator and prints the cycle count, efficiency,
// and (optionally) a Fig-3-style pipeline timeline:
//
//	autogemm-sim -chip KP920 -mr 5 -nr 16 -kc 16 -rotate -timeline
package main

import (
	"flag"
	"fmt"
	"log"

	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/perfmodel"
	"autogemm/internal/sim"
)

func main() {
	chipName := flag.String("chip", "Didactic", "chip model (Didactic reproduces the paper's Fig 3 parameters)")
	mr := flag.Int("mr", 5, "register tile rows")
	nr := flag.Int("nr", 16, "register tile columns")
	kc := flag.Int("kc", 16, "accumulation depth")
	rotate := flag.Bool("rotate", false, "rotating register allocation")
	timeline := flag.Bool("timeline", false, "print the pipeline Gantt chart")
	rows := flag.Int("rows", 48, "timeline rows")
	cycles := flag.Int("cycles", 110, "timeline cycle window")
	flag.Parse()

	chip, err := hw.ByName(*chipName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := mkernel.Config{
		Tile: mkernel.Tile{MR: *mr, NR: *nr}, KC: *kc, Lanes: chip.Lanes,
		Rotate: *rotate, LoadC: true, SigmaAI: chip.SigmaAI,
	}
	prog, err := mkernel.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	arena := sim.NewArena(1 << 18)
	aAddr := arena.Alloc(*mr**kc + 2*chip.Lanes)
	bAddr := arena.Alloc((*kc + 4) * (*nr + chip.Lanes))
	cAddr := arena.Alloc(*mr * (*nr + chip.Lanes))
	mach := sim.NewMachine(arena, chip.Lanes)
	mach.SetArg(0, aAddr)
	mach.SetArg(1, bAddr)
	mach.SetArg(2, cAddr)
	mach.SetArg(3, int64(*kc))
	mach.SetArg(4, int64(*nr))
	mach.SetArg(5, int64(*nr))

	model := sim.NewModel(chip)
	model.Caches = nil
	model.AssumeLoadLat = chip.LatLoad
	model.KeepEvents = *timeline
	res, err := model.RunAndTime(prog, mach, 1<<30)
	if err != nil {
		log.Fatal(err)
	}

	params := perfmodel.FromChip(chip)
	params.Launch = 0
	proj := params.TileTime(cfg.Tile, *kc, perfmodel.Opt{Rotate: *rotate})
	flops := perfmodel.FLOPs(cfg.Tile, *kc)
	fmt.Printf("kernel      %s on %s\n", cfg.Name(), chip.Name)
	fmt.Printf("simulated   %d cycles (%d dynamic instructions)\n", res.Cycles, res.DynInstrs)
	fmt.Printf("model       %.0f cycles (Eqns 4-10)\n", proj)
	fmt.Printf("efficiency  %.1f%% of FMA-port peak\n",
		100*perfmodel.Efficiency(chip, flops, float64(res.Cycles)))
	fmt.Printf("utilization FMA ports %.1f%%, load ports %.1f%%\n",
		100*res.FMAUtilization(chip), 100*res.LoadUtilization(chip))
	if *timeline {
		fmt.Println()
		fmt.Print(sim.RenderTimeline(prog, res.Events, *rows, *cycles))
	}
}
