// Command autogemm-gen prints auto-generated micro-kernels (the output
// of the paper's Listing 1 generator) for inspection:
//
//	autogemm-gen -chip KP920 -mr 5 -nr 16 -kc 32 -rotate
package main

import (
	"flag"
	"fmt"
	"os"

	"autogemm"
)

func main() {
	chip := flag.String("chip", "KP920", "chip model (see -chips)")
	mr := flag.Int("mr", 5, "register tile rows m_r")
	nr := flag.Int("nr", 16, "register tile columns n_r (multiple of the SIMD width)")
	kc := flag.Int("kc", 32, "accumulation depth k_c")
	rotate := flag.Bool("rotate", false, "apply rotating register allocation (§III-C1)")
	sfile := flag.Bool("s", false, "emit a complete GNU assembler .S file (AAPCS64 wrapper)")
	binary := flag.Bool("bin", false, "emit encoded AArch64 machine words")
	info := flag.Bool("info", false, "print the kernel's instruction mix and AI report")
	chips := flag.Bool("chips", false, "list chip models and exit")
	flag.Parse()

	if *chips {
		for _, c := range autogemm.Chips() {
			fmt.Println(c)
		}
		return
	}
	eng, err := autogemm.New(*chip)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var out string
	var err2 error
	switch {
	case *info:
		out, err2 = eng.KernelInfo(*mr, *nr, *kc, *rotate)
	case *sfile:
		out, err2 = eng.GenerateKernelS(*mr, *nr, *kc, *rotate)
	case *binary:
		out, err2 = eng.GenerateKernelWords(*mr, *nr, *kc, *rotate)
	default:
		out, err2 = eng.GenerateKernel(*mr, *nr, *kc, *rotate)
	}
	if err2 != nil {
		fmt.Fprintln(os.Stderr, err2)
		os.Exit(1)
	}
	fmt.Print(out)
}
