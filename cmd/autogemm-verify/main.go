// Command autogemm-verify runs the paper's §V correctness process: every
// library implementation computes randomized problems and is checked
// against the reference to relative error < 1e-6.
//
//	autogemm-verify -chip A64FX -cases 100 -max 64 -variants
package main

import (
	"flag"
	"fmt"
	"os"

	"autogemm/internal/hw"
	"autogemm/internal/verify"
)

func main() {
	chipName := flag.String("chip", "KP920", "chip model, or 'all'")
	cases := flag.Int("cases", 40, "randomized problems per chip")
	maxDim := flag.Int("max", 48, "maximum dimension")
	seed := flag.Int64("seed", 1, "case generator seed")
	variants := flag.Bool("variants", false, "also sweep autoGEMM option variants")
	flag.Parse()

	chips := hw.All()
	if *chipName != "all" {
		chip, err := hw.ByName(*chipName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		chips = []*hw.Chip{chip}
	}
	failed := false
	for _, chip := range chips {
		rep, err := verify.Run(verify.Config{
			Chip: chip, Cases: *cases, MaxDim: *maxDim, Seed: *seed, Variants: *variants,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-10s %d cases, %d checks, max rel err %.2e — ",
			chip.Name, rep.Cases, rep.Checks, rep.MaxRelErr)
		if len(rep.Failures) == 0 {
			fmt.Println("all within 1e-6")
			continue
		}
		failed = true
		fmt.Printf("%d FAILURES\n", len(rep.Failures))
		for _, f := range rep.Failures {
			fmt.Println("  " + f.String())
		}
	}
	if failed {
		os.Exit(1)
	}
}
