package main

import (
	"encoding/json"
	"fmt"
	"os"

	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
	"autogemm/internal/plan"
	"autogemm/internal/plan/audit"
)

// auditShapes are the geometries the self-baking audit sweep proves per
// chip: an aligned square, an irregular shape with ragged tails in all
// three dimensions, a small prime-sided shape, and a skinny GEMV-like
// shape — the corners where coverage and bounds composition can break.
var auditShapes = [][3]int{
	{64, 64, 64},
	{129, 200, 55},
	{37, 41, 43},
	{8, 1000, 32},
}

// runAuditSweep deep-audits plans: every entry of a registry directory
// when one is given, otherwise plans freshly baked for every modeled
// chip across auditShapes. Exit status 1 when any plan fails its audit.
func runAuditSweep(dir, chipName string, verbose bool) int {
	cache := mkernel.NewCache()
	opts := audit.Options{Deep: true, Cache: cache}
	plans, label, err := auditPlans(dir, chipName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	failures := 0
	for _, p := range plans {
		chip, err := hw.ByName(p.Request.Chip)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "%s: %v\n", p.Fingerprint, err)
			continue
		}
		rep, err := audit.Audit(chip, p, opts)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "%s (%s %dx%dx%d): %v\n",
				p.Fingerprint, chip.Name, p.Request.M, p.Request.N, p.Request.K, err)
			continue
		}
		if verbose {
			fmt.Printf("%s %-10s %4dx%-4dx%-4d %d blocks, %d tiles, %d groups, %d kernels: %d checks passed\n",
				p.Fingerprint[:12], chip.Name, p.Request.M, p.Request.N, p.Request.K,
				rep.Blocks, rep.Tiles, rep.Groups, rep.Kernels, len(rep.Passed))
		}
	}
	fmt.Printf("audit      %4d plan(s) from %s, %d failure(s)\n", len(plans), label, failures)
	if failures > 0 {
		return 1
	}
	return 0
}

// auditPlans collects the plans to audit: the registry at dir, or
// freshly produced plans when dir is empty.
func auditPlans(dir, chipName string) ([]*plan.Plan, string, error) {
	if dir != "" {
		reg := plan.NewRegistry(dir)
		fps, err := reg.List()
		if err != nil {
			return nil, "", err
		}
		var plans []*plan.Plan
		for _, fp := range fps {
			p, err := reg.Load(fp)
			if err != nil {
				return nil, "", fmt.Errorf("registry %s: %w", dir, err)
			}
			plans = append(plans, p)
		}
		return plans, dir, nil
	}

	chips := hw.All()
	if chipName != "all" {
		chip, err := hw.ByName(chipName)
		if err != nil {
			return nil, "", err
		}
		chips = []*hw.Chip{chip}
	}
	var plans []*plan.Plan
	for _, chip := range chips {
		for _, s := range auditShapes {
			p, err := core.Produce(chip, s[0], s[1], s[2], core.AutoOptions(chip))
			if err != nil {
				return nil, "", fmt.Errorf("produce %s %dx%dx%d: %w", chip.Name, s[0], s[1], s[2], err)
			}
			plans = append(plans, p)
		}
	}
	return plans, "baked plans", nil
}

// auditTamper applies one named corruption to a decoded plan value and
// returns the tampered copy. The transforms operate on a value freshly
// unmarshalled from the baseline bytes, so each injection starts from a
// clean slate.
func auditTamper(kind string, p plan.Plan) (plan.Plan, bool) {
	switch kind {
	case "oob":
		// Shift a micro-tile past the block edge: coverage breaks and, if
		// it survived, the elided bounds checks would be unlicensed.
		p.Blocks[0].Panels[0].Row += 7
	case "overlap":
		// Stretch a panel over its neighbour: two C-tile groups write the
		// same cells, racing under parallel execution.
		p.Blocks[0].Panels[0].M += p.Blocks[0].Panels[0].MR
	case "gap":
		// Shrink the last panel: cells of C are never written.
		blk := p.Blocks[0]
		blk.Panels[len(blk.Panels)-1].M--
	case "fingerprint":
		// Break the request/fingerprint binding a registry filename
		// relies on.
		p.Fingerprint = "0000000000000000" + p.Fingerprint[16:]
	case "format":
		// Claim a future serialization format.
		p.Format++
	case "kernelkey":
		// Name a kernel the plan's own tiling never derives.
		p.KernelKeys = append(p.KernelKeys, "mk_9x8x77_l4_rot")
	default:
		return p, false
	}
	return p, true
}

// runAuditInjection bakes a clean plan, corrupts it one declared way
// and audits it. Mirroring -inject, the exit status is 1 when the audit
// catches the defect and 0 when it rubber-stamps the corrupt plan.
func runAuditInjection(kind string) int {
	chip, err := hw.ByName("KP920")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rec, err := core.Produce(chip, 129, 200, 55, core.AutoOptions(chip))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	data, err := rec.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	// Round-trip through JSON without Encode/Decode validation, exactly
	// like a corrupt registry file reaches the auditor.
	var p plan.Plan
	if err := json.Unmarshal(data, &p); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	p, ok := auditTamper(kind, p)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown audit injection %q (want oob|overlap|gap|fingerprint|format|kernelkey)\n", kind)
		return 2
	}

	if _, err := audit.Audit(chip, &p, audit.Options{Deep: true}); err != nil {
		fmt.Printf("audit injection %q detected: %v\n", kind, err)
		return 1
	}
	fmt.Printf("audit injection %q NOT detected\n", kind)
	return 0
}
