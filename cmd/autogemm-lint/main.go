// Command autogemm-lint sweeps the micro-kernel generation space and
// runs the dataflow analyzer (internal/asm/analysis) over every emitted
// kernel: all generatable tiles × the modeled chips × the rotation,
// accumulate and fusion variants, plus band, predicated-SVE and packing
// kernels. It exits non-zero when any kernel has findings.
//
//	autogemm-lint                 # sweep everything, expect zero findings
//	autogemm-lint -chip A64FX -v  # one chip, per-kernel reports
//	autogemm-lint -inject clobber # sanity-check the analyzer itself
//
// -inject deliberately corrupts one representative kernel (or its
// analysis contract) before linting, so CI can assert the analyzer
// actually rejects bad code rather than rubber-stamping everything.
//
// -audit switches to the plan-audit sweep: every plan in a registry
// directory (-plans), or plans freshly baked for each modeled chip, is
// run through the deep static audit (internal/plan/audit) — coverage,
// bounds composition, structural consistency, plus generation and
// dataflow analysis of every kernel the plan names. -audit-inject
// corrupts a baked plan one declared way (oob, overlap, gap,
// fingerprint, format, kernelkey) and expects the audit to reject it.
package main

import (
	"flag"
	"fmt"
	"os"

	"autogemm/internal/asm"
	"autogemm/internal/asm/analysis"
	"autogemm/internal/hw"
	"autogemm/internal/mkernel"
)

type linter struct {
	verbose  bool
	kernels  int
	findings int
}

// lint analyzes one program and tallies the result.
func (l *linter) lint(p *asm.Program, opts analysis.Options) {
	l.kernels++
	rep, err := analysis.Analyze(p, opts)
	if err != nil {
		l.findings++
		fmt.Fprintln(os.Stderr, err)
		return
	}
	if !rep.OK() {
		l.findings += len(rep.Findings)
		fmt.Println(rep.String())
		return
	}
	if l.verbose {
		fmt.Println(rep.String())
	}
}

func main() {
	chipName := flag.String("chip", "all", "chip model, or 'all'")
	verbose := flag.Bool("v", false, "print a report line per kernel (or per plan with -audit)")
	inject := flag.String("inject", "", "corrupt a kernel first: clobber|use-before-def|pressure|rotation")
	auditMode := flag.Bool("audit", false, "deep-audit plans instead of linting kernels")
	plansDir := flag.String("plans", "", "registry directory for -audit (default: bake plans in-process)")
	auditInject := flag.String("audit-inject", "", "corrupt a plan, expect the audit to reject: oob|overlap|gap|fingerprint|format|kernelkey")
	flag.Parse()

	if *inject != "" {
		os.Exit(runInjection(*inject))
	}
	if *auditInject != "" {
		os.Exit(runAuditInjection(*auditInject))
	}
	if *auditMode {
		os.Exit(runAuditSweep(*plansDir, *chipName, *verbose))
	}

	chips := hw.All()
	if *chipName != "all" {
		chip, err := hw.ByName(*chipName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		chips = []*hw.Chip{chip}
	}

	l := &linter{verbose: *verbose}
	for _, chip := range chips {
		before := l.findings
		n := l.kernels
		l.sweepChip(chip)
		fmt.Printf("%-10s %4d kernels, %d finding(s)\n", chip.Name, l.kernels-n, l.findings-before)
	}
	fmt.Printf("total      %4d kernels, %d finding(s)\n", l.kernels, l.findings)
	if l.findings > 0 {
		os.Exit(1)
	}
}

// sweepChip lints every kernel variant the generator can emit for one
// chip: single tiles across KC shapes and flags, uniform and mixed
// bands, predicated SVE kernels, and a packing kernel.
func (l *linter) sweepChip(chip *hw.Chip) {
	lanes := chip.Lanes
	kcs := []int{lanes, 2*lanes + 1, 32}
	for _, tile := range mkernel.FeasibleTiles(lanes) {
		if !tile.Generatable(lanes) {
			continue
		}
		for _, kc := range kcs {
			for _, rotate := range []bool{false, true} {
				for _, loadC := range []bool{false, true} {
					cfg := mkernel.Config{
						Tile: tile, KC: kc, Lanes: lanes,
						Rotate: rotate, SigmaAI: chip.SigmaAI, LoadC: loadC,
						SkipAnalysis: true,
					}
					p, err := mkernel.Generate(cfg)
					if err != nil {
						l.fail("generate %s: %v", cfg.Name(), err)
						continue
					}
					opts, err := cfg.AnalysisOptions()
					if err != nil {
						l.fail("options %s: %v", cfg.Name(), err)
						continue
					}
					l.lint(p, opts)
				}
			}
		}
	}

	// Band kernels: a uniform two-tile band and a mixed-width band that
	// switches register layouts at the seam, fused and unfused.
	bands := []mkernel.BandConfig{
		{Segments: []mkernel.Segment{{Tile: mkernel.Tile{MR: 4, NR: 2 * lanes}, Count: 2}},
			KC: 2*lanes + 1, Lanes: lanes, Rotate: true},
		{Segments: []mkernel.Segment{
			{Tile: mkernel.Tile{MR: 4, NR: 2 * lanes}, Count: 1},
			{Tile: mkernel.Tile{MR: 4, NR: lanes}, Count: 1}},
			KC: 2*lanes + 1, Lanes: lanes, Rotate: true},
	}
	for _, bc := range bands {
		for _, fuse := range []bool{false, true} {
			for _, loadC := range []bool{false, true} {
				cfg := bc
				cfg.Fuse, cfg.LoadC, cfg.SigmaAI = fuse, loadC, chip.SigmaAI
				cfg.SkipAnalysis = true
				p, err := mkernel.GenerateBand(cfg)
				if err != nil {
					l.fail("generate %s: %v", cfg.Name(), err)
					continue
				}
				opts, err := cfg.AnalysisOptions()
				if err != nil {
					l.fail("options %s: %v", cfg.Name(), err)
					continue
				}
				l.lint(p, opts)
			}
		}
	}

	// Predicated SVE kernels exercise the exact-bounds contract,
	// including ragged n and k tails.
	if chip.SVE {
		for _, nr := range []int{lanes - 1, lanes + 3, 3 * lanes} {
			for _, kc := range []int{lanes, lanes + 5} {
				cfg := mkernel.PredConfig{
					Tile: mkernel.Tile{MR: 4, NR: nr}, KC: kc, Lanes: lanes,
					LoadC: true, SkipAnalysis: true,
				}
				if !cfg.Feasible() {
					continue
				}
				p, err := mkernel.GeneratePredicated(cfg)
				if err != nil {
					l.fail("generate %s: %v", cfg.Name(), err)
					continue
				}
				l.lint(p, cfg.AnalysisOptions())
			}
		}
	}

	pack := mkernel.PackConfig{Rows: 8, Cols: 4 * lanes, Lanes: lanes, SkipAnalysis: true}
	if p, err := mkernel.GeneratePack(pack); err != nil {
		l.fail("generate %s: %v", pack.Name(), err)
	} else {
		l.lint(p, pack.AnalysisOptions())
	}
}

func (l *linter) fail(format string, args ...interface{}) {
	l.findings++
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// runInjection corrupts one representative kernel (or its contract) and
// lints it; the expected outcome is findings, so the exit status is 1
// when the analyzer catches the defect and 0 when it does not.
func runInjection(kind string) int {
	lanes := 4
	cfg := mkernel.Config{
		Tile: mkernel.Tile{MR: 4, NR: 2 * lanes}, KC: 2*lanes + 1, Lanes: lanes,
		Rotate: true, SigmaAI: 4.0, LoadC: true, SkipAnalysis: true,
	}
	p, err := mkernel.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	opts, err := cfg.AnalysisOptions()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	switch kind {
	case "clobber":
		// Turn the first C store into a load of the same accumulator: the
		// partial sum is overwritten instead of written back.
		for i := range p.Instrs {
			in := &p.Instrs[i]
			if in.Op == asm.OpStrQPost || in.Op == asm.OpStrQ {
				*in = asm.Instr{Op: asm.OpLdrQ, Dst: in.Dst, Src1: in.Src1,
					Comment: "injected clobber"}
				break
			}
		}
	case "use-before-def":
		// Point the first FMLA's multiplicand at a vector register nothing
		// ever writes.
		unused := findUnusedVector(p)
		if unused == asm.NoReg {
			fmt.Fprintln(os.Stderr, "no unused vector register to inject with")
			return 2
		}
		for i := range p.Instrs {
			if p.Instrs[i].Op == asm.OpFmla {
				p.Instrs[i].Src1 = unused
				break
			}
		}
	case "pressure":
		// The kernel is untouched; the budget is shrunk below its true
		// working set.
		opts.VectorBudget = 4
	case "rotation":
		// Claim B double buffering on a kernel generated without it.
		cfg.Rotate = false
		p, err = mkernel.Generate(mkernel.Config{
			Tile: cfg.Tile, KC: cfg.KC, Lanes: cfg.Lanes,
			SigmaAI: cfg.SigmaAI, LoadC: cfg.LoadC, SkipAnalysis: true,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts.Rotation = &analysis.RotationHint{BDouble: true}
	default:
		fmt.Fprintf(os.Stderr, "unknown injection %q (want clobber|use-before-def|pressure|rotation)\n", kind)
		return 2
	}

	rep, err := analysis.Analyze(p, opts)
	if err != nil {
		fmt.Println(err)
		return 1
	}
	fmt.Println(rep.String())
	for _, f := range rep.Findings {
		if f.Index >= 0 && f.Index < len(p.Instrs) {
			fmt.Printf("    instr %d is: %s\n", f.Index, asm.FormatInstr(&p.Instrs[f.Index]))
		}
	}
	if rep.OK() {
		fmt.Printf("injection %q NOT detected\n", kind)
		return 0
	}
	return 1
}

// findUnusedVector returns a vector register the program neither reads
// nor writes.
func findUnusedVector(p *asm.Program) asm.Reg {
	used := map[asm.Reg]bool{}
	for i := range p.Instrs {
		for _, r := range p.Instrs[i].Reads() {
			used[r] = true
		}
		for _, r := range p.Instrs[i].Writes() {
			used[r] = true
		}
	}
	for v := 0; v < asm.NumVectorRegs; v++ {
		if !used[asm.V(v)] {
			return asm.V(v)
		}
	}
	return asm.NoReg
}
