package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"autogemm"
	"autogemm/internal/sched"
)

// The AUTOGEMM_FAULT knob runs a deterministic failure drill against
// the real engine before any -json measurement: it injects the
// requested fault classes through the scheduler's test hook
// (sched.SetFaultHook) and through context cancellation, and verifies
// the documented failure semantics — the fault surfaces as the right
// error, the engine keeps serving afterwards, and no worker is lost.
//
//	AUTOGEMM_FAULT=panic,error,cancel,upgrade autogemm-bench -json -tag smoke ...
//
// Accepted classes: "panic", "error", "cancel", "upgrade", or "all".
// The "upgrade" class runs against a fresh PlanModeTiered engine and
// kills the background plan upgrade instead of an execution task. CI
// runs the drill in the bench-smoke job; the same paths are covered
// under -race by the sched and root failure tests.

// faultDrill executes each requested fault class on a fresh engine and
// returns an error when a failure path misbehaves.
func faultDrill(spec, chipName string) error {
	modes := strings.Split(spec, ",")
	if spec == "all" {
		modes = []string{"panic", "error", "cancel", "upgrade"}
	}
	eng, err := autogemm.New(chipName, autogemm.WithWorkers(2))
	if err != nil {
		return err
	}
	defer eng.Close()
	defer sched.SetFaultHook(nil)

	const m, n, k = 48, 48, 48
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fill(a, 7)
	fill(b, 9)
	// Small explicit blocks so one job has several C-tile groups — the
	// cancel drill needs claims left to skip after the fault lands.
	opts := &autogemm.Options{MC: 16, NC: 16, KC: 16}
	mul := func(ctx context.Context) error {
		return eng.MultiplyWithContext(ctx, opts, make([]float32, m*n), a, b, m, n, k)
	}

	for _, mode := range modes {
		var err error
		switch strings.TrimSpace(mode) {
		case "panic":
			var fired int32
			sched.SetFaultHook(func(task int) error {
				if atomic.CompareAndSwapInt32(&fired, 0, 1) {
					panic("AUTOGEMM_FAULT drill")
				}
				return nil
			})
			if err = mul(context.Background()); !errors.Is(err, autogemm.ErrPanicked) {
				return fmt.Errorf("fault drill panic: err = %v, want ErrPanicked", err)
			}
		case "error":
			var fired int32
			boom := errors.New("AUTOGEMM_FAULT drill error")
			sched.SetFaultHook(func(task int) error {
				if atomic.CompareAndSwapInt32(&fired, 0, 1) {
					return boom
				}
				return nil
			})
			if err = mul(context.Background()); !errors.Is(err, boom) {
				return fmt.Errorf("fault drill error: err = %v, want injected error", err)
			}
		case "cancel":
			// Cancel mid-job, from inside the job's first task: the
			// remaining C-tile groups must be skipped and the call must
			// report the cancellation, not a result.
			ctx, cancel := context.WithCancel(context.Background())
			var fired int32
			sched.SetFaultHook(func(task int) error {
				if atomic.CompareAndSwapInt32(&fired, 0, 1) {
					cancel()
				}
				return nil
			})
			if err = mul(ctx); !errors.Is(err, context.Canceled) {
				cancel()
				return fmt.Errorf("fault drill cancel: err = %v, want context.Canceled", err)
			}
			cancel()
		case "upgrade":
			// Runs on its own tiered engine; prints its own ok line.
			if err := upgradeDrill(chipName); err != nil {
				return err
			}
			sched.SetFaultHook(nil)
			continue
		default:
			return fmt.Errorf("unknown AUTOGEMM_FAULT class %q (panic, error, cancel, all)", mode)
		}
		sched.SetFaultHook(nil)
		// The engine must keep serving at full strength after the fault.
		if err := mul(context.Background()); err != nil {
			return fmt.Errorf("fault drill %s: engine unhealthy afterwards: %v", mode, err)
		}
		fmt.Fprintf(os.Stderr, "fault drill %-6s ok (fault surfaced: %v)\n", mode, err)
	}
	st := eng.PlanCacheStats()
	fmt.Fprintf(os.Stderr, "fault drill counters: panicked=%d cancelled=%d completed=%d/%d\n",
		st.SchedTasksPanicked, st.SchedJobsCancelled, st.SchedJobsCompleted, st.SchedJobsSubmitted)
	return nil
}

// upgradeDrill verifies the tiered planner's failure containment: a
// background DMT upgrade killed by an injected fault must leave the
// tier-0 heuristic plan serving (bit-correct results, no eviction, no
// cache poisoning), count exactly one failed upgrade, and the next
// serve of the shape must retry the upgrade and land the full plan.
func upgradeDrill(chipName string) error {
	eng, err := autogemm.New(chipName,
		autogemm.WithPlanMode(autogemm.PlanModeTiered), autogemm.WithWorkers(2))
	if err != nil {
		return err
	}
	defer eng.Close()
	defer sched.SetFaultHook(nil)

	const m, n, k = 64, 72, 48
	var fired int32
	sched.SetFaultHook(func(task int) error {
		if atomic.CompareAndSwapInt32(&fired, 0, 1) {
			return errors.New("AUTOGEMM_FAULT upgrade drill")
		}
		return nil
	})
	// PlanFor (not Multiply) keeps the upgrade job the only scheduler
	// work, so the one-shot fault lands on it deterministically.
	p, err := eng.PlanFor(nil, m, n, k)
	if err != nil {
		return fmt.Errorf("fault drill upgrade: cold plan: %v", err)
	}
	if p.Source() != "heuristic" {
		return fmt.Errorf("fault drill upgrade: cold source %q, want heuristic", p.Source())
	}
	if err := eng.FlushUpgrades(context.Background()); err != nil {
		return err
	}
	st := eng.PlanCacheStats()
	if st.UpgradesFailed != 1 || st.UpgradesCompleted != 0 {
		return fmt.Errorf("fault drill upgrade: failed=%d completed=%d after injected fault, want 1/0",
			st.UpgradesFailed, st.UpgradesCompleted)
	}
	sched.SetFaultHook(nil)

	// The surviving heuristic plan must keep serving, bit-identical to
	// a default (full-planning) engine.
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fill(a, 11)
	fill(b, 13)
	got := make([]float32, m*n)
	if err := eng.Multiply(got, a, b, m, n, k); err != nil {
		return fmt.Errorf("fault drill upgrade: serve after failed upgrade: %v", err)
	}
	full, err := autogemm.New(chipName)
	if err != nil {
		return err
	}
	defer full.Close()
	want := make([]float32, m*n)
	if err := full.Multiply(want, a, b, m, n, k); err != nil {
		return err
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("fault drill upgrade: result diverges at element %d after failed upgrade", i)
		}
	}

	// That serve retried the upgrade with the hook cleared; once it
	// settles the full plan must be in the cache.
	if err := eng.FlushUpgrades(context.Background()); err != nil {
		return err
	}
	if p, err = eng.PlanFor(nil, m, n, k); err != nil {
		return err
	}
	if p.Source() == "heuristic" {
		return fmt.Errorf("fault drill upgrade: retried upgrade never landed")
	}
	if st = eng.PlanCacheStats(); st.UpgradesCompleted != 1 {
		return fmt.Errorf("fault drill upgrade: completed=%d after retry, want 1", st.UpgradesCompleted)
	}
	fmt.Fprintf(os.Stderr, "fault drill upgrade ok (failure contained, heuristic kept serving, retry landed)\n")
	return nil
}
