package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync/atomic"

	"autogemm"
	"autogemm/internal/sched"
)

// The AUTOGEMM_FAULT knob runs a deterministic failure drill against
// the real engine before any -json measurement: it injects the
// requested fault classes through the scheduler's test hook
// (sched.SetFaultHook) and through context cancellation, and verifies
// the documented failure semantics — the fault surfaces as the right
// error, the engine keeps serving afterwards, and no worker is lost.
//
//	AUTOGEMM_FAULT=panic,error,cancel autogemm-bench -json -tag smoke ...
//
// Accepted classes: "panic", "error", "cancel", or "all". CI runs the
// drill in the bench-smoke job; the same paths are covered under -race
// by the sched and root failure tests.

// faultDrill executes each requested fault class on a fresh engine and
// returns an error when a failure path misbehaves.
func faultDrill(spec, chipName string) error {
	modes := strings.Split(spec, ",")
	if spec == "all" {
		modes = []string{"panic", "error", "cancel"}
	}
	eng, err := autogemm.New(chipName, autogemm.WithWorkers(2))
	if err != nil {
		return err
	}
	defer eng.Close()
	defer sched.SetFaultHook(nil)

	const m, n, k = 48, 48, 48
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fill(a, 7)
	fill(b, 9)
	// Small explicit blocks so one job has several C-tile groups — the
	// cancel drill needs claims left to skip after the fault lands.
	opts := &autogemm.Options{MC: 16, NC: 16, KC: 16}
	mul := func(ctx context.Context) error {
		return eng.MultiplyWithContext(ctx, opts, make([]float32, m*n), a, b, m, n, k)
	}

	for _, mode := range modes {
		var err error
		switch strings.TrimSpace(mode) {
		case "panic":
			var fired int32
			sched.SetFaultHook(func(task int) error {
				if atomic.CompareAndSwapInt32(&fired, 0, 1) {
					panic("AUTOGEMM_FAULT drill")
				}
				return nil
			})
			if err = mul(context.Background()); !errors.Is(err, autogemm.ErrPanicked) {
				return fmt.Errorf("fault drill panic: err = %v, want ErrPanicked", err)
			}
		case "error":
			var fired int32
			boom := errors.New("AUTOGEMM_FAULT drill error")
			sched.SetFaultHook(func(task int) error {
				if atomic.CompareAndSwapInt32(&fired, 0, 1) {
					return boom
				}
				return nil
			})
			if err = mul(context.Background()); !errors.Is(err, boom) {
				return fmt.Errorf("fault drill error: err = %v, want injected error", err)
			}
		case "cancel":
			// Cancel mid-job, from inside the job's first task: the
			// remaining C-tile groups must be skipped and the call must
			// report the cancellation, not a result.
			ctx, cancel := context.WithCancel(context.Background())
			var fired int32
			sched.SetFaultHook(func(task int) error {
				if atomic.CompareAndSwapInt32(&fired, 0, 1) {
					cancel()
				}
				return nil
			})
			if err = mul(ctx); !errors.Is(err, context.Canceled) {
				cancel()
				return fmt.Errorf("fault drill cancel: err = %v, want context.Canceled", err)
			}
			cancel()
		default:
			return fmt.Errorf("unknown AUTOGEMM_FAULT class %q (panic, error, cancel, all)", mode)
		}
		sched.SetFaultHook(nil)
		// The engine must keep serving at full strength after the fault.
		if err := mul(context.Background()); err != nil {
			return fmt.Errorf("fault drill %s: engine unhealthy afterwards: %v", mode, err)
		}
		fmt.Fprintf(os.Stderr, "fault drill %-6s ok (fault surfaced: %v)\n", mode, err)
	}
	st := eng.PlanCacheStats()
	fmt.Fprintf(os.Stderr, "fault drill counters: panicked=%d cancelled=%d completed=%d/%d\n",
		st.SchedTasksPanicked, st.SchedJobsCancelled, st.SchedJobsCompleted, st.SchedJobsSubmitted)
	return nil
}
