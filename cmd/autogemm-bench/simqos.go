package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"autogemm/internal/core"
	"autogemm/internal/hw"
	"autogemm/internal/sched"
	"autogemm/internal/vtime"
	"autogemm/internal/workload"
)

// The -sim-qos mode measures scheduling *policy* — FIFO vs weighted
// multi-class claiming — in simulated cycles on a mixed ResNet-50
// workload: a few large-FLOP shapes submitted first as a low-weight
// "batch" class, then a burst of small shapes as a high-weight
// "latency" class. The real runtime executes the whole mix once (real
// pool, real per-class queues, Recorder capturing every job's task
// costs and scheduling identity), outputs are verified bit-identical
// to serial, and the recorded schedule is replayed twice through
// vtime.SimulateBatch — once under each policy — to produce per-class
// queue-wait distributions and makespans. FIFO shows the starvation
// pathology (small shapes wait behind every batch frontier); weighted
// claiming bounds it without giving up makespan, which is the
// weighted-beats-FIFO assert -assert-qos gates in make bench-smoke.

// Mixed-workload composition: the top batchShapes shapes by FLOPs are
// the batch tenant (batchCopies jobs each, submitted first, so FIFO
// serves them first), the bottom latencyShapes are the latency tenant.
const (
	batchShapes   = 2
	batchCopies   = 2
	latencyShapes = 4
	latencyCopies = 3

	latencyClass  = "latency"
	batchClass    = "batch"
	latencyWeight = 16
	batchWeight   = 1
)

// simQoSClassDist is one class's simulated queue-wait distribution
// under one policy, in virtual cycles.
type simQoSClassDist struct {
	Class      string  `json:"class"`
	Jobs       int     `json:"jobs"`
	P50Wait    float64 `json:"p50WaitCycles"`
	P99Wait    float64 `json:"p99WaitCycles"`
	MaxWait    float64 `json:"maxWaitCycles"`
	MeanFinish float64 `json:"meanFinishCycles"`
}

// simQoSPolicy is one policy's replay outcome.
type simQoSPolicy struct {
	Policy   string            `json:"policy"`
	Makespan float64           `json:"makespanCycles"`
	Classes  []simQoSClassDist `json:"classes"`
}

// simQoSReport is the -sim-qos result: both policies on the same
// recorded schedule, plus the evidence it came from a real run.
type simQoSReport struct {
	Chip          string   `json:"chip"`
	VirtWorkers   int      `json:"virtWorkers"`
	PoolWorkers   int      `json:"poolWorkers"`
	Jobs          int      `json:"jobs"`
	BatchShapes   []string `json:"batchShapes"`
	LatencyShapes []string `json:"latencyShapes"`

	// Real-pool per-class counters (queue wait in claim decisions) and
	// idle-cycle spread (Stats.IdleCycles against the busiest worker).
	PoolClasses    []sched.ClassStats `json:"poolClasses"`
	PoolIdleSpread float64            `json:"poolIdleSpreadCycles"`

	FIFO     simQoSPolicy `json:"fifo"`
	Weighted simQoSPolicy `json:"weighted"`

	// LatencyP99Speedup is FIFO's latency-class p99 queue wait divided
	// by weighted's; MakespanDeltaPct is the weighted makespan relative
	// to FIFO, percent (positive = slower).
	LatencyP99Speedup float64 `json:"latencyP99Speedup"`
	MakespanDeltaPct  float64 `json:"makespanDeltaPct"`
}

// simQoSJob pairs a submitted future with its expected output bits.
type simQoSJob struct {
	shape workload.Shape
	class string
	fut   *core.RunFuture
	c     []float32
	ref   []float32
}

// mixedWorkload splits the ResNet-50 set into batch (largest FLOPs)
// and latency (smallest) shape groups.
func mixedWorkload() (batch, latency []workload.Shape) {
	shapes := workload.ResNet50()
	sort.SliceStable(shapes, func(i, j int) bool { return shapes[i].FLOPs() > shapes[j].FLOPs() })
	batch = append(batch, shapes[:batchShapes]...)
	latency = append(latency, shapes[len(shapes)-latencyShapes:]...)
	return batch, latency
}

// runSimQoS executes the mixed workload on a real pool and replays it
// under both policies.
func runSimQoS(chip *hw.Chip, poolWorkers, virtWorkers int) (simQoSReport, error) {
	rep := simQoSReport{Chip: chip.Name, VirtWorkers: virtWorkers, PoolWorkers: poolWorkers}

	pool := sched.New(poolWorkers, 0)
	defer pool.Close()
	rec := sched.NewRecorder()
	pool.SetTimekeeper(rec)
	pool.ConfigureClass(latencyClass, sched.ClassConfig{Weight: latencyWeight})
	pool.ConfigureClass(batchClass, sched.ClassConfig{Weight: batchWeight})

	batch, latency := mixedWorkload()
	for _, s := range batch {
		rep.BatchShapes = append(rep.BatchShapes, s.Name)
	}
	for _, s := range latency {
		rep.LatencyShapes = append(rep.LatencyShapes, s.Name)
	}

	// One plan per distinct shape, with cost accounting on so every
	// task charges its precomputed simulated cost.
	plans := make(map[string]*core.Plan)
	refs := make(map[string][]float32)
	ops := make(map[string][2][]float32)
	prep := func(s workload.Shape) error {
		if _, ok := plans[s.Name]; ok {
			return nil
		}
		opts := core.AutoOptions(chip)
		opts.Runtime = pool
		p, err := core.NewPlan(chip, s.M, s.N, s.K, opts)
		if err != nil {
			return err
		}
		if err := p.EnableCostAccounting(); err != nil {
			return err
		}
		a := make([]float32, s.M*s.K+4*chip.Lanes)
		b := make([]float32, s.K*s.N+2*s.N+4*chip.Lanes)
		fill(a, 3)
		fill(b, 5)
		ref := make([]float32, s.M*s.N)
		if err := p.RunParallel(ref, a, b, 1); err != nil {
			return err
		}
		plans[s.Name] = p
		refs[s.Name] = ref
		ops[s.Name] = [2][]float32{a, b}
		return nil
	}
	for _, s := range append(append([]workload.Shape{}, batch...), latency...) {
		if err := prep(s); err != nil {
			return rep, err
		}
	}

	// Submit the batch tenant first (lower job IDs — the jobs FIFO
	// serves first), then the latency burst, all in flight together.
	var jobs []*simQoSJob
	submit := func(s workload.Shape, class string) error {
		j := &simQoSJob{shape: s, class: class, ref: refs[s.Name], c: make([]float32, s.M*s.N)}
		ab := ops[s.Name]
		fut, err := plans[s.Name].SubmitQoS(nil, j.c, ab[0], ab[1], sched.QoS{Class: class})
		if err != nil {
			return err
		}
		j.fut = fut
		jobs = append(jobs, j)
		return nil
	}
	for copy := 0; copy < batchCopies; copy++ {
		for _, s := range batch {
			if err := submit(s, batchClass); err != nil {
				return rep, err
			}
		}
	}
	for copy := 0; copy < latencyCopies; copy++ {
		for _, s := range latency {
			if err := submit(s, latencyClass); err != nil {
				return rep, err
			}
		}
	}
	rep.Jobs = len(jobs)

	// Barrier + the acceptance checks: every output bit-identical to
	// its serial reference (QoS never touches numerics), every job's
	// recorded costs and scheduling identity on file.
	var vjobs []vtime.Job
	for _, j := range jobs {
		if err := j.fut.Wait(); err != nil {
			return rep, fmt.Errorf("%s [%s]: %w", j.shape.Name, j.class, err)
		}
		if !float32BitsEqual(j.ref, j.c) {
			return rep, fmt.Errorf("%s [%s]: QoS-scheduled output differs from serial bits", j.shape.Name, j.class)
		}
		costs := rec.Costs(j.fut.JobID())
		if len(costs) != j.fut.Tasks() {
			return rep, fmt.Errorf("%s: recorded %d task costs, want %d", j.shape.Name, len(costs), j.fut.Tasks())
		}
		meta, ok := rec.Meta(j.fut.JobID())
		if !ok {
			return rep, fmt.Errorf("%s: job %d has no recorded scheduling identity", j.shape.Name, j.fut.JobID())
		}
		if meta.Class != j.class {
			return rep, fmt.Errorf("%s: recorded class %q, want %q", j.shape.Name, meta.Class, j.class)
		}
		// The recorded participant cap is an artifact of the recording
		// pool's size; the virtual sweep scales workers independently,
		// so only a genuine (task-count) cap carries into the replay.
		maxw := meta.MaxWorkers
		if maxw >= poolWorkers {
			maxw = 0
		}
		vjobs = append(vjobs, vtime.Job{
			ID: j.fut.JobID(), Class: meta.Class, Weight: meta.Weight, Max: maxw, Costs: costs,
		})
	}

	ps := pool.Stats()
	rep.PoolClasses = ps.Classes
	for _, idle := range ps.IdleCycles(0) {
		if idle > rep.PoolIdleSpread {
			rep.PoolIdleSpread = round3(idle)
		}
	}

	// Replay under both policies; a second weighted replay must be
	// bit-identical — the determinism the tie-break rules buy.
	fifo := vtime.SimulateBatch(chip, virtWorkers, vjobs, vtime.PolicyFIFO)
	weighted := vtime.SimulateBatch(chip, virtWorkers, vjobs, vtime.PolicyWeighted)
	again := vtime.SimulateBatch(chip, virtWorkers, vjobs, vtime.PolicyWeighted)
	if weighted.Makespan != again.Makespan || len(weighted.Jobs) != len(again.Jobs) {
		return rep, fmt.Errorf("weighted replay not deterministic: makespan %.0f vs %.0f", weighted.Makespan, again.Makespan)
	}
	for i := range weighted.Jobs {
		if weighted.Jobs[i] != again.Jobs[i] {
			return rep, fmt.Errorf("weighted replay not deterministic at job %d", weighted.Jobs[i].ID)
		}
	}

	rep.FIFO = summarizePolicy(fifo)
	rep.Weighted = summarizePolicy(weighted)
	fifoP99 := classP99(rep.FIFO, latencyClass)
	weightedP99 := classP99(rep.Weighted, latencyClass)
	if weightedP99 > 0 {
		rep.LatencyP99Speedup = round3(fifoP99 / weightedP99)
	}
	rep.MakespanDeltaPct = round3((weighted.Makespan - fifo.Makespan) / fifo.Makespan * 100)
	return rep, nil
}

// summarizePolicy folds a replay into per-class distributions.
func summarizePolicy(res vtime.BatchResult) simQoSPolicy {
	out := simQoSPolicy{Policy: res.Policy.String(), Makespan: res.Makespan}
	waits := make(map[string][]float64)
	finishes := make(map[string][]float64)
	var classes []string
	for _, jr := range res.Jobs {
		if _, ok := waits[jr.Class]; !ok {
			classes = append(classes, jr.Class)
		}
		waits[jr.Class] = append(waits[jr.Class], jr.QueueWait)
		finishes[jr.Class] = append(finishes[jr.Class], jr.Finish)
	}
	sort.Strings(classes)
	for _, cls := range classes {
		w := waits[cls]
		var meanFinish float64
		for _, f := range finishes[cls] {
			meanFinish += f
		}
		meanFinish /= float64(len(w))
		out.Classes = append(out.Classes, simQoSClassDist{
			Class:      cls,
			Jobs:       len(w),
			P50Wait:    round3(vtime.Quantile(w, 0.5)),
			P99Wait:    round3(vtime.Quantile(w, 0.99)),
			MaxWait:    round3(vtime.Quantile(w, 1)),
			MeanFinish: round3(meanFinish),
		})
	}
	return out
}

func classP99(p simQoSPolicy, class string) float64 {
	for _, c := range p.Classes {
		if c.Class == class {
			return c.P99Wait
		}
	}
	return 0
}

// assertQoS gates the weighted-beats-FIFO claim: the latency class's
// p99 queue wait must improve under weighted claiming, and the
// makespan must not degrade by more than 5%.
func assertQoS(rep simQoSReport) error {
	fifoP99 := classP99(rep.FIFO, latencyClass)
	weightedP99 := classP99(rep.Weighted, latencyClass)
	if weightedP99 >= fifoP99 {
		return fmt.Errorf("qos assert: weighted latency p99 wait %.0f not below FIFO %.0f", weightedP99, fifoP99)
	}
	if rep.MakespanDeltaPct > 5 {
		return fmt.Errorf("qos assert: weighted makespan %.1f%% worse than FIFO (limit 5%%)", rep.MakespanDeltaPct)
	}
	fmt.Fprintf(os.Stderr, "qos assert ok: latency p99 wait %.0f -> %.0f cycles (%.1fx), makespan %+.2f%%\n",
		fifoP99, weightedP99, rep.LatencyP99Speedup, rep.MakespanDeltaPct)
	return nil
}

// runSimQoSMode is the -sim-qos entry point.
func runSimQoSMode(chipName string, poolWorkers, virtWorkers int, emitJSON, assert bool, updateBench, tag string) error {
	chip, err := hw.ByName(chipName)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sim-qos on %s: %d virtual workers, pool %d...\n", chip.Name, virtWorkers, poolWorkers)
	rep, err := runSimQoS(chip, poolWorkers, virtWorkers)
	if err != nil {
		return err
	}
	if assert {
		if err := assertQoS(rep); err != nil {
			return err
		}
	}
	if emitJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		printSimQoS(rep)
	}
	if updateBench == "merge" {
		if err := mergeSimQoS(tag, rep); err != nil {
			return err
		}
	}
	return nil
}

func printSimQoS(rep simQoSReport) {
	fmt.Printf("%s  %d jobs (%v batch-first, %v latency), %d virtual workers\n",
		rep.Chip, rep.Jobs, rep.BatchShapes, rep.LatencyShapes, rep.VirtWorkers)
	for _, p := range []simQoSPolicy{rep.FIFO, rep.Weighted} {
		fmt.Printf("  %-8s makespan %14.0f cycles\n", p.Policy, p.Makespan)
		for _, c := range p.Classes {
			fmt.Printf("    %-10s %2d jobs  wait p50 %12.0f  p99 %12.0f  max %12.0f\n",
				c.Class, c.Jobs, c.P50Wait, c.P99Wait, c.MaxWait)
		}
	}
	fmt.Printf("  latency p99 speedup %.1fx, makespan delta %+.2f%%\n",
		rep.LatencyP99Speedup, rep.MakespanDeltaPct)
}

// mergeSimQoS folds the report into BENCH_<tag>.json, like
// mergeSimScaling.
func mergeSimQoS(tag string, rep simQoSReport) error {
	path := "BENCH_" + tag + ".json"
	var res benchResult
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &res); err != nil {
			return fmt.Errorf("merge into %s: %w", path, err)
		}
	} else {
		res.Tag = tag
	}
	res.SimQoS = &rep
	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged simQoS into %s\n", path)
	return nil
}
