package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"autogemm"
	"autogemm/internal/hw"
	"autogemm/internal/sched"
	"autogemm/internal/serve"
	"autogemm/internal/vtime"
	"autogemm/internal/workload"
)

// The -serve-load mode measures the serving stack end to end: a real
// internal/serve front door over a real engine, driven by many
// concurrent HTTP clients split across a latency tenant (small shapes,
// per-request deadlines, high weight, unbounded) and a batch tenant
// (bigger shapes, mixed single/batch requests, low weight, shallow
// admission depth — the tenant that sheds under saturation). Every
// successful response is compared bit-for-bit against a serial
// reference computed on an independent engine: the acceptance bar is
// zero corruption under full multi-tenant concurrency.
//
// Mid-run the harness retunes the batch class through POST /v1/classes
// with a weight-only update — the live form of the ConfigureClass
// keep-on-zero regression: the response must show the depth bound
// preserved, and the class's Rejected counter must keep advancing
// afterwards (still shedding ⇒ the bound survived the retune).
//
// Concurrency discipline: the clients are tasks of one job on an
// auxiliary scheduler pool and the HTTP server is httptest's — this
// file spawns no goroutines (the goroutine vet pass covers cmd too).

const (
	serveLatencyTenant = "interactive"
	serveBatchTenant   = "analytics"
	serveLatencyClass  = "latency"
	serveBatchClass    = "batch"
	serveBatchDepth    = 4 // shallow on purpose: saturation must shed
	serveBatchElems    = 8 // per NDJSON batch request — deliberately > depth
)

// The load shapes are small irregular GEMMs (the paper's 26×36×20
// running example among them), not the ResNet-50 set: request bodies
// are JSON float arrays, so megabyte operands would measure JSON
// encoding, not serving. Latency-tenant shapes are tiny (kilobyte
// bodies, sub-millisecond kernels); batch-tenant shapes are a bit
// heavier so their jobs dwell in the queue under the 16:1 weight
// disadvantage — which is what drives the class past its admission
// depth when each batch request bursts serveBatchElems submissions.
func serveLoadShapes() (latency, batch []workload.Shape) {
	latency = []workload.Shape{
		{Name: "s26x36x20", M: 26, N: 36, K: 20},
		{Name: "s48x40x32", M: 48, N: 40, K: 32},
		{Name: "s64x48x24", M: 64, N: 48, K: 24},
	}
	batch = []workload.Shape{
		{Name: "b96x96x96", M: 96, N: 96, K: 96},
		{Name: "b128x96x64", M: 128, N: 96, K: 64},
		{Name: "b160x64x80", M: 160, N: 64, K: 80},
	}
	return latency, batch
}

// serveLoadClassResult is one tenant class's client-side outcome.
type serveLoadClassResult struct {
	Class        string  `json:"class"`
	Tenant       string  `json:"tenant"`
	Clients      int     `json:"clients"`
	Requests     int64   `json:"requests"` // HTTP requests issued
	GEMMs        int64   `json:"gemms"`    // elements across them
	OK           int64   `json:"ok"`       // elements that returned a result
	Shed         int64   `json:"shed"`     // elements refused 429/ErrAdmission
	DeadlineMiss int64   `json:"deadlineMiss"`
	OtherErrors  int64   `json:"otherErrors"`
	ShedRate     float64 `json:"shedRate"` // shed / elements
	P50Ms        float64 `json:"p50Ms"`    // successful-request latency
	P99Ms        float64 `json:"p99Ms"`
	MaxMs        float64 `json:"maxMs"`
}

// serveLoadReport is the -serve-load result written into the serveLoad
// section of BENCH_<tag>.json.
type serveLoadReport struct {
	Chip        string  `json:"chip"`
	Workers     int     `json:"engineWorkers"`
	Clients     int     `json:"clients"`
	DurationSec float64 `json:"durationSec"`

	Requests   int64   `json:"requests"`   // all HTTP requests
	GEMMs      int64   `json:"gemms"`      // all elements submitted
	OKPerSec   float64 `json:"okPerSec"`   // completed elements / sec (saturation throughput)
	Corruption int64   `json:"corruption"` // responses differing from the serial reference bits — must be 0

	// The live weight-only-retune regression: depth bound surviving the
	// retune and the Rejected counter still advancing afterwards.
	RetuneDepthKept      bool  `json:"retuneDepthKept"`
	RetuneShedsAfter     int64 `json:"retuneShedsAfter"`
	RetuneWeightApplied  bool  `json:"retuneWeightApplied"`
	ServerRejectedTotal  int64 `json:"serverRejectedTotal"`
	ServerCompletedTotal int64 `json:"serverCompletedTotal"`

	Classes []serveLoadClassResult `json:"classes"`
}

// serveClientStats is one client task's tally, merged after the job.
type serveClientStats struct {
	requests, gemms, ok, shed, deadline, other, corrupt int64
	latMs                                               []float64
}

// serveShape is one workload shape with its serial reference bits.
type serveShape struct {
	s   workload.Shape
	a   []float32
	b   []float32
	ref []float32
}

// prepServeShapes computes each shape's operands and serial reference
// on an independent single-worker engine — the bits every served
// response must reproduce exactly.
func prepServeShapes(chip *hw.Chip, shapes []workload.Shape) ([]serveShape, error) {
	ref, err := autogemm.New(chip.Name, autogemm.WithWorkers(1))
	if err != nil {
		return nil, err
	}
	defer ref.Close()
	out := make([]serveShape, 0, len(shapes))
	for _, s := range shapes {
		ss := serveShape{
			s:   s,
			a:   make([]float32, s.M*s.K+4*chip.Lanes),
			b:   make([]float32, s.K*s.N+2*s.N+4*chip.Lanes),
			ref: make([]float32, s.M*s.N),
		}
		fill(ss.a, 3)
		fill(ss.b, 5)
		if err := ref.Multiply(ss.ref, ss.a, ss.b, s.M, s.N, s.K); err != nil {
			return nil, fmt.Errorf("%s reference: %w", s.Name, err)
		}
		out = append(out, ss)
	}
	return out, nil
}

// runServeLoad stands the serving stack up and saturates it.
func runServeLoad(chip *hw.Chip, clients, engineWorkers int, duration time.Duration) (serveLoadReport, error) {
	rep := serveLoadReport{Chip: chip.Name, Workers: engineWorkers, Clients: clients, DurationSec: duration.Seconds()}

	eng, err := autogemm.New(chip.Name, autogemm.WithWorkers(engineWorkers))
	if err != nil {
		return rep, err
	}
	defer eng.Close()
	srv, err := serve.New(serve.Config{
		Engine: eng,
		Tenants: map[string]serve.TenantConfig{
			serveLatencyTenant: {Class: serveLatencyClass, Weight: 16, DeadlineMs: 10_000},
			serveBatchTenant:   {Class: serveBatchClass, Weight: 1, Depth: serveBatchDepth},
		},
	})
	if err != nil {
		return rep, err
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	latSet, batSet := serveLoadShapes()
	latShapes, err := prepServeShapes(chip, latSet)
	if err != nil {
		return rep, err
	}
	batShapes, err := prepServeShapes(chip, batSet)
	if err != nil {
		return rep, err
	}

	// Warm every plan through the server so the timed window measures
	// serving, not cold planning.
	transport := &http.Transport{MaxIdleConnsPerHost: clients + 2}
	defer transport.CloseIdleConnections()
	httpc := &http.Client{Transport: transport}
	warm := func(tenant string, shapes []serveShape) error {
		cl := &serve.Client{Base: hs.URL, Tenant: tenant, HTTP: httpc}
		for _, ss := range shapes {
			if _, err := cl.Multiply(context.Background(), ss.s.M, ss.s.N, ss.s.K, ss.a, ss.b, 0); err != nil {
				return fmt.Errorf("warm %s: %w", ss.s.Name, err)
			}
		}
		return nil
	}
	if err := warm(serveLatencyTenant, latShapes); err != nil {
		return rep, err
	}
	if err := warm(serveBatchTenant, batShapes); err != nil {
		return rep, err
	}

	// Client fleet: 2/3 latency, 1/3 batch, each client one task of one
	// job on an auxiliary pool sized to the fleet (tasks block on HTTP
	// I/O, so every client needs its own worker).
	batClients := clients / 3
	if batClients == 0 {
		batClients = 1
	}
	latClients := clients - batClients
	stats := make([]serveClientStats, clients)
	stopAt := time.Now().Add(duration)

	clientLoop := func(task int) {
		st := &stats[task]
		isBatch := task < batClients
		tenant, shapes := serveLatencyTenant, latShapes
		if isBatch {
			tenant, shapes = serveBatchTenant, batShapes
		}
		cl := &serve.Client{Base: hs.URL, Tenant: tenant, HTTP: httpc}
		rng := uint32(2*task + 1)
		for n := 0; time.Now().Before(stopAt); n++ {
			rng = rng*1664525 + 1013904223
			ss := &shapes[rng%uint32(len(shapes))]
			start := time.Now()
			if isBatch && n%2 == 1 {
				// Every other batch-tenant request is an NDJSON batch of
				// serveBatchElems elements — more than the class's depth
				// bound, so saturation sheds the burst's tail. The rest
				// are single multiplies.
				elems := make([]serve.GEMMRequest, serveBatchElems)
				for i := range elems {
					rng = rng*1664525 + 1013904223
					es := &shapes[rng%uint32(len(shapes))]
					elems[i] = serve.GEMMRequest{M: es.s.M, N: es.s.N, K: es.s.K, A: es.a, B: es.b}
				}
				st.requests++
				st.gemms += int64(len(elems))
				lines, err := cl.Batch(context.Background(), elems)
				if err != nil {
					st.other += int64(len(elems))
					continue
				}
				okAll := true
				for i, line := range lines {
					if err := line.Err(); err != nil {
						okAll = false
						st.tallyErr(err)
						continue
					}
					st.ok++
					want := elems[i]
					// Match the element back to its shape by extents.
					for j := range shapes {
						if shapes[j].s.M == want.M && shapes[j].s.N == want.N && shapes[j].s.K == want.K {
							if !float32BitsEqual(shapes[j].ref, line.C) {
								st.corrupt++
							}
							break
						}
					}
				}
				if okAll {
					st.latMs = append(st.latMs, float64(time.Since(start).Microseconds())/1e3)
				}
				continue
			}
			st.requests++
			st.gemms++
			c, err := cl.Multiply(context.Background(), ss.s.M, ss.s.N, ss.s.K, ss.a, ss.b, 0)
			if err != nil {
				st.tallyErr(err)
				continue
			}
			st.ok++
			st.latMs = append(st.latMs, float64(time.Since(start).Microseconds())/1e3)
			if !float32BitsEqual(ss.ref, c) {
				st.corrupt++
			}
		}
	}

	fleet := sched.New(clients, 0)
	defer fleet.Close()
	fut, err := fleet.Submit(clients, 0, func(w *sched.Worker, task int) error {
		clientLoop(task)
		return nil
	})
	if err != nil {
		return rep, err
	}

	// Mid-load, from the main goroutine: snapshot the batch class, apply
	// a weight-only retune, and check the admission depth survived it.
	time.Sleep(duration / 2)
	ctl := &serve.Client{Base: hs.URL, HTTP: httpc}
	before, err := ctl.ConfigureClass(context.Background(), serveBatchClass, 0, 0) // pure read: 0,0 keeps both
	if err != nil {
		return rep, fmt.Errorf("pre-retune snapshot: %w", err)
	}
	after, err := ctl.ConfigureClass(context.Background(), serveBatchClass, 8, 0) // the weight-only retune
	if err != nil {
		return rep, fmt.Errorf("retune: %w", err)
	}
	rep.RetuneWeightApplied = after.Weight == 8
	rep.RetuneDepthKept = after.Depth == serveBatchDepth

	if err := fut.Wait(); err != nil {
		return rep, fmt.Errorf("client fleet: %w", err)
	}

	// Post-load: the bound kept shedding after the retune.
	final, ok := eng.ClassStats(serveBatchClass)
	if !ok {
		return rep, fmt.Errorf("batch class vanished from the scheduler")
	}
	rep.RetuneShedsAfter = final.Rejected - before.Rejected
	rep.ServerRejectedTotal = final.Rejected
	if cs, ok := eng.ClassStats(serveLatencyClass); ok {
		rep.ServerCompletedTotal = cs.Completed + final.Completed
	}

	// Fold the per-client tallies into per-class results.
	foldClass := func(class, tenant string, lo, hi int) serveLoadClassResult {
		out := serveLoadClassResult{Class: class, Tenant: tenant, Clients: hi - lo}
		var lats []float64
		for i := lo; i < hi; i++ {
			st := &stats[i]
			out.Requests += st.requests
			out.GEMMs += st.gemms
			out.OK += st.ok
			out.Shed += st.shed
			out.DeadlineMiss += st.deadline
			out.OtherErrors += st.other
			rep.Corruption += st.corrupt
			lats = append(lats, st.latMs...)
		}
		if out.GEMMs > 0 {
			out.ShedRate = round3(float64(out.Shed) / float64(out.GEMMs))
		}
		if len(lats) > 0 {
			out.P50Ms = round3(vtime.Quantile(lats, 0.5))
			out.P99Ms = round3(vtime.Quantile(lats, 0.99))
			out.MaxMs = round3(vtime.Quantile(lats, 1))
		}
		return out
	}
	bat := foldClass(serveBatchClass, serveBatchTenant, 0, batClients)
	lat := foldClass(serveLatencyClass, serveLatencyTenant, batClients, batClients+latClients)
	rep.Classes = []serveLoadClassResult{bat, lat}
	rep.Requests = bat.Requests + lat.Requests
	rep.GEMMs = bat.GEMMs + lat.GEMMs
	rep.OKPerSec = round3(float64(bat.OK+lat.OK) / duration.Seconds())
	return rep, nil
}

// tallyErr buckets one element error by its sentinel identity — the
// identities serve.ErrorForStatus reconstructed from the HTTP status.
func (st *serveClientStats) tallyErr(err error) {
	switch autogemm.HTTPStatus(err) {
	case http.StatusTooManyRequests:
		st.shed++
	case http.StatusGatewayTimeout:
		st.deadline++
	default:
		st.other++
	}
}

// assertServeLoad gates the serving acceptance bar: zero corruption,
// both classes making progress, the depth-bounded class actually
// shedding, and the weight-only retune preserving the bound live.
func assertServeLoad(rep serveLoadReport) error {
	if rep.Corruption != 0 {
		return fmt.Errorf("serve assert: %d corrupted responses (served bits differ from serial reference)", rep.Corruption)
	}
	for _, c := range rep.Classes {
		if c.OK == 0 {
			return fmt.Errorf("serve assert: class %s completed no work", c.Class)
		}
	}
	var bat *serveLoadClassResult
	for i := range rep.Classes {
		if rep.Classes[i].Class == serveBatchClass {
			bat = &rep.Classes[i]
		}
	}
	if bat == nil || bat.Shed == 0 {
		return fmt.Errorf("serve assert: depth-bounded class %s never shed — the load did not saturate admission", serveBatchClass)
	}
	if !rep.RetuneWeightApplied {
		return fmt.Errorf("serve assert: weight-only retune did not apply the new weight")
	}
	if !rep.RetuneDepthKept {
		return fmt.Errorf("serve assert: weight-only retune dropped the depth bound (the ConfigureClass regression)")
	}
	if rep.RetuneShedsAfter == 0 {
		return fmt.Errorf("serve assert: Rejected counter stopped advancing after the retune — depth bound lost live")
	}
	fmt.Fprintf(os.Stderr, "serve assert ok: %d clients, %.0f ok/s, batch shed rate %.3f, retune kept depth %d (sheds after: %d), corruption 0\n",
		rep.Clients, rep.OKPerSec, bat.ShedRate, serveBatchDepth, rep.RetuneShedsAfter)
	return nil
}

// runServeLoadMode is the -serve-load entry point.
func runServeLoadMode(chipName string, clients, engineWorkers int, duration time.Duration, emitJSON bool, assert bool, updateBench, tag string) error {
	chip, err := hw.ByName(chipName)
	if err != nil {
		return err
	}
	if clients < 2 {
		return fmt.Errorf("-serve-clients must be at least 2 (one per tenant)")
	}
	fmt.Fprintf(os.Stderr, "serve-load on %s: %d clients, %d engine workers, %v...\n",
		chip.Name, clients, engineWorkers, duration)
	rep, err := runServeLoad(chip, clients, engineWorkers, duration)
	if err != nil {
		return err
	}
	if assert {
		if err := assertServeLoad(rep); err != nil {
			return err
		}
	}
	if emitJSON {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
	} else {
		printServeLoad(rep)
	}
	if updateBench == "merge" {
		if err := mergeServeLoad(tag, rep); err != nil {
			return err
		}
	}
	return nil
}

func printServeLoad(rep serveLoadReport) {
	fmt.Printf("%s  %d clients over %d engine workers, %.1fs: %.0f ok/s, corruption %d\n",
		rep.Chip, rep.Clients, rep.Workers, rep.DurationSec, rep.OKPerSec, rep.Corruption)
	for _, c := range rep.Classes {
		fmt.Printf("  %-8s (%s, %d clients)  %6d gemms  ok %6d  shed %5d (%.3f)  miss %4d  p50 %8.1fms  p99 %8.1fms\n",
			c.Class, c.Tenant, c.Clients, c.GEMMs, c.OK, c.Shed, c.ShedRate, c.DeadlineMiss, c.P50Ms, c.P99Ms)
	}
	fmt.Printf("  retune: weight applied %v, depth kept %v, sheds after %d\n",
		rep.RetuneWeightApplied, rep.RetuneDepthKept, rep.RetuneShedsAfter)
}

// mergeServeLoad folds the report into BENCH_<tag>.json, like
// mergeSimQoS.
func mergeServeLoad(tag string, rep serveLoadReport) error {
	path := "BENCH_" + tag + ".json"
	var res benchResult
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &res); err != nil {
			return fmt.Errorf("merge into %s: %w", path, err)
		}
	} else {
		res.Tag = tag
	}
	res.ServeLoad = &rep
	out, err := json.MarshalIndent(&res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "merged serveLoad into %s\n", path)
	return nil
}
